//! Workspace root crate: re-exports the LightZone reproduction crates so
//! the examples and integration tests can use one import root, plus a
//! [`prelude`] with the names almost every LightZone program needs.
//!
//! The interesting code lives in the member crates:
//!
//! * [`lz_arch`] — A64 encodings, assembler, sanitizer rules, cycle model
//! * [`lz_machine`] — the simulated ARMv8 machine
//! * [`lz_kernel`] — the kernel substrate
//! * [`lightzone`] — the paper's contribution
//! * [`lz_baselines`] — Watchpoint and simulated-lwC baselines
//! * [`lz_workloads`] — microbenchmarks and the three applications
//!
//! # Example
//!
//! ```
//! use lightzone_repro::prelude::*;
//!
//! let mut b = LzProgramBuilder::new(0x40_0000);
//! b.asm.lz_enter(false, SAN_PAN);
//! b.asm.exit_imm(3);
//! let mut lz = LightZone::new_host(Platform::CortexA55);
//! let pid = lz.spawn(&b.build());
//! lz.enter_process(pid);
//! assert_eq!(lz.run_to_exit(), 3);
//! ```

pub use lightzone;
pub use lz_arch;
pub use lz_baselines;
pub use lz_kernel;
pub use lz_machine;
pub use lz_workloads;

/// The names almost every LightZone program needs.
pub mod prelude {
    pub use lightzone::api::{LzAsm, LzProgram, LzProgramBuilder, RW, SAN_BOTH, SAN_PAN, SAN_TTBR, USER};
    pub use lightzone::pgt::PGT_ALL;
    pub use lightzone::{AblationConfig, LightZone, SECURITY_KILL};
    pub use lz_arch::asm::Asm;
    pub use lz_arch::Platform;
    pub use lz_kernel::{Event, Program, Sysno, VmProt};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_names_resolve() {
        use crate::prelude::*;
        let _ = Platform::ALL;
        let _ = SECURITY_KILL;
        let _ = VmProt::RW;
    }
}
