//! Generation-tagged recycling allocator for 16-bit hardware IDs
//! (VMIDs, ASIDs).
//!
//! The seed repo's allocators were bump allocators that panicked (VMIDs)
//! or silently wrapped (ASIDs) at 2^16 allocations — fine for a handful
//! of experiments, fatal for fleet-scale churn where millions of
//! connections each take a domain. This allocator follows the shape of
//! Linux's ASID allocator:
//!
//! * IDs are handed out from a fresh bump cursor until the 16-bit space
//!   is exhausted (id 0 stays reserved for the host/global context).
//! * Freed IDs collect on a FIFO free list. They are **not** recycled
//!   while fresh IDs remain — every allocation before the first rollover
//!   is guaranteed unique, which keeps the seed experiments byte-for-byte
//!   identical.
//! * When the fresh space runs dry the allocator *rolls over*: the
//!   generation counter bumps and allocation switches to the free list.
//!   A recycled ID may still tag live TLB entries from its previous
//!   life, so every recycled grant carries `recycled: true` and the
//!   caller **must** invalidate (`invalidate_vmid`/`shootdown_vmid` for
//!   VMIDs, `invalidate_asid`/`shootdown_asid` for ASIDs) before the ID
//!   reaches hardware again. Invalidation happens at *reuse* time, not
//!   free time — freeing is O(1), and entries tagged with a parked ID
//!   are unreachable until the ID is granted again.
//!
//! Allocation only truly fails when every ID in the space is live.

use std::collections::VecDeque;

/// One granted ID plus the provenance the caller needs for TLB hygiene.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdGrant {
    pub id: u16,
    /// Allocator generation the grant belongs to (0 until the first
    /// rollover, then bumped per full pass over the space).
    pub generation: u64,
    /// `true` when the ID had a previous owner: the caller must
    /// invalidate all TLB entries tagged with it before use.
    pub recycled: bool,
}

/// Typed exhaustion error: every ID in the space is simultaneously live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdExhausted {
    /// Size of the space that is fully live.
    pub space: u16,
}

impl std::fmt::Display for IdExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "all {} ids live, nothing to recycle", self.space)
    }
}

impl std::error::Error for IdExhausted {}

/// Generation-tagged recycling allocator over ids `1..=space`.
#[derive(Debug, Clone)]
pub struct IdAlloc {
    /// Next never-used id; `> space` once the fresh range is exhausted.
    next: u32,
    /// Highest allocatable id (`u16::MAX` for real hardware spaces;
    /// tests shrink it to reach rollover quickly).
    space: u16,
    /// Freed ids, oldest first (FIFO maximises the time between an ID's
    /// death and its reuse, like Linux's round-robin ASID sweep).
    free: VecDeque<u16>,
    generation: u64,
    recycles: u64,
    rollovers: u64,
}

impl IdAlloc {
    /// Full 16-bit space; id 0 reserved.
    pub fn new() -> Self {
        Self::with_space(u16::MAX)
    }

    /// Restricted space `1..=space` — lets tests and harnesses reach
    /// rollover in a handful of allocations instead of 65,535.
    pub fn with_space(space: u16) -> Self {
        assert!(space >= 1, "id space needs at least one allocatable id");
        IdAlloc { next: 1, space, free: VecDeque::new(), generation: 0, recycles: 0, rollovers: 0 }
    }

    /// Allocate an ID. Errors only when all `space` ids are live.
    pub fn alloc(&mut self) -> Result<IdGrant, IdExhausted> {
        if self.next <= self.space as u32 {
            let id = self.next as u16;
            self.next += 1;
            return Ok(IdGrant { id, generation: self.generation, recycled: false });
        }
        let Some(id) = self.free.pop_front() else {
            return Err(IdExhausted { space: self.space });
        };
        // Generation bumps on the first recycled grant (fresh space
        // exhausted) and again on every full recycled pass over the
        // space — each bump is one rollover.
        if self.recycles % self.space as u64 == 0 {
            self.generation += 1;
            self.rollovers += 1;
        }
        self.recycles += 1;
        Ok(IdGrant { id, generation: self.generation, recycled: true })
    }

    /// Return an ID to the free list. The caller guarantees no live user
    /// still holds it; TLB entries tagged with it may remain resident
    /// (they are invalidated when the ID is next granted).
    pub fn free(&mut self, id: u16) {
        debug_assert!(id != 0 && id <= self.space, "freed id {id} outside space 1..={}", self.space);
        debug_assert!(!self.free.contains(&id), "double free of id {id}");
        self.free.push_back(id);
    }

    /// IDs currently live (granted and not yet freed).
    pub fn live(&self) -> u64 {
        (self.next as u64 - 1).saturating_sub(self.free.len() as u64)
    }

    /// Current generation (0 until the first rollover).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Total recycled grants (each one forced a TLB invalidation at the
    /// caller before the ID was reused).
    pub fn recycles(&self) -> u64 {
        self.recycles
    }

    /// Times the allocator wrapped the space (fresh exhaustion plus each
    /// subsequent full recycled pass).
    pub fn rollovers(&self) -> u64 {
        self.rollovers
    }
}

impl Default for IdAlloc {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_ids_are_unique_and_nonzero() {
        let mut a = IdAlloc::with_space(100);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            let g = a.alloc().unwrap();
            assert_ne!(g.id, 0);
            assert!(!g.recycled);
            assert_eq!(g.generation, 0);
            assert!(seen.insert(g.id));
        }
        assert_eq!(a.live(), 100);
        assert_eq!(a.rollovers(), 0);
    }

    #[test]
    fn exhaustion_with_all_live_is_typed_error() {
        let mut a = IdAlloc::with_space(3);
        for _ in 0..3 {
            a.alloc().unwrap();
        }
        let err = a.alloc().unwrap_err();
        assert_eq!(err, IdExhausted { space: 3 });
        // Still usable afterwards: freeing un-wedges it.
        a.free(2);
        assert_eq!(a.alloc().unwrap().id, 2);
    }

    #[test]
    fn rollover_recycles_oldest_freed_first_with_generation_tag() {
        let mut a = IdAlloc::with_space(4);
        for _ in 0..4 {
            a.alloc().unwrap();
        }
        a.free(3);
        a.free(1);
        let g = a.alloc().unwrap();
        assert_eq!((g.id, g.recycled, g.generation), (3, true, 1), "FIFO reuse, generation bumped");
        let g = a.alloc().unwrap();
        assert_eq!((g.id, g.recycled, g.generation), (1, true, 1));
        assert_eq!(a.recycles(), 2);
        assert_eq!(a.rollovers(), 1);
    }

    #[test]
    fn free_list_is_not_recycled_while_fresh_ids_remain() {
        let mut a = IdAlloc::with_space(10);
        let g1 = a.alloc().unwrap();
        a.free(g1.id);
        // Next grant is fresh id 2, not recycled id 1: pre-rollover
        // allocations stay unique (seed-compatible behavior).
        let g2 = a.alloc().unwrap();
        assert_eq!((g2.id, g2.recycled), (2, false));
    }

    #[test]
    fn generation_bumps_once_per_full_recycled_pass() {
        let mut a = IdAlloc::with_space(2);
        let g1 = a.alloc().unwrap();
        let g2 = a.alloc().unwrap();
        let mut gens = Vec::new();
        let (mut x, mut y) = (g1.id, g2.id);
        for _ in 0..3 {
            a.free(x);
            a.free(y);
            let r1 = a.alloc().unwrap();
            let r2 = a.alloc().unwrap();
            assert!(r1.recycled && r2.recycled);
            assert_eq!(r1.generation, r2.generation);
            gens.push(r1.generation);
            (x, y) = (r1.id, r2.id);
        }
        assert_eq!(gens, vec![1, 2, 3], "one generation per wrap");
        assert_eq!(a.rollovers(), 3);
        assert_eq!(a.recycles(), 6);
    }

    #[test]
    fn live_tracks_grants_minus_frees() {
        let mut a = IdAlloc::with_space(5);
        let g = a.alloc().unwrap();
        a.alloc().unwrap();
        assert_eq!(a.live(), 2);
        a.free(g.id);
        assert_eq!(a.live(), 1);
    }
}
