//! The kernel proper: process lifecycle, trap handling, syscalls.
//!
//! One [`Kernel`] instance models either a **VHE host kernel running at
//! EL2** (so EL0 exceptions of host processes arrive via `HCR_EL2.TGE`)
//! or a **guest kernel running at EL1** inside a KVM VM (EL0 exceptions
//! arrive at EL1; the machine's `el1_external` flag routes them out of
//! the interpreter). The trap-path cost accounting in this module is what
//! the paper's Table 4 measures for rows 1 ("host user mode to host
//! hypervisor mode") and 2 ("guest user mode to guest kernel mode").

use crate::idalloc::IdAlloc;
use crate::kvm::VmidAllocator;
use crate::process::{Pid, Process, Program, UserContext};
use crate::syscall::{self, Sysno, CUSTOM_BASE};
use crate::vma::{VmProt, Vma, VmaSource};
use lz_arch::esr::{self, ExceptionClass};
use lz_arch::pstate::{ExceptionLevel, PState};
use lz_arch::sysreg::{hcr, sctlr, ttbr, vttbr, SysReg};
use lz_arch::Platform;
use lz_machine::pte::S2Perms;
use lz_machine::walk::s2_map_block;
use lz_machine::{Exit, Machine};
use std::collections::BTreeMap;

/// Instruction count of the common syscall entry/dispatch/exit path.
const SYSCALL_PATH_INSNS: u64 = 54;
/// Instruction count of the page-fault handling path.
const FAULT_PATH_INSNS: u64 = 260;

/// Whether this kernel is the VHE host or a guest kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelMode {
    /// VHE host kernel at EL2.
    Host,
    /// Guest kernel at EL1 in a KVM VM with this VMID and stage-2 root.
    Guest { vmid: u16, s2_root: u64 },
}

/// Counters exposed for the evaluation.
#[derive(Debug, Default, Clone)]
pub struct Stats {
    pub syscalls: u64,
    pub page_faults: u64,
    pub ctx_switches: u64,
    pub written_bytes: u64,
    /// Processes torn down and recycled by [`Kernel::reap`].
    pub reaps: u64,
    /// TLB shoot-downs performed because a recycled process ASID was
    /// granted again (rollover hygiene: the reuse path invalidates).
    pub rollover_shootdowns: u64,
}

/// Why [`Kernel::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// The current process exited with this code.
    Exited(i64),
    /// A syscall in the custom range (≥ `CUSTOM_BASE`): `nr` plus x0–x5.
    /// The user context has been saved; the upper layer resolves it and
    /// resumes via [`Kernel::resume_syscall`].
    Custom { nr: u64, args: [u64; 6] },
    /// A machine exit the base kernel does not handle (LightZone VE
    /// traps, watchpoint hits, trapped system registers).
    Raw(Exit),
    /// Instruction budget exhausted.
    Limit,
}

/// The modelled kernel.
#[derive(Debug)]
pub struct Kernel {
    pub machine: Machine,
    pub mode: KernelMode,
    pub(crate) procs: BTreeMap<Pid, Process>,
    next_pid: Pid,
    /// Process (kernel-managed table) ASIDs, recycled with rollover
    /// hygiene: a recycled grant forces `shootdown_asid` before reuse.
    pub asids: IdAlloc,
    pub(crate) cur: Option<Pid>,
    pub vmids: VmidAllocator,
    pub stats: Stats,
    /// Set while [`Kernel::run_smp`] drives the machine: in-kernel
    /// thread rotation is suppressed (the SMP scheduler owns placement)
    /// and descheduling is signalled via [`Kernel::descheduled`].
    pub(crate) smp_mode: bool,
    /// Set by the trap path when the current thread left the CPU
    /// (futex park, thread exit) under [`Kernel::run_smp`]; the
    /// scheduler consumes and clears it.
    pub(crate) descheduled: bool,
}

impl Kernel {
    /// A VHE host kernel.
    pub fn new_host(platform: Platform) -> Self {
        let mut machine = Machine::new(platform);
        machine.set_sysreg(SysReg::HCR_EL2, hcr::TGE | hcr::E2H);
        Kernel {
            machine,
            mode: KernelMode::Host,
            procs: BTreeMap::new(),
            next_pid: 1,
            asids: IdAlloc::new(),
            cur: None,
            vmids: VmidAllocator::new(),
            stats: Stats::default(),
            smp_mode: false,
            descheduled: false,
        }
    }

    /// A guest kernel inside a KVM VM: stage-2 identity-maps the VM's RAM
    /// window eagerly (the host's fault path is not under test), EL1
    /// exceptions exit the interpreter to this modelled kernel.
    pub fn new_guest(platform: Platform) -> Self {
        let mut machine = Machine::new(platform);
        let mut vmids = VmidAllocator::new();
        let vmid = match vmids.alloc() {
            Ok(grant) => grant.id,
            // A fresh allocator's first grant cannot fail.
            Err(e) => panic!("fresh VMID allocator: {e}"),
        };
        let s2_root = lz_machine::walk::alloc_table(&mut machine.mem);
        // Identity-map PA 0..8 GiB with 2 MiB blocks. Unbacked frames
        // still bus-error at the PhysMem level, so this hides nothing.
        let mut pa = 0u64;
        while pa < 8 << 30 {
            s2_map_block(&mut machine.mem, s2_root, pa, pa, S2Perms::rwx());
            pa += 2 << 20;
        }
        machine.set_sysreg(SysReg::HCR_EL2, hcr::VM);
        machine.set_sysreg(SysReg::VTTBR_EL2, vttbr::pack(vmid, s2_root));
        machine.set_el1_external(true);
        Kernel {
            machine,
            mode: KernelMode::Guest { vmid, s2_root },
            procs: BTreeMap::new(),
            next_pid: 1,
            asids: IdAlloc::new(),
            cur: None,
            vmids,
            stats: Stats::default(),
            smp_mode: false,
            descheduled: false,
        }
    }

    /// The platform this kernel runs on.
    pub fn platform(&self) -> Platform {
        self.machine.model.platform
    }

    /// The VMID tagging this kernel's own (stage-1) translations: 0 for
    /// the VHE host, the VM's VMID for a guest kernel.
    pub fn kernel_vmid(&self) -> u16 {
        match self.mode {
            KernelMode::Host => 0,
            KernelMode::Guest { vmid, .. } => vmid,
        }
    }

    /// Load a program as a new process (pages fault in on demand).
    ///
    /// # Panics
    ///
    /// Panics when 65,535 processes are simultaneously live — a host
    /// resource limit (with recycling there is nothing left to recycle),
    /// not the seed's bump-allocator overflow at 65,535 *cumulative*
    /// spawns.
    pub fn spawn(&mut self, program: &Program) -> Pid {
        let pid = self.next_pid;
        self.next_pid += 1;
        let grant = match self.asids.alloc() {
            Ok(g) => g,
            Err(e) => panic!("process ASID space: {e}"),
        };
        if grant.recycled {
            // Rollover hygiene: the previous owner's kernel-managed
            // translations may still be TLB-resident under this ASID on
            // any core. Invalidate at reuse, on every core.
            self.machine.shootdown_asid(self.kernel_vmid(), grant.id);
            self.stats.rollover_shootdowns += 1;
        }
        let proc = Process::load(pid, grant.id, &mut self.machine.mem, program);
        self.procs.insert(pid, proc);
        pid
    }

    /// Tear down an exited process: free every resident frame and its
    /// kernel-managed page-table tree, then recycle its ASID. Returns
    /// `false` (and does nothing) unless `pid` exists and has exited.
    ///
    /// TLB entries tagged with the dead ASID are deliberately left
    /// resident — they are unreachable until the ASID is granted again,
    /// and [`Kernel::spawn`] shoots them down at that point (invalidation
    /// at reuse, not at free).
    pub fn reap(&mut self, pid: Pid) -> bool {
        let exited = self.procs.get(&pid).is_some_and(|p| p.exit_code.is_some());
        if !exited {
            return false;
        }
        let Some(mut p) = self.procs.remove(&pid) else { return false };
        p.mm.release_all(&mut self.machine.mem);
        self.asids.free(p.mm.asid);
        if self.cur == Some(pid) {
            self.cur = None;
        }
        self.stats.reaps += 1;
        true
    }

    /// Access a process.
    pub fn process(&self, pid: Pid) -> &Process {
        &self.procs[&pid]
    }

    /// Mutable access to a process.
    pub fn process_mut(&mut self, pid: Pid) -> &mut Process {
        self.procs.get_mut(&pid).expect("no such pid")
    }

    /// Split borrow: a process's address space plus the machine (for
    /// callers that fault pages in while holding machine state).
    pub fn mm_and_machine(&mut self, pid: Pid) -> (&mut crate::vma::Mm, &mut Machine) {
        let p = self.procs.get_mut(&pid).expect("no such pid");
        (&mut p.mm, &mut self.machine)
    }

    /// The currently entered process, if any.
    pub fn current(&self) -> Option<Pid> {
        self.cur
    }

    /// Make `pid` the running process: program the translation regime and
    /// load its user context into the CPU. Charges nothing (initial
    /// setup); use [`Self::schedule_to`] for a costed context switch.
    pub fn enter_process(&mut self, pid: Pid) {
        let (root, asid, ctx) = {
            let p = &self.procs[&pid];
            (p.mm.root, p.mm.asid, p.ctx().clone())
        };
        self.machine.set_sysreg(SysReg::TTBR0_EL1, ttbr::pack(asid, root));
        self.machine.set_sysreg(SysReg::SCTLR_EL1, sctlr::M | sctlr::SPAN);
        self.machine.cpu.x = ctx.x;
        self.machine.cpu.sp_el0 = ctx.sp;
        self.machine.cpu.pc = ctx.pc;
        self.machine.cpu.pstate = ctx.pstate;
        self.cur = Some(pid);
    }

    /// Costed context switch: saves the current process, enters `pid`,
    /// charging the scheduler path and register switching.
    pub fn schedule_to(&mut self, pid: Pid) {
        self.save_current();
        let m = &self.machine.model;
        let cost = m.path_cost(400) // scheduler + switch_to
            + m.gpregs_roundtrip(31)
            + m.ttbr0_el1_write
            + m.isb
            + 4 * m.sysreg_write; // TPIDRs, SP_EL0, CONTEXTIDR
        self.machine.charge(cost);
        self.stats.ctx_switches += 1;
        self.enter_process(pid);
    }

    /// Save the machine's user-visible state into the current process's
    /// context.
    pub fn save_current(&mut self) {
        if let Some(pid) = self.cur {
            let ttbr0 = self.machine.sysreg(SysReg::TTBR0_EL1);
            // LightZone processes run at EL1 and use SP_EL1.
            let sp = if self.machine.cpu.pstate.el == ExceptionLevel::El0 {
                self.machine.cpu.sp_el0
            } else {
                self.machine.cpu.sp_el1
            };
            let p = self.procs.get_mut(&pid).expect("current pid exists");
            *p.ctx_mut() = UserContext {
                x: self.machine.cpu.x,
                sp,
                pc: self.machine.cpu.pc,
                pstate: self.machine.cpu.pstate,
                ttbr0,
            };
        }
    }

    /// Make `pid` current without loading any machine state (the caller
    /// — e.g. the LightZone module restoring a VE — programs the machine
    /// itself).
    pub fn set_current(&mut self, pid: Pid) {
        assert!(self.procs.contains_key(&pid), "no such pid");
        self.cur = Some(pid);
    }

    /// Detach the current process *without* saving its context. Epoch-
    /// style drivers (the SMP scheduler, the fleet wave drain) keep many
    /// processes live on different cores at once; between per-core
    /// commits the machine's active register state does not belong to
    /// `cur`, so a stray [`Self::save_current`] must find nothing to
    /// save.
    pub fn clear_current(&mut self) {
        self.cur = None;
    }

    /// Run the current process, handling base-kernel traps internally,
    /// until something interesting happens.
    pub fn run(&mut self, insn_limit: u64) -> Event {
        loop {
            let exit = self.machine.run(insn_limit);
            match self.handle_exit(exit) {
                Some(event) => return event,
                None => continue,
            }
        }
    }

    /// Handle one machine exit. `None` means handled — keep running.
    pub fn handle_exit(&mut self, exit: Exit) -> Option<Event> {
        // Traps of LightZone processes belong to the LightZone module,
        // not the base kernel (§4.1.1): surface them untouched.
        if let Some(pid) = self.cur {
            if self.procs[&pid].in_lightzone && exit != Exit::Limit {
                return Some(Event::Raw(exit));
            }
        }
        match (self.mode, exit) {
            (_, Exit::Limit) => Some(Event::Limit),
            (KernelMode::Host, Exit::El2(class)) => self.handle_trap(class, true),
            (KernelMode::Guest { .. }, Exit::El1(class)) => self.handle_trap(class, false),
            // Anything else (EL2 exits in guest mode = stage-2/hvc, EL1
            // exits in host mode = LightZone VE activity) is for an upper
            // layer.
            (_, e) => Some(Event::Raw(e)),
        }
    }

    fn trap_regs(&self, host: bool) -> (u64, u64, u64, u64) {
        if host {
            (
                self.machine.sysreg(SysReg::ESR_EL2),
                self.machine.sysreg(SysReg::FAR_EL2),
                self.machine.sysreg(SysReg::ELR_EL2),
                self.machine.sysreg(SysReg::SPSR_EL2),
            )
        } else {
            (
                self.machine.sysreg(SysReg::ESR_EL1),
                self.machine.sysreg(SysReg::FAR_EL1),
                self.machine.sysreg(SysReg::ELR_EL1),
                self.machine.sysreg(SysReg::SPSR_EL1),
            )
        }
    }

    /// Return to the interrupted user context at `pc`.
    fn user_return(&mut self, host: bool, pc: u64, spsr: u64) {
        let ps = PState::from_spsr(spsr).unwrap_or(PState::user());
        debug_assert_eq!(ps.el, ExceptionLevel::El0);
        if host {
            self.machine.enter(ps, pc);
        } else {
            self.machine.enter_from_el1(ps, pc);
        }
    }

    fn handle_trap(&mut self, class: ExceptionClass, host: bool) -> Option<Event> {
        let (esr_v, far, elr, spsr) = self.trap_regs(host);
        match class {
            ExceptionClass::Svc => {
                self.charge_syscall_path(host);
                self.stats.syscalls += 1;
                let nr = self.machine.cpu.reg(8);
                let args = [
                    self.machine.cpu.reg(0),
                    self.machine.cpu.reg(1),
                    self.machine.cpu.reg(2),
                    self.machine.cpu.reg(3),
                    self.machine.cpu.reg(4),
                    self.machine.cpu.reg(5),
                ];
                if nr >= CUSTOM_BASE {
                    // Save context at the post-syscall pc so the upper
                    // layer can resume with `resume_syscall`.
                    self.save_current();
                    if let Some(pid) = self.cur {
                        self.procs.get_mut(&pid).expect("pid exists").ctx_mut().pc = elr;
                    }
                    return Some(Event::Custom { nr, args });
                }
                match self.do_syscall(nr, args) {
                    SysOutcome::Ret(v) => {
                        self.machine.cpu.set_reg(0, v);
                        if self.deliver_signal(host, elr, spsr) {
                            return None;
                        }
                        // sched_yield rotates among live threads — but
                        // not under the SMP scheduler, which owns
                        // thread placement (yield then just returns and
                        // the core runs out its quantum).
                        let multi = self.cur.map(|pid| self.procs[&pid].live_threads() > 1).unwrap_or(false);
                        if nr == Sysno::Yield.nr() && multi && !self.smp_mode {
                            self.rotate_thread(host, elr, spsr);
                        } else {
                            self.user_return(host, elr, spsr);
                        }
                        None
                    }
                    SysOutcome::Park => {
                        // Futex wait: the thread is already marked
                        // parked and enqueued; it observes 0 in x0 when
                        // it eventually resumes.
                        self.machine.cpu.set_reg(0, 0);
                        if self.smp_mode {
                            self.save_thread_at(elr, spsr);
                            self.descheduled = true;
                        } else {
                            // Cooperative mode: another runnable thread
                            // exists (the park precondition), switch to
                            // it.
                            self.rotate_thread(host, elr, spsr);
                        }
                        None
                    }
                    SysOutcome::Sigreturn => {
                        if !self.sigreturn(host) {
                            self.finish_process(-4);
                            return Some(Event::Exited(-4));
                        }
                        None
                    }
                    SysOutcome::Exit(code) => {
                        // `exit` ends the calling thread; the process ends
                        // with the last thread's code.
                        let last = self
                            .cur
                            .map(|pid| self.procs.get_mut(&pid).expect("pid exists").exit_current_thread())
                            .unwrap_or(true);
                        if last {
                            self.finish_process(code);
                            Some(Event::Exited(code))
                        } else if self.smp_mode {
                            self.descheduled = true;
                            None
                        } else {
                            self.switch_to_next_thread(host);
                            None
                        }
                    }
                }
            }
            ExceptionClass::DataAbortLower | ExceptionClass::InsnAbortLower => {
                let is_fetch = class == ExceptionClass::InsnAbortLower;
                let Some((fault, wnr, _)) = esr::esr_abort_info(esr_v) else {
                    self.finish_process(-11);
                    return Some(Event::Exited(-11));
                };
                self.charge_fault_path(host);
                self.stats.page_faults += 1;
                let resolved = matches!(fault, esr::FaultStatus::Translation(_) | esr::FaultStatus::AccessFlag(_))
                    && self.fault_in_current(far, wnr, is_fetch);
                if resolved {
                    // Retry the faulting instruction.
                    self.user_return(host, elr, spsr);
                    None
                } else {
                    self.finish_process(-11);
                    Some(Event::Exited(-11))
                }
            }
            ExceptionClass::Brk => {
                // BRK is the "test program finished" convention for raw
                // programs: the immediate is the exit code.
                let code = esr::esr_imm(esr_v) as i64;
                self.finish_process(code);
                Some(Event::Exited(code))
            }
            ExceptionClass::Unknown | ExceptionClass::IllegalState => {
                // SIGILL.
                self.finish_process(-4);
                Some(Event::Exited(-4))
            }
            // Watchpoints, HVC, trapped sysregs: upper layers.
            _ => Some(Event::Raw(if host { Exit::El2(class) } else { Exit::El1(class) })),
        }
    }

    /// Demand-page the current process at `far` (huge regions fault in
    /// whole 2 MiB blocks).
    fn fault_in_current(&mut self, far: u64, is_write: bool, is_fetch: bool) -> bool {
        let Some(pid) = self.cur else { return false };
        let p = self.procs.get_mut(&pid).expect("pid exists");
        if p.mm.is_huge(far) {
            return !is_fetch && p.mm.fault_in_block(&mut self.machine.mem, far, is_write).is_some();
        }
        p.mm.fault_in(&mut self.machine.mem, far, is_write, is_fetch).is_some()
    }

    fn finish_process(&mut self, code: i64) {
        if let Some(pid) = self.cur.take() {
            self.procs.get_mut(&pid).expect("pid exists").exit_code = Some(code);
        }
    }

    /// Resume the current process after an upper layer handled a custom
    /// syscall, delivering `ret` in x0.
    pub fn resume_syscall(&mut self, ret: u64) {
        let pid = self.cur.expect("a process is current");
        let host = self.mode == KernelMode::Host;
        let (pc, mut ctx_x) = {
            let p = &self.procs[&pid];
            (p.ctx().pc, p.ctx().x)
        };
        ctx_x[0] = ret;
        self.machine.cpu.x = ctx_x;
        self.user_return(host, pc, PState::user().to_spsr());
    }

    /// Save the current thread's context as interrupted at `(pc, spsr)`.
    fn save_thread_at(&mut self, pc: u64, spsr: u64) {
        let Some(pid) = self.cur else { return };
        let ttbr0 = self.machine.sysreg(SysReg::TTBR0_EL1);
        let sp = if self.machine.cpu.pstate.el == ExceptionLevel::El0 {
            self.machine.cpu.sp_el0
        } else {
            self.machine.cpu.sp_el1
        };
        let p = self.procs.get_mut(&pid).expect("pid exists");
        *p.ctx_mut() = UserContext {
            x: self.machine.cpu.x,
            sp,
            pc,
            pstate: PState::from_spsr(spsr).unwrap_or(PState::user()),
            ttbr0,
        };
    }

    /// Save the current thread at `(pc, spsr)` and run the next runnable
    /// thread of the same process.
    fn rotate_thread(&mut self, host: bool, pc: u64, spsr: u64) {
        if self.cur.is_none() {
            return;
        }
        self.save_thread_at(pc, spsr);
        self.switch_to_next_thread(host);
    }

    /// Load the next runnable thread (after the current one) onto the
    /// CPU. Charges the in-process thread-switch path.
    fn switch_to_next_thread(&mut self, host: bool) {
        let Some(pid) = self.cur else { return };
        let Some(next) = self.procs[&pid].next_runnable() else {
            // Every surviving thread is parked or exited — a
            // guest-driven deadlock the park precondition should rule
            // out. Fail closed: end the process (the run loop then
            // winds down) rather than panicking the host.
            self.finish_process(-11);
            return;
        };
        let ctx = {
            let p = self.procs.get_mut(&pid).expect("pid exists");
            p.cur_thread = next;
            p.ctx().clone()
        };
        let m = &self.machine.model;
        let cost = m.path_cost(300) + m.gpregs_roundtrip(31);
        self.machine.charge(cost);
        self.machine.cpu.x = ctx.x;
        self.machine.cpu.sp_el0 = ctx.sp;
        // Same address space: TTBR0 changes only if this thread recorded
        // one (LightZone per-thread domains).
        if ctx.ttbr0 != 0 {
            self.machine.write_sysreg_charged(SysReg::TTBR0_EL1, ctx.ttbr0);
        }
        self.stats.ctx_switches += 1;
        self.user_return(host, ctx.pc, ctx.pstate.to_spsr());
    }

    /// Raise a signal on a process (the harness-side `kill`).
    pub fn send_signal(&mut self, pid: Pid, sig: u64) {
        self.procs.get_mut(&pid).expect("no such pid").sig_pending.push_back(sig);
    }

    /// If the current process has a deliverable pending signal, push a
    /// signal frame (full context including TTBR0 and PSTATE/PAN — the
    /// §6 extension) and enter the handler. Returns whether a handler
    /// was entered.
    fn deliver_signal(&mut self, host: bool, pc: u64, spsr: u64) -> bool {
        let Some(pid) = self.cur else { return false };
        let ttbr0 = self.machine.sysreg(SysReg::TTBR0_EL1);
        let (sig, handler, frame) = {
            let p = self.procs.get_mut(&pid).expect("pid exists");
            if p.sig_frame.is_some() {
                return false; // no nesting
            }
            let Some(&sig) = p.sig_pending.front() else { return false };
            let Some(&handler) = p.sig_handlers.get(&sig) else {
                // No handler: default action terminates (SIGKILL-style)
                // would be handled by the caller; drop silently here.
                p.sig_pending.pop_front();
                return false;
            };
            p.sig_pending.pop_front();
            let frame = UserContext {
                x: self.machine.cpu.x,
                sp: self.machine.cpu.sp_el0,
                pc,
                pstate: PState::from_spsr(spsr).unwrap_or(PState::user()),
                ttbr0,
            };
            (sig, handler, frame)
        };
        self.procs.get_mut(&pid).expect("pid exists").sig_frame = Some(frame);
        // Signal-delivery path cost: frame setup + ucontext writes.
        let m = &self.machine.model;
        let cost = m.path_cost(500) + 40 * m.mem_access;
        self.machine.charge(cost);
        self.machine.cpu.set_reg(0, sig);
        self.user_return(host, handler, PState::user().to_spsr());
        true
    }

    /// Restore the signal frame on `rt_sigreturn`. Returns false if no
    /// frame is active (a stray sigreturn — fatal to the caller).
    fn sigreturn(&mut self, host: bool) -> bool {
        let Some(pid) = self.cur else { return false };
        let Some(frame) = self.procs.get_mut(&pid).expect("pid exists").sig_frame.take() else {
            return false;
        };
        let m = &self.machine.model;
        let cost = m.path_cost(400) + 40 * m.mem_access;
        self.machine.charge(cost);
        self.machine.cpu.x = frame.x;
        self.machine.cpu.sp_el0 = frame.sp;
        // TTBR0 (the interrupted domain) is part of the frame (§6).
        self.machine.write_sysreg_charged(SysReg::TTBR0_EL1, frame.ttbr0);
        self.user_return(host, frame.pc, frame.pstate.to_spsr());
        true
    }

    /// Kill the current process (used by isolation layers on violations:
    /// "we detect unauthorized access … and terminate the compromised
    /// process", §4.2).
    pub fn kill_current(&mut self, code: i64) -> Event {
        self.finish_process(code);
        Event::Exited(code)
    }

    /// Snapshot the kernel counters as an observability report section.
    pub fn metrics_section(&self) -> lz_machine::Section {
        lz_machine::Section::new("kernel")
            .with("syscalls", self.stats.syscalls)
            .with("page_faults", self.stats.page_faults)
            .with("ctx_switches", self.stats.ctx_switches)
            .with("written_bytes", self.stats.written_bytes)
            .with("processes", self.procs.len() as u64)
            .with("reaps", self.stats.reaps)
    }

    /// Dispatch a base-kernel syscall on behalf of the current process.
    /// Public so the LightZone module can forward syscalls from kernel-
    /// mode processes (§5.1.3: "the kernel module further forwards them
    /// to the OS kernel by managing a syscall table similar to the
    /// kernel's").
    pub fn do_syscall(&mut self, nr: u64, args: [u64; 6]) -> SysOutcome {
        let Some(sys) = Sysno::from_nr(nr) else {
            return SysOutcome::Ret(u64::MAX); // -ENOSYS
        };
        match sys {
            Sysno::Write => {
                let len = args[2];
                // Copy cost: the kernel reads the user buffer through the
                // kernel-managed tables.
                let copy = (len / 8 + 1) * self.machine.model.mem_access * 2;
                self.machine.charge(copy);
                self.stats.written_bytes += len;
                SysOutcome::Ret(len)
            }
            Sysno::Exit => SysOutcome::Exit(args[0] as i64),
            Sysno::ClockGettime => SysOutcome::Ret(self.machine.cpu.cycles),
            Sysno::Yield => SysOutcome::Ret(0),
            Sysno::Getpid => SysOutcome::Ret(self.cur.unwrap_or(0) as u64),
            Sysno::Gettid => {
                let Some(pid) = self.cur else { return SysOutcome::Ret(0) };
                SysOutcome::Ret(self.procs[&pid].current_tid() as u64)
            }
            Sysno::Clone => {
                let (entry, stack, arg) = (args[0], args[1], args[2]);
                let Some(pid) = self.cur else { return SysOutcome::Ret(u64::MAX) };
                let m = &self.machine.model;
                let cost = m.path_cost(1200) + 20 * m.mem_access; // task_struct setup
                self.machine.charge(cost);
                let tid = self.procs.get_mut(&pid).expect("pid exists").spawn_thread(entry, stack, arg);
                SysOutcome::Ret(tid as u64)
            }
            Sysno::Futex => self.do_futex(args),
            Sysno::Kill => {
                let (target, sig) = (args[0] as Pid, args[1]);
                let me = self.cur.unwrap_or(0);
                // Self-signalling only (enough for the evaluation). The
                // pid-0 fallback never names a real process, so resolve
                // gracefully instead of indexing.
                match self.procs.get_mut(&me) {
                    Some(p) if target == me || target == 0 => {
                        p.sig_pending.push_back(sig);
                        SysOutcome::Ret(0)
                    }
                    _ => SysOutcome::Ret(u64::MAX),
                }
            }
            Sysno::Sigaction => {
                let (sig, handler) = (args[0], args[1]);
                let Some(pid) = self.cur else { return SysOutcome::Ret(u64::MAX) };
                let p = self.procs.get_mut(&pid).expect("pid exists");
                if handler == 0 {
                    p.sig_handlers.remove(&sig);
                } else {
                    p.sig_handlers.insert(sig, handler);
                }
                SysOutcome::Ret(0)
            }
            Sysno::Sigreturn => SysOutcome::Sigreturn,
            Sysno::Mmap => {
                let (addr, len) = (args[0], args[1]);
                let prot = VmProt {
                    read: args[2] & syscall::prot::READ != 0,
                    write: args[2] & syscall::prot::WRITE != 0,
                    exec: args[2] & syscall::prot::EXEC != 0,
                };
                let Some(pid) = self.cur else { return SysOutcome::Ret(u64::MAX) };
                let p = self.procs.get_mut(&pid).expect("pid exists");
                p.mm.add_vma(Vma {
                    start: addr,
                    end: addr + lz_arch::page_align_up(len),
                    prot,
                    source: VmaSource::Anon,
                });
                SysOutcome::Ret(addr)
            }
            Sysno::Munmap => {
                let (addr, len) = (args[0], args[1]);
                let Some(pid) = self.cur else { return SysOutcome::Ret(u64::MAX) };
                let vmid = self.machine.walk_config().vmid();
                let p = self.procs.get_mut(&pid).expect("pid exists");
                let freed = p.mm.unmap(&mut self.machine.mem, addr, len);
                // Cross-core shootdown: a stale entry on a remote core
                // would keep the freed frame reachable.
                for va in &freed {
                    self.machine.shootdown_va(vmid, *va);
                }
                let c = self.machine.model.dsb + freed.len() as u64 * self.machine.model.insn_base * 2;
                self.machine.charge(c);
                SysOutcome::Ret(0)
            }
            Sysno::Mprotect => {
                let (addr, len) = (args[0], args[1]);
                let prot = VmProt {
                    read: args[2] & syscall::prot::READ != 0,
                    write: args[2] & syscall::prot::WRITE != 0,
                    exec: args[2] & syscall::prot::EXEC != 0,
                };
                let Some(pid) = self.cur else { return SysOutcome::Ret(u64::MAX) };
                let vmid = self.machine.walk_config().vmid();
                let p = self.procs.get_mut(&pid).expect("pid exists");
                let touched = p.mm.protect(&mut self.machine.mem, addr, len, prot);
                // Cross-core shootdown: permissions must tighten on
                // every core, not just the calling one.
                for va in &touched {
                    self.machine.shootdown_va(vmid, *va);
                }
                let c = self.machine.model.dsb + touched.len() as u64 * self.machine.model.insn_base * 2;
                self.machine.charge(c);
                SysOutcome::Ret(0)
            }
        }
    }

    /// `futex(uaddr, op, val)`.
    ///
    /// `WAIT` atomically re-checks `*uaddr` against `val` (atomicity is
    /// trivial: the interleaver never splits a syscall) and parks the
    /// calling thread on a mismatch-free check. Because the modelled
    /// kernel has no timer interrupt, a thread may only park while
    /// another runnable thread exists in the process; otherwise the
    /// call returns 0 immediately — a legal spurious wakeup under the
    /// futex contract, and callers loop anyway.
    fn do_futex(&mut self, args: [u64; 6]) -> SysOutcome {
        const EAGAIN: u64 = -11i64 as u64;
        let (uaddr, op, val) = (args[0], args[1], args[2] as u32);
        let Some(pid) = self.cur else { return SysOutcome::Ret(u64::MAX) };
        // The kernel reads the futex word through the kernel-managed
        // tables (get_user).
        self.machine.charge(2 * self.machine.model.mem_access);
        match op {
            syscall::futex::WAIT => {
                let Some(cur_val) = self.read_user_u32(pid, uaddr) else {
                    return SysOutcome::Ret(u64::MAX); // -EFAULT-ish
                };
                if cur_val != val {
                    return SysOutcome::Ret(EAGAIN);
                }
                let p = self.procs.get_mut(&pid).expect("pid exists");
                if p.runnable_threads() <= 1 {
                    return SysOutcome::Ret(0); // spurious wakeup, see above
                }
                let i = p.cur_thread;
                let tid = p.threads[i].tid;
                p.threads[i].parked = true;
                p.futex_waiters.entry(uaddr).or_default().push_back(tid);
                SysOutcome::Park
            }
            syscall::futex::WAKE => {
                // Wake-path cost: walk the hash bucket, mark wakeups.
                self.machine.charge(self.machine.model.path_cost(80));
                let p = self.procs.get_mut(&pid).expect("pid exists");
                let mut woken = 0u64;
                while woken < val as u64 {
                    let Some(tid) = p.futex_waiters.get_mut(&uaddr).and_then(|q| q.pop_front()) else {
                        break;
                    };
                    if let Some(t) = p.threads.iter_mut().find(|t| t.tid == tid) {
                        if t.parked && !t.exited {
                            t.parked = false;
                            woken += 1;
                        }
                    }
                }
                if let Some(q) = p.futex_waiters.get(&uaddr) {
                    if q.is_empty() {
                        p.futex_waiters.remove(&uaddr);
                    }
                }
                SysOutcome::Ret(woken)
            }
            _ => SysOutcome::Ret(u64::MAX), // -ENOSYS-ish: unmodelled op
        }
    }

    /// Read a `u32` from the process's address space through the
    /// kernel-managed tables, faulting the page in if needed.
    fn read_user_u32(&mut self, pid: Pid, va: u64) -> Option<u32> {
        let p = self.procs.get_mut(&pid)?;
        let page = lz_arch::page_align_down(va);
        let pa_page = match lz_machine::walk::s1_lookup(&self.machine.mem, p.mm.root, page) {
            Some((pa, _, _)) => pa,
            None => lz_arch::page_align_down(p.mm.fault_in(&mut self.machine.mem, va, false, false)?),
        };
        self.machine.mem.read_u32(pa_page + (va & lz_arch::PAGE_MASK))
    }

    /// Table 4 rows 1–2: the software side of a syscall round trip
    /// (hardware entry/return costs are charged by the machine itself).
    ///
    /// The host (VHE) path touches more system registers than a guest
    /// kernel's (`SP_EL0`/`TPIDR` juggling plus VHE's `ELR_EL2`/`SPSR_EL2`
    /// save-restore around re-enabling exceptions); on Carmel those writes
    /// dominate and make host syscalls *more* expensive than guest ones.
    fn charge_syscall_path(&mut self, host: bool) {
        let m = &self.machine.model;
        let mut cost = m.gpregs_roundtrip(31) + m.path_cost(SYSCALL_PATH_INSNS) + m.trap_cache_pollution;
        if host {
            cost += 3 * m.sysreg_read + 3 * m.sysreg_write;
        } else {
            cost += 2 * m.sysreg_read;
        }
        self.machine.charge(cost);
    }

    /// The software side of a page-fault round trip.
    fn charge_fault_path(&mut self, host: bool) {
        let m = &self.machine.model;
        let mut cost =
            m.gpregs_roundtrip(31) + m.path_cost(FAULT_PATH_INSNS) + m.trap_cache_pollution + 8 * m.mem_access;
        if host {
            cost += 3 * m.sysreg_read + 3 * m.sysreg_write;
        } else {
            cost += 3 * m.sysreg_read;
        }
        self.machine.charge(cost);
    }
}

/// Result of a base-kernel syscall.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SysOutcome {
    /// Deliver this value in x0.
    Ret(u64),
    /// The process exited.
    Exit(i64),
    /// `rt_sigreturn`: the caller must restore the signal frame.
    Sigreturn,
    /// `futex(WAIT)` parked the calling thread: it is marked parked and
    /// enqueued; the caller must switch it off the CPU and deliver 0 in
    /// x0 when it is eventually woken.
    Park,
}

#[cfg(test)]
mod tests {
    use super::*;
    use lz_arch::asm::Asm;

    const CODE: u64 = 0x40_0000;

    fn exit_prog(code: u16) -> Program {
        let mut a = Asm::new(CODE);
        a.movz(0, code, 0);
        a.movz(8, Sysno::Exit.nr() as u16, 0);
        a.svc(0);
        Program::from_code(CODE, a.bytes())
    }

    #[test]
    fn host_process_runs_and_exits() {
        let mut k = Kernel::new_host(Platform::CortexA55);
        let pid = k.spawn(&exit_prog(42));
        k.enter_process(pid);
        assert_eq!(k.run(100_000), Event::Exited(42));
        assert_eq!(k.process(pid).exit_code, Some(42));
        assert!(k.stats.page_faults >= 1, "code page demand-faulted");
    }

    #[test]
    fn guest_process_runs_and_exits() {
        let mut k = Kernel::new_guest(Platform::CortexA55);
        let pid = k.spawn(&exit_prog(7));
        k.enter_process(pid);
        assert_eq!(k.run(100_000), Event::Exited(7));
    }

    #[test]
    fn getpid_returns_pid() {
        let mut a = Asm::new(CODE);
        a.movz(8, Sysno::Getpid.nr() as u16, 0);
        a.svc(0);
        a.mov_reg(20, 0);
        a.movz(8, Sysno::Exit.nr() as u16, 0);
        a.svc(0);
        let mut k = Kernel::new_host(Platform::CortexA55);
        let pid = k.spawn(&Program::from_code(CODE, a.bytes()));
        k.enter_process(pid);
        k.run(100_000);
        assert_eq!(k.machine.cpu.reg(20), pid as u64);
    }

    #[test]
    fn stack_faults_in_on_demand() {
        let mut a = Asm::new(CODE);
        // Store to the stack, then exit with the loaded-back value.
        a.mov_imm64(1, 0x1234);
        a.str(1, 31, 8); // str x1, [sp, #8]
        a.ldr(0, 31, 8);
        a.movz(8, Sysno::Exit.nr() as u16, 0);
        a.svc(0);
        let mut k = Kernel::new_host(Platform::CortexA55);
        let pid = k.spawn(&Program::from_code(CODE, a.bytes()));
        k.enter_process(pid);
        assert_eq!(k.run(100_000), Event::Exited(0x1234));
    }

    #[test]
    fn wild_access_is_segv() {
        let mut a = Asm::new(CODE);
        a.mov_imm64(0, 0xdead_0000);
        a.ldr(1, 0, 0);
        let mut k = Kernel::new_host(Platform::CortexA55);
        let pid = k.spawn(&Program::from_code(CODE, a.bytes()));
        k.enter_process(pid);
        assert_eq!(k.run(100_000), Event::Exited(-11));
    }

    #[test]
    fn store_to_code_page_is_segv() {
        let mut a = Asm::new(CODE);
        a.mov_imm64(0, CODE);
        a.str(0, 0, 0);
        let mut k = Kernel::new_host(Platform::CortexA55);
        let pid = k.spawn(&Program::from_code(CODE, a.bytes()));
        k.enter_process(pid);
        assert_eq!(k.run(100_000), Event::Exited(-11));
    }

    #[test]
    fn illegal_insn_is_sigill() {
        let mut a = Asm::new(CODE);
        a.raw(0xffff_ffff);
        let mut k = Kernel::new_host(Platform::CortexA55);
        let pid = k.spawn(&Program::from_code(CODE, a.bytes()));
        k.enter_process(pid);
        assert_eq!(k.run(100_000), Event::Exited(-4));
    }

    #[test]
    fn custom_syscall_surfaces_and_resumes() {
        let mut a = Asm::new(CODE);
        a.mov_imm64(8, syscall::custom::LZ_ALLOC);
        a.movz(0, 11, 0);
        a.svc(0);
        a.mov_reg(20, 0); // capture return value
        a.movz(8, Sysno::Exit.nr() as u16, 0);
        a.movz(0, 0, 0);
        a.svc(0);
        let mut k = Kernel::new_host(Platform::CortexA55);
        let pid = k.spawn(&Program::from_code(CODE, a.bytes()));
        k.enter_process(pid);
        match k.run(100_000) {
            Event::Custom { nr, args } => {
                assert_eq!(nr, syscall::custom::LZ_ALLOC);
                assert_eq!(args[0], 11);
            }
            other => panic!("expected custom syscall, got {other:?}"),
        }
        k.resume_syscall(99);
        assert_eq!(k.run(100_000), Event::Exited(0));
        assert_eq!(k.machine.cpu.reg(20), 99);
    }

    #[test]
    fn mmap_munmap_cycle() {
        let mut a = Asm::new(CODE);
        // mmap(0x9000_0000, 0x2000, RW)
        a.mov_imm64(0, 0x9000_0000);
        a.mov_imm64(1, 0x2000);
        a.movz(2, 3, 0);
        a.movz(8, Sysno::Mmap.nr() as u16, 0);
        a.svc(0);
        // touch it
        a.mov_imm64(3, 0x9000_0100);
        a.mov_imm64(4, 0x77);
        a.str(4, 3, 0);
        // munmap
        a.mov_imm64(0, 0x9000_0000);
        a.mov_imm64(1, 0x2000);
        a.movz(8, Sysno::Munmap.nr() as u16, 0);
        a.svc(0);
        // touching again must SIGSEGV
        a.str(4, 3, 0);
        let mut k = Kernel::new_host(Platform::CortexA55);
        let pid = k.spawn(&Program::from_code(CODE, a.bytes()));
        k.enter_process(pid);
        assert_eq!(k.run(100_000), Event::Exited(-11));
        assert!(k.stats.syscalls >= 2);
    }

    #[test]
    fn mprotect_revokes_write() {
        let mut a = Asm::new(CODE);
        a.mov_imm64(0, 0x9000_0000);
        a.mov_imm64(1, 0x1000);
        a.movz(2, 3, 0); // RW
        a.movz(8, Sysno::Mmap.nr() as u16, 0);
        a.svc(0);
        a.mov_imm64(3, 0x9000_0000);
        a.str(3, 3, 0); // fault in, writable
        a.mov_imm64(0, 0x9000_0000);
        a.mov_imm64(1, 0x1000);
        a.movz(2, 1, 0); // R
        a.movz(8, Sysno::Mprotect.nr() as u16, 0);
        a.svc(0);
        a.str(3, 3, 0); // now faults
        let mut k = Kernel::new_host(Platform::CortexA55);
        let pid = k.spawn(&Program::from_code(CODE, a.bytes()));
        k.enter_process(pid);
        assert_eq!(k.run(100_000), Event::Exited(-11));
    }

    #[test]
    fn guest_syscall_cheaper_than_host_on_carmel() {
        // Table 4: guest user->guest kernel (1,423) is far cheaper than
        // host user->host hypervisor (3,848) on Carmel.
        let measure = |mut k: Kernel| {
            let pid = k.spawn(&{
                let mut a = Asm::new(CODE);
                a.movz(8, Sysno::Yield.nr() as u16, 0);
                a.svc(0); // warm
                a.svc(0); // measured
                a.movz(8, Sysno::Exit.nr() as u16, 0);
                a.svc(0);
                Program::from_code(CODE, a.bytes())
            });
            k.enter_process(pid);
            k.run(100_000);
            k.machine.cpu.cycles
        };
        let host = measure(Kernel::new_host(Platform::Carmel));
        let guest = measure(Kernel::new_guest(Platform::Carmel));
        assert!(guest < host, "guest {guest} must be < host {host} on Carmel");
    }

    #[test]
    fn schedule_to_switches_context() {
        let mut k = Kernel::new_host(Platform::CortexA55);
        let p1 = k.spawn(&exit_prog(1));
        let p2 = k.spawn(&exit_prog(2));
        k.enter_process(p1);
        let c0 = k.machine.cpu.cycles;
        k.schedule_to(p2);
        assert!(k.machine.cpu.cycles > c0);
        assert_eq!(k.current(), Some(p2));
        assert_eq!(k.run(100_000), Event::Exited(2));
        assert_eq!(k.stats.ctx_switches, 1);
    }
}
