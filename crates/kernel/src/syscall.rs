//! Syscall numbers and dispatch results.
//!
//! Numbers follow the AArch64 Linux ABI where one exists. The custom
//! range (≥ [`CUSTOM_BASE`]) carries the LightZone API (`lz_*`), the
//! Watchpoint baseline's ioctl equivalents, and the simulated-lwC
//! operations — all of which the base kernel forwards to the layer above.

/// First syscall number the base kernel does not handle itself.
pub const CUSTOM_BASE: u64 = 0x1000;

/// Syscalls known to the base kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sysno {
    /// `write(fd, buf, len)` — byte-counts into the kernel's sink.
    Write,
    /// `exit(code)`.
    Exit,
    /// `clock_gettime` — returns the cycle counter.
    ClockGettime,
    /// `sched_yield`.
    Yield,
    /// `getpid`.
    Getpid,
    /// `gettid`.
    Gettid,
    /// `munmap(addr, len)`.
    Munmap,
    /// `mmap(addr, len, prot, …)` — fixed-address, anonymous.
    Mmap,
    /// `mprotect(addr, len, prot)`.
    Mprotect,
    /// `kill(pid, sig)` — self-signalling only in this kernel.
    Kill,
    /// `rt_sigaction(sig, handler)` — simplified: handler address only.
    Sigaction,
    /// `rt_sigreturn()` — restore the signal frame.
    Sigreturn,
    /// `clone(entry, stack_top, arg)` — simplified thread creation: the
    /// new thread starts at `entry` with `arg` in x0 on the given stack.
    Clone,
    /// `futex(uaddr, op, val)` — [`futex::WAIT`] parks the calling
    /// thread while `*uaddr == val`; [`futex::WAKE`] wakes up to `val`
    /// waiters on `uaddr`.
    Futex,
}

impl Sysno {
    /// The AArch64 Linux syscall number.
    pub const fn nr(self) -> u64 {
        match self {
            Sysno::Write => 64,
            Sysno::Exit => 93,
            Sysno::ClockGettime => 113,
            Sysno::Yield => 124,
            Sysno::Getpid => 172,
            Sysno::Gettid => 178,
            Sysno::Munmap => 215,
            Sysno::Mmap => 222,
            Sysno::Mprotect => 226,
            Sysno::Kill => 129,
            Sysno::Sigaction => 134,
            Sysno::Sigreturn => 139,
            Sysno::Clone => 220,
            Sysno::Futex => 98,
        }
    }

    /// Reverse-map a number.
    pub fn from_nr(nr: u64) -> Option<Sysno> {
        Some(match nr {
            64 => Sysno::Write,
            93 => Sysno::Exit,
            113 => Sysno::ClockGettime,
            124 => Sysno::Yield,
            172 => Sysno::Getpid,
            178 => Sysno::Gettid,
            215 => Sysno::Munmap,
            222 => Sysno::Mmap,
            226 => Sysno::Mprotect,
            129 => Sysno::Kill,
            134 => Sysno::Sigaction,
            139 => Sysno::Sigreturn,
            220 => Sysno::Clone,
            98 => Sysno::Futex,
            _ => return None,
        })
    }
}

/// `futex` operation codes (Linux values, no flag bits modelled).
pub mod futex {
    /// Park while `*uaddr == val`.
    pub const WAIT: u64 = 0;
    /// Wake up to `val` waiters.
    pub const WAKE: u64 = 1;
}

/// `mmap`/`mprotect` prot bits (Linux values).
pub mod prot {
    pub const READ: u64 = 1;
    pub const WRITE: u64 = 2;
    pub const EXEC: u64 = 4;
}

/// Custom syscall numbers forwarded to the isolation layers.
pub mod custom {
    use super::CUSTOM_BASE;

    // LightZone API (Table 2 of the paper).
    pub const LZ_ENTER: u64 = CUSTOM_BASE;
    pub const LZ_ALLOC: u64 = CUSTOM_BASE + 1;
    pub const LZ_FREE: u64 = CUSTOM_BASE + 2;
    pub const LZ_PROT: u64 = CUSTOM_BASE + 3;
    pub const LZ_MAP_GATE_PGT: u64 = CUSTOM_BASE + 4;

    // Watchpoint baseline (ioctl-based prototype, §8).
    pub const WP_ENTER: u64 = CUSTOM_BASE + 0x10;
    pub const WP_PROT: u64 = CUSTOM_BASE + 0x11;
    pub const WP_SWITCH: u64 = CUSTOM_BASE + 0x12;

    // Simulated lwC baseline (§8).
    pub const LWC_CREATE: u64 = CUSTOM_BASE + 0x20;
    pub const LWC_SWITCH: u64 = CUSTOM_BASE + 0x21;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nr_roundtrip() {
        for s in [
            Sysno::Write,
            Sysno::Exit,
            Sysno::ClockGettime,
            Sysno::Yield,
            Sysno::Getpid,
            Sysno::Gettid,
            Sysno::Munmap,
            Sysno::Mmap,
            Sysno::Mprotect,
            Sysno::Kill,
            Sysno::Sigaction,
            Sysno::Sigreturn,
            Sysno::Clone,
            Sysno::Futex,
        ] {
            assert_eq!(Sysno::from_nr(s.nr()), Some(s));
        }
        assert_eq!(Sysno::from_nr(9999), None);
    }

    #[test]
    fn custom_range_is_disjoint() {
        assert!(Sysno::from_nr(custom::LZ_ENTER).is_none());
        assert!(custom::LZ_ENTER >= CUSTOM_BASE);
    }
}
