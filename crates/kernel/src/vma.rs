//! Virtual memory areas and per-process address spaces.

use lz_arch::{is_page_aligned, PAGE_SIZE};
use lz_machine::pte::S1Perms;
use lz_machine::walk::{s1_map_page, s1_unmap};
use lz_machine::PhysMem;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Access protection of a VMA (the `PROT_*` triple).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VmProt {
    pub read: bool,
    pub write: bool,
    pub exec: bool,
}

impl VmProt {
    /// Read-only.
    pub const R: VmProt = VmProt { read: true, write: false, exec: false };
    /// Read-write.
    pub const RW: VmProt = VmProt { read: true, write: true, exec: false };
    /// Read-execute.
    pub const RX: VmProt = VmProt { read: true, write: false, exec: true };
    /// Read-write-execute (rejected for user mappings when the kernel
    /// enforces W^X).
    pub const RWX: VmProt = VmProt { read: true, write: true, exec: true };

    /// Lower to stage-1 PTE permissions for an EL0 user page.
    pub fn to_user_s1(self) -> S1Perms {
        S1Perms { read: self.read, write: self.write, user_exec: self.exec, priv_exec: false, el0: true, global: false }
    }
}

/// Backing contents of a VMA.
#[derive(Debug, Clone)]
pub enum VmaSource {
    /// Zero-filled anonymous memory.
    Anon,
    /// File-like backing: bytes copied in at fault time, zero-padded.
    Bytes(Arc<Vec<u8>>),
}

/// One contiguous mapping `[start, end)`.
#[derive(Debug, Clone)]
pub struct Vma {
    pub start: u64,
    pub end: u64,
    pub prot: VmProt,
    pub source: VmaSource,
}

impl Vma {
    /// Bytes to place at page `va` (page-aligned, within the VMA).
    pub fn content_for(&self, va: u64) -> Option<&[u8]> {
        match &self.source {
            VmaSource::Anon => None,
            VmaSource::Bytes(b) => {
                let off = (va - self.start) as usize;
                if off >= b.len() {
                    None
                } else {
                    Some(&b[off..b.len().min(off + PAGE_SIZE as usize)])
                }
            }
        }
    }
}

/// A process address space: the VMA list plus the kernel-managed ("Linux")
/// stage-1 page table and its ASID.
///
/// LightZone duplicates and overlays *this* table for its kernel-mode
/// processes; the kernel keeps accessing user memory through it (§7.1.2).
#[derive(Debug)]
pub struct Mm {
    /// Root of the kernel-managed stage-1 tree.
    pub root: u64,
    /// ASID assigned to this address space.
    pub asid: u16,
    vmas: BTreeMap<u64, Vma>,
    /// Pages currently faulted in: `va -> pa`.
    resident: BTreeMap<u64, u64>,
    /// Pages whose PTE the kernel has zeroed pending re-fault (used by
    /// break-before-make flows).
    unmapped_hint: BTreeSet<u64>,
    /// Ranges backed by 2 MiB huge pages (the paper's §9.3 NVM buffers).
    huge_ranges: Vec<(u64, u64)>,
    /// Resident huge blocks: 2 MiB-aligned VA → 2 MiB-aligned PA.
    resident_blocks: BTreeMap<u64, u64>,
}

/// Size of a level-2 block mapping.
pub const BLOCK_SIZE: u64 = 2 << 20;

impl Mm {
    /// Create an address space with a fresh table root.
    pub fn new(mem: &mut PhysMem, asid: u16) -> Self {
        Mm {
            root: lz_machine::walk::alloc_table(mem),
            asid,
            vmas: BTreeMap::new(),
            resident: BTreeMap::new(),
            unmapped_hint: BTreeSet::new(),
            huge_ranges: Vec::new(),
            resident_blocks: BTreeMap::new(),
        }
    }

    /// Mark `[start, end)` as huge-page backed (2 MiB aligned).
    ///
    /// # Panics
    ///
    /// Panics on unaligned bounds.
    pub fn mark_huge(&mut self, start: u64, end: u64) {
        assert!(start.is_multiple_of(BLOCK_SIZE) && end.is_multiple_of(BLOCK_SIZE), "huge range must be 2 MiB aligned");
        self.huge_ranges.push((start, end));
    }

    /// Is `va` inside a huge-page range?
    pub fn is_huge(&self, va: u64) -> bool {
        self.huge_ranges.iter().any(|&(s, e)| va >= s && va < e)
    }

    /// Fault in the whole 2 MiB block containing `va`: allocates an
    /// aligned contiguous region and maps it as a level-2 block in the
    /// kernel-managed table. Returns the block's physical base.
    pub fn fault_in_block(&mut self, mem: &mut PhysMem, va: u64, is_write: bool) -> Option<u64> {
        let block = va & !(BLOCK_SIZE - 1);
        if !self.is_huge(va) {
            return None;
        }
        let vma = self.vma_at(va)?.clone();
        if is_write && !vma.prot.write {
            return None;
        }
        if let Some(&pa) = self.resident_blocks.get(&block) {
            return Some(pa);
        }
        let pa = mem.alloc_contiguous(BLOCK_SIZE / PAGE_SIZE);
        lz_machine::walk::s1_map_block(mem, self.root, block, pa, vma.prot.to_user_s1());
        self.resident_blocks.insert(block, pa);
        Some(pa)
    }

    /// Register a mapping (mmap). Pages fault in on first touch.
    ///
    /// # Panics
    ///
    /// Panics on unaligned bounds or overlap with an existing VMA.
    pub fn add_vma(&mut self, vma: Vma) {
        assert!(is_page_aligned(vma.start) && is_page_aligned(vma.end) && vma.start < vma.end, "unaligned VMA");
        if let Some((_, prev)) = self.vmas.range(..vma.end).next_back() {
            assert!(prev.end <= vma.start, "VMA overlap: {:#x?} vs new {:#x}..{:#x}", prev, vma.start, vma.end);
        }
        self.vmas.insert(vma.start, vma);
    }

    /// The VMA containing `va`, if any.
    pub fn vma_at(&self, va: u64) -> Option<&Vma> {
        self.vmas.range(..=va).next_back().map(|(_, v)| v).filter(|v| va < v.end)
    }

    /// Iterate all VMAs.
    pub fn vmas(&self) -> impl Iterator<Item = &Vma> {
        self.vmas.values()
    }

    /// Resident (faulted-in) pages as `(va, pa)` pairs.
    pub fn resident(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.resident.iter().map(|(&va, &pa)| (va, pa))
    }

    /// The physical page backing `va`, if resident (4 KB pages and huge
    /// blocks alike).
    pub fn page_at(&self, va: u64) -> Option<u64> {
        if let Some(pa) = self.resident.get(&(va & !(PAGE_SIZE - 1))) {
            return Some(*pa);
        }
        let block = va & !(BLOCK_SIZE - 1);
        self.resident_blocks.get(&block).map(|pa| pa + (va & (BLOCK_SIZE - 1) & !(PAGE_SIZE - 1)))
    }

    /// The physical base of the resident huge block containing `va`.
    pub fn block_at(&self, va: u64) -> Option<u64> {
        self.resident_blocks.get(&(va & !(BLOCK_SIZE - 1))).copied()
    }

    /// Fault a page in: allocate a frame, copy backing bytes, map it.
    ///
    /// Returns the physical frame, or `None` if `va` is outside any VMA
    /// or the access kind is not permitted by the VMA (a real SIGSEGV).
    pub fn fault_in(&mut self, mem: &mut PhysMem, va: u64, is_write: bool, is_fetch: bool) -> Option<u64> {
        let page = va & !(PAGE_SIZE - 1);
        let vma = self.vma_at(va)?.clone();
        if (is_write && !vma.prot.write) || (is_fetch && !vma.prot.exec) || (!is_write && !is_fetch && !vma.prot.read) {
            return None;
        }
        if let Some(&pa) = self.resident.get(&page) {
            // Already resident (e.g. PTE was zeroed for break-before-make):
            // re-map with the VMA permissions.
            s1_map_page(mem, self.root, page, pa, vma.prot.to_user_s1());
            self.unmapped_hint.remove(&page);
            return Some(pa);
        }
        let pa = mem.alloc_frame();
        if let Some(content) = vma.content_for(page) {
            mem.write_bytes(pa, content);
        }
        s1_map_page(mem, self.root, page, pa, vma.prot.to_user_s1());
        self.resident.insert(page, pa);
        Some(pa)
    }

    /// Unmap `[start, start+len)`: zero PTEs, free frames, forget VMAs
    /// fully inside the range (partial unmaps split nothing — the range
    /// must cover whole VMAs, as all our callers do).
    pub fn unmap(&mut self, mem: &mut PhysMem, start: u64, len: u64) -> Vec<u64> {
        let end = start + len;
        let mut freed = Vec::new();
        let pages: Vec<u64> = self.resident.range(start..end).map(|(&va, _)| va).collect();
        for va in pages {
            if let Some(pa) = self.resident.remove(&va) {
                s1_unmap(mem, self.root, va);
                mem.free_frame(pa);
                freed.push(va);
            }
        }
        self.vmas.retain(|_, v| !(v.start >= start && v.end <= end));
        freed
    }

    /// Change protection on `[start, start+len)` (must cover whole VMAs).
    /// Updates resident PTEs in place and returns the affected pages.
    pub fn protect(&mut self, mem: &mut PhysMem, start: u64, len: u64, prot: VmProt) -> Vec<u64> {
        let end = start + len;
        for (_, v) in self.vmas.range_mut(..end) {
            if v.start >= start && v.end <= end {
                v.prot = prot;
            }
        }
        let mut touched = Vec::new();
        for (&va, &pa) in self.resident.range(start..end) {
            s1_map_page(mem, self.root, va, pa, prot.to_user_s1());
            touched.push(va);
        }
        touched
    }

    /// Zero the PTE for one resident page without freeing the frame
    /// (break-before-make step 1). The page re-faults on next touch.
    pub fn zap_pte(&mut self, mem: &mut PhysMem, va: u64) -> bool {
        let page = va & !(PAGE_SIZE - 1);
        if self.resident.contains_key(&page) {
            s1_unmap(mem, self.root, page);
            self.unmapped_hint.insert(page);
            true
        } else {
            false
        }
    }

    /// Total resident memory in bytes (for the paper's memory-overhead
    /// numbers).
    pub fn resident_bytes(&self) -> u64 {
        self.resident.len() as u64 * PAGE_SIZE + self.resident_blocks.len() as u64 * BLOCK_SIZE
    }

    /// Tear the whole address space down: free every resident frame
    /// (4 KB pages and huge blocks) and the kernel-managed page-table
    /// tree itself. Used by process reaping — without it, fleet-scale
    /// churn (65k+ process lifecycles) leaks every dead process's
    /// memory. The TLB is *not* touched here: dead-ASID entries are
    /// unreachable and are shot down when the ASID is recycled.
    pub fn release_all(&mut self, mem: &mut PhysMem) {
        for (_, pa) in std::mem::take(&mut self.resident) {
            mem.free_frame(pa);
        }
        for (_, pa) in std::mem::take(&mut self.resident_blocks) {
            let mut off = 0;
            while off < BLOCK_SIZE {
                mem.free_frame(pa + off);
                off += PAGE_SIZE;
            }
        }
        self.vmas.clear();
        self.unmapped_hint.clear();
        self.huge_ranges.clear();
        lz_machine::walk::free_s1_tree(mem, self.root);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mm() -> (PhysMem, Mm) {
        let mut mem = PhysMem::new();
        let mm = Mm::new(&mut mem, 1);
        (mem, mm)
    }

    fn anon(start: u64, end: u64, prot: VmProt) -> Vma {
        Vma { start, end, prot, source: VmaSource::Anon }
    }

    #[test]
    fn vma_lookup() {
        let (_, mut m) = mm();
        m.add_vma(anon(0x1000, 0x3000, VmProt::RW));
        assert!(m.vma_at(0x1000).is_some());
        assert!(m.vma_at(0x2fff).is_some());
        assert!(m.vma_at(0x3000).is_none());
        assert!(m.vma_at(0x0fff).is_none());
    }

    #[test]
    #[should_panic(expected = "VMA overlap")]
    fn overlap_rejected() {
        let (_, mut m) = mm();
        m.add_vma(anon(0x1000, 0x3000, VmProt::RW));
        m.add_vma(anon(0x2000, 0x4000, VmProt::RW));
    }

    #[test]
    fn fault_in_and_permissions() {
        let (mut mem, mut m) = mm();
        m.add_vma(anon(0x1000, 0x2000, VmProt::R));
        assert!(m.fault_in(&mut mem, 0x1234, false, false).is_some());
        assert!(m.fault_in(&mut mem, 0x1234, true, false).is_none(), "write to RO VMA is SIGSEGV");
        assert!(m.fault_in(&mut mem, 0x5000, false, false).is_none(), "outside any VMA");
    }

    #[test]
    fn fault_in_copies_backing_bytes() {
        let (mut mem, mut m) = mm();
        let data = Arc::new(vec![0xaa; 100]);
        m.add_vma(Vma { start: 0x1000, end: 0x2000, prot: VmProt::R, source: VmaSource::Bytes(data) });
        let pa = m.fault_in(&mut mem, 0x1000, false, false).unwrap();
        assert_eq!(mem.read(pa + 50, 1), Some(0xaa));
        assert_eq!(mem.read(pa + 100, 1), Some(0), "zero padded past content");
    }

    #[test]
    fn second_fault_reuses_frame() {
        let (mut mem, mut m) = mm();
        m.add_vma(anon(0x1000, 0x2000, VmProt::RW));
        let pa1 = m.fault_in(&mut mem, 0x1000, true, false).unwrap();
        let pa2 = m.fault_in(&mut mem, 0x1008, false, false).unwrap();
        assert_eq!(pa1, pa2);
    }

    #[test]
    fn unmap_frees_and_forgets() {
        let (mut mem, mut m) = mm();
        m.add_vma(anon(0x1000, 0x3000, VmProt::RW));
        m.fault_in(&mut mem, 0x1000, false, false).unwrap();
        m.fault_in(&mut mem, 0x2000, false, false).unwrap();
        let freed = m.unmap(&mut mem, 0x1000, 0x2000);
        assert_eq!(freed.len(), 2);
        assert!(m.vma_at(0x1000).is_none());
        assert_eq!(m.resident_bytes(), 0);
    }

    #[test]
    fn protect_updates_ptes() {
        let (mut mem, mut m) = mm();
        m.add_vma(anon(0x1000, 0x2000, VmProt::RW));
        m.fault_in(&mut mem, 0x1000, true, false).unwrap();
        m.protect(&mut mem, 0x1000, 0x1000, VmProt::R);
        let (_, perms, _) = lz_machine::walk::s1_lookup(&mem, m.root, 0x1000).unwrap();
        assert!(!perms.write);
        assert!(m.fault_in(&mut mem, 0x1000, true, false).is_none(), "VMA prot also updated");
    }

    #[test]
    fn zap_pte_then_refault_same_frame() {
        let (mut mem, mut m) = mm();
        m.add_vma(anon(0x1000, 0x2000, VmProt::RW));
        let pa = m.fault_in(&mut mem, 0x1000, true, false).unwrap();
        assert!(m.zap_pte(&mut mem, 0x1000));
        assert!(lz_machine::walk::s1_lookup(&mem, m.root, 0x1000).is_none());
        let pa2 = m.fault_in(&mut mem, 0x1000, true, false).unwrap();
        assert_eq!(pa, pa2, "frame preserved across break-before-make");
    }

    #[test]
    fn exec_fault_requires_exec_prot() {
        let (mut mem, mut m) = mm();
        m.add_vma(anon(0x1000, 0x2000, VmProt::RW));
        assert!(m.fault_in(&mut mem, 0x1000, false, true).is_none());
    }
}
