//! Processes, programs, and saved user contexts.

use crate::vma::{Mm, VmProt, Vma, VmaSource};
use lz_arch::pstate::PState;
use lz_machine::PhysMem;
use std::sync::Arc;

/// Process identifier.
pub type Pid = u32;

/// A loadable segment of a program image.
#[derive(Debug, Clone)]
pub struct Segment {
    pub va: u64,
    pub data: Vec<u8>,
    pub prot: VmProt,
}

/// A program image: segments plus entry point and stack geometry.
///
/// Programs are built with [`lz_arch::asm::Asm`]; there is no ELF loader
/// because nothing in the evaluation needs one.
#[derive(Debug, Clone)]
pub struct Program {
    pub segments: Vec<Segment>,
    /// Anonymous zero-filled regions `(va, len, prot)` — used for large
    /// buffers that should fault in lazily rather than carry bytes.
    pub anon_segments: Vec<(u64, u64, VmProt)>,
    /// Anonymous regions backed by 2 MiB huge pages (2 MiB-aligned).
    pub huge_segments: Vec<(u64, u64, VmProt)>,
    pub entry: u64,
    /// Top of the initial stack (grows down).
    pub stack_top: u64,
    pub stack_size: u64,
}

impl Program {
    /// Convenience: one code segment plus a default 64 KiB stack at
    /// `0x7fff_0000`.
    pub fn from_code(entry: u64, code: Vec<u8>) -> Self {
        Program {
            segments: vec![Segment { va: entry, data: code, prot: VmProt::RX }],
            anon_segments: Vec::new(),
            huge_segments: Vec::new(),
            entry,
            stack_top: 0x7fff_0000,
            stack_size: 0x1_0000,
        }
    }

    /// Add a data segment, builder-style.
    pub fn with_segment(mut self, va: u64, data: Vec<u8>, prot: VmProt) -> Self {
        self.segments.push(Segment { va, data, prot });
        self
    }

    /// Add an anonymous zero-filled segment, builder-style.
    pub fn with_anon_segment(mut self, va: u64, len: u64, prot: VmProt) -> Self {
        self.anon_segments.push((va, len, prot));
        self
    }

    /// Add a huge-page-backed anonymous segment (2 MiB aligned).
    pub fn with_huge_segment(mut self, va: u64, len: u64, prot: VmProt) -> Self {
        self.huge_segments.push((va, len, prot));
        self
    }
}

/// Saved user-mode register context (the kernel's `pt_regs`).
#[derive(Debug, Clone)]
pub struct UserContext {
    pub x: [u64; 31],
    pub sp: u64,
    pub pc: u64,
    pub pstate: PState,
    /// Saved `TTBR0_EL1` value — LightZone adds TTBR0 (and PAN, which
    /// lives in `pstate`) to the context so signal delivery and scheduling
    /// restore the correct domain (§6).
    pub ttbr0: u64,
}

impl UserContext {
    /// Fresh EL0 context at `entry` with the given stack pointer.
    pub fn user_at(entry: u64, sp: u64) -> Self {
        UserContext { x: [0; 31], sp, pc: entry, pstate: PState::user(), ttbr0: 0 }
    }
}

/// One thread of a process.
#[derive(Debug, Clone)]
pub struct Thread {
    pub tid: u32,
    pub ctx: UserContext,
    pub exited: bool,
    /// Parked on a futex: live but not runnable until woken.
    pub parked: bool,
}

/// A kernel-visible process.
#[derive(Debug)]
pub struct Process {
    pub pid: Pid,
    pub mm: Mm,
    /// Threads; index 0 is the initial thread.
    pub threads: Vec<Thread>,
    /// Index of the thread currently (or last) on the CPU.
    pub cur_thread: usize,
    next_tid: u32,
    pub exit_code: Option<i64>,
    /// Marked by the LightZone module once the process has entered a
    /// virtual environment (one-way ticket, §4.1.1); the base kernel then
    /// routes its traps to the module.
    pub in_lightzone: bool,
    /// Registered signal handlers: signal number → handler VA.
    pub sig_handlers: std::collections::HashMap<u64, u64>,
    /// Signals raised but not yet delivered.
    pub sig_pending: std::collections::VecDeque<u64>,
    /// Futex wait queues: user address → tids parked on it, in arrival
    /// order (FIFO wake).
    pub futex_waiters: std::collections::BTreeMap<u64, std::collections::VecDeque<u32>>,
    /// The interrupted context while a handler runs. The saved
    /// [`UserContext`] carries TTBR0 and (via PSTATE) PAN — the
    /// LightZone-extended signal context of §6 ("PAN and TTBR0 are added
    /// in the signal contexts of the kernel for correct signal
    /// handling"). One level; no nested delivery while a handler runs.
    pub sig_frame: Option<UserContext>,
}

impl Process {
    /// Create a process from a program image: registers VMAs (including
    /// the stack) and prepares the entry context. Pages fault in lazily.
    pub fn load(pid: Pid, asid: u16, mem: &mut PhysMem, program: &Program) -> Self {
        let mut mm = Mm::new(mem, asid);
        for seg in &program.segments {
            let end = lz_arch::page_align_up(seg.va + seg.data.len().max(1) as u64);
            mm.add_vma(Vma {
                start: lz_arch::page_align_down(seg.va),
                end,
                prot: seg.prot,
                source: VmaSource::Bytes(Arc::new(seg.data.clone())),
            });
        }
        for &(va, len, prot) in &program.anon_segments {
            mm.add_vma(Vma {
                start: lz_arch::page_align_down(va),
                end: lz_arch::page_align_up(va + len),
                prot,
                source: VmaSource::Anon,
            });
        }
        for &(va, len, prot) in &program.huge_segments {
            mm.add_vma(Vma { start: va, end: va + len, prot, source: VmaSource::Anon });
            mm.mark_huge(va, va + len);
        }
        mm.add_vma(Vma {
            start: program.stack_top - program.stack_size,
            end: program.stack_top,
            prot: VmProt::RW,
            source: VmaSource::Anon,
        });
        let ctx = UserContext::user_at(program.entry, program.stack_top - 16);
        Process {
            pid,
            mm,
            threads: vec![Thread { tid: 1, ctx, exited: false, parked: false }],
            cur_thread: 0,
            next_tid: 2,
            exit_code: None,
            in_lightzone: false,
            sig_handlers: std::collections::HashMap::new(),
            sig_pending: std::collections::VecDeque::new(),
            futex_waiters: std::collections::BTreeMap::new(),
            sig_frame: None,
        }
    }

    /// The current thread's saved context.
    pub fn ctx(&self) -> &UserContext {
        &self.threads[self.cur_thread].ctx
    }

    /// Mutable access to the current thread's saved context.
    pub fn ctx_mut(&mut self) -> &mut UserContext {
        let i = self.cur_thread;
        &mut self.threads[i].ctx
    }

    /// The current thread's id.
    pub fn current_tid(&self) -> u32 {
        self.threads[self.cur_thread].tid
    }

    /// Create a new thread starting at `entry` with the given stack
    /// pointer and `arg` in x0; returns its tid. The caller provides the
    /// stack (a real `pthread_create` maps one first).
    pub fn spawn_thread(&mut self, entry: u64, sp: u64, arg: u64) -> u32 {
        let tid = self.next_tid;
        self.next_tid += 1;
        let mut ctx = UserContext::user_at(entry, sp);
        ctx.x[0] = arg;
        self.threads.push(Thread { tid, ctx, exited: false, parked: false });
        tid
    }

    /// Mark the current thread exited. Returns `true` when it was the
    /// last runnable thread (the process is done).
    pub fn exit_current_thread(&mut self) -> bool {
        let i = self.cur_thread;
        self.threads[i].exited = true;
        self.threads.iter().all(|t| t.exited)
    }

    /// Index of the next runnable thread after the current one
    /// (round-robin), if any. Parked (futex-waiting) threads are
    /// skipped — they are live but not runnable.
    pub fn next_runnable(&self) -> Option<usize> {
        let n = self.threads.len();
        (1..=n).map(|d| (self.cur_thread + d) % n).find(|&i| !self.threads[i].exited && !self.threads[i].parked)
    }

    /// Number of live threads.
    pub fn live_threads(&self) -> usize {
        self.threads.iter().filter(|t| !t.exited).count()
    }

    /// Number of runnable (live and not futex-parked) threads.
    pub fn runnable_threads(&self) -> usize {
        self.threads.iter().filter(|t| !t.exited && !t.parked).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_registers_vmas() {
        let mut mem = PhysMem::new();
        let prog = Program::from_code(0x40_0000, vec![0u8; 100]).with_segment(0x50_0000, vec![1, 2, 3], VmProt::RW);
        let p = Process::load(7, 3, &mut mem, &prog);
        assert_eq!(p.pid, 7);
        assert_eq!(p.mm.asid, 3);
        assert!(p.mm.vma_at(0x40_0000).is_some());
        assert!(p.mm.vma_at(0x50_0000).is_some());
        assert!(p.mm.vma_at(0x7ffe_8000).is_some(), "stack VMA");
        assert_eq!(p.ctx().pc, 0x40_0000);
        assert_eq!(p.ctx().sp, 0x7fff_0000 - 16);
    }

    #[test]
    fn code_vma_is_rx() {
        let mut mem = PhysMem::new();
        let prog = Program::from_code(0x40_0000, vec![0u8; 100]);
        let p = Process::load(1, 1, &mut mem, &prog);
        let vma = p.mm.vma_at(0x40_0000).unwrap();
        assert!(vma.prot.exec && !vma.prot.write);
    }
}
