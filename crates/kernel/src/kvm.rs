//! KVM-like virtualization layer: VMID allocation and world-switch cost
//! paths.
//!
//! The *full* world switch modelled here is what a conventional KVM (VHE)
//! hypercall pays — Table 4 row 5. LightZone's optimized partial switches
//! (conditional `HCR_EL2`/`VTTBR_EL2` retention, shared `pt_regs`,
//! deferred system-register pages) live in the `lightzone` crate and are
//! measured against this path by the ablation benchmarks.

use crate::idalloc::{IdAlloc, IdExhausted, IdGrant};
use lz_machine::Machine;

/// Allocates 16-bit VMIDs with generation-tagged recycling (VMID 0 is
/// reserved for the host). Fresh VMIDs are handed out until the 2^16
/// space is exhausted; after that rollover, freed VMIDs are recycled
/// oldest-first. A recycled grant's previous life may still tag live TLB
/// entries, so the caller must `invalidate_vmid`/`shootdown_vmid` before
/// programming a recycled VMID into `VTTBR_EL2` — see
/// [`crate::idalloc::IdAlloc`].
#[derive(Debug, Clone)]
pub struct VmidAllocator {
    ids: IdAlloc,
}

impl VmidAllocator {
    /// Full 2^16 − 1 VMID space.
    pub fn new() -> Self {
        VmidAllocator { ids: IdAlloc::new() }
    }

    /// Restricted space `1..=space` — lets tests reach VMID rollover in a
    /// few allocations instead of 65,535.
    pub fn with_space(space: u16) -> Self {
        VmidAllocator { ids: IdAlloc::with_space(space) }
    }

    /// Allocate a VMID. Errors (instead of the seed's panic) only when
    /// every VMID in the space is simultaneously live.
    pub fn alloc(&mut self) -> Result<IdGrant, IdExhausted> {
        self.ids.alloc()
    }

    /// Return a dead VM's VMID for recycling. TLB entries tagged with it
    /// may stay resident until the VMID is next granted.
    pub fn free(&mut self, vmid: u16) {
        self.ids.free(vmid);
    }

    /// VMIDs currently live.
    pub fn live(&self) -> u64 {
        self.ids.live()
    }

    /// Total recycled grants (each one forced a shoot-down at reuse).
    pub fn recycles(&self) -> u64 {
        self.ids.recycles()
    }

    /// Times the 16-bit space was exhausted and wrapped.
    pub fn rollovers(&self) -> u64 {
        self.ids.rollovers()
    }

    /// Current allocator generation.
    pub fn generation(&self) -> u64 {
        self.ids.generation()
    }
}

impl Default for VmidAllocator {
    fn default() -> Self {
        Self::new()
    }
}

/// Number of EL1 system registers a conventional world switch context-
/// switches in each direction (SCTLR, TTBR0/1, TCR, MAIR, VBAR, ESR, FAR,
/// ELR, SPSR, SP_EL0/1, TPIDRs, CONTEXTIDR, CPACR, PAR, AMAIR, AFSR0/1, …).
pub const FULL_SWITCH_SYSREGS: u64 = 14;

/// Charge the cost of saving one EL1 register file to memory
/// (`mrs` + `str` per register).
pub fn charge_sysreg_ctx_save(machine: &mut Machine, n: u64) {
    let m = &machine.model;
    let cost = n * (m.sysreg_read + m.mem_access + m.insn_base * 2);
    machine.charge(cost);
}

/// Charge the cost of restoring one EL1 register file from memory
/// (`ldr` + `msr` per register).
pub fn charge_sysreg_ctx_restore(machine: &mut Machine, n: u64) {
    let m = &machine.model;
    let cost = n * (m.sysreg_write + m.mem_access + m.insn_base * 2);
    machine.charge(cost);
}

/// Charge a *full* KVM world switch out of a guest and back in — what a
/// conventional hypercall costs (Table 4 row 5): save the guest's EL1
/// state, restore the host's, handle, restore the guest's, save the
/// host's, plus vGIC/timer save+restore and the `HCR_EL2`/`VTTBR_EL2`
/// updates LightZone avoids.
pub fn charge_full_world_switch(machine: &mut Machine) {
    // Outbound: save guest, restore host.
    charge_sysreg_ctx_save(machine, FULL_SWITCH_SYSREGS);
    charge_sysreg_ctx_restore(machine, FULL_SWITCH_SYSREGS);
    // Inbound: save host, restore guest.
    charge_sysreg_ctx_save(machine, FULL_SWITCH_SYSREGS);
    charge_sysreg_ctx_restore(machine, FULL_SWITCH_SYSREGS);
    // vGIC + timer state, both directions.
    let vgic = machine.model.vgic_timer_switch;
    machine.charge(vgic);
    // Mode switches: HCR_EL2 (guest<->host mode) and VTTBR_EL2 (VMID)
    // are each written twice (leave + re-enter).
    let m = &machine.model;
    let cost = 2 * (m.hcr_el2_write + m.vttbr_el2_write);
    machine.charge(cost);
    // General-purpose registers both directions.
    let gp = machine.model.gpregs_roundtrip(31) * 2;
    machine.charge(gp);
}

/// A guest VM's identity as seen by the host KVM layer.
#[derive(Debug, Clone, Copy)]
pub struct GuestVm {
    pub vmid: u16,
    /// Stage-2 root for the VM.
    pub s2_root: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use lz_arch::Platform;

    #[test]
    fn vmids_are_unique_and_nonzero() {
        let mut a = VmidAllocator::new();
        let x = a.alloc().unwrap();
        let y = a.alloc().unwrap();
        assert_ne!(x.id, 0);
        assert_ne!(x.id, y.id);
        assert!(!x.recycled && !y.recycled);
    }

    #[test]
    fn vmid_rollover_marks_recycled_grants() {
        let mut a = VmidAllocator::with_space(2);
        let x = a.alloc().unwrap();
        let y = a.alloc().unwrap();
        assert!(a.alloc().is_err(), "all live: typed exhaustion, no panic");
        a.free(x.id);
        a.free(y.id);
        let r = a.alloc().unwrap();
        assert_eq!((r.id, r.recycled), (x.id, true), "oldest freed VMID first");
        assert_eq!(a.rollovers(), 1);
        assert_eq!(a.recycles(), 1);
        assert_eq!(r.generation, 1);
    }

    #[test]
    fn full_switch_is_expensive_on_carmel() {
        let mut carmel = Machine::new(Platform::Carmel);
        charge_full_world_switch(&mut carmel);
        let carmel_cost = carmel.cpu.cycles;
        let mut a55 = Machine::new(Platform::CortexA55);
        charge_full_world_switch(&mut a55);
        let a55_cost = a55.cpu.cycles;
        // Table 4: KVM hypercall is 28,580 (Carmel) vs 1,287 (A55). The
        // switch body (without trap entry/exit) must dominate and sit in
        // the right ballpark.
        assert!(carmel_cost > 20_000 && carmel_cost < 32_000, "carmel switch = {carmel_cost}");
        assert!(a55_cost > 700 && a55_cost < 1_400, "a55 switch = {a55_cost}");
    }
}
