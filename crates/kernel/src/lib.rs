//! Kernel substrate for the LightZone reproduction.
//!
//! A minimal Linux-like kernel that is *modelled* (Rust code mutating the
//! simulated machine and charging cycles) rather than interpreted:
//!
//! * [`vma`] — virtual memory areas with demand paging,
//! * [`process`] — processes, saved user contexts, programs,
//! * [`syscall`] — the syscall numbers and dispatch results,
//! * [`idalloc`] — the generation-tagged recycling allocator behind
//!   VMIDs and ASIDs (rollover-correct: recycled IDs force TLB
//!   invalidation at reuse),
//! * [`kvm`] — the KVM-like virtualization layer: VMID allocation and the
//!   world-switch cost paths (full switches for conventional VMs; the
//!   partial, optimized switches LightZone uses are in the `lightzone`
//!   crate),
//! * [`kernel`] — the [`Kernel`] itself, in host (VHE, EL2) or guest
//!   (EL1) mode, with the trap-path cost accounting that Table 4 measures.
//!
//! LightZone's kernel module and Lowvisor (the `lightzone` crate) sit on
//! top of this crate exactly as the paper's patches sit on Linux/KVM.

pub mod idalloc;
pub mod kernel;
pub mod kvm;
pub mod process;
pub mod sched;
pub mod syscall;
pub mod vma;

pub use idalloc::{IdAlloc, IdExhausted, IdGrant};
pub use kernel::{Event, Kernel, KernelMode, SysOutcome};
pub use process::{Pid, Process, Program, Segment, UserContext};
pub use sched::{SmpConfig, SmpRun};
pub use syscall::Sysno;
pub use vma::{Mm, VmProt, Vma, VmaSource};
