//! SMP scheduler: per-core run queues, work stealing, deterministic
//! epoch-sliced execution.
//!
//! [`Kernel::run_smp`] drives an N-core [`lz_machine`] machine the way
//! a real kernel's per-CPU schedulers would. Guest execution happens in
//! *epochs* ([`lz_machine::Machine::run_epoch`]): every busy core runs
//! its remaining quantum concurrently (host threads under
//! `LZ_PARALLEL`, sequential deterministic replay otherwise), and all
//! kernel work — trap handling, futex parks and wakes, thread
//! placement, shootdowns — happens barrier-side in core order, so runs
//! are byte-reproducible on either executor:
//!
//! * every core has its own FIFO run queue of `(pid, thread)` entries;
//! * `clone` places the new thread on the least-loaded *other* core;
//! * an idle core steals from the longest remote queue;
//! * the schedule/commit visiting origin rotates each round under a
//!   seedable LCG, so different seeds produce different (but each
//!   fully deterministic) interleavings.
//!
//! While `run_smp` is active the base kernel's cooperative intra-
//! process thread rotation is suppressed (`Kernel::smp_mode`): `yield`
//! simply returns (the thread runs out its quantum), and futex parks /
//! thread exits signal the scheduler through `Kernel::descheduled`
//! instead of switching in place.

use crate::kernel::{Event, Kernel, KernelMode};
use crate::process::Pid;
use lz_arch::pstate::ExceptionLevel;
use lz_arch::sysreg::{sctlr, ttbr, SysReg};
use lz_machine::Exit;
use std::collections::{BTreeSet, VecDeque};

/// Configuration for [`Kernel::run_smp`].
#[derive(Debug, Clone, Copy)]
pub struct SmpConfig {
    /// Number of cores to bring online (1..=[`lz_machine::MAX_CORES`]).
    pub cores: usize,
    /// Instructions per scheduling quantum.
    pub quantum: u64,
    /// Seed for the round-rotation schedule.
    pub seed: u64,
}

impl Default for SmpConfig {
    fn default() -> Self {
        SmpConfig { cores: 2, quantum: 64, seed: 0x5eed }
    }
}

/// Result of an [`Kernel::run_smp`] run.
#[derive(Debug, Clone, Default)]
pub struct SmpRun {
    /// Processes that exited, in exit order, with their codes.
    pub exited: Vec<(Pid, i64)>,
    /// Total instructions retired across all cores.
    pub steps: u64,
    /// The run ended before every process exited (instruction limit
    /// reached, a deadlock of parked threads, or a foreign event).
    pub stalled: bool,
}

impl Kernel {
    /// Run every spawned process across `cfg.cores` cores until all
    /// exit, `limit` total instructions retire, or nothing is runnable.
    ///
    /// Only base-kernel workloads are supported: a custom syscall or a
    /// raw machine exit aborts the run (`stalled = true`).
    pub fn run_smp(&mut self, cfg: SmpConfig, limit: u64) -> SmpRun {
        assert!(cfg.cores >= 1 && cfg.quantum > 0);
        let n = cfg.cores;
        let host = self.mode == KernelMode::Host;
        self.machine.configure_smp(n);
        self.smp_mode = true;
        self.descheduled = false;

        let mut queues: Vec<VecDeque<(Pid, usize)>> = vec![VecDeque::new(); n];
        // Threads currently queued or on a CPU (BTreeSet keeps every
        // auxiliary structure deterministic).
        let mut scheduled: BTreeSet<(Pid, usize)> = BTreeSet::new();
        // Initial placement: round-robin across cores, so the threads
        // of one process land on distinct cores.
        let mut slot = 0usize;
        for (&pid, p) in &self.procs {
            if p.exit_code.is_some() {
                continue;
            }
            for (i, t) in p.threads.iter().enumerate() {
                if !t.exited && !t.parked {
                    queues[slot % n].push_back((pid, i));
                    scheduled.insert((pid, i));
                    slot += 1;
                }
            }
        }

        let mut run = SmpRun::default();
        let mut lcg = cfg.seed;
        // What each core is executing: `(pid, thread, instructions left
        // in its quantum)`. A thread survives here across epochs when a
        // syscall returns mid-quantum — it resumes without paying the
        // activation path again, exactly like the pre-epoch scheduler's
        // in-slice continuation.
        let mut running: Vec<Option<(Pid, usize, u64)>> = vec![None; n];
        loop {
            if self.procs.values().all(|p| p.exit_code.is_some()) {
                break;
            }
            if run.steps >= limit {
                run.stalled = true;
                break;
            }
            // Schedule phase: fill idle cores, visiting cores from a
            // rotated origin (seedable schedule). Injected preemption
            // draws from the global chaos engine here, barrier-side, so
            // the schedule itself is fixed before the epoch runs.
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let start = ((lcg >> 33) as usize) % n;
            for k in 0..n {
                let c = (start + k) % n;
                if running[c].is_some() {
                    continue;
                }
                let Some((pid, t)) = Self::pick_work(&mut queues, &mut scheduled, &self.procs, c) else {
                    continue;
                };
                self.machine.switch_core(c);
                self.activate_thread(host, pid, t);
                // Injected preemption: the slice ends at an adversarially
                // chosen instruction boundary instead of the full
                // quantum. Fail closed by construction — the thread is
                // re-queued exactly as on a normal quantum expiry, so the
                // fault only perturbs the interleaving.
                let quantum = match self.machine.chaos_fire(lz_machine::FaultSite::SchedPreempt) {
                    Some(draw) => {
                        self.machine.chaos.contained();
                        1 + draw % cfg.quantum
                    }
                    None => cfg.quantum,
                };
                running[c] = Some((pid, t, quantum));
            }
            let mut budgets = vec![0u64; n];
            for (c, slot) in running.iter().enumerate() {
                if let Some((_, _, left)) = slot {
                    budgets[c] = *left;
                }
            }
            if budgets.iter().all(|&b| b == 0) {
                // Every queue drained while processes remain: all
                // surviving threads are parked (deadlock) — bail out.
                run.stalled = true;
                break;
            }

            // Run phase: every busy core executes its budget; cross-core
            // effects commit at the barrier inside `run_epoch`.
            let results = self.machine.run_epoch(&budgets);

            // Commit phase: handle each core's exit in core order. All
            // kernel state mutation happens here, serially, so the
            // parallel and replay executors observe identical schedules.
            let mut foreign = false;
            for c in 0..n {
                let Some((pid, t, left)) = running[c] else {
                    continue;
                };
                let (exit, used) = results[c];
                run.steps += used;
                // The process may have exited on a core committed
                // earlier in this loop: its slice is stale, discard it.
                if self.procs[&pid].exit_code.is_some() {
                    running[c] = None;
                    continue;
                }
                self.machine.switch_core(c);
                // Several cores commit between activations: re-assert
                // which thread this core's register state belongs to
                // before any save/trap path consults `cur`.
                self.cur = Some(pid);
                if let Some(p) = self.procs.get_mut(&pid) {
                    p.cur_thread = t;
                }
                if exit == Exit::Limit {
                    // Quantum exhausted; the thread stays runnable.
                    self.save_current();
                    queues[c].push_back((pid, t));
                    running[c] = None;
                } else {
                    match self.handle_exit(exit) {
                        None => {
                            if self.descheduled {
                                // The thread left the CPU (futex park or
                                // thread exit).
                                self.descheduled = false;
                                scheduled.remove(&(pid, t));
                                running[c] = None;
                            } else {
                                // Syscall handled, thread resumes with
                                // the remainder of its quantum.
                                let left = left - used;
                                if left == 0 {
                                    self.save_current();
                                    queues[c].push_back((pid, t));
                                    running[c] = None;
                                } else {
                                    running[c] = Some((pid, t, left));
                                }
                            }
                        }
                        Some(Event::Exited(code)) => {
                            run.exited.push((pid, code));
                            for q in queues.iter_mut() {
                                q.retain(|e| e.0 != pid);
                            }
                            scheduled.retain(|e| e.0 != pid);
                            running[c] = None;
                            // Slices of this pid still pending on later
                            // cores are discarded by the exit_code
                            // re-check above.
                        }
                        Some(_) => {
                            // An event the SMP scheduler does not handle
                            // (custom syscall, LightZone trap): fatal.
                            foreign = true;
                        }
                    }
                }
                if foreign {
                    run.stalled = true;
                    self.smp_mode = false;
                    return run;
                }
                // Admit threads that became runnable during the commit
                // (clone, futex wake) onto the least-loaded other core.
                self.admit_new(&mut queues, &mut scheduled, c);
            }
        }
        self.smp_mode = false;
        run
    }

    /// Pop the next valid entry for core `c`, stealing from the longest
    /// remote queue when the local one is empty.
    fn pick_work(
        queues: &mut [VecDeque<(Pid, usize)>],
        scheduled: &mut BTreeSet<(Pid, usize)>,
        procs: &std::collections::BTreeMap<Pid, crate::process::Process>,
        c: usize,
    ) -> Option<(Pid, usize)> {
        loop {
            let entry = if let Some(e) = queues[c].pop_front() {
                Some(e)
            } else {
                // Work stealing: victim is the longest queue (lowest
                // index on ties); steal from the back (coldest work).
                // A queue of one is stealable only while at least two
                // entries are queued system-wide: with several runnable
                // threads an idle core must not starve just because each
                // victim queue holds exactly one (the `repro smp`
                // imbalance where core 0 retired almost nothing), but a
                // lone thread on an N-core machine stays put — stealing
                // it would ping-pong the thread across cold TLBs and
                // change single-thread cycle counts.
                let total_queued: usize = queues.iter().map(VecDeque::len).sum();
                let min_victim = if total_queued >= 2 { 1 } else { 2 };
                let victim = (0..queues.len())
                    .filter(|&i| i != c && queues[i].len() >= min_victim)
                    .max_by_key(|&i| (queues[i].len(), std::cmp::Reverse(i)))?;
                queues[victim].pop_back()
            };
            let (pid, t) = entry?;
            // Entries can go stale (process exited, thread parked by a
            // remote wake race): validate before running.
            let p = &procs[&pid];
            if p.exit_code.is_some() || p.threads[t].exited || p.threads[t].parked {
                scheduled.remove(&(pid, t));
                continue;
            }
            return Some((pid, t));
        }
    }

    /// Load thread `t` of `pid` onto the active core, charging the
    /// scheduler pick + register restore path.
    fn activate_thread(&mut self, host: bool, pid: Pid, t: usize) {
        let (root, asid, ctx) = {
            let p = self.procs.get_mut(&pid).expect("pid exists");
            p.cur_thread = t;
            (p.mm.root, p.mm.asid, p.ctx().clone())
        };
        self.cur = Some(pid);
        let m = &self.machine.model;
        let cost = m.path_cost(300) + m.gpregs_roundtrip(31);
        self.machine.charge(cost);
        self.stats.ctx_switches += 1;
        self.machine.set_sysreg(SysReg::SCTLR_EL1, sctlr::M | sctlr::SPAN);
        let t0 = if ctx.ttbr0 != 0 { ctx.ttbr0 } else { ttbr::pack(asid, root) };
        self.machine.write_sysreg_charged(SysReg::TTBR0_EL1, t0);
        self.machine.cpu.x = ctx.x;
        if ctx.pstate.el == ExceptionLevel::El0 {
            self.machine.cpu.sp_el0 = ctx.sp;
        } else {
            self.machine.cpu.sp_el1 = ctx.sp;
        }
        if host {
            self.machine.enter(ctx.pstate, ctx.pc);
        } else {
            self.machine.enter_from_el1(ctx.pstate, ctx.pc);
        }
    }

    /// Enqueue threads that are runnable but not scheduled anywhere —
    /// the output side of `clone` and `futex(WAKE)`. The target is the
    /// least-loaded core, preferring any core other than `from` on
    /// ties, so cloned threads land on distinct cores.
    fn admit_new(
        &mut self,
        queues: &mut [VecDeque<(Pid, usize)>],
        scheduled: &mut BTreeSet<(Pid, usize)>,
        from: usize,
    ) {
        let n = queues.len();
        for (&pid, p) in &self.procs {
            if p.exit_code.is_some() {
                continue;
            }
            for (i, t) in p.threads.iter().enumerate() {
                if t.exited || t.parked || scheduled.contains(&(pid, i)) {
                    continue;
                }
                let target = (0..n).min_by_key(|&c| (queues[c].len(), c == from, c)).expect("at least one core");
                queues[target].push_back((pid, i));
                scheduled.insert((pid, i));
            }
        }
    }
}
