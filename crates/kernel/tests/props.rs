//! Property-based tests for the kernel substrate: VMA bookkeeping and
//! demand paging under arbitrary operation sequences.

use lz_arch::{Platform, PAGE_SIZE};
use lz_kernel::{Mm, VmProt, Vma, VmaSource};
use lz_machine::PhysMem;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Map { slot: u8, pages: u8, prot_w: bool },
    Touch { slot: u8, write: bool },
    Unmap { slot: u8 },
    Protect { slot: u8, prot_w: bool },
}

fn any_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..8, 1u8..5, any::<bool>()).prop_map(|(slot, pages, prot_w)| Op::Map { slot, pages, prot_w }),
        (0u8..8, any::<bool>()).prop_map(|(slot, write)| Op::Touch { slot, write }),
        (0u8..8).prop_map(|slot| Op::Unmap { slot }),
        (0u8..8, any::<bool>()).prop_map(|(slot, prot_w)| Op::Protect { slot, prot_w }),
    ]
}

/// 8 fixed, disjoint VMA slots, 16 pages apart.
fn slot_base(slot: u8) -> u64 {
    0x1000_0000 + slot as u64 * 16 * PAGE_SIZE
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The VMA model (a shadow map) and the real Mm agree after any
    /// operation sequence: residency, permissions, frame reuse.
    #[test]
    fn mm_matches_shadow(ops in proptest::collection::vec(any_op(), 1..60)) {
        let mut mem = PhysMem::new();
        let mut mm = Mm::new(&mut mem, 1);
        // shadow: slot -> (pages, writable, resident_pages)
        let mut shadow: std::collections::HashMap<u8, (u8, bool, std::collections::HashSet<u64>)> =
            std::collections::HashMap::new();
        for op in ops {
            match op {
                Op::Map { slot, pages, prot_w } => {
                    if shadow.contains_key(&slot) {
                        continue;
                    }
                    let start = slot_base(slot);
                    mm.add_vma(Vma {
                        start,
                        end: start + pages as u64 * PAGE_SIZE,
                        prot: if prot_w { VmProt::RW } else { VmProt::R },
                        source: VmaSource::Anon,
                    });
                    shadow.insert(slot, (pages, prot_w, Default::default()));
                }
                Op::Touch { slot, write } => {
                    let Some(&mut (pages, writable, ref mut resident)) = shadow.get_mut(&slot) else {
                        // Untracked slot: fault must fail.
                        prop_assert!(mm.fault_in(&mut mem, slot_base(slot), write, false).is_none());
                        continue;
                    };
                    let va = slot_base(slot) + (pages as u64 - 1) * PAGE_SIZE;
                    let got = mm.fault_in(&mut mem, va, write, false);
                    if write && !writable {
                        prop_assert!(got.is_none(), "write to RO VMA must fail");
                    } else {
                        prop_assert!(got.is_some());
                        resident.insert(va);
                    }
                }
                Op::Unmap { slot } => {
                    let Some((pages, _, _)) = shadow.remove(&slot) else { continue };
                    mm.unmap(&mut mem, slot_base(slot), pages as u64 * PAGE_SIZE);
                }
                Op::Protect { slot, prot_w } => {
                    let Some(&mut (pages, ref mut writable, _)) = shadow.get_mut(&slot) else { continue };
                    mm.protect(
                        &mut mem,
                        slot_base(slot),
                        pages as u64 * PAGE_SIZE,
                        if prot_w { VmProt::RW } else { VmProt::R },
                    );
                    *writable = prot_w;
                }
            }
        }
        // Final agreement: every shadow-resident page is resident in the
        // Mm and mapped with the right writability.
        for (&slot, &(pages, writable, ref resident)) in &shadow {
            prop_assert!(mm.vma_at(slot_base(slot)).is_some());
            let _ = pages;
            for &va in resident {
                prop_assert!(mm.page_at(va).is_some(), "slot {slot} page {va:#x} resident");
                let (_, perms, _) = lz_machine::walk::s1_lookup(&mem, mm.root, va).expect("mapped");
                prop_assert_eq!(perms.write, writable);
            }
        }
        // And nothing outside the shadow is resident.
        let live: u64 = shadow.values().map(|(_, _, r)| r.len() as u64).sum();
        prop_assert!(mm.resident_bytes() / PAGE_SIZE >= live);
    }

    /// Demand paging never hands out the same frame to two live pages.
    #[test]
    fn frames_never_aliased(pages in proptest::collection::vec(0u64..64, 1..40)) {
        let mut mem = PhysMem::new();
        let mut mm = Mm::new(&mut mem, 1);
        mm.add_vma(Vma {
            start: 0x2000_0000,
            end: 0x2000_0000 + 64 * PAGE_SIZE,
            prot: VmProt::RW,
            source: VmaSource::Anon,
        });
        for p in pages {
            mm.fault_in(&mut mem, 0x2000_0000 + p * PAGE_SIZE, true, false);
        }
        let mut frames = std::collections::HashSet::new();
        for (_, pa) in mm.resident() {
            prop_assert!(frames.insert(pa), "frame {pa:#x} aliased");
        }
    }

    /// Kernel scheduling fairness: a process with N compute-bound threads
    /// retires work on all of them.
    #[test]
    fn all_threads_make_progress(nthreads in 2u8..5) {
        use lz_arch::asm::Asm;
        use lz_kernel::{Kernel, Program, Sysno};
        const CODE: u64 = 0x40_0000;
        const OUT: u64 = 0x5000_0000;
        const STACKS: u64 = 0x6000_0000;
        let mut a = Asm::new(CODE);
        let worker = a.label();
        // main: spawn workers with arg = i, then loop-yield until every
        // worker wrote its flag; exit with the flag sum.
        for i in 0..nthreads as u64 - 1 {
            a.adr(0, worker);
            a.mov_imm64(1, STACKS + (i + 1) * 0x2000);
            a.mov_imm64(2, i + 1);
            a.mov_imm64(8, Sysno::Clone.nr());
            a.svc(0);
        }
        a.mov_imm64(9, OUT);
        let wait = a.label();
        a.bind(wait);
        a.mov_imm64(8, Sysno::Yield.nr());
        a.svc(0);
        a.movz(4, 0, 0);
        for i in 0..nthreads as u64 - 1 {
            a.ldr(5, 9, (i + 1) * 8);
            a.add_reg(4, 4, 5);
        }
        a.cmp_imm(4, (nthreads as u16 - 1));
        a.b_ne(wait);
        a.mov_reg(0, 4);
        a.mov_imm64(8, Sysno::Exit.nr());
        a.svc(0);
        // worker: flag[arg] = 1, exit.
        a.bind(worker);
        a.mov_imm64(9, OUT);
        a.lsl_imm(10, 0, 3);
        a.add_reg(9, 9, 10);
        a.movz(3, 1, 0);
        a.str(3, 9, 0);
        a.movz(0, 0, 0);
        a.mov_imm64(8, Sysno::Exit.nr());
        a.svc(0);
        let prog = Program::from_code(CODE, a.bytes())
            .with_anon_segment(OUT, PAGE_SIZE, VmProt::RW)
            .with_anon_segment(STACKS, nthreads as u64 * 0x2000, VmProt::RW);
        let mut k = Kernel::new_host(Platform::CortexA55);
        let pid = k.spawn(&prog);
        k.enter_process(pid);
        prop_assert_eq!(k.run(50_000_000), lz_kernel::Event::Exited(nthreads as i64 - 1));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Observability invariant: with the event journal enabled, every
    /// syscall the kernel dispatches appears as exactly one `Trap(Svc)`
    /// event, and the per-class trap counter agrees with both — for any
    /// number of yields before exit.
    #[test]
    fn journal_svc_traps_match_syscall_counter(nyields in 1u16..24) {
        use lz_arch::asm::Asm;
        use lz_arch::esr::ExceptionClass;
        use lz_kernel::{Kernel, Program, Sysno};
        use lz_machine::EventKind;
        const CODE: u64 = 0x40_0000;
        let mut a = Asm::new(CODE);
        for _ in 0..nyields {
            a.movz(8, Sysno::Yield.nr() as u16, 0);
            a.svc(0);
        }
        a.movz(0, 0, 0);
        a.movz(8, Sysno::Exit.nr() as u16, 0);
        a.svc(0);
        let prog = Program::from_code(CODE, a.bytes());
        let mut k = Kernel::new_host(Platform::CortexA55);
        k.machine.set_metrics(true);
        let pid = k.spawn(&prog);
        k.enter_process(pid);
        k.run(10_000_000);
        let expect = nyields as u64 + 1; // yields + exit
        prop_assert_eq!(k.stats.syscalls, expect);
        let journaled = k.machine.journal.count(|e| matches!(e, EventKind::Trap { class: ExceptionClass::Svc }));
        prop_assert_eq!(journaled, expect);
        prop_assert_eq!(k.machine.metrics.trap_count(ExceptionClass::Svc), expect);
    }
}
