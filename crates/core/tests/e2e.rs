//! End-to-end tests: real programs (assembled A64) running in LightZone
//! virtual environments on the simulated machine.

use lightzone::api::{LzAsm, LzProgramBuilder, RW, SAN_BOTH, SAN_PAN, SAN_TTBR, USER};
use lightzone::pgt::PGT_ALL;
use lightzone::{LightZone, SECURITY_KILL};
use lz_arch::Platform;
use lz_kernel::Event;

const CODE: u64 = 0x40_0000;
const DATA0: u64 = 0x50_0000;
const DATA1: u64 = 0x51_0000;
const KEY: u64 = 0x52_0000;

fn data_seg(b: &mut LzProgramBuilder, va: u64, fill: u8) {
    b.with_segment(va, vec![fill; 4096], lz_kernel::VmProt::RW);
}

/// Run on both platforms and both deployments; return exit codes.
fn run_everywhere(prog: &lightzone::LzProgram) -> Vec<i64> {
    let mut codes = Vec::new();
    for platform in Platform::ALL {
        for guest in [false, true] {
            let mut lz = if guest { LightZone::new_guest(platform) } else { LightZone::new_host(platform) };
            let pid = lz.spawn(prog);
            lz.enter_process(pid);
            codes.push(lz.run_to_exit());
        }
    }
    codes
}

#[test]
fn listing1_demo_two_domains_plus_pan_key() {
    // The paper's Listing 1: two mutually distrusting parts with their
    // own page tables, plus a PAN-protected key attached to all tables.
    let mut b = LzProgramBuilder::new(CODE);
    data_seg(&mut b, DATA0, 0);
    data_seg(&mut b, DATA1, 0);
    data_seg(&mut b, KEY, 0x5a);
    b.asm.lz_enter(true, SAN_BOTH);
    b.asm.lz_alloc(); // pgt0 (id 1)
    b.asm.mov_reg(19, 0);
    b.asm.lz_alloc(); // pgt1 (id 2)
    b.asm.mov_reg(20, 0);
    b.asm.lz_map_gate_pgt_reg(19, 0); // call_gate0 -> pgt0
    b.asm.lz_map_gate_pgt_reg(20, 1); // call_gate1 -> pgt1
    b.asm.lz_prot_reg(DATA0, 4096, 19, RW);
    b.asm.lz_prot_reg(DATA1, 4096, 20, RW);
    b.asm.lz_prot_imm(KEY, 4096, PGT_ALL, 1 | USER); // READ | USER

    // Switch to domain 0 and write data0.
    b.lz_switch_to_ttbr_gate(0);
    b.asm.mov_imm64(1, DATA0);
    b.asm.mov_imm64(2, 100);
    b.asm.str(2, 1, 0);
    // Read the key under PAN-open, "encrypt" (xor) data0 with it.
    b.asm.set_pan(0);
    b.asm.mov_imm64(3, KEY);
    b.asm.ldr(4, 3, 0);
    b.asm.set_pan(1);
    b.asm.ldr(5, 1, 0);
    b.asm.eor_reg(5, 5, 4);
    b.asm.str(5, 1, 0);

    // Switch to domain 1 and write data1.
    b.lz_switch_to_ttbr_gate(1);
    b.asm.mov_imm64(1, DATA1);
    b.asm.mov_imm64(2, 200);
    b.asm.str(2, 1, 0);
    b.asm.set_pan(0);
    b.asm.mov_imm64(3, KEY);
    b.asm.ldr(4, 3, 0);
    b.asm.set_pan(1);
    b.asm.ldr(5, 1, 0);
    b.asm.eor_reg(5, 5, 4);
    // Exit with data1 ^ key so the test can verify the dataflow.
    b.asm.mov_reg(0, 5);
    b.asm.mov_imm64(8, lz_kernel::Sysno::Exit.nr());
    b.asm.svc(0);
    let prog = b.build();

    let key_word = u64::from_le_bytes([0x5a; 8]);
    for code in run_everywhere(&prog) {
        assert_eq!(code as u64, 200 ^ key_word);
    }
}

#[test]
fn ttbr_domain_violation_is_killed() {
    // Access data1 while in domain 0: stage-1 translation fault, module
    // sees the page attached elsewhere, process terminated (§7.2).
    let mut b = LzProgramBuilder::new(CODE);
    data_seg(&mut b, DATA0, 0);
    data_seg(&mut b, DATA1, 0);
    b.asm.lz_enter(true, SAN_TTBR);
    b.asm.lz_alloc();
    b.asm.mov_reg(19, 0);
    b.asm.lz_alloc();
    b.asm.mov_reg(20, 0);
    b.asm.lz_map_gate_pgt_reg(19, 0);
    b.asm.lz_prot_reg(DATA0, 4096, 19, RW);
    b.asm.lz_prot_reg(DATA1, 4096, 20, RW);
    b.lz_switch_to_ttbr_gate(0); // now in domain pgt0
    b.asm.mov_imm64(1, DATA1);
    b.asm.ldr(2, 1, 0); // illegal: DATA1 belongs to pgt1 only
    b.asm.exit_imm(0);
    let prog = b.build();
    for code in run_everywhere(&prog) {
        assert_eq!(code, SECURITY_KILL);
    }
}

#[test]
fn pan_violation_is_killed() {
    // Touch a PAN-protected page without set_pan(0).
    let mut b = LzProgramBuilder::new(CODE);
    data_seg(&mut b, KEY, 7);
    b.asm.lz_enter(false, SAN_PAN);
    b.asm.lz_prot_imm(KEY, 4096, PGT_ALL, 1 | USER);
    b.asm.mov_imm64(1, KEY);
    b.asm.ldr(2, 1, 0); // PAN is set: permission fault -> kill
    b.asm.exit_imm(0);
    let prog = b.build();
    for code in run_everywhere(&prog) {
        assert_eq!(code, SECURITY_KILL);
    }
}

#[test]
fn pan_open_close_works() {
    let mut b = LzProgramBuilder::new(CODE);
    data_seg(&mut b, KEY, 9);
    b.asm.lz_enter(false, SAN_PAN);
    b.asm.lz_prot_imm(KEY, 4096, PGT_ALL, RW | USER);
    b.asm.set_pan(0);
    b.asm.mov_imm64(1, KEY);
    b.asm.mov_imm64(2, 0x77);
    b.asm.str(2, 1, 8);
    b.asm.ldr(0, 1, 8);
    b.asm.set_pan(1);
    b.asm.mov_imm64(8, lz_kernel::Sysno::Exit.nr());
    b.asm.svc(0);
    let prog = b.build();
    for code in run_everywhere(&prog) {
        assert_eq!(code, 0x77);
    }
}

#[test]
fn unprotected_memory_always_accessible() {
    // LightZone processes "always have access to unprotected memory like
    // regular processes" (§4.1).
    let mut b = LzProgramBuilder::new(CODE);
    data_seg(&mut b, DATA0, 3);
    b.asm.lz_enter(true, SAN_BOTH);
    b.asm.mov_imm64(1, DATA0);
    b.asm.ldrb(0, 1, 1);
    b.asm.mov_imm64(8, lz_kernel::Sysno::Exit.nr());
    b.asm.svc(0);
    let prog = b.build();
    for code in run_everywhere(&prog) {
        assert_eq!(code, 3);
    }
}

#[test]
fn syscalls_forward_from_ve() {
    // getpid through the stub -> module -> kernel chain.
    let mut b = LzProgramBuilder::new(CODE);
    b.asm.lz_enter(true, SAN_BOTH);
    b.asm.mov_imm64(8, lz_kernel::Sysno::Getpid.nr());
    b.asm.svc(0);
    b.asm.mov_reg(19, 0);
    b.asm.mov_reg(0, 19);
    b.asm.mov_imm64(8, lz_kernel::Sysno::Exit.nr());
    b.asm.svc(0);
    let prog = b.build();
    let mut lz = LightZone::new_host(Platform::CortexA55);
    let pid = lz.spawn(&prog);
    lz.enter_process(pid);
    assert_eq!(lz.run_to_exit(), pid as i64);
    let stats = &lz.module.proc(pid).unwrap().stats;
    assert!(stats.ve_syscalls >= 2);
    assert!(stats.sanitized_pages >= 1, "code page was sanitized");
}

#[test]
fn eret_injection_killed_by_sanitizer() {
    // A malicious binary plants `eret` — the sanitizer rejects the page
    // before it ever executes.
    let mut b = LzProgramBuilder::new(CODE);
    b.asm.lz_enter(true, SAN_BOTH);
    b.asm.eret();
    b.asm.exit_imm(0);
    let prog = b.build();
    for code in run_everywhere(&prog) {
        assert_eq!(code, SECURITY_KILL);
    }
}

#[test]
fn ldtr_killed_under_pan_sanitizer_only() {
    // LDTR bypasses PAN, so Table 3 forbids it under the PAN mechanism
    // but allows it under TTBR (stage-1 user-permission checks still
    // apply to the access itself).
    let make = |san: u64| {
        let mut b = LzProgramBuilder::new(CODE);
        data_seg(&mut b, DATA0, 1);
        b.asm.lz_enter(san != SAN_PAN, san);
        b.asm.mov_imm64(1, DATA0);
        b.asm.ldtr(2, 1, 0);
        b.asm.exit_imm(42);
        b.build()
    };
    // PAN mode: page never becomes executable (sanitizer rejects).
    let mut lz = LightZone::new_host(Platform::CortexA55);
    let pid = lz.spawn(&make(SAN_PAN));
    lz.enter_process(pid);
    assert_eq!(lz.run_to_exit(), SECURITY_KILL);

    // TTBR mode: sanitizer passes, but the unprivileged load hits a
    // kernel page (normal memory is privileged-only in a VE) and the
    // resulting permission fault kills the process — LDTR gains nothing.
    let mut lz = LightZone::new_host(Platform::CortexA55);
    let pid = lz.spawn(&make(SAN_TTBR));
    lz.enter_process(pid);
    assert_eq!(lz.run_to_exit(), SECURITY_KILL);
}

#[test]
fn gate_midentry_hijack_killed() {
    // Control-flow hijack (§7.1.3): jump straight at the gate's `msr`
    // with a forged TTBR0 value in x13 and the gate's own table pointer
    // in x10 so execution reaches check phase ②. The link register is
    // attacker code, not the designated ENTRY, so the check fails and
    // the gate's brk terminates the process.
    let words = lightzone::gate::emit_gate(0, Default::default());
    let msr_off = words
        .iter()
        .position(|&w| {
            matches!(lz_arch::insn::Insn::decode(w),
                lz_arch::insn::Insn::MsrReg { enc, .. } if enc == lz_arch::sysreg::SysReg::TTBR0_EL1.encoding())
        })
        .unwrap() as u64
        * 4;

    let mut b = LzProgramBuilder::new(CODE);
    data_seg(&mut b, DATA0, 0);
    b.asm.lz_enter(true, SAN_TTBR);
    b.asm.lz_alloc();
    b.asm.mov_reg(19, 0);
    b.asm.lz_map_gate_pgt_reg(19, 0);
    b.lz_switch_to_ttbr_gate(0); // legitimate use once, so the gate exists
                                 // Attack: forged table base, correct GateTab pointer, lr = here.
    b.asm.mov_imm64(13, 0xdead_b000);
    b.asm.mov_imm64(10, lightzone::gate::layout::GATETAB_VA);
    b.asm.mov_imm64(17, lightzone::gate::layout::gate_va(0) + msr_off);
    b.asm.blr(17);
    b.asm.exit_imm(0);
    let prog = b.build();
    for code in run_everywhere(&prog) {
        assert_eq!(code, SECURITY_KILL);
    }
}

#[test]
fn forged_ttbr_direct_write_killed() {
    // Writing TTBR0 outside the gate is a sensitive instruction: the
    // sanitizer rejects the page (GateOnly is not Allowed).
    let mut b = LzProgramBuilder::new(CODE);
    b.asm.lz_enter(true, SAN_TTBR);
    b.asm.mov_imm64(0, 0xdead_b000);
    b.asm.msr(lz_arch::sysreg::SysReg::TTBR0_EL1, 0);
    b.asm.exit_imm(0);
    let prog = b.build();
    for code in run_everywhere(&prog) {
        assert_eq!(code, SECURITY_KILL);
    }
}

#[test]
fn wx_toctou_rescan_on_reexec() {
    // TOCTTOU defence (§6.3): after a page has been scanned and mapped
    // executable, writing to it flips it to writable (break-before-make);
    // re-executing triggers a rescan which finds the injected `eret`.
    let scratch = 0x60_0000u64;
    let mut b = LzProgramBuilder::new(CODE);
    // A W+X scratch segment initially containing a clean `ret`.
    let mut clean = lz_arch::asm::Asm::new(scratch);
    clean.ret();
    b.with_segment(scratch, clean.bytes(), lz_kernel::VmProt::RWX);
    b.asm.lz_enter(true, SAN_BOTH);
    // Execute the scratch page (scanned clean, mapped X).
    b.asm.mov_imm64(17, scratch);
    b.asm.blr(17);
    // Inject `eret` at the same address (page flips to W, exec revoked).
    b.asm.mov_imm64(1, scratch);
    b.asm.mov_imm64(2, lz_arch::insn::Insn::Eret.encode() as u64);
    b.asm.emit(lz_arch::insn::Insn::StrImm { rt: 2, rn: 1, offset: 0, size: lz_arch::insn::MemSize::W });
    // Execute again: rescan finds the eret -> kill.
    b.asm.blr(17);
    b.asm.exit_imm(0);
    let prog = b.build();
    for code in run_everywhere(&prog) {
        assert_eq!(code, SECURITY_KILL);
    }
}

#[test]
fn wx_clean_rewrite_allowed() {
    // The same W^X flow with a *clean* rewrite must keep working: write
    // `mov x5, #7; ret`, re-execute, observe x5.
    let scratch = 0x60_0000u64;
    let mut b = LzProgramBuilder::new(CODE);
    let mut clean = lz_arch::asm::Asm::new(scratch);
    clean.ret();
    b.with_segment(scratch, clean.bytes(), lz_kernel::VmProt::RWX);
    b.asm.lz_enter(true, SAN_BOTH);
    b.asm.mov_imm64(17, scratch);
    b.asm.blr(17);
    // Rewrite: movz x5,#7 ; ret
    let mut patch = lz_arch::asm::Asm::new(scratch);
    patch.movz(5, 7, 0);
    patch.ret();
    let words: Vec<u32> = patch.words();
    b.asm.mov_imm64(1, scratch);
    for (i, w) in words.iter().enumerate() {
        b.asm.mov_imm64(2, *w as u64);
        b.asm.emit(lz_arch::insn::Insn::StrImm {
            rt: 2,
            rn: 1,
            offset: (i * 4) as u64,
            size: lz_arch::insn::MemSize::W,
        });
    }
    b.asm.blr(17);
    b.asm.mov_reg(0, 5);
    b.asm.mov_imm64(8, lz_kernel::Sysno::Exit.nr());
    b.asm.svc(0);
    let prog = b.build();
    for code in run_everywhere(&prog) {
        assert_eq!(code, 7);
    }
}

#[test]
fn jit_dual_table_w_and_x_views() {
    // §6.1: "JIT code pages can switch between writable and executable
    // permissions via two page tables". Domain 1 sees the page RW,
    // domain 2 sees it RX; the sanitizer still scans before exec.
    let jit = 0x61_0000u64;
    let mut b = LzProgramBuilder::new(CODE);
    let mut seed = lz_arch::asm::Asm::new(jit);
    seed.movz(5, 33, 0);
    seed.ret();
    b.with_segment(jit, seed.bytes(), lz_kernel::VmProt::RWX);
    b.asm.lz_enter(true, SAN_TTBR);
    b.asm.lz_alloc();
    b.asm.mov_reg(19, 0); // writer domain
    b.asm.lz_alloc();
    b.asm.mov_reg(20, 0); // executor domain
    b.asm.lz_map_gate_pgt_reg(19, 0);
    b.asm.lz_map_gate_pgt_reg(20, 1);
    b.asm.lz_prot_reg(jit, 4096, 19, RW);
    b.asm.lz_prot_reg(jit, 4096, 20, 1 | 4); // READ | EXEC
                                             // Executor domain: run the seed code.
    b.lz_switch_to_ttbr_gate(1);
    b.asm.mov_imm64(17, jit);
    b.asm.blr(17);
    b.asm.mov_reg(0, 5);
    b.asm.mov_imm64(8, lz_kernel::Sysno::Exit.nr());
    b.asm.svc(0);
    let prog = b.build();
    for code in run_everywhere(&prog) {
        assert_eq!(code, 33);
    }
}

#[test]
fn lz_enter_twice_returns_error_and_continues() {
    let mut b = LzProgramBuilder::new(CODE);
    b.asm.lz_enter(true, SAN_BOTH);
    b.asm.lz_enter(true, SAN_BOTH);
    // x0 must be -1 (u64::MAX); exit with 1 if so, 0 otherwise.
    let bad = b.asm.label();
    b.asm.cmp_imm(0, 0);
    b.asm.b_cond(lz_arch::insn::Cond::Eq, bad); // x0 == 0 would be wrong
    b.asm.exit_imm(1);
    b.asm.bind(bad);
    b.asm.exit_imm(0);
    let prog = b.build();
    for code in run_everywhere(&prog) {
        assert_eq!(code, 1);
    }
}

#[test]
fn pan_only_process_cannot_alloc_tables() {
    let mut b = LzProgramBuilder::new(CODE);
    b.asm.lz_enter(false, SAN_PAN); // allow_scalable = false
    b.asm.lz_alloc();
    // must fail: exit(x0 == -1)
    let bad = b.asm.label();
    b.asm.cmp_imm(0, 0);
    b.asm.b_cond(lz_arch::insn::Cond::Eq, bad);
    b.asm.exit_imm(1);
    b.asm.bind(bad);
    b.asm.exit_imm(0);
    let prog = b.build();
    for code in run_everywhere(&prog) {
        assert_eq!(code, 1);
    }
}

#[test]
fn guest_ve_costs_more_than_host_ve() {
    // Table 4: a LightZone trap to a guest kernel costs much more than
    // to a host kernel.
    let mut costs = Vec::new();
    for guest in [false, true] {
        let mut b = LzProgramBuilder::new(CODE);
        b.asm.lz_enter(true, SAN_BOTH);
        b.asm.mov_imm64(8, lz_kernel::Sysno::Yield.nr());
        b.asm.svc(0);
        b.asm.svc(0);
        b.asm.exit_imm(0);
        let prog = b.build();
        let mut lz = if guest { LightZone::new_guest(Platform::Carmel) } else { LightZone::new_host(Platform::Carmel) };
        let pid = lz.spawn(&prog);
        lz.enter_process(pid);
        assert_eq!(lz.run_to_exit(), 0);
        costs.push(lz.kernel.machine.cpu.cycles);
    }
    assert!(costs[1] > costs[0] * 2, "guest {:?} should dwarf host {:?}", costs[1], costs[0]);
}

#[test]
fn violation_counters_recorded() {
    let mut b = LzProgramBuilder::new(CODE);
    data_seg(&mut b, KEY, 0);
    b.asm.lz_enter(false, SAN_PAN);
    b.asm.lz_prot_imm(KEY, 4096, PGT_ALL, 1 | USER);
    b.asm.mov_imm64(1, KEY);
    b.asm.ldr(2, 1, 0);
    b.asm.exit_imm(0);
    let prog = b.build();
    let mut lz = LightZone::new_host(Platform::CortexA55);
    let pid = lz.spawn(&prog);
    lz.enter_process(pid);
    assert_eq!(lz.run_to_exit(), SECURITY_KILL);
    assert!(lz.module.proc(pid).unwrap().stats.violations >= 1);
}

#[test]
fn limit_event_surfaces() {
    let mut b = LzProgramBuilder::new(CODE);
    b.asm.lz_enter(true, SAN_BOTH);
    let spin = b.asm.label();
    b.asm.bind(spin);
    b.asm.b(spin);
    let prog = b.build();
    let mut lz = LightZone::new_host(Platform::CortexA55);
    let pid = lz.spawn(&prog);
    lz.enter_process(pid);
    assert_eq!(lz.run(10_000), Event::Limit);
}
