//! Property-based tests for LightZone's core data structures and
//! end-to-end invariants.

use lightzone::api::{LzAsm, LzProgramBuilder, RW, SAN_TTBR};
use lightzone::fakephys::FakePhys;
use lightzone::gate::{emit_gate, GateFlavor, GateTables};
use lightzone::{LightZone, SECURITY_KILL};
use lz_arch::insn::Insn;
use lz_arch::sensitive::{classify, InsnClass, SanitizeMode};
use lz_arch::{Platform, PAGE_SIZE};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// FakePhys stays a bijection under arbitrary assign/release traffic.
    #[test]
    fn fakephys_bijection(ops in proptest::collection::vec((any::<bool>(), 1u64..200), 1..200)) {
        let mut f = FakePhys::new();
        let mut live: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for (release, frame) in ops {
            let real = frame << 12;
            if release {
                f.release(real);
                live.remove(&real);
            } else {
                let fake = f.assign(real);
                prop_assert_eq!(fake & 0xfff, 0, "fake addresses are page aligned");
                if let Some(&prev) = live.get(&real) {
                    prop_assert_eq!(prev, fake, "assign is stable");
                }
                live.insert(real, fake);
            }
        }
        // Forward and backward maps agree for every live pair; fakes are
        // unique.
        let mut seen = std::collections::HashSet::new();
        for (&real, &fake) in &live {
            prop_assert_eq!(f.real_of(fake), Some(real));
            prop_assert_eq!(f.fake_of(real), Some(fake));
            prop_assert!(seen.insert(fake), "fake addresses are unique");
        }
        prop_assert_eq!(f.len(), live.len());
    }

    /// Every gate stub, for any gate id and flavor, contains no
    /// *forbidden* instruction under TTBR sanitization and exactly one
    /// TTBR0 write; stubs always fit their stride.
    #[test]
    fn gate_stub_invariants(gate in any::<u16>(), check in any::<bool>(), tlbi in any::<bool>()) {
        let words = emit_gate(gate, GateFlavor { check_phase: check, tlbi_after_switch: tlbi });
        prop_assert!(words.len() * 4 <= lightzone::gate::layout::GATE_STRIDE as usize);
        let mut ttbr_writes = 0;
        for &w in &words {
            match classify(w, SanitizeMode::Ttbr) {
                InsnClass::Forbidden(_) if !tlbi => {
                    prop_assert!(false, "forbidden insn {w:#x} in gate");
                }
                _ => {}
            }
            if matches!(Insn::decode(w), Insn::MsrReg { enc, .. }
                if enc == lz_arch::sysreg::SysReg::TTBR0_EL1.encoding())
            {
                ttbr_writes += 1;
            }
        }
        prop_assert_eq!(ttbr_writes, 1);
    }

    /// GateTables serialization round-trips through its byte images.
    #[test]
    fn gate_tables_bytes(ttbrs in proptest::collection::vec(any::<u64>(), 1..50),
                         entries in proptest::collection::vec((0u16..64, any::<u64>()), 0..32)) {
        let mut t = GateTables::new();
        for &v in &ttbrs {
            t.push_table(v);
        }
        for &(g, e) in &entries {
            t.set_entry(g, e);
        }
        let tb = t.ttbrtab_bytes();
        prop_assert_eq!(tb.len(), ttbrs.len() * 8);
        for (i, &v) in ttbrs.iter().enumerate() {
            let got = u64::from_le_bytes(tb[i * 8..i * 8 + 8].try_into().unwrap());
            prop_assert_eq!(got, v);
        }
        let gb = t.gatetab_bytes();
        for &(g, e) in &entries {
            let off = g as usize * 16;
            let got = u64::from_le_bytes(gb[off..off + 8].try_into().unwrap());
            // Later registrations may overwrite earlier ones for the same
            // gate; only require that the final value is *some* entry
            // registered for that gate.
            let candidates: Vec<u64> =
                entries.iter().filter(|(gg, _)| *gg == g).map(|&(_, ee)| ee).collect();
            prop_assert!(candidates.contains(&got), "gate {g}: {got:#x} not in {candidates:?}");
            let _ = e;
        }
    }

    /// End-to-end: for any domain count and victim choice, accessing a
    /// page attached to a different domain is fatal, and accessing one's
    /// own succeeds.
    #[test]
    fn domain_isolation_holds(domains in 2u64..12, inside_raw in 0u64..12, victim_off in 1u64..12, legal in any::<bool>()) {
        let inside = inside_raw % domains;
        let victim = (inside + (victim_off % (domains - 1)) + 1) % domains;
        const ARENA: u64 = 0x5000_0000;
        let mut b = LzProgramBuilder::new(0x40_0000);
        b.with_anon_segment(ARENA, domains * PAGE_SIZE, lz_kernel::VmProt::RW);
        b.asm.lz_enter(true, SAN_TTBR);
        for d in 0..domains {
            b.asm.lz_alloc();
            b.asm.lz_map_gate_pgt_imm(d + 1, d);
            b.asm.lz_prot_imm(ARENA + d * PAGE_SIZE, PAGE_SIZE, d + 1, RW);
        }
        b.lz_switch_to_ttbr_gate(inside as u16);
        let target = if legal { inside } else { victim };
        b.asm.mov_imm64(1, ARENA + target * PAGE_SIZE);
        b.asm.ldr(2, 1, 0);
        b.asm.exit_imm(42);
        let prog = b.build();
        let mut lz = LightZone::new_host(Platform::CortexA55);
        let pid = lz.spawn(&prog);
        lz.enter_process(pid);
        let code = lz.run_to_exit();
        if legal {
            prop_assert_eq!(code, 42);
        } else {
            prop_assert_eq!(code, SECURITY_KILL);
        }
    }
}
