//! Per-domain stage-1 page tables for LightZone processes (paper §6.1).
//!
//! Every LightZone stage-1 tree is built in terms of **fake physical
//! addresses** (see [`crate::fakephys`]): table descriptors and leaf PTEs
//! both hold fake pages, and stage-2 maps fake → real, with table frames
//! mapped read-only so the process cannot edit its own translations even
//! though it can point `TTBR0_EL1` at them.

use crate::fakephys::FakePhys;
use lz_arch::PAGE_SIZE;
use lz_machine::pte::{self, S1Perms, S2Perms};
use lz_machine::walk::s2_map_page;
use lz_machine::{LzFault, PhysMem};

/// One stage-1 tree of a LightZone process (one isolation domain view).
#[derive(Debug)]
pub struct LzTable {
    /// Real frame of the root table.
    pub root_real: u64,
    /// Fake address of the root — the value that goes into `TTBR0_EL1`
    /// (with the ASID) and into `TTBRTab`.
    pub root_fake: u64,
    /// Per-table ASID: switching tables never requires TLB invalidation
    /// (paper §4.1.2).
    pub asid: u16,
    /// Number of table frames backing this tree (root + intermediate) —
    /// reported as page-table memory overhead in §9.
    pub table_frames: u64,
}

impl LzTable {
    /// Allocate an empty tree: the root gets a fake address and a
    /// read-only stage-2 mapping immediately.
    pub fn new(mem: &mut PhysMem, fake: &mut FakePhys, s2_root: u64, asid: u16) -> Self {
        let root_real = mem.alloc_frame();
        let root_fake = fake.assign(root_real);
        s2_map_page(mem, s2_root, root_fake, root_real, S2Perms::ro());
        LzTable { root_real, root_fake, asid, table_frames: 1 }
    }

    /// The `TTBR0_EL1` value selecting this table.
    pub fn ttbr0(&self) -> u64 {
        lz_arch::sysreg::ttbr::pack(self.asid, self.root_fake)
    }

    /// Walk or grow the tree down to the table at `last_level`,
    /// returning its real frame. Errors instead of panicking on a
    /// malformed tree: these trees describe guest-corruptible state
    /// (the VE can point `TTBR0_EL1` anywhere and chaos can corrupt
    /// descriptors), so a bad shape must fault the VE, not the host.
    fn descend(
        &mut self,
        mem: &mut PhysMem,
        fake: &mut FakePhys,
        s2_root: u64,
        va: u64,
        last_level: u8,
    ) -> Result<u64, LzFault> {
        let mut table_real = self.root_real;
        for level in 0..last_level {
            let idx = s1_idx(va, level);
            let desc_pa = table_real + idx * 8;
            let desc = mem.read_u64(desc_pa).ok_or(LzFault::UnbackedFrame { pa: desc_pa })?;
            if pte::is_valid(desc) {
                if desc & pte::TABLE_OR_PAGE == 0 {
                    return Err(LzFault::BadDescriptor { pa: desc_pa, desc });
                }
                let next_fake = pte::desc_oa(desc);
                table_real = fake.real_of(next_fake).ok_or(LzFault::UnresolvedFake { fake: next_fake })?;
            } else {
                let next_real = mem.alloc_frame();
                let next_fake = fake.assign(next_real);
                s2_map_page(mem, s2_root, next_fake, next_real, S2Perms::ro());
                mem.write_u64(desc_pa, pte::table_desc(next_fake));
                self.table_frames += 1;
                table_real = next_real;
            }
        }
        Ok(table_real)
    }

    /// Fallible [`LzTable::map_page`], for guest-reachable callers.
    pub fn try_map_page(
        &mut self,
        mem: &mut PhysMem,
        fake: &mut FakePhys,
        s2_root: u64,
        va: u64,
        leaf_fake: u64,
        perms: S1Perms,
    ) -> Result<(), LzFault> {
        let table_real = self.descend(mem, fake, s2_root, va, 3)?;
        let leaf_pa = table_real + s1_idx(va, 3) * 8;
        if !mem.write_u64(leaf_pa, pte::s1_page_desc(leaf_fake, perms)) {
            return Err(LzFault::UnbackedFrame { pa: leaf_pa });
        }
        Ok(())
    }

    /// Map one 4 KB page at `va` to `leaf_fake` (a fake address that
    /// stage-2 must separately resolve), creating intermediate tables.
    ///
    /// Intermediate tables get fake addresses and read-only stage-2
    /// mappings as they are created.
    ///
    /// # Panics
    ///
    /// Panics on a malformed tree — host setup paths only; guest-
    /// reachable callers use [`LzTable::try_map_page`].
    pub fn map_page(
        &mut self,
        mem: &mut PhysMem,
        fake: &mut FakePhys,
        s2_root: u64,
        va: u64,
        leaf_fake: u64,
        perms: S1Perms,
    ) {
        self.try_map_page(mem, fake, s2_root, va, leaf_fake, perms).unwrap_or_else(|e| panic!("LZ map_page: {e}"))
    }

    /// Fallible [`LzTable::map_block`], for guest-reachable callers.
    pub fn try_map_block(
        &mut self,
        mem: &mut PhysMem,
        fake: &mut FakePhys,
        s2_root: u64,
        va: u64,
        leaf_fake: u64,
        perms: S1Perms,
    ) -> Result<(), LzFault> {
        if va & 0x1f_ffff != 0 || leaf_fake & 0x1f_ffff != 0 {
            return Err(LzFault::Misaligned { addr: va | leaf_fake });
        }
        let table_real = self.descend(mem, fake, s2_root, va, 2)?;
        let leaf_pa = table_real + s1_idx(va, 2) * 8;
        if !mem.write_u64(leaf_pa, pte::s1_block_desc(leaf_fake, perms)) {
            return Err(LzFault::UnbackedFrame { pa: leaf_pa });
        }
        Ok(())
    }

    /// Map one 2 MiB block at level 2 ("we use huge pages to map the
    /// 2MB-sized buffers", §9.3). `leaf_fake` must be a block-aligned
    /// fake base from [`FakePhys::assign_block`].
    ///
    /// # Panics
    ///
    /// Panics unless `va` and `leaf_fake` are 2 MiB aligned and the tree
    /// is well formed; guest-reachable callers use
    /// [`LzTable::try_map_block`].
    pub fn map_block(
        &mut self,
        mem: &mut PhysMem,
        fake: &mut FakePhys,
        s2_root: u64,
        va: u64,
        leaf_fake: u64,
        perms: S1Perms,
    ) {
        self.try_map_block(mem, fake, s2_root, va, leaf_fake, perms).unwrap_or_else(|e| panic!("LZ map_block: {e}"))
    }

    /// Clear the leaf descriptor for `va` (page or block). Returns the
    /// removed descriptor.
    pub fn unmap_page(&mut self, mem: &mut PhysMem, fake: &FakePhys, va: u64) -> Option<u64> {
        let mut table_real = self.root_real;
        for level in 0..=3u8 {
            let desc_pa = table_real + s1_idx(va, level) * 8;
            let desc = mem.read_u64(desc_pa)?;
            if !pte::is_valid(desc) {
                return None;
            }
            if pte::is_table(desc, level) {
                table_real = fake.real_of(pte::desc_oa(desc))?;
                continue;
            }
            mem.write_u64(desc_pa, 0);
            return Some(desc);
        }
        None
    }

    /// Read back the leaf mapping for `va` (page or block):
    /// `(leaf_fake, perms)`.
    pub fn lookup(&self, mem: &PhysMem, fake: &FakePhys, va: u64) -> Option<(u64, S1Perms)> {
        let mut table_real = self.root_real;
        for level in 0..=3u8 {
            let desc = mem.read_u64(table_real + s1_idx(va, level) * 8)?;
            if !pte::is_valid(desc) {
                return None;
            }
            if pte::is_table(desc, level) {
                table_real = fake.real_of(pte::desc_oa(desc))?;
                continue;
            }
            let block_shift = 39 - 9 * level as u64;
            let within = va & ((1u64 << block_shift) - 1) & !(PAGE_SIZE - 1);
            return Some((pte::desc_oa(desc) | within, S1Perms::from_bits(desc)));
        }
        None
    }

    /// Page-table memory in bytes (for §9's overhead numbers).
    pub fn table_bytes(&self) -> u64 {
        self.table_frames * PAGE_SIZE
    }

    /// Destroy the tree: free every table frame, release its fake
    /// address, and clear its stage-2 mapping. Leaf *data* frames belong
    /// to the process and are not touched (`lz_free` destroys the view,
    /// not the memory).
    /// Teardown is deliberately tolerant: a VE (or an injected fault)
    /// may have corrupted the tree, and the worst a bad descriptor can
    /// cost here is a leaked frame — never a host panic and never a
    /// free of a frame the tree does not own (only frames reached via
    /// the process's own fake-address space are visited).
    pub fn free_tree(self, mem: &mut PhysMem, fake: &mut FakePhys, s2_root: u64) {
        fn walk(mem: &mut PhysMem, fake: &mut FakePhys, s2_root: u64, table_real: u64, level: u8) {
            if level < 3 {
                for idx in 0..512u64 {
                    // An unbacked table frame reads as "no descriptor":
                    // skip the subtree instead of panicking.
                    let desc = mem.read_u64(table_real + idx * 8).unwrap_or(0);
                    if pte::is_valid(desc) && pte::is_table(desc, level) {
                        if let Some(next_real) = fake.real_of(pte::desc_oa(desc)) {
                            walk(mem, fake, s2_root, next_real, level + 1);
                        }
                    }
                }
            }
            if let Some(fake_pa) = fake.fake_of(table_real) {
                lz_machine::walk::s2_unmap(mem, s2_root, fake_pa);
                fake.release(table_real);
            }
            mem.try_free_frame(table_real);
        }
        walk(mem, fake, s2_root, self.root_real, 0);
    }
}

fn s1_idx(va: u64, level: u8) -> u64 {
    (va >> (39 - 9 * level as u64)) & 0x1ff
}

/// Permission overlay carried by `lz_prot` (Table 2: readable, writable,
/// executable, and user).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Overlay {
    pub read: bool,
    pub write: bool,
    pub exec: bool,
    /// The `USER` bit: mark the page as a user page so PAN guards it.
    pub user: bool,
}

impl Overlay {
    /// Decode from the syscall's permission bits.
    pub fn from_bits(bits: u64) -> Self {
        Overlay {
            read: bits & perm::READ != 0,
            write: bits & perm::WRITE != 0,
            exec: bits & perm::EXEC != 0,
            user: bits & perm::USER != 0,
        }
    }

    /// Encode to syscall permission bits.
    pub fn to_bits(self) -> u64 {
        let mut b = 0;
        if self.read {
            b |= perm::READ;
        }
        if self.write {
            b |= perm::WRITE;
        }
        if self.exec {
            b |= perm::EXEC;
        }
        if self.user {
            b |= perm::USER;
        }
        b
    }
}

/// `lz_prot` permission bits.
pub mod perm {
    pub const READ: u64 = 1;
    pub const WRITE: u64 = 2;
    pub const EXEC: u64 = 4;
    /// Mark as user page (PAN-guarded domain).
    pub const USER: u64 = 8;
}

/// `pgt` argument value meaning "attach to every page table of the
/// process" (Listing 1's `PGT_ALL`, used for PAN-protected data).
pub const PGT_ALL: u64 = u64::MAX;

#[cfg(test)]
mod tests {
    use super::*;
    use lz_machine::walk::{alloc_table, s2_lookup};

    fn setup() -> (PhysMem, FakePhys, u64) {
        let mut mem = PhysMem::new();
        let fake = FakePhys::new();
        let s2 = alloc_table(&mut mem);
        (mem, fake, s2)
    }

    fn kperms() -> S1Perms {
        S1Perms { read: true, write: true, user_exec: false, priv_exec: false, el0: false, global: true }
    }

    #[test]
    fn descriptors_hold_fake_addresses() {
        let (mut mem, mut fake, s2) = setup();
        let mut t = LzTable::new(&mut mem, &mut fake, s2, 7);
        let data_real = mem.alloc_frame();
        let data_fake = fake.assign(data_real);
        s2_map_page(&mut mem, s2, data_fake, data_real, S2Perms::rwx());
        t.map_page(&mut mem, &mut fake, s2, 0x40_0000, data_fake, kperms());

        // Walk the tree manually through *real* frames and confirm no
        // descriptor contains a real address.
        let (leaf_fake, _) = t.lookup(&mem, &fake, 0x40_0000).unwrap();
        assert_eq!(leaf_fake, data_fake);
        assert_ne!(leaf_fake, data_real, "PTE must not leak the real frame");
        // Root fake too.
        assert_ne!(t.root_fake, t.root_real);
    }

    #[test]
    fn table_frames_are_s2_readonly() {
        let (mut mem, mut fake, s2) = setup();
        let mut t = LzTable::new(&mut mem, &mut fake, s2, 1);
        let data_real = mem.alloc_frame();
        let data_fake = fake.assign(data_real);
        t.map_page(&mut mem, &mut fake, s2, 0x40_0000, data_fake, kperms());
        // Every table frame's fake address maps RO at stage 2.
        let (pa, perms, _) = s2_lookup(&mem, s2, t.root_fake).unwrap();
        assert_eq!(pa, t.root_real);
        assert!(!perms.write, "stage-1 tables are read-only in stage-2 (§5.1.2)");
    }

    #[test]
    fn map_unmap_roundtrip() {
        let (mut mem, mut fake, s2) = setup();
        let mut t = LzTable::new(&mut mem, &mut fake, s2, 1);
        let f = fake.assign(mem.alloc_frame());
        t.map_page(&mut mem, &mut fake, s2, 0x1234_5000, f, kperms());
        assert!(t.lookup(&mem, &fake, 0x1234_5000).is_some());
        assert!(t.unmap_page(&mut mem, &fake, 0x1234_5000).is_some());
        assert!(t.lookup(&mem, &fake, 0x1234_5000).is_none());
        assert!(t.unmap_page(&mut mem, &fake, 0x1234_5000).is_none());
    }

    #[test]
    fn table_frames_counted() {
        let (mut mem, mut fake, s2) = setup();
        let mut t = LzTable::new(&mut mem, &mut fake, s2, 1);
        assert_eq!(t.table_frames, 1);
        let f = fake.assign(mem.alloc_frame());
        t.map_page(&mut mem, &mut fake, s2, 0x40_0000, f, kperms());
        assert_eq!(t.table_frames, 4, "root + 3 intermediate levels");
        // A second page in the same 2 MiB region reuses tables.
        let f2 = fake.assign(mem.alloc_frame());
        t.map_page(&mut mem, &mut fake, s2, 0x40_1000, f2, kperms());
        assert_eq!(t.table_frames, 4);
        assert_eq!(t.table_bytes(), 4 * PAGE_SIZE);
    }

    #[test]
    fn ttbr0_packs_asid_and_fake_root() {
        let (mut mem, mut fake, s2) = setup();
        let t = LzTable::new(&mut mem, &mut fake, s2, 42);
        let v = t.ttbr0();
        assert_eq!(lz_arch::sysreg::ttbr::asid(v), 42);
        assert_eq!(lz_arch::sysreg::ttbr::baddr(v), t.root_fake);
    }

    #[test]
    fn overlay_bits_roundtrip() {
        for bits in 0..16u64 {
            assert_eq!(Overlay::from_bits(bits).to_bits(), bits);
        }
    }
}
