//! LightZone Lowvisor: software nested virtualization for LightZone
//! processes inside guest VMs (paper §5.2.2).
//!
//! A guest VM's kernel and its guest LightZone processes share the
//! physical EL1 register file, so Lowvisor (at EL2) must context-switch
//! kernel-mode system registers when forwarding traps between a guest
//! LightZone VE and the guest kernel. Three optimizations cut that cost:
//!
//! 1. **Deferred system-register page** (inherited from NEVE): the guest
//!    kernel module's accesses to hypervisor- and VE-owned registers are
//!    redirected to a per-core page shared with Lowvisor instead of
//!    trapping one by one.
//! 2. **Shared `pt_regs` page**: Lowvisor writes the trapped process's
//!    general-purpose registers directly into the page the guest kernel
//!    uses as `pt_regs`, saving one full context copy per trap.
//! 3. **Shared-resource skipping**: floating-point state, timers,
//!    counters, and the interrupt controller are *not* switched between
//!    a VE and its guest kernel (unlike a conventional nested VM switch),
//!    because hypervisor configuration registers already confine the VE.
//!
//! The resulting round trip (Table 4 row 4) is slower than a host
//! LightZone trap but in the same ballpark as a single conventional KVM
//! hypercall — versus the *two* full world switches a conventional
//! nested design would pay (the ablation benchmark quantifies this).

use crate::module::AblationConfig;
use lz_kernel::kvm::{charge_full_world_switch, charge_sysreg_ctx_restore, charge_sysreg_ctx_save};
use lz_machine::Machine;

/// EL1 system registers Lowvisor switches between a guest LightZone VE
/// and its guest kernel. Larger than KVM's VHE switch set because, under
/// VHE, the *host* kernel does not use EL1 registers at all, while a
/// guest kernel and a guest VE contend for every one of them.
pub const LOWVISOR_SWITCH_SYSREGS: u64 = 19;

/// Instruction count of Lowvisor's forwarding logic per direction.
const LOWVISOR_PATH_INSNS: u64 = 150;

/// Charge the outbound leg: guest VE trapped to EL2, Lowvisor switches
/// EL1 state to the guest kernel, forwards, the guest kernel handles, and
/// control returns to EL2. (Table 4 row 4, first half.)
pub fn charge_lowvisor_forward(machine: &mut Machine, ablation: &AblationConfig) {
    if !ablation.shared_pt_regs && !ablation.deferred_sysreg_page {
        // Conventional software-nested virtualization: a full world
        // switch per direction, vGIC/timer and all.
        charge_full_world_switch(machine);
        return;
    }
    charge_partial_switch(machine, ablation);
    // Forward into the modelled guest kernel: one ERET down (charged
    // here; the guest kernel's own syscall path is charged by the
    // caller), one trap back up to EL2 when it finishes.
    let m = &machine.model;
    let c = m.exception_return_el2 + m.exception_entry_el2;
    machine.charge(c);
    // Guest-kernel handling context (its entry/exit software path).
    let m = &machine.model;
    let c = m.gpregs_roundtrip(31) + 2 * m.sysreg_read + m.path_cost(54) + m.trap_cache_pollution;
    machine.charge(c);
}

/// Charge the return leg: Lowvisor switches EL1 state back to the VE
/// before the final `ERET` (which `Machine::enter` charges).
pub fn charge_lowvisor_return(machine: &mut Machine, ablation: &AblationConfig) {
    if !ablation.shared_pt_regs && !ablation.deferred_sysreg_page {
        charge_full_world_switch(machine);
        return;
    }
    charge_partial_switch(machine, ablation);
}

fn charge_partial_switch(machine: &mut Machine, ablation: &AblationConfig) {
    // Kernel-mode register file swap for one direction.
    charge_sysreg_ctx_save(machine, LOWVISOR_SWITCH_SYSREGS);
    charge_sysreg_ctx_restore(machine, LOWVISOR_SWITCH_SYSREGS);
    // VTTBR must flip between the VE's VMID and the guest VM's.
    let m = &machine.model;
    let mut cost = m.vttbr_el2_write + m.path_cost(LOWVISOR_PATH_INSNS);
    // pt_regs handling: shared page = one write pass; conventional =
    // save into hypervisor memory, then copy again for the guest kernel.
    cost += if ablation.shared_pt_regs {
        31 * m.gpreg_save_restore
    } else {
        2 * 31 * m.gpreg_save_restore + 31 * m.mem_access
    };
    // Without the deferred sysreg page, each of the guest kernel
    // module's VE-register accesses traps individually (~8 accesses per
    // trap round).
    if !ablation.deferred_sysreg_page {
        cost += 8 * (m.exception_entry_el2 + m.exception_return_el2) / 2;
    }
    machine.charge(cost);
}

#[cfg(test)]
mod tests {
    use super::*;
    use lz_arch::Platform;

    fn roundtrip_cost(platform: Platform, ablation: &AblationConfig) -> u64 {
        let mut m = Machine::new(platform);
        charge_lowvisor_forward(&mut m, ablation);
        charge_lowvisor_return(&mut m, ablation);
        m.cpu.cycles
    }

    #[test]
    fn optimized_beats_conventional_nested() {
        let opt = AblationConfig::default();
        let conv = AblationConfig { shared_pt_regs: false, deferred_sysreg_page: false, ..Default::default() };
        for p in Platform::ALL {
            let o = roundtrip_cost(p, &opt);
            let c = roundtrip_cost(p, &conv);
            assert!(o < c, "{p:?}: optimized {o} must beat conventional {c}");
        }
    }

    #[test]
    fn carmel_roundtrip_in_table4_ballpark() {
        // Table 4 row 4: 29,020–32,881 cycles on Carmel (the switch body;
        // entry/eret legs add the rest in the full path).
        let cost = roundtrip_cost(Platform::Carmel, &AblationConfig::default());
        assert!((20_000..36_000).contains(&cost), "carmel lowvisor body = {cost}");
    }

    #[test]
    fn a55_roundtrip_in_table4_ballpark() {
        // Table 4 row 4: 1,798–2,179 on the A55.
        let cost = roundtrip_cost(Platform::CortexA55, &AblationConfig::default());
        assert!((1_000..2_400).contains(&cost), "a55 lowvisor body = {cost}");
    }
}
