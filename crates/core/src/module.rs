//! The LightZone kernel module: virtual-environment lifecycle, the
//! `lz_*` API implementation, and trap forwarding for kernel-mode
//! processes (paper §4.1.1, §5).
//!
//! Flow of a LightZone process trap (host case): the process runs at EL1
//! in its own VE; a syscall or stage-1 fault vectors to the VE's own
//! `VBAR_EL1` where the API-library stub (a single `hvc`) forwards it to
//! EL2. There this module reads the *original* syndrome out of
//! `ESR_EL1`/`ELR_EL1`/`SPSR_EL1` and either services the trap (page
//! fault, `lz_*` call, forwarded kernel syscall) or terminates the
//! process on an isolation violation. Returns go straight back to the
//! interrupted instruction via `ERET` from EL2, skipping the stub.

use crate::fakephys::FakePhys;
use crate::gate::{self, layout, GateFlavor, GateTables};
use crate::pgt::{LzTable, Overlay, PGT_ALL};
use crate::sanitizer::{self, WxDecision, WxTracker};
use crate::{api::LzProgram, lowvisor, SECURITY_KILL};
use lz_arch::esr::{self, ExceptionClass};
use lz_arch::pstate::{ExceptionLevel, PState};
use lz_arch::sensitive::SanitizeMode;
use lz_arch::sysreg::{hcr, sctlr, vttbr, SysReg};
use lz_arch::{page_align_down, Platform, PAGE_SIZE};
use lz_kernel::syscall::{custom, CUSTOM_BASE};
use lz_kernel::{Event, Kernel, KernelMode, Pid, SysOutcome};
use lz_machine::pte::{S1Perms, S2Perms};
use lz_machine::walk::{alloc_table, free_s2_tree, s2_map_block, s2_map_page, s2_unmap};
use lz_machine::{EventKind, Exit, Machine, Report, Section};
use std::collections::{BTreeMap, HashMap};

/// Design knobs for ablation studies (all `true`/paper-default normally).
#[derive(Debug, Clone, Copy)]
pub struct AblationConfig {
    /// §5.2: eagerly map stage-2 while handling a stage-1 fault, avoiding
    /// a second back-to-back trap on the same address.
    pub eager_stage2: bool,
    /// §5.2.1: retain `HCR_EL2`/`VTTBR_EL2` across traps into the host
    /// kernel instead of switching them every time.
    pub retain_hcr_vttbr: bool,
    /// §6.2: gate code shape (check phase ②, ASID-vs-TLBI).
    pub gate_flavor: GateFlavor,
    /// §5.1.2: hide real physical addresses behind sequential fakes.
    pub randomize_phys: bool,
    /// §5.2.2: share the `pt_regs` page between Lowvisor and the guest
    /// kernel, saving one context copy per nested trap.
    pub shared_pt_regs: bool,
    /// §5.2.2 (from NEVE): redirect guest sysreg accesses to a shared
    /// per-core page instead of trapping each one.
    pub deferred_sysreg_page: bool,
    /// Host-side data/fetch fast path (micro-DTLB, superblock
    /// execution, stage-1/stage-2 walk cache). Cycle-invariant by
    /// construction; exposed as a knob so the differential harness can
    /// prove it (see `tests/differential.rs`).
    pub fastpath: bool,
    /// Template-JIT superblock engine (see `lz_machine::jit`). Layers on
    /// `fastpath`; cycle-invariant by construction and exposed as its own
    /// ablation column so attack synthesis and the differential harness
    /// sweep compiled and interpreted execution independently.
    pub jit: bool,
    /// **Deliberately broken** when `true`: skip the cross-core IPI
    /// shootdown on break-before-make and detach paths, invalidating
    /// only the issuing core's TLB. Models a kernel that forgets remote
    /// TLB invalidation; the cross-core W^X penetration test asserts
    /// this leaves a stale executable alias on another core.
    pub skip_remote_shootdown: bool,
    /// **Deliberately broken** when `true`: skip the TLB invalidation
    /// that must run when a *recycled* VMID or table ASID is granted
    /// after an allocator rollover. Models a kernel that recycles IDs
    /// without maintenance; the rollover penetration test proves a VE
    /// under a recycled VMID then reads a dead process's memory through
    /// stale TLB entries. Not a [`Defense`] variant: the attack-corpus
    /// schedule is frozen over `ALL_DEFENSES`, so this knob is swept by
    /// the dedicated rollover pen tests instead of the synthesis matrix.
    pub skip_rollover_shootdown: bool,
}

impl Default for AblationConfig {
    fn default() -> Self {
        AblationConfig {
            eager_stage2: true,
            retain_hcr_vttbr: true,
            gate_flavor: GateFlavor::default(),
            randomize_phys: true,
            shared_pt_regs: true,
            deferred_sysreg_page: true,
            fastpath: lz_machine::default_fastpath(),
            jit: lz_machine::default_jit(),
            skip_remote_shootdown: false,
            skip_rollover_shootdown: false,
        }
    }
}

/// One named defense mechanism of the stack, as flipped by the ablation
/// sweeps (the attack-synthesis harness runs every candidate exploit
/// under each polarity of each defense).
///
/// `gate_flavor.tlbi_after_switch` is deliberately absent: ASID-vs-TLBI
/// is a performance ablation of §4.1.2, not a defense — both polarities
/// must defeat every attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Defense {
    /// §5.2 eager stage-2 mapping (perf defense: avoids double traps).
    EagerStage2,
    /// §5.2.1 HCR/VTTBR retention across traps (perf defense).
    RetainHcrVttbr,
    /// §6.2 gate check phase ② (lr/TTBR validation after the switch).
    GateCheckPhase,
    /// §5.1.2 fake-physical randomization (hides the real frame layout).
    RandomizePhys,
    /// §5.2.2 shared `pt_regs` page in the Lowvisor path (perf defense).
    SharedPtRegs,
    /// §5.2.2 deferred sysreg page in the Lowvisor path (perf defense).
    DeferredSysregPage,
    /// Cross-core IPI TLB shootdown on break-before-make and detach.
    RemoteShootdown,
}

/// Every defense, in the fixed order the polarity sweeps iterate.
pub const ALL_DEFENSES: [Defense; 7] = [
    Defense::EagerStage2,
    Defense::RetainHcrVttbr,
    Defense::GateCheckPhase,
    Defense::RandomizePhys,
    Defense::SharedPtRegs,
    Defense::DeferredSysregPage,
    Defense::RemoteShootdown,
];

impl Defense {
    /// Stable snake_case name (used in reports and `BENCH_*.json`).
    pub fn name(self) -> &'static str {
        match self {
            Defense::EagerStage2 => "eager_stage2",
            Defense::RetainHcrVttbr => "retain_hcr_vttbr",
            Defense::GateCheckPhase => "gate_check_phase",
            Defense::RandomizePhys => "randomize_phys",
            Defense::SharedPtRegs => "shared_pt_regs",
            Defense::DeferredSysregPage => "deferred_sysreg_page",
            Defense::RemoteShootdown => "remote_shootdown",
        }
    }
}

impl AblationConfig {
    /// Turn one defense off on top of this config (polarity sweep
    /// helper; the paper-default config has every defense on).
    pub fn defense_off(mut self, defense: Defense) -> Self {
        match defense {
            Defense::EagerStage2 => self.eager_stage2 = false,
            Defense::RetainHcrVttbr => self.retain_hcr_vttbr = false,
            Defense::GateCheckPhase => self.gate_flavor.check_phase = false,
            Defense::RandomizePhys => self.randomize_phys = false,
            Defense::SharedPtRegs => self.shared_pt_regs = false,
            Defense::DeferredSysregPage => self.deferred_sysreg_page = false,
            Defense::RemoteShootdown => self.skip_remote_shootdown = true,
        }
        self
    }

    /// The default config with exactly one defense ablated.
    pub fn with_defense_off(defense: Defense) -> Self {
        AblationConfig::default().defense_off(defense)
    }
}

/// Per-page protection record (which domains may see the page, and how).
#[derive(Debug, Default, Clone)]
pub struct PageProt {
    /// Attached to all tables as a PAN-guarded user page (`PGT_ALL` +
    /// `USER`), with the global bit for cheap TTBR switches (Listing 1).
    pub pan_all: Option<Overlay>,
    /// Per-domain attachments: `(pgt id, overlay)`.
    pub attach: Vec<(usize, Overlay)>,
}

/// Version tag for [`VeSnapshot`] images. Bump on any layout change;
/// [`LightZone::restore_ve`] refuses every other version fail-closed.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Sentinel for "no PAN-all overlay" in [`VeSnapshot::protections`]
/// (overlay bit patterns only use the low four bits, so `u64::MAX` can
/// never collide with a real [`Overlay::to_bits`] encoding).
const PAN_ABSENT: u64 = u64::MAX;

/// A deterministic, versioned snapshot of one VE's *guest-visible*
/// state, taken at a request boundary (the VE parked, its thread
/// context saved): registers, domain layout, gate→table designations,
/// the protection policy, and the resident data pages.
///
/// Host-side identifiers are deliberately **not** part of the image.
/// [`LightZone::restore_ve`] rebuilds a fresh VE through the normal
/// spawn/`lz_enter`/`lz_alloc` paths — new pid, new generation-tagged
/// VMID, fresh table ASIDs — so the invalidate-at-reuse contract
/// applies to every recycled identifier and no stale TLB or icache
/// state can survive a restart. The `restore_*` penetration tests prove
/// that shoot-down load-bearing, same style as the `rollover_*` tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VeSnapshot {
    /// Must equal [`SNAPSHOT_VERSION`].
    pub version: u32,
    /// Saved general-purpose registers (single-threaded VEs only).
    pub x: [u64; 31],
    pub sp: u64,
    pub pc: u64,
    /// Saved `PSTATE`, encoded as SPSR bits (EL, PAN, NZCV, irq mask).
    pub spsr: u64,
    /// The domain (pgt id) the thread was running in, recovered from
    /// its saved `TTBR0_EL1` root.
    pub cur_domain: usize,
    /// `lz_enter` arguments the restored VE must be rebuilt with.
    pub scalable: bool,
    pub san: SanitizeMode,
    /// One entry per pgt id ever allocated; `false` marks a freed
    /// domain (restore re-allocates then re-frees so ids line up).
    pub domain_slots: Vec<bool>,
    /// GateTab rows with a designated table: `(gate id, pgt id)`.
    pub gate_pgts: Vec<(u16, u64)>,
    /// Protection policy, ascending page VA: `(page, pan_all bits or
    /// [`PAN_ABSENT`], per-domain attachments)`, overlays encoded via
    /// [`Overlay::to_bits`].
    pub protections: Vec<(u64, u64, Vec<(usize, u64)>)>,
    /// Resident data pages, ascending VA, page-sized byte images.
    pub pages: Vec<(u64, Vec<u8>)>,
    /// FNV-1a digest over the canonical field encoding. Restore
    /// verifies it and rejects corrupt images fail-closed (the
    /// `snapshot_corrupt` chaos site flips a byte to exercise this).
    pub digest: u64,
}

impl VeSnapshot {
    fn fold(h: u64, v: u64) -> u64 {
        v.to_le_bytes().iter().fold(h, |h, &b| (h ^ b as u64).wrapping_mul(0x100_0000_01b3))
    }

    /// The FNV-1a digest of every field except `digest` itself, in
    /// declaration order with length prefixes (so field boundaries
    /// cannot alias).
    pub fn compute_digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        h = Self::fold(h, self.version as u64);
        for &v in &self.x {
            h = Self::fold(h, v);
        }
        for v in [self.sp, self.pc, self.spsr, self.cur_domain as u64, self.scalable as u64] {
            h = Self::fold(h, v);
        }
        h = Self::fold(h, self.san as u64);
        h = Self::fold(h, self.domain_slots.len() as u64);
        for &live in &self.domain_slots {
            h = Self::fold(h, live as u64);
        }
        h = Self::fold(h, self.gate_pgts.len() as u64);
        for &(gate, pgt) in &self.gate_pgts {
            h = Self::fold(Self::fold(h, gate as u64), pgt);
        }
        h = Self::fold(h, self.protections.len() as u64);
        for (page, pan, attach) in &self.protections {
            h = Self::fold(Self::fold(h, *page), *pan);
            h = Self::fold(h, attach.len() as u64);
            for &(pgt, bits) in attach {
                h = Self::fold(Self::fold(h, pgt as u64), bits);
            }
        }
        h = Self::fold(h, self.pages.len() as u64);
        for (va, bytes) in &self.pages {
            h = Self::fold(Self::fold(h, *va), bytes.len() as u64);
            h = bytes.iter().fold(h, |h, &b| (h ^ b as u64).wrapping_mul(0x100_0000_01b3));
        }
        h
    }

    /// Stamp the digest (the final step of [`LzModule::snapshot_ve`]).
    pub fn seal(&mut self) {
        self.digest = self.compute_digest();
    }

    /// `true` iff the version is current and the digest matches the
    /// content — the restore-side admission check.
    pub fn verify(&self) -> bool {
        self.version == SNAPSHOT_VERSION && self.digest == self.compute_digest()
    }
}

/// Counters for the evaluation.
#[derive(Debug, Default, Clone)]
pub struct LzStats {
    /// Reason for the most recent isolation violation, if any.
    pub last_violation: Option<&'static str>,
    pub ve_traps: u64,
    pub ve_syscalls: u64,
    pub ve_faults: u64,
    pub sanitized_pages: u64,
    pub violations: u64,
    pub stage2_faults: u64,
    /// Sanitizer scans that found a sensitive instruction.
    pub sanitizer_rejects: u64,
    /// W^X transitions into the writable state (exec rights dropped).
    pub wx_to_writable: u64,
    /// W^X transitions into the executable state (after a clean scan).
    pub wx_to_exec: u64,
    /// Break-before-make unmaps (a page zapped from every domain).
    pub bbm_unmaps: u64,
}

/// Module-side state of one LightZone process.
#[derive(Debug)]
pub struct LzProc {
    pub vmid: u16,
    pub s2_root: u64,
    pub fake: FakePhys,
    pub scalable: bool,
    pub san: SanitizeMode,
    /// Stage-1 trees by pgt id; `tables[0]` is the default table.
    pub tables: Vec<Option<LzTable>>,
    /// Root-fake → pgt id (to recover the current domain from TTBR0).
    by_root: HashMap<u64, usize>,
    /// The TTBR1 tree mapping stub, gates, and the two read-only tables.
    pub ttbr1: LzTable,
    pub gates: GateTables,
    ttbrtab_frames: Vec<u64>,
    gatetab_frames: Vec<u64>,
    /// Module-allocated code frames (stub page, gate-stub pages) that
    /// reaping must return to the frame allocator.
    owned_frames: Vec<u64>,
    /// Page protections by page VA.
    pub protections: BTreeMap<u64, PageProt>,
    /// Which tables currently map each page (for detach and BBM).
    residence: HashMap<u64, Vec<usize>>,
    pub wx: WxTracker,
    /// Per-process table-ASID allocator: `lz_free` returns a domain's
    /// ASID here, and after the 16-bit space rolls over `lz_alloc` hands
    /// out recycled ASIDs (with the reuse-time invalidation
    /// `alloc_table_in` performs).
    pub asids: lz_kernel::IdAlloc,
    /// Deferred stage-2 mappings when `eager_stage2` is off.
    s2_pending: HashMap<u64, (u64, S2Perms)>,
    /// Repeated-fault guard (va, count).
    fault_guard: (u64, u32),
    pub stats: LzStats,
}

impl LzProc {
    /// Total stage-1 page-table bytes across all domains (the §9
    /// "page table memory overhead").
    pub fn table_bytes(&self) -> u64 {
        self.tables.iter().flatten().map(|t| t.table_bytes()).sum::<u64>() + self.ttbr1.table_bytes()
    }

    /// Number of live domains (allocated stage-1 tables).
    pub fn domain_count(&self) -> usize {
        self.tables.iter().flatten().count()
    }
}

/// The LightZone kernel module (plus Lowvisor state for guests).
#[derive(Debug)]
pub struct LzModule {
    procs: HashMap<Pid, LzProc>,
    /// Loader-provided gate entries per process (the statically designated
    /// ENTRY addresses of §6.2), registered at spawn.
    pending_entries: HashMap<Pid, Vec<(u16, u64)>>,
    pub ablation: AblationConfig,
    /// Table-ASID space given to each new VE's allocator (full 16-bit
    /// space by default; tests shrink it to reach per-process ASID
    /// exhaustion and rollover in a few `lz_alloc` calls).
    pub asid_space: u16,
    /// Counters of processes torn down by [`LzModule::reap`], folded into
    /// the aggregate so `metrics_sections` survives reaping.
    retired: LzStats,
    retired_asid_recycles: u64,
    /// TLB invalidations forced by recycled VMID/ASID grants (the
    /// rollover maintenance the stale-TLB pen test proves load-bearing).
    pub rollover_shootdowns: u64,
    reaps: u64,
    /// Successful [`LightZone::restore_ve`] warm restarts.
    restores: u64,
    /// Snapshot images refused fail-closed (bad version/digest, or a
    /// rebuild that did not reproduce the snapshot's layout).
    snapshot_rejects: u64,
}

impl Default for LzModule {
    fn default() -> Self {
        LzModule {
            procs: HashMap::new(),
            pending_entries: HashMap::new(),
            ablation: AblationConfig::default(),
            asid_space: u16::MAX,
            retired: LzStats::default(),
            retired_asid_recycles: 0,
            rollover_shootdowns: 0,
            reaps: 0,
            restores: 0,
            snapshot_rejects: 0,
        }
    }
}

impl LzModule {
    pub fn new() -> Self {
        LzModule::default()
    }

    /// Module state for a process, if it entered LightZone.
    pub fn proc(&self, pid: Pid) -> Option<&LzProc> {
        self.procs.get(&pid)
    }

    /// Register loader metadata (gate ENTRY addresses) for a process.
    pub fn register_entries(&mut self, pid: Pid, entries: Vec<(u16, u64)>) {
        self.pending_entries.insert(pid, entries);
    }

    // ------------------------------------------------------------------
    // lz_enter (§5.1): build the VE and lift the process to EL1.
    // ------------------------------------------------------------------

    /// Implement `lz_enter(allow_scalable, insn_san)` for the current
    /// process. Returns the syscall result (0 on success).
    pub fn lz_enter(&mut self, k: &mut Kernel, allow_scalable: bool, san: SanitizeMode) -> u64 {
        let Some(pid) = k.current() else { return u64::MAX };
        if self.procs.contains_key(&pid) {
            return u64::MAX; // one-way ticket, already inside
        }
        // VMID allocation can fail only when every VMID is simultaneously
        // live — a denied lz_enter, not a host panic. A *recycled* VMID
        // may still tag TLB entries from its previous life on any core,
        // so the reuse path shoots the whole VMID down before VTTBR_EL2
        // ever carries it (unless the rollover ablation breaks this on
        // purpose).
        let grant = match k.vmids.alloc() {
            Ok(g) => g,
            Err(_) => return u64::MAX,
        };
        let vmid = grant.id;
        if grant.recycled && !self.ablation.skip_rollover_shootdown {
            if self.ablation.skip_remote_shootdown {
                k.machine.tlb.invalidate_vmid(vmid);
            } else {
                k.machine.shootdown_vmid(vmid);
            }
            self.rollover_shootdowns += 1;
            k.machine.charge(k.machine.model.dsb + k.machine.model.path_cost(60));
        }
        let s2_root = alloc_table(&mut k.machine.mem);
        let mut fake = if self.ablation.randomize_phys { FakePhys::new() } else { FakePhys::identity() };

        // TTBR1 region: stub page, gate stubs, read-only tables.
        let mut ttbr1 = LzTable::new(&mut k.machine.mem, &mut fake, s2_root, 0);
        let mut gates = GateTables::new();
        let entries = self.pending_entries.remove(&pid).unwrap_or_default();

        // Stub page: `hvc #0` at the +0x200 (same-EL) and +0x400
        // (lower-EL) vector slots.
        let stub_real = k.machine.mem.alloc_frame();
        let hvc = lz_arch::insn::Insn::Hvc { imm: 0 }.encode().to_le_bytes();
        k.machine.mem.write_bytes(stub_real + 0x200, &hvc);
        k.machine.mem.write_bytes(stub_real + 0x400, &hvc);
        let stub_fake = fake.assign(stub_real);
        s2_map_page(
            &mut k.machine.mem,
            s2_root,
            stub_fake,
            stub_real,
            S2Perms { read: true, write: false, exec: true },
        );
        ttbr1.map_page(&mut k.machine.mem, &mut fake, s2_root, layout::STUB_VA, stub_fake, gate_code_perms());
        let mut owned_frames = vec![stub_real];

        // Gate stubs for every registered entry.
        for &(gate_id, entry_va) in &entries {
            gates.set_entry(gate_id, entry_va);
            let words = gate::emit_gate(gate_id, self.ablation.gate_flavor);
            let gva = layout::gate_va(gate_id);
            self.write_ttbr1_code(k, &mut ttbr1, &mut fake, s2_root, gva, &words, &mut owned_frames);
        }

        let mut proc = LzProc {
            vmid,
            s2_root,
            fake,
            scalable: allow_scalable,
            san,
            tables: Vec::new(),
            by_root: HashMap::new(),
            ttbr1,
            gates,
            ttbrtab_frames: Vec::new(),
            gatetab_frames: Vec::new(),
            owned_frames,
            protections: BTreeMap::new(),
            residence: HashMap::new(),
            wx: WxTracker::new(),
            asids: lz_kernel::IdAlloc::with_space(self.asid_space),
            s2_pending: HashMap::new(),
            fault_guard: (0, 0),
            stats: LzStats::default(),
        };

        // Default table (pgt 0). With the configured ASID space this can
        // only fail when `asid_space` was shrunk to zero — unwind the
        // half-built VE (trees, frames, VMID) and deny the call instead
        // of panicking the host.
        let Some(pgt0) = self.alloc_table_in(k, &mut proc) else {
            Self::scrap_proc_storage(k, proc);
            return u64::MAX;
        };
        debug_assert_eq!(pgt0, 0);

        // Enter the VE: one-way (paper §4.1.1). The process resumes at
        // the instruction after the svc, now at EL1.
        k.process_mut(pid).in_lightzone = true;
        let resume_pc = k.process(pid).ctx().pc;
        let sp = k.process(pid).ctx().sp;
        let m = &mut k.machine;
        m.set_el1_external(false);
        let mut hcr_val = hcr::VM | hcr::TTLB | hcr::TIDCP;
        if self.ablation.gate_flavor.tlbi_after_switch {
            // Ablation: the gate itself executes TLBI, so TLB maintenance
            // cannot be trapped (the design the per-table ASIDs avoid).
            hcr_val &= !hcr::TTLB;
        }
        if !allow_scalable {
            // PAN-only processes may never touch stage-1 translation
            // (§5.1.2: TVM/TRVM set).
            hcr_val |= hcr::TVM | hcr::TRVM;
        }
        m.write_sysreg_charged(SysReg::HCR_EL2, hcr_val);
        m.write_sysreg_charged(SysReg::VTTBR_EL2, vttbr::pack(vmid, s2_root));
        m.write_sysreg_charged(SysReg::SCTLR_EL1, sctlr::M); // SPAN clear: exceptions set PAN
        m.write_sysreg_charged(SysReg::TTBR0_EL1, proc.tables[0].as_ref().expect("pgt0").ttbr0());
        m.write_sysreg_charged(SysReg::TTBR1_EL1, proc.ttbr1.root_fake);
        m.write_sysreg_charged(SysReg::VBAR_EL1, layout::STUB_VA);
        m.cpu.sp_el1 = sp;
        // VE construction path (table/gate emission, bookkeeping).
        let setup = m.model.path_cost(2500) + entries.len() as u64 * m.model.path_cost(200);
        m.charge(setup);
        m.cpu.set_reg(0, 0);
        let ps = PState { el: ExceptionLevel::El1, pan: true, irq_masked: false, nzcv: Default::default() };
        m.enter(ps, resume_pc);

        self.procs.insert(pid, proc);
        0
    }

    #[allow(clippy::too_many_arguments)]
    fn write_ttbr1_code(
        &self,
        k: &mut Kernel,
        ttbr1: &mut LzTable,
        fake: &mut FakePhys,
        s2_root: u64,
        va: u64,
        words: &[u32],
        owned: &mut Vec<u64>,
    ) {
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        let mut off = 0usize;
        while off < bytes.len() {
            let page_va = page_align_down(va + off as u64);
            let in_page = (va + off as u64 - page_va) as usize;
            let take = (PAGE_SIZE as usize - in_page).min(bytes.len() - off);
            let real = match ttbr1.lookup(&k.machine.mem, fake, page_va) {
                Some((leaf_fake, _)) => fake.real_of(leaf_fake).expect("fake resolves"),
                None => {
                    let real = k.machine.mem.alloc_frame();
                    owned.push(real);
                    let f = fake.assign(real);
                    s2_map_page(&mut k.machine.mem, s2_root, f, real, S2Perms { read: true, write: false, exec: true });
                    ttbr1.map_page(&mut k.machine.mem, fake, s2_root, page_va, f, gate_code_perms());
                    real
                }
            };
            k.machine.mem.write_bytes(real + in_page as u64, &bytes[off..off + take]);
            off += take;
        }
    }

    // ------------------------------------------------------------------
    // lz_alloc / lz_free / lz_map_gate_pgt / lz_prot (§6.1, Table 2).
    // ------------------------------------------------------------------

    /// Returns `None` when the per-process ASID space is exhausted with
    /// every ASID live — a guest can reach that by looping on `lz_alloc`
    /// without `lz_free`, so it must be a denied allocation, not a host
    /// panic. After `lz_free` returns ASIDs, allocation resumes on the
    /// recycled-ID path: a recycled table ASID may still tag stale
    /// non-global TLB entries from the freed domain, so reuse
    /// invalidates the (vmid, asid) scope on every core first.
    fn alloc_table_in(&mut self, k: &mut Kernel, proc: &mut LzProc) -> Option<usize> {
        let grant = proc.asids.alloc().ok()?;
        if grant.recycled && !self.ablation.skip_rollover_shootdown {
            if self.ablation.skip_remote_shootdown {
                k.machine.tlb.invalidate_asid(proc.vmid, grant.id);
            } else {
                k.machine.shootdown_asid(proc.vmid, grant.id);
            }
            self.rollover_shootdowns += 1;
            k.machine.charge(k.machine.model.dsb + k.machine.model.path_cost(40));
        }
        let t = LzTable::new(&mut k.machine.mem, &mut proc.fake, proc.s2_root, grant.id);
        let ttbr0 = t.ttbr0();
        let pgt = proc.tables.len();
        proc.by_root.insert(t.root_fake, pgt);
        proc.tables.push(Some(t));
        let pgtid = proc.gates.push_table(ttbr0);
        debug_assert_eq!(pgtid as usize, pgt);
        Self::flush_tabs(k, proc);
        Some(pgt)
    }

    fn lz_alloc(&mut self, k: &mut Kernel, pid: Pid) -> u64 {
        let Some(mut proc) = self.procs.remove(&pid) else { return u64::MAX };
        if !proc.scalable {
            self.procs.insert(pid, proc);
            return u64::MAX;
        }
        let ret = match self.alloc_table_in(k, &mut proc) {
            Some(pgt) => pgt as u64,
            None => u64::MAX,
        };
        k.machine.charge(k.machine.model.path_cost(300));
        self.procs.insert(pid, proc);
        ret
    }

    fn lz_free(&mut self, k: &mut Kernel, pid: Pid, pgt: u64) -> u64 {
        let skip_remote = self.ablation.skip_remote_shootdown;
        let Some(proc) = self.procs.get_mut(&pid) else { return u64::MAX };
        let idx = pgt as usize;
        if idx == 0 || idx >= proc.tables.len() || proc.tables[idx].is_none() {
            return u64::MAX;
        }
        // Clear the TTBRTab slot first (while nothing is freed yet): an
        // unknown pgt id is a denied call, never a partial teardown.
        if proc.gates.set_table(pgt, 0).is_err() {
            return u64::MAX;
        }
        let Some(t) = proc.tables[idx].take() else { return u64::MAX };
        proc.by_root.remove(&t.root_fake);
        let freed_frames = t.table_frames;
        let freed_asid = t.asid;
        t.free_tree(&mut k.machine.mem, &mut proc.fake, proc.s2_root);
        // The ASID goes back to the per-process pool; after rollover it
        // will be granted again, and `alloc_table_in` invalidates its TLB
        // scope at that reuse point.
        proc.asids.free(freed_asid);
        // Invalidate every gate that targeted the freed table: its next
        // use must fail the gate's own validation, not silently load a
        // null table root.
        for entry in proc.gates.gatetab.iter_mut() {
            if entry.1 == pgt {
                entry.1 = u64::MAX;
            }
        }
        for pgts in proc.residence.values_mut() {
            pgts.retain(|&p| p != idx);
        }
        Self::flush_tabs(k, proc);
        // The freed tree's ASID entries go; any leftover block entries
        // from this view are covered by the VMID-wide shoot-down below.
        // Other cores may have cached translations through the freed
        // tree, so this must reach every online core.
        if skip_remote {
            k.machine.tlb.invalidate_vmid(proc.vmid);
        } else {
            k.machine.shootdown_vmid(proc.vmid);
        }
        let m = &k.machine.model;
        let cost = m.dsb + m.path_cost(200 + 30 * freed_frames);
        k.machine.charge(cost);
        0
    }

    fn lz_map_gate_pgt(&mut self, k: &mut Kernel, pid: Pid, pgt: u64, gate_id: u64) -> u64 {
        let Some(proc) = self.procs.get_mut(&pid) else { return u64::MAX };
        if gate_id > u16::MAX as u64 {
            return u64::MAX;
        }
        match proc.gates.set_gate_pgt(gate_id as u16, pgt) {
            Ok(()) => {
                Self::flush_tabs(k, proc);
                k.machine.charge(k.machine.model.path_cost(80));
                0
            }
            Err(_) => u64::MAX,
        }
    }

    fn lz_prot(&mut self, k: &mut Kernel, pid: Pid, addr: u64, len: u64, pgt: u64, perm: u64) -> u64 {
        if addr & (PAGE_SIZE - 1) != 0 || len == 0 {
            return u64::MAX;
        }
        let skip_remote = self.ablation.skip_remote_shootdown;
        let Some(proc) = self.procs.get_mut(&pid) else { return u64::MAX };
        let overlay = Overlay::from_bits(perm);
        let pan_all = pgt == PGT_ALL;
        if !pan_all && (pgt as usize >= proc.tables.len() || proc.tables[pgt as usize].is_none()) {
            return u64::MAX;
        }
        let end = lz_arch::page_align_up(addr + len);
        let mut page = addr;
        while page < end {
            let prot = proc.protections.entry(page).or_default();
            if pan_all {
                prot.pan_all = Some(overlay);
            } else {
                prot.attach.retain(|(p, _)| *p != pgt as usize);
                prot.attach.push((pgt as usize, overlay));
            }
            // Detach current mappings (break-before-make): the page
            // re-faults under the new policy. Huge blocks shed their
            // whole VMID from the TLB (a block covers many 4 KB TLB
            // entries).
            if let Some(mapped) = proc.residence.remove(&page) {
                for t in mapped {
                    if let Some(table) = proc.tables[t].as_mut() {
                        table.unmap_page(&mut k.machine.mem, &proc.fake, page);
                    }
                }
                if k.process(pid).mm.is_huge(page) {
                    if skip_remote {
                        k.machine.tlb.invalidate_vmid(proc.vmid);
                    } else {
                        k.machine.shootdown_vmid(proc.vmid);
                    }
                } else if skip_remote {
                    k.machine.tlb.invalidate_va(proc.vmid, page);
                } else {
                    k.machine.shootdown_va(proc.vmid, page);
                }
            }
            page += PAGE_SIZE;
        }
        let pages = (end - addr) / PAGE_SIZE;
        k.machine.charge(k.machine.model.path_cost(150 * pages) + k.machine.model.dsb);
        0
    }

    /// Rewrite the read-only TTBRTab/GateTab pages from the canonical
    /// [`GateTables`], growing the backing as needed.
    fn flush_tabs(k: &mut Kernel, proc: &mut LzProc) {
        let ttbr_bytes = proc.gates.ttbrtab_bytes();
        let gate_bytes = proc.gates.gatetab_bytes();
        // Destructure to appease the borrow checker.
        let LzProc { fake, ttbr1, s2_root, ttbrtab_frames, gatetab_frames, .. } = proc;
        for (base_va, bytes, frames) in
            [(layout::TTBRTAB_VA, &ttbr_bytes, ttbrtab_frames), (layout::GATETAB_VA, &gate_bytes, gatetab_frames)]
        {
            let pages_needed = bytes.len().div_ceil(PAGE_SIZE as usize);
            while frames.len() < pages_needed {
                let real = k.machine.mem.alloc_frame();
                let f = fake.assign(real);
                s2_map_page(&mut k.machine.mem, *s2_root, f, real, S2Perms::ro());
                let va = base_va + frames.len() as u64 * PAGE_SIZE;
                ttbr1.map_page(&mut k.machine.mem, fake, *s2_root, va, f, tab_data_perms());
                frames.push(real);
            }
            for (i, chunk) in bytes.chunks(PAGE_SIZE as usize).enumerate() {
                k.machine.mem.write_bytes(frames[i], chunk);
            }
        }
    }

    // ------------------------------------------------------------------
    // Reaping (fleet-scale lifecycle): return a dead VE's storage.
    // ------------------------------------------------------------------

    /// Free every module-owned resource of a (possibly half-built) VE:
    /// all stage-1 domain trees, the TTBR1 tree, the stub/gate/table
    /// frames, the stage-2 tree, and the VMID itself. Deliberately does
    /// **not** invalidate the dead VMID's TLB entries — the
    /// generation-tagged allocator's contract is invalidation at *reuse*
    /// (`lz_enter`'s recycled-grant path), which is exactly what the
    /// rollover penetration test probes.
    fn scrap_proc_storage(k: &mut Kernel, proc: LzProc) {
        let LzProc { vmid, s2_root, mut fake, tables, ttbr1, ttbrtab_frames, gatetab_frames, owned_frames, .. } = proc;
        for t in tables.into_iter().flatten() {
            t.free_tree(&mut k.machine.mem, &mut fake, s2_root);
        }
        ttbr1.free_tree(&mut k.machine.mem, &mut fake, s2_root);
        for real in ttbrtab_frames.into_iter().chain(gatetab_frames).chain(owned_frames) {
            if let Some(f) = fake.fake_of(real) {
                s2_unmap(&mut k.machine.mem, s2_root, f);
                fake.release(real);
            }
            k.machine.mem.try_free_frame(real);
        }
        free_s2_tree(&mut k.machine.mem, s2_root);
        k.vmids.free(vmid);
    }

    /// Tear down an exited VE's module state and recycle its VMID. The
    /// process's own memory (VMAs, data frames) is the kernel's to free
    /// ([`Kernel::reap`]); this reaps only what the module allocated.
    /// Counters are folded into a retired aggregate first so
    /// [`LzModule::metrics_sections`] keeps reporting them. Returns
    /// `false` for a pid that never entered (or was already reaped).
    pub fn reap(&mut self, k: &mut Kernel, pid: Pid) -> bool {
        let Some(proc) = self.procs.remove(&pid) else { return false };
        self.pending_entries.remove(&pid);
        let s = &proc.stats;
        let r = &mut self.retired;
        if s.last_violation.is_some() {
            r.last_violation = s.last_violation;
        }
        r.ve_traps += s.ve_traps;
        r.ve_syscalls += s.ve_syscalls;
        r.ve_faults += s.ve_faults;
        r.sanitized_pages += s.sanitized_pages;
        r.violations += s.violations;
        r.stage2_faults += s.stage2_faults;
        r.sanitizer_rejects += s.sanitizer_rejects;
        r.wx_to_writable += s.wx_to_writable;
        r.wx_to_exec += s.wx_to_exec;
        r.bbm_unmaps += s.bbm_unmaps;
        self.retired_asid_recycles += proc.asids.recycles();
        Self::scrap_proc_storage(k, proc);
        self.reaps += 1;
        k.machine.charge(k.machine.model.path_cost(600));
        true
    }

    /// Live (allocated, unfreed) domains across every resident VE.
    pub fn domains_live(&self) -> u64 {
        self.procs.values().map(|p| p.domain_count() as u64).sum()
    }

    /// Recycled table-ASID grants across live and reaped VEs.
    pub fn asid_recycles(&self) -> u64 {
        self.retired_asid_recycles + self.procs.values().map(|p| p.asids.recycles()).sum::<u64>()
    }

    /// VEs torn down via [`LzModule::reap`].
    pub fn reaps(&self) -> u64 {
        self.reaps
    }

    /// Live VEs as `(pid, vmid, stage-2 root)` — the recovery soak's
    /// uniqueness oracle (no two live VEs may ever share a VMID or a
    /// stage-2 tree, restarts included).
    pub fn live_ves(&self) -> impl Iterator<Item = (Pid, u16, u64)> + '_ {
        self.procs.iter().map(|(&pid, p)| (pid, p.vmid, p.s2_root))
    }

    // ------------------------------------------------------------------
    // Snapshot / restore (supervised warm restarts).
    // ------------------------------------------------------------------

    /// Capture a [`VeSnapshot`] of `pid` at a request boundary. Returns
    /// `None` — refusing to snapshot rather than producing a lossy
    /// image — unless the VE is parked with its context saved (not
    /// current), single-threaded, not mid-signal, not exited, and free
    /// of huge-page VMAs (block mappings are not page-granular state).
    pub fn snapshot_ve(&self, k: &Kernel, pid: Pid) -> Option<VeSnapshot> {
        let proc = self.procs.get(&pid)?;
        let p = k.process(pid);
        if k.current() == Some(pid)
            || p.exit_code.is_some()
            || p.live_threads() != 1
            || p.sig_frame.is_some()
            || !p.sig_pending.is_empty()
            || p.mm.vmas().any(|v| p.mm.is_huge(v.start))
        {
            return None;
        }
        let ctx = p.ctx();
        let cur_domain =
            if ctx.ttbr0 == 0 { 0 } else { *proc.by_root.get(&lz_arch::sysreg::ttbr::baddr(ctx.ttbr0))? };
        let mut pages = Vec::new();
        for (va, pa) in p.mm.resident() {
            pages.push((va, k.machine.mem.read_bytes(pa, PAGE_SIZE as usize)?));
        }
        let mut snap = VeSnapshot {
            version: SNAPSHOT_VERSION,
            x: ctx.x,
            sp: ctx.sp,
            pc: ctx.pc,
            spsr: ctx.pstate.to_spsr(),
            cur_domain,
            scalable: proc.scalable,
            san: proc.san,
            domain_slots: proc.tables.iter().map(|t| t.is_some()).collect(),
            gate_pgts: proc
                .gates
                .gatetab
                .iter()
                .enumerate()
                .filter(|&(_, &(_, pgt))| pgt != u64::MAX)
                .map(|(gate, &(_, pgt))| (gate as u16, pgt))
                .collect(),
            protections: proc
                .protections
                .iter()
                .map(|(&page, prot)| {
                    (
                        page,
                        prot.pan_all.map_or(PAN_ABSENT, |o| o.to_bits()),
                        prot.attach.iter().map(|&(pgt, o)| (pgt, o.to_bits())).collect(),
                    )
                })
                .collect(),
            pages,
            digest: 0,
        };
        snap.seal();
        Some(snap)
    }

    /// Rebuild a freshly-entered VE's module-side layout (domains, gate
    /// designations, protection policy) from a snapshot: allocate every
    /// pgt id in order through the normal `alloc_table_in` path (so
    /// recycled table ASIDs get their reuse-time invalidation), re-free
    /// the snapshot's holes so ids line up, then replay gate→table
    /// designations and the protection map. Page *residence* is not
    /// replayed — restored pages re-fault lazily under the replayed
    /// policy, exactly like a cold VE. Returns `false` if the rebuild
    /// cannot reproduce the snapshot's layout.
    fn restore_ve_state(&mut self, k: &mut Kernel, pid: Pid, snap: &VeSnapshot) -> bool {
        for want in 1..snap.domain_slots.len() {
            let Some(mut proc) = self.procs.remove(&pid) else { return false };
            let got = self.alloc_table_in(k, &mut proc);
            self.procs.insert(pid, proc);
            if got != Some(want) {
                return false;
            }
        }
        for (idx, &live) in snap.domain_slots.iter().enumerate().skip(1) {
            if !live && self.lz_free(k, pid, idx as u64) != 0 {
                return false;
            }
        }
        let Some(proc) = self.procs.get_mut(&pid) else { return false };
        for &(gate, pgt) in &snap.gate_pgts {
            if proc.gates.set_gate_pgt(gate, pgt).is_err() {
                return false;
            }
        }
        for (page, pan, attach) in &snap.protections {
            let prot = PageProt {
                pan_all: (*pan != PAN_ABSENT).then(|| Overlay::from_bits(*pan)),
                attach: attach.iter().map(|&(pgt, bits)| (pgt, Overlay::from_bits(bits))).collect(),
            };
            proc.protections.insert(*page, prot);
        }
        Self::flush_tabs(k, proc);
        true
    }

    /// Re-enter a LightZone process after a context switch: restore the
    /// VE's system registers and the thread's saved context, including
    /// its TTBR0 (the current domain) and PAN bit — both part of the
    /// LightZone-extended context (§6, "PAN and TTBR0 are added in the
    /// signal contexts of the kernel").
    ///
    /// # Panics
    ///
    /// Panics if `pid` never entered LightZone.
    pub fn enter_ve_process(&mut self, k: &mut Kernel, pid: Pid) {
        assert!(k.process(pid).exit_code.is_none(), "cannot schedule an exited process");
        let proc = self.procs.get(&pid).expect("process is in LightZone");
        let mut hcr_val = hcr::VM | hcr::TTLB | hcr::TIDCP;
        if self.ablation.gate_flavor.tlbi_after_switch {
            hcr_val &= !hcr::TTLB;
        }
        if !proc.scalable {
            hcr_val |= hcr::TVM | hcr::TRVM;
        }
        let vttbr_val = vttbr::pack(proc.vmid, proc.s2_root);
        let ttbr1 = proc.ttbr1.root_fake;
        let default_ttbr0 = proc.tables[0].as_ref().expect("pgt0").ttbr0();
        let ctx = k.process(pid).ctx().clone();
        let m = &mut k.machine;
        m.set_el1_external(false);
        m.write_sysreg_charged(SysReg::HCR_EL2, hcr_val);
        m.write_sysreg_charged(SysReg::VTTBR_EL2, vttbr_val);
        m.write_sysreg_charged(SysReg::SCTLR_EL1, sctlr::M);
        let ttbr0 = if ctx.ttbr0 != 0 { ctx.ttbr0 } else { default_ttbr0 };
        m.write_sysreg_charged(SysReg::TTBR0_EL1, ttbr0);
        m.write_sysreg_charged(SysReg::TTBR1_EL1, ttbr1);
        m.write_sysreg_charged(SysReg::VBAR_EL1, layout::STUB_VA);
        m.cpu.x = ctx.x;
        m.cpu.sp_el1 = ctx.sp;
        k.set_current(pid);
        let mut ps = ctx.pstate;
        ps.el = ExceptionLevel::El1;
        k.machine.enter(ps, ctx.pc);
    }

    // ------------------------------------------------------------------
    // Trap handling (§5.1.3).
    // ------------------------------------------------------------------

    /// Handle a machine exit belonging to a LightZone process. Returns
    /// `None` when the trap was serviced and the process resumed.
    pub fn handle_ve_exit(&mut self, k: &mut Kernel, exit: Exit) -> Option<Event> {
        let Some(pid) = k.current() else { return Some(Event::Raw(exit)) };
        // Chaos injection: corrupt a root-level descriptor of the current
        // domain's stage-1 tree at this trap boundary (a modelled event,
        // so both fast-path legs see the identical schedule).
        if let Some(draw) = k.machine.chaos_fire(lz_machine::FaultSite::PtwBitFlip) {
            self.inject_ptw_bit_flip(k, pid, draw);
        }
        // Chaos injection: crash the VE outright at this trap boundary —
        // the recovery soak's bread-and-butter fault. Fail-closed by
        // construction: the only effect is a SECURITY_KILL of the
        // current VE, which the fleet supervisor then restarts.
        if k.machine.chaos_fire(lz_machine::FaultSite::VeCrash).is_some() {
            k.machine.chaos.contained();
            return self.violation(k, pid, "chaos: injected VE crash");
        }
        match exit {
            Exit::El2(ExceptionClass::Hvc) => {
                self.charge_forward(k);
                match self.procs.get_mut(&pid) {
                    Some(p) => p.stats.ve_traps += 1,
                    None => return self.violation(k, pid, "VE trap without LightZone state"),
                }
                let esr1 = k.machine.sysreg(SysReg::ESR_EL1);
                match esr::ExceptionClass::from_esr(esr1) {
                    Some(ExceptionClass::Svc) => self.ve_syscall(k, pid),
                    Some(ExceptionClass::DataAbortSame) | Some(ExceptionClass::InsnAbortSame) => {
                        let is_fetch = esr::ExceptionClass::from_esr(esr1) == Some(ExceptionClass::InsnAbortSame);
                        self.ve_fault(k, pid, is_fetch)
                    }
                    Some(ExceptionClass::Brk) => {
                        let imm = esr::esr_imm(esr1);
                        if imm == gate::GATE_FAIL_BRK {
                            self.violation(k, pid, "call gate validation failed")
                        } else {
                            Some(k.kill_current(imm as i64))
                        }
                    }
                    Some(ExceptionClass::Unknown) | Some(ExceptionClass::IllegalState) => {
                        self.violation(k, pid, "undefined or illegal instruction in VE")
                    }
                    _ => self.violation(k, pid, "unexpected trap class in VE"),
                }
            }
            // Direct EL2 exits: stage-2 faults and trapped sysregs.
            Exit::El2(ExceptionClass::DataAbortLower)
            | Exit::El2(ExceptionClass::InsnAbortLower)
            | Exit::El2(ExceptionClass::DataAbortSame)
            | Exit::El2(ExceptionClass::InsnAbortSame) => self.stage2_fault(k, pid),
            Exit::El2(ExceptionClass::TrappedSysreg) => {
                // TVM/TRVM/TTLB trapped a stage-1 or TLB operation — a
                // sensitive instruction got past static checks.
                self.violation(k, pid, "trapped system instruction")
            }
            Exit::El2(ExceptionClass::Smc) => self.violation(k, pid, "smc from VE"),
            // A host panic caught at the epoch-shell boundary (see
            // `lz_machine::smp`): the shell already journalled the
            // violation; here the blast radius is bounded to the VE that
            // was running by killing it with a typed fault, so one
            // panicking shell never takes down the other tenants.
            Exit::HostPanic => self.violation(k, pid, lz_machine::LzFault::HostPanic.reason()),
            Exit::Limit => Some(Event::Limit),
            other => {
                let _ = other;
                self.violation(k, pid, "unhandled VE exit")
            }
        }
    }

    /// Chaos injection ([`lz_machine::FaultSite::PtwBitFlip`]): clear the
    /// VALID bit of one root-level descriptor in the faulting thread's
    /// current stage-1 tree. Clearing VALID is the fail-closed corruption:
    /// the affected range can only *stop* translating (a translation fault
    /// the module transparently re-maps, or the fault-loop guard kills the
    /// VE) — it can never redirect a translation or widen permissions. The
    /// TLB is shot down for the VMID at the injection point so cached
    /// entries cannot disagree with the corrupted tree (the corruption is
    /// architecturally "cache coherent"), keeping the fresh-walk oracle
    /// sound.
    fn inject_ptw_bit_flip(&mut self, k: &mut Kernel, pid: Pid, draw: u64) {
        let Some(proc) = self.procs.get(&pid) else { return };
        let ttbr0 = k.machine.sysreg(SysReg::TTBR0_EL1);
        let root_fake = lz_arch::sysreg::ttbr::baddr(ttbr0);
        let Some(&pgt) = proc.by_root.get(&root_fake) else { return };
        let Some(table) = proc.tables[pgt].as_ref() else { return };
        let desc_pa = table.root_real + (draw % 512) * 8;
        if let Some(desc) = k.machine.mem.read_u64(desc_pa) {
            if desc & 1 != 0 {
                k.machine.mem.write_u64(desc_pa, desc & !1);
                k.machine.tlb.invalidate_vmid(proc.vmid);
            }
        }
        k.machine.chaos.contained();
    }

    /// Table 4 row 3: the module's forwarding path. Cheaper in system-
    /// register traffic than the host syscall path (it retains `HCR_EL2`
    /// and `VTTBR_EL2`), at the price of a longer instruction path and the
    /// extra EL1 vector hop through the stub.
    fn charge_forward(&self, k: &mut Kernel) {
        let nested = matches!(k.mode, KernelMode::Guest { .. });
        if nested {
            lowvisor::charge_lowvisor_forward(&mut k.machine, &self.ablation);
            return;
        }
        let m = &k.machine.model;
        let mut cost = m.gpregs_roundtrip(31)
            + 3 * m.sysreg_read // ESR_EL1, ELR_EL1, FAR_EL1
            + m.sysreg_write // ELR_EL2 retarget for the direct return
            + m.path_cost(180)
            + m.trap_cache_pollution;
        if !self.ablation.retain_hcr_vttbr {
            // Ablation: conventional world-switch behaviour.
            cost += 2 * (m.hcr_el2_write + m.vttbr_el2_write);
        }
        k.machine.charge(cost);
    }

    /// Resume the VE at `pc`, restoring the PSTATE captured in SPSR_EL1
    /// (which carries the process's PAN bit across the trap).
    fn resume_ve(&self, k: &mut Kernel, pc: u64) {
        let spsr1 = k.machine.sysreg(SysReg::SPSR_EL1);
        let mut ps = PState::from_spsr(spsr1).unwrap_or(PState::reset());
        debug_assert_eq!(ps.el, ExceptionLevel::El1, "VE traps come from EL1");
        ps.el = ExceptionLevel::El1;
        if matches!(k.mode, KernelMode::Guest { .. }) {
            lowvisor::charge_lowvisor_return(&mut k.machine, &self.ablation);
        }
        k.machine.enter(ps, pc);
    }

    fn ve_syscall(&mut self, k: &mut Kernel, pid: Pid) -> Option<Event> {
        match self.procs.get_mut(&pid) {
            Some(p) => p.stats.ve_syscalls += 1,
            None => return self.violation(k, pid, "VE syscall without LightZone state"),
        }
        let elr1 = k.machine.sysreg(SysReg::ELR_EL1);
        let nr = k.machine.cpu.reg(8);
        let args = [
            k.machine.cpu.reg(0),
            k.machine.cpu.reg(1),
            k.machine.cpu.reg(2),
            k.machine.cpu.reg(3),
            k.machine.cpu.reg(4),
            k.machine.cpu.reg(5),
        ];
        let ret = if nr >= CUSTOM_BASE {
            match nr {
                custom::LZ_ENTER => u64::MAX, // already inside
                custom::LZ_ALLOC => self.lz_alloc(k, pid),
                custom::LZ_FREE => self.lz_free(k, pid, args[0]),
                custom::LZ_PROT => self.lz_prot(k, pid, args[0], args[1], args[2], args[3]),
                custom::LZ_MAP_GATE_PGT => self.lz_map_gate_pgt(k, pid, args[0], args[1]),
                _ => u64::MAX,
            }
        } else {
            // Address-space changes made through the kernel must reach the
            // LZ-owned translation state too: the kernel frees frames and
            // rewrites its own tables, but knows nothing about per-domain
            // stage-1 trees, the W^X tracker, stage-2, or the fake-phys
            // map. Zap those first (break-before-make), or a stale LZ
            // mapping would keep translating to a freed or wrongly
            // permissioned frame.
            match lz_kernel::Sysno::from_nr(nr) {
                Some(lz_kernel::Sysno::Munmap) => self.ve_mm_fixup(k, pid, args[0], args[1], true),
                Some(lz_kernel::Sysno::Mprotect) => self.ve_mm_fixup(k, pid, args[0], args[1], false),
                _ => {}
            }
            match k.do_syscall(nr, args) {
                SysOutcome::Ret(v) => v,
                SysOutcome::Sigreturn => return self.ve_sigreturn(k, pid),
                SysOutcome::Exit(code) => {
                    // Thread exit: the process ends with its last thread.
                    if k.process_mut(pid).exit_current_thread() {
                        return Some(k.kill_current(code));
                    }
                    self.ve_switch_thread(k, pid);
                    return None;
                }
                SysOutcome::Park => {
                    // Futex wait: bookkeeping is done; deliver 0 in x0
                    // on eventual wakeup and run another thread (the
                    // park precondition guarantees one is runnable).
                    k.machine.cpu.set_reg(0, 0);
                    self.ve_rotate_thread(k, pid, elr1);
                    return None;
                }
            }
        };
        k.machine.cpu.set_reg(0, ret);
        if self.ve_deliver_signal(k, pid, elr1) {
            return None;
        }
        if nr == lz_kernel::Sysno::Yield.nr() && k.process(pid).live_threads() > 1 {
            self.ve_rotate_thread(k, pid, elr1);
            return None;
        }
        self.resume_ve(k, elr1);
        None
    }

    /// Save the current VE thread (including its TTBR0 domain and PAN
    /// bit) and run the next runnable thread — per-thread domains are
    /// the paper's MySQL scenario (§9.2: each connection thread's stack
    /// in its own domain).
    fn ve_rotate_thread(&mut self, k: &mut Kernel, pid: Pid, pc: u64) {
        let ttbr0 = k.machine.sysreg(SysReg::TTBR0_EL1);
        let spsr1 = k.machine.sysreg(SysReg::SPSR_EL1);
        let frame = lz_kernel::UserContext {
            x: k.machine.cpu.x,
            sp: k.machine.cpu.sp_el1,
            pc,
            pstate: PState::from_spsr(spsr1).unwrap_or(PState::reset()),
            ttbr0,
        };
        *k.process_mut(pid).ctx_mut() = frame;
        self.ve_switch_thread(k, pid);
    }

    /// Load the next runnable VE thread onto the CPU.
    fn ve_switch_thread(&mut self, k: &mut Kernel, pid: Pid) {
        let Some(proc) = self.procs.get(&pid) else {
            let _ = k.kill_current(SECURITY_KILL);
            return;
        };
        let default_ttbr0 = proc.tables[0].as_ref().expect("pgt0").ttbr0();
        // No runnable thread left (every survivor parked): a guest-made
        // deadlock. Fail closed by finishing the process instead of
        // panicking the host.
        let Some(next) = k.process(pid).next_runnable() else {
            let _ = k.kill_current(-11);
            return;
        };
        let ctx = {
            let p = k.process_mut(pid);
            p.cur_thread = next;
            p.ctx().clone()
        };
        let m = &k.machine.model;
        let cost = m.path_cost(300) + m.gpregs_roundtrip(31);
        k.machine.charge(cost);
        k.machine.cpu.x = ctx.x;
        k.machine.cpu.sp_el1 = ctx.sp;
        // A fresh thread (never scheduled) has no recorded domain: it
        // starts in the default table with PAN set.
        let fresh = ctx.ttbr0 == 0;
        let ttbr0 = if fresh { default_ttbr0 } else { ctx.ttbr0 };
        k.machine.write_sysreg_charged(SysReg::TTBR0_EL1, ttbr0);
        let ps = if fresh {
            PState { el: ExceptionLevel::El1, pan: true, irq_masked: false, nzcv: Default::default() }
        } else {
            let mut p = ctx.pstate;
            p.el = ExceptionLevel::El1;
            p
        };
        if matches!(k.mode, KernelMode::Guest { .. }) {
            lowvisor::charge_lowvisor_return(&mut k.machine, &self.ablation);
        }
        k.machine.enter(ps, ctx.pc);
    }

    /// Deliver a pending signal to a LightZone process: the frame saves
    /// the *full* LightZone context — TTBR0 (current domain) and PAN —
    /// and the handler starts in the default table with PAN set (least
    /// privilege), exactly the §6 signal-context extension.
    fn ve_deliver_signal(&mut self, k: &mut Kernel, pid: Pid, interrupted_pc: u64) -> bool {
        let Some(proc) = self.procs.get(&pid) else { return false };
        let default_ttbr0 = proc.tables[0].as_ref().expect("pgt0").ttbr0();
        let ttbr0 = k.machine.sysreg(SysReg::TTBR0_EL1);
        let spsr1 = k.machine.sysreg(SysReg::SPSR_EL1);
        let (sig, handler) = {
            let p = k.process_mut(pid);
            if p.sig_frame.is_some() {
                return false;
            }
            let Some(&sig) = p.sig_pending.front() else { return false };
            let Some(&handler) = p.sig_handlers.get(&sig) else {
                p.sig_pending.pop_front();
                return false;
            };
            p.sig_pending.pop_front();
            (sig, handler)
        };
        let frame = lz_kernel::UserContext {
            x: k.machine.cpu.x,
            sp: k.machine.cpu.sp_el1,
            pc: interrupted_pc,
            pstate: PState::from_spsr(spsr1).unwrap_or(PState::reset()),
            ttbr0,
        };
        k.process_mut(pid).sig_frame = Some(frame);
        let m = &k.machine.model;
        let cost = m.path_cost(500) + 40 * m.mem_access;
        k.machine.charge(cost);
        k.machine.cpu.set_reg(0, sig);
        // Handler runs in the default table with PAN set.
        k.machine.write_sysreg_charged(SysReg::TTBR0_EL1, default_ttbr0);
        let ps = PState { el: ExceptionLevel::El1, pan: true, irq_masked: false, nzcv: Default::default() };
        if matches!(k.mode, KernelMode::Guest { .. }) {
            lowvisor::charge_lowvisor_return(&mut k.machine, &self.ablation);
        }
        k.machine.enter(ps, handler);
        true
    }

    /// `rt_sigreturn` from a LightZone process: restore the interrupted
    /// domain (TTBR0), PAN, and registers from the frame.
    fn ve_sigreturn(&mut self, k: &mut Kernel, pid: Pid) -> Option<Event> {
        let Some(frame) = k.process_mut(pid).sig_frame.take() else {
            return self.violation(k, pid, "sigreturn without a signal frame");
        };
        let m = &k.machine.model;
        let cost = m.path_cost(400) + 40 * m.mem_access;
        k.machine.charge(cost);
        k.machine.cpu.x = frame.x;
        k.machine.cpu.sp_el1 = frame.sp;
        k.machine.write_sysreg_charged(SysReg::TTBR0_EL1, frame.ttbr0);
        let mut ps = frame.pstate;
        ps.el = ExceptionLevel::El1;
        if matches!(k.mode, KernelMode::Guest { .. }) {
            lowvisor::charge_lowvisor_return(&mut k.machine, &self.ablation);
        }
        k.machine.enter(ps, frame.pc);
        None
    }

    /// Stage-1 fault inside the VE (§5.1.2 memory virtualization +
    /// §6.1 overlays + §6.3 sanitizer).
    fn ve_fault(&mut self, k: &mut Kernel, pid: Pid, is_fetch: bool) -> Option<Event> {
        let Some(mut proc) = self.procs.remove(&pid) else {
            return self.violation(k, pid, "VE fault without LightZone state");
        };
        let result = self.ve_fault_inner(k, pid, &mut proc, is_fetch);
        self.procs.insert(pid, proc);
        result
    }

    fn ve_fault_inner(&mut self, k: &mut Kernel, pid: Pid, proc: &mut LzProc, is_fetch: bool) -> Option<Event> {
        proc.stats.ve_faults += 1;
        let esr1 = k.machine.sysreg(SysReg::ESR_EL1);
        let far = k.machine.sysreg(SysReg::FAR_EL1);
        let elr1 = k.machine.sysreg(SysReg::ELR_EL1);
        let Some((fault, wnr, _)) = esr::esr_abort_info(esr1) else {
            return self.violation(k, pid, "malformed abort syndrome");
        };
        let page = page_align_down(far);

        // Loop guard: the same VA repeatedly faulting means the module
        // cannot make progress — treat as a violation, not a hang.
        if proc.fault_guard.0 == far {
            proc.fault_guard.1 += 1;
            if proc.fault_guard.1 > 8 {
                return self.violation(k, pid, "fault loop");
            }
        } else {
            proc.fault_guard = (far, 1);
        }

        // Faults in the TTBR1 half are always violations: the region is
        // fully populated by the module (e.g. writes to gate pages).
        if far >= 0xffff_0000_0000_0000 {
            return self.violation(k, pid, "access fault in gate region");
        }

        // Which domain is the thread in? Recover from the live TTBR0.
        let ttbr0 = k.machine.sysreg(SysReg::TTBR0_EL1);
        let root_fake = lz_arch::sysreg::ttbr::baddr(ttbr0);
        let Some(&cur_pgt) = proc.by_root.get(&root_fake) else {
            return self.violation(k, pid, "TTBR0 points outside TTBRTab");
        };
        // Chaos injection: a transient failure in the gate's TTBRTab
        // validation. Fail closed — the thread is killed exactly as a
        // genuinely failed validation would be; a transient fault never
        // falls back to "assume valid".
        if k.machine.chaos_fire(lz_machine::FaultSite::GateTransient).is_some() {
            k.machine.chaos.contained();
            return self.violation(k, pid, "chaos: transient gate validation failure");
        }

        // Protection policy for this page.
        let prot = proc.protections.get(&page).cloned();
        let overlay: Option<Overlay> = match &prot {
            None => None,
            Some(p) => {
                if let Some(o) = p.pan_all {
                    Some(o)
                } else if let Some((_, o)) = p.attach.iter().find(|(t, _)| *t == cur_pgt) {
                    Some(*o)
                } else {
                    // Protected page not attached to the current domain.
                    proc.stats.violations += 1;
                    proc.stats.last_violation = Some("domain access violation");
                    return self.violation(k, pid, "domain access violation");
                }
            }
        };
        let pan_page = prot.as_ref().is_some_and(|p| p.pan_all.is_some()) || overlay.is_some_and(|o| o.user);

        // PAN-guarded page + permission fault = access with PAN set: the
        // thread never opened the domain. Kill (pen-test behaviour).
        if matches!(fault, esr::FaultStatus::Permission(_)) && pan_page {
            proc.stats.violations += 1;
            proc.stats.last_violation = Some("PAN violation");
            return self.violation(k, pid, "PAN violation");
        }

        // Linux-side residency through the kernel-managed tables.
        let vma = {
            let p = k.process(pid);
            match p.mm.vma_at(far) {
                Some(v) => (v.prot, v.start),
                None => return Some(k.kill_current(-11)),
            }
        };
        let (vma_prot, _) = vma;
        // Apply the overlay: least privilege (intersection, §6.1).
        let eff_write = vma_prot.write && overlay.is_none_or(|o| o.write);
        let eff_exec = vma_prot.exec && overlay.is_none_or(|o| o.exec);
        let eff_read = vma_prot.read && overlay.is_none_or(|o| o.read);
        if (wnr && !eff_write) || (is_fetch && !eff_exec) || (!wnr && !is_fetch && !eff_read) {
            if matches!(fault, esr::FaultStatus::Permission(_)) && vma_prot.write && vma_prot.exec {
                // fallthrough: W^X toggles below handle W+X VMAs.
            } else {
                proc.stats.violations += 1;
                proc.stats.last_violation = Some("permission violation");
                return self.violation(k, pid, "permission violation");
            }
        }

        // Huge-page-backed regions (the §9.3 NVM buffers) map as 2 MiB
        // blocks in both stages, keeping the block TLB coverage and the
        // lower table overhead the paper reports.
        if k.process(pid).mm.is_huge(far) {
            if is_fetch {
                proc.stats.violations += 1;
                proc.stats.last_violation = Some("execute from huge data buffer");
                return self.violation(k, pid, "execute from huge data buffer");
            }
            let block_va = far & !(lz_kernel::vma::BLOCK_SIZE - 1);
            let pa_block = {
                let (mm, machine) = k.mm_and_machine(pid);
                mm.fault_in_block(&mut machine.mem, far, wnr && eff_write)
            };
            let Some(pa_block) = pa_block else {
                return Some(k.kill_current(-11));
            };
            let fake_block = proc.fake.assign_block(pa_block);
            let s2p = S2Perms { read: true, write: eff_write, exec: false };
            s2_map_block(&mut k.machine.mem, proc.s2_root, fake_block, pa_block, s2p);
            let is_protected = prot.is_some();
            let perms = S1Perms {
                read: eff_read,
                write: eff_write,
                user_exec: false,
                priv_exec: false,
                el0: pan_page,
                global: !is_protected || pan_page,
            };
            let Some(table) = proc.tables[cur_pgt].as_mut() else {
                return self.violation(k, pid, "fault in a freed domain");
            };
            if table
                .try_map_block(&mut k.machine.mem, &mut proc.fake, proc.s2_root, block_va, fake_block, perms)
                .is_err()
            {
                return self.violation(k, pid, "unmappable block in VE fault");
            }
            proc.residence.entry(block_va).or_default().retain(|&t| t != cur_pgt);
            proc.residence.entry(block_va).or_default().push(cur_pgt);
            let m = &k.machine.model;
            let cost = m.path_cost(420) + 12 * m.mem_access + m.trap_cache_pollution;
            k.machine.charge(cost);
            self.resume_ve(k, elr1);
            return None;
        }

        let pa = {
            let (mm, machine) = k.mm_and_machine(pid);
            match mm.page_at(page) {
                Some(pa) => pa,
                None => match mm.fault_in(&mut machine.mem, far, wnr && eff_write, is_fetch && eff_exec) {
                    Some(pa) => pa,
                    None => return Some(k.kill_current(-11)),
                },
            }
        };

        // W^X and sanitizer (§6.3).
        let decision = proc.wx.on_fault(page, eff_write, eff_exec, is_fetch);
        let (map_write, map_exec) = match decision {
            WxDecision::Map { write, exec } => {
                // Exec -> writable flip: break-before-make in every domain
                // that maps it. Any data access that grants write on a
                // currently-Executable page must BBM — including *read*
                // faults on W+X VMAs, which also come back as
                // `Map { write: true, .. }`. (Gating this on `wnr` left a
                // stale executable alias alive after a read-fault flip;
                // see `wx_read_fault_flip_contained` in the pen tests.)
                if !is_fetch && write && proc.wx.state(page) == Some(sanitizer::WxState::Executable) {
                    self.bbm_unmap_all(k, proc, page);
                }
                if write {
                    if proc.wx.state(page) != Some(sanitizer::WxState::Writable) {
                        proc.stats.wx_to_writable += 1;
                    }
                    proc.wx.commit_write(page);
                }
                (write, exec)
            }
            WxDecision::ScanThenExec => {
                // Break-before-make *first*, then scan, then map X.
                self.bbm_unmap_all(k, proc, page);
                // Chaos injection: the scan is interrupted partway. Fail
                // closed — the page stays unmapped (BBM already ran) and
                // the scan restarts from scratch; it never resumes from a
                // partial result, so no word escapes classification. Only
                // the wasted half-scan's cycles are charged.
                if k.machine.chaos_fire(lz_machine::FaultSite::SanitizerInterrupt).is_some() {
                    let wasted = sanitizer::scan_cost(&k.machine.model) / 2;
                    k.machine.charge(wasted);
                    k.machine.chaos.contained();
                }
                match sanitizer::sanitize_page(&k.machine.mem, pa, proc.san, &k.machine.model) {
                    Ok(cost) => {
                        k.machine.charge(cost);
                        proc.stats.sanitized_pages += 1;
                        proc.stats.wx_to_exec += 1;
                        proc.wx.commit_exec(page);
                        (false, true)
                    }
                    Err(_) => {
                        proc.stats.sanitizer_rejects += 1;
                        proc.stats.violations += 1;
                        proc.stats.last_violation = Some("sensitive instruction in executable page");
                        k.machine.record_event(EventKind::SanitizerReject { page });
                        return self.violation(k, pid, "sensitive instruction in executable page");
                    }
                }
            }
        };

        // Build the stage-1 leaf permissions. Normal memory is a global
        // kernel page; PAN-protected memory is a global user page;
        // per-domain memory is a non-global kernel page.
        let is_protected = prot.is_some();
        let perms = S1Perms {
            read: eff_read,
            write: map_write && eff_write,
            user_exec: false,
            priv_exec: map_exec && eff_exec,
            el0: pan_page,
            global: !is_protected || (is_protected && pan_page),
        };

        // Stage-2 mapping for the data page (eager by default, §5.2).
        let leaf_fake = proc.fake.assign(pa);
        let s2p = S2Perms { read: true, write: eff_write, exec: eff_exec };
        if self.ablation.eager_stage2 {
            s2_map_page(&mut k.machine.mem, proc.s2_root, leaf_fake, pa, s2p);
        } else {
            proc.s2_pending.insert(leaf_fake, (pa, s2p));
        }

        let Some(table) = proc.tables[cur_pgt].as_mut() else {
            return self.violation(k, pid, "fault in a freed domain");
        };
        if table.try_map_page(&mut k.machine.mem, &mut proc.fake, proc.s2_root, page, leaf_fake, perms).is_err() {
            return self.violation(k, pid, "unmappable page in VE fault");
        }
        proc.residence.entry(page).or_default().retain(|&t| t != cur_pgt);
        proc.residence.entry(page).or_default().push(cur_pgt);

        // Fault-path software cost.
        let m = &k.machine.model;
        let cost = m.path_cost(380) + 10 * m.mem_access + m.trap_cache_pollution;
        k.machine.charge(cost);

        self.resume_ve(k, elr1);
        None
    }

    /// Drop LZ-owned state for `[addr, addr+len)` ahead of a kernel-side
    /// `munmap` (`unmap = true`, which frees the backing frames) or
    /// `mprotect` (`unmap = false`, which changes VMA rights): zap the
    /// page from every domain's stage-1 tree, reset its W^X state, and —
    /// on unmap — retire its fake-phys and stage-2 mappings while the
    /// frame is still resident to look up.
    fn ve_mm_fixup(&mut self, k: &mut Kernel, pid: Pid, addr: u64, len: u64, unmap: bool) {
        if len == 0 || addr.checked_add(len).is_none() {
            return;
        }
        let Some(mut proc) = self.procs.remove(&pid) else { return };
        let start = page_align_down(addr);
        let end = lz_arch::page_align_up(addr + len);
        let mut huge_touched = false;
        let mut page = start;
        while page < end {
            if k.process(pid).mm.is_huge(page) {
                // Huge regions map as 2 MiB blocks; the leaf zap covers
                // the whole block.
                huge_touched = true;
                let block_va = page & !(lz_kernel::vma::BLOCK_SIZE - 1);
                self.bbm_unmap_all(k, &mut proc, block_va);
                if unmap {
                    proc.protections.remove(&block_va);
                }
                page = block_va + lz_kernel::vma::BLOCK_SIZE;
                continue;
            }
            let pa = k.process(pid).mm.page_at(page);
            self.bbm_unmap_all(k, &mut proc, page);
            proc.wx.forget(page);
            if unmap {
                proc.protections.remove(&page);
                if let Some(pa) = pa {
                    if let Some(fake) = proc.fake.fake_of(pa) {
                        s2_unmap(&mut k.machine.mem, proc.s2_root, fake);
                        proc.s2_pending.remove(&fake);
                        proc.fake.release(pa);
                    }
                }
            }
            page += PAGE_SIZE;
        }
        if huge_touched {
            // Block translations were cached per accessed page, so a
            // page-scoped TLBI on the block base is not enough.
            if self.ablation.skip_remote_shootdown {
                k.machine.tlb.invalidate_vmid(proc.vmid);
            } else {
                k.machine.shootdown_vmid(proc.vmid);
            }
        }
        self.procs.insert(pid, proc);
    }

    /// Zap a page's PTE in every domain that maps it and invalidate the
    /// TLB on every online core (break-before-make). Skipping the
    /// remote half (the `skip_remote_shootdown` ablation) leaves stale
    /// executable aliases on other cores — the exact bug the cross-core
    /// W^X penetration test exploits.
    fn bbm_unmap_all(&self, k: &mut Kernel, proc: &mut LzProc, page: u64) {
        if let Some(mapped) = proc.residence.remove(&page) {
            for t in mapped {
                if let Some(table) = proc.tables[t].as_mut() {
                    table.unmap_page(&mut k.machine.mem, &proc.fake, page);
                }
            }
            if self.ablation.skip_remote_shootdown {
                k.machine.tlb.invalidate_va(proc.vmid, page);
            } else {
                k.machine.shootdown_va(proc.vmid, page);
            }
            k.machine.charge(k.machine.model.dsb + k.machine.model.path_cost(40));
            proc.stats.bbm_unmaps += 1;
            k.machine.record_event(EventKind::BbmUnmap { page });
        }
    }

    /// Stage-2 fault (only with `eager_stage2` off, or a real escape
    /// attempt).
    fn stage2_fault(&mut self, k: &mut Kernel, pid: Pid) -> Option<Event> {
        // Chaos injection: the stage-2 walk aborts mid-handling. Fail
        // closed — an abort that cannot be attributed to a pending lazy
        // mapping is indistinguishable from an escape attempt, so the VE
        // is killed rather than retried with partial walk state.
        if k.machine.chaos_fire(lz_machine::FaultSite::S2WalkAbort).is_some() {
            k.machine.chaos.contained();
            return self.violation(k, pid, "chaos: stage-2 walk abort");
        }
        let Some(proc) = self.procs.get_mut(&pid) else {
            return self.violation(k, pid, "stage-2 fault without LightZone state");
        };
        proc.stats.stage2_faults += 1;
        let hpfar = k.machine.sysreg(SysReg::HPFAR_EL2);
        let fake_page = (hpfar >> 4) << 12;
        k.machine.record_event(EventKind::Stage2Fault { fake_page });
        let elr2 = k.machine.sysreg(SysReg::ELR_EL2);
        if let Some((pa, perms)) = proc.s2_pending.remove(&fake_page) {
            s2_map_page(&mut k.machine.mem, proc.s2_root, fake_page, pa, perms);
            let m = &k.machine.model;
            let cost = m.gpregs_roundtrip(31) + m.path_cost(300) + m.trap_cache_pollution;
            k.machine.charge(cost);
            // Return to the faulting instruction with the trapped PSTATE.
            let spsr2 = k.machine.sysreg(SysReg::SPSR_EL2);
            let ps = PState::from_spsr(spsr2).unwrap_or(PState::reset());
            k.machine.enter(ps, elr2);
            None
        } else {
            // A stage-2 fault with nothing pending is an escape attempt
            // (e.g. forged stage-1 PTE pointing at an unmapped IPA).
            self.violation(k, pid, "stage-2 fault outside VE memory")
        }
    }

    fn violation(&mut self, k: &mut Kernel, pid: Pid, reason: &'static str) -> Option<Event> {
        // Callers inside `ve_fault` have temporarily removed the proc from
        // the map (and bumped the counters themselves); every kill path
        // funnels through here exactly once, so the journal event is
        // recorded unconditionally.
        k.machine.record_event(EventKind::Violation { reason });
        k.machine.chaos.ve_kills += 1;
        if let Some(p) = self.procs.get_mut(&pid) {
            p.stats.violations += 1;
            p.stats.last_violation = Some(reason);
        }
        Some(k.kill_current(SECURITY_KILL))
    }

    /// Snapshot the module-owned counters as report sections, aggregated
    /// across every LightZone process (exited processes keep their module
    /// state until reaped, and reaping folds their counters into the
    /// retired aggregate, so post-mortem stats survive both the kill and
    /// the reap).
    pub fn metrics_sections(&self) -> Vec<Section> {
        let mut agg = self.retired.clone();
        let (mut fake_live, mut fake_high, mut domains, mut s2_pending) = (0u64, 0u64, 0u64, 0u64);
        for p in self.procs.values() {
            agg.ve_traps += p.stats.ve_traps;
            agg.ve_syscalls += p.stats.ve_syscalls;
            agg.ve_faults += p.stats.ve_faults;
            agg.sanitized_pages += p.stats.sanitized_pages;
            agg.violations += p.stats.violations;
            agg.stage2_faults += p.stats.stage2_faults;
            agg.sanitizer_rejects += p.stats.sanitizer_rejects;
            agg.wx_to_writable += p.stats.wx_to_writable;
            agg.wx_to_exec += p.stats.wx_to_exec;
            agg.bbm_unmaps += p.stats.bbm_unmaps;
            fake_live += p.fake.len() as u64;
            fake_high += p.fake.high_water() as u64;
            domains += p.domain_count() as u64;
            s2_pending += p.s2_pending.len() as u64;
        }
        vec![
            Section::new("lz")
                .with("processes", self.procs.len() as u64)
                .with("domains", domains)
                .with("ve_traps", agg.ve_traps)
                .with("ve_syscalls", agg.ve_syscalls)
                .with("ve_faults", agg.ve_faults)
                .with("violations", agg.violations),
            Section::new("wx")
                .with("sanitized_pages", agg.sanitized_pages)
                .with("sanitizer_rejects", agg.sanitizer_rejects)
                .with("to_writable", agg.wx_to_writable)
                .with("to_exec", agg.wx_to_exec)
                .with("bbm_unmaps", agg.bbm_unmaps),
            Section::new("stage2").with("faults", agg.stage2_faults).with("pending", s2_pending),
            Section::new("fakephys").with("live", fake_live).with("high_water", fake_high),
        ]
    }

    // ------------------------------------------------------------------
    // EL0-side custom syscalls (before entering the VE).
    // ------------------------------------------------------------------

    /// Handle a custom syscall from a process still at EL0. Only
    /// `lz_enter` is meaningful there.
    pub fn handle_custom(&mut self, k: &mut Kernel, nr: u64, args: [u64; 6]) -> Option<Event> {
        match nr {
            custom::LZ_ENTER => {
                let scalable = args[0] != 0;
                let san = match args[1] {
                    0 => SanitizeMode::Ttbr,
                    1 => SanitizeMode::Pan,
                    _ => SanitizeMode::Both,
                };
                let ret = self.lz_enter(k, scalable, san);
                if ret != 0 {
                    k.resume_syscall(ret);
                }
                // On success lz_enter already resumed into the VE.
                None
            }
            custom::LZ_ALLOC | custom::LZ_FREE | custom::LZ_PROT | custom::LZ_MAP_GATE_PGT => {
                k.resume_syscall(u64::MAX); // must be inside the VE
                None
            }
            _ => Some(Event::Custom { nr, args }),
        }
    }
}

fn gate_code_perms() -> S1Perms {
    S1Perms { read: true, write: false, user_exec: false, priv_exec: true, el0: false, global: true }
}

fn tab_data_perms() -> S1Perms {
    S1Perms { read: true, write: false, user_exec: false, priv_exec: false, el0: false, global: true }
}

/// The top-level facade: a kernel plus the LightZone module, driving the
/// machine to completion.
#[derive(Debug)]
pub struct LightZone {
    pub kernel: Kernel,
    pub module: LzModule,
}

impl LightZone {
    /// Host-kernel deployment (Figure 1 left).
    pub fn new_host(platform: Platform) -> Self {
        LightZone { kernel: Kernel::new_host(platform), module: LzModule::new() }
    }

    /// Guest-kernel deployment with Lowvisor (Figure 1 right).
    pub fn new_guest(platform: Platform) -> Self {
        LightZone { kernel: Kernel::new_guest(platform), module: LzModule::new() }
    }

    /// Same, with ablation knobs.
    pub fn with_ablation(platform: Platform, guest: bool, ablation: AblationConfig) -> Self {
        let mut kernel = if guest { Kernel::new_guest(platform) } else { Kernel::new_host(platform) };
        kernel.machine.set_fastpath(ablation.fastpath);
        kernel.machine.set_jit(ablation.jit);
        let mut module = LzModule::new();
        module.ablation = ablation;
        LightZone { kernel, module }
    }

    /// Spawn a LightZone program (registers its gate entries).
    pub fn spawn(&mut self, prog: &LzProgram) -> Pid {
        let pid = self.kernel.spawn(&prog.program);
        self.module.register_entries(pid, prog.gate_entries.clone());
        pid
    }

    /// Enter (schedule) a process.
    pub fn enter_process(&mut self, pid: Pid) {
        self.kernel.enter_process(pid);
    }

    /// Costed context switch that understands LightZone processes: a VE
    /// target gets its virtual environment restored (the paper's
    /// scheduling support for kernel-mode processes, §5.1.3).
    pub fn schedule_to(&mut self, pid: Pid) {
        self.kernel.save_current();
        if self.kernel.process(pid).in_lightzone {
            let m = &self.kernel.machine.model;
            let cost = m.path_cost(400) + m.gpregs_roundtrip(31);
            self.kernel.machine.charge(cost);
            self.module.enter_ve_process(&mut self.kernel, pid);
        } else {
            // Leaving a VE for a normal process restores host HCR.
            let is_host = matches!(self.kernel.mode, lz_kernel::KernelMode::Host);
            if is_host {
                let hcr_val = lz_arch::sysreg::hcr::TGE | lz_arch::sysreg::hcr::E2H;
                self.kernel.machine.write_sysreg_charged(lz_arch::sysreg::SysReg::HCR_EL2, hcr_val);
            }
            self.kernel.schedule_to(pid);
        }
    }

    /// Run until an event the caller must see.
    pub fn run(&mut self, insn_limit: u64) -> Event {
        loop {
            match self.kernel.run(insn_limit) {
                Event::Custom { nr, args } => {
                    if let Some(ev) = self.module.handle_custom(&mut self.kernel, nr, args) {
                        return ev;
                    }
                }
                Event::Raw(exit) => {
                    let in_lz = self.kernel.current().is_some_and(|pid| self.kernel.process(pid).in_lightzone);
                    if in_lz {
                        if let Some(ev) = self.module.handle_ve_exit(&mut self.kernel, exit) {
                            return ev;
                        }
                    } else {
                        return Event::Raw(exit);
                    }
                }
                other => return other,
            }
        }
    }

    /// Dispatch one machine exit for the current process exactly as
    /// [`Self::run`] would between machine entries, without re-entering
    /// the machine. `None` means handled — the process keeps running.
    ///
    /// Epoch-style drivers (the fleet wave drain) run many VEs
    /// concurrently via [`lz_machine::Machine::run_epoch`] and commit
    /// each core's pending exit barrier-side through this method, after
    /// switching the machine to that core and pointing
    /// [`Kernel::set_current`] at its process.
    pub fn dispatch_exit(&mut self, exit: lz_machine::Exit) -> Option<Event> {
        match self.kernel.handle_exit(exit)? {
            Event::Custom { nr, args } => self.module.handle_custom(&mut self.kernel, nr, args),
            Event::Raw(exit) => {
                let in_lz = self.kernel.current().is_some_and(|pid| self.kernel.process(pid).in_lightzone);
                if in_lz {
                    self.module.handle_ve_exit(&mut self.kernel, exit)
                } else {
                    Some(Event::Raw(exit))
                }
            }
            other => Some(other),
        }
    }

    /// Run to process exit; panics on anything else (test convenience).
    ///
    /// # Panics
    ///
    /// Panics if the program hits the instruction limit or an unhandled
    /// machine exit instead of exiting.
    pub fn run_to_exit(&mut self) -> i64 {
        match self.run(50_000_000) {
            Event::Exited(code) => code,
            other => panic!("expected exit, got {other:?}"),
        }
    }

    /// Convenience accessor.
    pub fn machine(&mut self) -> &mut Machine {
        &mut self.kernel.machine
    }

    /// Reap an *exited* process end to end: kernel side first (frames,
    /// stage-1 tree, process ASID), then the module side (domain trees,
    /// stage-2 tree, VMID). Returns `false` — and frees nothing — for a
    /// pid that is missing or still running.
    pub fn reap(&mut self, pid: Pid) -> bool {
        if !self.kernel.reap(pid) {
            return false;
        }
        self.module.reap(&mut self.kernel, pid);
        true
    }

    /// Capture a warm-restart image of a parked VE (see
    /// [`LzModule::snapshot_ve`] for the preconditions).
    pub fn snapshot_ve(&self, pid: Pid) -> Option<VeSnapshot> {
        self.module.snapshot_ve(&self.kernel, pid)
    }

    /// Warm-restart a VE from a [`VeSnapshot`]: spawn a *fresh* process
    /// from `prog` (which must be the program the snapshotted VE was
    /// spawned from), push it through the normal `lz_enter`/`lz_alloc`
    /// paths — new pid, new generation-tagged VMID, fresh table ASIDs,
    /// with the invalidate-at-reuse shoot-down on every recycled grant —
    /// then replay the snapshot's guest-visible state: domain layout,
    /// gate designations, protection policy, data pages, and finally the
    /// saved registers and current domain. The restored VE is parked;
    /// run it with [`Self::schedule_to`].
    ///
    /// Returns `None` fail-closed — with nothing half-built left behind —
    /// if the snapshot's version or digest does not verify, `lz_enter`
    /// is denied (e.g. VMID exhaustion), or the rebuild cannot reproduce
    /// the snapshot's layout.
    pub fn restore_ve(&mut self, prog: &LzProgram, snap: &VeSnapshot) -> Option<Pid> {
        if !snap.verify() {
            self.module.snapshot_rejects += 1;
            return None;
        }
        let pid = self.spawn(prog);
        self.kernel.set_current(pid);
        if self.module.lz_enter(&mut self.kernel, snap.scalable, snap.san) != 0 {
            self.module.snapshot_rejects += 1;
            self.kernel.kill_current(SECURITY_KILL);
            self.reap(pid);
            return None;
        }
        // `lz_enter` entered the machine into the fresh VE; park it so
        // the thread context (including the VE TTBR0) is canonical.
        self.kernel.save_current();
        let mut ok = self.module.restore_ve_state(&mut self.kernel, pid, snap);
        if ok {
            let (mm, machine) = self.kernel.mm_and_machine(pid);
            for (va, bytes) in &snap.pages {
                let pa = mm
                    .page_at(*va)
                    .or_else(|| mm.fault_in(&mut machine.mem, *va, false, false))
                    .or_else(|| mm.fault_in(&mut machine.mem, *va, true, false));
                match pa {
                    Some(pa) => {
                        machine.mem.write_bytes(pa, bytes);
                    }
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
        }
        let ttbr0 = self
            .module
            .procs
            .get(&pid)
            .and_then(|p| p.tables.get(snap.cur_domain))
            .and_then(|t| t.as_ref())
            .map(|t| t.ttbr0());
        match (ok, ttbr0) {
            (true, Some(ttbr0)) => {
                let ps = PState::from_spsr(snap.spsr).unwrap_or(PState::reset());
                let ctx = self.kernel.process_mut(pid).ctx_mut();
                ctx.x = snap.x;
                ctx.sp = snap.sp;
                ctx.pc = snap.pc;
                ctx.pstate = ps;
                ctx.ttbr0 = ttbr0;
                self.kernel.clear_current();
                self.module.restores += 1;
                Some(pid)
            }
            _ => {
                self.module.snapshot_rejects += 1;
                self.kernel.kill_current(SECURITY_KILL);
                self.reap(pid);
                None
            }
        }
    }

    /// Fleet-scale churn counters: live domains, ID-recycling traffic,
    /// and the rollover shoot-downs that keep recycling sound. Aggregated
    /// across the kernel's allocators (VMIDs, process ASIDs) and the
    /// module's per-VE table-ASID allocators.
    pub fn fleet_section(&self) -> Section {
        Section::new("fleet")
            .with("domains_live", self.module.domains_live())
            .with("vmid_live", self.kernel.vmids.live())
            .with("vmid_recycles", self.kernel.vmids.recycles())
            .with("vmid_rollovers", self.kernel.vmids.rollovers())
            .with("asid_recycles", self.kernel.asids.recycles() + self.module.asid_recycles())
            .with("rollover_shootdowns", self.kernel.stats.rollover_shootdowns + self.module.rollover_shootdowns)
            .with("ve_reaps", self.module.reaps())
            .with("ve_restores", self.module.restores)
            .with("snapshot_rejects", self.module.snapshot_rejects)
    }

    /// The full observability registry: machine sections (TLB, icache,
    /// walk, gate, traps, cpu) plus module sections (lz, wx, stage2,
    /// fakephys) plus the kernel and fleet sections. `repro stats`
    /// serialises this.
    pub fn metrics_report(&self) -> Report {
        let mut report = Report::default();
        for s in self.kernel.machine.metrics_sections() {
            report.push(s);
        }
        for s in self.module.metrics_sections() {
            report.push(s);
        }
        report.push(self.kernel.metrics_section());
        report.push(self.fleet_section());
        report
    }
}
