//! Fake-physical-address randomization layer (paper §5.1.2).
//!
//! A LightZone process using TTBR controls its stage-1 translation and
//! could read the physical addresses in its own PTEs, easing Rowhammer-
//! style attacks on kernel rows. LightZone therefore interposes a
//! one-to-one mapping between *fake* physical pages (sequentially
//! allocated: the first faulted page is `0x1000`, the second `0x2000`, …)
//! and real frames: stage-1 PTEs hold fake addresses, and stage-2 maps
//! fake → real. The paper implements the map as a hierarchical table;
//! a hash map is its moral equivalent here.

use lz_arch::{PAGE_SHIFT, PAGE_SIZE};
use std::collections::HashMap;

const BLOCK_PAGES: u64 = 512;
const BLOCK_SIZE: u64 = BLOCK_PAGES << PAGE_SHIFT;

/// One-to-one fake ↔ real page map with sequential fake allocation.
#[derive(Debug, Default)]
pub struct FakePhys {
    next_fake: u64,
    to_real: HashMap<u64, u64>,
    to_fake: HashMap<u64, u64>,
    /// Real base → fake base for regions assigned as whole 2 MiB blocks.
    /// Page-wise `assign` hits on the base frame must not masquerade as
    /// block assignments (the fake run would be neither aligned nor
    /// contiguous), so block-ness is tracked explicitly.
    blocks: HashMap<u64, u64>,
    /// Most mappings ever live at once (observability).
    high_water: usize,
    /// When false (ablation), `assign` returns the real address — the
    /// "intuitive" identity scheme the paper rejects.
    randomize: bool,
}

impl FakePhys {
    /// A randomizing map (the paper's design).
    pub fn new() -> Self {
        FakePhys {
            next_fake: 1,
            to_real: HashMap::new(),
            to_fake: HashMap::new(),
            blocks: HashMap::new(),
            high_water: 0,
            randomize: true,
        }
    }

    /// Identity map (ablation: the "intuitive" translation of §5.1.2).
    pub fn identity() -> Self {
        FakePhys { randomize: false, ..FakePhys::new() }
    }

    fn note_high_water(&mut self) {
        self.high_water = self.high_water.max(self.to_real.len());
    }

    /// Assign (or return the existing) fake page for a real frame.
    pub fn assign(&mut self, real_pa: u64) -> u64 {
        debug_assert!(real_pa & (PAGE_SIZE - 1) == 0);
        if !self.randomize {
            return real_pa;
        }
        if let Some(&f) = self.to_fake.get(&real_pa) {
            return f;
        }
        let fake = self.next_fake << PAGE_SHIFT;
        self.next_fake += 1;
        self.to_real.insert(fake, real_pa);
        self.to_fake.insert(real_pa, fake);
        self.note_high_water();
        fake
    }

    /// Assign a 2 MiB-aligned run of 512 sequential fake pages to a
    /// contiguous 2 MiB real region (for block mappings). Returns the
    /// fake base; idempotent for a base already assigned *as a block*.
    ///
    /// A prior page-wise [`FakePhys::assign`] of frames inside the region
    /// does not count: those lone fake pages are unwound and the whole
    /// region gets a fresh aligned, contiguous run (a block PTE needs all
    /// 512 fake pages to translate).
    pub fn assign_block(&mut self, real_base: u64) -> u64 {
        debug_assert!(real_base & (BLOCK_SIZE - 1) == 0, "real base must be 2 MiB aligned");
        if !self.randomize {
            return real_base;
        }
        if let Some(&f) = self.blocks.get(&real_base) {
            return f;
        }
        // Unwind page-wise assignments overlapping the region before
        // allocating the contiguous run.
        for i in 0..BLOCK_PAGES {
            let real = real_base + (i << PAGE_SHIFT);
            if let Some(fake) = self.to_fake.remove(&real) {
                self.to_real.remove(&fake);
            }
        }
        // Align the fake cursor to a block boundary.
        self.next_fake = self.next_fake.div_ceil(BLOCK_PAGES) * BLOCK_PAGES;
        let fake_base = self.next_fake << PAGE_SHIFT;
        for i in 0..BLOCK_PAGES {
            let fake = fake_base + (i << PAGE_SHIFT);
            let real = real_base + (i << PAGE_SHIFT);
            self.to_real.insert(fake, real);
            self.to_fake.insert(real, fake);
        }
        self.next_fake += BLOCK_PAGES;
        self.blocks.insert(real_base, fake_base);
        self.note_high_water();
        fake_base
    }

    /// Resolve a fake page back to its real frame.
    pub fn real_of(&self, fake_pa: u64) -> Option<u64> {
        if !self.randomize {
            return Some(fake_pa);
        }
        self.to_real.get(&(fake_pa & !(PAGE_SIZE - 1))).map(|r| r | (fake_pa & (PAGE_SIZE - 1)))
    }

    /// The fake page already assigned to a real frame, if any.
    pub fn fake_of(&self, real_pa: u64) -> Option<u64> {
        if !self.randomize {
            return Some(real_pa);
        }
        self.to_fake.get(&(real_pa & !(PAGE_SIZE - 1))).copied()
    }

    /// Drop the mapping for a real frame (page freed). Releasing any
    /// frame of a block-assigned region retires the *whole* block: block
    /// PTEs translate through the full 512-page run, so one stale hole
    /// would leave the rest of the run dangling.
    pub fn release(&mut self, real_pa: u64) {
        let page = real_pa & !(PAGE_SIZE - 1);
        let block_base = page & !(BLOCK_SIZE - 1);
        if self.blocks.remove(&block_base).is_some() {
            for i in 0..BLOCK_PAGES {
                if let Some(fake) = self.to_fake.remove(&(block_base + (i << PAGE_SHIFT))) {
                    self.to_real.remove(&fake);
                }
            }
            return;
        }
        if let Some(fake) = self.to_fake.remove(&page) {
            self.to_real.remove(&fake);
        }
    }

    /// Whether `real_base` is currently assigned as a whole block.
    pub fn is_block(&self, real_base: u64) -> bool {
        self.blocks.contains_key(&(real_base & !(BLOCK_SIZE - 1)))
    }

    /// Number of live mappings.
    pub fn len(&self) -> usize {
        self.to_real.len()
    }

    /// Host-side invariant check (chaos soak): the fake→real and
    /// real→fake maps are exact inverses — every fake page resolves to
    /// a real page that maps back to it and vice versa, so no two live
    /// fake addresses can ever name the same real frame.
    pub fn is_bijective(&self) -> bool {
        self.to_real.len() == self.to_fake.len()
            && self.to_real.iter().all(|(f, r)| self.to_fake.get(r) == Some(f))
            && self.to_fake.iter().all(|(r, f)| self.to_real.get(f) == Some(r))
    }

    /// Most mappings ever live at once.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// True when no mappings exist.
    pub fn is_empty(&self) -> bool {
        self.to_real.is_empty()
    }

    /// Whether this map actually randomizes.
    pub fn randomizes(&self) -> bool {
        self.randomize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_fake_addresses() {
        // The paper's example: first two faulted pages get fake addresses
        // 0x1000 and 0x2000 regardless of their real frames.
        let mut f = FakePhys::new();
        assert_eq!(f.assign(0x470e_c000), 0x1000);
        assert_eq!(f.assign(0x4880_0000), 0x2000);
    }

    #[test]
    fn assign_is_idempotent() {
        let mut f = FakePhys::new();
        let a = f.assign(0x9_d000);
        assert_eq!(f.assign(0x9_d000), a);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn roundtrip_both_ways() {
        let mut f = FakePhys::new();
        let fake = f.assign(0xabc_d000);
        assert_eq!(f.real_of(fake), Some(0xabc_d000));
        assert_eq!(f.real_of(fake + 0x123), Some(0xabc_d123));
        assert_eq!(f.fake_of(0xabc_d000), Some(fake));
    }

    #[test]
    fn unknown_fake_is_none() {
        let f = FakePhys::new();
        assert_eq!(f.real_of(0x5000), None);
    }

    #[test]
    fn release_forgets() {
        let mut f = FakePhys::new();
        let fake = f.assign(0x77_7000);
        f.release(0x77_7000);
        assert_eq!(f.real_of(fake), None);
        assert!(f.is_empty());
    }

    #[test]
    fn fake_addresses_hide_real_layout() {
        // Two adjacent real frames get adjacent fakes, but fakes reveal
        // nothing about the absolute position.
        let mut f = FakePhys::new();
        let a = f.assign(0x7000_0000);
        let b = f.assign(0x1234_5000);
        assert_eq!(b - a, PAGE_SIZE);
        assert_ne!(a, 0x7000_0000);
    }

    #[test]
    fn identity_mode_passes_through() {
        let mut f = FakePhys::identity();
        assert_eq!(f.assign(0x4242_0000), 0x4242_0000);
        assert_eq!(f.real_of(0x4242_0000), Some(0x4242_0000));
        assert!(!f.randomizes());
    }

    #[test]
    fn block_assignment_is_aligned_and_contiguous() {
        let mut f = FakePhys::new();
        f.assign(0x9_9000); // nudge the cursor off a block boundary
        let base = f.assign_block(0x4000_0000);
        assert_eq!(base & (BLOCK_SIZE - 1), 0, "fake base block-aligned");
        for i in 0..BLOCK_PAGES {
            assert_eq!(f.real_of(base + (i << PAGE_SHIFT)), Some(0x4000_0000 + (i << PAGE_SHIFT)));
        }
        assert!(f.is_block(0x4000_0000));
    }

    #[test]
    fn assign_block_is_idempotent_for_real_blocks() {
        let mut f = FakePhys::new();
        let a = f.assign_block(0x4000_0000);
        assert_eq!(f.assign_block(0x4000_0000), a);
        assert_eq!(f.len(), BLOCK_PAGES as usize);
    }

    #[test]
    fn pagewise_base_assignment_does_not_fake_a_block() {
        // The old code treated any `to_fake` hit on the base frame as "the
        // block exists" and returned a lone, unaligned fake page.
        let mut f = FakePhys::new();
        let lone = f.assign(0x4000_0000); // page-wise hit on the block base
        assert_ne!(lone & (BLOCK_SIZE - 1), 0, "precondition: lone fake is unaligned");
        let base = f.assign_block(0x4000_0000);
        assert_ne!(base, lone, "block base must not be the lone page fake");
        assert_eq!(base & (BLOCK_SIZE - 1), 0);
        // All 512 pages translate, including the re-assigned base frame.
        for i in 0..BLOCK_PAGES {
            assert_eq!(f.real_of(base + (i << PAGE_SHIFT)), Some(0x4000_0000 + (i << PAGE_SHIFT)));
        }
        // The unwound lone fake no longer resolves.
        assert_eq!(f.real_of(lone), None);
        assert_eq!(f.fake_of(0x4000_0000), Some(base));
    }

    #[test]
    fn interior_pagewise_assignments_are_unwound() {
        let mut f = FakePhys::new();
        let inner = f.assign(0x4000_0000 + 7 * PAGE_SIZE);
        let other = f.assign(0x9_0000); // unrelated frame must survive
        let base = f.assign_block(0x4000_0000);
        assert_eq!(f.real_of(inner), None, "stale interior fake unwound");
        assert_eq!(f.fake_of(0x4000_0000 + 7 * PAGE_SIZE), Some(base + 7 * PAGE_SIZE));
        assert_eq!(f.real_of(other), Some(0x9_0000));
        assert_eq!(f.len(), BLOCK_PAGES as usize + 1);
    }

    #[test]
    fn release_of_block_frame_retires_whole_block() {
        let mut f = FakePhys::new();
        let base = f.assign_block(0x4000_0000);
        f.release(0x4000_0000 + 13 * PAGE_SIZE); // any interior frame
        assert!(f.is_empty(), "whole block retired");
        assert!(!f.is_block(0x4000_0000));
        assert_eq!(f.real_of(base), None);
        // The region can be re-assigned cleanly afterwards.
        let again = f.assign_block(0x4000_0000);
        assert_eq!(again & (BLOCK_SIZE - 1), 0);
        assert_eq!(f.len(), BLOCK_PAGES as usize);
    }

    #[test]
    fn release_pagewise_leaves_other_pages() {
        let mut f = FakePhys::new();
        // A page-wise frame that happens to be 2 MiB aligned must release
        // alone (it is not a block).
        let a = f.assign(0x4000_0000);
        let b = f.assign(0x4000_0000 + PAGE_SIZE);
        f.release(0x4000_0000);
        assert_eq!(f.real_of(a), None);
        assert_eq!(f.real_of(b), Some(0x4000_0000 + PAGE_SIZE));
    }

    #[test]
    fn high_water_tracks_peak_not_current() {
        let mut f = FakePhys::new();
        f.assign(0x1_0000);
        f.assign(0x2_0000);
        f.release(0x1_0000);
        assert_eq!(f.len(), 1);
        assert_eq!(f.high_water(), 2);
    }
}
