//! Fake-physical-address randomization layer (paper §5.1.2).
//!
//! A LightZone process using TTBR controls its stage-1 translation and
//! could read the physical addresses in its own PTEs, easing Rowhammer-
//! style attacks on kernel rows. LightZone therefore interposes a
//! one-to-one mapping between *fake* physical pages (sequentially
//! allocated: the first faulted page is `0x1000`, the second `0x2000`, …)
//! and real frames: stage-1 PTEs hold fake addresses, and stage-2 maps
//! fake → real. The paper implements the map as a hierarchical table;
//! a hash map is its moral equivalent here.

use lz_arch::{PAGE_SHIFT, PAGE_SIZE};
use std::collections::HashMap;

/// One-to-one fake ↔ real page map with sequential fake allocation.
#[derive(Debug, Default)]
pub struct FakePhys {
    next_fake: u64,
    to_real: HashMap<u64, u64>,
    to_fake: HashMap<u64, u64>,
    /// When false (ablation), `assign` returns the real address — the
    /// "intuitive" identity scheme the paper rejects.
    randomize: bool,
}

impl FakePhys {
    /// A randomizing map (the paper's design).
    pub fn new() -> Self {
        FakePhys { next_fake: 1, to_real: HashMap::new(), to_fake: HashMap::new(), randomize: true }
    }

    /// Identity map (ablation: the "intuitive" translation of §5.1.2).
    pub fn identity() -> Self {
        FakePhys { next_fake: 1, to_real: HashMap::new(), to_fake: HashMap::new(), randomize: false }
    }

    /// Assign (or return the existing) fake page for a real frame.
    pub fn assign(&mut self, real_pa: u64) -> u64 {
        debug_assert!(real_pa & (PAGE_SIZE - 1) == 0);
        if !self.randomize {
            return real_pa;
        }
        if let Some(&f) = self.to_fake.get(&real_pa) {
            return f;
        }
        let fake = self.next_fake << PAGE_SHIFT;
        self.next_fake += 1;
        self.to_real.insert(fake, real_pa);
        self.to_fake.insert(real_pa, fake);
        fake
    }

    /// Assign a 2 MiB-aligned run of 512 sequential fake pages to a
    /// contiguous 2 MiB real region (for block mappings). Returns the
    /// fake base; idempotent for an already-assigned base.
    pub fn assign_block(&mut self, real_base: u64) -> u64 {
        const BLOCK_PAGES: u64 = 512;
        debug_assert!(real_base & ((BLOCK_PAGES << PAGE_SHIFT) - 1) == 0, "real base must be 2 MiB aligned");
        if !self.randomize {
            return real_base;
        }
        if let Some(&f) = self.to_fake.get(&real_base) {
            return f;
        }
        // Align the fake cursor to a block boundary.
        self.next_fake = self.next_fake.div_ceil(BLOCK_PAGES) * BLOCK_PAGES;
        let fake_base = self.next_fake << PAGE_SHIFT;
        for i in 0..BLOCK_PAGES {
            let fake = fake_base + (i << PAGE_SHIFT);
            let real = real_base + (i << PAGE_SHIFT);
            self.to_real.insert(fake, real);
            self.to_fake.insert(real, fake);
        }
        self.next_fake += BLOCK_PAGES;
        fake_base
    }

    /// Resolve a fake page back to its real frame.
    pub fn real_of(&self, fake_pa: u64) -> Option<u64> {
        if !self.randomize {
            return Some(fake_pa);
        }
        self.to_real.get(&(fake_pa & !(PAGE_SIZE - 1))).map(|r| r | (fake_pa & (PAGE_SIZE - 1)))
    }

    /// The fake page already assigned to a real frame, if any.
    pub fn fake_of(&self, real_pa: u64) -> Option<u64> {
        if !self.randomize {
            return Some(real_pa);
        }
        self.to_fake.get(&(real_pa & !(PAGE_SIZE - 1))).copied()
    }

    /// Drop the mapping for a real frame (page freed).
    pub fn release(&mut self, real_pa: u64) {
        if let Some(fake) = self.to_fake.remove(&(real_pa & !(PAGE_SIZE - 1))) {
            self.to_real.remove(&fake);
        }
    }

    /// Number of live mappings.
    pub fn len(&self) -> usize {
        self.to_real.len()
    }

    /// True when no mappings exist.
    pub fn is_empty(&self) -> bool {
        self.to_real.is_empty()
    }

    /// Whether this map actually randomizes.
    pub fn randomizes(&self) -> bool {
        self.randomize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_fake_addresses() {
        // The paper's example: first two faulted pages get fake addresses
        // 0x1000 and 0x2000 regardless of their real frames.
        let mut f = FakePhys::new();
        assert_eq!(f.assign(0x470e_c000), 0x1000);
        assert_eq!(f.assign(0x4880_0000), 0x2000);
    }

    #[test]
    fn assign_is_idempotent() {
        let mut f = FakePhys::new();
        let a = f.assign(0x9_d000);
        assert_eq!(f.assign(0x9_d000), a);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn roundtrip_both_ways() {
        let mut f = FakePhys::new();
        let fake = f.assign(0xabc_d000);
        assert_eq!(f.real_of(fake), Some(0xabc_d000));
        assert_eq!(f.real_of(fake + 0x123), Some(0xabc_d123));
        assert_eq!(f.fake_of(0xabc_d000), Some(fake));
    }

    #[test]
    fn unknown_fake_is_none() {
        let f = FakePhys::new();
        assert_eq!(f.real_of(0x5000), None);
    }

    #[test]
    fn release_forgets() {
        let mut f = FakePhys::new();
        let fake = f.assign(0x77_7000);
        f.release(0x77_7000);
        assert_eq!(f.real_of(fake), None);
        assert!(f.is_empty());
    }

    #[test]
    fn fake_addresses_hide_real_layout() {
        // Two adjacent real frames get adjacent fakes, but fakes reveal
        // nothing about the absolute position.
        let mut f = FakePhys::new();
        let a = f.assign(0x7000_0000);
        let b = f.assign(0x1234_5000);
        assert_eq!(b - a, PAGE_SIZE);
        assert_ne!(a, 0x7000_0000);
    }

    #[test]
    fn identity_mode_passes_through() {
        let mut f = FakePhys::identity();
        assert_eq!(f.assign(0x4242_0000), 0x4242_0000);
        assert_eq!(f.real_of(0x4242_0000), Some(0x4242_0000));
        assert!(!f.randomizes());
    }
}
