//! LightZone: lightweight hardware-assisted in-process isolation for
//! ARM64 — a reproduction of the MIDDLEWARE '24 paper on a simulated
//! ARMv8 machine.
//!
//! LightZone runs a process in **kernel mode (EL1) of its own virtual
//! environment** so the process can use privileged memory-isolation
//! features directly, without trapping to the OS kernel on every domain
//! switch:
//!
//! * **TTBR0-based scalable isolation** — mutually distrusting parts of
//!   the process live in separate stage-1 page tables (up to 2^16); a
//!   domain switch is a `TTBR0_EL1` write through a [`gate`] that
//!   validates both the new table and the return address;
//! * **PAN-based two-domain isolation** — protected pages are marked as
//!   *user* pages; `MSR PAN, #imm` (a handful of cycles) opens and closes
//!   access.
//!
//! Security rests on the [`sanitizer`] (no sensitive instructions in
//! executable pages, W^X + break-before-make against TOCTTOU), the
//! TTBR1-mapped call gate (code the process cannot remap), stage-2
//! paging, and the fake-physical randomization layer ([`fakephys`]).
//!
//! The [`module`] is the kernel-module equivalent (VE lifecycle, trap
//! forwarding, Table 4's optimized trap paths); [`lowvisor`] adds the
//! nested-virtualization support for LightZone processes inside guest
//! VMs; [`api`] is the user-space API library (Table 2) for programs
//! built with [`lz_arch::asm::Asm`].
//!
//! # Quickstart
//!
//! ```
//! use lightzone::api::{LzAsm, LzProgramBuilder};
//! use lightzone::LightZone;
//! use lz_arch::Platform;
//!
//! // A program that enters LightZone and exits with 7.
//! let mut b = LzProgramBuilder::new(0x40_0000);
//! b.asm.lz_enter(true, lightzone::api::SAN_BOTH);
//! b.asm.movz(0, 7, 0);
//! b.asm.movz(8, lz_kernel::Sysno::Exit.nr() as u16, 0);
//! b.asm.svc(0);
//! let prog = b.build();
//!
//! let mut lz = LightZone::new_host(Platform::CortexA55);
//! let pid = lz.spawn(&prog);
//! lz.enter_process(pid);
//! assert_eq!(lz.run_to_exit(), 7);
//! ```

pub mod api;
pub mod fakephys;
pub mod gate;
pub mod lowvisor;
pub mod module;
pub mod pgt;
pub mod sanitizer;

pub use api::{LzProgram, LzProgramBuilder};
pub use module::{AblationConfig, Defense, LightZone, LzModule, ALL_DEFENSES};

/// Exit code used when LightZone terminates a process for an isolation
/// violation ("we detect unauthorized access to protected memory domains
/// and terminate the compromised process", §4.2).
pub const SECURITY_KILL: i64 = -9;

/// Maximum number of isolation domains (stage-1 page tables) per process:
/// 2^16, bounded by the ASID width (paper §4.1, Table 1).
pub const MAX_DOMAINS: usize = 1 << 16;
