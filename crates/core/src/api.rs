//! The user-space API library (paper Table 2, Listing 1).
//!
//! Programs in this reproduction are assembled with
//! [`lz_arch::asm::Asm`]; this module adds the LightZone calls on top:
//! syscall wrappers for `lz_enter`/`lz_alloc`/`lz_free`/`lz_prot`/
//! `lz_map_gate_pgt`, the `lz_switch_to_ttbr_gate` macro (which records
//! the statically-designated ENTRY address in the program image, exactly
//! like the compile-time allocation of §6.2), and `set_pan`.

use crate::gate::layout;
use crate::pgt::perm;
use lz_arch::asm::Asm;
use lz_kernel::syscall::custom;
use lz_kernel::{Program, Sysno};

/// `insn_san` argument values for [`LzAsm::lz_enter`].
pub const SAN_TTBR: u64 = 0;
pub const SAN_PAN: u64 = 1;
pub const SAN_BOTH: u64 = 2;

/// A LightZone program: the machine-code image plus the gate ENTRY
/// metadata the loader hands the kernel module.
#[derive(Debug, Clone)]
pub struct LzProgram {
    pub program: Program,
    /// `(gate id, statically designated ENTRY va)` pairs.
    pub gate_entries: Vec<(u16, u64)>,
}

/// Builder wrapping an assembler and collecting gate entries.
#[derive(Debug)]
pub struct LzProgramBuilder {
    pub asm: Asm,
    entries: Vec<(u16, u64)>,
    segments: Vec<(u64, Vec<u8>, lz_kernel::VmProt)>,
    anon_segments: Vec<(u64, u64, lz_kernel::VmProt)>,
    huge_segments: Vec<(u64, u64, lz_kernel::VmProt)>,
}

impl LzProgramBuilder {
    /// Start a program at `entry`.
    pub fn new(entry: u64) -> Self {
        LzProgramBuilder {
            asm: Asm::new(entry),
            entries: Vec::new(),
            segments: Vec::new(),
            anon_segments: Vec::new(),
            huge_segments: Vec::new(),
        }
    }

    /// Emit `lz_switch_to_ttbr_gate(gate)`: loads the gate address and
    /// `blr`s to it, making the following instruction the gate's ENTRY
    /// (registered in the program metadata).
    ///
    /// # Panics
    ///
    /// Panics if `gate` was already used at a different call site: each
    /// legitimate entry needs its own gate ("we assign a unique call
    /// gate to each entry", paper §6.2). Map several gates to the same
    /// page table instead.
    pub fn lz_switch_to_ttbr_gate(&mut self, gate: u16) {
        self.asm.mov_imm64(17, layout::gate_va(gate));
        self.asm.blr(17);
        let entry = self.asm.here();
        if let Some((_, prev)) = self.entries.iter().find(|(g, _)| *g == gate) {
            assert_eq!(
                *prev, entry,
                "gate {gate} already bound to a different entry; use a fresh gate id per call site"
            );
        }
        self.entries.push((gate, entry));
    }

    /// Register a gate ENTRY at an arbitrary address — used when many
    /// gates share one return site (e.g. a measurement loop calling
    /// different gates through a function pointer table; the paper allows
    /// several gates to carry the same ENTRY value, §6.2).
    pub fn register_gate_entry(&mut self, gate: u16, entry: u64) -> &mut Self {
        self.entries.push((gate, entry));
        self
    }

    /// The current end-of-code address (alias of `asm.here()` for
    /// callers holding the builder).
    pub fn here(&self) -> u64 {
        self.asm.here()
    }

    /// Add an extra data segment.
    pub fn with_segment(&mut self, va: u64, data: Vec<u8>, prot: lz_kernel::VmProt) -> &mut Self {
        self.segments.push((va, data, prot));
        self
    }

    /// Add an anonymous zero-filled segment (faults in lazily).
    pub fn with_anon_segment(&mut self, va: u64, len: u64, prot: lz_kernel::VmProt) -> &mut Self {
        self.anon_segments.push((va, len, prot));
        self
    }

    /// Add a huge-page-backed anonymous segment (2 MiB aligned: the
    /// paper's NVM buffers, §9.3).
    pub fn with_huge_segment(&mut self, va: u64, len: u64, prot: lz_kernel::VmProt) -> &mut Self {
        self.huge_segments.push((va, len, prot));
        self
    }

    /// Finalize into an [`LzProgram`].
    pub fn build(self) -> LzProgram {
        let entry = self.asm.base();
        let mut program = Program::from_code(entry, self.asm.bytes());
        for (va, data, prot) in self.segments {
            program = program.with_segment(va, data, prot);
        }
        for (va, len, prot) in self.anon_segments {
            program = program.with_anon_segment(va, len, prot);
        }
        for (va, len, prot) in self.huge_segments {
            program = program.with_huge_segment(va, len, prot);
        }
        LzProgram { program, gate_entries: self.entries }
    }
}

/// Syscall wrappers emitted into program code. All clobber x0–x8.
pub trait LzAsm {
    /// `svc` with the number in x8 and up to four arguments (x0–x3)
    /// loaded from immediates.
    fn syscall_imm(&mut self, nr: u64, args: &[u64]) -> &mut Self;

    /// `lz_enter(allow_scalable, insn_san)` — one-way ticket into the VE.
    fn lz_enter(&mut self, allow_scalable: bool, insn_san: u64) -> &mut Self;

    /// `lz_alloc()` — new stage-1 page table; pgt id returned in x0.
    fn lz_alloc(&mut self) -> &mut Self;

    /// `lz_free(pgt)` with pgt from an immediate.
    fn lz_free_imm(&mut self, pgt: u64) -> &mut Self;

    /// `lz_prot(addr, len, pgt, perm)` from immediates.
    fn lz_prot_imm(&mut self, addr: u64, len: u64, pgt: u64, perm: u64) -> &mut Self;

    /// `lz_prot` with the pgt id taken from a register.
    fn lz_prot_reg(&mut self, addr: u64, len: u64, pgt_reg: u8, perm: u64) -> &mut Self;

    /// `lz_map_gate_pgt(pgt, gate)` from immediates.
    fn lz_map_gate_pgt_imm(&mut self, pgt: u64, gate: u64) -> &mut Self;

    /// `lz_map_gate_pgt` with the pgt id taken from a register.
    fn lz_map_gate_pgt_reg(&mut self, pgt_reg: u8, gate: u64) -> &mut Self;

    /// `set_pan(imm)` — the PAN-based domain switch.
    fn set_pan(&mut self, value: u8) -> &mut Self;

    /// `exit(code)`.
    fn exit_imm(&mut self, code: u64) -> &mut Self;
}

impl LzAsm for Asm {
    fn syscall_imm(&mut self, nr: u64, args: &[u64]) -> &mut Self {
        assert!(args.len() <= 6);
        for (i, &v) in args.iter().enumerate() {
            self.mov_imm64(i as u8, v);
        }
        self.mov_imm64(8, nr);
        self.svc(0);
        self
    }

    fn lz_enter(&mut self, allow_scalable: bool, insn_san: u64) -> &mut Self {
        self.syscall_imm(custom::LZ_ENTER, &[allow_scalable as u64, insn_san])
    }

    fn lz_alloc(&mut self) -> &mut Self {
        self.syscall_imm(custom::LZ_ALLOC, &[])
    }

    fn lz_free_imm(&mut self, pgt: u64) -> &mut Self {
        self.syscall_imm(custom::LZ_FREE, &[pgt])
    }

    fn lz_prot_imm(&mut self, addr: u64, len: u64, pgt: u64, perm: u64) -> &mut Self {
        self.syscall_imm(custom::LZ_PROT, &[addr, len, pgt, perm])
    }

    fn lz_prot_reg(&mut self, addr: u64, len: u64, pgt_reg: u8, perm: u64) -> &mut Self {
        self.mov_reg(2, pgt_reg);
        self.mov_imm64(0, addr);
        self.mov_imm64(1, len);
        self.mov_imm64(3, perm);
        self.mov_imm64(8, custom::LZ_PROT);
        self.svc(0);
        self
    }

    fn lz_map_gate_pgt_imm(&mut self, pgt: u64, gate: u64) -> &mut Self {
        self.syscall_imm(custom::LZ_MAP_GATE_PGT, &[pgt, gate])
    }

    fn lz_map_gate_pgt_reg(&mut self, pgt_reg: u8, gate: u64) -> &mut Self {
        self.mov_reg(0, pgt_reg);
        self.mov_imm64(1, gate);
        self.mov_imm64(8, custom::LZ_MAP_GATE_PGT);
        self.svc(0);
        self
    }

    fn set_pan(&mut self, value: u8) -> &mut Self {
        self.msr_pan(value)
    }

    fn exit_imm(&mut self, code: u64) -> &mut Self {
        self.mov_imm64(0, code);
        self.mov_imm64(8, Sysno::Exit.nr());
        self.svc(0);
        self
    }
}

/// Re-export of the `lz_prot` permission bits for program authors.
pub use crate::pgt::perm::{EXEC, READ, USER, WRITE};

/// `READ | WRITE` convenience.
pub const RW: u64 = perm::READ | perm::WRITE;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_records_gate_entries() {
        let mut b = LzProgramBuilder::new(0x40_0000);
        b.asm.nop();
        b.lz_switch_to_ttbr_gate(3);
        let after_first = b.asm.here();
        b.asm.nop();
        b.lz_switch_to_ttbr_gate(7);
        let prog = b.build();
        assert_eq!(prog.gate_entries.len(), 2);
        assert_eq!(prog.gate_entries[0], (3, after_first));
        assert_eq!(prog.program.entry, 0x40_0000);
    }

    #[test]
    fn switch_macro_ends_with_blr() {
        let mut b = LzProgramBuilder::new(0x40_0000);
        b.lz_switch_to_ttbr_gate(0);
        let entry = b.entries[0].1;
        let words = b.asm.words();
        // The word immediately before the entry is the blr.
        let blr_idx = ((entry - 0x40_0000) / 4 - 1) as usize;
        assert_eq!(lz_arch::insn::Insn::decode(words[blr_idx]), lz_arch::insn::Insn::Blr { rn: 17 });
    }

    #[test]
    fn syscall_imm_loads_number() {
        let mut a = Asm::new(0);
        a.syscall_imm(custom::LZ_ALLOC, &[1, 2]);
        let words = a.words();
        assert!(matches!(lz_arch::insn::Insn::decode(*words.last().unwrap()), lz_arch::insn::Insn::Svc { .. }));
    }
}
