//! The TTBR1-mapped secure call gate (paper §6.2, Figure 2).
//!
//! Each legitimate domain-entry point gets its **own** gate stub, emitted
//! by the trusted kernel module into pages mapped only through `TTBR1_EL1`
//! — which the sanitizer guarantees the process can never retarget, so
//! gate code integrity survives arbitrary `TTBR0` values.
//!
//! A switch has two phases:
//!
//! * **switch ①** — look up `GateTab[id]` for the target page-table index
//!   and `TTBRTab[pgtid]` for the new `TTBR0_EL1` value, write it, `isb`;
//! * **check ②** — re-query both read-only tables and compare against the
//!   live `x30` (the return address must equal the pre-designated ENTRY)
//!   and the live `TTBR0_EL1`; any mismatch executes `brk #0xdd`, which
//!   the module treats as an isolation violation and kills the process.
//!
//! Because no indirect jump separates the `msr` from the `ret`, phase ②
//! is guaranteed to run once `TTBR0` has been changed — jumping into the
//! middle of the gate with attacker-controlled registers either leaves
//! `TTBR0` untouched or fails the check.

use lz_arch::asm::Asm;
use lz_arch::insn::Insn;
use lz_arch::sysreg::SysReg;

/// Virtual-address layout of the TTBR1-mapped region.
pub mod layout {
    /// Exception vector base of a LightZone VE (the API-library stub).
    pub const STUB_VA: u64 = 0xffff_0000_0000_0000;
    /// First gate stub; gate `i` lives at `GATE_BASE + i * GATE_STRIDE`.
    pub const GATE_BASE: u64 = 0xffff_0000_0100_0000;
    /// Bytes per gate stub.
    pub const GATE_STRIDE: u64 = 256;
    /// `TTBRTab`: read-only array of legal `TTBR0_EL1` values, indexed by
    /// page-table id.
    pub const TTBRTAB_VA: u64 = 0xffff_0000_0200_0000;
    /// `GateTab`: read-only array of `(ENTRY, PGTID)` pairs, indexed by
    /// gate id.
    pub const GATETAB_VA: u64 = 0xffff_0000_0300_0000;
    /// Bytes per `GateTab` entry.
    pub const GATETAB_ENTRY: u64 = 16;

    /// Address of gate stub `i`.
    pub const fn gate_va(gate: u16) -> u64 {
        GATE_BASE + gate as u64 * GATE_STRIDE
    }
}

/// Error returned by [`GateTables::set_gate_pgt`] for unknown gate or
/// page-table identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnknownGateOrTable;

impl std::fmt::Display for UnknownGateOrTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("unknown gate or page-table identifier")
    }
}

impl std::error::Error for UnknownGateOrTable {}

/// `brk` immediate used by the gate's fail path.
pub const GATE_FAIL_BRK: u16 = 0xdd;

/// Gate-emission options (the ablation benchmarks flip these).
#[derive(Debug, Clone, Copy)]
pub struct GateFlavor {
    /// Emit check phase ② (paper design). Without it, a hijacked jump
    /// into the gate can install an arbitrary table — the ablation shows
    /// why the check exists.
    pub check_phase: bool,
    /// Emit `tlbi vmalle1` after the switch instead of relying on
    /// per-table ASIDs (ablation for §4.1.2's ASID design).
    pub tlbi_after_switch: bool,
}

impl Default for GateFlavor {
    fn default() -> Self {
        GateFlavor { check_phase: true, tlbi_after_switch: false }
    }
}

/// `tlbi vmalle1` encoding (op0=01, op1=000, CRn=8, CRm=7, op2=0).
const TLBI_VMALLE1: u32 = 0xD508_871F;

/// Emit the code for gate `gate`, starting at its architectural address.
///
/// Clobbers x9, x10, x12–x15 (documented gate ABI); the candidate entry
/// address arrives in x30 and the gate returns through it.
pub fn emit_gate(gate: u16, flavor: GateFlavor) -> Vec<u32> {
    let mut a = Asm::new(layout::gate_va(gate));
    let fail = a.label();

    // -- switch phase ① ---------------------------------------------------
    // x10 = &GateTab[gate]
    a.mov_imm64(10, layout::GATETAB_VA + gate as u64 * layout::GATETAB_ENTRY);
    // x12 = PGTID
    a.ldr(12, 10, 8);
    // x9 = &TTBRTab[PGTID]
    a.mov_imm64(9, layout::TTBRTAB_VA);
    a.add_reg_lsl(9, 9, 12, 3);
    // x13 = new TTBR0 value
    a.ldr(13, 9, 0);
    a.msr(SysReg::TTBR0_EL1, 13);
    a.isb();
    if flavor.tlbi_after_switch {
        a.raw(TLBI_VMALLE1);
        a.emit(Insn::Barrier(lz_arch::insn::Barrier::Dsb));
    }

    // -- check phase ② ----------------------------------------------------
    if flavor.check_phase {
        // ENTRY must equal the live link register.
        a.ldr(14, 10, 0);
        a.cmp_reg(14, 30);
        a.b_ne(fail);
        // Re-query PGTID and TTBRTab; the live TTBR0 must match.
        a.ldr(12, 10, 8);
        a.mov_imm64(9, layout::TTBRTAB_VA);
        a.add_reg_lsl(9, 9, 12, 3);
        a.ldr(9, 9, 0);
        a.mrs(15, SysReg::TTBR0_EL1);
        a.cmp_reg(9, 15);
        a.b_ne(fail);
    }
    a.ret();
    a.bind(fail);
    a.brk(GATE_FAIL_BRK);

    let words = a.words();
    assert!(words.len() * 4 <= layout::GATE_STRIDE as usize, "gate exceeds its stride");
    words
}

/// Byte offset, within any gate stub, of the phase-① `msr TTBR0_EL1`
/// write.
///
/// Phase ① is emitted identically for every flavor (the check phase and
/// the TLBI ablation only *append* code after the `msr`/`isb` pair), so
/// the offset is flavor-independent. The attack-synthesis harness uses
/// it to model Garmr-class mid-gate jumps: landing on the `msr` with an
/// attacker-chosen x13 skips the GateTab/TTBRTab lookups of phase ①.
pub fn switch_msr_offset() -> u64 {
    let words = emit_gate(0, GateFlavor { check_phase: false, tlbi_after_switch: false });
    // Phase ① always writes TTBR0 exactly once (asserted by the emission
    // tests), so the fallback never triggers.
    let idx = words
        .iter()
        .position(|&w| matches!(Insn::decode(w), Insn::MsrReg { enc, .. } if enc == SysReg::TTBR0_EL1.encoding()))
        .unwrap_or(0);
    idx as u64 * 4
}

/// Byte offset, within a default-flavor gate stub, of the first check
/// phase ② instruction (right past the `msr`/`isb` pair).
///
/// Only meaningful when `tlbi_after_switch` is off (the TLBI ablation
/// inserts code between `isb` and the check phase); the synthesis
/// harness never sweeps that flavor.
pub fn check_phase_offset() -> u64 {
    switch_msr_offset() + 8
}

/// Read-only table images the module writes into the TTBR1-mapped pages.
#[derive(Debug, Default)]
pub struct GateTables {
    /// `TTBRTab[pgtid]` — legal `TTBR0_EL1` values.
    pub ttbrtab: Vec<u64>,
    /// `GateTab[gate] = (ENTRY, PGTID)`.
    pub gatetab: Vec<(u64, u64)>,
}

impl GateTables {
    pub fn new() -> Self {
        GateTables::default()
    }

    /// Record a new page table's TTBR value; returns its PGTID.
    pub fn push_table(&mut self, ttbr0: u64) -> u64 {
        self.ttbrtab.push(ttbr0);
        (self.ttbrtab.len() - 1) as u64
    }

    /// Update the TTBR value of an existing table (e.g. after `lz_free` +
    /// reuse).
    ///
    /// # Errors
    ///
    /// Returns [`UnknownGateOrTable`] if `pgtid` was never pushed — the
    /// identifier comes from guest syscall arguments, so an out-of-range
    /// value must be rejected, not indexed.
    pub fn set_table(&mut self, pgtid: u64, ttbr0: u64) -> Result<(), UnknownGateOrTable> {
        match self.ttbrtab.get_mut(pgtid as usize) {
            Some(slot) => {
                *slot = ttbr0;
                Ok(())
            }
            None => Err(UnknownGateOrTable),
        }
    }

    /// Register the statically-designated ENTRY for a gate.
    pub fn set_entry(&mut self, gate: u16, entry: u64) {
        let idx = gate as usize;
        if self.gatetab.len() <= idx {
            self.gatetab.resize(idx + 1, (0, u64::MAX));
        }
        self.gatetab[idx].0 = entry;
    }

    /// `lz_map_gate_pgt`: associate a gate with the table it switches to.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownGateOrTable`] if either identifier was never
    /// registered.
    pub fn set_gate_pgt(&mut self, gate: u16, pgtid: u64) -> Result<(), UnknownGateOrTable> {
        let idx = gate as usize;
        if idx >= self.gatetab.len() || pgtid as usize >= self.ttbrtab.len() {
            return Err(UnknownGateOrTable);
        }
        self.gatetab[idx].1 = pgtid;
        Ok(())
    }

    /// Serialize `TTBRTab` for its read-only page.
    pub fn ttbrtab_bytes(&self) -> Vec<u8> {
        self.ttbrtab.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    /// Serialize `GateTab` for its read-only page.
    pub fn gatetab_bytes(&self) -> Vec<u8> {
        self.gatetab.iter().flat_map(|(e, p)| [e.to_le_bytes(), p.to_le_bytes()].concat()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lz_arch::sensitive::{classify, InsnClass, SanitizeMode};

    #[test]
    fn gate_fits_stride_and_ends_with_brk() {
        for gate in [0u16, 1, 255, 65535] {
            let words = emit_gate(gate, GateFlavor::default());
            assert!(words.len() <= 64);
            assert_eq!(Insn::decode(*words.last().unwrap()), Insn::Brk { imm: GATE_FAIL_BRK });
        }
    }

    #[test]
    fn gate_contains_exactly_one_ttbr_write() {
        let words = emit_gate(3, GateFlavor::default());
        let writes = words
            .iter()
            .filter(|&&w| matches!(Insn::decode(w), Insn::MsrReg { enc, .. } if enc == SysReg::TTBR0_EL1.encoding()))
            .count();
        assert_eq!(writes, 1);
    }

    #[test]
    fn gate_code_is_gate_only_sensitive() {
        // The sanitizer would reject gate code in application pages —
        // exactly why it must live in TTBR1-mapped module pages.
        let words = emit_gate(0, GateFlavor::default());
        let verdicts: Vec<_> = words.iter().map(|&w| classify(w, SanitizeMode::Ttbr)).collect();
        assert!(verdicts.contains(&InsnClass::GateOnly));
        // And nothing in the gate is *forbidden* under TTBR rules.
        assert!(!verdicts.iter().any(|v| matches!(v, InsnClass::Forbidden(_))));
    }

    #[test]
    fn no_indirect_jump_between_msr_and_ret() {
        // §6.2: once TTBR0 is written, phase ② must be unavoidable.
        let words = emit_gate(0, GateFlavor::default());
        let msr_at = words
            .iter()
            .position(|&w| matches!(Insn::decode(w), Insn::MsrReg { enc, .. } if enc == SysReg::TTBR0_EL1.encoding()))
            .unwrap();
        let ret_at = words.iter().position(|&w| matches!(Insn::decode(w), Insn::Ret { .. })).unwrap();
        assert!(ret_at > msr_at);
        for &w in &words[msr_at + 1..ret_at] {
            match Insn::decode(w) {
                Insn::Br { .. } | Insn::Blr { .. } | Insn::Ret { .. } => {
                    panic!("indirect jump between msr and ret")
                }
                // Conditional branches may only target the fail path
                // (forward, past the ret) — checked structurally: the
                // only B.cond targets are > ret_at.
                Insn::BCond { offset, .. } => {
                    let idx = words[..ret_at].iter().position(|x| *x == w).unwrap();
                    let target = idx as i64 + offset / 4;
                    assert!(target as usize > ret_at, "cond branch must only bail to fail path");
                }
                _ => {}
            }
        }
    }

    #[test]
    fn no_check_flavor_omits_compares() {
        let with = emit_gate(0, GateFlavor::default());
        let without = emit_gate(0, GateFlavor { check_phase: false, tlbi_after_switch: false });
        assert!(without.len() < with.len());
    }

    #[test]
    fn tlbi_flavor_contains_tlbi() {
        let words = emit_gate(0, GateFlavor { check_phase: true, tlbi_after_switch: true });
        assert!(words.contains(&TLBI_VMALLE1));
    }

    #[test]
    fn switch_msr_offset_is_flavor_independent() {
        let expected = switch_msr_offset();
        for check_phase in [false, true] {
            for tlbi_after_switch in [false, true] {
                let words = emit_gate(9, GateFlavor { check_phase, tlbi_after_switch });
                let idx = words
                    .iter()
                    .position(
                        |&w| matches!(Insn::decode(w), Insn::MsrReg { enc, .. } if enc == SysReg::TTBR0_EL1.encoding()),
                    )
                    .unwrap();
                assert_eq!(idx as u64 * 4, expected, "check={check_phase} tlbi={tlbi_after_switch}");
            }
        }
        // The word right after the msr is the isb; the check phase (when
        // emitted without the TLBI ablation) starts right after it.
        let words = emit_gate(0, GateFlavor::default());
        let isb_idx = (expected / 4 + 1) as usize;
        assert_eq!(Insn::decode(words[isb_idx]), Insn::Barrier(lz_arch::insn::Barrier::Isb));
        assert_eq!(check_phase_offset(), expected + 8);
    }

    #[test]
    fn gate_tables_wire_up() {
        let mut t = GateTables::new();
        let pgt0 = t.push_table(0xaaaa);
        let pgt1 = t.push_table(0xbbbb);
        t.set_entry(0, 0x40_1000);
        t.set_entry(1, 0x40_2000);
        assert!(t.set_gate_pgt(0, pgt0).is_ok());
        assert!(t.set_gate_pgt(1, pgt1).is_ok());
        assert_eq!(t.set_gate_pgt(7, pgt0), Err(UnknownGateOrTable), "unknown gate");
        assert_eq!(t.set_gate_pgt(0, 99), Err(UnknownGateOrTable), "unknown pgt");
        let gb = t.gatetab_bytes();
        assert_eq!(&gb[0..8], &0x40_1000u64.to_le_bytes());
        assert_eq!(&gb[8..16], &pgt0.to_le_bytes());
        let tb = t.ttbrtab_bytes();
        assert_eq!(&tb[8..16], &0xbbbbu64.to_le_bytes());
    }

    #[test]
    fn gate_va_layout_distinct() {
        assert_ne!(layout::gate_va(0), layout::gate_va(1));
        assert_eq!(layout::gate_va(1) - layout::gate_va(0), layout::GATE_STRIDE);
        // 2^16 gates fit below TTBRTAB.
        assert!(layout::gate_va(u16::MAX) + layout::GATE_STRIDE <= layout::TTBRTAB_VA);
    }
}
