//! The sensitive-instruction sanitizer and its W^X / break-before-make
//! enforcement (paper §6.3).
//!
//! The classifier itself ([`lz_arch::sensitive`]) is pure; this module
//! adds what the kernel module needs around it:
//!
//! * scanning a *physical page* before it becomes executable, with the
//!   cycle cost of the scan,
//! * the per-page **W^X state machine**: a page is mapped writable or
//!   executable, never both. An instruction fault on a writable page
//!   first *unmaps* it (break-before-make: the PTE is zeroed and the TLB
//!   entry invalidated before the scan), then scans, then maps it
//!   executable-not-writable — closing the TOCTTOU window where an
//!   attacker could inject sensitive instructions after the scan.

use lz_arch::sensitive::{scan_code, InsnClass, SanitizeMode, Sensitivity};
use lz_arch::{CycleModel, PAGE_SIZE};
use lz_machine::PhysMem;
use std::collections::HashMap;

/// Mutually exclusive mapping states of a page under W^X.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WxState {
    /// Mapped writable (and readable), not executable.
    Writable,
    /// Scanned and mapped executable (and readable), not writable.
    Executable,
}

/// Result of asking the tracker how to map a page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WxDecision {
    /// Map it with these (write, exec) bits; no scan needed.
    Map { write: bool, exec: bool },
    /// The page must be scanned before being mapped executable. The
    /// caller must *first* unmap + TLBI any writable mapping (break-
    /// before-make), then call [`WxTracker::commit_exec`].
    ScanThenExec,
}

/// Per-process W^X state.
#[derive(Debug, Default)]
pub struct WxTracker {
    states: HashMap<u64, WxState>,
}

impl WxTracker {
    pub fn new() -> Self {
        WxTracker::default()
    }

    /// Current state of a page, if it has been mapped at all.
    pub fn state(&self, page_va: u64) -> Option<WxState> {
        self.states.get(&page_va).copied()
    }

    /// Decide how to satisfy a fault on `page_va` whose VMA allows
    /// `(vma_write, vma_exec)`; `is_fetch` marks instruction faults.
    pub fn on_fault(&self, page_va: u64, vma_write: bool, vma_exec: bool, is_fetch: bool) -> WxDecision {
        if is_fetch && vma_exec {
            match self.state(page_va) {
                Some(WxState::Executable) => WxDecision::Map { write: false, exec: true },
                _ => WxDecision::ScanThenExec,
            }
        } else if vma_write && vma_exec {
            // Data access to a W+X VMA: map writable, drop exec.
            WxDecision::Map { write: true, exec: false }
        } else {
            WxDecision::Map { write: vma_write, exec: false }
        }
    }

    /// Record that `page_va` passed the scan and is now mapped
    /// executable-not-writable.
    pub fn commit_exec(&mut self, page_va: u64) {
        self.states.insert(page_va, WxState::Executable);
    }

    /// Record that `page_va` is now mapped writable-not-executable —
    /// any previous scan result is void.
    pub fn commit_write(&mut self, page_va: u64) {
        self.states.insert(page_va, WxState::Writable);
    }

    /// Forget a page (unmapped).
    pub fn forget(&mut self, page_va: u64) {
        self.states.remove(&page_va);
    }
}

/// Scan one physical page for sensitive instructions.
///
/// Returns the cycle cost of the scan on success, or the byte offset and
/// class of the first offending word.
pub fn sanitize_page(
    mem: &PhysMem,
    pa: u64,
    mode: SanitizeMode,
    model: &CycleModel,
) -> Result<u64, (usize, InsnClass)> {
    // Fail closed: a page that cannot be read cannot be proven clean,
    // so it is rejected outright (it will never become executable)
    // rather than panicking the host on a guest-reachable path.
    let Some(bytes) = mem.read_bytes(pa, PAGE_SIZE as usize) else {
        return Err((0, InsnClass::Forbidden(Sensitivity::PrivilegedSysreg)));
    };
    scan_code(&bytes, mode)?;
    Ok(scan_cost(model))
}

/// Cycle cost of scanning one page: ~3 instructions per word plus the
/// cache-line reads.
pub fn scan_cost(model: &CycleModel) -> u64 {
    model.path_cost(1024 * 3) + (PAGE_SIZE / 64) * model.mem_access
}

#[cfg(test)]
mod tests {
    use super::*;
    use lz_arch::asm::Asm;
    use lz_arch::Platform;

    #[test]
    fn fetch_on_fresh_page_requires_scan() {
        let t = WxTracker::new();
        assert_eq!(t.on_fault(0x1000, true, true, true), WxDecision::ScanThenExec);
    }

    #[test]
    fn fetch_on_scanned_page_maps_exec() {
        let mut t = WxTracker::new();
        t.commit_exec(0x1000);
        assert_eq!(t.on_fault(0x1000, true, true, true), WxDecision::Map { write: false, exec: true });
    }

    #[test]
    fn write_after_exec_revokes_scan() {
        let mut t = WxTracker::new();
        t.commit_exec(0x1000);
        // A data fault on the W+X VMA flips the page to writable…
        assert_eq!(t.on_fault(0x1000, true, true, false), WxDecision::Map { write: true, exec: false });
        t.commit_write(0x1000);
        // …and the next fetch must rescan.
        assert_eq!(t.on_fault(0x1000, true, true, true), WxDecision::ScanThenExec);
    }

    #[test]
    fn read_only_vma_never_executable_or_writable() {
        let t = WxTracker::new();
        assert_eq!(t.on_fault(0x1000, false, false, false), WxDecision::Map { write: false, exec: false });
    }

    #[test]
    fn sanitize_accepts_clean_page() {
        let mut mem = PhysMem::new();
        let pa = mem.alloc_frame();
        let mut a = Asm::new(0);
        a.movz(0, 1, 0);
        a.ret();
        mem.write_bytes(pa, &a.bytes());
        let model = Platform::CortexA55.model();
        let cost = sanitize_page(&mem, pa, SanitizeMode::Both, &model).unwrap();
        assert!(cost > 0);
    }

    #[test]
    fn sanitize_rejects_planted_eret() {
        let mut mem = PhysMem::new();
        let pa = mem.alloc_frame();
        let mut a = Asm::new(0);
        a.nop();
        a.eret();
        mem.write_bytes(pa, &a.bytes());
        let model = Platform::CortexA55.model();
        let err = sanitize_page(&mem, pa, SanitizeMode::Both, &model).unwrap_err();
        assert_eq!(err.0, 4);
    }

    #[test]
    fn sanitize_rejects_ldtr_only_in_pan_mode() {
        let mut mem = PhysMem::new();
        let pa = mem.alloc_frame();
        let mut a = Asm::new(0);
        a.ldtr(0, 1, 0);
        mem.write_bytes(pa, &a.bytes());
        let model = Platform::CortexA55.model();
        assert!(sanitize_page(&mem, pa, SanitizeMode::Ttbr, &model).is_ok());
        assert!(sanitize_page(&mem, pa, SanitizeMode::Pan, &model).is_err());
    }

    #[test]
    fn scan_cost_scales_with_platform() {
        let carmel = scan_cost(&Platform::Carmel.model());
        let a55 = scan_cost(&Platform::CortexA55.model());
        assert!(carmel < a55, "wide OoO core scans faster per page");
    }
}
