//! Seeded attack synthesis over every defense ablation (DESIGN.md §12).
//!
//! The synthesizer composes the primitives of [`crate::attacks`] into
//! candidate exploit programs across six families — direct access,
//! gate abuse, sanitizer/W^X, cross-core stale alias, fake-phys layout
//! probes, and kernel-context abuse — then runs every candidate under
//! every [`Defense`] polarity on 1- and 4-core machines with the data
//! fast path on and off.
//!
//! The oracle is *positive evidence of an isolation break*, never "the
//! program exited cleanly": a direct-access or gate-abuse attack
//! escapes only by exiting with a victim-domain secret planted before
//! protection, a sanitizer attack only by exiting with a marker that
//! sits *behind* a forbidden instruction in the injected payload, a
//! layout probe only by exiting with the *real* (not fake) physical
//! root of a domain table, and a stale-alias attack only when a remote
//! core's post-flip probe executes the attacker's freshly written
//! payload. Decoy steps (legal loads/stores in the attacker's own
//! scratch page) therefore cannot masquerade as escapes, which keeps
//! the ddmin shrink from reducing an exploit to a benign program.
//!
//! The harness asserts the two-sided contract: with all defenses on,
//! **zero** candidates escape; with a single security-relevant defense
//! ablated (`remote_shootdown`, `gate_check_phase`, `randomize_phys`),
//! at least [`ESCAPE_FLOOR`] *distinct* attacks escape — proving the
//! corpus has teeth against that exact mechanism, not vacuously
//! passing. The purely cost-model ablations (`eager_stage2`,
//! `retain_hcr_vttbr`, `shared_pt_regs`, `deferred_sysreg_page`) do
//! not weaken the isolation boundary, so escapes under them are also
//! asserted to be zero; their load-bearing-ness is proven by the
//! cycle-delta tests in `tests/ablation.rs` instead.
//!
//! Every escaping `(attack, defense)` pair is shrunk with
//! [`crate::soak::ddmin_set`] over the candidate's step list to a
//! 1-minimal exploit. The whole run is a pure function of
//! [`SynthConfig`], so [`AttackCorpusReport::to_json`] is
//! byte-deterministic — the CI gate re-runs and compares.

use crate::attacks::{
    self, forged_gate_call, inert_sensitive_payload, kernel_page_exec, kernel_page_store, load_ttbrtab_entry,
    mid_gate_jump, movz_word, pan_base_with_secrets, ttbr_base_with_secrets, wx_views, ARENA, CODE, JIT, WX_GATE_EXEC,
    WX_GATE_HOME, WX_GATE_REEXEC, WX_GATE_WRITER,
};
use crate::soak::ddmin_set;
use lightzone::api::{LzAsm, LzProgramBuilder, SAN_TTBR};
use lightzone::gate::layout;
use lightzone::sanitizer::WxState;
use lightzone::{AblationConfig, Defense, LightZone, LzProgram, ALL_DEFENSES};
use lz_arch::insn::{Insn, MemSize};
use lz_arch::pstate::PState;
use lz_arch::sysreg::{ttbr, SysReg};
use lz_arch::{Platform, PAGE_SIZE};
use lz_kernel::{Event, VmProt};
use std::collections::BTreeSet;

/// Scratch page for decoy steps (legal attacker-owned memory).
const DECOY: u64 = 0x70_0000;
/// Exit marker of the sanitizer family: only reachable by executing the
/// injected payload *past* its forbidden first word.
const WX_MARKER: u16 = 0xA110;
/// Exit marker of the kernel-context family's epilogue.
const KERNEL_MARKER: i64 = 0x6A11;
/// Distinct escaping attacks required per ablated security defense.
pub const ESCAPE_FLOOR: usize = 2;

/// The defenses whose ablation actually weakens the isolation boundary
/// (the others are cost-model knobs — see the module docs).
pub const SECURITY_DEFENSES: [Defense; 3] = [Defense::RemoteShootdown, Defense::GateCheckPhase, Defense::RandomizePhys];

/// splitmix64 (local copy; the engine's mixer is private).
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

// ---------------------------------------------------------------------
// Attack families and steps
// ---------------------------------------------------------------------

/// The synthesized attack families (DESIGN.md §12 taxonomy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Family {
    DirectAccess,
    GateAbuse,
    SanitizerWx,
    StaleAlias,
    PhysProbe,
    KernelContext,
}

pub const ALL_FAMILIES: [Family; 6] = [
    Family::DirectAccess,
    Family::GateAbuse,
    Family::SanitizerWx,
    Family::StaleAlias,
    Family::PhysProbe,
    Family::KernelContext,
];

impl Family {
    pub fn name(self) -> &'static str {
        match self {
            Family::DirectAccess => "direct_access",
            Family::GateAbuse => "gate_abuse",
            Family::SanitizerWx => "sanitizer_wx",
            Family::StaleAlias => "stale_alias",
            Family::PhysProbe => "phys_probe",
            Family::KernelContext => "kernel_context",
        }
    }
}

/// One composable attack step. The ddmin shrink operates on the step
/// list; the family prelude and the exit epilogue are fixed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Legal store+load in the attacker's own scratch page (x5/x6).
    Decoy { val: u16 },
    /// EL1 load from a PAN-protected domain page into x0.
    PanLoad { domain: u64 },
    /// EL1 store into a PAN-protected domain page, then read back.
    PanStore { domain: u64, val: u16 },
    /// Store from pgt 0 into a page owned exclusively by another table.
    TtbrStore { domain: u64, val: u16 },
    /// `blr` to a gate's entry point with a forged return address.
    ForgedGateCall { gate: u16 },
    /// Jump onto the gate's phase-① `msr` with attacker-chosen x13.
    MidGateJump { gate: u16 },
    /// Jump straight into the gate's check phase ②.
    CheckPhaseJump { gate: u16 },
    /// Call a gate VA that was never registered (unmapped stub).
    UnregisteredGateCall { gate: u16 },
    /// Execute the JIT page through the executor view (clean scan).
    WxExecClean,
    /// Store the sensitive payload through the RW writer view; with
    /// `read_fault_first` the flip is provoked by a *read* fault.
    WxWritePayload { read_fault_first: bool },
    /// Re-execute the JIT page through the second executor gate.
    WxReexec,
    /// Branch to a statically injected sensitive payload.
    ExecInjected,
    /// Read `TTBRTab[pgt]` into x0 (layout probe).
    ProbeTtbrTab { pgt: u64 },
    /// Store to a TTBR1-mapped kernel-context page.
    KernelStore { va: u64 },
    /// Branch to a TTBR1-mapped kernel data page.
    KernelExec { va: u64 },
    /// Store the stale-alias payload through the writer view.
    StaleFlip,
}

/// One candidate exploit: a family prelude, a shrinkable step list, and
/// the family's escape oracle parameters.
#[derive(Debug, Clone)]
pub struct Candidate {
    pub family: Family,
    pub index: usize,
    pub steps: Vec<Step>,
    /// Exit codes that prove the break (exit-oracle families).
    escape_exits: Vec<i64>,
    /// Gate-abuse epilogue target domain (its arena page holds the
    /// secret the epilogue tries to read).
    victim_domain: u64,
    /// Stale-alias payload immediate (`movz x17, #imm`).
    payload_imm: u16,
    /// Per-candidate secret derivation seed.
    secret_seed: u64,
}

impl Candidate {
    pub fn id(&self) -> String {
        format!("{}/{}", self.family.name(), self.index)
    }

    fn secret(&self, domain: u64) -> u64 {
        0x5EC0_0000 | (mix(self.secret_seed ^ domain) & 0xFFFF)
    }

    fn all_steps(&self) -> BTreeSet<usize> {
        (0..self.steps.len()).collect()
    }
}

// ---------------------------------------------------------------------
// Generator
// ---------------------------------------------------------------------

/// Sweep configuration. Everything downstream — candidate parameters,
/// run matrix, report — is a pure function of this value.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    pub seed: u64,
    pub platform: Platform,
    pub cores: Vec<usize>,
    pub fastpaths: Vec<bool>,
    /// Template-JIT polarities to sweep (compiled vs interpreted
    /// superblocks must be attack-indistinguishable).
    pub jits: Vec<bool>,
    pub pan_domains: u64,
    pub ttbr_domains: u64,
    /// ddmin-shrink escaping attacks (the expensive part).
    pub shrink: bool,
}

impl SynthConfig {
    /// The full release matrix (`repro attacks`): 1- and 4-core,
    /// fastpath on and off, JIT on and off.
    pub fn full(seed: u64) -> Self {
        SynthConfig {
            seed,
            platform: Platform::CortexA55,
            cores: vec![1, 4],
            fastpaths: vec![true, false],
            jits: vec![true, false],
            pan_domains: 8,
            ttbr_domains: 6,
            shrink: true,
        }
    }

    /// Reduced matrix for the in-tree debug test: both core counts
    /// (the stale-alias family needs a remote core), default fast path
    /// and JIT polarity.
    pub fn reduced(seed: u64) -> Self {
        SynthConfig {
            fastpaths: vec![lz_machine::default_fastpath()],
            jits: vec![lz_machine::default_jit()],
            ..SynthConfig::full(seed)
        }
    }
}

/// Generate the deterministic candidate corpus for `cfg`.
pub fn generate(cfg: &SynthConfig) -> Vec<Candidate> {
    let mut out = Vec::new();
    let d = |i: u64, m: u64| mix(cfg.seed ^ (i << 12)) % m;
    let v = |i: u64| 0x4000 | (mix(cfg.seed ^ (i << 20)) & 0xFFF) as u16;
    let mut push = |family: Family,
                    index: usize,
                    steps: Vec<Step>,
                    escape_exits: Vec<i64>,
                    victim_domain: u64,
                    payload_imm: u16| {
        out.push(Candidate {
            family,
            index,
            steps,
            escape_exits,
            victim_domain,
            payload_imm,
            secret_seed: mix(cfg.seed ^ ((family as u64) << 32) ^ index as u64),
        });
    };

    // direct_access: loads/stores across a PAN or TTBR domain boundary.
    let pd0 = d(0, cfg.pan_domains);
    let pd1 = d(1, cfg.pan_domains);
    let td2 = d(2, cfg.ttbr_domains);
    let sec = |seed: u64, dom: u64| (0x5EC0_0000 | (mix(seed ^ dom) & 0xFFFF)) as i64;
    let da_seed = |i: usize| mix(cfg.seed ^ ((Family::DirectAccess as u64) << 32) ^ i as u64);
    push(
        Family::DirectAccess,
        0,
        vec![Step::Decoy { val: v(0) }, Step::PanLoad { domain: pd0 }],
        vec![sec(da_seed(0), pd0)],
        pd0,
        0,
    );
    push(
        Family::DirectAccess,
        1,
        vec![Step::PanStore { domain: pd1, val: v(1) }, Step::Decoy { val: v(2) }],
        vec![v(1) as i64],
        pd1,
        0,
    );
    push(
        Family::DirectAccess,
        2,
        vec![Step::Decoy { val: v(3) }, Step::TtbrStore { domain: td2, val: v(4) }],
        vec![v(4) as i64],
        td2,
        0,
    );

    // gate_abuse: forged calls and mid-gate jumps. Gate g is wired to
    // pgt g+1 by the shared ttbr base, so the victim domain is the gate
    // index itself.
    let ga_seed = |i: usize| mix(cfg.seed ^ ((Family::GateAbuse as u64) << 32) ^ i as u64);
    let g0 = d(10, cfg.ttbr_domains) as u16;
    let g1 = d(11, cfg.ttbr_domains) as u16;
    let g2 = d(12, cfg.ttbr_domains) as u16;
    push(
        Family::GateAbuse,
        0,
        vec![Step::Decoy { val: v(5) }, Step::ForgedGateCall { gate: g0 }],
        vec![sec(ga_seed(0), g0 as u64)],
        g0 as u64,
        0,
    );
    push(
        Family::GateAbuse,
        1,
        vec![Step::Decoy { val: v(6) }, Step::Decoy { val: v(7) }, Step::MidGateJump { gate: g1 }],
        vec![sec(ga_seed(1), g1 as u64)],
        g1 as u64,
        0,
    );
    push(Family::GateAbuse, 2, vec![Step::CheckPhaseJump { gate: g2 }], vec![sec(ga_seed(2), g2 as u64)], g2 as u64, 0);
    push(
        Family::GateAbuse,
        3,
        vec![Step::UnregisteredGateCall { gate: cfg.ttbr_domains as u16 + 5 }],
        vec![sec(ga_seed(3), g2 as u64)],
        g2 as u64,
        0,
    );

    // sanitizer_wx: double-view payload smuggling and static injection.
    push(
        Family::SanitizerWx,
        0,
        vec![Step::WxExecClean, Step::WxWritePayload { read_fault_first: false }, Step::WxReexec],
        vec![WX_MARKER as i64],
        0,
        0,
    );
    push(
        Family::SanitizerWx,
        1,
        vec![Step::WxExecClean, Step::WxWritePayload { read_fault_first: true }, Step::WxReexec],
        vec![WX_MARKER as i64],
        0,
        0,
    );
    push(Family::SanitizerWx, 2, vec![Step::Decoy { val: v(8) }, Step::ExecInjected], vec![WX_MARKER as i64], 0, 0);

    // stale_alias: break-before-make against a warmed remote TLB.
    for i in 0..3usize {
        push(
            Family::StaleAlias,
            i,
            vec![Step::WxExecClean, Step::StaleFlip],
            vec![],
            0,
            0xBE00 | (mix(cfg.seed ^ i as u64) & 0xFF) as u16,
        );
    }

    // phys_probe: TTBRTab reads hunting real table roots.
    push(Family::PhysProbe, 0, vec![Step::Decoy { val: v(9) }, Step::ProbeTtbrTab { pgt: 1 }], vec![], 0, 0);
    push(Family::PhysProbe, 1, vec![Step::ProbeTtbrTab { pgt: 2 }, Step::Decoy { val: v(10) }], vec![], 0, 0);
    push(Family::PhysProbe, 2, vec![Step::ProbeTtbrTab { pgt: 1 + d(13, cfg.ttbr_domains - 1) }], vec![], 0, 0);

    // kernel_context: Garmr-class writes/jumps into the TTBR1-mapped
    // stub, tables, and gate stubs.
    push(Family::KernelContext, 0, vec![Step::KernelStore { va: layout::STUB_VA }], vec![KERNEL_MARKER], 0, 0);
    push(Family::KernelContext, 1, vec![Step::KernelStore { va: layout::TTBRTAB_VA }], vec![KERNEL_MARKER], 0, 0);
    push(Family::KernelContext, 2, vec![Step::KernelExec { va: layout::GATETAB_VA }], vec![KERNEL_MARKER], 0, 0);
    push(Family::KernelContext, 3, vec![Step::KernelStore { va: layout::gate_va(0) }], vec![KERNEL_MARKER], 0, 0);

    out
}

// ---------------------------------------------------------------------
// Materializer
// ---------------------------------------------------------------------

fn emit_exit_x0(b: &mut LzProgramBuilder) {
    b.asm.mov_imm64(8, lz_kernel::Sysno::Exit.nr());
    b.asm.svc(0);
}

/// Build the concrete program for `(candidate, step subset)`.
fn materialize(c: &Candidate, subset: &BTreeSet<usize>, cfg: &SynthConfig) -> LzProgram {
    let mut b = LzProgramBuilder::new(CODE);
    b.with_anon_segment(DECOY, PAGE_SIZE, VmProt::RW);

    // Family prelude.
    match c.family {
        Family::DirectAccess => {
            let uses_pan = c.steps.iter().any(|s| matches!(s, Step::PanLoad { .. } | Step::PanStore { .. }));
            if uses_pan {
                pan_base_with_secrets(&mut b, cfg.pan_domains, |d| c.secret(d));
            } else {
                ttbr_base_with_secrets(&mut b, cfg.ttbr_domains, |d| c.secret(d));
            }
            b.asm.mov_imm64(0, 1); // neutral exit value for decoy-only subsets
        }
        Family::GateAbuse => {
            // Register the attack gates' designated entries (the program
            // base — never an actual call site) so their stubs exist.
            let mut gates = BTreeSet::new();
            for s in &c.steps {
                match s {
                    Step::ForgedGateCall { gate } | Step::MidGateJump { gate } | Step::CheckPhaseJump { gate } => {
                        gates.insert(*gate);
                    }
                    _ => {}
                }
            }
            for g in gates {
                b.register_gate_entry(g, CODE);
            }
            ttbr_base_with_secrets(&mut b, cfg.ttbr_domains, |d| c.secret(d));
        }
        Family::SanitizerWx => {
            let injected = c.steps.iter().any(|s| matches!(s, Step::ExecInjected));
            if injected {
                let mut body = Vec::new();
                body.extend_from_slice(&inert_sensitive_payload().to_le_bytes());
                body.extend_from_slice(&movz_word(0, WX_MARKER).to_le_bytes());
                body.extend_from_slice(&ret_word().to_le_bytes());
                b.with_segment(JIT, body, VmProt::RX);
                b.asm.lz_enter(true, SAN_TTBR);
                b.asm.mov_imm64(0, 1);
            } else {
                // Clean 3-word seed: `movz x0, #0x11; nop; ret`.
                let mut seed = lz_arch::asm::Asm::new(JIT);
                seed.movz(0, 0x11, 0);
                seed.nop();
                seed.ret();
                wx_views(&mut b, &seed.bytes());
                b.asm.mov_imm64(0, 1);
            }
        }
        Family::StaleAlias => {
            let mut seed = lz_arch::asm::Asm::new(JIT);
            seed.movz(17, 0x1111, 0);
            seed.ret();
            wx_views(&mut b, &seed.bytes());
        }
        Family::PhysProbe => {
            ttbr_base_with_secrets(&mut b, cfg.ttbr_domains, |d| c.secret(d));
            // x0 poisoned with an address that can never be a table
            // root, so probe-free subsets cannot fake a leak.
            b.asm.mov_imm64(0, 0xDEAD_0000_0001);
        }
        Family::KernelContext => {
            ttbr_base_with_secrets(&mut b, 2, |d| c.secret(d));
        }
    }

    // Steps (the shrinkable part).
    for (i, step) in c.steps.iter().enumerate() {
        if !subset.contains(&i) {
            continue;
        }
        emit_step(&mut b, step, c);
    }

    // Family epilogue.
    match c.family {
        Family::GateAbuse => {
            // Read the victim domain's secret from wherever we ended up.
            b.asm.mov_imm64(7, ARENA + c.victim_domain * PAGE_SIZE);
            b.asm.ldr(0, 7, 0);
            emit_exit_x0(&mut b);
        }
        Family::KernelContext => {
            b.asm.mov_imm64(0, KERNEL_MARKER as u64);
            emit_exit_x0(&mut b);
        }
        Family::StaleAlias => {
            b.asm.exit_imm(0);
        }
        _ => emit_exit_x0(&mut b),
    }
    b.build()
}

fn ret_word() -> u32 {
    let mut a = lz_arch::asm::Asm::new(0);
    a.ret();
    let bytes = a.bytes();
    u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]])
}

fn emit_step(b: &mut LzProgramBuilder, step: &Step, c: &Candidate) {
    match *step {
        Step::Decoy { val } => {
            b.asm.mov_imm64(5, DECOY);
            b.asm.mov_imm64(6, val as u64);
            b.asm.str(6, 5, 0);
            b.asm.ldr(6, 5, 0);
        }
        Step::PanLoad { domain } => {
            b.asm.mov_imm64(7, ARENA + domain * PAGE_SIZE);
            b.asm.ldr(0, 7, 0);
        }
        Step::PanStore { domain, val } | Step::TtbrStore { domain, val } => {
            b.asm.mov_imm64(7, ARENA + domain * PAGE_SIZE);
            b.asm.mov_imm64(6, val as u64);
            b.asm.str(6, 7, 0);
            b.asm.ldr(0, 7, 0);
        }
        Step::ForgedGateCall { gate } => forged_gate_call(&mut b.asm, gate),
        Step::MidGateJump { gate } => mid_gate_jump(&mut b.asm, gate, gate as u64 + 1),
        Step::CheckPhaseJump { gate } => attacks::check_phase_jump(&mut b.asm, gate),
        Step::UnregisteredGateCall { gate } => forged_gate_call(&mut b.asm, gate),
        Step::WxExecClean => {
            b.lz_switch_to_ttbr_gate(WX_GATE_EXEC);
            b.asm.mov_imm64(17, JIT);
            b.asm.blr(17);
            b.lz_switch_to_ttbr_gate(WX_GATE_HOME);
        }
        Step::WxWritePayload { read_fault_first } => {
            b.lz_switch_to_ttbr_gate(WX_GATE_WRITER);
            b.asm.mov_imm64(1, JIT);
            if read_fault_first {
                b.asm.ldr(2, 1, 0);
            }
            b.asm.mov_imm64(2, inert_sensitive_payload() as u64);
            b.asm.emit(Insn::StrImm { rt: 2, rn: 1, offset: 0, size: MemSize::W });
            b.asm.mov_imm64(2, movz_word(0, WX_MARKER) as u64);
            b.asm.emit(Insn::StrImm { rt: 2, rn: 1, offset: 4, size: MemSize::W });
        }
        Step::WxReexec => {
            b.lz_switch_to_ttbr_gate(WX_GATE_REEXEC);
            b.asm.mov_imm64(17, JIT);
            b.asm.blr(17);
        }
        Step::ExecInjected => {
            b.asm.mov_imm64(16, JIT);
            b.asm.blr(16);
        }
        Step::ProbeTtbrTab { pgt } => load_ttbrtab_entry(&mut b.asm, 0, pgt),
        Step::KernelStore { va } => kernel_page_store(&mut b.asm, va, 0x4242_4242),
        Step::KernelExec { va } => kernel_page_exec(&mut b.asm, va),
        Step::StaleFlip => {
            b.lz_switch_to_ttbr_gate(WX_GATE_WRITER);
            b.asm.mov_imm64(1, JIT);
            b.asm.mov_imm64(2, movz_word(17, c.payload_imm) as u64);
            b.asm.emit(Insn::StrImm { rt: 2, rn: 1, offset: 0, size: MemSize::W });
        }
    }
}

// ---------------------------------------------------------------------
// Runners and oracles
// ---------------------------------------------------------------------

fn run_bounded(lz: &mut LightZone) -> Option<i64> {
    match lz.run(20_000_000) {
        Event::Exited(code) => Some(code),
        _ => None,
    }
}

/// Step by small quanta until `cond` holds. Returns false (defeated)
/// if the program exits, faults, or stalls first — shrunk candidates
/// routinely never reach the condition and must not panic.
fn try_step_until(lz: &mut LightZone, cond: impl Fn(&LightZone) -> bool) -> bool {
    for _ in 0..200_000 {
        if cond(lz) {
            return true;
        }
        match lz.run(2) {
            Event::Limit => {}
            _ => return false,
        }
    }
    false
}

/// Execute the JIT page on `core` through the executor view; returns
/// x17 (0 = the fetch faulted, the seed/payload marker otherwise).
fn probe_jit_on_core(m: &mut lz_machine::Machine, core: usize, executor_ttbr0: u64) -> u64 {
    let home = 0;
    m.switch_core(core);
    m.set_sysreg(SysReg::TTBR0_EL1, executor_ttbr0);
    m.cpu.x[17] = 0;
    m.cpu.x[30] = 0;
    m.enter(PState::reset(), JIT);
    let _ = m.run(4);
    let hit = m.cpu.x[17];
    m.switch_core(home);
    hit
}

/// Exit-code oracle families: run to completion, escaped iff the exit
/// code is one of the candidate's break-evidence values.
fn run_exit_oracle(
    prog: &LzProgram,
    c: &Candidate,
    ablation: AblationConfig,
    cores: usize,
    platform: Platform,
) -> bool {
    let mut lz = LightZone::with_ablation(platform, false, ablation);
    let pid = lz.spawn(prog);
    lz.enter_process(pid);
    if cores > 1 {
        lz.kernel.machine.configure_smp(cores);
    }
    match run_bounded(&mut lz) {
        Some(code) => c.escape_exits.contains(&code),
        None => false,
    }
}

/// Layout-probe oracle: escaped iff the exit value's table-root field
/// names a *real* physical root of one of the process's domain tables
/// (captured while the process is live — randomized fake roots are
/// sequential low addresses that can never collide with real frames).
fn run_phys_oracle(prog: &LzProgram, ablation: AblationConfig, cores: usize, platform: Platform) -> bool {
    let mut lz = LightZone::with_ablation(platform, false, ablation);
    let pid = lz.spawn(prog);
    lz.enter_process(pid);
    if cores > 1 {
        lz.kernel.machine.configure_smp(cores);
    }
    // The tiny quantum matters: `LightZone::run` resolves syscalls
    // internally with a fresh budget each time, so a large quantum
    // would run the whole program to exit in one call and the mid-run
    // capture of the (randomization-independent) real roots below
    // would never observe the live tables.
    let mut roots: BTreeSet<u64> = BTreeSet::new();
    let mut exit = None;
    for _ in 0..200_000 {
        if let Some(p) = lz.module.proc(pid) {
            for t in p.tables.iter().flatten() {
                roots.insert(t.root_real);
            }
        }
        match lz.run(2) {
            Event::Limit => {}
            Event::Exited(code) => {
                exit = Some(code);
                break;
            }
            _ => break,
        }
    }
    match exit {
        Some(code) => roots.contains(&ttbr::baddr(code as u64)),
        None => false,
    }
}

/// Stale-alias oracle: host-driven break-before-make race. A probe core
/// re-executes the JIT page after the W^X flip; escaped iff it ran the
/// attacker's payload (possible only through a stale TLB entry).
fn run_stale_oracle(
    prog: &LzProgram,
    c: &Candidate,
    ablation: AblationConfig,
    cores: usize,
    platform: Platform,
) -> bool {
    let mut lz = LightZone::with_ablation(platform, false, ablation);
    let pid = lz.spawn(prog);
    lz.enter_process(pid);

    // Phase 1: the JIT page goes executable (clean scan).
    if !try_step_until(&mut lz, |lz| lz.module.proc(pid).is_some_and(|p| p.wx.state(JIT) == Some(WxState::Executable)))
    {
        return false;
    }
    lz.kernel.machine.configure_smp(cores);
    let Some(executor_ttbr0) =
        lz.module.proc(pid).and_then(|p| p.tables.get(2)).and_then(|t| t.as_ref()).map(|t| t.ttbr0())
    else {
        return false;
    };
    // On a multi-core machine the race uses a remote core (warming its
    // private TLB first); on one core the probe reuses core 0, whose
    // TLB the local break-before-make always invalidates.
    let probe_core = if cores > 1 { 1 } else { 0 };
    if cores > 1 {
        let _ = probe_jit_on_core(&mut lz.kernel.machine, probe_core, executor_ttbr0);
    }
    // Phase 2: the flip happened and the payload landed in memory.
    let payload = movz_word(17, c.payload_imm);
    let Some(jit_pa) = lz.kernel.process(pid).mm.page_at(JIT) else {
        return false;
    };
    if !try_step_until(&mut lz, |lz| {
        lz.module.proc(pid).is_some_and(|p| p.wx.state(JIT) == Some(WxState::Writable))
            && lz.kernel.machine.mem.read_u32(jit_pa) == Some(payload)
    }) {
        return false;
    }
    // Phase 3: the probe. Only a stale alias can still translate JIT.
    probe_jit_on_core(&mut lz.kernel.machine, probe_core, executor_ttbr0) == c.payload_imm as u64
}

/// Run one candidate (with the given step subset) in one matrix cell.
pub fn run_candidate(
    c: &Candidate,
    subset: &BTreeSet<usize>,
    ablation: AblationConfig,
    cores: usize,
    fastpath: bool,
    jit: bool,
    cfg: &SynthConfig,
) -> bool {
    let ablation = AblationConfig { fastpath, jit, ..ablation };
    let prog = materialize(c, subset, cfg);
    match c.family {
        Family::StaleAlias => run_stale_oracle(&prog, c, ablation, cores, cfg.platform),
        Family::PhysProbe => run_phys_oracle(&prog, ablation, cores, cfg.platform),
        _ => run_exit_oracle(&prog, c, ablation, cores, cfg.platform),
    }
}

// ---------------------------------------------------------------------
// Sweep and report
// ---------------------------------------------------------------------

/// A shrunk escaping attack.
#[derive(Debug, Clone)]
pub struct ShrunkAttack {
    pub attack: String,
    pub steps: usize,
    pub shrunk_steps: usize,
}

/// Aggregate outcome of one ablation column (or the all-on baseline).
#[derive(Debug, Clone, Default)]
pub struct AblationOutcome {
    pub defense: &'static str,
    pub runs: u64,
    pub escapes: u64,
    pub distinct_attacks: Vec<String>,
    pub shrunk: Vec<ShrunkAttack>,
}

/// The full corpus report (`BENCH_attack_corpus.json`).
#[derive(Debug, Clone)]
pub struct AttackCorpusReport {
    pub seed: u64,
    pub candidates: usize,
    pub runs: u64,
    pub families: Vec<(&'static str, usize)>,
    pub defenses_on: AblationOutcome,
    pub ablations: Vec<AblationOutcome>,
}

impl AttackCorpusReport {
    /// Contract violations: any escape with defenses on, a family count
    /// under 5, or fewer than [`ESCAPE_FLOOR`] distinct escapes under an
    /// ablated *security* defense (cost-model ablations must stay at
    /// zero escapes like the baseline).
    pub fn problems(&self) -> Vec<String> {
        let mut out = Vec::new();
        for a in &self.defenses_on.distinct_attacks {
            out.push(format!("escape with all defenses on: {a}"));
        }
        if self.families.len() < 5 {
            out.push(format!("only {} attack families generated", self.families.len()));
        }
        let security: Vec<&str> = SECURITY_DEFENSES.iter().map(|d| d.name()).collect();
        for col in &self.ablations {
            if security.contains(&col.defense) {
                if col.distinct_attacks.len() < ESCAPE_FLOOR {
                    out.push(format!(
                        "only {} distinct attacks escape with `{}` ablated (need ≥{})",
                        col.distinct_attacks.len(),
                        col.defense,
                        ESCAPE_FLOOR
                    ));
                }
            } else if col.escapes != 0 {
                out.push(format!("{} escapes under cost-model ablation `{}` (must be 0)", col.escapes, col.defense));
            }
        }
        out
    }

    pub fn ok(&self) -> bool {
        self.problems().is_empty()
    }

    /// Single-line JSON, byte-deterministic for a given config (fixed
    /// family and defense ordering, sorted attack ids — no hash-map
    /// iteration anywhere).
    pub fn to_json(&self) -> String {
        let families: Vec<String> =
            self.families.iter().map(|(name, n)| format!(r#"{{"name":"{name}","candidates":{n}}}"#)).collect();
        let col_json = |col: &AblationOutcome| {
            let attacks: Vec<String> = col.distinct_attacks.iter().map(|a| format!("\"{a}\"")).collect();
            let shrunk: Vec<String> = col
                .shrunk
                .iter()
                .map(|s| {
                    format!(r#"{{"attack":"{}","steps":{},"shrunk_steps":{}}}"#, s.attack, s.steps, s.shrunk_steps)
                })
                .collect();
            format!(
                r#"{{"defense":"{}","runs":{},"escapes":{},"distinct_attacks":[{}],"shrunk":[{}]}}"#,
                col.defense,
                col.runs,
                col.escapes,
                attacks.join(","),
                shrunk.join(",")
            )
        };
        let ablations: Vec<String> = self.ablations.iter().map(col_json).collect();
        format!(
            r#"{{"benchmark":"attack_corpus","seed":{},"candidates":{},"runs":{},"families":[{}],"defenses_on":{},"ablations":[{}],"problems":{}}}"#,
            self.seed,
            self.candidates,
            self.runs,
            families.join(","),
            col_json(&self.defenses_on),
            ablations.join(","),
            self.problems().len(),
        )
    }
}

/// Run the full synthesis sweep: every candidate under the all-on
/// baseline and every single-defense-off ablation, across the
/// `cores × fastpath` matrix, ddmin-shrinking every escape.
pub fn run_synthesis(cfg: &SynthConfig) -> AttackCorpusReport {
    let candidates = generate(cfg);
    let mut runs = 0u64;

    let sweep = |ablation: AblationConfig, defense: &'static str, shrink: bool| -> AblationOutcome {
        let mut col = AblationOutcome { defense, ..AblationOutcome::default() };
        let mut distinct: BTreeSet<String> = BTreeSet::new();
        for c in &candidates {
            let mut escaping_cell: Option<(usize, bool, bool)> = None;
            for &cores in &cfg.cores {
                for &fp in &cfg.fastpaths {
                    for &jit in &cfg.jits {
                        col.runs += 1;
                        if run_candidate(c, &c.all_steps(), ablation, cores, fp, jit, cfg) {
                            col.escapes += 1;
                            distinct.insert(c.id());
                            escaping_cell.get_or_insert((cores, fp, jit));
                        }
                    }
                }
            }
            if shrink {
                if let Some((cores, fp, jit)) = escaping_cell {
                    let shrunk =
                        ddmin_set(&c.all_steps(), |s| run_candidate(c, s, ablation, cores, fp, jit, cfg).then_some(()));
                    if let Some((minimal, ())) = shrunk {
                        col.shrunk.push(ShrunkAttack {
                            attack: c.id(),
                            steps: c.steps.len(),
                            shrunk_steps: minimal.len(),
                        });
                    }
                }
            }
        }
        col.distinct_attacks = distinct.into_iter().collect();
        col.shrunk.sort_by(|a, b| a.attack.cmp(&b.attack));
        col
    };

    let defenses_on = sweep(AblationConfig::default(), "none", false);
    runs += defenses_on.runs;
    let mut ablations = Vec::new();
    for d in ALL_DEFENSES {
        let col = sweep(AblationConfig::with_defense_off(d), d.name(), cfg.shrink);
        runs += col.runs;
        ablations.push(col);
    }

    let mut families: Vec<(&'static str, usize)> = Vec::new();
    for f in ALL_FAMILIES {
        families.push((f.name(), candidates.iter().filter(|c| c.family == f).count()));
    }

    AttackCorpusReport { seed: cfg.seed, candidates: candidates.len(), runs, families, defenses_on, ablations }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic_and_diverse() {
        let cfg = SynthConfig::reduced(0xFEED);
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.steps, y.steps);
            assert_eq!(x.id(), y.id());
        }
        let fams: BTreeSet<&str> = a.iter().map(|c| c.family.name()).collect();
        assert!(fams.len() >= 5, "need ≥5 families, got {fams:?}");
    }

    #[test]
    fn forged_gate_call_killed_with_check_phase_on() {
        let cfg = SynthConfig::reduced(1);
        let c = generate(&cfg).into_iter().find(|c| c.family == Family::GateAbuse).expect("gate candidate");
        assert!(
            !run_candidate(
                &c,
                &c.all_steps(),
                AblationConfig::default(),
                1,
                lz_machine::default_fastpath(),
                lz_machine::default_jit(),
                &cfg
            ),
            "gate abuse must be defeated with the check phase on"
        );
    }

    #[test]
    fn forged_gate_call_escapes_without_check_phase() {
        let cfg = SynthConfig::reduced(1);
        let c = generate(&cfg).into_iter().find(|c| c.family == Family::GateAbuse).expect("gate candidate");
        assert!(
            run_candidate(
                &c,
                &c.all_steps(),
                AblationConfig::with_defense_off(Defense::GateCheckPhase),
                1,
                lz_machine::default_fastpath(),
                lz_machine::default_jit(),
                &cfg
            ),
            "forged gate call must land in the victim domain without the check phase"
        );
    }

    #[test]
    fn phys_probe_polarity() {
        let cfg = SynthConfig::reduced(2);
        let c = generate(&cfg).into_iter().find(|c| c.family == Family::PhysProbe).expect("probe candidate");
        let fp = lz_machine::default_fastpath();
        let jit = lz_machine::default_jit();
        assert!(
            !run_candidate(&c, &c.all_steps(), AblationConfig::default(), 1, fp, jit, &cfg),
            "randomized fake roots must not leak the real layout"
        );
        assert!(
            run_candidate(
                &c,
                &c.all_steps(),
                AblationConfig::with_defense_off(Defense::RandomizePhys),
                1,
                fp,
                jit,
                &cfg
            ),
            "identity fake-phys must leak a real table root"
        );
    }

    #[test]
    fn stale_alias_polarity() {
        let cfg = SynthConfig::reduced(3);
        let c = generate(&cfg).into_iter().find(|c| c.family == Family::StaleAlias).expect("stale candidate");
        let fp = lz_machine::default_fastpath();
        let jit = lz_machine::default_jit();
        assert!(
            !run_candidate(&c, &c.all_steps(), AblationConfig::default(), 4, fp, jit, &cfg),
            "IPI shootdown must kill the stale alias"
        );
        assert!(
            run_candidate(
                &c,
                &c.all_steps(),
                AblationConfig::with_defense_off(Defense::RemoteShootdown),
                4,
                fp,
                jit,
                &cfg
            ),
            "skipping the remote shootdown must leave the stale alias live"
        );
        assert!(
            !run_candidate(
                &c,
                &c.all_steps(),
                AblationConfig::with_defense_off(Defense::RemoteShootdown),
                1,
                fp,
                jit,
                &cfg
            ),
            "on one core the local invalidate alone must defeat the attack"
        );
    }
}
