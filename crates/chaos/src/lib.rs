//! Deterministic chaos harness for the LightZone isolation stack.
//!
//! The injection engine itself lives in [`lz_machine::chaos`]: a
//! [`lz_machine::FaultPlan`] derives one decision stream per
//! [`lz_machine::FaultSite`] from its seed, and every hook in the
//! machine/kernel/module consults the engine only at *modelled* events
//! (trap boundaries, interpreted TLBIs, shootdown round trips,
//! scheduling slices), so a run under a given plan is byte-reproducible
//! and independent of host-side caches such as the fetch cache or the
//! data-side fast path.
//!
//! This crate is the harness around that engine:
//!
//! * [`programs`] — the seeded program generators (shared with
//!   `tests/differential.rs`) and the four chaos scenarios built from
//!   them: plain randomized programs, self-modifying programs with EL1
//!   TLB maintenance, the LightZone domain-switching composite, and the
//!   SMP clone/futex/munmap workload.
//! * [`invariants`] — [`invariants::ChaosInvariants`]: the fail-closed
//!   checks run after every scenario (TLB coherence against a
//!   fresh-walk oracle, W^X and stage-2 containment for LightZone
//!   VMIDs, fake-physical bijectivity, journal boundedness).
//! * [`soak`] — the clean-vs-chaos containment differential, the soak
//!   driver that accumulates a target number of injected faults with
//!   zero invariant violations, and the ddmin schedule shrinker that
//!   reduces a failing plan to a 1-minimal replayed fault schedule.
//! * [`attacks`] — the shared attack-primitive library: the §7.2
//!   penetration-test bodies (domain setups, W^X double views,
//!   sensitive-instruction payloads) plus composable gate-abuse,
//!   kernel-context and layout-probe primitives.
//! * [`synth`] — the seeded attack synthesizer: composes primitives
//!   into candidate exploits, sweeps them over every defense ablation
//!   polarity on 1- and 4-core machines, asserts the defeat/escape
//!   oracle, and ddmin-shrinks every escape to a minimal exploit.

pub mod attacks;
pub mod invariants;
pub mod programs;
pub mod soak;
pub mod synth;

pub use invariants::ChaosInvariants;
pub use programs::{run_scenario, Scenario, ScenarioRun, ALL_SCENARIOS};
pub use soak::{ddmin_set, run_soak, shrink_plan, verify_plan, SoakReport};
pub use synth::{run_synthesis, AttackCorpusReport, SynthConfig};
