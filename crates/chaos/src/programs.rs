//! Seeded program generators and the four chaos scenarios.
//!
//! The generator half (the randomized, self-modifying, trap-and-resume
//! program builder plus its bare-machine harness) is the single source
//! shared with `tests/differential.rs` — the differential suite and the
//! chaos soak must drive the *same* programs, or a containment argument
//! proven here would not transfer there.
//!
//! The scenario half wraps each generator into a [`run_scenario`] entry
//! point that installs an optional [`FaultPlan`], runs to completion,
//! snapshots a cycle-independent digest of the architecturally visible
//! outcome (chaos may legally degrade throughput, never results), and
//! runs the [`ChaosInvariants`] checks.

use crate::invariants::ChaosInvariants;
use lz_arch::asm::Asm;
use lz_arch::esr::{self, ExceptionClass};
use lz_arch::insn::Insn;
use lz_arch::pstate::{ExceptionLevel, PState};
use lz_arch::sysreg::{hcr, sctlr, ttbr, SysReg};
use lz_arch::Platform;
use lz_machine::pte::S1Perms;
use lz_machine::walk::{alloc_table, s1_map_page};
use lz_machine::{Exit, FaultPlan, FaultSite, Machine};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

pub const CODE: u64 = 0x40_0000;
pub const PATCH: u64 = CODE + 0x3000;
pub const DATA: u64 = 0x50_0000;
pub const NOP: u32 = 0xD503_201F;
/// `tlbi vmalle1` (op0=01, op1=000, CRn=8, CRm=7, op2=0).
const TLBI_VMALLE1: u32 = 0xD508_871F;
/// EL1-executable stub page for the TLB-maintenance phase.
const EL1_STUB: u64 = 0x60_0000;

pub fn user_rwx() -> S1Perms {
    // Writable + executable so self-modifying stores are legal (WXN off).
    S1Perms { read: true, write: true, user_exec: true, priv_exec: false, el0: true, global: false }
}

pub fn user_rw() -> S1Perms {
    S1Perms { read: true, write: true, user_exec: false, priv_exec: false, el0: true, global: false }
}

/// Build one machine: 4 code pages at `CODE` (the last is the patch
/// area), 2 data pages at `DATA`, stage-1 only, TGE host semantics.
pub fn build_machine(code: &[u8], patch: &[u8], cache_on: bool) -> Machine {
    let mut m = Machine::new(Platform::CortexA55);
    m.set_fetch_cache(cache_on);
    let root = alloc_table(&mut m.mem);
    for page in 0..4u64 {
        let pa = m.mem.alloc_frame();
        s1_map_page(&mut m.mem, root, CODE + page * 0x1000, pa, user_rwx());
        let src = if page == 3 {
            patch
        } else {
            let lo = (page * 0x1000) as usize;
            if lo >= code.len() {
                &[]
            } else {
                &code[lo..code.len().min(lo + 0x1000)]
            }
        };
        m.mem.write_bytes(pa, src);
    }
    for page in 0..2u64 {
        let pa = m.mem.alloc_frame();
        s1_map_page(&mut m.mem, root, DATA + page * 0x1000, pa, user_rw());
    }
    m.set_sysreg(SysReg::TTBR0_EL1, ttbr::pack(1, root));
    m.set_sysreg(SysReg::SCTLR_EL1, sctlr::M | sctlr::SPAN);
    m.set_sysreg(SysReg::HCR_EL2, hcr::TGE | hcr::E2H);
    m.trace.set_enabled(true);
    m.cpu.pstate = PState::user();
    m.cpu.pc = CODE;
    m
}

/// Everything a program can observe about one run.
#[derive(Debug, PartialEq)]
pub struct Snapshot {
    pub exit: Exit,
    pub resumes: u32,
    pub pc: u64,
    pub regs: Vec<u64>,
    pub cycles: u64,
    pub insns: u64,
    pub tlb_stats: (u64, u64),
    pub l2_hits: u64,
    pub trace: Vec<(u64, u32, ExceptionLevel)>,
}

pub fn snapshot(m: &Machine, exit: Exit, resumes: u32) -> Snapshot {
    Snapshot {
        exit,
        resumes,
        pc: m.cpu.pc,
        regs: (0..31).map(|i| m.cpu.reg(i)).collect(),
        cycles: m.cpu.cycles,
        insns: m.cpu.insns,
        tlb_stats: m.tlb.stats(),
        l2_hits: m.tlb.l2_hit_count(),
        trace: m.trace.entries().map(|e| (e.pc, e.word, e.el)).collect(),
    }
}

/// Run until `svc #0` (program exit) or a non-SVC exception; `svc #k`
/// with `k != 0` is treated as a trap the host resumes from.
pub fn run_to_completion(m: &mut Machine) -> (Exit, u32) {
    let mut resumes = 0u32;
    loop {
        let exit = m.run(200_000);
        match exit {
            Exit::El2(ExceptionClass::Svc) => {
                if esr::esr_imm(m.sysreg(SysReg::ESR_EL2)) == 0 {
                    return (exit, resumes);
                }
                resumes += 1;
                let elr = m.sysreg(SysReg::ELR_EL2);
                m.enter(PState::user(), elr);
            }
            other => return (other, resumes),
        }
    }
}

/// A patch area of `slots` NOP words followed by `ret`, at `PATCH`.
pub fn patch_area(slots: usize) -> Vec<u8> {
    let mut a = Asm::new(PATCH);
    for _ in 0..slots {
        a.nop();
    }
    a.ret();
    a.bytes()
}

/// Candidate instruction words a self-modifying store may plant in a
/// patch slot. All are safe at EL0 and side-effect-bounded.
fn plantable(rng: &mut StdRng) -> u32 {
    match rng.random_range(0u32..4) {
        0 => NOP,
        1 => Insn::AddImm {
            rd: 0,
            rn: 0,
            imm12: rng.random_range(0u16..64),
            shift12: false,
            sub: false,
            set_flags: false,
        }
        .encode(),
        2 => Insn::Movz { rd: rng.random_range(2u8..8), imm16: rng.random_range(0u16..1000), hw: 0 }.encode(),
        _ => Insn::AddImm { rd: 1, rn: 1, imm12: 1, shift12: false, sub: true, set_flags: false }.encode(),
    }
}

/// Emit one seeded random program. Structure:
///
/// * prologue: base registers x19/x20 (data pages), x21 (patch area),
///   seed immediates in x0..x7;
/// * `blr` into the patch area (populates the decoded-block cache);
/// * `len` random body instructions: ALU, loads/stores, compares,
///   forward conditional branches, resumable traps, and stores of
///   instruction words into patch slots;
/// * `blr` into the patch area again (patched words must now execute);
/// * `svc #0`.
pub fn random_program(seed: u64, len: usize, slots: usize) -> (Vec<u8>, Vec<u8>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut a = Asm::new(CODE);
    a.mov_imm64(19, DATA);
    a.mov_imm64(20, DATA + 0x1000);
    a.mov_imm64(21, PATCH);
    for r in 0..8u8 {
        a.mov_imm64(r, rng.raw_u64() & 0xffff_ffff);
    }
    a.mov_imm64(10, PATCH);
    a.blr(10);
    // A short counted loop so even store-heavy programs re-fetch some
    // code and give the decoded-block cache something to hit.
    a.mov_imm64(11, 64);
    let warm = a.label();
    a.bind(warm);
    a.add_imm(12, 12, 1);
    a.subs_imm(11, 11, 1);
    a.b_ne(warm);
    for _ in 0..len {
        match rng.random_range(0u32..100) {
            0..=39 => {
                // ALU on x0..x7.
                let (rd, rn, rm) = (rng.random_range(0u8..8), rng.random_range(0u8..8), rng.random_range(0u8..8));
                match rng.random_range(0u32..8) {
                    0 => a.add_reg(rd, rn, rm),
                    1 => a.sub_reg(rd, rn, rm),
                    2 => a.and_reg(rd, rn, rm),
                    3 => a.orr_reg(rd, rn, rm),
                    4 => a.eor_reg(rd, rn, rm),
                    5 => a.mul(rd, rn, rm),
                    6 => a.add_imm(rd, rn, rng.random_range(0u16..4096)),
                    _ => a.lsr_imm(rd, rn, rng.random_range(1u8..32)),
                };
            }
            40..=64 => {
                // Load/store within the mapped data pages.
                let base = if rng.random_bool() { 19 } else { 20 };
                let off = rng.random_range(0u64..512) * 8;
                let rt = rng.random_range(0u8..8);
                if rng.random_bool() {
                    a.str(rt, base, off);
                } else {
                    a.ldr(rt, base, off);
                }
            }
            65..=79 => {
                // Compare + short forward conditional skip.
                let (rn, imm) = (rng.random_range(0u8..8), rng.random_range(0u16..100));
                a.cmp_imm(rn, imm);
                let skip = a.label();
                if rng.random_bool() {
                    a.b_eq(skip);
                } else {
                    a.b_ne(skip);
                }
                for _ in 0..rng.random_range(1u32..4) {
                    let rd = rng.random_range(0u8..8);
                    a.add_imm(rd, rd, 1);
                }
                a.bind(skip);
            }
            80..=89 => {
                // Self-modifying store: plant (insn, NOP) into a patch slot.
                let slot = rng.random_range(0u64..(slots as u64 / 2)) * 2;
                let pair = (NOP as u64) << 32 | plantable(&mut rng) as u64;
                a.mov_imm64(9, pair);
                a.str(9, 21, slot * 4);
            }
            _ => {
                // Resumable trap.
                a.svc(rng.random_range(1u16..100));
            }
        }
    }
    a.mov_imm64(10, PATCH);
    a.blr(10);
    a.svc(0);
    let bytes = a.bytes();
    assert!(bytes.len() <= 3 * 0x1000, "random body overflowed the code pages");
    (bytes, patch_area(slots))
}

// ----------------------------------------------------------------------
// Scenarios.
// ----------------------------------------------------------------------

/// One chaos scenario: a seeded program generator plus the harness that
/// drives it and knows what its clean outcome looks like.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// Bare-machine randomized program (ALU/loads/branches/traps).
    Randomized,
    /// Randomized self-modifying program followed by an EL1 phase that
    /// issues interpreted TLB maintenance (exercises the TLBI sites).
    SelfModifying,
    /// The LightZone composite: four TTBR domains, gate switches, a W^X
    /// JIT cycle, lazy stage-2, and a syscall loop (exercises the VE
    /// trap, stage-2, gate, and sanitizer sites).
    DomainSwitching,
    /// The SMP clone/futex/munmap workload on a multi-core machine
    /// (exercises the shootdown and scheduler-preemption sites).
    Smp,
}

pub const ALL_SCENARIOS: [Scenario; 4] =
    [Scenario::Randomized, Scenario::SelfModifying, Scenario::DomainSwitching, Scenario::Smp];

impl Scenario {
    pub fn name(&self) -> &'static str {
        match self {
            Scenario::Randomized => "randomized",
            Scenario::SelfModifying => "self_modifying",
            Scenario::DomainSwitching => "domain_switching",
            Scenario::Smp => "smp",
        }
    }
}

/// Everything the soak driver needs to know about one scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioRun {
    /// Cycle-independent digest of the architecturally visible outcome.
    /// Chaos may change cycle counts (degraded throughput is allowed by
    /// the fail-closed contract) but never this digest — unless the run
    /// ended in a precise guest-side kill, reported via `killed`.
    pub digest: String,
    /// The run ended in a guest-side kill or fault (allowed under chaos).
    pub killed: bool,
    /// Faults injected / handled-and-contained by the hooks, and VE
    /// kills, as counted by the machine's chaos state.
    pub injected: u64,
    pub contained: u64,
    pub ve_kills: u64,
    /// The exact `(seq, site)` schedule that fired (for shrinking).
    pub fired: Vec<(u64, FaultSite)>,
    /// Full metrics journal as JSON (byte-compared for determinism).
    pub journal_json: String,
    /// Events evicted from the bounded journal during the run.
    pub journal_dropped: u64,
    /// Invariant violations found after the run (must stay empty).
    pub violations: Vec<String>,
}

fn chaos_outcome(m: &Machine, digest: String, killed: bool, violations: Vec<String>) -> ScenarioRun {
    ScenarioRun {
        digest,
        killed,
        injected: m.chaos.faults_injected,
        contained: m.chaos.faults_contained,
        ve_kills: m.chaos.ve_kills,
        fired: m.chaos.fired.clone(),
        journal_json: m.journal.dump_json(),
        journal_dropped: m.journal.dropped(),
        violations,
    }
}

/// Run one scenario under an optional fault plan and check invariants.
pub fn run_scenario(scenario: Scenario, seed: u64, plan: Option<&FaultPlan>) -> ScenarioRun {
    match scenario {
        Scenario::Randomized => run_randomized(seed, plan),
        Scenario::SelfModifying => run_self_modifying(seed, plan),
        Scenario::DomainSwitching => run_domain_switching(seed, plan),
        Scenario::Smp => run_smp(seed, plan),
    }
}

fn bare_digest(m: &Machine, exit: Exit, resumes: u32, extra: &str) -> String {
    let regs: Vec<u64> = (0..31).map(|i| m.cpu.reg(i)).collect();
    format!("{exit:?}|r{resumes}|pc{:#x}|{regs:x?}|{extra}", m.cpu.pc)
}

fn run_randomized(seed: u64, plan: Option<&FaultPlan>) -> ScenarioRun {
    let (code, patch) = random_program(seed, 300, 64);
    let mut m = build_machine(&code, &patch, true);
    m.set_metrics(true);
    if let Some(p) = plan {
        m.chaos.install(p.clone());
    }
    let (exit, resumes) = run_to_completion(&mut m);
    let digest = bare_digest(&m, exit, resumes, "");
    let killed = exit != Exit::El2(ExceptionClass::Svc);
    let violations = ChaosInvariants::check_machine(&m);
    chaos_outcome(&m, digest, killed, violations)
}

fn run_self_modifying(seed: u64, plan: Option<&FaultPlan>) -> ScenarioRun {
    let (code, patch) = random_program(seed ^ 0x5e1f_0d1f_5e1f_0d1f, 400, 64);
    let mut m = build_machine(&code, &patch, true);
    m.set_metrics(true);
    // EL1 stub: interpreted TLB maintenance after the self-modifying
    // phase, ending in an `hvc` marker (SVC/BRK from EL1 stay at EL1;
    // only HVC exits to the host). The TLBI instructions are the
    // modelled events the TlbiLost/TlbiSpurious sites hang off.
    let root = ttbr::baddr(m.sysreg(SysReg::TTBR0_EL1));
    let stub_pa = m.mem.alloc_frame();
    let el1_rx = S1Perms { read: true, write: false, user_exec: false, priv_exec: true, el0: false, global: false };
    s1_map_page(&mut m.mem, root, EL1_STUB, stub_pa, el1_rx);
    let mut a = Asm::new(EL1_STUB);
    for _ in 0..8 {
        a.raw(TLBI_VMALLE1);
        a.nop();
    }
    a.hvc(0x7f);
    m.mem.write_bytes(stub_pa, &a.bytes());
    if let Some(p) = plan {
        m.chaos.install(p.clone());
    }
    let (exit, resumes) = run_to_completion(&mut m);
    // Drop TGE so the machine is a genuine EL1&0 regime for the stub
    // (under TGE the interpreted TLBIs would be host-side concepts).
    m.set_sysreg(SysReg::HCR_EL2, hcr::E2H);
    let el1 = PState { el: ExceptionLevel::El1, pan: false, irq_masked: false, nzcv: Default::default() };
    m.enter(el1, EL1_STUB);
    let exit2 = m.run(64);
    let digest = bare_digest(&m, exit, resumes, &format!("{exit2:?}"));
    let killed = exit != Exit::El2(ExceptionClass::Svc) || exit2 != Exit::El2(ExceptionClass::Hvc);
    let violations = ChaosInvariants::check_machine(&m);
    chaos_outcome(&m, digest, killed, violations)
}

fn run_domain_switching(seed: u64, plan: Option<&FaultPlan>) -> ScenarioRun {
    use lightzone::api::{LzAsm, LzProgramBuilder, RW, SAN_TTBR};
    use lightzone::module::AblationConfig;
    use lightzone::{LightZone, SECURITY_KILL};
    const ARENA: u64 = 0x5000_0000;
    const JIT: u64 = 0x61_0000;

    let yields = 8 + (seed % 9);
    let mut b = LzProgramBuilder::new(CODE);
    b.with_anon_segment(ARENA, 8 * 4096, lz_kernel::VmProt::RW);
    let mut jit_seed = Asm::new(JIT);
    jit_seed.nop();
    jit_seed.ret();
    b.with_segment(JIT, jit_seed.bytes(), lz_kernel::VmProt::RWX);
    b.asm.lz_enter(true, SAN_TTBR);
    // Four TTBR domains over the arena, one call gate per switch site.
    for d in 0..4u64 {
        b.asm.lz_alloc();
        b.asm.lz_prot_imm(ARENA + d * 4096, 4096, d + 1, RW);
    }
    for round in 0..8u64 {
        b.asm.lz_map_gate_pgt_imm(round % 4 + 1, round);
    }
    for round in 0..8u64 {
        let d = round % 4;
        b.lz_switch_to_ttbr_gate(round as u16);
        b.asm.mov_imm64(1, ARENA + d * 4096);
        b.asm.ldr(2, 1, 0);
        b.asm.add_imm(2, 2, 1);
        b.asm.str(2, 1, 0);
    }
    // W^X cycle on the JIT page: execute (scan), rewrite through the
    // writable flip (break-before-make), execute again (rescan).
    b.asm.mov_imm64(17, JIT);
    b.asm.blr(17);
    b.asm.mov_imm64(1, JIT);
    b.asm.mov_imm64(2, Insn::Movz { rd: 9, imm16: 7, hw: 0 }.encode() as u64);
    b.asm.emit(Insn::StrImm { rt: 2, rn: 1, offset: 0, size: lz_arch::insn::MemSize::W });
    b.asm.mov_imm64(17, JIT);
    b.asm.blr(17);
    b.asm.mov_imm64(23, yields);
    b.asm.mov_imm64(8, lz_kernel::Sysno::Yield.nr());
    let top = b.asm.label();
    b.asm.bind(top);
    b.asm.svc(0);
    b.asm.subs_imm(23, 23, 1);
    b.asm.b_ne(top);
    b.asm.exit_imm(0);
    let prog = b.build();

    // Lazy stage-2 so the stage-2 fault path (and its chaos site) runs.
    let ablation = AblationConfig { eager_stage2: false, ..AblationConfig::default() };
    let mut lz = LightZone::with_ablation(Platform::CortexA55, false, ablation);
    lz.kernel.machine.set_metrics(true);
    if let Some(p) = plan {
        lz.kernel.machine.chaos.install(p.clone());
    }
    let pid = lz.spawn(&prog);
    lz.enter_process(pid);
    let mut violations = Vec::new();
    let code = match lz.run(50_000_000) {
        lz_kernel::Event::Exited(code) => code,
        other => {
            violations.push(format!("domain_switching run ended in {other:?} instead of an exit"));
            i64::MIN
        }
    };
    let digest = format!("exit:{code}");
    let killed = code == SECURITY_KILL || code == -11;
    violations.extend(ChaosInvariants::check_lightzone(&lz, pid));
    chaos_outcome(&lz.kernel.machine, digest, killed, violations)
}

fn run_smp(seed: u64, plan: Option<&FaultPlan>) -> ScenarioRun {
    use lz_kernel::syscall::futex;
    use lz_kernel::{Kernel, Program, SmpConfig, Sysno};
    const SHARED: u64 = 0x50_0000;
    const ARENA: u64 = 0x5100_0000;
    const STACKS: u64 = 0x7000_0000;
    const WORKERS: u64 = 3;

    let iters = 200 + (seed % 4) as u16 * 100;
    let cores = if seed & 0x10 != 0 { 4 } else { 2 };

    // main: clone WORKERS workers, futex-join each, exit with the slot
    // sum. worker i: pound its own arena page, munmap it (IPI shootdown
    // traffic), post slot i, futex-wake.
    let mut a = Asm::new(CODE);
    let worker = a.label();
    for i in 0..WORKERS {
        a.adr(0, worker);
        a.mov_imm64(1, STACKS + (i + 1) * 0x4000);
        a.mov_imm64(2, i);
        a.mov_imm64(8, Sysno::Clone.nr());
        a.svc(0);
    }
    for i in 0..WORKERS {
        a.mov_imm64(11, SHARED + i * 8);
        let wait = a.label();
        let done = a.label();
        a.bind(wait);
        a.ldr(4, 11, 0);
        a.cbnz(4, done);
        a.mov_reg(0, 11);
        a.mov_imm64(1, futex::WAIT);
        a.movz(2, 0, 0);
        a.mov_imm64(8, Sysno::Futex.nr());
        a.svc(0);
        a.b(wait);
        a.bind(done);
    }
    a.movz(3, 0, 0);
    for i in 0..WORKERS {
        a.mov_imm64(11, SHARED + i * 8);
        a.ldr(4, 11, 0);
        a.add_reg(3, 3, 4);
    }
    a.mov_reg(0, 3);
    a.mov_imm64(8, Sysno::Exit.nr());
    a.svc(0);
    a.bind(worker);
    a.mov_reg(19, 0); // worker index
    a.mov_imm64(9, ARENA);
    a.lsl_imm(10, 19, 12);
    a.add_reg(9, 9, 10);
    a.movz(1, iters, 0);
    let top = a.label();
    a.bind(top);
    a.ldr(2, 9, 0);
    a.add_imm(2, 2, 1);
    a.str(2, 9, 0);
    a.sub_imm(1, 1, 1);
    a.cbnz(1, top);
    a.mov_reg(0, 9);
    a.mov_imm64(1, 4096);
    a.mov_imm64(8, Sysno::Munmap.nr());
    a.svc(0);
    a.mov_imm64(12, SHARED);
    a.lsl_imm(11, 19, 3);
    a.add_reg(11, 12, 11);
    a.movz(13, 1, 0);
    a.str(13, 11, 0);
    a.mov_reg(0, 11);
    a.mov_imm64(1, futex::WAKE);
    a.movz(2, 1, 0);
    a.mov_imm64(8, Sysno::Futex.nr());
    a.svc(0);
    a.movz(0, 0, 0);
    a.mov_imm64(8, Sysno::Exit.nr());
    a.svc(0);
    let prog = Program::from_code(CODE, a.bytes())
        .with_anon_segment(SHARED, 4096, lz_kernel::VmProt::RW)
        .with_anon_segment(ARENA, WORKERS * 4096, lz_kernel::VmProt::RW)
        .with_anon_segment(STACKS, (WORKERS + 1) * 0x4000, lz_kernel::VmProt::RW);

    let mut k = Kernel::new_host(Platform::CortexA55);
    k.machine.set_metrics(true);
    if let Some(p) = plan {
        k.machine.chaos.install(p.clone());
    }
    let pid = k.spawn(&prog);
    let run = k.run_smp(SmpConfig { cores, quantum: 64, seed: seed ^ 0x5eed }, 10_000_000);
    // The process exit code is the *last* thread's code, which depends
    // on legal thread-completion order (preemption may reorder it), so
    // it cannot be part of the containment digest. The posted futex
    // slots are: every worker must have written its slot exactly once,
    // whatever order the threads finished in.
    let slot_pa = k.process(pid).mm.page_at(SHARED);
    let slots: Vec<u64> =
        (0..WORKERS).map(|i| slot_pa.and_then(|pa| k.machine.mem.read_u64(pa + i * 8)).unwrap_or(u64::MAX)).collect();
    let digest = format!("slots:{slots:?}|exited:{}|stalled:{}", run.exited.len(), run.stalled);
    // The SMP sites (preemption, shootdown drop/dup/delay) are all
    // invisible-after-containment: the workload must still complete with
    // the same exit codes, so a chaos run never reports `killed`.
    let killed = false;
    let mut violations = Vec::new();
    for c in 0..cores {
        k.machine.switch_core(c);
        for v in ChaosInvariants::check_machine(&k.machine) {
            violations.push(format!("core {c}: {v}"));
        }
    }
    chaos_outcome(&k.machine, digest, killed, violations)
}
