//! Post-run fail-closed invariant checks.
//!
//! Fault handling is written to the fail-closed rule (an injected fault
//! may cost cycles or kill its VE, never widen access); these checks
//! verify the rule against the machine state instead of trusting it.
//! They are pure observers: every probe walks through scratch TLBs, so
//! checking never perturbs the machine being checked.

use lightzone::LightZone;
use lz_arch::pstate::ExceptionLevel;
use lz_kernel::Pid;
use lz_machine::walk::{translate, AccessCtx};
use lz_machine::{Access, Machine, Tlb};

/// The invariant suite. All checks return human-readable violation
/// descriptions; an empty vector means the state is clean.
pub struct ChaosInvariants;

impl ChaosInvariants {
    /// Machine-level invariants: the bounded journal and the TLB
    /// coherence oracle.
    ///
    /// The oracle re-derives every resident TLB entry that is walkable
    /// under the *current* translation regime (same VMID, and same ASID
    /// unless the entry is global) from the page tables: each capability
    /// the entry claims (read / write / fetch) must be grantable by a
    /// fresh walk, and must resolve to the same physical page. A cached
    /// entry a fresh walk would deny is exactly "access a non-faulted
    /// run would deny" — the thing chaos must never produce.
    pub fn check_machine(m: &Machine) -> Vec<String> {
        let mut out = Vec::new();
        if m.journal.len() > m.journal.capacity() {
            out.push(format!(
                "journal exceeded its bound: {} events in a {}-slot ring",
                m.journal.len(),
                m.journal.capacity()
            ));
        }
        let cfg = m.walk_config();
        if !cfg.s1_enabled {
            return out;
        }
        for (vmid, va, entry) in m.tlb.resident_entries() {
            if vmid != cfg.vmid() {
                continue;
            }
            if let Some(asid) = entry.asid {
                if asid != cfg.asid() {
                    continue;
                }
            }
            let el = if entry.s1.el0 { ExceptionLevel::El0 } else { ExceptionLevel::El1 };
            let mut probes = Vec::new();
            if entry.s1.read {
                probes.push((Access::Read, el));
            }
            if entry.s1.write {
                probes.push((Access::Write, el));
            }
            if entry.s1.user_exec && entry.s1.el0 {
                probes.push((Access::Fetch, ExceptionLevel::El0));
            }
            if entry.s1.priv_exec && !entry.s1.el0 {
                probes.push((Access::Fetch, ExceptionLevel::El1));
            }
            for (access, el) in probes {
                // Scratch TLB: the probe must not touch the real one.
                let mut scratch = Tlb::new(8);
                let actx = AccessCtx { el, pan: false, unpriv: false };
                match translate(&m.mem, &mut scratch, &m.model, &cfg, va, access, &actx) {
                    Ok(t) => {
                        if t.pa >> 12 != entry.pa_page >> 12 {
                            out.push(format!(
                                "TLB entry for {va:#x} (vmid {vmid}) resolves to {:#x} but a \
                                 fresh walk yields {:#x}",
                                entry.pa_page,
                                t.pa & !0xfff
                            ));
                        }
                    }
                    Err(fault) => {
                        // A *global* entry (nG=0) legitimately outlives
                        // the address space that installed it: other
                        // live tables in the same VMID may map the page
                        // while the current one has not faulted it in
                        // yet, so an unmapped-here result proves
                        // nothing. A permission denial or a diverging
                        // physical page would still be flagged.
                        if entry.asid.is_none() && fault.kind == lz_machine::FaultKind::Translation {
                            continue;
                        }
                        out.push(format!(
                            "TLB entry for {va:#x} (vmid {vmid}) grants {access:?} at {el:?} \
                             but a fresh walk denies it: {fault:?}"
                        ));
                    }
                }
            }
        }
        out
    }

    /// LightZone-level invariants on top of the machine checks:
    ///
    /// * **fake-phys bijectivity** — the fake→real and real→fake maps
    ///   are exact inverses, so no two fake addresses alias one frame;
    /// * **W^X in the TLB** — no cached stage-1 translation for the
    ///   process's VMID is simultaneously writable and executable
    ///   (stage-2 is per-VMA and may legitimately stay W+X; stage 1 is
    ///   where the sanitizer's guarantee lives);
    /// * **stage-2 containment** — every cached translation for an
    ///   isolated VMID carries a stage-2 leaf, i.e. nothing inside a VE
    ///   ever translated around the backstop.
    ///
    /// A process the module no longer tracks (killed and torn down) has
    /// nothing left to check beyond the machine-level suite.
    pub fn check_lightzone(lz: &LightZone, pid: Pid) -> Vec<String> {
        let mut out = Self::check_machine(&lz.kernel.machine);
        let Some(proc) = lz.module.proc(pid) else {
            return out;
        };
        if !proc.fake.is_bijective() {
            out.push(format!("fake-phys map for pid {pid} is not a bijection"));
        }
        for (vmid, va, entry) in lz.kernel.machine.tlb.resident_entries() {
            if vmid != proc.vmid {
                continue;
            }
            if entry.s1.write && (entry.s1.user_exec || entry.s1.priv_exec) {
                out.push(format!("W^X violated in the TLB: {va:#x} (vmid {vmid}) cached writable+executable"));
            }
            if entry.s2.is_none() {
                out.push(format!(
                    "stage-2 containment violated: {va:#x} (vmid {vmid}) cached without a \
                     stage-2 leaf"
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lz_arch::Platform;
    use lz_machine::pte::S1Perms;
    use lz_machine::tlb::TlbEntry;

    #[test]
    fn fresh_machine_is_clean() {
        let m = Machine::new(Platform::CortexA55);
        assert!(ChaosInvariants::check_machine(&m).is_empty());
    }

    #[test]
    fn oracle_flags_stale_entry() {
        use lz_arch::sysreg::{sctlr, ttbr, SysReg};
        use lz_machine::walk::{alloc_table, s1_map_page};
        let mut m = Machine::new(Platform::CortexA55);
        let root = alloc_table(&mut m.mem);
        let pa = m.mem.alloc_frame();
        let rw = S1Perms { read: true, write: true, user_exec: false, priv_exec: false, el0: true, global: false };
        s1_map_page(&mut m.mem, root, 0x40_0000, pa, rw);
        m.set_sysreg(SysReg::TTBR0_EL1, ttbr::pack(1, root));
        m.set_sysreg(SysReg::SCTLR_EL1, sctlr::M | sctlr::SPAN);
        assert!(ChaosInvariants::check_machine(&m).is_empty());
        // Plant a TLB entry for an unmapped VA: the oracle must object.
        let entry = TlbEntry { asid: Some(1), pa_page: pa, s1: rw, s2: None };
        m.tlb.insert(0, 0x41_0000, entry);
        let problems = ChaosInvariants::check_machine(&m);
        assert!(!problems.is_empty(), "stale TLB entry not flagged");
        // And one whose target frame moved: also flagged.
        m.tlb.invalidate_all();
        let moved = TlbEntry { asid: Some(1), pa_page: pa + 0x1000, s1: rw, s2: None };
        m.tlb.insert(0, 0x40_0000, moved);
        let problems = ChaosInvariants::check_machine(&m);
        assert!(problems.iter().any(|p| p.contains("fresh walk yields")), "moved frame not flagged: {problems:?}");
    }
}
