//! Shared attack-primitive library: the §7.2 penetration-test bodies and
//! the composable exploit building blocks the attack synthesizer
//! ([`crate::synth`]) assembles into candidate programs.
//!
//! `tests/penetration.rs` and the synthesizer are built on the *same*
//! primitives, so a hand-written pen test and a synthesized attack
//! exercise one source of truth: if a primitive rots, both suites fail.
//!
//! Primitive taxonomy (DESIGN.md §12):
//!
//! * **direct access** — loads/stores into a PAN- or TTBR-protected
//!   victim domain from outside it;
//! * **gate abuse** — forged-`lr` gate calls, jumps into the *middle* of
//!   a gate stub (onto the phase-① `msr` with attacker-chosen x13, or
//!   straight into check phase ②), unregistered-gate calls;
//! * **sensitive-instruction injection** — Table 3 encodings planted in
//!   executable pages, including W^X double-view (PANIC-style) aliases
//!   that write the payload after the clean scan;
//! * **kernel-context abuse** — Garmr-class writes/executes against the
//!   TTBR1-mapped stub, gate-table and TTBR-table pages;
//! * **layout probes** — reads of `TTBRTab` entries trying to recover
//!   *real* physical frame addresses (defeated by fake-phys
//!   randomization).

use lightzone::api::{LzAsm, LzProgramBuilder, RW, SAN_PAN, SAN_TTBR, USER};
use lightzone::gate::{check_phase_offset, layout, switch_msr_offset};
use lightzone::pgt::{perm, PGT_ALL};
use lightzone::{AblationConfig, LightZone, LzProgram};
use lz_arch::asm::Asm;
use lz_arch::{Platform, PAGE_SIZE};
use lz_kernel::kvm::VmidAllocator;
use lz_kernel::{Event, VmProt};

/// Program text base (shared with the chaos program generators).
pub const CODE: u64 = 0x40_0000;
/// Protected-domain arena base (§7.2: 128 protected memory domains).
pub const ARENA: u64 = 0x5000_0000;
/// JIT page used by the W^X double-view attacks.
pub const JIT: u64 = 0x61_0000;
/// Domain count of the §7.2 penetration configuration.
pub const DOMAINS: u64 = 128;
/// READ | EXEC — the executor view's permissions.
pub const READ_EXEC: u64 = perm::READ | perm::EXEC;

/// Spawn `prog` under the paper-default config and run it to exit.
pub fn run(prog: &LzProgram, platform: Platform, guest: bool) -> i64 {
    let mut lz = if guest { LightZone::new_guest(platform) } else { LightZone::new_host(platform) };
    let pid = lz.spawn(prog);
    lz.enter_process(pid);
    lz.run_to_exit()
}

/// Spawn `prog` under an explicit ablation config and run it to exit.
pub fn run_with(prog: &LzProgram, platform: Platform, guest: bool, ablation: AblationConfig) -> i64 {
    let mut lz = LightZone::with_ablation(platform, guest, ablation);
    let pid = lz.spawn(prog);
    lz.enter_process(pid);
    lz.run_to_exit()
}

// ---------------------------------------------------------------------
// Base environments (the §7.2 "128 protected memory domains" setups)
// ---------------------------------------------------------------------

/// Build a process with `domains` PAN-protected domains.
pub fn pan_base(b: &mut LzProgramBuilder, domains: u64) {
    b.with_anon_segment(ARENA, domains * PAGE_SIZE, VmProt::RW);
    b.asm.lz_enter(false, SAN_PAN);
    b.asm.lz_prot_imm(ARENA, domains * PAGE_SIZE, PGT_ALL, RW | USER);
}

/// [`pan_base`] with a per-domain secret planted in each arena page
/// *before* protection: the synthesizer's escape oracle for
/// direct-access attacks is "the program exited with a victim secret",
/// which only an actual isolation break can produce. Clobbers x5/x6.
pub fn pan_base_with_secrets(b: &mut LzProgramBuilder, domains: u64, secret: impl Fn(u64) -> u64) {
    b.with_anon_segment(ARENA, domains * PAGE_SIZE, VmProt::RW);
    for d in 0..domains {
        b.asm.mov_imm64(5, ARENA + d * PAGE_SIZE);
        b.asm.mov_imm64(6, secret(d));
        b.asm.str(6, 5, 0);
    }
    b.asm.lz_enter(false, SAN_PAN);
    b.asm.lz_prot_imm(ARENA, domains * PAGE_SIZE, PGT_ALL, RW | USER);
}

/// Build a process with 128 PAN-protected domains (first test of §7.2).
pub fn pan_128_base(b: &mut LzProgramBuilder) {
    pan_base(b, DOMAINS);
}

/// Build a process with `domains` TTBR domains: one stage-1 table and
/// one call gate (gate `d` → pgt `d + 1`) per domain, each owning one
/// arena page.
pub fn ttbr_base(b: &mut LzProgramBuilder, domains: u64) {
    b.with_anon_segment(ARENA, domains * PAGE_SIZE, VmProt::RW);
    b.asm.lz_enter(true, SAN_TTBR);
    for d in 0..domains {
        b.asm.lz_alloc();
        b.asm.lz_map_gate_pgt_imm(d + 1, d);
        b.asm.lz_prot_imm(ARENA + d * PAGE_SIZE, PAGE_SIZE, d + 1, RW);
    }
}

/// Build a process with 128 TTBR domains (second test of §7.2).
pub fn ttbr_128_base(b: &mut LzProgramBuilder) {
    ttbr_base(b, DOMAINS);
}

/// [`ttbr_base`] with a per-domain secret planted in each arena page
/// before the page is moved into its domain table — the escape oracle
/// for gate-abuse attacks. Clobbers x5/x6.
pub fn ttbr_base_with_secrets(b: &mut LzProgramBuilder, domains: u64, secret: impl Fn(u64) -> u64) {
    b.with_anon_segment(ARENA, domains * PAGE_SIZE, VmProt::RW);
    for d in 0..domains {
        b.asm.mov_imm64(5, ARENA + d * PAGE_SIZE);
        b.asm.mov_imm64(6, secret(d));
        b.asm.str(6, 5, 0);
    }
    b.asm.lz_enter(true, SAN_TTBR);
    for d in 0..domains {
        b.asm.lz_alloc();
        b.asm.lz_map_gate_pgt_imm(d + 1, d);
        b.asm.lz_prot_imm(ARENA + d * PAGE_SIZE, PAGE_SIZE, d + 1, RW);
    }
}

/// Encode `movz xRD, #imm` — attacker payloads and JIT seed bodies.
pub fn movz_word(rd: u8, imm: u16) -> u32 {
    let mut a = Asm::new(0);
    a.movz(rd, imm, 0);
    let bytes = a.bytes();
    u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]])
}

// ---------------------------------------------------------------------
// Sensitive-instruction payloads (Table 3)
// ---------------------------------------------------------------------

/// All the sensitive encodings of Table 3 that a malicious binary might
/// inject, each of which the sanitizer must reject before execution.
pub fn injected_words() -> Vec<(&'static str, u32)> {
    use lz_arch::insn::Insn;
    use lz_arch::sysreg::SysReg;
    vec![
        ("eret", Insn::Eret.encode()),
        ("msr ttbr1_el1", Insn::MsrReg { enc: SysReg::TTBR1_EL1.encoding(), rt: 0 }.encode()),
        ("msr vbar_el1", Insn::MsrReg { enc: SysReg::VBAR_EL1.encoding(), rt: 0 }.encode()),
        ("msr elr_el1", Insn::MsrReg { enc: SysReg::ELR_EL1.encoding(), rt: 0 }.encode()),
        ("msr spsel", Insn::MsrImm { op1: 0b000, crm: 1, op2: 0b101 }.encode()),
        ("dc civac", 0xD50B_7E20),
    ]
}

/// `dc civac`-class payload: forbidden by the sanitizer yet semantically
/// inert if it ever executes — a successful injection therefore runs to
/// a *clean exit* instead of being caught downstream, which is exactly
/// what the read-fault-flip regression needs to observe.
pub fn inert_sensitive_payload() -> u32 {
    lz_arch::insn::Insn::Sys { l: false, op1: 3, crn: 7, crm: 14, op2: 1, rt: 2 }.encode()
}

// ---------------------------------------------------------------------
// Gate-abuse primitives
// ---------------------------------------------------------------------

/// Call gate `gate` from an unregistered site: `lr` is the instruction
/// after the `blr`, not the gate's designated ENTRY, so check phase ②
/// must kill. Without the check phase the switch goes through and the
/// gate returns to attacker-chosen code *inside the target domain*.
/// Clobbers x16.
pub fn forged_gate_call(a: &mut Asm, gate: u16) {
    a.mov_imm64(16, layout::gate_va(gate));
    a.blr(16);
}

/// Garmr-class mid-gate jump: land directly on the phase-① `msr
/// TTBR0_EL1, x13` with an attacker-chosen x13 — here the *legitimate*
/// `TTBRTab[victim_pgt]` value read straight out of the TTBR1-mapped
/// read-only table — skipping the GateTab lookup that decides which
/// table the gate may install. Check phase ② still compares `lr`
/// against the designated ENTRY and kills; without it the attacker
/// lands in the victim's domain. x10 (the gate's GateTab pointer, which
/// the skipped phase ① would have loaded) is zeroed so the check
/// phase's re-query faults deterministically rather than chasing
/// whatever the register last held. Clobbers x10, x13 and x16.
pub fn mid_gate_jump(a: &mut Asm, gate: u16, victim_pgt: u64) {
    load_ttbrtab_entry(a, 13, victim_pgt);
    a.mov_imm64(10, 0);
    a.mov_imm64(16, layout::gate_va(gate) + switch_msr_offset());
    a.blr(16);
}

/// Jump straight *into* check phase ② without performing the switch:
/// the live TTBR0 cannot match the gate's designated table, so the
/// check kills — in both flavors this never grants access (without the
/// check phase the offset holds the `ret`, a no-op call). Clobbers x16.
pub fn check_phase_jump(a: &mut Asm, gate: u16) {
    a.mov_imm64(16, layout::gate_va(gate) + check_phase_offset());
    a.blr(16);
}

// ---------------------------------------------------------------------
// Kernel-context and layout-probe primitives
// ---------------------------------------------------------------------

/// Read `TTBRTab[pgt]` into `rd` — an architecturally *legal* load (the
/// table is mapped read-only for the gate code), used by layout probes:
/// the entry holds the table root's **fake** physical address, which
/// equals the real one only when `randomize_phys` is ablated.
pub fn load_ttbrtab_entry(a: &mut Asm, rd: u8, pgt: u64) {
    a.mov_imm64(rd, layout::TTBRTAB_VA + pgt * 8);
    a.ldr(rd, rd, 0);
}

/// Store `val` to a TTBR1-mapped kernel-context page (stub, GateTab,
/// TTBRTab, or a gate stub itself). The region is mapped read-only (or
/// read-execute) through a table the process cannot retarget, so the
/// write must fault — and faults in the gate region are always
/// violations. Clobbers x15 and x16.
pub fn kernel_page_store(a: &mut Asm, va: u64, val: u64) {
    a.mov_imm64(15, va);
    a.mov_imm64(16, val);
    a.str(16, 15, 0);
}

/// Branch to a TTBR1-mapped *data* page (TTBRTab/GateTab): mapped
/// non-executable, so the fetch faults in the gate region — a
/// violation. Clobbers x16.
pub fn kernel_page_exec(a: &mut Asm, va: u64) {
    a.mov_imm64(16, va);
    a.blr(16);
}

// ---------------------------------------------------------------------
// W^X double-view (PANIC §3.2 / JIT) attack programs
// ---------------------------------------------------------------------

/// Gate ids of the double-view programs (gate → table):
/// writer gate 0 → pgt 1 (RW view), exec gate 1 → pgt 2 (R+X view),
/// home gate 2 → pgt 0, re-exec gate 3 → pgt 2 again.
pub const WX_GATE_WRITER: u16 = 0;
pub const WX_GATE_EXEC: u16 = 1;
pub const WX_GATE_HOME: u16 = 2;
pub const WX_GATE_REEXEC: u16 = 3;

/// Shared prelude of the double-view attacks: seed the JIT page with
/// `seed_body`, enter TTBR-sanitized LightZone, allocate the writer
/// (pgt 1) and executor (pgt 2) views, wire the four gates, and map the
/// JIT page RW in the writer view and R+X in the executor view.
pub fn wx_views(b: &mut LzProgramBuilder, seed_body: &[u8]) {
    b.with_segment(JIT, seed_body.to_vec(), VmProt::RWX);
    b.asm.lz_enter(true, SAN_TTBR);
    b.asm.lz_alloc(); // 1: writer view
    b.asm.lz_alloc(); // 2: executor view
    b.asm.lz_map_gate_pgt_imm(1, WX_GATE_WRITER as u64);
    b.asm.lz_map_gate_pgt_imm(2, WX_GATE_EXEC as u64);
    b.asm.lz_map_gate_pgt_imm(2, WX_GATE_REEXEC as u64);
    b.asm.lz_map_gate_pgt_imm(0, WX_GATE_HOME as u64);
    b.asm.lz_prot_imm(JIT, PAGE_SIZE, 1, RW);
    b.asm.lz_prot_imm(JIT, PAGE_SIZE, 2, READ_EXEC);
}

/// Execute the JIT page once through the executor view (scanned clean)
/// and switch back to the default table.
pub fn wx_exec_clean(b: &mut LzProgramBuilder) {
    b.lz_switch_to_ttbr_gate(WX_GATE_EXEC);
    b.asm.mov_imm64(17, JIT);
    b.asm.blr(17);
    b.lz_switch_to_ttbr_gate(WX_GATE_HOME);
}

/// Store `payload` through the writer view (leaves the process in the
/// writer domain; the store's write fault flips the page out of the
/// Executable state — break-before-make).
pub fn wx_store_payload(b: &mut LzProgramBuilder, payload: u32) {
    b.lz_switch_to_ttbr_gate(WX_GATE_WRITER);
    b.asm.mov_imm64(1, JIT);
    b.asm.mov_imm64(2, payload as u64);
    b.asm.emit(lz_arch::insn::Insn::StrImm { rt: 2, rn: 1, offset: 0, size: lz_arch::insn::MemSize::W });
}

/// Switch into the writer view and *read*-fault the JIT page (the W+X
/// VMA grants write on a read fault too — the read-fault-flip
/// regression), then store `payload` with no further fault.
pub fn wx_read_fault_then_store(b: &mut LzProgramBuilder, payload: u32) {
    b.lz_switch_to_ttbr_gate(WX_GATE_WRITER);
    b.asm.mov_imm64(1, JIT);
    b.asm.ldr(2, 1, 0);
    b.asm.mov_imm64(2, payload as u64);
    b.asm.emit(lz_arch::insn::Insn::StrImm { rt: 2, rn: 1, offset: 0, size: lz_arch::insn::MemSize::W });
}

/// Re-execute the JIT page through the second executor gate: only a
/// rescan (which must find the payload) stands between the written
/// bytes and execution.
pub fn wx_reexec(b: &mut LzProgramBuilder) {
    b.lz_switch_to_ttbr_gate(WX_GATE_REEXEC);
    b.asm.mov_imm64(17, JIT);
    b.asm.blr(17);
}

/// The full PANIC-style W+X aliasing attack (§3.2): write an ERET
/// through the writer view after a clean scan, then execute the alias.
pub fn wx_alias_attack_prog() -> LzProgram {
    let mut b = LzProgramBuilder::new(CODE);
    let mut seed = Asm::new(JIT);
    seed.ret();
    wx_views(&mut b, &seed.bytes());
    wx_exec_clean(&mut b);
    wx_store_payload(&mut b, lz_arch::insn::Insn::Eret.encode());
    wx_reexec(&mut b);
    b.asm.exit_imm(0);
    b.build()
}

/// The read-fault W^X flip regression: a read fault flips the page
/// writable, the payload store hits silently, and only break-before-
/// make on the *read*-fault path forces the rescan that catches it.
pub fn wx_read_fault_flip_prog() -> LzProgram {
    let mut b = LzProgramBuilder::new(CODE);
    let mut seed = Asm::new(JIT);
    seed.nop();
    seed.ret();
    wx_views(&mut b, &seed.bytes());
    wx_exec_clean(&mut b);
    wx_read_fault_then_store(&mut b, inert_sensitive_payload());
    wx_reexec(&mut b);
    b.asm.exit_imm(0);
    b.build()
}

// ---------------------------------------------------------------------
// VMID-rollover stale-TLB attack (generation-tagged recycling)
// ---------------------------------------------------------------------

/// VA of the dead victim's secret page. Never mapped by the attacker:
/// only a stale TLB entry left from the victim's life can translate it.
pub const SECRET_VA: u64 = 0x6600_0000;
/// The value the victim plants (and exits with, as the warm-up control).
pub const ROLLOVER_SECRET: u64 = 0x5ec7;
/// Shrunk VMID space: rollover after a handful of VEs instead of 65,535.
pub const ROLLOVER_VMID_SPACE: u16 = 6;

/// Everything a rollover pen test needs to judge one attack run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RolloverOutcome {
    /// Victim exit code — must be [`ROLLOVER_SECRET`] (the warm-up load
    /// both planted the secret and pulled its translation into the TLB).
    pub victim_exit: i64,
    /// Attacker exit code: a kill under the full defense, the leaked
    /// [`ROLLOVER_SECRET`] when the reuse-time shootdown is ablated.
    pub attacker_exit: i64,
    /// Recycled VMID grants — ≥ 1 or the run never reached rollover.
    pub vmid_recycles: u64,
    /// Reuse-time invalidations the module performed.
    pub rollover_shootdowns: u64,
}

/// Offset of the leak gadget inside the victim's executable page at
/// [`ATTACKER_CODE`]; a nop sled covers every earlier offset, so any
/// stale-fetch entry point slides into the gadget.
pub const GADGET_OFF: u64 = 0xf00;
/// Offset of the lone `ret` the victim calls to warm the page's fetch
/// translation. Exec permission is only granted (and thus only cached)
/// on a *fetch* fault — the sanitizer scans the page first — so a data
/// read would leave a non-executable stale entry behind.
pub const WARM_OFF: u64 = 0xf40;

/// The victim's executable page at [`ATTACKER_CODE`]: a nop sled into a
/// gadget that loads [`SECRET_VA`] into x0, raises x19, and parks, plus
/// the `ret` landing pad at [`WARM_OFF`]. When the recycled-VMID
/// attacker's *instruction fetches* hit this page's stale TLB entry,
/// these dead-VE bytes run in place of the attacker's own binary — the
/// fetch-side half of the stale-TLB escape.
fn gadget_page_bytes() -> Vec<u8> {
    let mut a = Asm::new(ATTACKER_CODE);
    for _ in 0..GADGET_OFF / 4 {
        a.nop();
    }
    a.mov_imm64(1, SECRET_VA);
    a.ldr(0, 1, 0);
    a.movz(19, 1, 0);
    let spin = a.label();
    a.bind(spin);
    a.b(spin);
    while a.here() < ATTACKER_CODE + WARM_OFF {
        a.nop();
    }
    a.ret();
    a.bytes()
}

/// Victim VE: plant the secret and load it back *inside* the VE so the
/// TLB caches the `(vmid, SECRET_VA)` translation, execute the gadget
/// page's `ret` pad so its translation is cached *with* exec permission,
/// and exit with the secret. Both stale entries — data and fetch —
/// outlive the VE until the VMID's reuse-time shootdown clears them.
pub fn rollover_victim_prog() -> LzProgram {
    let mut b = LzProgramBuilder::new(CODE);
    b.with_anon_segment(SECRET_VA, PAGE_SIZE, VmProt::RW);
    b.with_segment(ATTACKER_CODE, gadget_page_bytes(), VmProt::RX);
    b.asm.lz_enter(false, SAN_PAN);
    b.asm.mov_imm64(1, SECRET_VA);
    b.asm.mov_imm64(2, ROLLOVER_SECRET);
    b.asm.str(2, 1, 0);
    b.asm.ldr(0, 1, 0);
    b.asm.mov_imm64(3, ATTACKER_CODE + WARM_OFF);
    b.asm.blr(3);
    b.asm.mov_imm64(8, lz_kernel::Sysno::Exit.nr());
    b.asm.svc(0);
    b.build()
}

/// Minimal churn VE: enter LightZone (consuming one fresh VMID) and
/// exit. A fleet of these drains the shrunk fresh space to force the
/// allocator onto its free list.
pub fn rollover_churn_prog() -> LzProgram {
    let mut b = LzProgramBuilder::new(CODE);
    b.asm.lz_enter(false, SAN_PAN);
    b.asm.exit_imm(0);
    b.build()
}

/// Attacker code base — deliberately disjoint from the victim's
/// [`CODE`]: under the recycled VMID *every* stale translation of the
/// dead VE is live again (code, stub, tables — not just the secret), so
/// an attacker sharing the victim's code VAs would execute the dead
/// process's bytes instead of its own. Real malware would mind the same
/// constraint: probe only VAs it does not itself occupy.
pub const ATTACKER_CODE: u64 = 0x48_0000;

/// Attacker VE: receives the victim's recycled VMID at `lz_enter`, then
/// loads [`SECRET_VA`] — a VA this process never mapped. With the
/// reuse-time shootdown in place the attacker's own code runs and the
/// probe faults (kill). With stale entries still live, the attacker's
/// *fetches* after `lz_enter` hit the dead VE's gadget-page entry at
/// [`ATTACKER_CODE`] instead, and the gadget leaks the secret through
/// the stale data entry. Either escape parks in a spin loop with the
/// loot in x0 and x19 = 1 — no further traps (an exit `svc` would
/// vector through `STUB_VA`, whose stale global entry points at the
/// dead VE's *freed* stub frame), so the harness reads the registers
/// directly. The attacker's own body mirrors the gadget: a nop sled
/// (room for a small-quantum stepper to pause right after the recycled
/// grant — the SMP variant migrates the attacker to the victim's core
/// in that window) into the same probe/park sequence.
pub fn rollover_attacker_prog() -> LzProgram {
    let mut b = LzProgramBuilder::new(ATTACKER_CODE);
    b.asm.lz_enter(false, SAN_PAN);
    for _ in 0..8 {
        b.asm.nop();
    }
    b.asm.mov_imm64(1, SECRET_VA);
    b.asm.ldr(0, 1, 0);
    b.asm.movz(19, 1, 0);
    let spin = b.asm.label();
    b.asm.bind(spin);
    b.asm.b(spin);
    b.build()
}

/// Run until `cond` holds, stepping by `chunk`-instruction quanta.
fn run_until(lz: &mut LightZone, chunk: u64, mut cond: impl FnMut(&LightZone) -> bool) {
    for _ in 0..2_000_000 {
        if cond(lz) {
            return;
        }
        match lz.run(chunk) {
            Event::Limit => {}
            other => panic!("unexpected event while stepping: {other:?}"),
        }
    }
    panic!("stepping condition never became true");
}

/// Run to process exit (rollover-attack phases are all exit-bounded).
fn run_exit(lz: &mut LightZone) -> i64 {
    match lz.run(50_000_000) {
        Event::Exited(code) => code,
        other => panic!("expected exit, got {other:?}"),
    }
}

/// The full VMID-rollover stale-TLB attack, shared by the defended and
/// ablated pen tests (the synthesis matrix keeps `skip_rollover_shootdown`
/// out; this is its dedicated harness):
///
/// 1. Shrink the VMID space to [`ROLLOVER_VMID_SPACE`].
/// 2. A victim VE warms `(vmid_v, SECRET_VA)` into the TLB of the
///    *last* core and exits.
/// 3. Module-only reap: `vmid_v` parks on the free list, but its TLB
///    entries — and the kernel-owned data frame holding the secret —
///    survive (the recycling contract defers invalidation to reuse).
/// 4. Churn VEs exhaust the remaining fresh VMIDs (they stay un-reaped,
///    holding their IDs live).
/// 5. The attacker's `lz_enter` is granted `vmid_v` *recycled*; on SMP
///    the attacker is then migrated to the victim's core before probing.
///
/// With the reuse-time shootdown in place the probe faults (kill); with
/// `skip_rollover_shootdown` — or, cross-core, with only a local
/// invalidate under `skip_remote_shootdown` — the stale entry translates
/// the dead VE's page and the attacker exits with its secret.
pub fn rollover_attack(platform: Platform, ablation: AblationConfig, cores: usize) -> RolloverOutcome {
    let mut lz = LightZone::with_ablation(platform, false, ablation);
    lz.kernel.vmids = VmidAllocator::with_space(ROLLOVER_VMID_SPACE);
    if cores > 1 {
        lz.kernel.machine.configure_smp(cores);
    }
    let victim_core = cores - 1;

    // Phase 1: victim VE runs (and warms its TLB) on the last core.
    let victim = lz.spawn(&rollover_victim_prog());
    if cores > 1 {
        lz.kernel.machine.switch_core(victim_core);
    }
    lz.schedule_to(victim);
    let victim_exit = run_exit(&mut lz);
    if cores > 1 {
        lz.kernel.machine.switch_core(0);
    }

    // Phase 2: module-only reap parks the VMID with its TLB entries (and
    // the secret's frame) intact — the exact window the reuse-time
    // shootdown exists to close.
    assert!(lz.module.reap(&mut lz.kernel, victim), "victim VE reaps");

    // Phase 3: churn the remaining fresh VMIDs away on core 0.
    for _ in 1..ROLLOVER_VMID_SPACE {
        let pid = lz.spawn(&rollover_churn_prog());
        lz.schedule_to(pid);
        let code = run_exit(&mut lz);
        assert_eq!(code, 0, "churn VE exits cleanly");
    }

    // Phase 4: the attacker is granted the victim's VMID, recycled.
    let attacker = lz.spawn(&rollover_attacker_prog());
    lz.schedule_to(attacker);
    if cores > 1 {
        // Pause right after the recycled grant (mid nop sled), then
        // migrate the attacker VE onto the victim's core for the probe.
        run_until(&mut lz, 2, |lz| lz.module.proc(attacker).is_some());
        lz.kernel.save_current();
        lz.kernel.machine.switch_core(victim_core);
        lz.module.enter_ve_process(&mut lz.kernel, attacker);
    }
    // A defended probe faults and kills the attacker; a successful one
    // parks in the spin loop with x19 = 1 and the loot in x0.
    let mut attacker_exit = i64::MIN;
    for _ in 0..1_000 {
        if lz.kernel.machine.cpu.x[19] == 1 {
            attacker_exit = lz.kernel.machine.cpu.x[0] as i64;
            break;
        }
        match lz.run(64) {
            Event::Limit => {}
            Event::Exited(code) => {
                attacker_exit = code;
                break;
            }
            other => panic!("unexpected attacker event: {other:?}"),
        }
    }
    assert_ne!(attacker_exit, i64::MIN, "attacker neither died nor finished its probe");

    RolloverOutcome {
        victim_exit,
        attacker_exit,
        vmid_recycles: lz.kernel.vmids.recycles(),
        rollover_shootdowns: lz.kernel.stats.rollover_shootdowns + lz.module.rollover_shootdowns,
    }
}

// ---------------------------------------------------------------------
// Snapshot/restore stale-state attack (warm-restart recycling)
// ---------------------------------------------------------------------

/// Everything a restore pen test needs to judge one attack run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestoreOutcome {
    /// Victim exit code — must be [`ROLLOVER_SECRET`] (warm-up control).
    pub victim_exit: i64,
    /// Restored VE's probe outcome: a kill under the full defense, the
    /// leaked [`ROLLOVER_SECRET`] when reuse invalidation is ablated.
    pub probe_exit: i64,
    /// Recycled VMID grants — ≥ 1 or the restore never hit recycling.
    pub vmid_recycles: u64,
    /// Reuse-time invalidations the module performed.
    pub rollover_shootdowns: u64,
    /// Successful warm restarts (must be 1: the image verified and the
    /// rebuild reproduced the donor's layout).
    pub restores: u64,
}

/// Snapshot donor / probe body: enter LightZone, raise the x21
/// request-boundary marker (the host parks and snapshots there), then —
/// only after the warm restart resumes it — probe [`SECRET_VA`], a VA
/// this process never mapped, and park with the loot in x0 and x19 = 1.
/// Based at [`ATTACKER_CODE`] so a stale *fetch* entry from the dead
/// victim's gadget page hijacks the resumed sled exactly as in
/// [`rollover_attacker_prog`].
pub fn restore_donor_prog() -> LzProgram {
    let mut b = LzProgramBuilder::new(ATTACKER_CODE);
    b.asm.lz_enter(false, SAN_PAN);
    b.asm.movz(21, 1, 0);
    for _ in 0..8 {
        b.asm.nop();
    }
    b.asm.mov_imm64(1, SECRET_VA);
    b.asm.ldr(0, 1, 0);
    b.asm.movz(19, 1, 0);
    let spin = b.asm.label();
    b.asm.bind(spin);
    b.asm.b(spin);
    b.build()
}

/// The snapshot/restore stale-state attack, shared by the defended and
/// ablated pen tests. A warm restart hands the restored VE a *recycled*
/// VMID off the free list; the question under test is whether the
/// restore path (which rebuilds through the normal `lz_enter`) performs
/// the reuse-time shoot-down before the restored VE runs:
///
/// 1. Shrink the VMID space to [`ROLLOVER_VMID_SPACE`].
/// 2. A victim VE warms `(vmid_v, SECRET_VA)` data and gadget *fetch*
///    entries into the last core's TLB and exits; a module-only reap
///    parks `vmid_v` on the free list with those entries intact.
/// 3. A donor VE runs to its request boundary; the host parks it,
///    captures a [`VeSnapshot`], then kills and fully reaps it (its own
///    VMID joins the free list *behind* the victim's).
/// 4. Churn VEs exhaust the remaining fresh VMIDs.
/// 5. `restore_ve` rebuilds the donor: its `lz_enter` pops `vmid_v`,
///    recycled. On SMP the restored VE is scheduled onto the victim's
///    core. With the shoot-down in place its probe faults (kill); under
///    `skip_rollover_shootdown` its first *fetch* resumes into the dead
///    victim's gadget page and leaks [`ROLLOVER_SECRET`] through the
///    stale data entry.
pub fn restore_attack(platform: Platform, ablation: AblationConfig, cores: usize) -> RestoreOutcome {
    let mut lz = LightZone::with_ablation(platform, false, ablation);
    lz.kernel.vmids = VmidAllocator::with_space(ROLLOVER_VMID_SPACE);
    if cores > 1 {
        lz.kernel.machine.configure_smp(cores);
    }
    let victim_core = cores - 1;

    // Phase 1: victim VE runs (and warms its TLB) on the last core.
    let victim = lz.spawn(&rollover_victim_prog());
    if cores > 1 {
        lz.kernel.machine.switch_core(victim_core);
    }
    lz.schedule_to(victim);
    let victim_exit = run_exit(&mut lz);
    let vmid_v = lz.module.proc(victim).expect("victim VE is live").vmid;
    if cores > 1 {
        lz.kernel.machine.switch_core(0);
    }

    // Phase 2: module-only reap parks vmid_v with its TLB entries (and
    // the secret's frame) intact.
    assert!(lz.module.reap(&mut lz.kernel, victim), "victim VE reaps");

    // Phase 3: park the donor at its request boundary, snapshot it,
    // kill it, reap it end to end.
    let prog = restore_donor_prog();
    let donor = lz.spawn(&prog);
    lz.schedule_to(donor);
    run_until(&mut lz, 2, |lz| lz.kernel.machine.cpu.x[21] == 1);
    lz.kernel.save_current();
    lz.kernel.clear_current();
    let snap = lz.snapshot_ve(donor).expect("donor VE snapshots at its request boundary");
    lz.kernel.set_current(donor);
    lz.kernel.kill_current(lightzone::SECURITY_KILL);
    assert!(lz.reap(donor), "donor VE reaps end to end");

    // Phase 4: churn the remaining fresh VMIDs away on core 0.
    for _ in 2..ROLLOVER_VMID_SPACE {
        let pid = lz.spawn(&rollover_churn_prog());
        lz.schedule_to(pid);
        assert_eq!(run_exit(&mut lz), 0, "churn VE exits cleanly");
    }

    // Phase 5: the warm restart is granted the victim's VMID, recycled.
    let restored = lz.restore_ve(&prog, &snap).expect("snapshot restores");
    assert_eq!(
        lz.module.proc(restored).expect("restored VE is live").vmid,
        vmid_v,
        "restored VE received the victim's recycled VMID"
    );
    if cores > 1 {
        lz.kernel.machine.switch_core(victim_core);
    }
    lz.schedule_to(restored);
    // A defended probe faults and kills the restored VE; a successful
    // escape parks in the spin loop with x19 = 1 and the loot in x0.
    let mut probe_exit = i64::MIN;
    for _ in 0..1_000 {
        if lz.kernel.machine.cpu.x[19] == 1 {
            probe_exit = lz.kernel.machine.cpu.x[0] as i64;
            break;
        }
        match lz.run(64) {
            Event::Limit => {}
            Event::Exited(code) => {
                probe_exit = code;
                break;
            }
            other => panic!("unexpected probe event: {other:?}"),
        }
    }
    assert_ne!(probe_exit, i64::MIN, "restored VE neither died nor finished its probe");

    RestoreOutcome {
        victim_exit,
        probe_exit,
        vmid_recycles: lz.kernel.vmids.recycles(),
        rollover_shootdowns: lz.kernel.stats.rollover_shootdowns + lz.module.rollover_shootdowns,
        restores: lz.fleet_section().get("ve_restores").unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightzone::SECURITY_KILL;

    #[test]
    fn shared_wx_attack_bodies_still_die() {
        // The extracted bodies must behave exactly like the pen tests
        // they came from.
        assert_eq!(run(&wx_alias_attack_prog(), Platform::CortexA55, false), SECURITY_KILL);
        assert_eq!(run(&wx_read_fault_flip_prog(), Platform::CortexA55, false), SECURITY_KILL);
    }

    #[test]
    fn ttbr_base_legal_access_survives() {
        let mut b = LzProgramBuilder::new(CODE);
        ttbr_base(&mut b, 8);
        b.lz_switch_to_ttbr_gate(3);
        b.asm.mov_imm64(1, ARENA + 3 * PAGE_SIZE);
        b.asm.mov_imm64(2, 0x5a);
        b.asm.str(2, 1, 0);
        b.asm.ldr(0, 1, 0);
        b.asm.mov_imm64(8, lz_kernel::Sysno::Exit.nr());
        b.asm.svc(0);
        assert_eq!(run(&b.build(), Platform::CortexA55, false), 0x5a);
    }

    #[test]
    fn ttbrtab_read_is_legal_and_fake() {
        // The layout-probe primitive itself is a legal load; under the
        // paper default it observes only fake physical addresses.
        let mut b = LzProgramBuilder::new(CODE);
        ttbr_base(&mut b, 4);
        load_ttbrtab_entry(&mut b.asm, 0, 1);
        b.asm.mov_imm64(8, lz_kernel::Sysno::Exit.nr());
        b.asm.svc(0);
        let leaked = run(&b.build(), Platform::CortexA55, false);
        assert!(leaked > 0, "TTBRTab read must succeed, got {leaked}");
    }
}
