//! The chaos soak driver: clean-vs-chaos containment differentials,
//! fault accumulation to a target count, and schedule shrinking.
//!
//! The containment argument is a differential, not an absolute: for one
//! `(scenario, seed)` pair, the clean run defines what the program is
//! *allowed* to observe, and a chaos run under any plan must either
//! reproduce that digest exactly (the fault was absorbed — retried,
//! rescanned, re-sent) or end in a precise guest-side kill. Anything
//! else — a different exit value, different registers, a silently
//! altered data page — means an injected fault leaked architecturally,
//! which is exactly the fail-open outcome the stack promises never to
//! produce. Invariant violations from [`crate::ChaosInvariants`] are
//! folded into the same problem list.

use crate::programs::{run_scenario, Scenario, ScenarioRun, ALL_SCENARIOS};
use lz_machine::FaultPlan;
use std::collections::BTreeSet;

/// splitmix64 — local copy for deriving per-round seeds (the engine's
/// own mixer is private to `lz_machine::chaos`).
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// One scenario, one seed, one plan: everything the report aggregates.
#[derive(Debug, Clone)]
pub struct PlanVerdict {
    pub scenario: Scenario,
    pub seed: u64,
    pub run: ScenarioRun,
    /// Containment/invariant problems. Empty = fail-closed held.
    pub problems: Vec<String>,
}

/// Run `scenario(seed)` clean and under `plan`, and check the
/// fail-closed contract between the two runs.
pub fn verify_plan(scenario: Scenario, seed: u64, plan: &FaultPlan) -> PlanVerdict {
    let clean = run_scenario(scenario, seed, None);
    let chaos = run_scenario(scenario, seed, Some(plan));
    let mut problems = Vec::new();
    for v in &clean.violations {
        problems.push(format!("clean run invariant violation: {v}"));
    }
    if clean.killed {
        problems.push(format!("clean run was killed (digest {})", clean.digest));
    }
    if clean.injected != 0 {
        problems.push("clean run injected faults with no plan installed".to_string());
    }
    for v in &chaos.violations {
        problems.push(format!("chaos run invariant violation: {v}"));
    }
    if chaos.digest != clean.digest && !chaos.killed {
        problems.push(format!(
            "containment breach: chaos digest `{}` != clean digest `{}` without a guest kill",
            chaos.digest, clean.digest
        ));
    }
    PlanVerdict { scenario, seed, run: chaos, problems }
}

/// Aggregate outcome of a soak.
#[derive(Debug, Clone, Default)]
pub struct SoakReport {
    /// Scenario runs performed (clean + chaos pairs).
    pub runs: u64,
    /// Chaos runs that ended in a guest-side kill (allowed).
    pub kills: u64,
    pub faults_injected: u64,
    pub faults_contained: u64,
    pub ve_kills: u64,
    pub journal_dropped: u64,
    /// Every problem found, prefixed with its scenario and seed.
    pub problems: Vec<String>,
    /// The first failing `(scenario, seed, plan)` triple, kept for
    /// shrinking.
    pub first_failure: Option<(Scenario, u64, FaultPlan)>,
}

impl SoakReport {
    pub fn ok(&self) -> bool {
        self.problems.is_empty()
    }

    /// Single-line JSON for the CI determinism leg (two invocations
    /// with the same arguments must emit identical bytes).
    pub fn to_json(&self, base_seed: u64, rate: u64) -> String {
        format!(
            r#"{{"benchmark":"chaos_soak","seed":{},"rate":{},"runs":{},"kills":{},"faults_injected":{},"faults_contained":{},"ve_kills":{},"journal_dropped":{},"invariant_violations":{}}}"#,
            base_seed,
            rate,
            self.runs,
            self.kills,
            self.faults_injected,
            self.faults_contained,
            self.ve_kills,
            self.journal_dropped,
            self.problems.len(),
        )
    }
}

/// Soak until at least `target_faults` faults have been injected (or
/// `max_rounds` rounds, whichever comes first), cycling all four
/// scenarios with per-round seeds derived from `base_seed`.
pub fn run_soak(base_seed: u64, rate: u64, target_faults: u64, max_rounds: u64) -> SoakReport {
    let mut report = SoakReport::default();
    for round in 0..max_rounds {
        if report.faults_injected >= target_faults {
            break;
        }
        for (i, &scenario) in ALL_SCENARIOS.iter().enumerate() {
            let seed = mix(base_seed ^ mix(round << 8 | i as u64));
            let plan = FaultPlan::new(mix(seed)).with_rate(rate);
            let v = verify_plan(scenario, seed, &plan);
            report.runs += 1;
            report.kills += v.run.killed as u64;
            report.faults_injected += v.run.injected;
            report.faults_contained += v.run.contained;
            report.ve_kills += v.run.ve_kills;
            report.journal_dropped += v.run.journal_dropped;
            if !v.problems.is_empty() {
                for p in &v.problems {
                    report.problems.push(format!("[{} seed={seed:#x}] {p}", scenario.name()));
                }
                report.first_failure.get_or_insert((scenario, seed, plan));
            }
        }
    }
    report
}

/// Classic ddmin (Zeller/Hildebrandt delta debugging) over a set, with
/// a guaranteed-1-minimal result.
///
/// `fails(subset)` returns `Some(evidence)` when the failure still
/// reproduces on `subset` and `None` when it passes. Starting from
/// `full` (which must fail — otherwise this returns `None`), the chunked
/// phase partitions the current set into `n` chunks and tries reducing
/// to each chunk, then to each chunk's complement, doubling granularity
/// when neither helps. A final singleton-removal fixpoint pass then
/// drops any element whose individual removal still fails, so the
/// returned set is **1-minimal**: removing any single element makes the
/// predicate pass.
///
/// The chunked phase is what lets the result escape the local minima a
/// greedy single-removal loop gets stuck in: a predicate failing only on
/// `{a, b, c}` and `{a}` passes on every 2-element subset, so removing
/// one element at a time can never reach `{a}` — reducing *to a chunk*
/// can.
pub fn ddmin_set<T: Clone + Ord, E>(
    full: &BTreeSet<T>,
    mut fails: impl FnMut(&BTreeSet<T>) -> Option<E>,
) -> Option<(BTreeSet<T>, E)> {
    let mut set = full.clone();
    let mut evidence = fails(&set)?;
    let mut n = 2usize;
    'outer: while set.len() >= 2 {
        n = n.min(set.len());
        let items: Vec<T> = set.iter().cloned().collect();
        let chunk_len = items.len().div_ceil(n);
        let chunks: Vec<BTreeSet<T>> = items.chunks(chunk_len).map(|c| c.iter().cloned().collect()).collect();
        // Reduce to a failing chunk: the big jump toward minimality.
        for c in &chunks {
            if c.len() < set.len() {
                if let Some(e) = fails(c) {
                    set = c.clone();
                    evidence = e;
                    n = 2;
                    continue 'outer;
                }
            }
        }
        // Reduce to a failing complement (set minus one chunk).
        for c in &chunks {
            let complement: BTreeSet<T> = set.difference(c).cloned().collect();
            if complement.len() < set.len() && !complement.is_empty() {
                if let Some(e) = fails(&complement) {
                    set = complement;
                    evidence = e;
                    n = (n - 1).max(2);
                    continue 'outer;
                }
            }
        }
        if n >= set.len() {
            break; // already at singleton granularity, nothing helped
        }
        n = (n * 2).min(set.len());
    }
    // Singleton-removal fixpoint: guarantees 1-minimality (and reaches
    // the empty set if even a lone survivor turns out to be redundant).
    loop {
        let mut shrunk = false;
        for x in set.clone() {
            let mut candidate = set.clone();
            candidate.remove(&x);
            if let Some(e) = fails(&candidate) {
                set = candidate;
                evidence = e;
                shrunk = true;
            }
        }
        if !shrunk {
            break;
        }
    }
    Some((set, evidence))
}

/// Shrink a failing plan to a 1-minimal replayed fault schedule.
///
/// [`ddmin_set`] over the recorded `(seq, site)` schedule: re-run under
/// [`FaultPlan::replay`] with a subset of faults and keep any subset on
/// which the failure (any problem) still reproduces. Removing a fault
/// does not renumber the survivors — replay matches on the consultation
/// sequence numbers of the *original* run, which depend only on the
/// seed and site filter — so the subset schedule is exact, not
/// approximate.
///
/// Returns the shrunk schedule and the problems it still produces, or
/// `None` if the plan does not actually fail (nothing to shrink).
pub fn shrink_plan(scenario: Scenario, seed: u64, plan: &FaultPlan) -> Option<(BTreeSet<u64>, Vec<String>)> {
    let fails = |schedule: &BTreeSet<u64>| -> Option<Vec<String>> {
        let replay = plan.clone().replay(schedule.clone());
        let v = verify_plan(scenario, seed, &replay);
        if v.problems.is_empty() {
            None
        } else {
            Some(v.problems)
        }
    };
    let full = verify_plan(scenario, seed, plan);
    if full.problems.is_empty() {
        return None;
    }
    let schedule: BTreeSet<u64> = full.run.fired.iter().map(|&(seq, _)| seq).collect();
    ddmin_set(&schedule, fails) // replay of the full schedule must still fail
}

/// Human-readable description of a shrunk schedule: which sites fired
/// at which consultation numbers (resolved by re-running the replay).
pub fn describe_schedule(scenario: Scenario, seed: u64, plan: &FaultPlan, schedule: &BTreeSet<u64>) -> String {
    let replay = plan.clone().replay(schedule.clone());
    let run = run_scenario(scenario, seed, Some(&replay));
    let steps: Vec<String> = run.fired.iter().map(|&(seq, site)| format!("seq {seq}: {}", site.name())).collect();
    format!("{} seed={seed:#x} [{}]", scenario.name(), steps.join(", "))
}

#[allow(dead_code)]
fn site_names() -> Vec<&'static str> {
    lz_machine::ALL_SITES.iter().map(|s| s.name()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lz_machine::FaultSite;

    #[test]
    fn seed_mixing_separates_rounds() {
        let a = mix(1 ^ mix(0));
        let b = mix(1 ^ mix(1));
        assert_ne!(a, b);
    }

    #[test]
    fn clean_randomized_scenario_verifies() {
        // A plan with an impossible rate injects nothing; the verdict
        // must be clean and digest-identical by construction.
        let plan = FaultPlan::new(7).with_max_faults(0);
        let v = verify_plan(Scenario::Randomized, 3, &plan);
        assert!(v.problems.is_empty(), "{:?}", v.problems);
        assert_eq!(v.run.injected, 0);
    }

    #[test]
    fn soak_injects_and_reports() {
        let report = run_soak(0xA5, 6, 1, 1);
        assert!(report.runs >= 4, "one round covers all scenarios");
        assert!(report.ok(), "soak found problems: {:?}", report.problems);
    }

    #[test]
    fn report_json_is_single_line() {
        let report = SoakReport::default();
        let json = report.to_json(1, 16);
        assert_eq!(json.lines().count(), 1);
        assert!(json.contains(r#""benchmark":"chaos_soak""#));
    }

    /// The shipped shrinker before the ddmin rewrite: remove one element
    /// at a time, keep the removal if the failure reproduces, iterate to
    /// fixpoint. Kept here verbatim as the regression baseline.
    fn greedy_shrink(full: &BTreeSet<u64>, fails: impl Fn(&BTreeSet<u64>) -> bool) -> BTreeSet<u64> {
        let mut set = full.clone();
        loop {
            let mut shrunk = false;
            for x in set.clone() {
                let mut candidate = set.clone();
                candidate.remove(&x);
                if fails(&candidate) {
                    set = candidate;
                    shrunk = true;
                }
            }
            if !shrunk {
                break;
            }
        }
        set
    }

    #[test]
    fn ddmin_escapes_greedy_local_minimum() {
        // A failure that reproduces only on {1,2,3} and {1}: every
        // 2-element subset passes, so single-element removal can never
        // leave {1,2,3} — the old greedy loop returns the full set.
        let full: BTreeSet<u64> = [1, 2, 3].into();
        let one: BTreeSet<u64> = [1].into();
        let fails_on = |s: &BTreeSet<u64>| *s == full || *s == one;

        let greedy = greedy_shrink(&full, fails_on);
        assert_eq!(greedy, full, "greedy baseline unexpectedly escaped the local minimum");

        let (shrunk, ()) = ddmin_set(&full, |s| if fails_on(s) { Some(()) } else { None }).expect("full set fails");
        assert_eq!(shrunk, one, "ddmin must reduce to the 1-minimal failing subset");
    }

    #[test]
    fn ddmin_output_is_one_minimal() {
        // Failure = subset contains {2, 5, 9}. ddmin must find exactly
        // that core from a 12-element haystack, and removing any single
        // element of the result must make the predicate pass.
        let full: BTreeSet<u64> = (0..12).collect();
        let core: BTreeSet<u64> = [2, 5, 9].into();
        let fails_on = |s: &BTreeSet<u64>| core.is_subset(s);
        let (shrunk, ()) = ddmin_set(&full, |s| if fails_on(s) { Some(()) } else { None }).expect("full set fails");
        assert_eq!(shrunk, core);
        for x in &shrunk {
            let mut cand = shrunk.clone();
            cand.remove(x);
            assert!(!fails_on(&cand), "result not 1-minimal: still fails without {x}");
        }
    }

    #[test]
    fn ddmin_reaches_empty_when_failure_is_unconditional() {
        let full: BTreeSet<u64> = (0..5).collect();
        let (shrunk, ()) = ddmin_set(&full, |_| Some(())).expect("always fails");
        assert!(shrunk.is_empty(), "unconditional failure must shrink to the empty schedule");
    }

    #[test]
    fn ddmin_rejects_passing_input() {
        let full: BTreeSet<u64> = (0..5).collect();
        assert!(ddmin_set::<u64, ()>(&full, |_| None).is_none());
    }

    #[test]
    fn sched_preempt_faults_are_absorbed() {
        // Scheduler preemption alone must never change the SMP outcome.
        let plan = FaultPlan::new(11).with_sites(&[FaultSite::SchedPreempt]).with_rate(2);
        let v = verify_plan(Scenario::Smp, 5, &plan);
        assert!(v.problems.is_empty(), "{:?}", v.problems);
        assert!(v.run.injected > 0, "preemption site never consulted");
    }
}
