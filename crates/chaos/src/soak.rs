//! The chaos soak driver: clean-vs-chaos containment differentials,
//! fault accumulation to a target count, and schedule shrinking.
//!
//! The containment argument is a differential, not an absolute: for one
//! `(scenario, seed)` pair, the clean run defines what the program is
//! *allowed* to observe, and a chaos run under any plan must either
//! reproduce that digest exactly (the fault was absorbed — retried,
//! rescanned, re-sent) or end in a precise guest-side kill. Anything
//! else — a different exit value, different registers, a silently
//! altered data page — means an injected fault leaked architecturally,
//! which is exactly the fail-open outcome the stack promises never to
//! produce. Invariant violations from [`crate::ChaosInvariants`] are
//! folded into the same problem list.

use crate::programs::{run_scenario, Scenario, ScenarioRun, ALL_SCENARIOS};
use lz_machine::FaultPlan;
use std::collections::BTreeSet;

/// splitmix64 — local copy for deriving per-round seeds (the engine's
/// own mixer is private to `lz_machine::chaos`).
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// One scenario, one seed, one plan: everything the report aggregates.
#[derive(Debug, Clone)]
pub struct PlanVerdict {
    pub scenario: Scenario,
    pub seed: u64,
    pub run: ScenarioRun,
    /// Containment/invariant problems. Empty = fail-closed held.
    pub problems: Vec<String>,
}

/// Run `scenario(seed)` clean and under `plan`, and check the
/// fail-closed contract between the two runs.
pub fn verify_plan(scenario: Scenario, seed: u64, plan: &FaultPlan) -> PlanVerdict {
    let clean = run_scenario(scenario, seed, None);
    let chaos = run_scenario(scenario, seed, Some(plan));
    let mut problems = Vec::new();
    for v in &clean.violations {
        problems.push(format!("clean run invariant violation: {v}"));
    }
    if clean.killed {
        problems.push(format!("clean run was killed (digest {})", clean.digest));
    }
    if clean.injected != 0 {
        problems.push("clean run injected faults with no plan installed".to_string());
    }
    for v in &chaos.violations {
        problems.push(format!("chaos run invariant violation: {v}"));
    }
    if chaos.digest != clean.digest && !chaos.killed {
        problems.push(format!(
            "containment breach: chaos digest `{}` != clean digest `{}` without a guest kill",
            chaos.digest, clean.digest
        ));
    }
    PlanVerdict { scenario, seed, run: chaos, problems }
}

/// Aggregate outcome of a soak.
#[derive(Debug, Clone, Default)]
pub struct SoakReport {
    /// Scenario runs performed (clean + chaos pairs).
    pub runs: u64,
    /// Chaos runs that ended in a guest-side kill (allowed).
    pub kills: u64,
    pub faults_injected: u64,
    pub faults_contained: u64,
    pub ve_kills: u64,
    pub journal_dropped: u64,
    /// Every problem found, prefixed with its scenario and seed.
    pub problems: Vec<String>,
    /// The first failing `(scenario, seed, plan)` triple, kept for
    /// shrinking.
    pub first_failure: Option<(Scenario, u64, FaultPlan)>,
}

impl SoakReport {
    pub fn ok(&self) -> bool {
        self.problems.is_empty()
    }

    /// Single-line JSON for the CI determinism leg (two invocations
    /// with the same arguments must emit identical bytes).
    pub fn to_json(&self, base_seed: u64, rate: u64) -> String {
        format!(
            r#"{{"benchmark":"chaos_soak","seed":{},"rate":{},"runs":{},"kills":{},"faults_injected":{},"faults_contained":{},"ve_kills":{},"journal_dropped":{},"invariant_violations":{}}}"#,
            base_seed,
            rate,
            self.runs,
            self.kills,
            self.faults_injected,
            self.faults_contained,
            self.ve_kills,
            self.journal_dropped,
            self.problems.len(),
        )
    }
}

/// Soak until at least `target_faults` faults have been injected (or
/// `max_rounds` rounds, whichever comes first), cycling all four
/// scenarios with per-round seeds derived from `base_seed`.
pub fn run_soak(base_seed: u64, rate: u64, target_faults: u64, max_rounds: u64) -> SoakReport {
    let mut report = SoakReport::default();
    for round in 0..max_rounds {
        if report.faults_injected >= target_faults {
            break;
        }
        for (i, &scenario) in ALL_SCENARIOS.iter().enumerate() {
            let seed = mix(base_seed ^ mix(round << 8 | i as u64));
            let plan = FaultPlan::new(mix(seed)).with_rate(rate);
            let v = verify_plan(scenario, seed, &plan);
            report.runs += 1;
            report.kills += v.run.killed as u64;
            report.faults_injected += v.run.injected;
            report.faults_contained += v.run.contained;
            report.ve_kills += v.run.ve_kills;
            report.journal_dropped += v.run.journal_dropped;
            if !v.problems.is_empty() {
                for p in &v.problems {
                    report.problems.push(format!("[{} seed={seed:#x}] {p}", scenario.name()));
                }
                report.first_failure.get_or_insert((scenario, seed, plan));
            }
        }
    }
    report
}

/// Shrink a failing plan to a (locally) minimal replayed fault schedule.
///
/// Greedy ddmin over the recorded `(seq, site)` schedule: re-run under
/// [`FaultPlan::replay`] with one fault removed at a time, keep the
/// removal whenever the failure (any problem) still reproduces, and
/// iterate until no single removal does. Removing a fault does not
/// renumber the survivors — replay matches on the consultation sequence
/// numbers of the *original* run, which depend only on the seed and
/// site filter — so the subset schedule is exact, not approximate.
///
/// Returns the shrunk schedule and the problems it still produces, or
/// `None` if the plan does not actually fail (nothing to shrink).
pub fn shrink_plan(scenario: Scenario, seed: u64, plan: &FaultPlan) -> Option<(BTreeSet<u64>, Vec<String>)> {
    let fails = |schedule: &BTreeSet<u64>| -> Option<Vec<String>> {
        let replay = plan.clone().replay(schedule.clone());
        let v = verify_plan(scenario, seed, &replay);
        if v.problems.is_empty() {
            None
        } else {
            Some(v.problems)
        }
    };
    let full = verify_plan(scenario, seed, plan);
    if full.problems.is_empty() {
        return None;
    }
    let mut schedule: BTreeSet<u64> = full.run.fired.iter().map(|&(seq, _)| seq).collect();
    let mut problems = fails(&schedule)?; // replay of the full schedule must still fail
    loop {
        let mut shrunk = false;
        for seq in schedule.clone() {
            let mut candidate = schedule.clone();
            candidate.remove(&seq);
            if let Some(p) = fails(&candidate) {
                schedule = candidate;
                problems = p;
                shrunk = true;
            }
        }
        if !shrunk {
            break;
        }
    }
    Some((schedule, problems))
}

/// Human-readable description of a shrunk schedule: which sites fired
/// at which consultation numbers (resolved by re-running the replay).
pub fn describe_schedule(scenario: Scenario, seed: u64, plan: &FaultPlan, schedule: &BTreeSet<u64>) -> String {
    let replay = plan.clone().replay(schedule.clone());
    let run = run_scenario(scenario, seed, Some(&replay));
    let steps: Vec<String> = run.fired.iter().map(|&(seq, site)| format!("seq {seq}: {}", site.name())).collect();
    format!("{} seed={seed:#x} [{}]", scenario.name(), steps.join(", "))
}

#[allow(dead_code)]
fn site_names() -> Vec<&'static str> {
    lz_machine::ALL_SITES.iter().map(|s| s.name()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lz_machine::FaultSite;

    #[test]
    fn seed_mixing_separates_rounds() {
        let a = mix(1 ^ mix(0));
        let b = mix(1 ^ mix(1));
        assert_ne!(a, b);
    }

    #[test]
    fn clean_randomized_scenario_verifies() {
        // A plan with an impossible rate injects nothing; the verdict
        // must be clean and digest-identical by construction.
        let plan = FaultPlan::new(7).with_max_faults(0);
        let v = verify_plan(Scenario::Randomized, 3, &plan);
        assert!(v.problems.is_empty(), "{:?}", v.problems);
        assert_eq!(v.run.injected, 0);
    }

    #[test]
    fn soak_injects_and_reports() {
        let report = run_soak(0xA5, 6, 1, 1);
        assert!(report.runs >= 4, "one round covers all scenarios");
        assert!(report.ok(), "soak found problems: {:?}", report.problems);
    }

    #[test]
    fn report_json_is_single_line() {
        let report = SoakReport::default();
        let json = report.to_json(1, 16);
        assert_eq!(json.lines().count(), 1);
        assert!(json.contains(r#""benchmark":"chaos_soak""#));
    }

    #[test]
    fn sched_preempt_faults_are_absorbed() {
        // Scheduler preemption alone must never change the SMP outcome.
        let plan = FaultPlan::new(11).with_sites(&[FaultSite::SchedPreempt]).with_rate(2);
        let v = verify_plan(Scenario::Smp, 5, &plan);
        assert!(v.problems.is_empty(), "{:?}", v.problems);
        assert!(v.run.injected > 0, "preemption site never consulted");
    }
}
