//! Fixed-bucket log2 latency histogram.
//!
//! The fleet benchmark records thousands of cycle samples
//! and must serialise byte-identical `BENCH_fleet.json` across runs, so
//! the histogram is all-integer: no floats anywhere in the record or
//! quantile paths. Buckets are logarithmic with four linear sub-buckets
//! per octave (two mantissa bits below the leading one), bounding the
//! quantile error at ~12.5% while keeping the whole table at 256
//! counters regardless of sample range.

/// Number of buckets: values 0..4 exact, then 4 sub-buckets per octave
/// up to 2^63.
const BUCKETS: usize = 256;

/// Log2 histogram with 4 sub-buckets per octave.
#[derive(Debug, Clone)]
pub struct Log2Hist {
    counts: [u64; BUCKETS],
    total: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Log2Hist {
    fn default() -> Self {
        Log2Hist { counts: [0; BUCKETS], total: 0, sum: 0, min: u64::MAX, max: 0 }
    }
}

/// Bucket index for a value: exact below 4, then `(exponent-1)*4 +
/// two-mantissa-bits` (so 4..8 is still exact).
fn bucket_of(v: u64) -> usize {
    if v < 4 {
        return v as usize;
    }
    let e = 63 - v.leading_zeros() as usize; // >= 2
    let m = ((v >> (e - 2)) & 3) as usize;
    (e - 1) * 4 + m
}

/// Lower bound of a bucket (its reported representative value).
fn bucket_floor(idx: usize) -> u64 {
    if idx < 4 {
        return idx as u64;
    }
    let e = idx / 4 + 1;
    let m = (idx % 4) as u64;
    (1u64 << e) + (m << (e - 2))
}

impl Log2Hist {
    pub fn new() -> Self {
        Log2Hist::default()
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.total += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    pub fn samples(&self) -> u64 {
        self.total
    }

    /// Exact maximum recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.max
        }
    }

    /// Exact minimum recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Integer mean (0 when empty).
    pub fn mean(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.sum / self.total
        }
    }

    /// The `num/den` quantile as the floor of the first bucket whose
    /// cumulative count reaches it — e.g. `quantile(999, 1000)` is p999.
    /// All-integer: `cum * den >= total * num` avoids division entirely.
    pub fn quantile(&self, num: u64, den: u64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let threshold = self.total as u128 * num as u128;
        let mut cum: u128 = 0;
        for (idx, &c) in self.counts.iter().enumerate() {
            cum += c as u128 * den as u128;
            if cum >= threshold {
                return bucket_floor(idx).max(self.min).min(self.max);
            }
        }
        self.max
    }

    pub fn p50(&self) -> u64 {
        self.quantile(50, 100)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(99, 100)
    }

    pub fn p999(&self) -> u64 {
        self.quantile(999, 1000)
    }
}

/// A serialisable percentile summary of one histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatSummary {
    pub p50: u64,
    pub p99: u64,
    pub p999: u64,
    pub max: u64,
    pub mean: u64,
    pub samples: u64,
}

impl LatSummary {
    pub fn of(h: &Log2Hist) -> Self {
        LatSummary { p50: h.p50(), p99: h.p99(), p999: h.p999(), max: h.max(), mean: h.mean(), samples: h.samples() }
    }

    /// Hand-rolled JSON object (the repo emits all BENCH files without a
    /// serde dependency).
    pub fn json(&self) -> String {
        format!(
            "{{\"p50\": {}, \"p99\": {}, \"p999\": {}, \"max\": {}, \"mean\": {}, \"samples\": {}}}",
            self.p50, self.p99, self.p999, self.max, self.mean, self.samples
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..8u64 {
            assert_eq!(bucket_floor(bucket_of(v)), v, "v = {v}");
        }
    }

    #[test]
    fn buckets_are_monotone_and_bounded() {
        let mut last = 0;
        for shift in 2..63 {
            for m in 0..4u64 {
                let v = (1u64 << shift) + (m << (shift - 2));
                let idx = bucket_of(v);
                assert!(idx >= last, "bucket index regressed at {v}");
                assert!(idx < BUCKETS);
                assert_eq!(bucket_floor(idx), v, "floor of an exact boundary");
                last = idx;
            }
        }
        assert!(bucket_of(u64::MAX) < BUCKETS);
    }

    #[test]
    fn relative_error_is_bounded() {
        // Any value maps to a bucket floor within 1/4 of itself.
        for v in [5u64, 100, 1000, 12_345, 1 << 20, (1 << 40) + 12_345] {
            let f = bucket_floor(bucket_of(v));
            assert!(f <= v && (v - f) * 4 <= v, "v = {v}, floor = {f}");
        }
    }

    #[test]
    fn quantiles_of_uniform_ramp() {
        let mut h = Log2Hist::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.p50();
        let p99 = h.p99();
        let p999 = h.p999();
        assert!((375..=500).contains(&p50), "p50 = {p50}");
        assert!((750..=990).contains(&p99), "p99 = {p99}");
        assert!(p999 >= p99 && p999 <= 1000, "p999 = {p999}");
        assert_eq!(h.max(), 1000);
        assert_eq!(h.samples(), 1000);
    }

    #[test]
    fn single_sample_quantiles_collapse() {
        let mut h = Log2Hist::new();
        h.record(777);
        assert_eq!(h.p50(), h.p999());
        assert!(h.p50() <= 777 && h.p50() >= 777 - 777 / 4);
        assert_eq!(h.max(), 777);
        assert_eq!(h.mean(), 777);
    }

    #[test]
    fn empty_hist_is_all_zero() {
        let h = Log2Hist::new();
        assert_eq!((h.p50(), h.p99(), h.p999(), h.max(), h.mean(), h.samples()), (0, 0, 0, 0, 0, 0));
    }

    #[test]
    fn summary_json_is_deterministic() {
        let mut h = Log2Hist::new();
        for v in [10u64, 20, 30, 1000] {
            h.record(v);
        }
        let a = LatSummary::of(&h).json();
        let b = LatSummary::of(&h).json();
        assert_eq!(a, b);
        assert!(a.starts_with("{\"p50\":"));
    }
}
