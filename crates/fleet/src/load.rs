//! Open-loop arrival generation.
//!
//! A *closed-loop* driver issues the next request when the previous one
//! completes, which hides queueing delay exactly where tail latency
//! lives (coordinated omission). The fleet benchmark instead draws a
//! request arrival schedule up front from a seeded integer LCG — the
//! arrival process never looks at completions, so a saturated core
//! shows up as unbounded queue wait in p99/p999 rather than as a
//! silently reduced request rate.
//!
//! Inter-arrival gaps approximate an exponential distribution with
//! integer arithmetic only (the BENCH files must be byte-deterministic):
//! a geometric octave count from the draw's trailing zeros plus 16
//! uniform mantissa bits, scaled by `ln 2 ~= 710/1024`.

/// Deterministic 64-bit LCG (Knuth's MMIX multiplier); the high 32 bits
/// of the state are the usable draw.
#[derive(Debug, Clone)]
pub struct Lcg {
    state: u64,
}

impl Lcg {
    pub fn new(seed: u64) -> Self {
        // Avoid the all-zero fixed point of the low bits.
        Lcg { state: seed ^ 0x9e37_79b9_7f4a_7c15 }
    }

    /// Next 32 uniform bits.
    pub fn next_u32(&mut self) -> u32 {
        self.state = self.state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (self.state >> 32) as u32
    }

    /// Uniform draw in `0..n` (n > 0) via a 64-bit multiply-shift.
    pub fn below(&mut self, n: u64) -> u64 {
        ((self.next_u32() as u64 * n) >> 32).min(n - 1)
    }
}

/// Open-loop arrival generator with a target mean inter-arrival gap in
/// cycles.
#[derive(Debug, Clone)]
pub struct OpenLoop {
    lcg: Lcg,
    mean_gap: u64,
    /// Cumulative arrival clock.
    now: u64,
}

impl OpenLoop {
    pub fn new(seed: u64, mean_gap: u64) -> Self {
        OpenLoop { lcg: Lcg::new(seed), mean_gap, now: 0 }
    }

    /// Next inter-arrival gap: `(k + u) * ln2 * mean` where `k` is
    /// geometric (P(k) = 2^-(k+1), mean 1) and `u` is 16 uniform bits —
    /// an integer-only exponential approximation with mean ~= mean_gap.
    pub fn next_gap(&mut self) -> u64 {
        let r = self.lcg.next_u32();
        let k = (r | 0x8000_0000).trailing_zeros() as u64; // 0..=31, P(k)=2^-(k+1)
        let frac = (self.lcg.next_u32() >> 16) as u64; // 16 uniform bits
        let units = (k << 16) + frac; // (k + u) in 2^-16 units
        ((units as u128 * 710 * self.mean_gap as u128) >> 26) as u64
    }

    /// Absolute arrival time of the next request.
    pub fn next_arrival(&mut self) -> u64 {
        self.now += self.next_gap();
        self.now
    }

    /// Draw the full schedule for `n` requests (non-decreasing times).
    pub fn schedule(&mut self, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.next_arrival()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let a = OpenLoop::new(42, 10_000).schedule(500);
        let b = OpenLoop::new(42, 10_000).schedule(500);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_diverge() {
        let a = OpenLoop::new(1, 10_000).schedule(100);
        let b = OpenLoop::new(2, 10_000).schedule(100);
        assert_ne!(a, b);
    }

    #[test]
    fn mean_gap_is_near_target() {
        let mut ol = OpenLoop::new(7, 10_000);
        let n = 20_000u64;
        let total: u64 = (0..n).map(|_| ol.next_gap()).sum();
        let mean = total / n;
        // (k + u) has mean 1.5; times ln2 gives ~1.04 of the target.
        assert!((9_000..12_500).contains(&mean), "mean gap = {mean}");
    }

    #[test]
    fn gaps_have_an_exponential_tail() {
        let mut ol = OpenLoop::new(7, 10_000);
        let gaps: Vec<u64> = (0..20_000).map(|_| ol.next_gap()).collect();
        let long = gaps.iter().filter(|&&g| g > 30_000).count();
        let short = gaps.iter().filter(|&&g| g < 5_000).count();
        // A uniform distribution would have no 3x-mean outliers at all.
        assert!(long > 100, "tail beyond 3x mean: {long}");
        assert!(short > 4_000, "mass below half mean: {short}");
    }

    #[test]
    fn schedule_is_monotone() {
        let s = OpenLoop::new(3, 1_000).schedule(1_000);
        assert!(s.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn below_is_in_range_and_deterministic() {
        let mut a = Lcg::new(5);
        let mut b = Lcg::new(5);
        for _ in 0..1000 {
            let x = a.below(33);
            assert!(x < 33);
            assert_eq!(x, b.below(33));
        }
    }
}
