//! Fleet-scale multi-tenant serving simulation.
//!
//! Three phases over **one** LightZone instance:
//!
//! 1. **Resident pool** — `tenants` VEs are spawned and run to
//!    completion, each a *real assembled guest program* (alternating
//!    httpd/oltp [`FleetShape`]s) that allocates `domains_per_tenant`
//!    isolation domains and serves `requests_per_tenant` requests
//!    through call gates, self-timing every request with
//!    `CLOCK_GETTIME` reads the host later reads back from guest
//!    memory. Tenants stay resident after exit (their module state is
//!    not reaped), so the domain population peaks at
//!    `tenants * (domains_per_tenant + 1)`.
//! 2. **Open-loop overlay** — a seeded exponential arrival schedule
//!    ([`OpenLoop`]) is replayed against the *measured* per-request
//!    service times on a `cores`-way queueing model (tenant `t` pinned
//!    to core `t % cores`). Queue wait is `start - arrival`; a
//!    saturated core shows up as p99/p999 latency, never as a reduced
//!    rate (no coordinated omission).
//! 3. **Churn** — `churn_ves` minimal VEs are spawned, run, and reaped
//!    back to back. With enough churn the VMID space rolls over and the
//!    generation-tagged allocator starts recycling, which is what the
//!    rollover-shootdown counters (and the penetration tests) exercise.
//!
//! Everything is integer arithmetic over deterministic seeds, so two
//! runs of the same config produce byte-identical [`FleetRun`]s.
//!
//! Demand paging is deliberately *not* warmed out of the request loop:
//! the first visit of each (domain, page) pair faults inside the timed
//! window, producing a deterministic latency tail — that is what the
//! p999 column is for.

use crate::hist::{LatSummary, Log2Hist};
use crate::load::{Lcg, OpenLoop};
use lightzone::api::{LzAsm, LzProgram, LzProgramBuilder, RW, SAN_PAN, SAN_TTBR};
use lightzone::gate::layout;
use lightzone::LightZone;
use lz_arch::{Platform, PAGE_SIZE};
use lz_kernel::kvm::VmidAllocator;
use lz_kernel::{Event, Pid, Sysno, VmProt};
use lz_workloads::FleetShape;

const CODE: u64 = 0x40_0000;
/// The per-request switch sequence (pairs of 8-byte words).
const SEQ_BASE: u64 = 0x2000_0000;
/// Calibration + per-request timing results, read back by the host.
const RESULTS_BASE: u64 = 0x2800_0000;
/// Per-domain 4 KB arena pages.
const ARENA_BASE: u64 = 0x3000_0000;

const RUN_LIMIT: u64 = 400_000_000;
/// Instructions per epoch in the multi-core wave drain. Tenants share
/// no memory, so the quantum only balances barrier overhead against
/// trap-handling latency (a pending VE exit waits out the epoch).
const FLEET_QUANTUM: u64 = 16_384;

/// One fleet benchmark configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    pub platform: Platform,
    /// Simulated cores; tenants run on core `t % cores` and the
    /// queueing overlay models one queue per core.
    pub cores: usize,
    pub tenants: usize,
    /// Isolation domains each tenant allocates (plus its default pgt0).
    pub domains_per_tenant: usize,
    pub requests_per_tenant: usize,
    pub seed: u64,
    /// Mean inter-arrival gap of the open-loop schedule, in cycles.
    pub arrival_gap_mean: u64,
    /// Spawn/run/reap cycles in the churn phase.
    pub churn_ves: usize,
    /// Override the VMID space (tests shrink it to force rollover
    /// cheaply); `None` keeps the architectural 16-bit space.
    pub vmid_space: Option<u16>,
}

impl FleetConfig {
    /// The BENCH_fleet configuration: 64 tenants x (32 + 1) domains
    /// = 2,112 live domains, and on the 1-core machine enough churn to
    /// roll the full 16-bit VMID space over at least once.
    pub fn paper(platform: Platform, cores: usize) -> Self {
        FleetConfig {
            platform,
            cores,
            tenants: 64,
            domains_per_tenant: 32,
            requests_per_tenant: 16,
            seed: 0x11a5_77a0,
            arrival_gap_mean: 40_000,
            // 64 residents + 66,000 churn VEs > 65,535 VMIDs: the 1-core
            // leg crosses the rollover; the 4-core leg keeps churn light.
            churn_ves: if cores == 1 { 66_000 } else { 2_048 },
            vmid_space: None,
        }
    }

    /// A seconds-scale configuration for unit tests: a shrunken VMID
    /// space makes even light churn roll over.
    pub fn smoke(cores: usize) -> Self {
        FleetConfig {
            platform: Platform::Carmel,
            cores,
            tenants: 6,
            domains_per_tenant: 4,
            requests_per_tenant: 4,
            seed: 0x11a5_77a0,
            arrival_gap_mean: 30_000,
            churn_ves: 40,
            vmid_space: Some(32),
        }
    }
}

/// One complete fleet run's results (all integers, all deterministic).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetRun {
    pub cores: usize,
    pub tenants: u64,
    pub requests: u64,
    /// Live domains after the resident phase (tenants are not reaped).
    pub domains_live_peak: u64,
    pub arrival_gap_mean: u64,
    /// Per-gate-switch cycles (calibrated, averaged per request).
    pub switch_cycles: LatSummary,
    /// Per-request service cycles (switches + syscalls + arena work).
    pub service_cycles: LatSummary,
    /// End-to-end request latency under the open-loop schedule
    /// (queue wait + service).
    pub request_latency: LatSummary,
    pub vmid_recycles: u64,
    pub vmid_rollovers: u64,
    pub asid_recycles: u64,
    pub rollover_shootdowns: u64,
    pub ve_reaps: u64,
    pub domains_live_final: u64,
}

impl FleetRun {
    /// One JSON object, keys in a fixed order (byte-deterministic).
    pub fn json(&self) -> String {
        format!(
            concat!(
                "{{\"cores\": {}, \"tenants\": {}, \"requests\": {}, ",
                "\"domains_live_peak\": {}, \"arrival_gap_mean\": {}, ",
                "\"switch_cycles\": {}, \"service_cycles\": {}, ",
                "\"request_latency\": {}, \"vmid_recycles\": {}, ",
                "\"vmid_rollovers\": {}, \"asid_recycles\": {}, ",
                "\"rollover_shootdowns\": {}, \"ve_reaps\": {}, ",
                "\"domains_live_final\": {}}}"
            ),
            self.cores,
            self.tenants,
            self.requests,
            self.domains_live_peak,
            self.arrival_gap_mean,
            self.switch_cycles.json(),
            self.service_cycles.json(),
            self.request_latency.json(),
            self.vmid_recycles,
            self.vmid_rollovers,
            self.asid_recycles,
            self.rollover_shootdowns,
            self.ve_reaps,
            self.domains_live_final,
        )
    }
}

/// Build one tenant's guest program.
///
/// Register map (x0–x8 are syscall-clobbered, everything else persists
/// across traps): x17 gate target, x19 current domain's arena page,
/// x20 results cursor, x21 sequence cursor, x22 request counter,
/// x23 switch counter, x24 request t0, x25 calibration, x26 switch-
/// section delta, x27 request delta.
fn tenant_prog(shape: FleetShape, domains: usize, requests: usize, seq_seed: u64) -> LzProgram {
    let switches = shape.switches_per_request as usize;
    let pairs = requests * switches;
    let mut lcg = Lcg::new(seq_seed);
    let mut seq = Vec::with_capacity(pairs * 16);
    for _ in 0..pairs {
        let d = lcg.below(domains as u64);
        seq.extend_from_slice(&layout::gate_va(d as u16).to_le_bytes());
        seq.extend_from_slice(&(ARENA_BASE + d * PAGE_SIZE).to_le_bytes());
    }
    let seq_pages = (pairs * 16).div_ceil(PAGE_SIZE as usize) as u64;

    let mut b = LzProgramBuilder::new(CODE);
    b.with_segment(SEQ_BASE, seq, VmProt::R);
    b.with_segment(RESULTS_BASE, vec![0u8; PAGE_SIZE as usize], VmProt::RW);
    b.with_segment(ARENA_BASE, vec![0u8; domains * PAGE_SIZE as usize], VmProt::RW);
    assert!(8 + requests * 16 <= PAGE_SIZE as usize, "results ring fits one page");

    b.asm.lz_enter(true, SAN_TTBR);
    // Setup: one table + gate + 4 KB arena page per domain. lz_alloc
    // returns deterministic table ids 1..=domains.
    for d in 0..domains as u64 {
        b.asm.lz_alloc();
        b.asm.lz_map_gate_pgt_imm(d + 1, d);
        b.asm.lz_prot_imm(ARENA_BASE + d * PAGE_SIZE, PAGE_SIZE, d + 1, RW);
    }
    // Warm the sequence pages in the default domain (arena pages stay
    // cold on purpose — their first-touch faults are the latency tail).
    b.asm.mov_imm64(21, SEQ_BASE);
    b.asm.mov_imm64(23, seq_pages);
    let warm = b.asm.label();
    b.asm.bind(warm);
    b.asm.ldr(1, 21, 0);
    b.asm.add_imm(21, 21, 4095);
    b.asm.add_imm(21, 21, 1);
    b.asm.subs_imm(23, 23, 1);
    b.asm.b_ne(warm);
    // Calibration: the delta of two back-to-back clock reads prices one
    // clock trap; RESULTS[0] = calib.
    let clock = Sysno::ClockGettime.nr();
    b.asm.mov_imm64(20, RESULTS_BASE);
    b.asm.mov_imm64(8, clock);
    b.asm.svc(0);
    b.asm.mov_reg(24, 0);
    b.asm.mov_imm64(8, clock);
    b.asm.svc(0);
    b.asm.sub_reg(25, 0, 24);
    b.asm.str(25, 20, 0);
    b.asm.add_imm(20, 20, 8);
    // Request loop.
    b.asm.mov_imm64(21, SEQ_BASE);
    b.asm.mov_imm64(22, requests as u64);
    let req_top = b.asm.label();
    b.asm.bind(req_top);
    b.asm.mov_imm64(8, clock);
    b.asm.svc(0);
    b.asm.mov_reg(24, 0); // t0
    b.asm.mov_imm64(23, switches as u64);
    let sw_top = b.asm.label();
    b.asm.bind(sw_top);
    b.asm.ldr(17, 21, 0); // gate address
    b.asm.ldr(19, 21, 8); // arena page of the target domain
    b.asm.add_imm(21, 21, 16);
    b.asm.blr(17);
    let entry = b.here(); // the single ENTRY shared by every gate
    b.asm.ldr(1, 19, 0); // 8-byte access in the entered domain
    b.asm.subs_imm(23, 23, 1);
    b.asm.b_ne(sw_top);
    b.asm.mov_imm64(8, clock);
    b.asm.svc(0);
    b.asm.sub_reg(26, 0, 24); // t1 - t0: switch section
                              // Kernel round trips (Gettid: a no-op syscall that does not
                              // reschedule), then application data work on the current arena.
    let tid = Sysno::Gettid.nr();
    for _ in 0..shape.syscalls_per_request {
        b.asm.mov_imm64(8, tid);
        b.asm.svc(0);
    }
    for j in 0..shape.arena_touches as u64 {
        b.asm.ldr(1, 19, (j * 64) % PAGE_SIZE);
    }
    b.asm.mov_imm64(8, clock);
    b.asm.svc(0);
    b.asm.sub_reg(27, 0, 24); // t2 - t0: whole request
    b.asm.str(26, 20, 0);
    b.asm.str(27, 20, 8);
    b.asm.add_imm(20, 20, 16);
    b.asm.subs_imm(22, 22, 1);
    b.asm.b_ne(req_top);
    b.asm.exit_imm(0);
    for g in 0..domains as u16 {
        b.register_gate_entry(g, entry);
    }
    b.build()
}

/// The churn-phase program: a minimal VE that enters and exits.
fn churn_prog() -> LzProgram {
    let mut b = LzProgramBuilder::new(CODE);
    b.asm.lz_enter(false, SAN_PAN);
    b.asm.exit_imm(0);
    b.build()
}

/// Read one u64 from an (exited but unreaped) guest's memory; 0 if the
/// address was never populated.
fn read_guest_u64(lz: &LightZone, pid: Pid, va: u64) -> u64 {
    let Some(pa) = lz.kernel.process(pid).mm.page_at(va & !(PAGE_SIZE - 1)) else {
        return 0;
    };
    lz.kernel.machine.mem.read_u64(pa + (va & (PAGE_SIZE - 1))).unwrap_or(0)
}

/// Execute one full fleet run.
///
/// # Panics
///
/// Panics if a tenant or churn VE fails to exit cleanly — the fleet
/// benchmark doubles as an end-to-end invariant check.
pub fn run_fleet(cfg: &FleetConfig) -> FleetRun {
    assert!(cfg.cores >= 1 && cfg.tenants >= 1 && cfg.domains_per_tenant >= 1);
    let mut lz = LightZone::new_host(cfg.platform);
    if let Some(space) = cfg.vmid_space {
        lz.kernel.vmids = VmidAllocator::with_space(space);
    }
    if cfg.cores > 1 {
        lz.kernel.machine.configure_smp(cfg.cores);
    }
    let shapes = [lz_workloads::httpd::fleet_shape(), lz_workloads::oltp::fleet_shape()];

    // Phase 1: resident tenants. On one core each runs to completion
    // sequentially; on an SMP machine every wave of `cores` tenants
    // drains *concurrently* on the epoch executor — each tenant pinned
    // to core `t % cores`, executing [`FLEET_QUANTUM`]-instruction
    // epochs with all VE traps handled barrier-side in core order, so
    // the drain is byte-deterministic on both the parallel and the
    // replay backend.
    let mut services: Vec<Vec<u64>> = Vec::with_capacity(cfg.tenants);
    let mut switch_hist = Log2Hist::new();
    let mut service_hist = Log2Hist::new();
    let spawn_tenant = |lz: &mut LightZone, t: usize| {
        let shape = shapes[t % shapes.len()];
        let prog = tenant_prog(
            shape,
            cfg.domains_per_tenant,
            cfg.requests_per_tenant,
            cfg.seed ^ (t as u64 + 1).wrapping_mul(0x9e37_79b9),
        );
        let pid = lz.spawn(&prog);
        // `schedule_to`, not `enter_process`: the previous tenant left
        // the core in VE state (HCR/VBAR/VTTBR), and the scheduler path
        // restores the host configuration for a fresh process.
        lz.schedule_to(pid);
        pid
    };
    let mut record_tenant = |lz: &LightZone, t: usize, pid: Pid, services: &mut Vec<Vec<u64>>| {
        let shape = shapes[t % shapes.len()];
        let calib = read_guest_u64(lz, pid, RESULTS_BASE);
        let s = (shape.switches_per_request as u64).max(1);
        let mut per_tenant = Vec::with_capacity(cfg.requests_per_tenant);
        for r in 0..cfg.requests_per_tenant as u64 {
            let sw = read_guest_u64(lz, pid, RESULTS_BASE + 8 + r * 16);
            let rq = read_guest_u64(lz, pid, RESULTS_BASE + 16 + r * 16);
            switch_hist.record(sw.saturating_sub(calib) / s);
            let service = rq.saturating_sub(2 * calib).max(1);
            service_hist.record(service);
            per_tenant.push(service);
        }
        services.push(per_tenant);
    };
    if cfg.cores == 1 {
        for t in 0..cfg.tenants {
            let pid = spawn_tenant(&mut lz, t);
            let ev = lz.run(RUN_LIMIT);
            assert_eq!(ev, Event::Exited(0), "tenant {t} did not exit cleanly");
            record_tenant(&lz, t, pid, &mut services);
        }
    } else {
        let n = cfg.cores;
        for wave in 0..cfg.tenants.div_ceil(n) {
            // Set up the wave: one tenant per core, entered via the
            // costed VE scheduling path on its own core. `cur` is
            // cleared between set-ups — with several processes live at
            // once the active register state belongs to the core, not
            // to a single kernel-wide current process.
            let tenants: Vec<usize> = (wave * n..((wave + 1) * n).min(cfg.tenants)).collect();
            let mut jobs: Vec<(usize, Pid, usize)> = Vec::with_capacity(tenants.len());
            for &t in &tenants {
                lz.kernel.machine.switch_core(t % n);
                let pid = spawn_tenant(&mut lz, t);
                lz.kernel.clear_current();
                jobs.push((t % n, pid, t));
            }
            // Drain the wave in epochs until every tenant exited.
            let mut done = vec![false; jobs.len()];
            let mut spent = vec![0u64; jobs.len()];
            while done.iter().any(|&d| !d) {
                let mut budgets = vec![0u64; n];
                for (j, &(core, ..)) in jobs.iter().enumerate() {
                    if !done[j] {
                        budgets[core] = FLEET_QUANTUM;
                    }
                }
                let results = lz.kernel.machine.run_epoch(&budgets);
                for (j, &(core, pid, t)) in jobs.iter().enumerate() {
                    if done[j] {
                        continue;
                    }
                    let (exit, used) = results[core];
                    spent[j] += used;
                    assert!(spent[j] <= RUN_LIMIT, "tenant {t} did not exit cleanly");
                    if exit == lz_machine::Exit::Limit {
                        continue;
                    }
                    lz.kernel.machine.switch_core(core);
                    lz.kernel.set_current(pid);
                    match lz.dispatch_exit(exit) {
                        None => {}
                        Some(Event::Exited(0)) => done[j] = true,
                        Some(ev) => panic!("tenant {t} did not exit cleanly: {ev:?}"),
                    }
                    lz.kernel.clear_current();
                }
            }
            for &(_, pid, t) in &jobs {
                record_tenant(&lz, t, pid, &mut services);
            }
        }
        lz.kernel.machine.switch_core(0);
    }
    let domains_live_peak = lz.module.domains_live();

    // Phase 2: open-loop queueing overlay over the measured services.
    let mut ol = OpenLoop::new(cfg.seed, cfg.arrival_gap_mean);
    let mut core_free = vec![0u64; cfg.cores];
    let mut latency_hist = Log2Hist::new();
    let total = cfg.tenants * cfg.requests_per_tenant;
    for idx in 0..total {
        let t = idx % cfg.tenants;
        let r = idx / cfg.tenants;
        let arrival = ol.next_arrival();
        let service = services[t][r];
        let core = t % cfg.cores;
        let start = arrival.max(core_free[core]);
        core_free[core] = start + service;
        latency_hist.record(start - arrival + service);
    }

    // Phase 3: churn — spawn/run/reap until the VMID space rolls over.
    let churn = churn_prog();
    for i in 0..cfg.churn_ves {
        let pid = lz.spawn(&churn);
        lz.schedule_to(pid);
        let ev = lz.run(RUN_LIMIT);
        assert_eq!(ev, Event::Exited(0), "churn VE {i} did not exit cleanly");
        assert!(lz.reap(pid), "churn VE {i} could not be reaped");
    }

    FleetRun {
        cores: cfg.cores,
        tenants: cfg.tenants as u64,
        requests: total as u64,
        domains_live_peak,
        arrival_gap_mean: cfg.arrival_gap_mean,
        switch_cycles: LatSummary::of(&switch_hist),
        service_cycles: LatSummary::of(&service_hist),
        request_latency: LatSummary::of(&latency_hist),
        vmid_recycles: lz.kernel.vmids.recycles(),
        vmid_rollovers: lz.kernel.vmids.rollovers(),
        asid_recycles: lz.kernel.asids.recycles() + lz.module.asid_recycles(),
        rollover_shootdowns: lz.kernel.stats.rollover_shootdowns + lz.module.rollover_shootdowns,
        ve_reaps: lz.module.reaps(),
        domains_live_final: lz.module.domains_live(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_is_deterministic() {
        let cfg = FleetConfig::smoke(1);
        let a = run_fleet(&cfg);
        let b = run_fleet(&cfg);
        assert_eq!(a, b);
        assert_eq!(a.json(), b.json());
    }

    #[test]
    fn smoke_run_counts_line_up() {
        let cfg = FleetConfig::smoke(1);
        let run = run_fleet(&cfg);
        // 6 tenants x (4 domains + pgt0) live after the resident phase.
        assert_eq!(run.domains_live_peak, 6 * 5);
        assert_eq!(run.domains_live_final, run.domains_live_peak, "churn VEs all reaped");
        assert_eq!(run.ve_reaps, cfg.churn_ves as u64);
        // 6 residents + 40 churn VEs over a 32-VMID space must recycle.
        assert!(run.vmid_recycles >= 14, "recycles = {}", run.vmid_recycles);
        assert!(run.vmid_rollovers >= 1, "rollovers = {}", run.vmid_rollovers);
        assert!(run.rollover_shootdowns >= run.vmid_recycles, "every recycle shoots down");
        assert_eq!(run.requests, 24);
        assert_eq!(run.switch_cycles.samples, 24);
        assert_eq!(run.request_latency.samples, 24);
    }

    #[test]
    fn switch_and_service_cycles_are_sane() {
        let run = run_fleet(&FleetConfig::smoke(1));
        // A calibrated gate switch costs tens-to-hundreds of cycles...
        assert!(run.switch_cycles.p50 >= 20, "switch p50 = {}", run.switch_cycles.p50);
        assert!(run.switch_cycles.p50 <= 10_000, "switch p50 = {}", run.switch_cycles.p50);
        // ...and a request (switches + syscalls + touches) much more.
        assert!(run.service_cycles.p50 > run.switch_cycles.p50);
        // Each open-loop latency sample is wait + service of the same
        // request, so the latency distribution dominates service.
        assert!(run.request_latency.p50 >= run.service_cycles.p50);
        assert!(run.request_latency.p999 >= run.request_latency.p50);
    }

    #[test]
    fn four_core_wave_drain_matches_replay() {
        // The epoch wave drain must produce byte-identical results on
        // the parallel and the sequential-replay executor. Flipping the
        // global default mid-suite is safe: the backends are
        // semantically identical, which is exactly what this asserts.
        let cfg = FleetConfig::smoke(4);
        let prior = lz_machine::default_parallel();
        lz_machine::set_default_parallel(true);
        let a = run_fleet(&cfg);
        lz_machine::set_default_parallel(false);
        let b = run_fleet(&cfg);
        lz_machine::set_default_parallel(prior);
        assert_eq!(a, b, "parallel and replay wave drains diverged");
        assert_eq!(a.json(), b.json());
    }

    #[test]
    fn four_core_overlay_waits_less() {
        // Same measured services, four queues instead of one: the
        // open-loop tail must not get worse.
        let one = run_fleet(&FleetConfig::smoke(1));
        let four = run_fleet(&FleetConfig::smoke(4));
        assert!(
            four.request_latency.p99 <= one.request_latency.p99.saturating_mul(4),
            "4-core p99 {} vs 1-core p99 {}",
            four.request_latency.p99,
            one.request_latency.p99
        );
        assert_eq!(four.domains_live_peak, one.domains_live_peak);
    }
}
