//! Chaos-driven crash-recovery soak.
//!
//! One LightZone instance serves a fleet of infinite request-server VEs
//! on the multi-core epoch executor while the chaos engine injects
//! `ve_crash`, `snapshot_corrupt`, and `restart_storm` faults. The
//! [`crate::supervisor`] state machine turns every death into a typed
//! [`FaultReport`] and decides kill → backoff → warm-restart →
//! quarantine; warm restarts rebuild the VE from its last
//! request-boundary [`VeSnapshot`] under a fresh generation-tagged
//! VMID/ASID, and admission control sheds restarts with typed denials
//! when a core's ready queue is full.
//!
//! Every number is integer arithmetic over seeded streams: two runs of
//! the same [`RecoveryConfig`] produce byte-identical [`RecoveryRun`]s,
//! on both the parallel and the sequential-replay epoch backend (all
//! chaos consultations happen barrier-side on the main thread).
//!
//! Invariants are checked *across every restart*, not just at the end:
//!
//! - live (VMID, stage-2 root) pairs stay unique after each restart;
//! - layer counters agree (module `ve_restores` == supervisor warm
//!   restarts, `snapshot_rejects` == corrupt images refused) and only
//!   ever grow;
//! - every injected fault is contained;
//! - after the final reap the frame allocator is back to its pre-spawn
//!   baseline — a leaked frame anywhere in 10k faults' worth of
//!   kill/reap/restore traffic fails the run;
//! - priority journal events (violations, chaos faults) survive
//!   drop-oldest eviction.

use crate::hist::{LatSummary, Log2Hist};
use crate::load::Lcg;
use crate::supervisor::{FaultKind, FaultReport, Supervisor, SupervisorConfig, TenantState, Verdict};
use lightzone::api::{LzAsm, LzProgram, LzProgramBuilder, RW, SAN_TTBR};
use lightzone::gate::layout;
use lightzone::module::VeSnapshot;
use lightzone::{LightZone, SECURITY_KILL};
use lz_arch::{Platform, PAGE_SIZE};
use lz_kernel::kvm::VmidAllocator;
use lz_kernel::{Pid, Sysno, VmProt};
use lz_machine::{EventKind, Exit, FaultPlan, FaultSite};
use std::collections::VecDeque;

const CODE: u64 = 0x40_0000;
const SEQ_BASE: u64 = 0x2000_0000;
/// The request counter lives at `RESULTS_BASE`; the watchdog reads it
/// back after every epoch to detect progress.
const RESULTS_BASE: u64 = 0x2800_0000;
const ARENA_BASE: u64 = 0x3000_0000;

/// Gate switches per request; [`PAIRS`] must be a multiple.
const SWITCHES: u16 = 2;
/// Length of the precomputed switch sequence (wrapped by the guest).
const PAIRS: u64 = 32;
/// Instructions per epoch (same quantum as the fleet wave drain).
const QUANTUM: u64 = 16_384;
/// Epochs between invariant probes (restarts probe unconditionally).
const PROBE_EVERY: u64 = 64;

/// One recovery-soak configuration.
#[derive(Debug, Clone)]
pub struct RecoveryConfig {
    pub platform: Platform,
    pub cores: usize,
    /// Tenant slots; slot `s` is pinned to core `s % cores`, and slot 0
    /// runs a deterministically wedging server (it completes
    /// `stuck_after` requests, then spins without progress) so the
    /// watchdog → strikes → quarantine path always fires.
    pub tenants: usize,
    pub domains_per_tenant: usize,
    pub seed: u64,
    /// Run until the chaos engine has injected this many faults.
    pub target_faults: u64,
    /// Chaos fire rate (one fire per `rate` consultations on average).
    pub chaos_rate: u64,
    /// Shrunken VMID space so warm restarts cross generation recycling.
    pub vmid_space: Option<u16>,
    /// Requests between snapshot refreshes at request boundaries.
    pub snapshot_every: u64,
    /// Requests the designated stuck tenant completes before wedging.
    pub stuck_after: u64,
    pub sup: SupervisorConfig,
}

impl RecoveryConfig {
    /// The BENCH_recovery configuration: ≥10k injected faults over a
    /// 12-slot fleet with a 512-VMID space (warm restarts recycle).
    pub fn paper(platform: Platform, cores: usize) -> Self {
        RecoveryConfig {
            platform,
            cores,
            tenants: 12,
            domains_per_tenant: 4,
            seed: 0x5ec0_7e51,
            target_faults: 10_000,
            chaos_rate: 16,
            vmid_space: Some(512),
            snapshot_every: 4,
            stuck_after: 2,
            sup: SupervisorConfig::default(),
        }
    }

    /// A seconds-scale configuration for unit tests.
    pub fn smoke(cores: usize) -> Self {
        RecoveryConfig {
            platform: Platform::Carmel,
            cores,
            tenants: 6,
            domains_per_tenant: 2,
            seed: 0x5ec0_7e51,
            target_faults: 300,
            chaos_rate: 8,
            vmid_space: Some(32),
            snapshot_every: 4,
            stuck_after: 2,
            sup: SupervisorConfig {
                watchdog_budget: 40_000,
                // Three slots share a core: depth 2 guarantees the
                // admission path sheds under a full house.
                max_queue_depth: 2,
                ..Default::default()
            },
        }
    }
}

/// One complete soak's results (all integers, all deterministic).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryRun {
    pub cores: usize,
    pub tenants: u64,
    pub seed: u64,
    pub epochs: u64,
    pub requests: u64,
    /// Generation-initial starts (first admission, quarantine
    /// replacements) — not recoveries.
    pub spawns: u64,
    pub faults_injected: u64,
    pub faults_contained: u64,
    pub ve_crashes: u64,
    pub watchdog_kills: u64,
    pub missed_epochs: u64,
    pub snapshot_corruptions: u64,
    pub warm_restarts: u64,
    pub cold_restarts: u64,
    pub denials: u64,
    pub storm_compressions: u64,
    pub strikes: u64,
    pub quarantines: u64,
    pub snapshots_taken: u64,
    pub vmid_recycles: u64,
    pub rollover_shootdowns: u64,
    pub priority_events: u64,
    pub invariant_violations: u64,
    /// Fault detection → successful restart, in epochs.
    pub recovery_epochs: LatSummary,
}

impl RecoveryRun {
    /// One JSON object, keys in a fixed order (byte-deterministic).
    pub fn json(&self) -> String {
        format!(
            concat!(
                "{{\"cores\": {}, \"tenants\": {}, \"seed\": {}, ",
                "\"epochs\": {}, \"requests\": {}, \"spawns\": {}, ",
                "\"faults_injected\": {}, \"faults_contained\": {}, ",
                "\"ve_crashes\": {}, \"watchdog_kills\": {}, ",
                "\"missed_epochs\": {}, \"snapshot_corruptions\": {}, ",
                "\"warm_restarts\": {}, \"cold_restarts\": {}, ",
                "\"denials\": {}, \"storm_compressions\": {}, ",
                "\"strikes\": {}, \"quarantines\": {}, ",
                "\"snapshots_taken\": {}, \"vmid_recycles\": {}, ",
                "\"rollover_shootdowns\": {}, \"priority_events\": {}, ",
                "\"invariant_violations\": {}, \"recovery_epochs\": {}}}"
            ),
            self.cores,
            self.tenants,
            self.seed,
            self.epochs,
            self.requests,
            self.spawns,
            self.faults_injected,
            self.faults_contained,
            self.ve_crashes,
            self.watchdog_kills,
            self.missed_epochs,
            self.snapshot_corruptions,
            self.warm_restarts,
            self.cold_restarts,
            self.denials,
            self.storm_compressions,
            self.strikes,
            self.quarantines,
            self.snapshots_taken,
            self.vmid_recycles,
            self.rollover_shootdowns,
            self.priority_events,
            self.invariant_violations,
            self.recovery_epochs.json(),
        )
    }
}

/// Build one infinite request-server guest.
///
/// Register map (x0–x8 are syscall-clobbered): x17 gate target, x19
/// arena page, x20 results base, x21 sequence cursor, x22 request
/// counter (stored to `RESULTS_BASE` at every boundary), x23 switch
/// countdown, x24 sequence-wrap countdown, x25 stuck countdown.
fn server_prog(domains: usize, seq_seed: u64, stuck_after: Option<u64>) -> LzProgram {
    let mut lcg = Lcg::new(seq_seed);
    let mut seq = Vec::with_capacity(PAIRS as usize * 16);
    for _ in 0..PAIRS {
        let d = lcg.below(domains as u64);
        seq.extend_from_slice(&layout::gate_va(d as u16).to_le_bytes());
        seq.extend_from_slice(&(ARENA_BASE + d * PAGE_SIZE).to_le_bytes());
    }

    let mut b = LzProgramBuilder::new(CODE);
    b.with_segment(SEQ_BASE, seq, VmProt::R);
    b.with_segment(RESULTS_BASE, vec![0u8; PAGE_SIZE as usize], VmProt::RW);
    b.with_segment(ARENA_BASE, vec![0u8; domains * PAGE_SIZE as usize], VmProt::RW);

    b.asm.lz_enter(true, SAN_TTBR);
    for d in 0..domains as u64 {
        b.asm.lz_alloc();
        b.asm.lz_map_gate_pgt_imm(d + 1, d);
        b.asm.lz_prot_imm(ARENA_BASE + d * PAGE_SIZE, PAGE_SIZE, d + 1, RW);
    }
    b.asm.mov_imm64(20, RESULTS_BASE);
    b.asm.mov_imm64(21, SEQ_BASE);
    b.asm.mov_imm64(22, 0);
    b.asm.mov_imm64(24, PAIRS);
    if stuck_after.is_some() {
        b.asm.mov_imm64(25, stuck_after.unwrap_or(0) + 1);
    }
    let req_top = b.asm.label();
    b.asm.bind(req_top);
    if stuck_after.is_some() {
        // After `stuck_after` completed requests: wedge forever without
        // advancing the boundary counter — watchdog bait.
        let healthy = b.asm.label();
        b.asm.subs_imm(25, 25, 1);
        b.asm.b_ne(healthy);
        let spin = b.asm.label();
        b.asm.bind(spin);
        b.asm.b(spin);
        b.asm.bind(healthy);
    }
    // Request boundary: publish the counter, then serve the request.
    b.asm.add_imm(22, 22, 1);
    b.asm.str(22, 20, 0);
    b.asm.mov_imm64(23, SWITCHES as u64);
    let sw_top = b.asm.label();
    b.asm.bind(sw_top);
    b.asm.ldr(17, 21, 0);
    b.asm.ldr(19, 21, 8);
    b.asm.add_imm(21, 21, 16);
    b.asm.blr(17);
    let entry = b.here(); // the single ENTRY shared by every gate
    b.asm.ldr(1, 19, 0);
    b.asm.subs_imm(23, 23, 1);
    b.asm.b_ne(sw_top);
    // One kernel round trip per request: the trap is where `ve_crash`
    // consultations happen.
    b.asm.mov_imm64(8, Sysno::Gettid.nr());
    b.asm.svc(0);
    // Wrap the switch sequence when its pairs run out.
    let no_wrap = b.asm.label();
    b.asm.subs_imm(24, 24, SWITCHES);
    b.asm.b_ne(no_wrap);
    b.asm.mov_imm64(21, SEQ_BASE);
    b.asm.mov_imm64(24, PAIRS);
    b.asm.bind(no_wrap);
    b.asm.b(req_top);
    for g in 0..domains as u16 {
        b.register_gate_entry(g, entry);
    }
    b.build()
}

/// Read one u64 from a live guest's memory; 0 if never populated.
fn read_guest_u64(lz: &LightZone, pid: Pid, va: u64) -> u64 {
    let Some(pa) = lz.kernel.process(pid).mm.page_at(va & !(PAGE_SIZE - 1)) else {
        return 0;
    };
    lz.kernel.machine.mem.read_u64(pa + (va & (PAGE_SIZE - 1))).unwrap_or(0)
}

/// Everything the soak tracks per tenant slot, outside the supervisor.
struct Slot {
    prog: LzProgram,
    pid: Option<Pid>,
    snapshot: Option<VeSnapshot>,
    /// Last request-counter value the watchdog observed.
    last_req: u64,
    /// Request-counter value at the last snapshot refresh.
    last_snap_req: u64,
    /// A fault happened and the next successful start is a *recovery*
    /// (counted and latency-tracked), not a generation-initial spawn.
    recovering: bool,
}

/// Monotonic cross-layer counters sampled by the continuity probe.
fn counter_sample(lz: &LightZone) -> [u64; 5] {
    let fleet = lz.fleet_section();
    [
        fleet.get("ve_restores").unwrap_or(0),
        fleet.get("snapshot_rejects").unwrap_or(0),
        lz.module.reaps(),
        lz.kernel.machine.chaos.faults_injected,
        lz.kernel.vmids.recycles(),
    ]
}

/// Execute one full recovery soak.
pub fn run_recovery(cfg: &RecoveryConfig) -> RecoveryRun {
    assert!(cfg.cores >= 1 && cfg.tenants >= 1 && cfg.domains_per_tenant >= 1);
    let mut lz = LightZone::new_host(cfg.platform);
    if let Some(space) = cfg.vmid_space {
        lz.kernel.vmids = VmidAllocator::with_space(space);
    }
    if cfg.cores > 1 {
        lz.kernel.machine.configure_smp(cfg.cores);
    }
    let frame_baseline = lz.kernel.machine.mem.allocated_frames();
    lz.kernel.machine.chaos.install(
        FaultPlan::new(cfg.seed)
            .with_sites(&[FaultSite::VeCrash, FaultSite::SnapshotCorrupt, FaultSite::RestartStorm])
            .with_rate(cfg.chaos_rate),
    );

    let mut sup = Supervisor::new(cfg.sup, cfg.tenants);
    let mut slots: Vec<Slot> = (0..cfg.tenants)
        .map(|s| Slot {
            prog: server_prog(
                cfg.domains_per_tenant,
                cfg.seed ^ (s as u64 + 1).wrapping_mul(0x9e37_79b9),
                if s == 0 { Some(cfg.stuck_after) } else { None },
            ),
            pid: None,
            snapshot: None,
            last_req: 0,
            last_snap_req: 0,
            recovering: false,
        })
        .collect();
    let mut ready: Vec<VecDeque<usize>> = vec![VecDeque::new(); cfg.cores];
    // Which slot's live register state currently sits on each core.
    // Cores are multiplexed round-robin, so every swap parks the
    // incumbent (save to its context) before `schedule_to` loads the
    // next VE through the costed scheduling path.
    let mut occupant: Vec<Option<usize>> = vec![None; cfg.cores];

    let mut epoch = 0u64;
    let mut requests = 0u64;
    let mut spawns = 0u64;
    let mut warm_restarts = 0u64;
    let mut cold_restarts = 0u64;
    let mut snapshots_taken = 0u64;
    let mut violations = 0u64;
    let mut recovery_hist = Log2Hist::new();
    let mut last_sample = counter_sample(&lz);
    let epoch_cap = cfg.target_faults.saturating_mul(100).max(10_000);

    // Invariant probe: (VMID, stage-2 root) pairs unique among live
    // VEs, cross-layer counters agree and only grow, faults contained.
    let probe = |lz: &LightZone, last: &mut [u64; 5], warm: u64, corrupt: u64, violations: &mut u64| {
        let mut live: Vec<(Pid, u16, u64)> = lz.module.live_ves().collect();
        live.sort_unstable();
        for w in 0..live.len() {
            for v in w + 1..live.len() {
                if live[w].1 == live[v].1 || live[w].2 == live[v].2 {
                    *violations += 1;
                }
            }
        }
        let now = counter_sample(lz);
        if now.iter().zip(last.iter()).any(|(n, l)| n < l) {
            *violations += 1;
        }
        *last = now;
        if now[0] != warm || now[1] != corrupt {
            *violations += 1;
        }
        let c = &lz.kernel.machine.chaos;
        if c.faults_contained != c.faults_injected {
            *violations += 1;
        }
    };

    while lz.kernel.machine.chaos.faults_injected < cfg.target_faults && epoch < epoch_cap {
        epoch += 1;

        // Admit tenants whose backoff expired, in slot order. A full
        // core queue sheds the attempt with a typed denial.
        for s in 0..cfg.tenants {
            let TenantState::Backoff { until } = sup.ledger(s).state else {
                continue;
            };
            if until > epoch || slots[s].pid.is_some() {
                continue;
            }
            let core = s % cfg.cores;
            if sup.try_admit(s, core, ready[core].len(), epoch).is_err() {
                continue;
            }
            // Warm path: restore from the last request-boundary
            // snapshot under a fresh generation-tagged VMID/ASID. The
            // `snapshot_corrupt` site flips one byte first; the digest
            // check then refuses the image fail-closed and the tenant
            // retries cold after another strike's backoff.
            lz.kernel.machine.switch_core(core);
            if let Some(prev) = occupant[core].take() {
                // Restore rebuilds its VE on this core; park the
                // incumbent's registers first.
                if let Some(prev_pid) = slots[prev].pid {
                    lz.kernel.set_current(prev_pid);
                    lz.kernel.save_current();
                    lz.kernel.clear_current();
                }
            }
            if slots[s].snapshot.is_some() {
                if let Some(draw) = lz.kernel.machine.chaos_fire(FaultSite::SnapshotCorrupt) {
                    lz.kernel.machine.chaos.contained();
                    if let Some(snap) = slots[s].snapshot.as_mut() {
                        snap.x[(draw % 31) as usize] ^= 1;
                    }
                }
            }
            let mut warm = false;
            let pid = match slots[s].snapshot.as_ref().map(|snap| lz.restore_ve(&slots[s].prog, snap)) {
                Some(Some(pid)) => {
                    warm = true;
                    Some(pid)
                }
                Some(None) => {
                    // Refused image: drop it, report the typed fault.
                    slots[s].snapshot = None;
                    slots[s].recovering = true;
                    let report = FaultReport { slot: s, kind: FaultKind::SnapshotCorrupt, epoch };
                    let storm = lz.kernel.machine.chaos_fire(FaultSite::RestartStorm).is_some();
                    if storm {
                        lz.kernel.machine.chaos.contained();
                    }
                    if sup.on_fault(report, storm) == Verdict::Quarantine {
                        sup.replace(s, epoch);
                    }
                    None
                }
                None => Some(lz.spawn(&slots[s].prog)),
            };
            let Some(pid) = pid else { continue };
            let req = read_guest_u64(&lz, pid, RESULTS_BASE);
            slots[s].pid = Some(pid);
            slots[s].last_req = req;
            slots[s].last_snap_req = req;
            ready[core].push_back(s);
            if slots[s].recovering {
                slots[s].recovering = false;
                let lat = epoch.saturating_sub(sup.ledger(s).fault_epoch).max(1);
                recovery_hist.record(lat);
                if warm {
                    warm_restarts += 1;
                } else {
                    cold_restarts += 1;
                }
            } else {
                spawns += 1;
            }
            probe(&lz, &mut last_sample, warm_restarts, sup.stats.snapshot_corruptions, &mut violations);
        }

        // Schedule: one ready tenant per core, round-robin. Swapping
        // the incumbent out goes through park (save to context) +
        // `schedule_to` (the costed VE scheduling path).
        let mut budgets = vec![0u64; cfg.cores];
        let mut sched: Vec<Option<usize>> = vec![None; cfg.cores];
        for core in 0..cfg.cores {
            let Some(s) = ready[core].pop_front() else { continue };
            let Some(pid) = slots[s].pid else { continue };
            if occupant[core] != Some(s) {
                lz.kernel.machine.switch_core(core);
                if let Some(prev) = occupant[core].take() {
                    if let Some(prev_pid) = slots[prev].pid {
                        lz.kernel.set_current(prev_pid);
                        lz.kernel.save_current();
                        lz.kernel.clear_current();
                    }
                }
                lz.schedule_to(pid);
                lz.kernel.clear_current();
                occupant[core] = Some(s);
            }
            sched[core] = Some(s);
            budgets[core] = QUANTUM;
        }
        if budgets.iter().all(|&b| b == 0) {
            continue; // everyone is backing off; let the clock run
        }
        let results = lz.kernel.machine.run_epoch(&budgets);

        // Barrier: service traps, detect deaths, feed the watchdog —
        // in core order, so both epoch backends agree byte-for-byte.
        for core in 0..cfg.cores {
            let Some(s) = sched[core] else { continue };
            let Some(pid) = slots[s].pid else { continue };
            let (exit, used) = results[core];
            let deadline_blown = sup.on_insns(s, used);
            let mut dead = false;
            if exit != Exit::Limit {
                lz.kernel.machine.switch_core(core);
                lz.kernel.set_current(pid);
                dead = lz.dispatch_exit(exit).is_some();
                lz.kernel.clear_current();
            }
            let mut fault: Option<FaultKind> = None;
            if dead {
                // The VE died mid-request (injected crash / violation /
                // contained host panic): already exited, just reap.
                fault = Some(FaultKind::Crash);
            } else {
                let req = read_guest_u64(&lz, pid, RESULTS_BASE);
                if req > slots[s].last_req {
                    let delta = req - slots[s].last_req;
                    slots[s].last_req = req;
                    requests += delta;
                    sup.on_progress(s, delta);
                    if req - slots[s].last_snap_req >= cfg.snapshot_every {
                        // Request boundary: refresh the warm-restart
                        // image from the parked register file.
                        lz.kernel.machine.switch_core(core);
                        lz.kernel.set_current(pid);
                        lz.kernel.save_current();
                        lz.kernel.clear_current();
                        if let Some(snap) = lz.snapshot_ve(pid) {
                            slots[s].snapshot = Some(snap);
                            slots[s].last_snap_req = req;
                            snapshots_taken += 1;
                        }
                    }
                } else if deadline_blown {
                    fault = Some(FaultKind::WatchdogDeadline);
                } else if exit == Exit::Limit && used == 0 {
                    // A scheduled shell that neither trapped nor
                    // retired a single instruction is wedged. (A
                    // serviced trap with zero retirement is normal —
                    // that is just demand paging.)
                    fault = Some(FaultKind::MissedEpoch);
                }
                if fault.is_some() {
                    // Live but wedged: the watchdog kills it.
                    lz.kernel.machine.switch_core(core);
                    lz.kernel.set_current(pid);
                    lz.kernel.kill_current(SECURITY_KILL);
                }
            }
            match fault {
                None => ready[core].push_back(s),
                Some(kind) => {
                    if !lz.reap(pid) {
                        violations += 1;
                    }
                    slots[s].pid = None;
                    if occupant[core] == Some(s) {
                        occupant[core] = None;
                    }
                    slots[s].recovering = true;
                    let storm = lz.kernel.machine.chaos_fire(FaultSite::RestartStorm).is_some();
                    if storm {
                        lz.kernel.machine.chaos.contained();
                    }
                    if sup.on_fault(FaultReport { slot: s, kind, epoch }, storm) == Verdict::Quarantine {
                        slots[s].snapshot = None;
                        slots[s].recovering = false;
                        sup.replace(s, epoch);
                    }
                }
            }
        }

        if epoch % PROBE_EVERY == 0 {
            probe(&lz, &mut last_sample, warm_restarts, sup.stats.snapshot_corruptions, &mut violations);
        }
    }

    // Drain: kill and reap every live VE, then check exact frame
    // accounting — after 10k faults' worth of kill/reap/restore churn
    // the allocator must be byte-for-byte back at its baseline.
    for s in 0..cfg.tenants {
        let Some(pid) = slots[s].pid.take() else { continue };
        lz.kernel.machine.switch_core(s % cfg.cores);
        lz.kernel.set_current(pid);
        lz.kernel.kill_current(SECURITY_KILL);
        if !lz.reap(pid) {
            violations += 1;
        }
    }
    lz.kernel.machine.switch_core(0);
    probe(&lz, &mut last_sample, warm_restarts, sup.stats.snapshot_corruptions, &mut violations);
    if lz.kernel.machine.mem.allocated_frames() != frame_baseline {
        violations += 1;
    }
    let priority_events =
        lz.kernel.machine.journal.count(|e| matches!(e, EventKind::Violation { .. } | EventKind::Fault { .. }));
    if sup.stats.crashes > 0 && priority_events == 0 {
        violations += 1; // the priority lane must survive eviction
    }

    RecoveryRun {
        cores: cfg.cores,
        tenants: cfg.tenants as u64,
        seed: cfg.seed,
        epochs: epoch,
        requests,
        spawns,
        faults_injected: lz.kernel.machine.chaos.faults_injected,
        faults_contained: lz.kernel.machine.chaos.faults_contained,
        ve_crashes: sup.stats.crashes,
        watchdog_kills: sup.stats.watchdog_kills,
        missed_epochs: sup.stats.missed_epochs,
        snapshot_corruptions: sup.stats.snapshot_corruptions,
        warm_restarts,
        cold_restarts,
        denials: sup.stats.denials,
        storm_compressions: sup.stats.storm_compressions,
        strikes: sup.stats.strikes_total,
        quarantines: sup.stats.quarantines,
        snapshots_taken,
        vmid_recycles: lz.kernel.vmids.recycles(),
        rollover_shootdowns: lz.kernel.stats.rollover_shootdowns + lz.module.rollover_shootdowns,
        priority_events,
        invariant_violations: violations,
        recovery_epochs: LatSummary::of(&recovery_hist),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_soak_is_deterministic() {
        let cfg = RecoveryConfig::smoke(2);
        let a = run_recovery(&cfg);
        let b = run_recovery(&cfg);
        assert_eq!(a, b);
        assert_eq!(a.json(), b.json());
    }

    #[test]
    fn smoke_soak_meets_the_floors() {
        let run = run_recovery(&RecoveryConfig::smoke(2));
        assert_eq!(run.invariant_violations, 0, "invariants held across every restart");
        assert!(run.faults_injected >= 300, "faults = {}", run.faults_injected);
        assert_eq!(run.faults_contained, run.faults_injected, "every fault contained");
        assert!(run.ve_crashes >= 20, "crashes = {}", run.ve_crashes);
        assert!(run.warm_restarts >= 10, "warm restarts = {}", run.warm_restarts);
        assert!(run.quarantines >= 1, "the wedged tenant must strike out");
        assert!(run.watchdog_kills >= 1, "the wedged tenant dies by watchdog");
        assert!(run.denials >= 1, "admission control must shed at least once");
        assert!(run.snapshots_taken >= run.warm_restarts, "every warm restart has an image");
        assert!(run.priority_events >= 1, "fault events survive journal eviction");
        assert!(run.recovery_epochs.samples == run.warm_restarts + run.cold_restarts);
        assert!(run.recovery_epochs.p50 >= 1);
    }

    #[test]
    fn smoke_soak_matches_replay_backend() {
        let cfg = RecoveryConfig::smoke(2);
        let prior = lz_machine::default_parallel();
        lz_machine::set_default_parallel(true);
        let a = run_recovery(&cfg);
        lz_machine::set_default_parallel(false);
        let b = run_recovery(&cfg);
        lz_machine::set_default_parallel(prior);
        assert_eq!(a, b, "parallel and replay soaks diverged");
        assert_eq!(a.json(), b.json());
    }
}
