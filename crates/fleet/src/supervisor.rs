//! Per-VE supervision: typed fault reports feeding a deterministic
//! kill → backoff → warm-restart → quarantine state machine, plus
//! admission control that sheds load with typed denials.
//!
//! The supervisor itself is a *pure* state machine over integers — no
//! kernel or machine access — so its policy (strike ledger, exponential
//! backoff, healthy-window decay, queue-depth admission) is unit-tested
//! exhaustively here, and the recovery soak ([`crate::recovery`]) only
//! wires its verdicts to real kills, reaps, and restores.

/// Why the supervisor intervened on a tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The VE died mid-request (isolation violation, injected
    /// `ve_crash`, or a contained host panic in its epoch shell).
    Crash,
    /// The watchdog saw `watchdog_budget` retired instructions without a
    /// single completed request — the VE is live but wedged.
    WatchdogDeadline,
    /// The VE was scheduled with a full quantum and retired zero
    /// instructions — its epoch shell made no progress at all.
    MissedEpoch,
    /// Its warm-restart image failed the digest/version admission check
    /// (the `snapshot_corrupt` chaos site exercises this).
    SnapshotCorrupt,
}

/// One typed fault report — the only way the soak talks to the
/// supervisor's state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultReport {
    /// Tenant slot the fault belongs to.
    pub slot: usize,
    pub kind: FaultKind,
    /// Epoch the fault was detected in (backoff is computed from it).
    pub epoch: u64,
}

/// A typed admission denial: load is shed, never queued unboundedly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Denial {
    /// The target core's ready queue is at `max_queue_depth`.
    QueueFull { core: usize, depth: usize },
    /// The tenant is permanently quarantined.
    Quarantined { slot: usize },
}

/// The supervisor's verdict on a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Restart after the (exponential, possibly storm-compressed)
    /// backoff expires at `until`.
    Backoff { until: u64 },
    /// Strike `max_strikes` — the tenant is out for good.
    Quarantine,
}

/// Lifecycle state of one tenant slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantState {
    /// Admitted: runnable on its core's ready queue.
    Ready,
    /// Killed; waiting out its backoff before re-admission.
    Backoff { until: u64 },
    /// Permanently quarantined (until the slot is replaced).
    Quarantined,
}

/// Supervision policy knobs (all deterministic integers).
#[derive(Debug, Clone, Copy)]
pub struct SupervisorConfig {
    /// Strikes before permanent quarantine.
    pub max_strikes: u32,
    /// First backoff, in epochs; doubles per strike.
    pub backoff_base: u64,
    /// Backoff ceiling, in epochs.
    pub backoff_cap: u64,
    /// Completed requests after a restart that clear the strike ledger.
    pub healthy_window: u64,
    /// Retired instructions without a completed request before the
    /// watchdog kills the VE.
    pub watchdog_budget: u64,
    /// Per-core ready-queue depth beyond which admissions are denied.
    pub max_queue_depth: usize,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            max_strikes: 3,
            backoff_base: 2,
            backoff_cap: 32,
            healthy_window: 4,
            watchdog_budget: 100_000,
            max_queue_depth: 5,
        }
    }
}

/// Per-tenant supervision ledger.
#[derive(Debug, Clone, Copy)]
pub struct TenantLedger {
    pub state: TenantState,
    pub strikes: u32,
    /// Requests completed since the last (re)start.
    pub requests_since_restart: u64,
    /// Retired instructions since the last completed request.
    pub insns_since_progress: u64,
    /// Epoch of the most recent fault (recovery latency = restart epoch
    /// minus this).
    pub fault_epoch: u64,
    /// Bumped when a quarantined slot is replaced by a fresh tenant.
    pub generation: u64,
}

/// Aggregate supervision counters (serialised into `BENCH_recovery`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SupervisorStats {
    pub crashes: u64,
    pub watchdog_kills: u64,
    pub missed_epochs: u64,
    pub snapshot_corruptions: u64,
    pub strikes_total: u64,
    pub quarantines: u64,
    pub denials: u64,
    pub storm_compressions: u64,
}

/// The fleet supervisor: one ledger per tenant slot plus the counters.
#[derive(Debug, Clone)]
pub struct Supervisor {
    pub cfg: SupervisorConfig,
    ledgers: Vec<TenantLedger>,
    pub stats: SupervisorStats,
}

impl Supervisor {
    pub fn new(cfg: SupervisorConfig, slots: usize) -> Self {
        let ledger = TenantLedger {
            state: TenantState::Backoff { until: 0 },
            strikes: 0,
            requests_since_restart: 0,
            insns_since_progress: 0,
            fault_epoch: 0,
            generation: 0,
        };
        Supervisor { cfg, ledgers: vec![ledger; slots], stats: SupervisorStats::default() }
    }

    pub fn ledger(&self, slot: usize) -> &TenantLedger {
        &self.ledgers[slot]
    }

    /// Feed one typed fault report through the state machine. `storm`
    /// compresses the backoff to a single epoch (the `restart_storm`
    /// chaos site); the strike ledger still bounds total restarts.
    pub fn on_fault(&mut self, report: FaultReport, storm: bool) -> Verdict {
        let l = &mut self.ledgers[report.slot];
        l.strikes += 1;
        l.fault_epoch = report.epoch;
        l.requests_since_restart = 0;
        l.insns_since_progress = 0;
        self.stats.strikes_total += 1;
        match report.kind {
            FaultKind::Crash => self.stats.crashes += 1,
            FaultKind::WatchdogDeadline => self.stats.watchdog_kills += 1,
            FaultKind::MissedEpoch => self.stats.missed_epochs += 1,
            FaultKind::SnapshotCorrupt => self.stats.snapshot_corruptions += 1,
        }
        if l.strikes >= self.cfg.max_strikes {
            l.state = TenantState::Quarantined;
            self.stats.quarantines += 1;
            return Verdict::Quarantine;
        }
        let delay = if storm {
            self.stats.storm_compressions += 1;
            1
        } else {
            (self.cfg.backoff_base << (l.strikes - 1)).min(self.cfg.backoff_cap)
        };
        let until = report.epoch + delay;
        l.state = TenantState::Backoff { until };
        Verdict::Backoff { until }
    }

    /// Admission control for a slot whose backoff expired: admitted
    /// tenants become [`TenantState::Ready`]; a full core queue sheds
    /// the attempt with a typed denial and pushes the retry out by
    /// `backoff_base` (bounded queues, unbounded patience not included).
    pub fn try_admit(&mut self, slot: usize, core: usize, depth: usize, epoch: u64) -> Result<(), Denial> {
        if self.ledgers[slot].state == TenantState::Quarantined {
            self.stats.denials += 1;
            return Err(Denial::Quarantined { slot });
        }
        if depth >= self.cfg.max_queue_depth {
            self.stats.denials += 1;
            let until = epoch + self.cfg.backoff_base;
            self.ledgers[slot].state = TenantState::Backoff { until };
            return Err(Denial::QueueFull { core, depth });
        }
        let l = &mut self.ledgers[slot];
        l.state = TenantState::Ready;
        l.requests_since_restart = 0;
        l.insns_since_progress = 0;
        Ok(())
    }

    /// Record completed requests; a healthy window clears the strikes.
    pub fn on_progress(&mut self, slot: usize, completed: u64) {
        let l = &mut self.ledgers[slot];
        l.insns_since_progress = 0;
        l.requests_since_restart += completed;
        if l.requests_since_restart >= self.cfg.healthy_window {
            l.strikes = 0;
        }
    }

    /// Charge retired instructions against the watchdog deadline;
    /// `true` means the deadline blew and the VE must be killed.
    pub fn on_insns(&mut self, slot: usize, used: u64) -> bool {
        let l = &mut self.ledgers[slot];
        l.insns_since_progress += used;
        l.insns_since_progress > self.cfg.watchdog_budget
    }

    /// Replace a quarantined slot with a fresh tenant generation: clean
    /// ledger, immediate (next-epoch) restart eligibility.
    pub fn replace(&mut self, slot: usize, epoch: u64) {
        let l = &mut self.ledgers[slot];
        assert_eq!(l.state, TenantState::Quarantined, "only quarantined slots are replaced");
        *l = TenantLedger {
            state: TenantState::Backoff { until: epoch + 1 },
            strikes: 0,
            requests_since_restart: 0,
            insns_since_progress: 0,
            fault_epoch: epoch,
            generation: l.generation + 1,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sup(slots: usize) -> Supervisor {
        Supervisor::new(SupervisorConfig::default(), slots)
    }

    #[test]
    fn strikes_escalate_exponentially_then_quarantine() {
        let mut s = sup(1);
        let v1 = s.on_fault(FaultReport { slot: 0, kind: FaultKind::Crash, epoch: 10 }, false);
        assert_eq!(v1, Verdict::Backoff { until: 12 }, "first strike: base backoff");
        let v2 = s.on_fault(FaultReport { slot: 0, kind: FaultKind::Crash, epoch: 20 }, false);
        assert_eq!(v2, Verdict::Backoff { until: 24 }, "second strike: doubled");
        let v3 = s.on_fault(FaultReport { slot: 0, kind: FaultKind::Crash, epoch: 30 }, false);
        assert_eq!(v3, Verdict::Quarantine, "third strike is out");
        assert_eq!(s.ledger(0).state, TenantState::Quarantined);
        assert_eq!(s.stats.quarantines, 1);
        assert_eq!(s.stats.crashes, 3);
    }

    #[test]
    fn backoff_caps_and_storm_compresses() {
        let mut s = Supervisor::new(
            SupervisorConfig { max_strikes: 10, backoff_base: 4, backoff_cap: 8, ..Default::default() },
            1,
        );
        s.on_fault(FaultReport { slot: 0, kind: FaultKind::Crash, epoch: 0 }, false);
        s.on_fault(FaultReport { slot: 0, kind: FaultKind::Crash, epoch: 0 }, false);
        let capped = s.on_fault(FaultReport { slot: 0, kind: FaultKind::Crash, epoch: 0 }, false);
        assert_eq!(capped, Verdict::Backoff { until: 8 }, "16 would exceed the cap");
        let storm = s.on_fault(FaultReport { slot: 0, kind: FaultKind::Crash, epoch: 100 }, true);
        assert_eq!(storm, Verdict::Backoff { until: 101 }, "storm compresses to one epoch");
        assert_eq!(s.stats.storm_compressions, 1);
    }

    #[test]
    fn healthy_window_clears_the_ledger() {
        let mut s = sup(1);
        s.on_fault(FaultReport { slot: 0, kind: FaultKind::Crash, epoch: 0 }, false);
        s.on_fault(FaultReport { slot: 0, kind: FaultKind::Crash, epoch: 5 }, false);
        assert_eq!(s.ledger(0).strikes, 2);
        s.try_admit(0, 0, 0, 9).expect("admitted");
        s.on_progress(0, SupervisorConfig::default().healthy_window);
        assert_eq!(s.ledger(0).strikes, 0, "a healthy run forgives old strikes");
        // The next fault is strike one again, not three.
        let v = s.on_fault(FaultReport { slot: 0, kind: FaultKind::Crash, epoch: 20 }, false);
        assert_eq!(v, Verdict::Backoff { until: 22 });
    }

    #[test]
    fn watchdog_trips_only_past_the_budget() {
        let mut s = sup(1);
        let budget = s.cfg.watchdog_budget;
        assert!(!s.on_insns(0, budget), "exactly at budget is still fine");
        assert!(s.on_insns(0, 1), "one instruction past the deadline trips");
        // Progress resets the accounting.
        s.on_progress(0, 1);
        assert!(!s.on_insns(0, budget));
    }

    #[test]
    fn admission_sheds_on_full_queue_and_quarantine() {
        let mut s = sup(2);
        let depth = s.cfg.max_queue_depth;
        assert_eq!(
            s.try_admit(0, 1, depth, 50),
            Err(Denial::QueueFull { core: 1, depth }),
            "full queue sheds the restart"
        );
        assert_eq!(
            s.ledger(0).state,
            TenantState::Backoff { until: 50 + s.cfg.backoff_base },
            "denied tenant retries after base backoff"
        );
        assert!(s.try_admit(0, 1, depth - 1, 60).is_ok());
        for _ in 0..s.cfg.max_strikes {
            s.on_fault(FaultReport { slot: 1, kind: FaultKind::WatchdogDeadline, epoch: 0 }, false);
        }
        assert_eq!(s.try_admit(1, 0, 0, 70), Err(Denial::Quarantined { slot: 1 }));
        assert_eq!(s.stats.denials, 2);
    }

    #[test]
    fn replacement_starts_a_clean_generation() {
        let mut s = sup(1);
        for _ in 0..s.cfg.max_strikes {
            s.on_fault(FaultReport { slot: 0, kind: FaultKind::MissedEpoch, epoch: 7 }, false);
        }
        assert_eq!(s.ledger(0).state, TenantState::Quarantined);
        s.replace(0, 40);
        let l = *s.ledger(0);
        assert_eq!(l.state, TenantState::Backoff { until: 41 });
        assert_eq!(l.strikes, 0);
        assert_eq!(l.generation, 1);
        assert_eq!(s.stats.missed_epochs, 3);
    }
}
