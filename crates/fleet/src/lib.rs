//! Fleet-scale multi-tenant serving benchmark for LightZone.
//!
//! The per-VE microbenchmarks ([`lz_workloads::micro`]) price one
//! domain switch in isolation; this crate asks the *fleet* question: a
//! serving host packs thousands of LightZone domains across many
//! tenants, VEs come and go fast enough to exhaust the 16-bit VMID
//! space, and what matters operationally is the full request-latency
//! distribution — p50, p99, p999 — not a mean.
//!
//! * [`load`] — open-loop arrival generation: a seeded, integer-only
//!   exponential schedule drawn up front, immune to coordinated
//!   omission.
//! * [`hist`] — a 256-bucket log2 histogram (no floats) whose quantiles
//!   serialise byte-identically across runs.
//! * [`sim`] — the benchmark itself: a resident pool of tenant VEs
//!   running real assembled gate-switching programs, an open-loop
//!   queueing overlay on the measured service times, and a churn phase
//!   that rolls the VMID space over to exercise generation-tagged
//!   recycling (`repro fleet`).
//! * [`supervisor`] — the pure kill → backoff → warm-restart →
//!   quarantine state machine: typed fault reports, strike ledgers,
//!   exponential backoff, and queue-depth admission control.
//! * [`recovery`] — the chaos-driven crash-recovery soak: `ve_crash` /
//!   `snapshot_corrupt` / `restart_storm` injection against a fleet of
//!   request servers, warm restarts from request-boundary snapshots,
//!   and per-restart invariant oracles (`repro recovery`).

pub mod hist;
pub mod load;
pub mod recovery;
pub mod sim;
pub mod supervisor;

pub use hist::{LatSummary, Log2Hist};
pub use load::{Lcg, OpenLoop};
pub use recovery::{run_recovery, RecoveryConfig, RecoveryRun};
pub use sim::{run_fleet, FleetConfig, FleetRun};
pub use supervisor::{
    Denial, FaultKind, FaultReport, Supervisor, SupervisorConfig, SupervisorStats, TenantState, Verdict,
};
