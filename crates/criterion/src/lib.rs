//! Minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no network access to a crates registry, so this
//! shim supplies the subset of the criterion API the workspace's benches use:
//! groups, `bench_function`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros. Statistics are simple (median of timed samples,
//! no outlier analysis or plots) but the output keeps criterion's familiar
//! `time: [lo mid hi]` shape so bench logs stay comparable.

use std::hint::black_box as hint_black_box;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    hint_black_box(x)
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }

    pub fn final_summary(&mut self) {}
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };

        // Warm-up: also calibrates how many iterations fit one sample.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            b.iters = 1;
            b.elapsed = Duration::ZERO;
            f(&mut b);
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos().max(1) / warm_iters.max(1) as u128;
        let sample_ns = self.measurement_time.as_nanos() / self.sample_size.max(1) as u128;
        let iters_per_sample = (sample_ns / per_iter.max(1)).clamp(1, 1_000_000) as u64;

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            b.iters = iters_per_sample;
            b.elapsed = Duration::ZERO;
            f(&mut b);
            samples_ns.push(b.elapsed.as_nanos() as f64 / iters_per_sample as f64);
        }
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        let lo = samples_ns[0];
        let mid = samples_ns[samples_ns.len() / 2];
        let hi = samples_ns[samples_ns.len() - 1];
        println!("{}/{:<40} time:   [{} {} {}]", self.name, id, fmt_ns(lo), fmt_ns(mid), fmt_ns(hi));
        self
    }

    pub fn finish(&mut self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{:.4} ns", ns)
    }
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            hint_black_box(f());
        }
        self.elapsed += start.elapsed();
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
