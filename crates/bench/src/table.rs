//! Plain-text table formatting for the `repro` harness.

/// A simple fixed-width table printer.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Append one row (must match the header width).
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", c, width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Format a cycle count.
pub fn cyc(v: f64) -> String {
    format!("{v:.0}")
}

/// Format a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.2}%", v * 100.0)
}

/// Format `measured (paper ref)`.
pub fn vs(measured: f64, paper: f64) -> String {
    format!("{measured:.0} (paper {paper:.0})")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["a", "long-header", "c"]);
        t.row(&["1".into(), "2".into(), "3".into()]);
        t.row(&["wide-cell".into(), "x".into(), "y".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("long-header"));
        assert!(lines[2].starts_with("1"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_checked() {
        Table::new(&["a"]).row(&["1".into(), "2".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(cyc(123.4), "123");
        assert_eq!(pct(0.0565), "5.65%");
        assert_eq!(vs(100.0, 99.0), "100 (paper 99)");
    }
}
