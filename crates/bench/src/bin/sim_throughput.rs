//! `sim_throughput` — host-side simulator speed on a straight-line ALU
//! hot loop and a mixed load/store loop, with the acceleration layer
//! (decoded-block fetch cache + data-side fast path) on vs off.
//!
//! Prints one line of JSON to stdout (CI captures it as
//! `BENCH_sim_throughput.json`); a human-readable summary goes to stderr.
//!
//! ```text
//! sim_throughput [INSNS]      default 20000000
//! ```

fn main() {
    let insns: u64 =
        std::env::args().nth(1).map(|s| s.parse().expect("INSNS must be an integer")).unwrap_or(20_000_000);
    let r = lz_bench::throughput::run(insns);
    eprintln!(
        "sim_throughput: alu {:.2} vs {:.2} MIPS ({:.2}x), mem {:.2} vs {:.2} MIPS ({:.2}x), cycles match: {}",
        r.alu.mips_on(),
        r.alu.mips_off(),
        r.alu.speedup(),
        r.mem.mips_on(),
        r.mem.mips_off(),
        r.mem.speedup(),
        r.cycles_match(),
    );
    println!("{}", r.json());
    if !r.cycles_match() {
        std::process::exit(1);
    }
}
