//! `sim_throughput` — host-side simulator speed on a straight-line hot
//! loop, decoded-block fetch cache on vs off.
//!
//! Prints one line of JSON to stdout (CI captures it as
//! `BENCH_sim_throughput.json`); a human-readable summary goes to stderr.
//!
//! ```text
//! sim_throughput [INSNS]      default 20000000
//! ```

fn main() {
    let insns: u64 =
        std::env::args().nth(1).map(|s| s.parse().expect("INSNS must be an integer")).unwrap_or(20_000_000);
    let r = lz_bench::throughput::run(insns);
    eprintln!(
        "sim_throughput: {:.2} MIPS cache-on vs {:.2} MIPS cache-off ({:.2}x), cycles match: {}",
        r.mips_on(),
        r.mips_off(),
        r.speedup(),
        r.cycles_match(),
    );
    println!("{}", r.json());
    if !r.cycles_match() {
        std::process::exit(1);
    }
}
