//! `sim_throughput`: host-side simulation speed (instructions per
//! second) of the interpreter on a straight-line hot loop, with the
//! decoded-block fetch cache on and off.
//!
//! This measures *wall-clock* simulator throughput, not modelled cycles —
//! the cache's whole contract is that modelled cycles are identical in
//! both modes, which [`ThroughputResult::cycles_match`] re-checks.

use lz_arch::asm::Asm;
use lz_arch::pstate::PState;
use lz_arch::sysreg::{hcr, sctlr, ttbr, SysReg};
use lz_arch::Platform;
use lz_machine::pte::S1Perms;
use lz_machine::walk::{alloc_table, s1_map_page};
use lz_machine::{Exit, Machine};
use std::time::Instant;

const CODE: u64 = 0x40_0000;
/// ALU instructions per loop iteration, besides the `subs`/`b.ne` pair.
const UNROLL: u64 = 14;

/// One cache-on/cache-off measurement pair.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputResult {
    pub insns: u64,
    pub cycles_on: u64,
    pub cycles_off: u64,
    pub secs_on: f64,
    pub secs_off: f64,
}

impl ThroughputResult {
    pub fn mips_on(&self) -> f64 {
        self.insns as f64 / self.secs_on / 1e6
    }

    pub fn mips_off(&self) -> f64 {
        self.insns as f64 / self.secs_off / 1e6
    }

    /// Host speedup from the cache (≥ 2.0 is the acceptance bar).
    pub fn speedup(&self) -> f64 {
        self.secs_off / self.secs_on
    }

    /// Modelled cycle counts must not depend on the cache.
    pub fn cycles_match(&self) -> bool {
        self.cycles_on == self.cycles_off
    }

    /// One-line JSON for `BENCH_sim_throughput.json`.
    pub fn json(&self) -> String {
        format!(
            concat!(
                "{{\"bench\":\"sim_throughput\",\"insns\":{},",
                "\"insns_per_sec_cache_on\":{:.0},\"insns_per_sec_cache_off\":{:.0},",
                "\"mips_cache_on\":{:.2},\"mips_cache_off\":{:.2},",
                "\"speedup\":{:.2},\"cycles_cache_on\":{},\"cycles_cache_off\":{},",
                "\"cycles_match\":{}}}"
            ),
            self.insns,
            self.insns as f64 / self.secs_on,
            self.insns as f64 / self.secs_off,
            self.mips_on(),
            self.mips_off(),
            self.speedup(),
            self.cycles_on,
            self.cycles_off,
            self.cycles_match(),
        )
    }
}

/// A machine whose EL0 program is a counted loop of `UNROLL` ALU
/// instructions, sized to retire roughly `insns_target` instructions.
fn hot_loop_machine(insns_target: u64, cache_on: bool) -> (Machine, u64) {
    let iters = (insns_target / (UNROLL + 2)).max(1);
    let mut a = Asm::new(CODE);
    a.mov_imm64(0, iters);
    let top = a.label();
    a.bind(top);
    for i in 0..UNROLL {
        let rd = 1 + (i % 7) as u8;
        match i % 4 {
            0 => a.add_imm(rd, rd, 1),
            1 => a.eor_reg(rd, rd, 8),
            2 => a.orr_reg(rd, rd, 9),
            _ => a.add_reg(rd, rd, 10),
        };
    }
    a.subs_imm(0, 0, 1);
    a.b_ne(top);
    a.svc(0);

    let mut m = Machine::new(Platform::CortexA55);
    m.set_fetch_cache(cache_on);
    let root = alloc_table(&mut m.mem);
    let code_pa = m.mem.alloc_frame();
    m.mem.write_bytes(code_pa, &a.bytes());
    let perms = S1Perms { read: true, write: false, user_exec: true, priv_exec: false, el0: true, global: false };
    s1_map_page(&mut m.mem, root, CODE, code_pa, perms);
    m.set_sysreg(SysReg::TTBR0_EL1, ttbr::pack(1, root));
    m.set_sysreg(SysReg::SCTLR_EL1, sctlr::M | sctlr::SPAN);
    m.set_sysreg(SysReg::HCR_EL2, hcr::TGE | hcr::E2H);
    m.cpu.pstate = PState::user();
    m.cpu.pc = CODE;
    (m, iters * (UNROLL + 2) + 3)
}

fn timed_run(insns_target: u64, cache_on: bool) -> (u64, u64, f64) {
    let (mut m, limit) = hot_loop_machine(insns_target, cache_on);
    let start = Instant::now();
    let exit = m.run(limit + 100);
    let secs = start.elapsed().as_secs_f64();
    assert!(matches!(exit, Exit::El2(_)), "hot loop must run to its svc, got {exit:?}");
    (m.cpu.insns, m.cpu.cycles, secs)
}

/// Measure the hot loop in both modes. The cache-off run goes first so a
/// warm host (page tables, allocator) biases *against* the cache.
pub fn run(insns_target: u64) -> ThroughputResult {
    // Warm-up both paths (JIT-less, but touches the allocator and heap).
    timed_run(insns_target / 10 + 1, false);
    timed_run(insns_target / 10 + 1, true);
    let (insns_off, cycles_off, secs_off) = timed_run(insns_target, false);
    let (insns_on, cycles_on, secs_on) = timed_run(insns_target, true);
    assert_eq!(insns_on, insns_off, "instruction counts must not depend on the cache");
    ThroughputResult { insns: insns_on, cycles_on, cycles_off, secs_on, secs_off }
}
