//! `sim_throughput`: host-side simulation speed (instructions per
//! second) of the interpreter, with the acceleration layer (decoded-block
//! fetch cache + data-side fast path) on and off.
//!
//! Two workloads are measured:
//!
//! * a straight-line **ALU hot loop** (superblock execution's best case);
//! * a **mixed ALU + load/store loop** that keeps the micro-DTLB and the
//!   data-access path honest.
//!
//! This measures *wall-clock* simulator throughput, not modelled cycles —
//! the acceleration layer's whole contract is that modelled cycles are
//! identical in both modes, which [`ThroughputResult::cycles_match`]
//! re-checks for both workloads.

use lz_arch::asm::Asm;
use lz_arch::pstate::PState;
use lz_arch::sysreg::{hcr, sctlr, ttbr, SysReg};
use lz_arch::Platform;
use lz_machine::pte::S1Perms;
use lz_machine::walk::{alloc_table, s1_map_page};
use lz_machine::{Exit, Machine};
use std::time::Instant;

const CODE: u64 = 0x40_0000;
const DATA: u64 = 0x50_0000;
/// ALU instructions per loop iteration, besides the `subs`/`b.ne` pair.
const UNROLL: u64 = 14;
/// Nominal seed field for the unified bench JSON schema: both workloads
/// are fully deterministic, so the seed is fixed.
const SEED: u64 = 0;

/// One on/off measurement pair for a single workload.
#[derive(Debug, Clone, Copy)]
pub struct Leg {
    pub insns: u64,
    pub cycles_on: u64,
    pub cycles_off: u64,
    pub secs_on: f64,
    pub secs_off: f64,
}

impl Leg {
    pub fn mips_on(&self) -> f64 {
        self.insns as f64 / self.secs_on / 1e6
    }

    pub fn mips_off(&self) -> f64 {
        self.insns as f64 / self.secs_off / 1e6
    }

    pub fn speedup(&self) -> f64 {
        self.secs_off / self.secs_on
    }

    pub fn cycles_match(&self) -> bool {
        self.cycles_on == self.cycles_off
    }
}

/// The ALU-loop and mixed-loop measurements.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputResult {
    pub alu: Leg,
    pub mem: Leg,
}

impl ThroughputResult {
    /// Headline numbers (the ALU hot loop, as in the seed benchmark).
    pub fn insns(&self) -> u64 {
        self.alu.insns
    }

    pub fn mips_on(&self) -> f64 {
        self.alu.mips_on()
    }

    pub fn mips_off(&self) -> f64 {
        self.alu.mips_off()
    }

    /// Host speedup from the acceleration layer (≥ 2.0 is the bar).
    pub fn speedup(&self) -> f64 {
        self.alu.speedup()
    }

    /// Modelled cycle counts must not depend on the layer — both loops.
    pub fn cycles_match(&self) -> bool {
        self.alu.cycles_match() && self.mem.cycles_match()
    }

    /// One-line JSON for `BENCH_sim_throughput.json`, in the unified
    /// bench schema (`benchmark` + `seed`, like `BENCH_smp_scaling.json`).
    pub fn json(&self) -> String {
        format!(
            concat!(
                "{{\"benchmark\":\"sim_throughput\",\"seed\":{},\"insns\":{},",
                "\"insns_per_sec_cache_on\":{:.0},\"insns_per_sec_cache_off\":{:.0},",
                "\"mips_cache_on\":{:.2},\"mips_cache_off\":{:.2},",
                "\"speedup\":{:.2},\"cycles_cache_on\":{},\"cycles_cache_off\":{},",
                "\"mem_insns\":{},\"mips_mem_on\":{:.2},\"mips_mem_off\":{:.2},",
                "\"mem_speedup\":{:.2},\"cycles_mem_on\":{},\"cycles_mem_off\":{},",
                "\"jit\":{},\"cycles_match\":{}}}"
            ),
            SEED,
            self.alu.insns,
            self.alu.insns as f64 / self.alu.secs_on,
            self.alu.insns as f64 / self.alu.secs_off,
            self.alu.mips_on(),
            self.alu.mips_off(),
            self.alu.speedup(),
            self.alu.cycles_on,
            self.alu.cycles_off,
            self.mem.insns,
            self.mem.mips_on(),
            self.mem.mips_off(),
            self.mem.speedup(),
            self.mem.cycles_on,
            self.mem.cycles_off,
            lz_machine::default_jit(),
            self.cycles_match(),
        )
    }
}

/// Which workload a machine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Workload {
    /// Straight-line ALU loop.
    Alu,
    /// ALU mixed with loads/stores to a data page (micro-DTLB traffic).
    Mixed,
}

/// A machine whose EL0 program is a counted loop sized to retire roughly
/// `insns_target` instructions. `accel` flips the whole acceleration
/// layer (fetch cache + data-side fast path) together.
fn hot_loop_machine(insns_target: u64, accel: bool, workload: Workload) -> (Machine, u64) {
    let iters = (insns_target / (UNROLL + 2)).max(1);
    let mut a = Asm::new(CODE);
    a.mov_imm64(0, iters);
    a.mov_imm64(11, DATA);
    let top = a.label();
    a.bind(top);
    for i in 0..UNROLL {
        let rd = 1 + (i % 7) as u8;
        match workload {
            Workload::Alu => {
                match i % 4 {
                    0 => a.add_imm(rd, rd, 1),
                    1 => a.eor_reg(rd, rd, 8),
                    2 => a.orr_reg(rd, rd, 9),
                    _ => a.add_reg(rd, rd, 10),
                };
            }
            Workload::Mixed => {
                match i % 4 {
                    0 => a.str(rd, 11, 8 * (i % 8)),
                    1 => a.ldr(rd, 11, 8 * ((i + 1) % 8)),
                    2 => a.add_imm(rd, rd, 1),
                    _ => a.eor_reg(rd, rd, 8),
                };
            }
        }
    }
    a.subs_imm(0, 0, 1);
    a.b_ne(top);
    a.svc(0);

    let mut m = Machine::new(Platform::CortexA55);
    m.set_fetch_cache(accel);
    m.set_fastpath(accel);
    // The JIT polarity follows the process default (`LZ_JIT`), recorded
    // in the report's `jit` field so the bench trajectory distinguishes
    // the engines; the off leg disables the whole layer regardless.
    m.set_jit(accel && lz_machine::default_jit());
    let root = alloc_table(&mut m.mem);
    let code_pa = m.mem.alloc_frame();
    m.mem.write_bytes(code_pa, &a.bytes());
    let perms = S1Perms { read: true, write: false, user_exec: true, priv_exec: false, el0: true, global: false };
    s1_map_page(&mut m.mem, root, CODE, code_pa, perms);
    if workload == Workload::Mixed {
        let data_pa = m.mem.alloc_frame();
        let data_perms =
            S1Perms { read: true, write: true, user_exec: false, priv_exec: false, el0: true, global: false };
        s1_map_page(&mut m.mem, root, DATA, data_pa, data_perms);
    }
    m.set_sysreg(SysReg::TTBR0_EL1, ttbr::pack(1, root));
    m.set_sysreg(SysReg::SCTLR_EL1, sctlr::M | sctlr::SPAN);
    m.set_sysreg(SysReg::HCR_EL2, hcr::TGE | hcr::E2H);
    m.cpu.pstate = PState::user();
    m.cpu.pc = CODE;
    (m, iters * (UNROLL + 2) + 4)
}

fn timed_run(insns_target: u64, accel: bool, workload: Workload) -> (u64, u64, f64) {
    let (mut m, limit) = hot_loop_machine(insns_target, accel, workload);
    let start = Instant::now();
    let exit = m.run(limit + 100);
    let secs = start.elapsed().as_secs_f64();
    assert!(matches!(exit, Exit::El2(_)), "hot loop must run to its svc, got {exit:?}");
    (m.cpu.insns, m.cpu.cycles, secs)
}

fn measure(insns_target: u64, workload: Workload) -> Leg {
    // Warm-up both paths (JIT-less, but touches the allocator and heap).
    timed_run(insns_target / 10 + 1, false, workload);
    timed_run(insns_target / 10 + 1, true, workload);
    // The accelerated run goes last so a warm host (page tables,
    // allocator) biases *against* the layer being measured.
    let (insns_off, cycles_off, secs_off) = timed_run(insns_target, false, workload);
    let (insns_on, cycles_on, secs_on) = timed_run(insns_target, true, workload);
    assert_eq!(insns_on, insns_off, "instruction counts must not depend on the acceleration layer");
    Leg { insns: insns_on, cycles_on, cycles_off, secs_on, secs_off }
}

/// Measure both workloads in both modes.
pub fn run(insns_target: u64) -> ThroughputResult {
    let alu = measure(insns_target, Workload::Alu);
    // The mixed loop simulates slower per instruction; a quarter of the
    // budget keeps total bench time in the same ballpark.
    let mem = measure(insns_target / 4, Workload::Mixed);
    ThroughputResult { alu, mem }
}
