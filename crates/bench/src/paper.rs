//! The paper's published numbers (Tables 4–5, §9 prose), used to print
//! "paper vs. reproduced" side by side and to band-check in tests.

use lz_arch::Platform;

/// Table 4 reference values: `(carmel, cortex_a55)`; ranges collapsed to
/// `(lo, hi)`.
pub mod table4 {
    pub const HOST_USER_TO_HYP: (f64, f64) = (3848.0, 299.0);
    pub const GUEST_USER_TO_KERNEL: (f64, f64) = (1423.0, 288.0);
    pub const LZ_TO_HOST_HYP: (f64, f64) = (3316.0, 536.0);
    pub const LZ_TO_GUEST_KERNEL_LO: (f64, f64) = (29_020.0, 1_798.0);
    pub const LZ_TO_GUEST_KERNEL_HI: (f64, f64) = (32_881.0, 2_179.0);
    pub const KVM_HYPERCALL: (f64, f64) = (28_580.0, 1_287.0);
    pub const HCR_WRITE_LO: (f64, f64) = (1_550.0, 88.0);
    pub const HCR_WRITE_HI: (f64, f64) = (1_655.0, 88.0);
    pub const VTTBR_WRITE: (f64, f64) = (1_115.0, 37.0);
}

/// Table 5 reference values per domain-count column.
pub mod table5 {
    /// Columns: 1 (PAN), 2, 3, 32, 64, 128.
    pub const DOMAINS: [usize; 5] = [2, 3, 32, 64, 128];
    pub const CARMEL_HOST_LZ: [f64; 6] = [22.0, 477.0, 483.0, 469.0, 485.0, 490.0];
    pub const CARMEL_GUEST_LZ: [f64; 6] = [22.0, 495.0, 494.0, 484.0, 498.0, 507.0];
    pub const CORTEX_LZ: [f64; 6] = [11.0, 59.0, 57.0, 64.0, 74.0, 82.0];
    pub const CARMEL_HOST_WP: [f64; 3] = [6_759.0, 6_787.0, 6_944.0];
    pub const CARMEL_GUEST_WP: [f64; 3] = [2_710.0, 2_733.0, 2_721.0];
    pub const CORTEX_WP: [f64; 3] = [915.0, 930.0, 927.0];
}

/// Figure 3 (§9.1) throughput losses, percent.
pub mod fig3 {
    /// (pan, ttbr, wp, lwc) per cell.
    pub const CARMEL_HOST: (f64, f64, f64, f64) = (1.35, 5.65, 45.46, 59.03);
    pub const CARMEL_GUEST: (f64, f64, f64, f64) = (25.24, 26.91, 23.58, 26.65);
    pub const CORTEX_HOST: (f64, f64, f64, f64) = (0.91, 3.01, 6.14, 13.71);
    pub const CORTEX_GUEST: (f64, f64, f64, f64) = (1.98, 2.03, 6.04, 21.24);
    pub const MEM_FRAGMENTATION: f64 = 1.6;
    pub const MEM_PAN_TABLES: f64 = 1.2;
    pub const MEM_TTBR_TABLES: f64 = 22.2;
}

/// Figure 4 (§9.2) throughput losses, percent.
pub mod fig4 {
    pub const CARMEL_HOST: (f64, f64, f64, f64) = (0.1, 3.79, 8.35, 11.80);
    /// "about 10%" for every mechanism on the Carmel guest.
    pub const CARMEL_GUEST_ALL: f64 = 10.0;
    pub const CORTEX_HOST: (f64, f64, f64, f64) = (0.9, 2.84, 2.34, 12.76);
    pub const CORTEX_GUEST: (f64, f64, f64, f64) = (0.9, 2.35, 1.18, 5.47);
    /// TTBR stabilization band at ≥16 threads on Carmel host.
    pub const CARMEL_TTBR_SATURATED: (f64, f64) = (5.26, 6.23);
    pub const MEM_APP: f64 = 13.3;
    pub const MEM_PAN_TABLES: f64 = 0.2;
    pub const MEM_TTBR_TABLES: f64 = 9.8;
}

/// Figure 5 (§9.3) time overheads, percent.
pub mod fig5 {
    pub const CARMEL_HOST_PAN: f64 = 1.75;
    pub const CARMEL_GUEST_PAN: f64 = 4.39;
    pub const CARMEL_HOST_TTBR: f64 = 12.92;
    pub const CARMEL_GUEST_TTBR: f64 = 16.64;
    pub const CORTEX_HOST_PAN: f64 = 0.26;
    pub const CORTEX_GUEST_PAN: f64 = 0.20;
    pub const CORTEX_HOST_TTBR: f64 = 1.81;
    pub const CORTEX_GUEST_TTBR: f64 = 3.76;
    pub const MEM_TTBR_TABLES: f64 = 12.1;
}

/// Pick the per-platform element of a `(carmel, a55)` pair.
pub fn pick(pair: (f64, f64), platform: Platform) -> f64 {
    match platform {
        Platform::Carmel => pair.0,
        Platform::CortexA55 => pair.1,
    }
}
