//! Benchmark harness support: result formatting and the paper's
//! reference values for side-by-side comparison.

pub mod paper;
pub mod report;
pub mod table;
pub mod throughput;
