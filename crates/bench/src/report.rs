//! Paper tables rendered to strings.
//!
//! The `repro` binary prints these; the determinism regression tests
//! compare them byte-for-byte across back-to-back runs and across
//! fetch-cache settings (the decoded-block cache must never change a
//! modelled cycle count).

use crate::paper;
use crate::table::{cyc, Table};
use lz_arch::Platform;
use lz_workloads::micro;
use lz_workloads::Deployment;

/// Table 4: trap round-trip cycles, reproduced vs paper.
pub fn table4_report() -> String {
    let mut out = String::from("\n== Table 4: cycles spent on empty trap-and-return round trips ==\n\n");
    let mut t = Table::new(&["round trip", "Carmel", "(paper)", "Cortex A55", "(paper)"]);
    let c = micro::table4(Platform::Carmel);
    let a = micro::table4(Platform::CortexA55);
    let rows: [(&str, f64, f64, f64, f64); 7] = [
        (
            "host user mode -> host hypervisor mode",
            c.host_user_to_host_hyp,
            paper::table4::HOST_USER_TO_HYP.0,
            a.host_user_to_host_hyp,
            paper::table4::HOST_USER_TO_HYP.1,
        ),
        (
            "guest user mode -> guest kernel mode",
            c.guest_user_to_guest_kernel,
            paper::table4::GUEST_USER_TO_KERNEL.0,
            a.guest_user_to_guest_kernel,
            paper::table4::GUEST_USER_TO_KERNEL.1,
        ),
        (
            "LightZone kernel mode -> host hypervisor mode",
            c.lz_to_host_hyp,
            paper::table4::LZ_TO_HOST_HYP.0,
            a.lz_to_host_hyp,
            paper::table4::LZ_TO_HOST_HYP.1,
        ),
        (
            "LightZone kernel mode -> guest kernel mode",
            c.lz_to_guest_kernel,
            (paper::table4::LZ_TO_GUEST_KERNEL_LO.0 + paper::table4::LZ_TO_GUEST_KERNEL_HI.0) / 2.0,
            a.lz_to_guest_kernel,
            (paper::table4::LZ_TO_GUEST_KERNEL_LO.1 + paper::table4::LZ_TO_GUEST_KERNEL_HI.1) / 2.0,
        ),
        (
            "KVM VHE hypercall",
            c.kvm_vhe_hypercall,
            paper::table4::KVM_HYPERCALL.0,
            a.kvm_vhe_hypercall,
            paper::table4::KVM_HYPERCALL.1,
        ),
        (
            "update HCR_EL2",
            c.update_hcr_el2,
            (paper::table4::HCR_WRITE_LO.0 + paper::table4::HCR_WRITE_HI.0) / 2.0,
            a.update_hcr_el2,
            paper::table4::HCR_WRITE_LO.1,
        ),
        (
            "update VTTBR_EL2",
            c.update_vttbr_el2,
            paper::table4::VTTBR_WRITE.0,
            a.update_vttbr_el2,
            paper::table4::VTTBR_WRITE.1,
        ),
    ];
    for (name, cm, cp, am, ap) in rows {
        t.row(&[name.into(), cyc(cm), cyc(cp), cyc(am), cyc(ap)]);
    }
    out.push_str(&t.render());
    out
}

/// Table 5: average cycles per domain switch, reproduced vs paper.
pub fn table5_report(full: bool) -> String {
    let mut out = String::from("\n== Table 5: average cycles per domain switch (with secure call gate) ==\n\n");
    let domains: &[usize] = if full { &[2, 3, 32, 64, 128] } else { &[2, 32, 128] };
    let mut t = Table::new(&["cell", "mechanism", "1 (PAN)", "2", "32", "128"]);
    let cells: [(&str, Platform, Deployment, &[f64; 6], &[f64; 3]); 3] = [
        (
            "Carmel Host",
            Platform::Carmel,
            Deployment::Host,
            &paper::table5::CARMEL_HOST_LZ,
            &paper::table5::CARMEL_HOST_WP,
        ),
        (
            "Carmel Guest",
            Platform::Carmel,
            Deployment::Guest,
            &paper::table5::CARMEL_GUEST_LZ,
            &paper::table5::CARMEL_GUEST_WP,
        ),
        ("Cortex", Platform::CortexA55, Deployment::Host, &paper::table5::CORTEX_LZ, &paper::table5::CORTEX_WP),
    ];
    for (name, p, d, lz_ref, wp_ref) in cells {
        let pan = micro::pan_switch_cycles(p, d);
        let mut lz_cols = vec![format!("{pan:.0}")];
        for &dn in &[2usize, 32, 128] {
            let v = micro::ttbr_switch_cycles(p, d, dn);
            lz_cols.push(format!("{v:.0}"));
        }
        let _ = domains;
        t.row(&[
            name.into(),
            "LightZone".into(),
            format!("{} (paper {:.0})", lz_cols[0], lz_ref[0]),
            format!("{} (paper {:.0})", lz_cols[1], lz_ref[1]),
            format!("{} (paper {:.0})", lz_cols[2], lz_ref[3]),
            format!("{} (paper {:.0})", lz_cols[3], lz_ref[5]),
        ]);
        let wp = micro::wp_switch_cycles(p, d, 2);
        let wp3 = micro::wp_switch_cycles(p, d, 3);
        t.row(&[
            name.into(),
            "Watchpoint".into(),
            format!("{:.0} (paper {:.0})", wp, wp_ref[0]),
            format!("{:.0} (paper {:.0})", wp3, wp_ref[1]),
            "- (16 max)".into(),
            "-".into(),
        ]);
    }
    out.push_str(&t.render());
    out
}
