//! Determinism regressions for the paper tables.
//!
//! Two guarantees, both load-bearing for the reproduction:
//!
//! * back-to-back runs of the same table are byte-identical (the whole
//!   pipeline is deterministic — seeded PRNGs, no wall-clock input);
//! * the decoded-block fetch cache changes no modelled cycle count, so
//!   every table is byte-identical with the cache on and off.

use lz_bench::report;
use lz_machine::cpu::{default_fetch_cache, set_default_fetch_cache};
use std::sync::Mutex;

/// Serialises tests that flip the process-global fetch-cache default.
static CACHE_FLAG: Mutex<()> = Mutex::new(());

#[test]
fn table5_back_to_back_runs_are_byte_identical() {
    let _guard = CACHE_FLAG.lock().unwrap();
    let first = report::table5_report(false);
    let second = report::table5_report(false);
    assert!(!first.is_empty());
    assert_eq!(first, second, "repro table5 must be byte-reproducible");
}

#[test]
fn table4_back_to_back_runs_are_byte_identical() {
    let _guard = CACHE_FLAG.lock().unwrap();
    assert_eq!(report::table4_report(), report::table4_report());
}

#[test]
fn tables_are_byte_identical_cache_on_and_off() {
    let _guard = CACHE_FLAG.lock().unwrap();
    let saved = default_fetch_cache();
    set_default_fetch_cache(true);
    let t4_on = report::table4_report();
    let t5_on = report::table5_report(false);
    set_default_fetch_cache(false);
    let t4_off = report::table4_report();
    let t5_off = report::table5_report(false);
    set_default_fetch_cache(saved);
    assert_eq!(t4_on, t4_off, "table 4 cycles must not depend on the fetch cache");
    assert_eq!(t5_on, t5_off, "table 5 cycles must not depend on the fetch cache");
}

#[test]
fn tables_are_byte_identical_metrics_on_and_off() {
    use lz_machine::metrics::{default_metrics, set_default_metrics};
    let _guard = CACHE_FLAG.lock().unwrap();
    let saved = default_metrics();
    set_default_metrics(true);
    let t4_on = report::table4_report();
    let t5_on = report::table5_report(false);
    set_default_metrics(false);
    let t4_off = report::table4_report();
    let t5_off = report::table5_report(false);
    set_default_metrics(saved);
    assert_eq!(t4_on, t4_off, "table 4 cycles must not depend on the metrics journal");
    assert_eq!(t5_on, t5_off, "table 5 cycles must not depend on the metrics journal");
}
