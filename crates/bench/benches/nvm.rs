//! Criterion bench for Figure 5: the NVM data-isolation workload (real
//! simulated search loops).

use criterion::{criterion_group, criterion_main, Criterion};
use lz_arch::Platform;
use lz_workloads::{nvm, Deployment, Mechanism};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_nvm");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(4));
    g.warm_up_time(Duration::from_millis(500));
    for m in [Mechanism::Vanilla, Mechanism::LzPan, Mechanism::LzTtbr] {
        g.bench_function(format!("search_2buf/{}", m.name()), |b| {
            b.iter(|| nvm::nvm_cycles_per_op(Platform::CortexA55, Deployment::Host, m, 2))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
