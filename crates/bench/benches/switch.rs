//! Criterion bench for Table 5: domain switching across mechanisms.

use criterion::{criterion_group, criterion_main, Criterion};
use lz_arch::Platform;
use lz_workloads::{micro, Deployment};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table5");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(4));
    g.warm_up_time(Duration::from_millis(500));
    for p in Platform::ALL {
        g.bench_function(format!("pan_switch/{}", p.name()), |b| {
            b.iter(|| micro::pan_switch_cycles(p, Deployment::Host))
        });
        for domains in [2usize, 128] {
            g.bench_function(format!("ttbr_switch/{}/{domains}", p.name()), |b| {
                b.iter(|| micro::ttbr_switch_cycles(p, Deployment::Host, domains))
            });
        }
        g.bench_function(format!("wp_switch/{}", p.name()), |b| {
            b.iter(|| micro::wp_switch_cycles(p, Deployment::Host, 2))
        });
        g.bench_function(format!("lwc_switch/{}", p.name()), |b| {
            b.iter(|| micro::lwc_switch_cycles(p, Deployment::Host, 2))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
