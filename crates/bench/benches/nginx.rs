//! Criterion bench for Figure 3: the HTTPS key-protection workload
//! model. Primitives are measured once outside the timing loop (the full
//! measured pipeline is `repro -- fig3`); the bench times the per-cell
//! workload evaluation across the concurrency sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use lz_arch::Platform;
use lz_workloads::micro::Primitives;
use lz_workloads::{httpd, Deployment, Mechanism};
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_nginx");
    g.sample_size(20);
    g.measurement_time(Duration::from_secs(4));
    g.warm_up_time(Duration::from_millis(500));
    let prims = Primitives::measure(Platform::Carmel, Deployment::Host, 16);
    let cfg = httpd::HttpdConfig::paper(Platform::Carmel);
    g.bench_function("sweep/Carmel/host", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for m in Mechanism::ALL {
                for c in [1u64, 2, 4, 8, 16, 32, 64, 128] {
                    total += httpd::throughput(black_box(&cfg), black_box(&prims), m, c);
                }
            }
            total
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
