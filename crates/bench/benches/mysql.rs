//! Criterion bench for Figure 4: the OLTP workload model. Primitives are
//! measured once outside the timing loop (full pipeline: `repro -- fig4`).

use criterion::{criterion_group, criterion_main, Criterion};
use lz_arch::Platform;
use lz_workloads::micro::Primitives;
use lz_workloads::{oltp, Deployment, Mechanism};
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_mysql");
    g.sample_size(20);
    g.measurement_time(Duration::from_secs(4));
    g.warm_up_time(Duration::from_millis(500));
    let prims = Primitives::measure(Platform::Carmel, Deployment::Host, 64);
    let cfg = oltp::OltpConfig::paper(Platform::Carmel);
    g.bench_function("sweep/Carmel/host", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for m in Mechanism::ALL {
                for t in [1u64, 2, 4, 8, 16, 32, 64] {
                    total += oltp::throughput(black_box(&cfg), black_box(&prims), m, t);
                }
            }
            total
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
