//! Criterion bench for Table 4: trap round trips.
//!
//! Each iteration runs the real measurement (assembled yield loops on the
//! simulated machine) for one Table 4 row. The derived cycle counts are
//! printed by `cargo run -p lz-bench --bin repro -- table4`.

use criterion::{criterion_group, criterion_main, Criterion};
use lz_arch::Platform;
use lz_workloads::{micro, Deployment};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table4");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(4));
    g.warm_up_time(Duration::from_millis(500));
    for p in Platform::ALL {
        g.bench_function(format!("host_syscall/{}", p.name()), |b| {
            b.iter(|| micro::vanilla_syscall_cycles(p, Deployment::Host))
        });
        g.bench_function(format!("guest_syscall/{}", p.name()), |b| {
            b.iter(|| micro::vanilla_syscall_cycles(p, Deployment::Guest))
        });
        g.bench_function(format!("lz_host_trap/{}", p.name()), |b| {
            b.iter(|| micro::lz_syscall_cycles(p, Deployment::Host))
        });
        g.bench_function(format!("kvm_hypercall/{}", p.name()), |b| b.iter(|| micro::kvm_hypercall_cycles(p)));
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
