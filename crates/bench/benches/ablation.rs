//! Criterion bench for the DESIGN.md ablations: gate flavors and
//! HCR/VTTBR retention.

use criterion::{criterion_group, criterion_main, Criterion};
use lightzone::gate::GateFlavor;
use lightzone::AblationConfig;
use lz_arch::Platform;
use lz_workloads::{micro, Deployment};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(4));
    g.warm_up_time(Duration::from_millis(500));
    let p = Platform::CortexA55;
    g.bench_function("gate/default", |b| b.iter(|| micro::ttbr_switch_cycles(p, Deployment::Host, 8)));
    g.bench_function("gate/no_check_phase", |b| {
        let abl = AblationConfig {
            gate_flavor: GateFlavor { check_phase: false, tlbi_after_switch: false },
            ..Default::default()
        };
        b.iter(|| micro::ttbr_switch_cycles_with(p, Deployment::Host, 8, abl.clone()))
    });
    g.bench_function("gate/tlbi_instead_of_asid", |b| {
        let abl = AblationConfig {
            gate_flavor: GateFlavor { check_phase: true, tlbi_after_switch: true },
            ..Default::default()
        };
        b.iter(|| micro::ttbr_switch_cycles_with(p, Deployment::Host, 8, abl.clone()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
