//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no network access to a crates registry, so this
//! shim supplies the subset of the proptest API the workspace's property
//! tests use: `Strategy` (ranges, tuples, `any`, `Just`, `prop_map`,
//! `prop_oneof!`, `prop_compose!`, `collection::vec`, `sample::select`) and
//! the `proptest!` runner with `prop_assert*` / `prop_assume!`.
//!
//! Differences from real proptest, deliberately accepted:
//! - no shrinking: a failing case reports its seed and case number instead;
//! - values are drawn from a deterministic splitmix64 stream keyed by the
//!   test name, so failures reproduce exactly across runs and machines.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    use crate::strategy::Strategy;
    use rand::{RngExt, StdRng};
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut StdRng) -> Self::Value {
            let len = if self.size.start + 1 >= self.size.end {
                self.size.start
            } else {
                rng.random_range(self.size.clone())
            };
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use rand::{RngExt, StdRng};

    /// Strategy choosing uniformly from a fixed set of values.
    pub struct Select<T> {
        options: Vec<T>,
    }

    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "sample::select needs at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn new_value(&self, rng: &mut StdRng) -> T {
            self.options[rng.random_range(0..self.options.len())].clone()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, prop_oneof, proptest};
}

/// Defines `#[test]` functions that run their body over many generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{ ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg = $cfg;
            $crate::test_runner::run_cases(stringify!($name), &__cfg, |__rng| {
                $(let $arg = $crate::strategy::Strategy::new_value(&($strat), __rng);)*
                let mut __case = move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                };
                __case()
            });
        }
        $crate::__proptest_tests!{ ($cfg) $($rest)* }
    };
}

/// Defines a function returning an `impl Strategy` built from sub-strategies.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($arg:ident : $argty:ty),* $(,)?)
     ($($var:ident in $strat:expr),+ $(,)?) -> $ret:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name($($arg : $argty),*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::Strategy::prop_map(($($strat,)+), move |($($var,)+)| $body)
        }
    };
}

/// Uniform choice between several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} == {:?}", __l, __r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} ({:?} vs {:?})", format!($($fmt)+), __l, __r),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} != {:?}", __l, __r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} ({:?} vs {:?})", format!($($fmt)+), __l, __r),
            ));
        }
    }};
}

/// Discards the current case (not counted as a success) when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(stringify!($cond)));
        }
    };
}
