//! Case runner: deterministic seeding, reject handling, failure reporting.

use rand::{SeedableRng, StdRng};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Per-`proptest!` block configuration (`ProptestConfig` in the prelude).
#[derive(Clone, Debug)]
pub struct Config {
    pub cases: u32,
}

impl Config {
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// Why a single case did not succeed.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed: skip the case without counting it.
    Reject(String),
    /// `prop_assert*` failed: the property is violated.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Runs `case` until `cfg.cases` successes, with a bounded reject budget.
///
/// The RNG stream is keyed only by the test name (SipHash with fixed keys via
/// `DefaultHasher`), so a failure always reproduces: rerun the same test
/// binary and case N sees the same inputs.
pub fn run_cases<F>(name: &str, cfg: &Config, mut case: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    let mut hasher = DefaultHasher::new();
    name.hash(&mut hasher);
    let mut rng = StdRng::seed_from_u64(hasher.finish());

    let mut successes = 0u32;
    let mut rejects = 0u32;
    let max_rejects = cfg.cases.saturating_mul(16).max(1024);
    while successes < cfg.cases {
        match case(&mut rng) {
            Ok(()) => successes += 1,
            Err(TestCaseError::Reject(_)) => {
                rejects += 1;
                if rejects > max_rejects {
                    panic!(
                        "proptest '{name}': too many rejects ({rejects}) before reaching \
                         {} cases — loosen prop_assume! conditions",
                        cfg.cases
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest '{name}' failed at case {successes}: {msg}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_successes() {
        let mut n = 0;
        run_cases("counts", &Config::with_cases(10), |_rng| {
            n += 1;
            Ok(())
        });
        assert_eq!(n, 10);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn reports_failures() {
        run_cases("fails", &Config::with_cases(10), |_rng| Err(TestCaseError::fail("boom")));
    }

    #[test]
    fn rejects_are_not_counted() {
        let mut attempts = 0;
        run_cases("rejects", &Config::with_cases(5), |_rng| {
            attempts += 1;
            if attempts % 2 == 0 {
                Err(TestCaseError::reject("odd"))
            } else {
                Ok(())
            }
        });
        assert!(attempts > 5);
    }

    #[test]
    fn streams_are_deterministic_per_name() {
        let mut a = vec![];
        run_cases("stream", &Config::with_cases(5), |rng| {
            a.push(rng.next_u64());
            Ok(())
        });
        let mut b = vec![];
        run_cases("stream", &Config::with_cases(5), |rng| {
            b.push(rng.next_u64());
            Ok(())
        });
        assert_eq!(a, b);
    }
}
