//! The `Strategy` trait and the combinators the workspace's tests use.

use rand::{RngExt, StdRng};
use std::marker::PhantomData;
use std::ops::Range;

/// A recipe for generating values of one type from a seeded RNG.
///
/// Object-safe: `prop_map` is `Sized`-gated so `Box<dyn Strategy>` works
/// (needed by `prop_oneof!`).
pub trait Strategy {
    type Value;

    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut StdRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn new_value(&self, rng: &mut StdRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// Helper performing the unsize coercion for `prop_oneof!`.
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// `strategy.prop_map(f)`.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one strategy");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn new_value(&self, rng: &mut StdRng) -> V {
        let idx = rng.random_range(0..self.options.len());
        self.options[idx].new_value(rng)
    }
}

/// Types with a canonical "any value" strategy (subset of `Arbitrary`).
pub trait ArbitraryValue {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

pub struct Any<T>(PhantomData<T>);

pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(PhantomData)
}

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
