//! Minimal, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace provides the small slice of the `rand` API it actually uses:
//! a seedable `StdRng` and `random_range` over integer ranges. Determinism
//! across runs and platforms is the only quality that matters here — the
//! workloads use seeded RNGs precisely so the paper tables are reproducible.
//! The generator is splitmix64 (Steele et al., "Fast splittable pseudorandom
//! number generators"), which passes the statistical bar these workloads need.

use std::ops::Range;

pub mod rngs {
    /// Deterministic 64-bit PRNG (splitmix64 core).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

pub use rngs::StdRng;

/// Construction from a `u64` seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15) }
    }
}

impl StdRng {
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Integer types usable with [`RngExt::random_range`].
pub trait UniformInt: Copy {
    fn from_u64_in(lo: Self, hi: Self, raw: u64) -> Self;
}

macro_rules! impl_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            #[inline]
            fn from_u64_in(lo: Self, hi: Self, raw: u64) -> Self {
                let width = (hi as u64) - (lo as u64);
                lo + (raw % width) as $t
            }
        }
    )*};
}
impl_uniform_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_signed {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            #[inline]
            fn from_u64_in(lo: Self, hi: Self, raw: u64) -> Self {
                let width = (hi as i64 - lo as i64) as u64;
                (lo as i64 + (raw % width) as i64) as $t
            }
        }
    )*};
}
impl_uniform_signed!(i8, i16, i32, i64, isize);

/// The subset of `rand::Rng` the workspace uses.
pub trait RngExt {
    fn raw_u64(&mut self) -> u64;

    /// Uniform draw from a half-open integer range. Panics on empty ranges.
    #[inline]
    fn random_range<T: UniformInt + PartialOrd>(&mut self, range: Range<T>) -> T {
        assert!(range.start < range.end, "random_range called with empty range");
        let raw = self.raw_u64();
        T::from_u64_in(range.start, range.end, raw)
    }

    #[inline]
    fn random_bool(&mut self) -> bool {
        self.raw_u64() & 1 == 1
    }
}

impl RngExt for StdRng {
    #[inline]
    fn raw_u64(&mut self) -> u64 {
        self.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v: u64 = rng.random_range(0..128);
            assert!(v < 128);
            let s: i64 = rng.random_range(-256i64..256);
            assert!((-256..256).contains(&s));
            let u: usize = rng.random_range(3usize..7);
            assert!((3..7).contains(&u));
        }
    }

    #[test]
    fn range_covers_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.random_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
