//! Microbenchmarks: real assembled programs measured on the simulator.
//!
//! Costs are extracted with a two-point slope (run the loop with N and
//! 2N iterations on fresh machines; divide the cycle difference by N),
//! which cancels boot, demand-paging, and warm-up costs exactly like the
//! paper's warm-up phase does.

use crate::deploy::Deployment;
use lightzone::api::{LzAsm, LzProgramBuilder, RW, SAN_PAN, SAN_TTBR};
use lightzone::LightZone;
use lz_arch::asm::Asm;
use lz_arch::{Platform, PAGE_SIZE};
use lz_baselines::Baselines;
use lz_kernel::syscall::custom;
use lz_kernel::{Program, Sysno};
use lz_machine::Machine;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const CODE: u64 = 0x40_0000;
/// Per-domain 4 KB pages live here.
const DOM_BASE: u64 = 0x3000_0000;
/// The random switch sequence (pairs of 8-byte words) lives here.
const SEQ_BASE: u64 = 0x2000_0000;

const RUN_LIMIT: u64 = 400_000_000;

/// Deterministic seed for the random switch sequences (§8.2 "randomly
/// switches between the page tables").
const SEED: u64 = 0x11a5_77a0;

// ---------------------------------------------------------------------
// Table 4: trap round trips.
// ---------------------------------------------------------------------

/// All rows of Table 4 for one platform, in cycles.
#[derive(Debug, Clone)]
pub struct Table4 {
    pub host_user_to_host_hyp: f64,
    pub guest_user_to_guest_kernel: f64,
    pub lz_to_host_hyp: f64,
    pub lz_to_guest_kernel: f64,
    pub kvm_vhe_hypercall: f64,
    pub update_hcr_el2: f64,
    pub update_vttbr_el2: f64,
}

/// Measure every Table 4 row on `platform`.
pub fn table4(platform: Platform) -> Table4 {
    let model = platform.model();
    Table4 {
        host_user_to_host_hyp: vanilla_syscall_cycles(platform, Deployment::Host),
        guest_user_to_guest_kernel: vanilla_syscall_cycles(platform, Deployment::Guest),
        lz_to_host_hyp: lz_syscall_cycles(platform, Deployment::Host),
        lz_to_guest_kernel: lz_syscall_cycles(platform, Deployment::Guest),
        kvm_vhe_hypercall: kvm_hypercall_cycles(platform) as f64,
        update_hcr_el2: model.hcr_el2_write as f64,
        update_vttbr_el2: model.vttbr_el2_write as f64,
    }
}

fn yield_loop(n: u64) -> Program {
    let mut a = Asm::new(CODE);
    a.mov_imm64(23, n);
    a.mov_imm64(8, Sysno::Yield.nr());
    let top = a.label();
    a.bind(top);
    a.svc(0);
    a.subs_imm(23, 23, 1);
    a.b_ne(top);
    a.mov_imm64(0, 0);
    a.mov_imm64(8, Sysno::Exit.nr());
    a.svc(0);
    Program::from_code(CODE, a.bytes())
}

/// Empty-syscall round trip for an ordinary process (Table 4 rows 1–2).
pub fn vanilla_syscall_cycles(platform: Platform, deploy: Deployment) -> f64 {
    let run = |n: u64| {
        let mut k = match deploy {
            Deployment::Host => lz_kernel::Kernel::new_host(platform),
            Deployment::Guest => lz_kernel::Kernel::new_guest(platform),
        };
        let pid = k.spawn(&yield_loop(n));
        k.enter_process(pid);
        assert_eq!(k.run(RUN_LIMIT), lz_kernel::Event::Exited(0));
        k.machine.cpu.cycles
    };
    slope(run(1000), run(2000), 1000)
}

/// Empty-syscall round trip for a LightZone process (Table 4 rows 3–4).
pub fn lz_syscall_cycles(platform: Platform, deploy: Deployment) -> f64 {
    let run = |n: u64| {
        let mut b = LzProgramBuilder::new(CODE);
        b.asm.lz_enter(true, SAN_TTBR);
        b.asm.mov_imm64(23, n);
        b.asm.mov_imm64(8, Sysno::Yield.nr());
        let top = b.asm.label();
        b.asm.bind(top);
        b.asm.svc(0);
        b.asm.subs_imm(23, 23, 1);
        b.asm.b_ne(top);
        b.asm.exit_imm(0);
        let prog = b.build();
        let mut lz = match deploy {
            Deployment::Host => LightZone::new_host(platform),
            Deployment::Guest => LightZone::new_guest(platform),
        };
        let pid = lz.spawn(&prog);
        lz.enter_process(pid);
        assert_eq!(lz.run(RUN_LIMIT), lz_kernel::Event::Exited(0));
        lz.kernel.machine.cpu.cycles
    };
    slope(run(1000), run(2000), 1000)
}

/// A conventional KVM (VHE) hypercall: full world switch out and back
/// (Table 4 row 5). The guest kernel is modelled, so this composes the
/// same charges the world-switch path makes.
pub fn kvm_hypercall_cycles(platform: Platform) -> u64 {
    let mut m = Machine::new(platform);
    m.charge(m.model.exception_entry_el2);
    lz_kernel::kvm::charge_full_world_switch(&mut m);
    let handler = m.model.path_cost(54);
    m.charge(handler);
    m.charge(m.model.exception_return_el2);
    m.cpu.cycles
}

// ---------------------------------------------------------------------
// Table 5: domain switching.
// ---------------------------------------------------------------------

/// Build the random `(target, page)` sequence shared by the switch
/// benchmarks: `n` pairs over `domains` domains.
fn switch_sequence(domains: usize, n: usize, target: impl Fn(usize) -> u64) -> (Vec<u8>, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut bytes = Vec::with_capacity(n * 16);
    let mut picks = Vec::with_capacity(n);
    for _ in 0..n {
        let d = rng.random_range(0..domains);
        picks.push(d);
        bytes.extend_from_slice(&target(d).to_le_bytes());
        bytes.extend_from_slice(&(DOM_BASE + d as u64 * PAGE_SIZE).to_le_bytes());
    }
    (bytes, picks)
}

/// Average cycles of a PAN domain switch + 8-byte access (Table 5 column
/// "1 (PAN)"): `set_pan(0); load; set_pan(1)`.
pub fn pan_switch_cycles(platform: Platform, deploy: Deployment) -> f64 {
    let run = |n: u64| {
        let mut b = LzProgramBuilder::new(CODE);
        b.with_segment(DOM_BASE, vec![0u8; PAGE_SIZE as usize], lz_kernel::VmProt::RW);
        b.asm.lz_enter(false, SAN_PAN);
        b.asm.lz_prot_imm(DOM_BASE, PAGE_SIZE, lightzone::pgt::PGT_ALL, RW | lightzone::pgt::perm::USER);
        b.asm.mov_imm64(19, DOM_BASE);
        b.asm.mov_imm64(23, n);
        let top = b.asm.label();
        b.asm.bind(top);
        b.asm.set_pan(0);
        b.asm.ldr(1, 19, 0);
        b.asm.set_pan(1);
        b.asm.subs_imm(23, 23, 1);
        b.asm.b_ne(top);
        b.asm.exit_imm(0);
        let prog = b.build();
        let mut lz = match deploy {
            Deployment::Host => LightZone::new_host(platform),
            Deployment::Guest => LightZone::new_guest(platform),
        };
        let pid = lz.spawn(&prog);
        lz.enter_process(pid);
        assert_eq!(lz.run(RUN_LIMIT), lz_kernel::Event::Exited(0));
        lz.kernel.machine.cpu.cycles
    };
    slope(run(4000), run(8000), 4000)
}

/// Average cycles of a TTBR domain switch (secure call gate) + 8-byte
/// access, over `domains` randomly-switched 4 KB domains (Table 5).
pub fn ttbr_switch_cycles(platform: Platform, deploy: Deployment, domains: usize) -> f64 {
    ttbr_switch_cycles_with(platform, deploy, domains, lightzone::AblationConfig::default())
}

/// Same, with ablation knobs (used by the ablation bench).
pub fn ttbr_switch_cycles_with(
    platform: Platform,
    deploy: Deployment,
    domains: usize,
    ablation: lightzone::AblationConfig,
) -> f64 {
    assert!(domains >= 1 && domains <= u16::MAX as usize);
    // One sequence image sized for the longest run, so both slope points
    // fault the identical set of sequence pages during warm-up.
    const N_MAX: usize = 10_000;
    let (seq, _) = switch_sequence(domains, N_MAX, |d| lightzone::gate::layout::gate_va(d as u16));
    let run = |n: usize| {
        assert!(n <= N_MAX);
        let mut b = LzProgramBuilder::new(CODE);
        b.with_segment(SEQ_BASE, seq.clone(), lz_kernel::VmProt::R);
        b.with_segment(DOM_BASE, vec![0u8; (domains as u64 * PAGE_SIZE) as usize], lz_kernel::VmProt::RW);
        b.asm.lz_enter(true, SAN_TTBR);
        // Setup: one table + gate + 4 KB domain per d. lz_alloc returns
        // deterministic ids 1..=domains.
        for d in 0..domains as u64 {
            b.asm.lz_alloc();
            b.asm.lz_map_gate_pgt_imm(d + 1, d);
            b.asm.lz_prot_imm(DOM_BASE + d * PAGE_SIZE, PAGE_SIZE, d + 1, RW);
        }
        // Prefault the sequence pages so the measured loop sees no
        // cold demand-paging traps (the paper's warm-up phase).
        let seq_pages = (N_MAX * 16).div_ceil(PAGE_SIZE as usize) as u64;
        b.asm.mov_imm64(21, SEQ_BASE);
        b.asm.mov_imm64(23, seq_pages);
        let warm = b.asm.label();
        b.asm.bind(warm);
        b.asm.ldr(1, 21, 0);
        b.asm.add_imm(21, 21, 4095);
        b.asm.add_imm(21, 21, 1);
        b.asm.subs_imm(23, 23, 1);
        b.asm.b_ne(warm);
        b.asm.mov_imm64(21, SEQ_BASE);
        b.asm.mov_imm64(23, n as u64);
        let top = b.asm.label();
        b.asm.bind(top);
        b.asm.ldr(17, 21, 0); // gate address
        b.asm.ldr(19, 21, 8); // domain page
        b.asm.add_imm(21, 21, 16);
        b.asm.blr(17);
        let entry = b.here(); // ENTRY for every gate: the insn after blr
        b.asm.ldr(1, 19, 0); // 8-byte access in the new domain
        b.asm.subs_imm(23, 23, 1);
        b.asm.b_ne(top);
        b.asm.exit_imm(0);
        for g in 0..domains as u16 {
            b.register_gate_entry(g, entry);
        }
        let prog = b.build();
        let mut lz = lightzone::LightZone::with_ablation(platform, deploy == Deployment::Guest, ablation.clone());
        let pid = lz.spawn(&prog);
        lz.enter_process(pid);
        assert_eq!(lz.run(RUN_LIMIT), lz_kernel::Event::Exited(0));
        lz.kernel.machine.cpu.cycles
    };
    // 10,000 switches as in the paper (quartered in debug builds),
    // slope over the second half.
    if cfg!(debug_assertions) {
        slope(run(1_250), run(2_500), 1_250)
    } else {
        slope(run(5_000), run(10_000), 5_000)
    }
}

/// Average cycles of a Watchpoint (ioctl) domain switch + access.
///
/// # Panics
///
/// Panics if `domains > 16` — the prototype's hard limit.
pub fn wp_switch_cycles(platform: Platform, deploy: Deployment, domains: usize) -> f64 {
    assert!(domains <= 16, "watchpoint prototype supports at most 16 domains");
    const N_MAX: usize = 4_000;
    let (seq, _) = switch_sequence(domains, N_MAX, |d| d as u64);
    let run = |n: usize| {
        assert!(n <= N_MAX);
        let seq = seq.clone();
        let mut a = Asm::new(CODE);
        let mut prog_data: Vec<(u64, Vec<u8>)> = Vec::new();
        prog_data.push((SEQ_BASE, seq));
        prog_data.push((DOM_BASE, vec![0u8; (domains as u64 * PAGE_SIZE) as usize]));
        a.mov_imm64(8, custom::WP_ENTER);
        a.svc(0);
        for d in 0..domains as u64 {
            a.mov_imm64(0, DOM_BASE + d * PAGE_SIZE);
            a.mov_imm64(1, PAGE_SIZE);
            a.mov_imm64(8, custom::WP_PROT);
            a.svc(0);
        }
        let seq_pages = (N_MAX * 16).div_ceil(PAGE_SIZE as usize) as u64;
        a.mov_imm64(21, SEQ_BASE);
        a.mov_imm64(23, seq_pages);
        let warm = a.label();
        a.bind(warm);
        a.ldr(1, 21, 0);
        a.add_imm(21, 21, 4095);
        a.add_imm(21, 21, 1);
        a.subs_imm(23, 23, 1);
        a.b_ne(warm);
        a.mov_imm64(21, SEQ_BASE);
        a.mov_imm64(23, n as u64);
        let top = a.label();
        a.bind(top);
        a.ldr(0, 21, 0); // domain index
        a.ldr(19, 21, 8); // domain page
        a.add_imm(21, 21, 16);
        a.mov_imm64(8, custom::WP_SWITCH);
        a.svc(0);
        a.ldr(1, 19, 0);
        a.subs_imm(23, 23, 1);
        a.b_ne(top);
        a.mov_imm64(0, 0);
        a.mov_imm64(8, Sysno::Exit.nr());
        a.svc(0);
        let mut prog = Program::from_code(CODE, a.bytes());
        for (va, data) in prog_data {
            prog = prog.with_segment(va, data, lz_kernel::VmProt::RW);
        }
        let mut bl = match deploy {
            Deployment::Host => Baselines::new_host(platform),
            Deployment::Guest => Baselines::new_guest(platform),
        };
        let pid = bl.spawn(&prog);
        bl.enter_process(pid);
        assert_eq!(bl.run(RUN_LIMIT), lz_kernel::Event::Exited(0));
        bl.kernel.machine.cpu.cycles
    };
    slope(run(2_000), run(4_000), 2_000)
}

/// Average cycles of an lwC domain switch + access.
pub fn lwc_switch_cycles(platform: Platform, deploy: Deployment, domains: usize) -> f64 {
    const N_MAX: usize = 4_000;
    let (seq, _) = switch_sequence(domains, N_MAX, |d| d as u64);
    let run =
        |n: usize| {
            assert!(n <= N_MAX);
            let seq = seq.clone();
            let mut a = Asm::new(CODE);
            for _ in 0..domains {
                a.mov_imm64(8, custom::LWC_CREATE);
                a.svc(0);
            }
            let seq_pages = (N_MAX * 16).div_ceil(PAGE_SIZE as usize) as u64;
            a.mov_imm64(21, SEQ_BASE);
            a.mov_imm64(23, seq_pages);
            let warm = a.label();
            a.bind(warm);
            a.ldr(1, 21, 0);
            a.add_imm(21, 21, 4095);
            a.add_imm(21, 21, 1);
            a.subs_imm(23, 23, 1);
            a.b_ne(warm);
            a.mov_imm64(21, SEQ_BASE);
            a.mov_imm64(23, n as u64);
            let top = a.label();
            a.bind(top);
            a.ldr(0, 21, 0);
            a.ldr(19, 21, 8);
            a.add_imm(21, 21, 16);
            a.mov_imm64(8, custom::LWC_SWITCH);
            a.svc(0);
            a.ldr(1, 19, 0);
            a.subs_imm(23, 23, 1);
            a.b_ne(top);
            a.mov_imm64(0, 0);
            a.mov_imm64(8, Sysno::Exit.nr());
            a.svc(0);
            let prog = Program::from_code(CODE, a.bytes())
                .with_segment(SEQ_BASE, seq, lz_kernel::VmProt::R)
                .with_segment(DOM_BASE, vec![0u8; (domains as u64 * PAGE_SIZE) as usize], lz_kernel::VmProt::RW);
            let mut bl = match deploy {
                Deployment::Host => Baselines::new_host(platform),
                Deployment::Guest => Baselines::new_guest(platform),
            };
            let pid = bl.spawn(&prog);
            bl.enter_process(pid);
            assert_eq!(bl.run(RUN_LIMIT), lz_kernel::Event::Exited(0));
            bl.kernel.machine.cpu.cycles
        };
    slope(run(2_000), run(4_000), 2_000)
}

fn slope(c1: u64, c2: u64, dn: u64) -> f64 {
    (c2.saturating_sub(c1)) as f64 / dn as f64
}

// ---------------------------------------------------------------------
// Primitives for the application-workload models.
// ---------------------------------------------------------------------

/// Measured cost primitives for one `(platform, deployment)` cell, used
/// by the Figure 3–5 workload models.
#[derive(Debug, Clone)]
pub struct Primitives {
    pub platform: Platform,
    pub deploy: Deployment,
    /// Empty syscall round trip, ordinary process.
    pub vanilla_syscall: f64,
    /// Empty syscall round trip, LightZone process.
    pub lz_syscall: f64,
    /// PAN switch + access.
    pub pan_switch: f64,
    /// TTBR gate switch + access at the given domain count.
    pub ttbr_switch: f64,
    /// Watchpoint ioctl switch + access.
    pub wp_switch: f64,
    /// lwC switch + access.
    pub lwc_switch: f64,
    /// Extra walk cost a stage-2-backed TLB miss pays over a host miss.
    pub stage2_extra_walk: f64,
}

impl Primitives {
    /// Measure everything for one cell. `ttbr_domains` sets the domain
    /// count for the TTBR measurement (and is clamped to 16 for the
    /// watchpoint prototype).
    pub fn measure(platform: Platform, deploy: Deployment, ttbr_domains: usize) -> Self {
        let model = platform.model();
        Primitives {
            platform,
            deploy,
            vanilla_syscall: vanilla_syscall_cycles(platform, deploy),
            lz_syscall: lz_syscall_cycles(platform, deploy),
            pan_switch: pan_switch_cycles(platform, deploy),
            ttbr_switch: ttbr_switch_cycles(platform, deploy, ttbr_domains),
            wp_switch: wp_switch_cycles(platform, deploy, ttbr_domains.min(16)),
            lwc_switch: lwc_switch_cycles(platform, deploy, ttbr_domains),
            stage2_extra_walk: (model.nested_walk() - model.stage1_walk()) as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Microbenchmarks interpret tens of thousands of instructions; keep
    // the unit-test variants small and leave full sizes to the bench
    // harness.

    #[test]
    fn host_syscall_near_table4() {
        let c = vanilla_syscall_cycles(Platform::Carmel, Deployment::Host);
        assert!((3000.0..4700.0).contains(&c), "carmel host syscall = {c}");
        let a = vanilla_syscall_cycles(Platform::CortexA55, Deployment::Host);
        assert!((200.0..450.0).contains(&a), "a55 host syscall = {a}");
    }

    #[test]
    fn guest_syscall_near_table4() {
        let c = vanilla_syscall_cycles(Platform::Carmel, Deployment::Guest);
        assert!((1000.0..1900.0).contains(&c), "carmel guest syscall = {c}");
    }

    #[test]
    fn lz_host_trap_cheaper_than_host_syscall_on_carmel() {
        let host = vanilla_syscall_cycles(Platform::Carmel, Deployment::Host);
        let lz = lz_syscall_cycles(Platform::Carmel, Deployment::Host);
        assert!(lz < host, "Table 4 headline: {lz} < {host}");
    }

    #[test]
    fn lz_host_trap_pricier_than_host_syscall_on_a55() {
        let host = vanilla_syscall_cycles(Platform::CortexA55, Deployment::Host);
        let lz = lz_syscall_cycles(Platform::CortexA55, Deployment::Host);
        assert!(lz > host, "A55 inverts: {lz} > {host}");
    }

    #[test]
    fn pan_switch_is_tens_of_cycles() {
        let c = pan_switch_cycles(Platform::Carmel, Deployment::Host);
        assert!((10.0..40.0).contains(&c), "carmel pan switch = {c}");
        let a = pan_switch_cycles(Platform::CortexA55, Deployment::Host);
        assert!((5.0..25.0).contains(&a), "a55 pan switch = {a}");
    }

    #[test]
    fn ttbr_switch_small_domain_count() {
        let a = ttbr_switch_cycles(Platform::CortexA55, Deployment::Host, 2);
        assert!((40.0..120.0).contains(&a), "a55 ttbr switch = {a}");
    }

    #[test]
    fn wp_switch_dwarfs_ttbr() {
        let wp = wp_switch_cycles(Platform::CortexA55, Deployment::Host, 2);
        let ttbr = ttbr_switch_cycles(Platform::CortexA55, Deployment::Host, 2);
        assert!(wp > 5.0 * ttbr, "wp {wp} vs ttbr {ttbr}");
    }

    #[test]
    fn kvm_hypercall_in_band() {
        let c = kvm_hypercall_cycles(Platform::Carmel);
        assert!((22_000..36_000).contains(&c), "carmel hypercall = {c}");
        let a = kvm_hypercall_cycles(Platform::CortexA55);
        assert!((900..1_800).contains(&a), "a55 hypercall = {a}");
    }
}
