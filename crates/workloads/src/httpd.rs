//! HTTPS cryptographic-key protection (paper §9.1, Figure 3).
//!
//! An Nginx-like server terminates TLS with per-connection `AES_KEY`
//! structures. Following the paper, each key lives in its own isolation
//! domain (TTBR variant) or in the single PAN-guarded domain, and every
//! function that touches a key crosses into the key's domain and back
//! (function-grained isolation after ERIM).
//!
//! This is an *operation-level* model: the per-request mix of syscalls,
//! key-domain crossings, and TLB behaviour is fixed from the workload
//! description (`ab -c <clients>`, 10,000 requests for a 1 KB file over
//! TLS), and every primitive cost is **measured on the simulator** by
//! [`crate::micro`]. Absolute throughput is therefore synthetic, but the
//! relative losses per mechanism inherit the machine's real costs.

use crate::deploy::{Deployment, Mechanism};
use crate::micro::Primitives;
use lz_arch::Platform;

/// Workload shape for one run (paper defaults unless noted).
#[derive(Debug, Clone)]
pub struct HttpdConfig {
    /// Kernel round trips per request: accept/read/write/close on a
    /// keep-alive-less 1 KB HTTPS request.
    pub syscalls_per_request: f64,
    /// Key-domain entries per request: TLS record MACs + handshake-free
    /// steady state, function-grained (each entry = gate in + gate out,
    /// or PAN open + close).
    pub key_accesses_per_request: f64,
    /// Data-TLB misses per request that stage-2 turns into nested walks.
    pub stage2_sensitive_misses: f64,
    /// Application compute per request in cycles (TLS record crypto,
    /// parsing, copying), excluding kernel time.
    pub base_work: f64,
    /// Simulated network round-trip time in cycles (latency floor before
    /// the single worker saturates).
    pub net_rtt: f64,
}

impl HttpdConfig {
    /// Paper-shaped defaults for one platform.
    pub fn paper(platform: Platform) -> Self {
        let (base_work, net_rtt) = match platform {
            // Cycles, not time: the A55 spends more cycles per request.
            Platform::Carmel => (312_000.0, 1_760_000.0),
            Platform::CortexA55 => (400_000.0, 1_600_000.0),
        };
        HttpdConfig {
            syscalls_per_request: 4.0,
            key_accesses_per_request: 20.0,
            stage2_sensitive_misses: 10.0,
            base_work,
            net_rtt,
        }
    }
}

/// The integer per-request shape the fleet benchmark's *executed*
/// tenant programs use for an httpd-like connection: the paper config's
/// 20 key-domain crossings and 4 kernel round trips per request, plus a
/// 1 KB response copied in 8-byte touches of the key domain's arena.
pub fn fleet_shape() -> crate::FleetShape {
    let cfg = HttpdConfig::paper(lz_arch::Platform::Carmel);
    crate::FleetShape {
        switches_per_request: cfg.key_accesses_per_request as u32,
        arena_touches: 16,
        syscalls_per_request: cfg.syscalls_per_request as u32,
    }
}

/// Cycles to serve one request under `mechanism`.
pub fn request_cycles(cfg: &HttpdConfig, prims: &Primitives, mechanism: Mechanism) -> f64 {
    let k = cfg.key_accesses_per_request;
    match mechanism {
        Mechanism::Vanilla => cfg.base_work + cfg.syscalls_per_request * prims.vanilla_syscall,
        Mechanism::LzPan => {
            cfg.base_work
                + cfg.syscalls_per_request * prims.lz_syscall
                + k * prims.pan_switch
                + cfg.stage2_sensitive_misses * prims.stage2_extra_walk
        }
        Mechanism::LzTtbr => {
            cfg.base_work
                + cfg.syscalls_per_request * prims.lz_syscall
                + k * 2.0 * prims.ttbr_switch
                + cfg.stage2_sensitive_misses * prims.stage2_extra_walk
        }
        Mechanism::Watchpoint => {
            cfg.base_work + cfg.syscalls_per_request * prims.vanilla_syscall + k * 2.0 * prims.wp_switch
        }
        Mechanism::Lwc => cfg.base_work + cfg.syscalls_per_request * prims.vanilla_syscall + k * 2.0 * prims.lwc_switch,
    }
}

/// Throughput (requests/second) at a given client concurrency for a
/// single worker: latency-bound at low concurrency, CPU-bound once the
/// worker saturates (the Figure 3 curve shape).
pub fn throughput(cfg: &HttpdConfig, prims: &Primitives, mechanism: Mechanism, clients: u64) -> f64 {
    let hz = match prims.platform {
        Platform::Carmel => 2.2e9,
        Platform::CortexA55 => 2.0e9,
    };
    let service = request_cycles(cfg, prims, mechanism) / hz;
    let latency_bound = clients as f64 / (cfg.net_rtt / hz + service);
    let cpu_bound = 1.0 / service;
    latency_bound.min(cpu_bound)
}

/// Relative throughput loss (0..1) of `mechanism` at saturation.
pub fn saturated_loss(cfg: &HttpdConfig, prims: &Primitives, mechanism: Mechanism) -> f64 {
    let base = request_cycles(cfg, prims, Mechanism::Vanilla);
    let prot = request_cycles(cfg, prims, mechanism);
    (prot - base) / prot
}

/// One Figure 3 panel: throughput for every mechanism over a concurrency
/// sweep. The key count (= concurrent connections with in-flight keys)
/// tracks the client count, capped at 16 for the watchpoint prototype.
pub fn figure3(platform: Platform, deploy: Deployment, clients_sweep: &[u64]) -> Vec<(Mechanism, Vec<(u64, f64)>)> {
    let cfg = HttpdConfig::paper(platform);
    let max_keys = clients_sweep.iter().copied().max().unwrap_or(1).clamp(1, 128) as usize;
    let prims = Primitives::measure(platform, deploy, max_keys);
    Mechanism::ALL
        .iter()
        .map(|&m| {
            let pts = clients_sweep.iter().map(|&c| (c, throughput(&cfg, &prims, m, c))).collect();
            (m, pts)
        })
        .collect()
}

/// Memory-overhead accounting of §9.1: baseline RSS, per-key page
/// fragmentation, and page-table overhead per mechanism.
#[derive(Debug, Clone, Copy)]
pub struct HttpdMemory {
    pub baseline_bytes: f64,
    pub fragmentation: f64,
    pub pan_page_tables: f64,
    pub ttbr_page_tables: f64,
}

/// Model the paper's §9.1 memory numbers: each key padded to a 4 KB page
/// (fragmentation), one extra stage-1 tree per key domain for the
/// scalable variant.
pub fn memory_overhead(keys: u64) -> HttpdMemory {
    let baseline = 21.7 * 1024.0 * 1024.0;
    let key_struct = 244.0; // sizeof(AES_KEY), expanded
    let frag = keys as f64 * (4096.0 - key_struct);
    // One 4-level tree per key domain: root + 3 intermediate levels for
    // the key page + a handful of shared-code table pages re-created per
    // tree (~12 pages each, empirically from `LzProc::table_bytes`).
    let ttbr_tables = keys as f64 * 12.0 * 4096.0;
    let pan_tables = 64.0 * 4096.0; // one duplicated tree, all keys in it
    HttpdMemory {
        baseline_bytes: baseline,
        fragmentation: frag / baseline,
        pan_page_tables: pan_tables / baseline,
        ttbr_page_tables: ttbr_tables / baseline,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_prims() -> Primitives {
        // Hand-rolled primitives so unit tests don't run the simulator;
        // values roughly match the measured Carmel host cell.
        Primitives {
            platform: Platform::Carmel,
            deploy: Deployment::Host,
            vanilla_syscall: 3815.0,
            lz_syscall: 3288.0,
            pan_switch: 23.0,
            ttbr_switch: 466.0,
            wp_switch: 7059.0,
            lwc_switch: 12800.0,
            stage2_extra_walk: 375.0,
        }
    }

    #[test]
    fn loss_ordering_matches_figure3_carmel_host() {
        let cfg = HttpdConfig::paper(Platform::Carmel);
        let p = fake_prims();
        let pan = saturated_loss(&cfg, &p, Mechanism::LzPan);
        let ttbr = saturated_loss(&cfg, &p, Mechanism::LzTtbr);
        let wp = saturated_loss(&cfg, &p, Mechanism::Watchpoint);
        let lwc = saturated_loss(&cfg, &p, Mechanism::Lwc);
        assert!(pan < ttbr && ttbr < wp && wp < lwc, "pan={pan} ttbr={ttbr} wp={wp} lwc={lwc}");
        // Paper: 1.35% / 5.65% / 45.46% / 59.03%.
        assert!(pan < 0.03, "pan = {pan}");
        assert!((0.02..0.12).contains(&ttbr), "ttbr = {ttbr}");
        assert!((0.30..0.55).contains(&wp), "wp = {wp}");
        assert!((0.45..0.70).contains(&lwc), "lwc = {lwc}");
    }

    #[test]
    fn throughput_saturates() {
        let cfg = HttpdConfig::paper(Platform::Carmel);
        let p = fake_prims();
        let t1 = throughput(&cfg, &p, Mechanism::Vanilla, 1);
        let t8 = throughput(&cfg, &p, Mechanism::Vanilla, 8);
        let t64 = throughput(&cfg, &p, Mechanism::Vanilla, 64);
        let t128 = throughput(&cfg, &p, Mechanism::Vanilla, 128);
        assert!(t8 > t1 * 4.0, "scales before saturation");
        assert!((t128 - t64).abs() / t64 < 0.05, "flat after saturation");
    }

    #[test]
    fn memory_overheads_in_paper_band() {
        // §9.1: fragmentation 1.6%, PAN tables 1.2%, TTBR tables up to
        // 22.2% ("reaching several megabytes").
        let m = memory_overhead(100);
        assert!((0.005..0.03).contains(&m.fragmentation), "frag = {}", m.fragmentation);
        assert!((0.005..0.02).contains(&m.pan_page_tables), "pan = {}", m.pan_page_tables);
        assert!((0.1..0.3).contains(&m.ttbr_page_tables), "ttbr = {}", m.ttbr_page_tables);
    }
}
