//! A toy block cipher for the runnable examples.
//!
//! Stands in for OpenSSL's AES in the key-protection scenarios: the
//! *security* property under study is who can read the key, not the
//! cipher's strength. 16-byte blocks, 16-byte keys, 8 xor-rotate rounds.

/// Block and key size in bytes.
pub const BLOCK: usize = 16;

/// Encrypt one block in place.
pub fn encrypt_block(block: &mut [u8; BLOCK], key: &[u8; BLOCK]) {
    for round in 0..8u32 {
        for i in 0..BLOCK {
            block[i] = block[i].wrapping_add(key[(i + round as usize) % BLOCK]).rotate_left(3) ^ (round as u8);
        }
    }
}

/// Decrypt one block in place.
pub fn decrypt_block(block: &mut [u8; BLOCK], key: &[u8; BLOCK]) {
    for round in (0..8u32).rev() {
        for i in (0..BLOCK).rev() {
            block[i] = (block[i] ^ (round as u8)).rotate_right(3).wrapping_sub(key[(i + round as usize) % BLOCK]);
        }
    }
}

/// Encrypt a buffer (must be a multiple of [`BLOCK`]).
///
/// # Panics
///
/// Panics if `data.len()` is not a multiple of the block size.
pub fn encrypt(data: &mut [u8], key: &[u8; BLOCK]) {
    assert!(data.len().is_multiple_of(BLOCK), "data must be block aligned");
    for chunk in data.chunks_exact_mut(BLOCK) {
        let block: &mut [u8; BLOCK] = chunk.try_into().expect("chunk is BLOCK bytes");
        encrypt_block(block, key);
    }
}

/// Decrypt a buffer (must be a multiple of [`BLOCK`]).
///
/// # Panics
///
/// Panics if `data.len()` is not a multiple of the block size.
pub fn decrypt(data: &mut [u8], key: &[u8; BLOCK]) {
    assert!(data.len().is_multiple_of(BLOCK), "data must be block aligned");
    for chunk in data.chunks_exact_mut(BLOCK) {
        let block: &mut [u8; BLOCK] = chunk.try_into().expect("chunk is BLOCK bytes");
        decrypt_block(block, key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let key = [7u8; BLOCK];
        let mut data = (0..64u8).collect::<Vec<_>>();
        let orig = data.clone();
        encrypt(&mut data, &key);
        assert_ne!(data, orig);
        decrypt(&mut data, &key);
        assert_eq!(data, orig);
    }

    #[test]
    fn different_keys_differ() {
        let mut a = [1u8; BLOCK];
        let mut b = [1u8; BLOCK];
        encrypt_block(&mut a, &[2u8; BLOCK]);
        encrypt_block(&mut b, &[3u8; BLOCK]);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "block aligned")]
    fn unaligned_rejected() {
        encrypt(&mut [0u8; 5], &[0u8; BLOCK]);
    }
}
