//! Application workloads and microbenchmarks for the LightZone
//! evaluation (paper §8–§9).
//!
//! * [`micro`] — runs *real assembled programs* on the simulated machine
//!   to measure trap round-trips (Table 4) and domain-switch costs
//!   (Table 5) for every mechanism and deployment.
//! * [`httpd`] — the HTTPS cryptographic-key-protection workload
//!   (Nginx + OpenSSL, Figure 3): per-connection AES keys in per-key
//!   domains, function-grained gate crossings.
//! * [`oltp`] — the multi-threaded database workload (MySQL, Figure 4):
//!   per-connection stack domains plus a PAN-protected MEMORY storage
//!   engine (`HP_PTRS`).
//! * [`nvm`] — the NVM data-isolation workload (Merr-style, Figure 5):
//!   2 MB string buffers, one domain each, substring searches.
//! * [`crypto`] — a toy block cipher used by the runnable examples.
//!
//! The application workloads are *operation-level* models: their
//! syscall, domain-switch, and TLB behaviour per request is composed
//! from primitives measured by [`micro`] on the simulator, so every
//! mechanism comparison inherits the machine's actual costs.

pub mod crypto;
pub mod deploy;
pub mod httpd;
pub mod micro;
pub mod nvm;
pub mod oltp;

pub use deploy::{Deployment, Mechanism};
pub use micro::Primitives;

/// Integer per-request shape of a workload for the fleet benchmark
/// (`lz-fleet`): unlike the float operation-level models above, these
/// drive *real assembled guest programs*, so every field is an exact
/// instruction count the program generator unrolls. Shapes are derived
/// from the paper configs ([`httpd::fleet_shape`], [`oltp::fleet_shape`])
/// with the per-request counts kept small enough to run thousands of
/// requests inside the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetShape {
    /// Call-gate domain switches per request (each: gate `blr` + 8-byte
    /// access in the entered domain).
    pub switches_per_request: u32,
    /// Extra 8-byte reads of the current domain's arena page per
    /// request (application data work).
    pub arena_touches: u32,
    /// Kernel round trips per request (forwarded through the VE stub).
    pub syscalls_per_request: u32,
}
