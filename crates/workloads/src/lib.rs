//! Application workloads and microbenchmarks for the LightZone
//! evaluation (paper §8–§9).
//!
//! * [`micro`] — runs *real assembled programs* on the simulated machine
//!   to measure trap round-trips (Table 4) and domain-switch costs
//!   (Table 5) for every mechanism and deployment.
//! * [`httpd`] — the HTTPS cryptographic-key-protection workload
//!   (Nginx + OpenSSL, Figure 3): per-connection AES keys in per-key
//!   domains, function-grained gate crossings.
//! * [`oltp`] — the multi-threaded database workload (MySQL, Figure 4):
//!   per-connection stack domains plus a PAN-protected MEMORY storage
//!   engine (`HP_PTRS`).
//! * [`nvm`] — the NVM data-isolation workload (Merr-style, Figure 5):
//!   2 MB string buffers, one domain each, substring searches.
//! * [`crypto`] — a toy block cipher used by the runnable examples.
//!
//! The application workloads are *operation-level* models: their
//! syscall, domain-switch, and TLB behaviour per request is composed
//! from primitives measured by [`micro`] on the simulator, so every
//! mechanism comparison inherits the machine's actual costs.

pub mod crypto;
pub mod deploy;
pub mod httpd;
pub mod micro;
pub mod nvm;
pub mod oltp;

pub use deploy::{Deployment, Mechanism};
pub use micro::Primitives;
