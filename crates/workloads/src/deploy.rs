//! Deployment and mechanism enums shared by all experiments.

use std::fmt;

/// Where the protected application runs (the paper's Host/Guest columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Deployment {
    /// Directly under the VHE host kernel.
    Host,
    /// Inside a KVM guest VM (LightZone then needs Lowvisor).
    Guest,
}

impl Deployment {
    pub const ALL: [Deployment; 2] = [Deployment::Host, Deployment::Guest];

    pub const fn name(self) -> &'static str {
        match self {
            Deployment::Host => "Host",
            Deployment::Guest => "Guest",
        }
    }
}

impl fmt::Display for Deployment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The isolation mechanism applied to the workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mechanism {
    /// Unprotected baseline.
    Vanilla,
    /// LightZone with PAN (two domains, near-free switches).
    LzPan,
    /// LightZone with TTBR page-table switching (scalable).
    LzTtbr,
    /// The ioctl-based hardware-watchpoint prototype (≤ 16 domains).
    Watchpoint,
    /// Simulated light-weight contexts.
    Lwc,
}

impl Mechanism {
    /// All mechanisms, in the order the paper's figures list them.
    pub const ALL: [Mechanism; 5] =
        [Mechanism::Vanilla, Mechanism::LzPan, Mechanism::LzTtbr, Mechanism::Watchpoint, Mechanism::Lwc];

    /// The protected mechanisms (everything but vanilla).
    pub const PROTECTED: [Mechanism; 4] = [Mechanism::LzPan, Mechanism::LzTtbr, Mechanism::Watchpoint, Mechanism::Lwc];

    pub const fn name(self) -> &'static str {
        match self {
            Mechanism::Vanilla => "Original",
            Mechanism::LzPan => "LightZone PAN",
            Mechanism::LzTtbr => "LightZone TTBR",
            Mechanism::Watchpoint => "Watchpoint",
            Mechanism::Lwc => "lwC",
        }
    }

    /// Maximum number of isolation domains the mechanism supports.
    pub const fn max_domains(self) -> usize {
        match self {
            Mechanism::Vanilla => 0,
            Mechanism::LzPan => 2,
            Mechanism::LzTtbr => 1 << 16,
            Mechanism::Watchpoint => 16,
            Mechanism::Lwc => usize::MAX,
        }
    }
}

impl fmt::Display for Mechanism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_scalability_column() {
        assert_eq!(Mechanism::Watchpoint.max_domains(), 16);
        assert_eq!(Mechanism::LzPan.max_domains(), 2);
        assert_eq!(Mechanism::LzTtbr.max_domains(), 65536);
        assert!(Mechanism::Lwc.max_domains() > 1 << 16);
    }

    #[test]
    fn names_are_figure_labels() {
        assert_eq!(Mechanism::Vanilla.name(), "Original");
        assert_eq!(Deployment::Host.name(), "Host");
    }
}
