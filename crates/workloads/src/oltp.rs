//! Multi-threaded database protection (paper §9.2, Figure 4).
//!
//! A MySQL-like server handles sysbench OLTP read-write transactions
//! (10 tables × 10,000 records). Two protections are layered, as in the
//! paper:
//!
//! * **per-connection stack isolation** — each connection thread's stack
//!   lives in its own TTBR domain, entered through a gate whenever the
//!   thread resumes work (LightZone TTBR and lwC variants; the
//!   watchpoint prototype "fails to isolate stacks" and protects only
//!   the storage-engine data);
//! * **MEMORY storage engine data** — `HP_PTRS` heaps are attached to
//!   all tables as PAN-guarded user pages; the engine opens and closes
//!   PAN around each access.
//!
//! Like [`crate::httpd`], this is an operation-level model over
//! primitives measured on the simulator. The thread sweep adds a TLB-
//! pressure term: more concurrent connection stacks mean more non-global
//! pages competing for the TLB, which is what flattens the TTBR curve
//! past 16 threads in the paper ("the loss … stabilizes at 5.26% to
//! 6.23% due to considerable memory footprint and limited TLB
//! coverage").

use crate::deploy::{Deployment, Mechanism};
use crate::micro::Primitives;
use lz_arch::Platform;

/// Workload shape for one run.
#[derive(Debug, Clone)]
pub struct OltpConfig {
    /// Kernel round trips per transaction (network reads/writes, fsync-
    /// free read-write mix) — MySQL is I/O-bound (§8).
    pub syscalls_per_txn: f64,
    /// Queries per transaction (sysbench oltp_read_write default mix).
    pub queries_per_txn: f64,
    /// `HP_PTRS` accesses per transaction (MEMORY engine reads/writes).
    pub heap_accesses_per_txn: f64,
    /// Application compute per transaction in cycles.
    pub base_work: f64,
    /// Per-thread extra TLB pressure: stage-2-sensitive misses added per
    /// transaction for each additional concurrent connection stack.
    pub misses_per_thread: f64,
    /// Baseline stage-2-sensitive misses per transaction.
    pub base_misses: f64,
}

impl OltpConfig {
    /// Paper-shaped defaults for one platform.
    pub fn paper(platform: Platform) -> Self {
        // A sysbench oltp_read_write transaction is ~20 queries; several
        // million cycles of server work each (the paper calls MySQL
        // I/O-bound — per-trap costs are diluted accordingly).
        let base_work = match platform {
            Platform::Carmel => 6_000_000.0,
            Platform::CortexA55 => 4_500_000.0,
        };
        OltpConfig {
            syscalls_per_txn: 30.0,
            queries_per_txn: 20.0,
            heap_accesses_per_txn: 400.0,
            base_work,
            misses_per_thread: 1.0,
            base_misses: 40.0,
        }
    }
}

/// The integer per-transaction shape the fleet benchmark's *executed*
/// tenant programs use for an OLTP-like connection: one stack-domain
/// crossing per query (20, the sysbench mix), a heavier arena working
/// set (the MEMORY-engine heap), and the I/O syscall mix scaled 30 -> 8
/// so thousands of transactions stay simulable.
pub fn fleet_shape() -> crate::FleetShape {
    let cfg = OltpConfig::paper(lz_arch::Platform::Carmel);
    crate::FleetShape { switches_per_request: cfg.queries_per_txn as u32, arena_touches: 64, syscalls_per_request: 8 }
}

/// Cycles to execute one transaction under `mechanism` with `threads`
/// concurrent connections.
pub fn txn_cycles(cfg: &OltpConfig, prims: &Primitives, mechanism: Mechanism, threads: u64) -> f64 {
    let pressure = cfg.base_misses + cfg.misses_per_thread * threads.min(64) as f64;
    match mechanism {
        Mechanism::Vanilla => cfg.base_work + cfg.syscalls_per_txn * prims.vanilla_syscall,
        Mechanism::LzPan => {
            // PAN variant: MEMORY-engine data only (stacks unprotected).
            cfg.base_work
                + cfg.syscalls_per_txn * prims.lz_syscall
                + cfg.heap_accesses_per_txn * prims.pan_switch
                + pressure * prims.stage2_extra_walk
        }
        Mechanism::LzTtbr => {
            // Stacks per query entry plus gated heap access.
            cfg.base_work
                + cfg.syscalls_per_txn * prims.lz_syscall
                + cfg.queries_per_txn * prims.ttbr_switch
                + cfg.heap_accesses_per_txn * 2.0 * prims.ttbr_switch
                + pressure * prims.stage2_extra_walk
        }
        Mechanism::Watchpoint => {
            // Data only ("fails to isolate stacks"), and batched: one
            // ioctl pair per engine scan, not per row access.
            cfg.base_work + cfg.syscalls_per_txn * prims.vanilla_syscall + 75.0 * prims.wp_switch
        }
        Mechanism::Lwc => {
            // Stack context per query plus batched data contexts.
            cfg.base_work
                + cfg.syscalls_per_txn * prims.vanilla_syscall
                + (cfg.queries_per_txn + 40.0) * prims.lwc_switch
        }
    }
}

/// Transactions/second with `threads` clients on a 4-core server:
/// scales with threads until the cores saturate.
pub fn throughput(cfg: &OltpConfig, prims: &Primitives, mechanism: Mechanism, threads: u64) -> f64 {
    let hz = match prims.platform {
        Platform::Carmel => 2.2e9,
        Platform::CortexA55 => 2.0e9,
    };
    let cores = 4.0;
    let service = txn_cycles(cfg, prims, mechanism, threads) / hz;
    let parallel = (threads as f64).min(cores);
    // I/O wait per transaction keeps sub-saturated threads busy.
    let io_wait = 3_000_000.0 / hz;
    (parallel / service).min(threads as f64 / (service + io_wait))
}

/// Relative throughput loss at a given thread count.
pub fn loss(cfg: &OltpConfig, prims: &Primitives, mechanism: Mechanism, threads: u64) -> f64 {
    let base = txn_cycles(cfg, prims, Mechanism::Vanilla, threads);
    let prot = txn_cycles(cfg, prims, mechanism, threads);
    (prot - base) / prot
}

/// One Figure 4 panel: throughput for every mechanism over a thread
/// sweep.
pub fn figure4(platform: Platform, deploy: Deployment, threads_sweep: &[u64]) -> Vec<(Mechanism, Vec<(u64, f64)>)> {
    let cfg = OltpConfig::paper(platform);
    let max_threads = threads_sweep.iter().copied().max().unwrap_or(1).clamp(1, 64) as usize;
    let prims = Primitives::measure(platform, deploy, max_threads.max(2));
    Mechanism::ALL
        .iter()
        .map(|&m| {
            let pts = threads_sweep.iter().map(|&t| (t, throughput(&cfg, &prims, m, t))).collect();
            (m, pts)
        })
        .collect()
}

/// §9.2 memory accounting: 512.9 MB baseline, 13.3% application overhead
/// (per-thread stack padding + HP_PTRS page rounding), page tables 0.2%
/// (PAN) / 9.8% (TTBR).
#[derive(Debug, Clone, Copy)]
pub struct OltpMemory {
    pub baseline_bytes: f64,
    pub app_overhead: f64,
    pub pan_page_tables: f64,
    pub ttbr_page_tables: f64,
}

/// Model the §9.2 memory numbers for a given connection count.
pub fn memory_overhead(threads: u64) -> OltpMemory {
    let baseline = 512.9 * 1024.0 * 1024.0;
    // Stack rounding to domain-aligned regions + HP_PTRS padding.
    let app = threads as f64 * 1024.0 * 1024.0 + 4096.0 * 1024.0;
    // One stage-1 tree per connection stack domain; MySQL trees are
    // deeper than Nginx's (larger address space): ~190 table pages each.
    let ttbr_tables = threads as f64 * 190.0 * 4096.0;
    let pan_tables = 256.0 * 4096.0;
    OltpMemory {
        baseline_bytes: baseline,
        app_overhead: app / baseline,
        pan_page_tables: pan_tables / baseline,
        ttbr_page_tables: ttbr_tables / baseline,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_prims() -> Primitives {
        Primitives {
            platform: Platform::Carmel,
            deploy: Deployment::Host,
            vanilla_syscall: 3815.0,
            lz_syscall: 3288.0,
            pan_switch: 23.0,
            ttbr_switch: 466.0,
            wp_switch: 7059.0,
            lwc_switch: 12800.0,
            stage2_extra_walk: 375.0,
        }
    }

    #[test]
    fn pan_near_zero_on_carmel_host() {
        // §9.2: "PAN-based … near-zero … throughput losses".
        let cfg = OltpConfig::paper(Platform::Carmel);
        let l = loss(&cfg, &fake_prims(), Mechanism::LzPan, 8);
        assert!(l.abs() < 0.02, "pan loss = {l}");
    }

    #[test]
    fn ttbr_loss_ordering() {
        let cfg = OltpConfig::paper(Platform::Carmel);
        let p = fake_prims();
        let ttbr = loss(&cfg, &p, Mechanism::LzTtbr, 8);
        let wp = loss(&cfg, &p, Mechanism::Watchpoint, 8);
        let lwc = loss(&cfg, &p, Mechanism::Lwc, 8);
        // Paper Carmel host: TTBR 3.79%, WP 8.35%, lwC 11.80%.
        assert!((0.01..0.08).contains(&ttbr), "ttbr = {ttbr}");
        assert!(ttbr < wp && wp < lwc, "ttbr={ttbr} wp={wp} lwc={lwc}");
    }

    #[test]
    fn ttbr_loss_grows_then_stabilizes_with_threads() {
        let cfg = OltpConfig::paper(Platform::Carmel);
        let p = fake_prims();
        let l4 = loss(&cfg, &p, Mechanism::LzTtbr, 4);
        let l32 = loss(&cfg, &p, Mechanism::LzTtbr, 32);
        let l64 = loss(&cfg, &p, Mechanism::LzTtbr, 64);
        assert!(l32 > l4, "TLB pressure grows: {l4} -> {l32}");
        assert!((l64 - l32) < 0.02, "stabilizes: {l32} -> {l64}");
    }

    #[test]
    fn throughput_scales_to_cores() {
        let cfg = OltpConfig::paper(Platform::Carmel);
        let p = fake_prims();
        let t1 = throughput(&cfg, &p, Mechanism::Vanilla, 1);
        let t4 = throughput(&cfg, &p, Mechanism::Vanilla, 4);
        let t16 = throughput(&cfg, &p, Mechanism::Vanilla, 16);
        let t64 = throughput(&cfg, &p, Mechanism::Vanilla, 64);
        assert!(t4 > 2.0 * t1);
        assert!(t16 >= t4, "oversubscription hides I/O waits");
        assert!(t64 <= t16 * 1.05, "saturates once cores are busy");
    }

    #[test]
    fn memory_overheads_near_paper() {
        // §9.2: app 13.3%, PAN tables 0.2%, TTBR tables 9.8%.
        let m = memory_overhead(64);
        assert!((0.05..0.25).contains(&m.app_overhead), "app = {}", m.app_overhead);
        assert!(m.pan_page_tables < 0.01, "pan = {}", m.pan_page_tables);
        assert!((0.05..0.15).contains(&m.ttbr_page_tables), "ttbr = {}", m.ttbr_page_tables);
    }
}
