//! NVM data isolation (paper §9.3, Figure 5) — run as *real programs*.
//!
//! Following Merr, unrelated persistent-memory objects are isolated to
//! shrink their exposure window: N buffers of 2 MB each, one isolation
//! domain per buffer; every operation switches into the owning domain,
//! performs a fixed-complexity substring search (~7,000–8,500 cycles),
//! and switches back out. DRAM stands in for NVM exactly as in the paper.
//!
//! Everything here executes on the simulated CPU: the searches are
//! assembled byte-scan loops, the switches are the real mechanisms
//! (PAN toggles, call gates, watchpoint ioctls, lwC switches). Buffers
//! are mapped with 2 MiB huge pages as in the paper. The
//! search count is scaled down from the paper's 5,000,000 (wall-clock
//! statistics on real hardware) because the simulator is deterministic;
//! the two-point slope cancels setup costs.

use crate::deploy::{Deployment, Mechanism};
use lightzone::api::{LzAsm, LzProgramBuilder, RW, SAN_PAN, SAN_TTBR, USER};
use lightzone::pgt::PGT_ALL;
use lightzone::LightZone;
use lz_arch::asm::Asm;
use lz_arch::Platform;
use lz_baselines::Baselines;
use lz_kernel::syscall::custom;
use lz_kernel::{Program, Sysno, VmProt};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const CODE: u64 = 0x40_0000;
const SEQ_BASE: u64 = 0x2000_0000;
/// Buffers start here, 2 MB each, contiguous.
const BUF_BASE: u64 = 0x8000_0000;
/// Buffer size: 2 MB, as in the paper.
pub const BUF_BYTES: u64 = 2 << 20;
/// Bytes scanned per search — calibrated per platform so one search
/// costs ~7,000–8,500 cycles (paper §9.3): the interpreter charges the
/// Carmel memory path more per byte, so its window is shorter.
pub const fn scan_bytes(platform: Platform) -> u64 {
    match platform {
        Platform::Carmel => 700,
        Platform::CortexA55 => 860,
    }
}

const RUN_LIMIT: u64 = 3_000_000_000;
const SEED: u64 = 0x9e37_79b9;
/// Search count: scaled down further in debug builds so `cargo test`
/// (unoptimized interpreter) stays quick; release keeps the full size.
const N_MAX: usize = if cfg!(debug_assertions) { 400 } else { 2_000 };

/// Result of one Figure 5 cell.
#[derive(Debug, Clone, Copy)]
pub struct NvmResult {
    /// Average cycles per search operation (switches included).
    pub cycles_per_op: f64,
    /// Overhead relative to the vanilla run, as a fraction.
    pub overhead: f64,
}

/// Strings per buffer: each search targets one of 64 fixed string slots
/// ("multiple 2MB-sized buffers filled with strings … a substring search
/// on a randomly selected string", §9.3), which gives the same page
/// locality as the paper's string set.
const STRINGS_PER_BUF: u64 = 64;

/// The random `(buffer index, scan address)` pair sequence.
fn search_sequence(buffers: usize) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut bytes = Vec::with_capacity(N_MAX * 16);
    let slot_bytes = BUF_BYTES / STRINGS_PER_BUF;
    for _ in 0..N_MAX {
        let b = rng.random_range(0..buffers);
        let slot = rng.random_range(0..STRINGS_PER_BUF);
        bytes.extend_from_slice(&(b as u64).to_le_bytes());
        bytes.extend_from_slice(&(BUF_BASE + b as u64 * BUF_BYTES + slot * slot_bytes).to_le_bytes());
    }
    bytes
}

/// Emit the fixed-complexity search: scan `[x19, x19+SCAN_BYTES)` for a
/// byte that never occurs (buffers are zero-filled, needle is 0xff), so
/// every search walks the full window. Clobbers x24–x26.
fn emit_search(a: &mut Asm, platform: Platform) {
    a.mov_imm64(24, scan_bytes(platform));
    a.mov_reg(25, 19);
    let found = a.label();
    let scan = a.label();
    a.bind(scan);
    a.ldrb(26, 25, 0);
    a.add_imm(25, 25, 1);
    a.cmp_imm(26, 0xff);
    a.b_eq(found);
    a.subs_imm(24, 24, 1);
    a.b_ne(scan);
    a.bind(found);
}

/// Emit the warm-up + measurement loops: the body sees the buffer index
/// in x18 and the scan address in x19. A full pass over all `N_MAX`
/// sequence entries runs first (the paper's warm-up phase — it demand-
/// faults every page the measured loop will touch, in every domain),
/// then the measured pass runs `n` entries from the same sequence.
fn emit_loop(a: &mut Asm, n: usize, mut body: impl FnMut(&mut Asm, usize)) {
    for (pass, pass_n) in [N_MAX, n].into_iter().enumerate() {
        a.mov_imm64(21, SEQ_BASE);
        a.mov_imm64(23, pass_n as u64);
        let top = a.label();
        a.bind(top);
        a.ldr(18, 21, 0);
        a.ldr(19, 21, 8);
        a.add_imm(21, 21, 16);
        body(a, pass);
        a.subs_imm(23, 23, 1);
        a.b_ne(top);
    }
    a.mov_imm64(0, 0);
    a.mov_imm64(8, Sysno::Exit.nr());
    a.svc(0);
}

/// Average cycles per search operation for one Figure 5 cell.
///
/// # Panics
///
/// Panics if `mechanism` is [`Mechanism::Watchpoint`] with more than 16
/// buffers (the prototype's hard limit).
pub fn nvm_cycles_per_op(platform: Platform, deploy: Deployment, mechanism: Mechanism, buffers: usize) -> f64 {
    assert!(buffers >= 1);
    if mechanism == Mechanism::Watchpoint {
        assert!(buffers <= 16, "watchpoint prototype supports at most 16 domains");
    }
    let run = |n: usize| match mechanism {
        Mechanism::Vanilla => run_plain(platform, deploy, buffers, n, false),
        Mechanism::Watchpoint => run_plain(platform, deploy, buffers, n, true),
        Mechanism::Lwc => run_lwc(platform, deploy, buffers, n),
        Mechanism::LzPan => run_lz(platform, deploy, buffers, n, true),
        Mechanism::LzTtbr => run_lz(platform, deploy, buffers, n, false),
    };
    (run(N_MAX) as f64 - run(N_MAX / 2) as f64) / (N_MAX / 2) as f64
}

/// Overhead of `mechanism` over vanilla for one cell.
pub fn nvm_overhead(platform: Platform, deploy: Deployment, mechanism: Mechanism, buffers: usize) -> NvmResult {
    let base = nvm_cycles_per_op(platform, deploy, Mechanism::Vanilla, buffers);
    let prot = nvm_cycles_per_op(platform, deploy, mechanism, buffers);
    NvmResult { cycles_per_op: prot, overhead: (prot - base) / base }
}

fn run_baseline_prog(platform: Platform, deploy: Deployment, prog: Program) -> u64 {
    let mut bl = match deploy {
        Deployment::Host => Baselines::new_host(platform),
        Deployment::Guest => Baselines::new_guest(platform),
    };
    let pid = bl.spawn(&prog);
    bl.enter_process(pid);
    assert_eq!(bl.run(RUN_LIMIT), lz_kernel::Event::Exited(0));
    bl.kernel.machine.cpu.cycles
}

/// Vanilla and Watchpoint variants (EL0 process under the base kernel).
fn run_plain(platform: Platform, deploy: Deployment, buffers: usize, n: usize, protect: bool) -> u64 {
    let mut a = Asm::new(CODE);
    if protect {
        a.mov_imm64(8, custom::WP_ENTER);
        a.svc(0);
        for b in 0..buffers as u64 {
            a.mov_imm64(0, BUF_BASE + b * BUF_BYTES);
            a.mov_imm64(1, BUF_BYTES);
            a.mov_imm64(8, custom::WP_PROT);
            a.svc(0);
        }
    }
    emit_loop(&mut a, n, |a, _| {
        if protect {
            a.mov_reg(0, 18);
            a.mov_imm64(8, custom::WP_SWITCH);
            a.svc(0);
        }
        emit_search(a, platform);
        if protect {
            a.mov_imm64(0, u64::MAX); // leave the domain
            a.mov_imm64(8, custom::WP_SWITCH);
            a.svc(0);
        }
    });
    let prog = Program::from_code(CODE, a.bytes())
        .with_segment(SEQ_BASE, search_sequence(buffers), VmProt::R)
        .with_huge_segment(BUF_BASE, buffers as u64 * BUF_BYTES, VmProt::RW);
    run_baseline_prog(platform, deploy, prog)
}

/// lwC variant: one context per buffer, kernel switch around each search.
fn run_lwc(platform: Platform, deploy: Deployment, buffers: usize, n: usize) -> u64 {
    let mut a = Asm::new(CODE);
    for _ in 0..=buffers {
        a.mov_imm64(8, custom::LWC_CREATE);
        a.svc(0);
    }
    emit_loop(&mut a, n, |a, _| {
        a.add_imm(0, 18, 1); // context of buffer d is d + 1
        a.mov_imm64(8, custom::LWC_SWITCH);
        a.svc(0);
        emit_search(a, platform);
        a.mov_imm64(0, 0); // back to the root context
        a.mov_imm64(8, custom::LWC_SWITCH);
        a.svc(0);
    });
    let prog = Program::from_code(CODE, a.bytes())
        .with_segment(SEQ_BASE, search_sequence(buffers), VmProt::R)
        .with_huge_segment(BUF_BASE, buffers as u64 * BUF_BYTES, VmProt::RW);
    run_baseline_prog(platform, deploy, prog)
}

/// LightZone variants: PAN (all buffers in the single protected domain)
/// or TTBR (one table per buffer; per-buffer gates in, gate `buffers`
/// back out to the default table — Listing 1 style).
fn run_lz(platform: Platform, deploy: Deployment, buffers: usize, n: usize, pan: bool) -> u64 {
    let mut b = LzProgramBuilder::new(CODE);
    b.with_segment(SEQ_BASE, search_sequence(buffers), VmProt::R);
    b.with_huge_segment(BUF_BASE, buffers as u64 * BUF_BYTES, VmProt::RW);
    // Two call sites (warm-up pass, measured pass) need disjoint gate
    // sets: gate ENTRY values are per-site (§6.2). Pass p uses gates
    // [p*(buffers+1), p*(buffers+1)+buffers]; the last gate of each set
    // exits to the default table.
    let set = (buffers + 1) as u64;
    if pan {
        b.asm.lz_enter(false, SAN_PAN);
        b.asm.lz_prot_imm(BUF_BASE, buffers as u64 * BUF_BYTES, PGT_ALL, RW | USER);
    } else {
        b.asm.lz_enter(true, SAN_TTBR);
        for d in 0..buffers as u64 {
            b.asm.lz_alloc(); // deterministic: returns d + 1
            b.asm.lz_prot_imm(BUF_BASE + d * BUF_BYTES, BUF_BYTES, d + 1, RW);
            for pass in 0..2u64 {
                b.asm.lz_map_gate_pgt_imm(d + 1, pass * set + d);
            }
        }
        for pass in 0..2u64 {
            b.asm.lz_map_gate_pgt_imm(0, pass * set + buffers as u64);
        }
    }
    let gate_base = lightzone::gate::layout::GATE_BASE;
    let stride = lightzone::gate::layout::GATE_STRIDE;
    let stride_shift = stride.trailing_zeros() as u8;
    let mut enter_entries = [0u64; 2];
    let mut exit_entries = [0u64; 2];
    {
        let a = &mut b.asm;
        emit_loop(a, n, |a, pass| {
            if pan {
                a.set_pan(0);
                emit_search(a, platform);
                a.set_pan(1);
            } else {
                // Gate in: x17 = GATE_BASE + (pass_base + index) * stride.
                a.mov_imm64(17, gate_base + pass as u64 * set * stride);
                a.lsl_imm(16, 18, stride_shift);
                a.add_reg(17, 17, 16);
                a.blr(17);
                enter_entries[pass] = a.here();
                emit_search(a, platform);
                // Gate out through this pass's exit gate.
                a.mov_imm64(17, gate_base + (pass as u64 * set + buffers as u64) * stride);
                a.blr(17);
                exit_entries[pass] = a.here();
            }
        });
    }
    if !pan {
        for pass in 0..2u64 {
            for g in 0..buffers as u64 {
                b.register_gate_entry((pass * set + g) as u16, enter_entries[pass as usize]);
            }
            b.register_gate_entry((pass * set + buffers as u64) as u16, exit_entries[pass as usize]);
        }
    }
    let prog = b.build();
    let mut lz = match deploy {
        Deployment::Host => LightZone::new_host(platform),
        Deployment::Guest => LightZone::new_guest(platform),
    };
    let pid = lz.spawn(&prog);
    lz.enter_process(pid);
    assert_eq!(lz.run(RUN_LIMIT), lz_kernel::Event::Exited(0));
    lz.kernel.machine.cpu.cycles
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vanilla_search_in_paper_cycle_band() {
        // §9.3: "each search is about 7,000-8,500 cycles".
        for p in Platform::ALL {
            let c = nvm_cycles_per_op(p, Deployment::Host, Mechanism::Vanilla, 2);
            assert!((6_000.0..9_500.0).contains(&c), "{p:?} search = {c}");
        }
    }

    #[test]
    fn pan_overhead_small() {
        let r = nvm_overhead(Platform::CortexA55, Deployment::Host, Mechanism::LzPan, 2);
        assert!(r.overhead < 0.02, "A55 PAN overhead = {}", r.overhead);
    }

    #[test]
    fn ttbr_overhead_in_band_cortex() {
        // Paper: <3.8% on Cortex.
        let r = nvm_overhead(Platform::CortexA55, Deployment::Host, Mechanism::LzTtbr, 4);
        assert!((0.005..0.06).contains(&r.overhead), "A55 TTBR overhead = {}", r.overhead);
    }

    #[test]
    fn watchpoint_worse_than_ttbr() {
        let wp = nvm_overhead(Platform::CortexA55, Deployment::Host, Mechanism::Watchpoint, 4);
        let ttbr = nvm_overhead(Platform::CortexA55, Deployment::Host, Mechanism::LzTtbr, 4);
        assert!(wp.overhead > 3.0 * ttbr.overhead, "wp {} vs ttbr {}", wp.overhead, ttbr.overhead);
    }
}
