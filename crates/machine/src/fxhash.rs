//! A fast, deterministic hasher for the simulator's hot maps.
//!
//! The interpreter performs several hash-map lookups per simulated
//! instruction (TLB level, decoded-block cache, physical frames, system
//! registers). `SipHash` — the std default — is DoS-resistant but costs
//! more than the lookups themselves for these small fixed-width keys.
//! None of these maps are attacker-keyed (keys come from the simulation,
//! whose worst case is a slow test, not a security issue), so a
//! multiply-rotate hash in the `FxHash` family is the right trade.
//!
//! Determinism is a feature here: `RandomState` seeds differ per map, so
//! switching to a fixed hasher also removes the last per-process
//! randomness from the machine — iteration order never leaks into
//! results anyway (asserted by the determinism regression tests), but a
//! fixed hasher makes that structural rather than incidental.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate hasher over word-sized chunks.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = FxHashMap::default();
        let mut b = FxHashMap::default();
        for i in 0..100u64 {
            a.insert(i, i * 3);
            b.insert(i, i * 3);
        }
        assert!(a.iter().zip(b.iter()).all(|(x, y)| x == y), "iteration order must match");
    }

    #[test]
    fn distributes_sequential_keys() {
        // Page numbers are sequential; the hash must not collapse them.
        let mut seen = std::collections::HashSet::new();
        for vpn in 0..10_000u64 {
            let mut h = FxHasher::default();
            h.write_u64(vpn);
            seen.insert(h.finish() >> 48);
        }
        assert!(seen.len() > 1000, "high bits must vary: {}", seen.len());
    }
}
