//! The CPU interpreter and the [`Machine`] façade.
//!
//! The interpreter executes EL0/EL1 code — everything an in-process
//! attacker can influence. EL2 software (host kernel, hypervisor,
//! LightZone Lowvisor) is *modelled*: when an exception routes to EL2 the
//! interpreter stops with an [`Exit`] and the Rust-level kernel code takes
//! over, mutating machine state directly and charging cycles for each
//! architectural operation.
//!
//! Exceptions that route to EL1 are either vectored (interpreted EL1
//! software, e.g. the LightZone API-library stub that forwards traps via
//! `hvc`) or also exit ([`Machine::set_el1_external`]) when the current
//! EL1 software is a modelled guest kernel.

use crate::fxhash::FxHashMap;
use crate::mem::PhysMem;
use crate::metrics::{EventKind, Journal, MachineMetrics, Section};
use crate::tlb::Tlb;
use crate::trace::Trace;
use crate::walk::{self, Access, AccessCtx, Fault, FaultKind, Stage, WalkConfig};
use lz_arch::esr::{self, ExceptionClass};
use lz_arch::insn::{Barrier, Insn, LogicOp, MemSize};
use lz_arch::pstate::{ExceptionLevel, Nzcv, PState};
use lz_arch::sysreg::{hcr, sctlr, SysReg};
use lz_arch::{CycleModel, Platform};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// Process-wide default for [`Machine::set_fetch_cache`], initialised from
/// the `LZ_FETCH_CACHE` environment variable (`0`/`off` disables). Lets
/// harnesses (`repro`, CI) flip the fast path for whole runs without
/// threading a flag through every constructor.
fn default_flag() -> &'static AtomicBool {
    static FLAG: OnceLock<AtomicBool> = OnceLock::new();
    FLAG.get_or_init(|| {
        let on = !matches!(std::env::var("LZ_FETCH_CACHE").as_deref(), Ok("0") | Ok("off") | Ok("false"));
        AtomicBool::new(on)
    })
}

/// The default decoded-block cache setting for new [`Machine`]s.
pub fn default_fetch_cache() -> bool {
    default_flag().load(Ordering::Relaxed)
}

/// Override the default decoded-block cache setting for new [`Machine`]s
/// (tests and benchmarks; existing machines are unaffected).
pub fn set_default_fetch_cache(on: bool) {
    default_flag().store(on, Ordering::Relaxed);
}

/// Process-wide default for [`Machine::set_fastpath`], initialised from
/// the `LZ_FASTPATH` environment variable (`0`/`off` disables). Governs
/// the data-side acceleration layer: micro-DTLB, stage-1/stage-2 walk
/// cache, and superblock execution.
fn fastpath_flag() -> &'static AtomicBool {
    static FLAG: OnceLock<AtomicBool> = OnceLock::new();
    FLAG.get_or_init(|| {
        let on = !matches!(std::env::var("LZ_FASTPATH").as_deref(), Ok("0") | Ok("off") | Ok("false"));
        AtomicBool::new(on)
    })
}

/// The default data-side fast path setting for new [`Machine`]s.
pub fn default_fastpath() -> bool {
    fastpath_flag().load(Ordering::Relaxed)
}

/// Override the default data-side fast path setting for new [`Machine`]s
/// (tests and benchmarks; existing machines are unaffected).
pub fn set_default_fastpath(on: bool) {
    fastpath_flag().store(on, Ordering::Relaxed);
}

/// Process-wide default for [`Machine::set_jit`], initialised from the
/// `LZ_JIT` environment variable (`0`/`off` disables). Governs the
/// template-JIT superblock engine (see [`crate::jit`]); it layers on top
/// of the fetch cache and the data-side fast path, so it only ever
/// engages when both of those are on too.
fn jit_flag() -> &'static AtomicBool {
    static FLAG: OnceLock<AtomicBool> = OnceLock::new();
    FLAG.get_or_init(|| {
        let on = !matches!(std::env::var("LZ_JIT").as_deref(), Ok("0") | Ok("off") | Ok("false"));
        AtomicBool::new(on)
    })
}

/// The default template-JIT setting for new [`Machine`]s.
pub fn default_jit() -> bool {
    jit_flag().load(Ordering::Relaxed)
}

/// Override the default template-JIT setting for new [`Machine`]s
/// (tests and benchmarks; existing machines are unaffected).
pub fn set_default_jit(on: bool) {
    jit_flag().store(on, Ordering::Relaxed);
}

/// Process-wide default for [`Machine::set_parallel`], initialised from
/// the `LZ_PARALLEL` environment variable (`0`/`off` disables). Governs
/// the epoch execution backend: `true` runs concurrent cores of an
/// epoch on real host threads, `false` replays the identical epoch
/// schedule sequentially in core order (the deterministic-replay
/// verification mode). Both backends commit at the same barriers in the
/// same order, so every modelled quantity — cycles, journals, counters
/// — is byte-identical either way (CI runs both and compares).
fn parallel_flag() -> &'static AtomicBool {
    static FLAG: OnceLock<AtomicBool> = OnceLock::new();
    FLAG.get_or_init(|| {
        let on = !matches!(std::env::var("LZ_PARALLEL").as_deref(), Ok("0") | Ok("off") | Ok("false"));
        AtomicBool::new(on)
    })
}

/// The default epoch-parallelism setting for new [`Machine`]s.
pub fn default_parallel() -> bool {
    parallel_flag().load(Ordering::Relaxed)
}

/// Override the default epoch-parallelism setting for new [`Machine`]s
/// (tests and benchmarks; existing machines are unaffected).
pub fn set_default_parallel(on: bool) {
    parallel_flag().store(on, Ordering::Relaxed);
}

/// Upper bound on instructions per superblock. Bounds the per-block
/// scratch buffer; the effective bound is `min(SUPERBLOCK_MAX, budget)`
/// so scheduler quanta are never overrun. Compiled JIT blocks inherit
/// this bound (they are lowered from extracted superblocks) and re-check
/// it against the live budget at entry — see `Machine::step_block`.
pub(crate) const SUPERBLOCK_MAX: u64 = 64;

/// Why the interpreter stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exit {
    /// An exception routed to EL2. `ESR_EL2`, `FAR_EL2`, `HPFAR_EL2`,
    /// `ELR_EL2`, and `SPSR_EL2` hold the details.
    El2(ExceptionClass),
    /// An exception routed to EL1 while EL1 software is externally
    /// modelled. `ESR_EL1`, `FAR_EL1`, `ELR_EL1`, `SPSR_EL1` hold the
    /// details.
    El1(ExceptionClass),
    /// The instruction budget given to [`Machine::run`] was exhausted.
    Limit,
    /// A host panic inside this core's epoch shell was caught at the
    /// shell boundary ([`Machine::run_epoch`]). The shell's state up to
    /// the panic point committed normally; the layer owning the running
    /// VE converts this into a typed [`crate::chaos::LzFault::HostPanic`]
    /// kill.
    HostPanic,
}

/// A hardware watchpoint (DBGWVR/DBGWCR pair, simplified).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Watchpoint {
    pub addr: u64,
    pub len: u64,
    pub on_read: bool,
    pub on_write: bool,
}

/// Architectural CPU state.
#[derive(Debug)]
pub struct Cpu {
    /// General-purpose registers x0–x30.
    pub x: [u64; 31],
    /// Stack pointers.
    pub sp_el0: u64,
    pub sp_el1: u64,
    /// Program counter.
    pub pc: u64,
    /// Process state.
    pub pstate: PState,
    sysregs: FxHashMap<SysReg, u64>,
    /// Cycle counter.
    pub cycles: u64,
    /// Retired-instruction counter.
    pub insns: u64,
    /// Watchpoint register pairs (the Watchpoint baseline uses all 4).
    pub watchpoints: [Option<Watchpoint>; 4],
    /// Master enable for watchpoint matching on EL0 data accesses.
    pub watchpoints_enabled: bool,
}

impl Cpu {
    pub(crate) fn new() -> Self {
        Cpu {
            x: [0; 31],
            sp_el0: 0,
            sp_el1: 0,
            pc: 0,
            pstate: PState::reset(),
            sysregs: FxHashMap::default(),
            cycles: 0,
            insns: 0,
            watchpoints: [None; 4],
            watchpoints_enabled: false,
        }
    }

    /// A fresh secondary-core CPU booted with this core's system
    /// registers (the modelled firmware programs every core alike).
    pub(crate) fn fork_boot_state(&self) -> Cpu {
        let mut cpu = Cpu::new();
        cpu.sysregs = self.sysregs.clone();
        cpu
    }

    /// Read register `i` as an operand (31 = xzr = 0).
    pub fn reg(&self, i: u8) -> u64 {
        if i == 31 {
            0
        } else {
            self.x[i as usize]
        }
    }

    /// Write register `i` (writes to 31 are discarded).
    pub fn set_reg(&mut self, i: u8, v: u64) {
        if i != 31 {
            self.x[i as usize] = v;
        }
    }

    /// Shared add/sub datapath with optional NZCV update — single source
    /// of truth for the interpreter (`AddImm`/`AddReg`) and the JIT's
    /// arithmetic templates, so their flag math cannot drift apart.
    pub(crate) fn arith(&mut self, rd: u8, a: u64, b: u64, sub: bool, set_flags: bool) {
        let (r, c, v) = if sub {
            let r = a.wrapping_sub(b);
            (r, a >= b, ((a ^ b) & (a ^ r)) >> 63 == 1)
        } else {
            let r = a.wrapping_add(b);
            (r, r < a, ((!(a ^ b)) & (a ^ r)) >> 63 == 1)
        };
        if set_flags {
            self.pstate.nzcv = Nzcv { n: r >> 63 == 1, z: r == 0, c, v };
        }
        self.set_reg(rd, r);
    }

    /// Base-register read for loads/stores (31 = SP).
    fn base_reg(&self, i: u8) -> u64 {
        if i == 31 {
            match self.pstate.el {
                ExceptionLevel::El0 => self.sp_el0,
                _ => self.sp_el1,
            }
        } else {
            self.x[i as usize]
        }
    }
}

/// The complete simulated machine: one CPU, physical memory, a TLB, and
/// the platform cycle model.
#[derive(Debug)]
pub struct Machine {
    pub mem: PhysMem,
    pub tlb: Tlb,
    pub cpu: Cpu,
    pub model: CycleModel,
    /// Retired-instruction trace (off by default).
    pub trace: Trace,
    /// Typed event journal (recording follows the `LZ_METRICS` default).
    pub journal: Journal,
    /// Machine-level observability counters (always on, host-side only).
    pub metrics: MachineMetrics,
    /// When set, exceptions targeting EL1 exit the interpreter instead of
    /// vectoring through `VBAR_EL1` (the EL1 software is a modelled guest
    /// kernel rather than interpreted code).
    pub(crate) el1_external: bool,
    /// Decoded-block fetch cache toggle. Skips host-side walk + decode
    /// work only; modelled cycles are bit-identical either way.
    pub(crate) fetch_cache: bool,
    /// Template-JIT toggle. Machine-wide (like `fetch_cache`): compiled
    /// blocks themselves live per-core inside each TLB's icache. Only
    /// engages when the fetch cache and the fast path are also on;
    /// modelled cycles and journals are bit-identical either way.
    pub(crate) jit: bool,
    /// Epoch execution backend: host threads (`true`) or sequential
    /// deterministic replay (`false`). Host-side only; see
    /// [`Machine::run_epoch`].
    pub(crate) parallel: bool,
    /// Set while this machine is a per-core epoch shell: carries the
    /// core identity and the cross-core effects deferred to the barrier.
    pub(crate) epoch: Option<crate::smp::EpochCtx>,
    /// Generation of the translation-regime system registers; bumped by
    /// [`Machine::set_sysreg`] so [`Machine::walk_config`] can memoise.
    pub(crate) cfg_gen: u64,
    pub(crate) cfg_memo: Cell<Option<(u64, WalkConfig)>>,
    /// Reusable scratch buffer for superblock extraction (avoids a heap
    /// allocation per block).
    pub(crate) sb_buf: Vec<(u32, Insn)>,
    /// SMP state: parked cores and cross-core traffic counters. A
    /// default machine is single-core; see [`crate::smp`].
    pub(crate) smp: crate::smp::SmpState,
    /// Deterministic fault-injection engine (inert unless a
    /// [`crate::chaos::FaultPlan`] is installed; see [`crate::chaos`]).
    pub chaos: crate::chaos::ChaosState,
    /// Host-panic test hook: when set, [`Machine::run`] panics once the
    /// retired-instruction counter reaches this value. Exercises the
    /// epoch-shell `catch_unwind` containment (see [`crate::smp`]);
    /// `None` (the default) costs one branch per run-loop iteration.
    pub(crate) panic_after: Option<u64>,
}

impl Machine {
    /// Create a machine for the given platform.
    pub fn new(platform: Platform) -> Self {
        let model = platform.model();
        let mut tlb = Tlb::with_l1(model.tlb_l1_entries, model.tlb_entries);
        tlb.set_fastpath(default_fastpath());
        Machine {
            mem: PhysMem::new(),
            tlb,
            cpu: Cpu::new(),
            model,
            trace: Trace::new(256),
            journal: Journal::default(),
            metrics: MachineMetrics::default(),
            el1_external: false,
            fetch_cache: default_fetch_cache(),
            jit: default_jit(),
            parallel: default_parallel(),
            epoch: None,
            cfg_gen: 0,
            cfg_memo: Cell::new(None),
            sb_buf: Vec::with_capacity(SUPERBLOCK_MAX as usize),
            smp: crate::smp::SmpState::default(),
            chaos: crate::chaos::ChaosState::default(),
            panic_after: None,
        }
    }

    /// Arm (or disarm) the host-panic test hook: the next [`Machine::run`]
    /// panics once `cpu.insns` reaches `threshold`. Deterministic — the
    /// check sits at run-loop iteration boundaries, so the parallel and
    /// replay epoch backends panic at the identical retired-instruction
    /// count. Test-only by construction; production code never arms it.
    pub fn set_panic_after(&mut self, threshold: Option<u64>) {
        self.panic_after = threshold;
    }

    /// Invalidate the translation-regime memo (a different core's
    /// system registers just became live).
    pub(crate) fn regime_changed(&mut self) {
        self.cfg_gen += 1;
        self.cfg_memo.set(None);
    }

    /// Enable or disable the decoded-block fetch cache (tests run both
    /// paths; see `tests/differential.rs` at the workspace root).
    pub fn set_fetch_cache(&mut self, on: bool) {
        self.fetch_cache = on;
        self.cfg_memo.set(None);
    }

    /// Whether the decoded-block fetch cache is enabled.
    pub fn fetch_cache(&self) -> bool {
        self.fetch_cache
    }

    /// Enable or disable the data-side fast path (micro-DTLB, walk
    /// cache, superblock execution) on every core. Host-side only: the
    /// differential suite proves cycles, exits, and journals identical
    /// with it on or off.
    pub fn set_fastpath(&mut self, on: bool) {
        self.tlb.set_fastpath(on);
        for core in self.smp.cores.iter_mut().flatten() {
            core.tlb.set_fastpath(on);
        }
    }

    /// Whether the data-side fast path is enabled (active core).
    pub fn fastpath(&self) -> bool {
        self.tlb.fastpath()
    }

    /// Enable or disable the template-JIT superblock engine. Host-side
    /// only — compiled blocks replay exactly the cycles, counters, and
    /// journal the interpreter superblock would produce (differential
    /// suite). Disabling drops nothing: stale compiled blocks are simply
    /// never served, and the icache's invalidation scopes already drop
    /// them alongside their decoded pages.
    pub fn set_jit(&mut self, on: bool) {
        self.jit = on;
    }

    /// Whether the template-JIT is enabled (it engages only when the
    /// fetch cache and the data-side fast path are also on).
    pub fn jit(&self) -> bool {
        self.jit
    }

    /// Choose the epoch execution backend: `true` (the `LZ_PARALLEL`
    /// default) runs concurrent cores of an epoch on real host threads,
    /// `false` replays the identical epoch schedule sequentially in core
    /// order — the deterministic-replay verification mode. Host-side
    /// only: commit order is the same either way, so cycles, journals,
    /// and every counter are byte-identical.
    pub fn set_parallel(&mut self, on: bool) {
        self.parallel = on;
    }

    /// Whether epoch execution uses host threads.
    pub fn parallel(&self) -> bool {
        self.parallel
    }

    /// Enable or disable journal recording for this machine, overriding
    /// the process-wide `LZ_METRICS` default. Counters are unaffected —
    /// they are always on.
    pub fn set_metrics(&mut self, on: bool) {
        self.journal.set_enabled(on);
    }

    /// Record a journal event stamped with the current cycle counter.
    pub fn record_event(&mut self, kind: EventKind) {
        let cycles = self.cpu.cycles;
        self.journal.record(cycles, kind);
    }

    /// Consult the fault-injection engine at `site` and journal a
    /// `Fault` event when it fires. Returns the deterministic payload
    /// draw on fire, `None` otherwise (always `None` without a plan).
    pub fn chaos_fire(&mut self, site: crate::chaos::FaultSite) -> Option<u64> {
        let draw = self.chaos.fire(site)?;
        let seq = self.chaos.seq;
        self.record_event(EventKind::Fault { site: site.name(), seq });
        Some(draw)
    }

    /// Snapshot the machine-owned metrics as report sections: TLB,
    /// decoded-block icache, walk/fault counters, gate switches, traps.
    pub fn metrics_sections(&self) -> Vec<Section> {
        let (hits, misses) = self.tlb.stats();
        let inval = self.tlb.inval_stats();
        let tlb = Section::new("tlb")
            .with("hits", hits)
            .with("misses", misses)
            .with("l2_hits", self.tlb.l2_hit_count())
            .with("entries", self.tlb.len() as u64)
            .with("invalidate_all", inval.all)
            .with("invalidate_vmid", inval.vmid)
            .with("invalidate_asid", inval.asid)
            .with("invalidate_va", inval.va);

        let (ihits, imisses) = self.tlb.icache().stats();
        let icache = Section::new("icache")
            .with("hits", ihits)
            .with("misses", imisses)
            .with("entries", self.tlb.icache().len() as u64)
            .with("evictions", self.tlb.icache().eviction_count())
            .with("invalidations", self.tlb.icache().invalidation_count());

        let w = self.tlb.walk_stats();
        let fast = self.tlb.fast_stats();
        let walk = Section::new("walk")
            .with("s1_walks", w.s1_walks)
            .with("s2_walks", w.s2_walks)
            .with("s1_translation_faults", w.s1_translation_faults)
            .with("s1_permission_faults", w.s1_permission_faults)
            .with("s1_access_flag_faults", w.s1_access_flag_faults)
            .with("s2_translation_faults", w.s2_translation_faults)
            .with("s2_permission_faults", w.s2_permission_faults)
            .with("s2_access_flag_faults", w.s2_access_flag_faults)
            .with("dtlb_hits", fast.dtlb_hits)
            .with("superblock_exits", fast.superblock_exits)
            .with("walkcache_hits", fast.walkcache_hits)
            .with("jit_blocks", fast.jit_blocks)
            .with("jit_compiled", fast.jit_compiled);

        let mut gate = Section::new("gate").with("switches", self.metrics.domain_switches);
        gate.push("distinct_domains", self.metrics.switches_by_asid.len() as u64);
        for (asid, n) in &self.metrics.switches_by_asid {
            gate.push(format!("asid_{asid}"), *n);
        }

        let mut traps = Section::new("traps");
        let total: u64 = self.metrics.traps.values().sum();
        traps.push("total", total);
        for (class, n) in &self.metrics.traps {
            traps.push(class.clone(), *n);
        }

        let cpu = Section::new("cpu")
            .with("insns", self.cpu.insns)
            .with("cycles", self.cpu.cycles)
            .with("journal_events", self.journal.len() as u64)
            .with("journal_dropped", self.journal.dropped());

        let chaos = Section::new("chaos")
            .with("faults_injected", self.chaos.faults_injected)
            .with("faults_contained", self.chaos.faults_contained)
            .with("ve_kills", self.chaos.ve_kills);

        let smp = Section::new("smp")
            .with("cores", self.num_cores() as u64)
            .with("shootdowns_sent", self.smp.shootdowns_sent)
            .with("shootdowns_acked", self.smp.shootdowns_acked)
            .with("ipis_sent", self.smp.ipis_sent)
            .with("tlbi_broadcasts", self.smp.tlbi_broadcasts)
            .with("epochs", self.smp.epochs)
            .with("epoch_waits", self.smp.epoch_waits)
            .with("barrier_stalls", self.smp.barrier_stalls)
            .with("phys_merge_conflicts", self.smp.phys_merge_conflicts)
            .with("shell_panics", self.smp.shell_panics);

        let mut sections = vec![tlb, icache, walk, gate, traps, cpu, chaos, smp];
        sections.extend(self.per_core_sections());
        sections
    }

    /// Route EL1-targeted exceptions out of the interpreter (modelled
    /// guest kernel) instead of vectoring through `VBAR_EL1`.
    pub fn set_el1_external(&mut self, external: bool) {
        self.el1_external = external;
    }

    /// Whether EL1 exceptions currently exit the interpreter.
    pub fn el1_external(&self) -> bool {
        self.el1_external
    }

    /// Read a system register (no cycle charge — model-internal).
    pub fn sysreg(&self, reg: SysReg) -> u64 {
        self.cpu.sysregs.get(&reg).copied().unwrap_or(0)
    }

    /// Write a system register (no cycle charge — model-internal).
    pub fn set_sysreg(&mut self, reg: SysReg, value: u64) {
        if matches!(
            reg,
            SysReg::TTBR0_EL1 | SysReg::TTBR1_EL1 | SysReg::SCTLR_EL1 | SysReg::HCR_EL2 | SysReg::VTTBR_EL2
        ) {
            self.cfg_gen += 1;
        }
        self.cpu.sysregs.insert(reg, value);
    }

    /// Charge cycles to the CPU counter.
    pub fn charge(&mut self, cycles: u64) {
        self.cpu.cycles += cycles;
    }

    /// The cost of an `MSR` write to `reg` on this platform.
    pub fn sysreg_write_cost(&self, reg: SysReg) -> u64 {
        match reg {
            SysReg::HCR_EL2 => self.model.hcr_el2_write,
            SysReg::VTTBR_EL2 => self.model.vttbr_el2_write,
            SysReg::TTBR0_EL1 => self.model.ttbr0_el1_write,
            _ => self.model.sysreg_write,
        }
    }

    /// Write a system register *as software would*: charges the per-
    /// register `MSR` cost. Used by modelled kernel/hypervisor paths.
    pub fn write_sysreg_charged(&mut self, reg: SysReg, value: u64) {
        let cost = self.sysreg_write_cost(reg);
        self.charge(cost);
        self.set_sysreg(reg, value);
    }

    /// Read a system register as software would (charges the `MRS` cost).
    pub fn read_sysreg_charged(&mut self, reg: SysReg) -> u64 {
        self.charge(self.model.sysreg_read);
        self.sysreg(reg)
    }

    /// Enter interpreted code at `pc` with the given PSTATE, as an `ERET`
    /// from modelled EL2 software (host kernel / hypervisor / Lowvisor)
    /// would: charges the EL2 return cost.
    pub fn enter(&mut self, pstate: PState, pc: u64) {
        self.charge(self.model.exception_return_el2);
        self.cpu.pstate = pstate;
        self.cpu.pc = pc;
    }

    /// Enter interpreted code as an `ERET` from *modelled EL1 software*
    /// (a guest kernel) would: charges the EL1 return cost.
    pub fn enter_from_el1(&mut self, pstate: PState, pc: u64) {
        self.charge(self.model.exception_return_el1);
        self.cpu.pstate = pstate;
        self.cpu.pc = pc;
    }

    /// Current translation regime configuration from the live registers.
    /// Memoised against [`Machine::set_sysreg`]'s regime generation: any
    /// write to a regime register (host-side, interpreted `MSR`, or a
    /// core switch) bumps `cfg_gen` and forces a rebuild, so a stale memo
    /// is impossible — see `walk_config_memo_never_stale` in
    /// `tests/differential.rs`.
    pub fn walk_config(&self) -> WalkConfig {
        if let Some((gen, cfg)) = self.cfg_memo.get() {
            if gen == self.cfg_gen {
                return cfg;
            }
        }
        let sctlr_el1 = self.sysreg(SysReg::SCTLR_EL1);
        let hcr_el2 = self.sysreg(SysReg::HCR_EL2);
        let cfg = WalkConfig {
            ttbr0: self.sysreg(SysReg::TTBR0_EL1),
            ttbr1: self.sysreg(SysReg::TTBR1_EL1),
            s1_enabled: sctlr_el1 & sctlr::M != 0,
            wxn: sctlr_el1 & sctlr::WXN != 0,
            vttbr: if hcr_el2 & hcr::VM != 0 { Some(self.sysreg(SysReg::VTTBR_EL2)) } else { None },
        };
        self.cfg_memo.set(Some((self.cfg_gen, cfg)));
        cfg
    }

    /// Translate a VA in the current context without executing anything
    /// (used by kernels for `get_user`-style accesses and by tests).
    pub fn probe(&mut self, va: u64, access: Access, actx: &AccessCtx) -> Result<u64, Fault> {
        let cfg = self.walk_config();
        walk::translate(&self.mem, &mut self.tlb, &self.model, &cfg, va, access, actx).map(|t| t.pa)
    }

    /// Run the interpreter until an exit condition, retiring at most
    /// `limit` instructions.
    ///
    /// With both the fetch cache and the data-side fast path on,
    /// execution proceeds in superblocks: straight-line decoded runs
    /// execute without a per-instruction probe, but every instruction
    /// boundary the budget-driven loop below would observe (quantum
    /// expiry, exits, faults) is observed identically — a block never
    /// executes past the remaining budget.
    pub fn run(&mut self, limit: u64) -> Exit {
        if self.fetch_cache && self.tlb.fastpath() {
            let mut remaining = limit;
            while remaining > 0 {
                self.check_panic_hook();
                let (used, exit) = self.step_block(remaining);
                if let Some(exit) = exit {
                    return exit;
                }
                remaining = remaining.saturating_sub(used.max(1));
            }
            return Exit::Limit;
        }
        for _ in 0..limit {
            self.check_panic_hook();
            if let Some(exit) = self.step() {
                return exit;
            }
        }
        Exit::Limit
    }

    /// Fire the armed host-panic test hook (see [`Machine::set_panic_after`]).
    #[inline]
    fn check_panic_hook(&self) {
        if let Some(n) = self.panic_after {
            if self.cpu.insns >= n {
                panic!("injected host panic for containment testing (insns={})", self.cpu.insns);
            }
        }
    }

    /// Execute one instruction. Returns `Some(exit)` when control leaves
    /// the interpreter.
    pub fn step(&mut self) -> Option<Exit> {
        debug_assert!(self.cpu.pstate.el != ExceptionLevel::El2, "EL2 code is modelled, not interpreted");
        let pc = self.cpu.pc;
        let cfg = self.walk_config();
        let fetch_ctx = AccessCtx { el: self.cpu.pstate.el, pan: false, unpriv: false };
        match walk::fetch(&self.mem, &mut self.tlb, &self.model, &cfg, pc, &fetch_ctx, self.fetch_cache) {
            Ok(f) => {
                // Fetch charges only the translation cost: sequential
                // i-fetch bandwidth is covered by `insn_base`.
                self.charge(f.cost);
                self.cpu.insns += 1;
                self.charge(self.model.insn_base);
                self.trace.record(pc, f.word, self.cpu.pstate.el);
                self.execute(f.insn, f.word)
            }
            Err((fault, cost)) => {
                self.charge(cost);
                self.fault_exception(fault, true)
            }
        }
    }

    /// Execute up to `budget` instructions as one superblock: a
    /// straight-line decoded run served by the armed fetch-cache entry
    /// for the current PC, executed without per-instruction probes.
    ///
    /// Returns `(attempts, exit)` where `attempts` counts run-loop
    /// iterations consumed — one per retired instruction, or one for a
    /// faulting fetch attempt on the fallback path — exactly matching
    /// what `budget` iterations of `step()` would consume.
    ///
    /// Equivalence to stepping is maintained by revalidating, between
    /// instructions, everything the per-step fast probe checks:
    ///
    /// * the TLB generation (a load/store may have inserted or promoted
    ///   an entry, an interpreted TLBI may have invalidated — any change
    ///   ends the block);
    /// * the code frame's content version via the `write_gen` shortcut
    ///   (self-modifying stores end the block before the next fetch);
    /// * the PC (a data fault vectored to interpreted EL1, or any control
    ///   transfer by the block's final instruction, ends the block).
    ///
    /// Only "chainable" instructions (see `icache`) may appear mid-block,
    /// so EL, PSTATE.PAN and the regime registers cannot change under a
    /// running block.
    fn step_block(&mut self, budget: u64) -> (u64, Option<Exit>) {
        debug_assert!(self.cpu.pstate.el != ExceptionLevel::El2, "EL2 code is modelled, not interpreted");
        let pc = self.cpu.pc;
        let cfg = self.walk_config();
        if !(cfg.s1_enabled || cfg.vttbr.is_some()) {
            return (1, self.step());
        }
        let el = self.cpu.pstate.el;
        if self.jit {
            if let Some((block, pa_page, frame_version)) =
                self.tlb.jit_block(&self.mem, cfg.vmid(), cfg.asid(), el, pc, cfg.s1_enabled, cfg.wxn)
            {
                // A compiled block charges its ALU runs in batches, so it
                // must never be entered with fewer budgeted instructions
                // than it retires: re-check the quantum here rather than
                // at extraction time (the interpreter path's `max` clamp)
                // and fall back to the clamped interpreter superblock
                // when the quantum is nearly spent.
                if u64::from(block.total) <= budget {
                    let (used, exit) = self.step_jit(&block, pc, pa_page, frame_version);
                    debug_assert!(used <= budget, "JIT block overran its quantum budget");
                    return (used, exit);
                }
            }
        }
        let max = budget.min(SUPERBLOCK_MAX) as usize;
        let mut buf = std::mem::take(&mut self.sb_buf);
        let got =
            self.tlb.superblock(&self.mem, cfg.vmid(), cfg.asid(), el, pc, cfg.s1_enabled, cfg.wxn, max, &mut buf);
        let Some((pa_page, frame_version)) = got else {
            self.sb_buf = buf;
            return (1, self.step());
        };
        // Lower this superblock for future entries — but only when its
        // boundary is natural (terminal, empty slot, page end), not an
        // artifact of a nearly-spent quantum: compiled blocks must have
        // budget-independent shape.
        if self.jit && (buf.len() < max || max == SUPERBLOCK_MAX as usize) {
            if let Some(block) = crate::jit::lower(pc, &buf, self.model.insn_base) {
                self.tlb.store_jit_block(cfg.vmid(), cfg.asid(), el, pc, block);
            }
        }
        let gen0 = self.tlb.generation();
        let mut checked_wg = self.mem.write_gen();
        let mut used = 0u64;
        let mut exit = None;
        for (k, &(word, insn)) in buf.iter().enumerate() {
            let pc_k = pc + 4 * k as u64;
            if k > 0 {
                if self.tlb.generation() != gen0 {
                    break;
                }
                let wg = self.mem.write_gen();
                if wg != checked_wg {
                    if self.mem.frame_version(pa_page) != Some(frame_version) {
                        break;
                    }
                    checked_wg = wg;
                }
            }
            self.tlb.count_superblock_insn();
            used += 1;
            self.cpu.insns += 1;
            self.charge(self.model.insn_base);
            self.trace.record(pc_k, word, el);
            exit = self.execute(insn, word);
            if exit.is_some() {
                break;
            }
            if self.cpu.pc != pc_k + 4 {
                break;
            }
        }
        self.tlb.count_superblock_exit();
        self.sb_buf = buf;
        (used, exit)
    }

    /// Execute a compiled superblock (see [`crate::jit`]).
    ///
    /// Equivalence to the interpreter superblock: ALU-template runs
    /// cannot touch the TLB, memory, the PC, or the journal, so the
    /// per-instruction revalidation `step_block` performs is a provable
    /// no-op inside a run and is instead performed once per segment
    /// boundary — which observes exactly the states the interpreter
    /// would, because only `Slow` segments can perturb them. Cycle,
    /// instruction, and hit counters are charged in per-run batches that
    /// sum to the interpreter's per-instruction totals, and no
    /// cycle-stamped event can be emitted between the instructions of a
    /// run. `Slow` segments run the interpreter's own bookkeeping
    /// verbatim.
    fn step_jit(
        &mut self,
        block: &crate::jit::CompiledBlock,
        pc: u64,
        pa_page: u64,
        frame_version: u64,
    ) -> (u64, Option<Exit>) {
        use crate::jit::Segment;
        self.tlb.count_jit_block();
        let el = self.cpu.pstate.el;
        let gen0 = self.tlb.generation();
        let mut checked_wg = self.mem.write_gen();
        let mut used = 0u64;
        let mut exit = None;
        let mut pc_k = pc;
        for (si, seg) in block.segs.iter().enumerate() {
            if si > 0 {
                if self.tlb.generation() != gen0 {
                    break;
                }
                let wg = self.mem.write_gen();
                if wg != checked_wg {
                    if self.mem.frame_version(pa_page) != Some(frame_version) {
                        break;
                    }
                    checked_wg = wg;
                }
            }
            match seg {
                Segment::Alu { ops, cycles } => {
                    let n = ops.len() as u64;
                    self.tlb.count_superblock_insns(n);
                    self.cpu.insns += n;
                    self.cpu.cycles += cycles;
                    used += n;
                    if self.trace.enabled() {
                        for op in ops.iter() {
                            self.trace.record(pc_k, op.word, el);
                            pc_k += 4;
                        }
                    } else {
                        pc_k += 4 * n;
                    }
                    let cpu = &mut self.cpu;
                    for op in ops.iter() {
                        op.exec(cpu);
                    }
                    cpu.pc = pc_k;
                }
                Segment::Slow { word, insn } => {
                    self.tlb.count_superblock_insn();
                    used += 1;
                    self.cpu.insns += 1;
                    self.charge(self.model.insn_base);
                    self.trace.record(pc_k, *word, el);
                    exit = self.execute(*insn, *word);
                    if exit.is_some() {
                        break;
                    }
                    pc_k += 4;
                    if self.cpu.pc != pc_k {
                        break;
                    }
                }
            }
        }
        self.tlb.count_superblock_exit();
        (used, exit)
    }

    fn execute(&mut self, insn: Insn, word: u32) -> Option<Exit> {
        let next_pc = self.cpu.pc + 4;
        match insn {
            Insn::Movz { rd, imm16, hw } => {
                self.cpu.set_reg(rd, (imm16 as u64) << (16 * hw));
                self.cpu.pc = next_pc;
            }
            Insn::Movn { rd, imm16, hw } => {
                self.cpu.set_reg(rd, !((imm16 as u64) << (16 * hw)));
                self.cpu.pc = next_pc;
            }
            Insn::Movk { rd, imm16, hw } => {
                let old = self.cpu.reg(rd);
                let mask = 0xffffu64 << (16 * hw);
                self.cpu.set_reg(rd, (old & !mask) | ((imm16 as u64) << (16 * hw)));
                self.cpu.pc = next_pc;
            }
            Insn::AddImm { rd, rn, imm12, shift12, sub, set_flags } => {
                let a = self.cpu.reg(rn);
                let b = (imm12 as u64) << if shift12 { 12 } else { 0 };
                self.cpu.arith(rd, a, b, sub, set_flags);
                self.cpu.pc = next_pc;
            }
            Insn::AddReg { rd, rn, rm, shift, sub, set_flags } => {
                let a = self.cpu.reg(rn);
                let b = self.cpu.reg(rm) << shift;
                self.cpu.arith(rd, a, b, sub, set_flags);
                self.cpu.pc = next_pc;
            }
            Insn::LogicReg { rd, rn, rm, shift, op } => {
                let a = self.cpu.reg(rn);
                let b = self.cpu.reg(rm) << shift;
                let r = match op {
                    LogicOp::And | LogicOp::Ands => a & b,
                    LogicOp::Orr => a | b,
                    LogicOp::Eor => a ^ b,
                };
                if op == LogicOp::Ands {
                    self.cpu.pstate.nzcv = Nzcv { n: r >> 63 == 1, z: r == 0, c: false, v: false };
                }
                self.cpu.set_reg(rd, r);
                self.cpu.pc = next_pc;
            }
            Insn::LsrImm { rd, rn, shift } => {
                self.cpu.set_reg(rd, self.cpu.reg(rn) >> shift);
                self.cpu.pc = next_pc;
            }
            Insn::LslImm { rd, rn, shift } => {
                self.cpu.set_reg(rd, self.cpu.reg(rn) << shift);
                self.cpu.pc = next_pc;
            }
            Insn::Adr { rd, offset } => {
                self.cpu.set_reg(rd, self.cpu.pc.wrapping_add_signed(offset));
                self.cpu.pc = next_pc;
            }
            Insn::Adrp { rd, offset } => {
                self.cpu.set_reg(rd, (self.cpu.pc & !0xfff).wrapping_add_signed(offset));
                self.cpu.pc = next_pc;
            }
            Insn::Ldp { rt, rt2, rn, offset } => {
                let va = self.cpu.base_reg(rn).wrapping_add_signed(offset);
                if let Some(exit) = self.data_access(va, MemSize::X, rt, false, false, self.cpu.pc) {
                    return Some(exit);
                }
                return self.data_access(va.wrapping_add(8), MemSize::X, rt2, false, false, next_pc);
            }
            Insn::Stp { rt, rt2, rn, offset } => {
                let va = self.cpu.base_reg(rn).wrapping_add_signed(offset);
                if let Some(exit) = self.data_access(va, MemSize::X, rt, true, false, self.cpu.pc) {
                    return Some(exit);
                }
                return self.data_access(va.wrapping_add(8), MemSize::X, rt2, true, false, next_pc);
            }
            Insn::Madd { rd, rn, rm, ra } => {
                let v = self.cpu.reg(ra).wrapping_add(self.cpu.reg(rn).wrapping_mul(self.cpu.reg(rm)));
                self.charge(crate::jit::MADD_EXTRA_CYCLES); // multiply latency
                self.cpu.set_reg(rd, v);
                self.cpu.pc = next_pc;
            }
            Insn::Udiv { rd, rn, rm } => {
                let d = self.cpu.reg(rm);
                let v = self.cpu.reg(rn).checked_div(d).unwrap_or(0);
                self.charge(crate::jit::UDIV_EXTRA_CYCLES); // divide latency
                self.cpu.set_reg(rd, v);
                self.cpu.pc = next_pc;
            }
            Insn::Csel { rd, rn, rm, cond } => {
                let v = if cond.holds(self.cpu.pstate.nzcv) { self.cpu.reg(rn) } else { self.cpu.reg(rm) };
                self.cpu.set_reg(rd, v);
                self.cpu.pc = next_pc;
            }
            Insn::Csinc { rd, rn, rm, cond } => {
                let v =
                    if cond.holds(self.cpu.pstate.nzcv) { self.cpu.reg(rn) } else { self.cpu.reg(rm).wrapping_add(1) };
                self.cpu.set_reg(rd, v);
                self.cpu.pc = next_pc;
            }
            Insn::LdrImm { rt, rn, offset, size } => {
                let va = self.cpu.base_reg(rn).wrapping_add(offset);
                return self.data_access(va, size, rt, false, false, next_pc);
            }
            Insn::StrImm { rt, rn, offset, size } => {
                let va = self.cpu.base_reg(rn).wrapping_add(offset);
                return self.data_access(va, size, rt, true, false, next_pc);
            }
            Insn::Ldtr { rt, rn, offset, size } => {
                let va = self.cpu.base_reg(rn).wrapping_add_signed(offset);
                return self.data_access(va, size, rt, false, true, next_pc);
            }
            Insn::Sttr { rt, rn, offset, size } => {
                let va = self.cpu.base_reg(rn).wrapping_add_signed(offset);
                return self.data_access(va, size, rt, true, true, next_pc);
            }
            Insn::B { offset } => {
                self.cpu.pc = self.cpu.pc.wrapping_add_signed(offset);
            }
            Insn::Bl { offset } => {
                self.cpu.set_reg(30, next_pc);
                self.cpu.pc = self.cpu.pc.wrapping_add_signed(offset);
            }
            Insn::BCond { cond, offset } => {
                self.cpu.pc =
                    if cond.holds(self.cpu.pstate.nzcv) { self.cpu.pc.wrapping_add_signed(offset) } else { next_pc };
            }
            Insn::Cbz { rt, offset, nonzero } => {
                let taken = (self.cpu.reg(rt) == 0) != nonzero;
                self.cpu.pc = if taken { self.cpu.pc.wrapping_add_signed(offset) } else { next_pc };
            }
            Insn::Br { rn } => {
                self.cpu.pc = self.cpu.reg(rn);
            }
            Insn::Blr { rn } => {
                let target = self.cpu.reg(rn);
                self.cpu.set_reg(30, next_pc);
                self.cpu.pc = target;
            }
            Insn::Ret { rn } => {
                self.cpu.pc = self.cpu.reg(rn);
            }
            Insn::Svc { imm } => {
                let esr = esr::esr_exception_gen(ExceptionClass::Svc, imm);
                let target = self.svc_target();
                return self.take_exception(target, ExceptionClass::Svc, esr, 0, 0, next_pc);
            }
            Insn::Hvc { imm } => {
                if self.cpu.pstate.el == ExceptionLevel::El0 {
                    // HVC is undefined at EL0.
                    return self.undefined(word, next_pc);
                }
                let esr = esr::esr_exception_gen(ExceptionClass::Hvc, imm);
                return self.take_exception(ExceptionLevel::El2, ExceptionClass::Hvc, esr, 0, 0, next_pc);
            }
            Insn::Smc { imm } => {
                // No EL3 in the model: treat as a hypervisor trap.
                let esr = esr::esr_exception_gen(ExceptionClass::Smc, imm);
                return self.take_exception(ExceptionLevel::El2, ExceptionClass::Smc, esr, 0, 0, next_pc);
            }
            Insn::Brk { imm } => {
                let esr = esr::esr_exception_gen(ExceptionClass::Brk, imm);
                let target = self.svc_target();
                // BRK's preferred return is the BRK itself.
                return self.take_exception(target, ExceptionClass::Brk, esr, 0, 0, self.cpu.pc);
            }
            Insn::Eret => {
                if self.cpu.pstate.el == ExceptionLevel::El0 {
                    return self.undefined(word, next_pc);
                }
                self.charge(self.model.exception_return_el1);
                let spsr = self.sysreg(SysReg::SPSR_EL1);
                let elr = self.sysreg(SysReg::ELR_EL1);
                match PState::from_spsr(spsr) {
                    Some(ps) if ps.el <= self.cpu.pstate.el => {
                        self.cpu.pstate = ps;
                        self.cpu.pc = elr;
                    }
                    _ => {
                        let esr = (ExceptionClass::IllegalState.ec()) << 26;
                        return self.take_exception(
                            ExceptionLevel::El1,
                            ExceptionClass::IllegalState,
                            esr,
                            0,
                            0,
                            next_pc,
                        );
                    }
                }
            }
            Insn::Nop => {
                self.cpu.pc = next_pc;
            }
            Insn::Barrier(b) => {
                self.charge(match b {
                    Barrier::Isb => self.model.isb,
                    Barrier::Dsb => self.model.dsb,
                    Barrier::Dmb => self.model.dsb / 2,
                });
                self.cpu.pc = next_pc;
            }
            Insn::MsrImm { op1, crm, op2 } => {
                return self.msr_imm(op1, crm, op2, word, next_pc);
            }
            Insn::MsrReg { enc, rt } => {
                return self.msr_mrs(enc, rt, false, word, next_pc);
            }
            Insn::MrsReg { enc, rt } => {
                return self.msr_mrs(enc, rt, true, word, next_pc);
            }
            Insn::Sys { op1, crn, crm, op2, rt, .. } => {
                return self.sys_op(op1, crn, crm, op2, rt, word, next_pc);
            }
            Insn::Unallocated { .. } => {
                return self.undefined(word, next_pc);
            }
        }
        None
    }

    fn svc_target(&self) -> ExceptionLevel {
        // From EL0 under HCR_EL2.TGE (host process on a VHE host), all
        // synchronous exceptions route to EL2. Otherwise they go to EL1.
        if self.cpu.pstate.el == ExceptionLevel::El0 && self.sysreg(SysReg::HCR_EL2) & hcr::TGE != 0 {
            ExceptionLevel::El2
        } else {
            ExceptionLevel::El1
        }
    }

    fn undefined(&mut self, _word: u32, _next_pc: u64) -> Option<Exit> {
        let esr = ExceptionClass::Unknown.ec() << 26;
        let target = self.svc_target();
        // Preferred return for undefined is the faulting instruction.
        self.take_exception(target, ExceptionClass::Unknown, esr, 0, 0, self.cpu.pc)
    }

    fn msr_imm(&mut self, op1: u8, crm: u8, op2: u8, word: u32, next_pc: u64) -> Option<Exit> {
        use lz_arch::insn::{PSTATE_DAIFCLR_OP2, PSTATE_DAIFSET_OP2, PSTATE_PAN_OP1, PSTATE_PAN_OP2};
        if self.cpu.pstate.el == ExceptionLevel::El0 {
            return self.undefined(word, next_pc);
        }
        if op1 == PSTATE_PAN_OP1 && op2 == PSTATE_PAN_OP2 {
            self.charge(self.model.pan_write);
            self.cpu.pstate.pan = crm & 1 == 1;
        } else if op1 == 0b011 && op2 == PSTATE_DAIFSET_OP2 {
            self.cpu.pstate.irq_masked = true;
        } else if op1 == 0b011 && op2 == PSTATE_DAIFCLR_OP2 {
            self.cpu.pstate.irq_masked = false;
        } else {
            return self.undefined(word, next_pc);
        }
        self.cpu.pc = next_pc;
        None
    }

    fn msr_mrs(
        &mut self,
        enc: lz_arch::sysreg::SysRegEnc,
        rt: u8,
        is_read: bool,
        word: u32,
        next_pc: u64,
    ) -> Option<Exit> {
        let Some(reg) = SysReg::from_encoding(enc) else {
            return self.undefined(word, next_pc);
        };
        let el0_ok =
            matches!(reg, SysReg::NZCV | SysReg::FPCR | SysReg::FPSR | SysReg::TPIDR_EL0 | SysReg::CNTV_CTL_EL0);
        if self.cpu.pstate.el == ExceptionLevel::El0 && !el0_ok {
            return self.undefined(word, next_pc);
        }
        // EL2 registers are not accessible from EL1/EL0 (no nested-virt
        // re-injection in the interpreter: LightZone never lets the
        // process see them).
        let is_el2_reg = matches!(
            reg,
            SysReg::HCR_EL2
                | SysReg::VTTBR_EL2
                | SysReg::VTCR_EL2
                | SysReg::SCTLR_EL2
                | SysReg::VBAR_EL2
                | SysReg::ESR_EL2
                | SysReg::FAR_EL2
                | SysReg::HPFAR_EL2
                | SysReg::ELR_EL2
                | SysReg::SPSR_EL2
                | SysReg::SP_EL1
                | SysReg::TTBR0_EL2
                | SysReg::TTBR1_EL2
                | SysReg::TCR_EL2
                | SysReg::CPTR_EL2
                | SysReg::MDCR_EL2
                | SysReg::TPIDR_EL2
        );
        if is_el2_reg && self.cpu.pstate.el != ExceptionLevel::El2 {
            return self.undefined(word, next_pc);
        }

        // HCR_EL2.TVM / TRVM: trap EL1 accesses to stage-1 VM controls.
        let hcr_el2 = self.sysreg(SysReg::HCR_EL2);
        let vm_ctl = matches!(
            reg,
            SysReg::SCTLR_EL1
                | SysReg::TTBR0_EL1
                | SysReg::TTBR1_EL1
                | SysReg::TCR_EL1
                | SysReg::CONTEXTIDR_EL1
                | SysReg::MAIR_EL1
        );
        if self.cpu.pstate.el == ExceptionLevel::El1 && vm_ctl {
            let trapped = if is_read { hcr_el2 & hcr::TRVM != 0 } else { hcr_el2 & hcr::TVM != 0 };
            if trapped {
                let esr = esr::esr_trapped_sysreg(word);
                return self.take_exception(ExceptionLevel::El2, ExceptionClass::TrappedSysreg, esr, 0, 0, self.cpu.pc);
            }
        }

        if is_read {
            self.charge(self.model.sysreg_read);
            let v = match reg {
                SysReg::NZCV => self.cpu.pstate.nzcv.to_bits(),
                _ => self.sysreg(reg),
            };
            self.cpu.set_reg(rt, v);
        } else {
            self.charge(self.sysreg_write_cost(reg));
            let v = self.cpu.reg(rt);
            match reg {
                SysReg::NZCV => self.cpu.pstate.nzcv = Nzcv::from_bits(v),
                _ => self.set_sysreg(reg, v),
            }
            // An interpreted EL1 `MSR TTBR0_EL1` is a call-gate domain
            // switch (paper §4.1.2) — the event the observability layer
            // exists to count. Host-side `set_sysreg` calls (modelled
            // kernel work) intentionally do not land here.
            if reg == SysReg::TTBR0_EL1 && self.cpu.pstate.el == ExceptionLevel::El1 {
                use lz_arch::sysreg::ttbr;
                let asid = ttbr::asid(v);
                self.metrics.domain_switch(asid);
                self.record_event(EventKind::DomainSwitch { asid, root: ttbr::baddr(v) });
            }
        }
        self.cpu.pc = next_pc;
        None
    }

    fn sys_op(&mut self, op1: u8, crn: u8, crm: u8, op2: u8, rt: u8, word: u32, next_pc: u64) -> Option<Exit> {
        if self.cpu.pstate.el == ExceptionLevel::El0 {
            return self.undefined(word, next_pc);
        }
        if crn == 8 {
            // TLB maintenance: trapped by HCR_EL2.TTLB, else executed.
            if self.sysreg(SysReg::HCR_EL2) & hcr::TTLB != 0 {
                let esr = esr::esr_trapped_sysreg(word);
                return self.take_exception(ExceptionLevel::El2, ExceptionClass::TrappedSysreg, esr, 0, 0, self.cpu.pc);
            }
            self.charge(self.model.dsb);
            // Injected TLBI faults, both fail-closed by construction:
            // a *lost* operation is detected as a stall at the
            // completing barrier and re-issued (one extra barrier, then
            // the invalidation below runs as normal), and a *spurious*
            // one drops extra cached translations, which can only cost
            // walks — a TLB entry the tables would not reproduce is
            // never created by invalidation.
            if self.chaos_fire(crate::chaos::FaultSite::TlbiLost).is_some() {
                self.charge(self.model.dsb);
                self.chaos.contained();
            }
            let cfg = self.walk_config();
            let vmid = cfg.vmid();
            match lz_arch::tlbi::TlbiOp::decode(op1, crm, op2) {
                Some(op) => {
                    // Local forms flush only the issuing core; the
                    // Inner Shareable forms DVM-broadcast to every
                    // remote core (see `smp` module docs).
                    let xt = self.cpu.reg(rt);
                    crate::smp::apply_tlbi(&mut self.tlb, op, vmid, xt);
                    if op.broadcast {
                        self.dvm_broadcast(op, vmid, xt);
                    }
                }
                // Unmodelled TLBI encodings keep the conservative
                // pre-SMP behaviour: flush the issuing core's VMID.
                None => self.tlb.invalidate_vmid(vmid),
            }
            if self.chaos_fire(crate::chaos::FaultSite::TlbiSpurious).is_some() {
                self.tlb.invalidate_all();
                self.chaos.contained();
            }
        }
        // Cache maintenance (CRn=7) and others: architecturally effectful,
        // semantically inert in this model.
        self.cpu.pc = next_pc;
        None
    }

    fn data_access(
        &mut self,
        va: u64,
        size: MemSize,
        rt: u8,
        is_write: bool,
        unpriv: bool,
        next_pc: u64,
    ) -> Option<Exit> {
        // Watchpoint match (EL0 accesses while enabled).
        if self.cpu.watchpoints_enabled && self.cpu.pstate.el == ExceptionLevel::El0 {
            for wp in self.cpu.watchpoints.iter().flatten() {
                let hit = va < wp.addr + wp.len && va + size.bytes() > wp.addr;
                if hit && ((is_write && wp.on_write) || (!is_write && wp.on_read)) {
                    let esr = (ExceptionClass::WatchpointLower.ec() << 26) | ((is_write as u64) << 6);
                    self.set_sysreg(SysReg::FAR_EL1, va);
                    self.set_sysreg(SysReg::FAR_EL2, va);
                    let target = self.svc_target();
                    return self.take_exception(target, ExceptionClass::WatchpointLower, esr, va, 0, self.cpu.pc);
                }
            }
        }

        let cfg = self.walk_config();
        let actx = AccessCtx { el: self.cpu.pstate.el, pan: self.cpu.pstate.pan, unpriv };
        let access = if is_write { Access::Write } else { Access::Read };
        let bytes = size.bytes();

        // Split accesses that cross a page boundary.
        let first_len = (4096 - (va & 0xfff)).min(bytes);
        let mut pas = [(0u64, 0u64); 2];
        let mut n = 0;
        for (start, len) in [(va, first_len), (va + first_len, bytes - first_len)] {
            if len == 0 {
                continue;
            }
            match walk::translate(&self.mem, &mut self.tlb, &self.model, &cfg, start, access, &actx) {
                Ok(t) => {
                    self.charge(t.cost);
                    pas[n] = (t.pa, len);
                    n += 1;
                }
                Err(f) => {
                    self.charge(self.model.stage1_walk());
                    return self.fault_exception(f, false);
                }
            }
        }
        self.charge(self.model.mem_access);

        if is_write {
            let v = self.cpu.reg(rt);
            let mut shift = 0;
            for &(pa, len) in &pas[..n] {
                let part = (v >> shift) & mask_for(len);
                if !self.mem.write(pa, part, len) {
                    return self.bus_error(va);
                }
                shift += 8 * len;
            }
        } else {
            let mut v = 0u64;
            let mut shift = 0;
            for &(pa, len) in &pas[..n] {
                match self.mem.read(pa, len) {
                    Some(part) => v |= part << shift,
                    None => return self.bus_error(va),
                }
                shift += 8 * len;
            }
            self.cpu.set_reg(rt, v);
        }
        self.cpu.pc = next_pc;
        None
    }

    fn bus_error(&mut self, va: u64) -> Option<Exit> {
        let f =
            Fault { kind: FaultKind::Translation, stage: Stage::S1, level: 0, va, ipa: 0, wnr: false, s1ptw: false };
        self.fault_exception(f, false)
    }

    /// Convert an MMU fault into an exception: stage-1 faults go to EL1
    /// (EL2 under TGE); stage-2 faults always go to EL2.
    fn fault_exception(&mut self, f: Fault, is_fetch: bool) -> Option<Exit> {
        let from_el = self.cpu.pstate.el;
        let target = match f.stage {
            Stage::S2 => ExceptionLevel::El2,
            Stage::S1 => {
                if from_el == ExceptionLevel::El0 && self.sysreg(SysReg::HCR_EL2) & hcr::TGE != 0 {
                    ExceptionLevel::El2
                } else {
                    ExceptionLevel::El1
                }
            }
        };
        let from_lower = from_el < target || (from_el == ExceptionLevel::El0);
        let class = match (is_fetch, from_lower) {
            (true, true) => ExceptionClass::InsnAbortLower,
            (true, false) => ExceptionClass::InsnAbortSame,
            (false, true) => ExceptionClass::DataAbortLower,
            (false, false) => ExceptionClass::DataAbortSame,
        };
        let status = match f.kind {
            FaultKind::Translation => esr::FaultStatus::Translation(f.level),
            FaultKind::Permission => esr::FaultStatus::Permission(f.level),
            FaultKind::AccessFlag => esr::FaultStatus::AccessFlag(f.level),
        };
        let esr = esr::esr_abort(class, status, f.wnr, f.s1ptw);
        let hpfar = (f.ipa >> 12) << 4; // HPFAR_EL2 holds IPA[47:12] at bits 43:4.
        self.take_exception(target, class, esr, f.va, hpfar, self.cpu.pc)
    }

    /// Take an exception to `target`. Fills the target EL's syndrome
    /// registers; either vectors (interpreted EL1) or exits.
    fn take_exception(
        &mut self,
        target: ExceptionLevel,
        class: ExceptionClass,
        esr_val: u64,
        far: u64,
        hpfar: u64,
        preferred_return: u64,
    ) -> Option<Exit> {
        self.metrics.trap(class);
        self.record_event(EventKind::Trap { class });
        self.charge(match target {
            ExceptionLevel::El2 => self.model.exception_entry_el2,
            _ => self.model.exception_entry_el1,
        });
        let spsr = self.cpu.pstate.to_spsr();
        match target {
            ExceptionLevel::El1 => {
                self.set_sysreg(SysReg::ESR_EL1, esr_val);
                self.set_sysreg(SysReg::FAR_EL1, far);
                self.set_sysreg(SysReg::ELR_EL1, preferred_return);
                self.set_sysreg(SysReg::SPSR_EL1, spsr);
                let from_lower = self.cpu.pstate.el == ExceptionLevel::El0;
                // SPAN: if clear, exception entry to EL1 sets PAN.
                let span = self.sysreg(SysReg::SCTLR_EL1) & sctlr::SPAN != 0;
                self.cpu.pstate.el = ExceptionLevel::El1;
                self.cpu.pstate.irq_masked = true;
                if !span {
                    self.cpu.pstate.pan = true;
                }
                if self.el1_external {
                    return Some(Exit::El1(class));
                }
                let vbar = self.sysreg(SysReg::VBAR_EL1);
                self.cpu.pc = vbar + if from_lower { 0x400 } else { 0x200 };
                None
            }
            ExceptionLevel::El2 => {
                self.set_sysreg(SysReg::ESR_EL2, esr_val);
                self.set_sysreg(SysReg::FAR_EL2, far);
                self.set_sysreg(SysReg::HPFAR_EL2, hpfar);
                self.set_sysreg(SysReg::ELR_EL2, preferred_return);
                self.set_sysreg(SysReg::SPSR_EL2, spsr);
                self.cpu.pstate.el = ExceptionLevel::El2;
                self.cpu.pstate.irq_masked = true;
                Some(Exit::El2(class))
            }
            ExceptionLevel::El0 => unreachable!("exceptions never target EL0"),
        }
    }
}

fn mask_for(len: u64) -> u64 {
    if len >= 8 {
        u64::MAX
    } else {
        (1u64 << (8 * len)) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pte::S1Perms;
    use crate::walk::{alloc_table, s1_map_page};
    use lz_arch::asm::Asm;
    use lz_arch::sysreg::ttbr;

    const CODE: u64 = 0x40_0000;
    const DATA: u64 = 0x50_0000;

    fn user_code_perms() -> S1Perms {
        S1Perms { read: true, write: false, user_exec: true, priv_exec: false, el0: true, global: false }
    }

    fn user_data_perms() -> S1Perms {
        S1Perms { read: true, write: true, user_exec: false, priv_exec: false, el0: true, global: false }
    }

    /// Build a machine with one EL0 program mapped at CODE and a data page
    /// at DATA, stage-1 only, TGE set (host process semantics).
    fn machine_with(asm: Asm) -> Machine {
        let mut m = Machine::new(Platform::CortexA55);
        let root = alloc_table(&mut m.mem);
        let code_pa = m.mem.alloc_frame();
        let data_pa = m.mem.alloc_frame();
        let bytes = asm.bytes();
        m.mem.write_bytes(code_pa, &bytes);
        s1_map_page(&mut m.mem, root, CODE, code_pa, user_code_perms());
        s1_map_page(&mut m.mem, root, DATA, data_pa, user_data_perms());
        m.set_sysreg(SysReg::TTBR0_EL1, ttbr::pack(1, root));
        m.set_sysreg(SysReg::SCTLR_EL1, sctlr::M | sctlr::SPAN);
        m.set_sysreg(SysReg::HCR_EL2, hcr::TGE | hcr::E2H);
        m.cpu.pstate = PState::user();
        m.cpu.pc = CODE;
        m
    }

    #[test]
    fn runs_arithmetic_and_svc() {
        let mut a = Asm::new(CODE);
        a.movz(0, 20, 0);
        a.movz(1, 22, 0);
        a.add_reg(2, 0, 1);
        a.svc(7);
        let mut m = machine_with(a);
        let exit = m.run(100);
        assert_eq!(exit, Exit::El2(ExceptionClass::Svc));
        assert_eq!(m.cpu.reg(2), 42);
        assert_eq!(esr::esr_imm(m.sysreg(SysReg::ESR_EL2)), 7);
        assert_eq!(m.sysreg(SysReg::ELR_EL2), CODE + 16);
        assert_eq!(m.cpu.pstate.el, ExceptionLevel::El2);
    }

    #[test]
    fn load_store_roundtrip() {
        let mut a = Asm::new(CODE);
        a.mov_imm64(0, DATA);
        a.mov_imm64(1, 0xdead_beef);
        a.str(1, 0, 16);
        a.ldr(2, 0, 16);
        a.svc(0);
        let mut m = machine_with(a);
        assert_eq!(m.run(100), Exit::El2(ExceptionClass::Svc));
        assert_eq!(m.cpu.reg(2), 0xdead_beef);
    }

    #[test]
    fn unaligned_cross_page_access() {
        let mut a = Asm::new(CODE);
        a.mov_imm64(0, DATA + 0xffc);
        a.mov_imm64(1, 0x1122_3344_5566_7788);
        a.str(1, 0, 0);
        a.ldr(2, 0, 0);
        a.svc(0);
        // Needs the next page mapped too.
        let mut m = machine_with(a);
        let root = ttbr::baddr(m.sysreg(SysReg::TTBR0_EL1));
        let pa = m.mem.alloc_frame();
        s1_map_page(&mut m.mem, root, DATA + 0x1000, pa, user_data_perms());
        assert_eq!(m.run(100), Exit::El2(ExceptionClass::Svc));
        assert_eq!(m.cpu.reg(2), 0x1122_3344_5566_7788);
    }

    #[test]
    fn store_to_unmapped_faults_to_el2_under_tge() {
        let mut a = Asm::new(CODE);
        a.mov_imm64(0, 0x70_0000);
        a.str(0, 0, 0);
        let mut m = machine_with(a);
        let exit = m.run(100);
        assert_eq!(exit, Exit::El2(ExceptionClass::DataAbortLower));
        assert_eq!(m.sysreg(SysReg::FAR_EL2), 0x70_0000);
        let (fault, wnr, _) = esr::esr_abort_info(m.sysreg(SysReg::ESR_EL2)).unwrap();
        assert!(matches!(fault, esr::FaultStatus::Translation(_)));
        assert!(wnr);
    }

    #[test]
    fn branch_loop_executes() {
        let mut a = Asm::new(CODE);
        a.movz(0, 10, 0);
        a.movz(1, 0, 0);
        let top = a.label();
        a.bind(top);
        a.add_imm(1, 1, 3);
        a.subs_imm(0, 0, 1);
        a.b_ne(top);
        a.svc(0);
        let mut m = machine_with(a);
        assert_eq!(m.run(1000), Exit::El2(ExceptionClass::Svc));
        assert_eq!(m.cpu.reg(1), 30);
    }

    #[test]
    fn bl_ret_links() {
        let mut a = Asm::new(CODE);
        let func = a.label();
        a.bl(func);
        a.svc(0);
        a.bind(func);
        a.movz(5, 99, 0);
        a.ret();
        let mut m = machine_with(a);
        assert_eq!(m.run(100), Exit::El2(ExceptionClass::Svc));
        assert_eq!(m.cpu.reg(5), 99);
    }

    #[test]
    fn el0_cannot_write_privileged_sysreg() {
        let mut a = Asm::new(CODE);
        a.movz(0, 0, 0);
        a.msr(SysReg::TTBR0_EL1, 0);
        let mut m = machine_with(a);
        // Undefined routes to EL2 under TGE.
        assert_eq!(m.run(100), Exit::El2(ExceptionClass::Unknown));
    }

    #[test]
    fn el0_cannot_toggle_pan() {
        let mut a = Asm::new(CODE);
        a.msr_pan(0);
        let mut m = machine_with(a);
        assert_eq!(m.run(100), Exit::El2(ExceptionClass::Unknown));
    }

    #[test]
    fn el0_can_use_tpidr_el0() {
        let mut a = Asm::new(CODE);
        a.movz(0, 77, 0);
        a.msr(SysReg::TPIDR_EL0, 0);
        a.mrs(1, SysReg::TPIDR_EL0);
        a.svc(0);
        let mut m = machine_with(a);
        assert_eq!(m.run(100), Exit::El2(ExceptionClass::Svc));
        assert_eq!(m.cpu.reg(1), 77);
    }

    #[test]
    fn el1_pan_toggle_and_enforcement() {
        // EL1 process; data page is user-marked; PAN blocks access until
        // cleared.
        let mut a = Asm::new(CODE);
        a.mov_imm64(0, DATA);
        a.msr_pan(1);
        a.ldr(1, 0, 0); // must fault
        let mut m = machine_with(a);
        // Re-enter at EL1 with code executable at EL1: remap code page.
        let root = ttbr::baddr(m.sysreg(SysReg::TTBR0_EL1));
        let (code_pa, _, _) = crate::walk::s1_lookup(&m.mem, root, CODE).unwrap();
        let kcode = S1Perms { read: true, write: false, user_exec: false, priv_exec: true, el0: false, global: false };
        s1_map_page(&mut m.mem, root, CODE, code_pa, kcode);
        m.set_sysreg(SysReg::HCR_EL2, 0); // not a TGE host process
        m.cpu.pstate = PState { el: ExceptionLevel::El1, pan: false, irq_masked: false, nzcv: Default::default() };
        m.set_el1_external(true);
        let exit = m.run(100);
        assert_eq!(exit, Exit::El1(ExceptionClass::DataAbortSame));
        let (fault, ..) = esr::esr_abort_info(m.sysreg(SysReg::ESR_EL1)).unwrap();
        assert!(matches!(fault, esr::FaultStatus::Permission(_)));
    }

    #[test]
    fn el1_vectors_to_vbar_when_interpreted() {
        // An EL1 process (LightZone-style) takes SVC to its own VBAR stub,
        // which forwards via HVC.
        let mut a = Asm::new(CODE);
        a.svc(42);
        let mut m = machine_with(a);
        let root = ttbr::baddr(m.sysreg(SysReg::TTBR0_EL1));
        let (code_pa, _, _) = crate::walk::s1_lookup(&m.mem, root, CODE).unwrap();
        let kcode = S1Perms { read: true, write: false, user_exec: false, priv_exec: true, el0: false, global: false };
        s1_map_page(&mut m.mem, root, CODE, code_pa, kcode);

        // Stub at VBAR+0x200 (same-EL): hvc #0.
        let vbar = 0x60_0000u64;
        let stub_pa = m.mem.alloc_frame();
        let mut stub = Asm::new(vbar + 0x200);
        stub.hvc(0);
        m.mem.write_bytes(stub_pa + 0x200, &stub.bytes());
        s1_map_page(&mut m.mem, root, vbar, stub_pa, kcode);
        m.set_sysreg(SysReg::VBAR_EL1, vbar);
        m.set_sysreg(SysReg::HCR_EL2, 0);
        m.cpu.pstate = PState { el: ExceptionLevel::El1, pan: false, irq_masked: false, nzcv: Default::default() };
        let exit = m.run(100);
        assert_eq!(exit, Exit::El2(ExceptionClass::Hvc));
        // The original syndrome is still in ESR_EL1 for the module to read.
        assert_eq!(esr::esr_imm(m.sysreg(SysReg::ESR_EL1)), 42);
        assert_eq!(m.sysreg(SysReg::ELR_EL1), CODE + 4);
    }

    #[test]
    fn watchpoint_fires_on_el0_access() {
        let mut a = Asm::new(CODE);
        a.mov_imm64(0, DATA + 0x100);
        a.ldr(1, 0, 0);
        let mut m = machine_with(a);
        m.cpu.watchpoints[0] = Some(Watchpoint { addr: DATA + 0x100, len: 8, on_read: true, on_write: true });
        m.cpu.watchpoints_enabled = true;
        let exit = m.run(100);
        assert_eq!(exit, Exit::El2(ExceptionClass::WatchpointLower));
        assert_eq!(m.sysreg(SysReg::FAR_EL2), DATA + 0x100);
    }

    #[test]
    fn watchpoint_does_not_fire_outside_range() {
        let mut a = Asm::new(CODE);
        a.mov_imm64(0, DATA);
        a.ldr(1, 0, 0);
        a.svc(0);
        let mut m = machine_with(a);
        m.cpu.watchpoints[0] = Some(Watchpoint { addr: DATA + 0x100, len: 8, on_read: true, on_write: true });
        m.cpu.watchpoints_enabled = true;
        assert_eq!(m.run(100), Exit::El2(ExceptionClass::Svc));
    }

    #[test]
    fn pair_and_arith_instructions_execute() {
        let mut a = Asm::new(CODE);
        a.mov_imm64(0, DATA);
        a.mov_imm64(1, 0x1111);
        a.mov_imm64(2, 0x2222);
        a.stp(1, 2, 0, 16);
        a.ldp(3, 4, 0, 16);
        a.mul(5, 3, 4); // 0x1111 * 0x2222
        a.mov_imm64(6, 0x22);
        a.udiv(7, 5, 6);
        a.cmp_imm(7, 0);
        a.csel(9, 3, 4, lz_arch::insn::Cond::Ne);
        a.cset(10, lz_arch::insn::Cond::Ne);
        a.svc(0);
        let mut m = machine_with(a);
        assert_eq!(m.run(100), Exit::El2(ExceptionClass::Svc));
        assert_eq!(m.cpu.reg(3), 0x1111);
        assert_eq!(m.cpu.reg(4), 0x2222);
        assert_eq!(m.cpu.reg(5), 0x1111 * 0x2222);
        assert_eq!(m.cpu.reg(7), (0x1111 * 0x2222) / 0x22);
        assert_eq!(m.cpu.reg(9), 0x1111, "csel picks rn when NE holds");
        assert_eq!(m.cpu.reg(10), 1, "cset on NE");
    }

    #[test]
    fn udiv_by_zero_is_zero() {
        let mut a = Asm::new(CODE);
        a.mov_imm64(1, 99);
        a.movz(2, 0, 0);
        a.udiv(3, 1, 2);
        a.svc(0);
        let mut m = machine_with(a);
        assert_eq!(m.run(100), Exit::El2(ExceptionClass::Svc));
        assert_eq!(m.cpu.reg(3), 0, "architected zero on divide-by-zero");
    }

    #[test]
    fn stp_faults_atomically_enough() {
        // The second slot of an STP crossing into an unmapped page faults;
        // after the kernel maps it, restarting the instruction redoes both
        // stores (idempotent).
        let mut a = Asm::new(CODE);
        a.mov_imm64(0, DATA + 0xff0);
        a.mov_imm64(1, 7);
        a.mov_imm64(2, 9);
        a.stp(1, 2, 0, 8); // second store lands at DATA+0x1000
        let mut m = machine_with(a);
        assert_eq!(m.run(100), Exit::El2(ExceptionClass::DataAbortLower));
        assert_eq!(m.sysreg(SysReg::FAR_EL2), DATA + 0x1000);
    }

    #[test]
    fn cycles_accumulate_and_limit_works() {
        let mut a = Asm::new(CODE);
        let top = a.label();
        a.bind(top);
        let l2 = top;
        a.b(l2);
        let mut m = machine_with(a);
        assert_eq!(m.run(50), Exit::Limit);
        assert_eq!(m.cpu.insns, 50);
        assert!(m.cpu.cycles >= 50);
    }

    #[test]
    fn eret_from_el1_restores_el0() {
        let mut a = Asm::new(CODE);
        a.eret();
        let mut m = machine_with(a);
        let root = ttbr::baddr(m.sysreg(SysReg::TTBR0_EL1));
        let (code_pa, _, _) = crate::walk::s1_lookup(&m.mem, root, CODE).unwrap();
        let kcode = S1Perms { read: true, write: false, user_exec: false, priv_exec: true, el0: false, global: false };
        s1_map_page(&mut m.mem, root, CODE, code_pa, kcode);
        m.set_sysreg(SysReg::HCR_EL2, 0);
        m.cpu.pstate = PState { el: ExceptionLevel::El1, pan: false, irq_masked: true, nzcv: Default::default() };
        m.set_sysreg(SysReg::SPSR_EL1, PState::user().to_spsr());
        m.set_sysreg(SysReg::ELR_EL1, DATA); // arbitrary EL0 target
        m.step();
        assert_eq!(m.cpu.pstate.el, ExceptionLevel::El0);
        assert_eq!(m.cpu.pc, DATA);
    }

    #[test]
    fn hvc_undefined_at_el0() {
        let mut a = Asm::new(CODE);
        a.hvc(0);
        let mut m = machine_with(a);
        assert_eq!(m.run(10), Exit::El2(ExceptionClass::Unknown));
    }

    #[test]
    fn tvm_traps_el1_ttbr_write() {
        let mut a = Asm::new(CODE);
        a.movz(0, 0, 0);
        a.msr(SysReg::SCTLR_EL1, 0);
        let mut m = machine_with(a);
        let root = ttbr::baddr(m.sysreg(SysReg::TTBR0_EL1));
        let (code_pa, _, _) = crate::walk::s1_lookup(&m.mem, root, CODE).unwrap();
        let kcode = S1Perms { read: true, write: false, user_exec: false, priv_exec: true, el0: false, global: false };
        s1_map_page(&mut m.mem, root, CODE, code_pa, kcode);
        m.set_sysreg(SysReg::HCR_EL2, hcr::VM | hcr::TVM);
        // Stage-2 required for VM bit: identity-map everything currently
        // allocated.
        let s2_root = alloc_table(&mut m.mem);
        let mut pa = 1 << 20;
        let end = (1 << 20) + 4096 * 4096;
        while pa < end {
            if m.mem.is_mapped(pa) {
                crate::walk::s2_map_page(&mut m.mem, s2_root, pa, pa, crate::pte::S2Perms::rwx());
            }
            pa += 4096;
        }
        m.set_sysreg(SysReg::VTTBR_EL2, lz_arch::sysreg::vttbr::pack(5, s2_root));
        m.cpu.pstate = PState { el: ExceptionLevel::El1, pan: false, irq_masked: false, nzcv: Default::default() };
        let exit = m.run(100);
        assert_eq!(exit, Exit::El2(ExceptionClass::TrappedSysreg));
    }

    #[test]
    fn charged_sysreg_costs_differ() {
        let mut m = Machine::new(Platform::Carmel);
        let before = m.cpu.cycles;
        m.write_sysreg_charged(SysReg::HCR_EL2, 1);
        let hcr_cost = m.cpu.cycles - before;
        assert_eq!(hcr_cost, m.model.hcr_el2_write);
        let before = m.cpu.cycles;
        m.write_sysreg_charged(SysReg::TPIDR_EL1, 1);
        assert_eq!(m.cpu.cycles - before, m.model.sysreg_write);
    }
}
