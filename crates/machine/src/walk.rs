//! Address translation: stage-1 and stage-2 table walks, permission
//! checks (including PAN), and table-building helpers.
//!
//! The walker is where LightZone's isolation mechanisms actually bite:
//!
//! * a TTBR0 switch changes which stage-1 tree maps the low VA half, so
//!   pages absent from the current tree raise stage-1 translation faults;
//! * `PSTATE.PAN` makes privileged data accesses to `AP[1]=1` ("user")
//!   pages raise stage-1 permission faults;
//! * stage-2 tables bound everything a virtual environment can reach,
//!   regardless of what it writes into its stage-1 tables.

use crate::chaos::LzFault;
use crate::icache::FillInfo;
use crate::mem::PhysMem;
use crate::pte::{self, S1Perms, S2Perms};
use crate::tlb::{Tlb, TlbEntry, TlbHit, WALK_FRAMES_MAX};
use lz_arch::insn::Insn;
use lz_arch::pstate::ExceptionLevel;
use lz_arch::sysreg::{ttbr, vttbr};
use lz_arch::CycleModel;

/// Kind of memory access being translated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Access {
    Read,
    Write,
    Fetch,
}

/// Which translation stage faulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    S1,
    S2,
}

/// Architectural fault kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    Translation,
    Permission,
    AccessFlag,
}

/// A translation fault with everything needed to build `ESR`/`FAR`/`HPFAR`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    pub kind: FaultKind,
    pub stage: Stage,
    /// Table level at which the walk failed (0–3).
    pub level: u8,
    /// Faulting virtual address.
    pub va: u64,
    /// Faulting intermediate physical address (meaningful for stage 2).
    pub ipa: u64,
    /// Write-not-read.
    pub wnr: bool,
    /// The stage-2 fault occurred while walking a stage-1 table.
    pub s1ptw: bool,
}

/// Translation regime configuration (a snapshot of the relevant system
/// registers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkConfig {
    /// `TTBR0_EL1` (ASID-packed).
    pub ttbr0: u64,
    /// `TTBR1_EL1` (ASID ignored; TTBR0's ASID is current, matching
    /// `TCR_EL1.A1 = 0`).
    pub ttbr1: u64,
    /// `SCTLR_EL1.M`.
    pub s1_enabled: bool,
    /// `SCTLR_EL1.WXN`.
    pub wxn: bool,
    /// `VTTBR_EL2` when `HCR_EL2.VM` is set.
    pub vttbr: Option<u64>,
}

impl WalkConfig {
    /// The VMID tagging TLB entries (0 when stage 2 is off — the "host"
    /// VMID).
    pub fn vmid(&self) -> u16 {
        self.vttbr.map(vttbr::vmid).unwrap_or(0)
    }

    /// The current ASID.
    pub fn asid(&self) -> u16 {
        ttbr::asid(self.ttbr0)
    }
}

/// Privilege context of the access.
#[derive(Debug, Clone, Copy)]
pub struct AccessCtx {
    pub el: ExceptionLevel,
    /// `PSTATE.PAN`.
    pub pan: bool,
    /// The access is an unprivileged (`LDTR`/`STTR`) access: permission-
    /// checked as EL0 and therefore *not* subject to PAN.
    pub unpriv: bool,
}

/// Result of a successful translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Translation {
    /// Final physical address.
    pub pa: u64,
    /// Walk cost in cycles (0 on a TLB hit).
    pub cost: u64,
    /// Whether the TLB satisfied the lookup.
    pub tlb_hit: bool,
}

const LOW_HALF: u64 = 0;
const HIGH_HALF: u64 = 0xffff;

/// Records the physical table frames a walk reads (base + version at
/// read time), so a successful walk can be memoised in the walk cache.
/// Inactive recorders cost one branch per descriptor.
struct FrameRec {
    active: bool,
    overflow: bool,
    n: usize,
    frames: [(u64, u64); WALK_FRAMES_MAX],
}

impl FrameRec {
    fn new(active: bool) -> Self {
        FrameRec { active, overflow: false, n: 0, frames: [(0, 0); WALK_FRAMES_MAX] }
    }

    #[inline]
    fn record(&mut self, mem: &PhysMem, desc_pa: u64) {
        if !self.active || self.overflow {
            return;
        }
        let frame = desc_pa & !0xfff;
        if self.frames[..self.n].iter().any(|&(pa, _)| pa == frame) {
            return;
        }
        if self.n == WALK_FRAMES_MAX {
            self.overflow = true;
            return;
        }
        match mem.frame_version(frame) {
            Some(ver) => {
                self.frames[self.n] = (frame, ver);
                self.n += 1;
            }
            // Unbacked frame: the read will fault and nothing is cached,
            // but never let such a walk fill the cache.
            None => self.overflow = true,
        }
    }

    /// The recorded frames, or `None` when the walk must not be cached.
    fn frames(&self) -> Option<&[(u64, u64)]> {
        if self.active && !self.overflow {
            Some(&self.frames[..self.n])
        } else {
            None
        }
    }
}

/// Walk-cache key component for the stage-2 root: base `| 1`, or 0 when
/// stage 2 is off (the low bit keeps a zero base distinct from "none").
fn wcache_vttbr_key(cfg: &WalkConfig) -> u64 {
    cfg.vttbr.map(|vt| vttbr::baddr(vt) | 1).unwrap_or(0)
}

fn s1_idx(va: u64, level: u8) -> u64 {
    (va >> (39 - 9 * level as u64)) & 0x1ff
}

fn s2_idx(ipa: u64, level: u8) -> u64 {
    debug_assert!((1..=3).contains(&level));
    (ipa >> (39 - 9 * level as u64)) & 0x1ff
}

/// Translate a virtual address.
///
/// On success the returned [`Translation`] carries the cycle cost of any
/// table walks performed; on failure the [`Fault`] carries the stage,
/// kind, and level for exception routing.
pub fn translate(
    mem: &PhysMem,
    tlb: &mut Tlb,
    model: &CycleModel,
    cfg: &WalkConfig,
    va: u64,
    access: Access,
    actx: &AccessCtx,
) -> Result<Translation, Fault> {
    let has_tlb = cfg.s1_enabled || cfg.vttbr.is_some();

    // Micro-DTLB: replay a data translation already proven to be a free
    // L1 hit for exactly these tags at the current TLB generation. Gated
    // on `has_tlb` because the bare identity regime bypasses the TLB
    // entirely on the slow path too.
    if has_tlb && access != Access::Fetch {
        if let Some(pa) = tlb.dtlb_lookup(
            cfg.vmid(),
            cfg.asid(),
            actx.el,
            actx.pan,
            actx.unpriv,
            cfg.s1_enabled,
            va,
            access == Access::Write,
        ) {
            return Ok(Translation { pa, cost: 0, tlb_hit: true });
        }
    }

    let pre = if has_tlb { tlb.lookup_leveled(cfg.vmid(), cfg.asid(), va) } else { None };
    let r = translate_after_lookup(mem, tlb, model, cfg, va, access, actx, pre);
    match &r {
        Ok(t) => {
            // The slow path just proved this (tags, access kind) pair
            // translates to `t.pa` — and left the entry in L1, so until
            // the next generation bump a repeat is a free L1 hit.
            if has_tlb && access != Access::Fetch {
                tlb.dtlb_arm(
                    cfg.vmid(),
                    cfg.asid(),
                    actx.el,
                    actx.pan,
                    actx.unpriv,
                    cfg.s1_enabled,
                    va,
                    access == Access::Write,
                    t.pa & !0xfff,
                );
            }
        }
        Err(f) => tlb.walk.count_fault(f),
    }
    r
}

/// The body of [`translate`] after the TLB has already been consulted.
///
/// Split out so the fetch fast path can perform exactly one
/// `lookup_leveled` (which mutates hit/miss counters and promotes L2 hits)
/// and still fall back to the slow path without double-counting.
#[allow(clippy::too_many_arguments)]
fn translate_after_lookup(
    mem: &PhysMem,
    tlb: &mut Tlb,
    model: &CycleModel,
    cfg: &WalkConfig,
    va: u64,
    access: Access,
    actx: &AccessCtx,
    pre: Option<(TlbEntry, TlbHit)>,
) -> Result<Translation, Fault> {
    let wnr = access == Access::Write;
    let vmid = cfg.vmid();
    let asid = cfg.asid();

    if let Some((entry, level)) = pre {
        check_s1(&entry.s1, access, actx, cfg.wxn, cfg.s1_enabled).map_err(|kind| Fault {
            kind,
            stage: Stage::S1,
            level: 3,
            va,
            ipa: 0,
            wnr,
            s1ptw: false,
        })?;
        if let Some(s2p) = entry.s2 {
            check_s2(&s2p, access).map_err(|kind| Fault {
                kind,
                stage: Stage::S2,
                level: 3,
                va,
                ipa: entry.pa_page | (va & 0xfff),
                wnr,
                s1ptw: false,
            })?;
        }
        let cost = match level {
            TlbHit::L1 => 0,
            TlbHit::L2 => model.l2_tlb_hit,
        };
        return Ok(Translation { pa: entry.pa_page | (va & 0xfff), cost, tlb_hit: true });
    }

    // Full walk. The walk cache may replay a memoised walk whose table
    // frames are provably untouched since fill time; everything modelled
    // (counters, checks, fault values, the TLB insert, the cost) is
    // identical to the descriptor-reading path below.
    let vttbr_key = wcache_vttbr_key(cfg);
    let wroot = if cfg.s1_enabled { s1_root_for(cfg, va) } else { None };
    if let Some(root) = wroot {
        if let Some((ipa_page, pa_page, s1, s2)) = tlb.wcache_lookup(mem, root, vttbr_key, va) {
            tlb.walk.s1_walks += 1;
            check_s1(&s1, access, actx, cfg.wxn, cfg.s1_enabled).map_err(|kind| Fault {
                kind,
                stage: Stage::S1,
                level: 3,
                va,
                ipa: 0,
                wnr,
                s1ptw: false,
            })?;
            let s2_perms = match cfg.vttbr {
                Some(_) => {
                    tlb.walk.s2_walks += 1;
                    let perms = s2.expect("nested walk-cache entry carries stage-2 perms");
                    check_s2(&perms, access).map_err(|kind| Fault {
                        kind,
                        stage: Stage::S2,
                        level: 3,
                        va,
                        ipa: ipa_page | (va & 0xfff),
                        wnr,
                        s1ptw: false,
                    })?;
                    Some(perms)
                }
                None => None,
            };
            let entry_asid = if !s1.global { Some(asid) } else { None };
            tlb.insert(vmid, va, TlbEntry { asid: entry_asid, pa_page, s1, s2: s2_perms });
            return Ok(Translation { pa: pa_page | (va & 0xfff), cost: fetch_walk_cost(model, cfg), tlb_hit: false });
        }
    }

    let mut rec = FrameRec::new(tlb.fastpath() && cfg.s1_enabled);
    let (ipa_page, s1_perms, mut cost) = if cfg.s1_enabled {
        tlb.walk.s1_walks += 1;
        walk_stage1(mem, model, cfg, va, access, actx, &mut rec)?
    } else {
        // Stage-1 off: identity, full permissions, global.
        (
            va & 0x0000_ffff_ffff_f000,
            S1Perms { read: true, write: true, user_exec: true, priv_exec: true, el0: true, global: false },
            0,
        )
    };

    check_s1(&s1_perms, access, actx, cfg.wxn, cfg.s1_enabled).map_err(|kind| Fault {
        kind,
        stage: Stage::S1,
        level: 3,
        va,
        ipa: 0,
        wnr,
        s1ptw: false,
    })?;

    let (pa_page, s2_perms) = match cfg.vttbr {
        Some(vt) => {
            tlb.walk.s2_walks += 1;
            let (pa, perms, c) = walk_stage2(mem, model, vttbr::baddr(vt), ipa_page, va, access, wnr, false, &mut rec)?;
            cost += c;
            check_s2(&perms, access).map_err(|kind| Fault {
                kind,
                stage: Stage::S2,
                level: 3,
                va,
                ipa: ipa_page | (va & 0xfff),
                wnr,
                s1ptw: false,
            })?;
            (pa, Some(perms))
        }
        None => (ipa_page, None),
    };

    if cfg.s1_enabled || cfg.vttbr.is_some() {
        let entry_asid = if cfg.s1_enabled && !s1_perms.global { Some(asid) } else { None };
        tlb.insert(vmid, va, TlbEntry { asid: entry_asid, pa_page, s1: s1_perms, s2: s2_perms });
        if let (Some(root), Some(frames)) = (wroot, rec.frames()) {
            tlb.wcache_fill(mem, root, vttbr_key, va, ipa_page, pa_page, s1_perms, s2_perms, frames);
        }
    }

    Ok(Translation { pa: pa_page | (va & 0xfff), cost, tlb_hit: false })
}

/// Result of a successful instruction fetch via [`fetch`].
#[derive(Debug, Clone, Copy)]
pub struct Fetched {
    /// Final physical address of the fetched word.
    pub pa: u64,
    /// Modelled translation cost — bit-identical to what [`translate`]
    /// would have returned for this fetch.
    pub cost: u64,
    pub word: u32,
    pub insn: Insn,
}

fn fetch_bus_fault(va: u64) -> Fault {
    Fault { kind: FaultKind::Translation, stage: Stage::S1, level: 3, va, ipa: 0, wnr: false, s1ptw: false }
}

/// The walk cost [`translate`] charges for a fetch missing the TLB in the
/// current regime. Deterministic given the regime flags: stage-1 walks cost
/// `stage1_walk` (or `nested_walk` under stage 2, whose leaf stage-2
/// lookup adds `stage2_walk`), identity-plus-stage-2 costs one stage-2
/// walk, and the bare identity regime walks nothing.
fn fetch_walk_cost(model: &CycleModel, cfg: &WalkConfig) -> u64 {
    match (cfg.s1_enabled, cfg.vttbr.is_some()) {
        (true, true) => model.nested_walk() + model.stage2_walk(),
        (true, false) => model.stage1_walk(),
        (false, true) => model.stage2_walk(),
        (false, false) => 0,
    }
}

/// Stage-1 root (baddr) governing `va`'s half, or `None` for non-canonical
/// addresses — those always fault and are never cached.
fn s1_root_for(cfg: &WalkConfig, va: u64) -> Option<u64> {
    match va >> 48 {
        LOW_HALF => Some(ttbr::baddr(cfg.ttbr0)),
        HIGH_HALF => Some(ttbr::baddr(cfg.ttbr1)),
        _ => None,
    }
}

/// Instruction fetch: translation + 32-bit read + decode, with an optional
/// decoded-block fast path (see the [`crate::icache`] module docs for the
/// coherence rules).
///
/// Errors carry the cycle cost the caller must charge before taking the
/// fault: `stage1_walk` for translation faults (the interpreter's
/// historical accounting) or the translation cost for a bus error on a
/// successfully translated PC.
///
/// With `use_cache = false` this is exactly [`translate`] + `read_u32` +
/// `Insn::decode`. With `use_cache = true` the decoded-block cache may skip
/// that host-side work, but every modelled side effect is replayed: the TLB
/// sees the same single lookup, the same insert, and the same hit/miss
/// statistics, and the returned `cost` is bit-identical.
pub fn fetch(
    mem: &PhysMem,
    tlb: &mut Tlb,
    model: &CycleModel,
    cfg: &WalkConfig,
    va: u64,
    actx: &AccessCtx,
    use_cache: bool,
) -> Result<Fetched, (Fault, u64)> {
    if !use_cache {
        let t = translate(mem, tlb, model, cfg, va, Access::Fetch, actx).map_err(|f| (f, model.stage1_walk()))?;
        let word = mem.read_u32(t.pa).ok_or((fetch_bus_fault(va), t.cost))?;
        return Ok(Fetched { pa: t.pa, cost: t.cost, word, insn: Insn::decode(word) });
    }

    let vmid = cfg.vmid();
    let asid = cfg.asid();
    let has_tlb = cfg.s1_enabled || cfg.vttbr.is_some();

    // Memoised fast path: while the TLB generation is unchanged since this
    // block was last proven equivalent to a free L1 hit, skip the lookup
    // entirely and just replay its statistics (cost 0, one hit).
    if has_tlb && !actx.unpriv {
        if let Some((pa, word, insn)) = tlb.fetch_fast(mem, vmid, asid, actx.el, va, cfg.s1_enabled, cfg.wxn) {
            return Ok(Fetched { pa, cost: 0, word, insn });
        }
    }

    // Unprivileged (LDTR-style) fetches don't exist architecturally, but
    // `fetch` is public: permission checks differ under `unpriv`, and the
    // cache tags entries by EL only, so bypass it in that case.
    let root = if actx.unpriv {
        None
    } else if cfg.s1_enabled {
        s1_root_for(cfg, va)
    } else {
        Some(0)
    };
    let vttbr_base = cfg.vttbr.map(vttbr::baddr);

    let pre = if has_tlb { tlb.lookup_leveled(vmid, asid, va) } else { None };

    if let Some(root) = root {
        let hit = tlb.icache_mut().probe(mem, vmid, asid, actx.el, va, cfg.s1_enabled, cfg.wxn, root, vttbr_base);
        if let Some(hit) = hit {
            match (pre, hit.snapshot) {
                // The main TLB hit and the block was decoded from that very
                // entry: PA and permission outcomes are reproducible, so
                // serve the block at the TLB-hit cost.
                (Some((entry, level)), Some(snap)) if snap == entry => {
                    let cost = match level {
                        TlbHit::L1 => 0,
                        TlbHit::L2 => model.l2_tlb_hit,
                    };
                    // From here on (until the next structural TLB change),
                    // this block is a guaranteed free L1 hit: an L2 hit
                    // was just promoted, an L1 hit stays put. Arm the
                    // lookup-free memo.
                    tlb.arm_fast(vmid, asid, actx.el, va);
                    return Ok(Fetched { pa: hit.pa, cost, word: hit.word, insn: hit.insn });
                }
                // TLB miss, but the fill-time roots still govern the
                // regime: replay the walk's outcome — re-insert the
                // snapshot entry and charge the deterministic walk cost.
                (None, Some(snap)) if has_tlb && hit.roots_match => {
                    tlb.count_replayed_walk(cfg.s1_enabled, cfg.vttbr.is_some());
                    tlb.insert(vmid, va, snap);
                    return Ok(Fetched {
                        pa: hit.pa,
                        cost: fetch_walk_cost(model, cfg),
                        word: hit.word,
                        insn: hit.insn,
                    });
                }
                // Bare identity regime: no TLB interaction, no walk cost.
                (None, None) if !has_tlb && hit.roots_match => {
                    return Ok(Fetched { pa: hit.pa, cost: 0, word: hit.word, insn: hit.insn });
                }
                _ => {}
            }
        }
    }

    // Slow path. The TLB lookup above already counted, so continue from it.
    let t = translate_after_lookup(mem, tlb, model, cfg, va, Access::Fetch, actx, pre).map_err(|f| {
        tlb.walk.count_fault(&f);
        (f, model.stage1_walk())
    })?;
    let word = mem.read_u32(t.pa).ok_or((fetch_bus_fault(va), t.cost))?;
    let insn = Insn::decode(word);
    if let Some(root) = root {
        // Snapshot the entry this fetch hit or inserted; a later lookup of
        // the same (vmid, asid, va) returns exactly this entry, which is
        // what makes the fast path's equality check sound.
        let snapshot = if has_tlb { tlb.peek(vmid, asid, va) } else { None };
        let info = FillInfo {
            asid: snapshot.and_then(|s| s.asid),
            el: actx.el,
            s1_enabled: cfg.s1_enabled,
            wxn: cfg.wxn,
            root,
            vttbr: vttbr_base,
            snapshot,
            pa_page: t.pa & !0xfff,
        };
        tlb.icache_mut().fill(mem, vmid, va, info, word, insn);
    }
    Ok(Fetched { pa: t.pa, cost: t.cost, word, insn })
}

/// Walk the stage-1 tree. Returns the IPA *page* of `va`, the leaf
/// permissions, and the walk cost. Every table frame read is reported to
/// `rec` for walk-cache fills.
#[allow(clippy::too_many_arguments)]
fn walk_stage1(
    mem: &PhysMem,
    model: &CycleModel,
    cfg: &WalkConfig,
    va: u64,
    access: Access,
    _actx: &AccessCtx,
    rec: &mut FrameRec,
) -> Result<(u64, S1Perms, u64), Fault> {
    let wnr = access == Access::Write;
    let top = va >> 48;
    let root = if top == LOW_HALF {
        ttbr::baddr(cfg.ttbr0)
    } else if top == HIGH_HALF {
        ttbr::baddr(cfg.ttbr1)
    } else {
        return Err(Fault { kind: FaultKind::Translation, stage: Stage::S1, level: 0, va, ipa: 0, wnr, s1ptw: false });
    };

    let cost = if cfg.vttbr.is_some() { model.nested_walk() } else { model.stage1_walk() };
    let mut table = root;
    for level in 0..=3u8 {
        // When stage 2 is on, the stage-1 descriptor address is itself an
        // IPA and must be translated (s1ptw faults).
        let desc_ipa = table + s1_idx(va, level) * 8;
        let desc_pa = match cfg.vttbr {
            Some(vt) => {
                let (pa, perms, _) =
                    walk_stage2(mem, model, vttbr::baddr(vt), desc_ipa & !0xfff, va, Access::Read, wnr, true, rec)?;
                check_s2(&perms, Access::Read).map_err(|kind| Fault {
                    kind,
                    stage: Stage::S2,
                    level,
                    va,
                    ipa: desc_ipa,
                    wnr,
                    s1ptw: true,
                })?;
                pa | (desc_ipa & 0xfff)
            }
            None => desc_ipa,
        };
        rec.record(mem, desc_pa);
        let desc = mem.read_u64(desc_pa).ok_or(Fault {
            kind: FaultKind::Translation,
            stage: Stage::S1,
            level,
            va,
            ipa: 0,
            wnr,
            s1ptw: false,
        })?;
        if !pte::is_valid(desc) {
            return Err(Fault { kind: FaultKind::Translation, stage: Stage::S1, level, va, ipa: 0, wnr, s1ptw: false });
        }
        if pte::is_table(desc, level) {
            table = pte::desc_oa(desc);
            continue;
        }
        // Leaf: block at level 1/2 or page at level 3.
        let is_leaf = pte::is_block(desc, level) || (level == 3 && desc & pte::TABLE_OR_PAGE != 0);
        if !is_leaf {
            return Err(Fault { kind: FaultKind::Translation, stage: Stage::S1, level, va, ipa: 0, wnr, s1ptw: false });
        }
        if desc & pte::AF == 0 {
            return Err(Fault { kind: FaultKind::AccessFlag, stage: Stage::S1, level, va, ipa: 0, wnr, s1ptw: false });
        }
        let perms = S1Perms::from_bits(desc);
        let block_shift = 39 - 9 * level as u64; // 21 for L2, 30 for L1, 12 for L3
        let within = va & ((1u64 << block_shift) - 1) & !0xfff;
        let ipa_page = pte::desc_oa(desc) | within;
        return Ok((ipa_page, perms, cost));
    }
    unreachable!("level-3 descriptors always terminate the loop");
}

/// Walk a stage-2 tree for an IPA page. Returns the PA page, leaf
/// permissions, and extra cost (0 — stage-2 cost is folded into the
/// caller's nested-walk estimate; standalone stage-2 walks charge here).
#[allow(clippy::too_many_arguments)]
fn walk_stage2(
    mem: &PhysMem,
    model: &CycleModel,
    root: u64,
    ipa_page: u64,
    va: u64,
    _access: Access,
    wnr: bool,
    s1ptw: bool,
    rec: &mut FrameRec,
) -> Result<(u64, S2Perms, u64), Fault> {
    let mut table = root;
    let cost = if s1ptw { 0 } else { model.stage2_walk() };
    for level in 1..=3u8 {
        let desc_pa = table + s2_idx(ipa_page, level) * 8;
        rec.record(mem, desc_pa);
        let desc = mem.read_u64(desc_pa).ok_or(Fault {
            kind: FaultKind::Translation,
            stage: Stage::S2,
            level,
            va,
            ipa: ipa_page,
            wnr,
            s1ptw,
        })?;
        if !pte::is_valid(desc) {
            return Err(Fault { kind: FaultKind::Translation, stage: Stage::S2, level, va, ipa: ipa_page, wnr, s1ptw });
        }
        if pte::is_table(desc, level) {
            table = pte::desc_oa(desc);
            continue;
        }
        let is_leaf = pte::is_block(desc, level) || (level == 3 && desc & pte::TABLE_OR_PAGE != 0);
        if !is_leaf {
            return Err(Fault { kind: FaultKind::Translation, stage: Stage::S2, level, va, ipa: ipa_page, wnr, s1ptw });
        }
        if desc & pte::AF == 0 {
            return Err(Fault { kind: FaultKind::AccessFlag, stage: Stage::S2, level, va, ipa: ipa_page, wnr, s1ptw });
        }
        let perms = S2Perms::from_bits(desc);
        let block_shift = 39 - 9 * level as u64;
        let within = ipa_page & ((1u64 << block_shift) - 1) & !0xfff;
        let pa_page = pte::desc_oa(desc) | within;
        return Ok((pa_page, perms, cost));
    }
    unreachable!("level-3 descriptors always terminate the loop");
}

/// Stage-1 permission check.
///
/// `s1_enabled = false` (identity regime) skips checks entirely.
fn check_s1(p: &S1Perms, access: Access, actx: &AccessCtx, wxn: bool, s1_enabled: bool) -> Result<(), FaultKind> {
    if !s1_enabled {
        return Ok(());
    }
    let as_el0 = actx.el == ExceptionLevel::El0 || actx.unpriv;
    match access {
        Access::Fetch => {
            if as_el0 {
                if !p.el0 || !p.user_exec {
                    return Err(FaultKind::Permission);
                }
            } else {
                // Privileged fetch: PXN, WXN, and the architectural rule
                // that EL0-writable pages are never privileged-executable.
                if !p.priv_exec || (wxn && p.write) || (p.el0 && p.write) {
                    return Err(FaultKind::Permission);
                }
            }
        }
        Access::Read => {
            if as_el0 {
                if !p.el0 {
                    return Err(FaultKind::Permission);
                }
            } else if actx.pan && p.el0 {
                return Err(FaultKind::Permission);
            }
        }
        Access::Write => {
            if !p.write {
                return Err(FaultKind::Permission);
            }
            if as_el0 {
                if !p.el0 {
                    return Err(FaultKind::Permission);
                }
            } else if actx.pan && p.el0 {
                return Err(FaultKind::Permission);
            }
        }
    }
    Ok(())
}

/// Stage-2 permission check.
fn check_s2(p: &S2Perms, access: Access) -> Result<(), FaultKind> {
    let ok = match access {
        Access::Read => p.read,
        Access::Write => p.write,
        Access::Fetch => p.read && p.exec,
    };
    if ok {
        Ok(())
    } else {
        Err(FaultKind::Permission)
    }
}

// ---------------------------------------------------------------------------
// Table construction helpers (used by the kernel substrate and LightZone).
// ---------------------------------------------------------------------------

/// Allocate an empty (all-invalid) table root.
pub fn alloc_table(mem: &mut PhysMem) -> u64 {
    mem.alloc_frame()
}

fn ensure_table(mem: &mut PhysMem, table: u64, idx: u64) -> Result<u64, LzFault> {
    let desc_pa = table + idx * 8;
    let desc = mem.read_u64(desc_pa).ok_or(LzFault::UnbackedFrame { pa: desc_pa })?;
    if pte::is_valid(desc) {
        if desc & pte::TABLE_OR_PAGE == 0 {
            // Remapping over a block mapping: the tree shape disagrees
            // with the caller's request.
            return Err(LzFault::BadDescriptor { pa: desc_pa, desc });
        }
        Ok(pte::desc_oa(desc))
    } else {
        let next = mem.alloc_frame();
        mem.write_u64(desc_pa, pte::table_desc(next));
        Ok(next)
    }
}

fn write_leaf(mem: &mut PhysMem, desc_pa: u64, desc: u64) -> Result<u64, LzFault> {
    let old = mem.read_u64(desc_pa).ok_or(LzFault::UnbackedFrame { pa: desc_pa })?;
    mem.write_u64(desc_pa, desc);
    Ok(old)
}

/// Fallible [`s1_map_page`]: errors instead of panicking when the tree
/// is malformed (guest-corruptible trees must not kill the host).
pub fn try_s1_map_page(mem: &mut PhysMem, root: u64, va: u64, pa: u64, perms: S1Perms) -> Result<u64, LzFault> {
    let mut table = root;
    for level in 0..3u8 {
        table = ensure_table(mem, table, s1_idx(va, level))?;
    }
    write_leaf(mem, table + s1_idx(va, 3) * 8, pte::s1_page_desc(pa, perms))
}

/// Map one 4 KB page in a stage-1 tree, creating intermediate tables.
/// Returns the previous leaf descriptor (0 if none).
///
/// # Panics
///
/// Panics on a malformed tree — host setup paths only; guest-reachable
/// callers use [`try_s1_map_page`].
pub fn s1_map_page(mem: &mut PhysMem, root: u64, va: u64, pa: u64, perms: S1Perms) -> u64 {
    try_s1_map_page(mem, root, va, pa, perms).unwrap_or_else(|e| panic!("s1_map_page: {e}"))
}

/// Fallible [`s1_map_block`].
pub fn try_s1_map_block(mem: &mut PhysMem, root: u64, va: u64, pa: u64, perms: S1Perms) -> Result<u64, LzFault> {
    if va & 0x1f_ffff != 0 || pa & 0x1f_ffff != 0 {
        return Err(LzFault::Misaligned { addr: va | pa });
    }
    let mut table = root;
    for level in 0..2u8 {
        table = ensure_table(mem, table, s1_idx(va, level))?;
    }
    write_leaf(mem, table + s1_idx(va, 2) * 8, pte::s1_block_desc(pa, perms))
}

/// Map one 2 MiB block at level 2 in a stage-1 tree.
///
/// # Panics
///
/// Panics unless `va` and `pa` are 2 MiB-aligned and the tree is well
/// formed; guest-reachable callers use [`try_s1_map_block`].
pub fn s1_map_block(mem: &mut PhysMem, root: u64, va: u64, pa: u64, perms: S1Perms) -> u64 {
    try_s1_map_block(mem, root, va, pa, perms).unwrap_or_else(|e| panic!("s1_map_block: {e}"))
}

/// Clear the leaf descriptor for `va` in a stage-1 tree (page or block).
/// Returns the removed descriptor, or `None` if nothing was mapped.
pub fn s1_unmap(mem: &mut PhysMem, root: u64, va: u64) -> Option<u64> {
    let mut table = root;
    for level in 0..=3u8 {
        let desc_pa = table + s1_idx(va, level) * 8;
        let desc = mem.read_u64(desc_pa)?;
        if !pte::is_valid(desc) {
            return None;
        }
        if pte::is_table(desc, level) {
            table = pte::desc_oa(desc);
            continue;
        }
        mem.write_u64(desc_pa, 0);
        return Some(desc);
    }
    None
}

/// Read back the leaf mapping for `va` in a stage-1 tree.
pub fn s1_lookup(mem: &PhysMem, root: u64, va: u64) -> Option<(u64, S1Perms, u8)> {
    let mut table = root;
    for level in 0..=3u8 {
        let desc = mem.read_u64(table + s1_idx(va, level) * 8)?;
        if !pte::is_valid(desc) {
            return None;
        }
        if pte::is_table(desc, level) {
            table = pte::desc_oa(desc);
            continue;
        }
        let block_shift = 39 - 9 * level as u64;
        let within = va & ((1u64 << block_shift) - 1) & !0xfff;
        return Some((pte::desc_oa(desc) | within, S1Perms::from_bits(desc), level));
    }
    None
}

/// Fallible [`s2_map_page`].
pub fn try_s2_map_page(mem: &mut PhysMem, root: u64, ipa: u64, pa: u64, perms: S2Perms) -> Result<u64, LzFault> {
    let mut table = root;
    for level in 1..3u8 {
        table = ensure_table(mem, table, s2_idx(ipa, level))?;
    }
    write_leaf(mem, table + s2_idx(ipa, 3) * 8, pte::s2_page_desc(pa, perms))
}

/// Map one 4 KB page in a stage-2 tree (3 levels, root at level 1).
///
/// # Panics
///
/// Panics on a malformed tree — host setup paths only; guest-reachable
/// callers use [`try_s2_map_page`].
pub fn s2_map_page(mem: &mut PhysMem, root: u64, ipa: u64, pa: u64, perms: S2Perms) -> u64 {
    try_s2_map_page(mem, root, ipa, pa, perms).unwrap_or_else(|e| panic!("s2_map_page: {e}"))
}

/// Fallible [`s2_map_block`].
pub fn try_s2_map_block(mem: &mut PhysMem, root: u64, ipa: u64, pa: u64, perms: S2Perms) -> Result<u64, LzFault> {
    if ipa & 0x1f_ffff != 0 || pa & 0x1f_ffff != 0 {
        return Err(LzFault::Misaligned { addr: ipa | pa });
    }
    let table = ensure_table(mem, root, s2_idx(ipa, 1))?;
    write_leaf(mem, table + s2_idx(ipa, 2) * 8, pte::s2_block_desc(pa, perms))
}

/// Map one 2 MiB block at level 2 in a stage-2 tree.
pub fn s2_map_block(mem: &mut PhysMem, root: u64, ipa: u64, pa: u64, perms: S2Perms) -> u64 {
    try_s2_map_block(mem, root, ipa, pa, perms).unwrap_or_else(|e| panic!("s2_map_block: {e}"))
}

/// Clear the stage-2 leaf for `ipa`. Returns the removed descriptor.
pub fn s2_unmap(mem: &mut PhysMem, root: u64, ipa: u64) -> Option<u64> {
    let mut table = root;
    for level in 1..=3u8 {
        let desc_pa = table + s2_idx(ipa, level) * 8;
        let desc = mem.read_u64(desc_pa)?;
        if !pte::is_valid(desc) {
            return None;
        }
        if pte::is_table(desc, level) {
            table = pte::desc_oa(desc);
            continue;
        }
        mem.write_u64(desc_pa, 0);
        return Some(desc);
    }
    None
}

/// Free every *table* frame of a stage-1 tree (root plus intermediate
/// levels). Leaf data frames are owned by whoever mapped them and are
/// not touched. Teardown is tolerant like `LzTable::free_tree`: a
/// corrupted descriptor costs at worst a leaked frame, never a panic —
/// process reaping must survive trees a dying guest damaged.
pub fn free_s1_tree(mem: &mut PhysMem, root: u64) {
    fn walk(mem: &mut PhysMem, table: u64, level: u8) {
        if level < 3 {
            for idx in 0..512u64 {
                let desc = mem.read_u64(table + idx * 8).unwrap_or(0);
                if pte::is_valid(desc) && pte::is_table(desc, level) {
                    walk(mem, pte::desc_oa(desc), level + 1);
                }
            }
        }
        mem.try_free_frame(table);
    }
    walk(mem, root, 0);
}

/// Free every *table* frame of a stage-2 tree (root at level 1). Leaf
/// target frames (guest data, stage-1 tables) are owned elsewhere and
/// are not touched. Same tolerant teardown contract as
/// [`free_s1_tree`].
pub fn free_s2_tree(mem: &mut PhysMem, root: u64) {
    fn walk(mem: &mut PhysMem, table: u64, level: u8) {
        if level < 3 {
            for idx in 0..512u64 {
                let desc = mem.read_u64(table + idx * 8).unwrap_or(0);
                if pte::is_valid(desc) && pte::is_table(desc, level) {
                    walk(mem, pte::desc_oa(desc), level + 1);
                }
            }
        }
        mem.try_free_frame(table);
    }
    walk(mem, root, 1);
}

/// Read back the stage-2 leaf mapping for `ipa`.
pub fn s2_lookup(mem: &PhysMem, root: u64, ipa: u64) -> Option<(u64, S2Perms, u8)> {
    let mut table = root;
    for level in 1..=3u8 {
        let desc = mem.read_u64(table + s2_idx(ipa, level) * 8)?;
        if !pte::is_valid(desc) {
            return None;
        }
        if pte::is_table(desc, level) {
            table = pte::desc_oa(desc);
            continue;
        }
        let block_shift = 39 - 9 * level as u64;
        let within = ipa & ((1u64 << block_shift) - 1) & !0xfff;
        return Some((pte::desc_oa(desc) | within, S2Perms::from_bits(desc), level));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use lz_arch::Platform;

    fn setup() -> (PhysMem, Tlb, CycleModel) {
        (PhysMem::new(), Tlb::new(64), Platform::CortexA55.model())
    }

    fn priv_ctx() -> AccessCtx {
        AccessCtx { el: ExceptionLevel::El1, pan: false, unpriv: false }
    }

    fn user_ctx() -> AccessCtx {
        AccessCtx { el: ExceptionLevel::El0, pan: false, unpriv: false }
    }

    fn user_rw() -> S1Perms {
        S1Perms { read: true, write: true, user_exec: false, priv_exec: false, el0: true, global: false }
    }

    #[test]
    fn s1_map_walk_roundtrip() {
        let (mut mem, mut tlb, model) = setup();
        let root = alloc_table(&mut mem);
        let frame = mem.alloc_frame();
        s1_map_page(&mut mem, root, 0x40_0000, frame, user_rw());
        let cfg = WalkConfig { ttbr0: ttbr::pack(1, root), ttbr1: 0, s1_enabled: true, wxn: false, vttbr: None };
        let t = translate(&mem, &mut tlb, &model, &cfg, 0x40_0123, Access::Read, &user_ctx()).unwrap();
        assert_eq!(t.pa, frame + 0x123);
        assert!(!t.tlb_hit);
        assert!(t.cost > 0);
        // Second access hits the TLB.
        let t2 = translate(&mem, &mut tlb, &model, &cfg, 0x40_0456, Access::Read, &user_ctx()).unwrap();
        assert!(t2.tlb_hit);
        assert_eq!(t2.cost, 0);
    }

    #[test]
    fn unmapped_va_translation_fault() {
        let (mut mem, mut tlb, model) = setup();
        let root = alloc_table(&mut mem);
        let cfg = WalkConfig { ttbr0: ttbr::pack(1, root), ttbr1: 0, s1_enabled: true, wxn: false, vttbr: None };
        let f = translate(&mem, &mut tlb, &model, &cfg, 0x40_0000, Access::Read, &user_ctx()).unwrap_err();
        assert_eq!(f.kind, FaultKind::Translation);
        assert_eq!(f.stage, Stage::S1);
        assert_eq!(f.level, 0);
    }

    #[test]
    fn non_canonical_va_faults() {
        let (mut mem, mut tlb, model) = setup();
        let root = alloc_table(&mut mem);
        let cfg = WalkConfig { ttbr0: ttbr::pack(1, root), ttbr1: 0, s1_enabled: true, wxn: false, vttbr: None };
        let f = translate(&mem, &mut tlb, &model, &cfg, 0x00ff_0000_0000_0000, Access::Read, &user_ctx());
        assert!(f.is_err());
    }

    #[test]
    fn high_half_uses_ttbr1() {
        let (mut mem, mut tlb, model) = setup();
        let root0 = alloc_table(&mut mem);
        let root1 = alloc_table(&mut mem);
        let frame = mem.alloc_frame();
        let va = 0xffff_0000_dead_0000u64;
        s1_map_page(&mut mem, root1, va, frame, user_rw());
        let cfg = WalkConfig {
            ttbr0: ttbr::pack(1, root0),
            ttbr1: ttbr::pack(0, root1),
            s1_enabled: true,
            wxn: false,
            vttbr: None,
        };
        let t = translate(&mem, &mut tlb, &model, &cfg, va + 8, Access::Read, &user_ctx()).unwrap();
        assert_eq!(t.pa, frame + 8);
    }

    #[test]
    fn user_cannot_touch_kernel_page() {
        let (mut mem, mut tlb, model) = setup();
        let root = alloc_table(&mut mem);
        let frame = mem.alloc_frame();
        s1_map_page(&mut mem, root, 0x40_0000, frame, S1Perms::kernel_data());
        let cfg = WalkConfig { ttbr0: ttbr::pack(1, root), ttbr1: 0, s1_enabled: true, wxn: false, vttbr: None };
        let f = translate(&mem, &mut tlb, &model, &cfg, 0x40_0000, Access::Read, &user_ctx()).unwrap_err();
        assert_eq!(f.kind, FaultKind::Permission);
        // But EL1 can.
        assert!(translate(&mem, &mut tlb, &model, &cfg, 0x40_0000, Access::Read, &priv_ctx()).is_ok());
    }

    #[test]
    fn pan_blocks_privileged_access_to_user_pages() {
        let (mut mem, mut tlb, model) = setup();
        let root = alloc_table(&mut mem);
        let frame = mem.alloc_frame();
        s1_map_page(&mut mem, root, 0x40_0000, frame, user_rw());
        let cfg = WalkConfig { ttbr0: ttbr::pack(1, root), ttbr1: 0, s1_enabled: true, wxn: false, vttbr: None };
        let pan_ctx = AccessCtx { el: ExceptionLevel::El1, pan: true, unpriv: false };
        // PAN set: privileged read and write both fault.
        for access in [Access::Read, Access::Write] {
            let f = translate(&mem, &mut tlb, &model, &cfg, 0x40_0000, access, &pan_ctx).unwrap_err();
            assert_eq!(f.kind, FaultKind::Permission, "{access:?}");
        }
        // PAN clear: allowed.
        assert!(translate(&mem, &mut tlb, &model, &cfg, 0x40_0000, Access::Read, &priv_ctx()).is_ok());
        // Unprivileged (LDTR-style) access ignores PAN.
        let unpriv = AccessCtx { el: ExceptionLevel::El1, pan: true, unpriv: true };
        assert!(translate(&mem, &mut tlb, &model, &cfg, 0x40_0000, Access::Read, &unpriv).is_ok());
    }

    #[test]
    fn pan_check_applies_on_tlb_hit_path() {
        let (mut mem, mut tlb, model) = setup();
        let root = alloc_table(&mut mem);
        let frame = mem.alloc_frame();
        s1_map_page(&mut mem, root, 0x40_0000, frame, user_rw());
        let cfg = WalkConfig { ttbr0: ttbr::pack(1, root), ttbr1: 0, s1_enabled: true, wxn: false, vttbr: None };
        // Prime the TLB with PAN clear…
        assert!(translate(&mem, &mut tlb, &model, &cfg, 0x40_0000, Access::Read, &priv_ctx()).is_ok());
        // …then the same cached entry must still fault under PAN.
        let pan_ctx = AccessCtx { el: ExceptionLevel::El1, pan: true, unpriv: false };
        let f = translate(&mem, &mut tlb, &model, &cfg, 0x40_0000, Access::Read, &pan_ctx).unwrap_err();
        assert_eq!(f.kind, FaultKind::Permission);
    }

    #[test]
    fn write_to_readonly_faults() {
        let (mut mem, mut tlb, model) = setup();
        let root = alloc_table(&mut mem);
        let frame = mem.alloc_frame();
        let ro = S1Perms { write: false, ..user_rw() };
        s1_map_page(&mut mem, root, 0x40_0000, frame, ro);
        let cfg = WalkConfig { ttbr0: ttbr::pack(1, root), ttbr1: 0, s1_enabled: true, wxn: false, vttbr: None };
        let f = translate(&mem, &mut tlb, &model, &cfg, 0x40_0000, Access::Write, &user_ctx()).unwrap_err();
        assert_eq!(f.kind, FaultKind::Permission);
        assert!(f.wnr);
        assert!(translate(&mem, &mut tlb, &model, &cfg, 0x40_0000, Access::Read, &user_ctx()).is_ok());
    }

    #[test]
    fn uxn_pxn_enforced() {
        let (mut mem, mut tlb, model) = setup();
        let root = alloc_table(&mut mem);
        let frame = mem.alloc_frame();
        // User-executable, not priv-executable, read-only.
        let xo = S1Perms { read: true, write: false, user_exec: true, priv_exec: false, el0: true, global: false };
        s1_map_page(&mut mem, root, 0x40_0000, frame, xo);
        let cfg = WalkConfig { ttbr0: ttbr::pack(1, root), ttbr1: 0, s1_enabled: true, wxn: false, vttbr: None };
        assert!(translate(&mem, &mut tlb, &model, &cfg, 0x40_0000, Access::Fetch, &user_ctx()).is_ok());
        let f = translate(&mem, &mut tlb, &model, &cfg, 0x40_0000, Access::Fetch, &priv_ctx()).unwrap_err();
        assert_eq!(f.kind, FaultKind::Permission);
    }

    #[test]
    fn el1_cannot_execute_user_writable_page() {
        // The PANIC attack surface: a page writable from EL0 must never be
        // privileged-executable, even with PXN clear.
        let (mut mem, mut tlb, model) = setup();
        let root = alloc_table(&mut mem);
        let frame = mem.alloc_frame();
        let wx = S1Perms { read: true, write: true, user_exec: true, priv_exec: true, el0: true, global: false };
        s1_map_page(&mut mem, root, 0x40_0000, frame, wx);
        let cfg = WalkConfig { ttbr0: ttbr::pack(1, root), ttbr1: 0, s1_enabled: true, wxn: false, vttbr: None };
        let f = translate(&mem, &mut tlb, &model, &cfg, 0x40_0000, Access::Fetch, &priv_ctx()).unwrap_err();
        assert_eq!(f.kind, FaultKind::Permission);
    }

    #[test]
    fn wxn_blocks_writable_exec() {
        let (mut mem, mut tlb, model) = setup();
        let root = alloc_table(&mut mem);
        let frame = mem.alloc_frame();
        let wx = S1Perms { read: true, write: true, user_exec: false, priv_exec: true, el0: false, global: false };
        s1_map_page(&mut mem, root, 0x40_0000, frame, wx);
        let mut cfg = WalkConfig { ttbr0: ttbr::pack(1, root), ttbr1: 0, s1_enabled: true, wxn: true, vttbr: None };
        let f = translate(&mem, &mut tlb, &model, &cfg, 0x40_0000, Access::Fetch, &priv_ctx()).unwrap_err();
        assert_eq!(f.kind, FaultKind::Permission);
        cfg.wxn = false;
        assert!(translate(&mem, &mut tlb, &model, &cfg, 0x40_0000, Access::Fetch, &priv_ctx()).is_ok());
    }

    #[test]
    fn stage2_bounds_stage1() {
        // Even if stage-1 maps an IPA, a missing stage-2 entry faults to
        // stage 2 — the process-kernel isolation backstop (§5.1.2).
        let (mut mem, mut tlb, model) = setup();
        let s1_root = alloc_table(&mut mem);
        let s2_root = alloc_table(&mut mem);
        let frame = mem.alloc_frame();
        let fake_ipa = 0x1000u64;
        s1_map_page(&mut mem, s1_root, 0x40_0000, fake_ipa, user_rw());
        // Stage-2 must also map the stage-1 table pages themselves.
        {
            let pa = s1_root;
            s2_map_page(&mut mem, s2_root, pa, pa, S2Perms::ro());
        }
        // Map every intermediate table page identity at stage 2.
        for f in 0..mem.allocated_frames() as u64 + 16 {
            let pa = (1 << 20) + f * 4096;
            if mem.is_mapped(pa) && pa != frame {
                s2_map_page(&mut mem, s2_root, pa, pa, S2Perms::ro());
            }
        }
        let cfg = WalkConfig {
            ttbr0: ttbr::pack(1, s1_root),
            ttbr1: 0,
            s1_enabled: true,
            wxn: false,
            vttbr: Some(vttbr::pack(3, s2_root)),
        };
        // IPA 0x1000 not mapped at stage 2 -> stage-2 translation fault.
        let f2 = translate(&mem, &mut tlb, &model, &cfg, 0x40_0000, Access::Read, &user_ctx()).unwrap_err();
        assert_eq!(f2.stage, Stage::S2);
        assert_eq!(f2.kind, FaultKind::Translation);
        assert!(!f2.s1ptw);
        assert_eq!(f2.ipa & !0xfff, fake_ipa);
    }

    #[test]
    fn stage2_translates_fake_to_real() {
        let (mut mem, mut tlb, model) = setup();
        let s1_root = alloc_table(&mut mem);
        let s2_root = alloc_table(&mut mem);
        let real = mem.alloc_frame();
        let fake_ipa = 0x2000u64;
        s1_map_page(&mut mem, s1_root, 0x40_0000, fake_ipa, user_rw());
        s2_map_page(&mut mem, s2_root, fake_ipa, real, S2Perms::rwx());
        // Identity-map every currently allocated frame (tables) at stage 2.
        let max = (1 << 20) + mem.allocated_frames() as u64 * 4096 + 0x10000;
        let mut pa = 1 << 20;
        while pa < max {
            if mem.is_mapped(pa) && pa != real {
                s2_map_page(&mut mem, s2_root, pa, pa, S2Perms::ro());
            }
            pa += 4096;
        }
        let cfg = WalkConfig {
            ttbr0: ttbr::pack(1, s1_root),
            ttbr1: 0,
            s1_enabled: true,
            wxn: false,
            vttbr: Some(vttbr::pack(3, s2_root)),
        };
        let t = translate(&mem, &mut tlb, &model, &cfg, 0x40_0042, Access::Read, &user_ctx()).unwrap();
        assert_eq!(t.pa, real + 0x42, "stage-2 maps fake IPA to the real frame");
        // Stage-2 RO mapping rejects writes.
        s2_map_page(&mut mem, s2_root, fake_ipa, real, S2Perms::ro());
        tlb.invalidate_all();
        let f = translate(&mem, &mut tlb, &model, &cfg, 0x40_0042, Access::Write, &user_ctx()).unwrap_err();
        assert_eq!(f.stage, Stage::S2);
        assert_eq!(f.kind, FaultKind::Permission);
    }

    #[test]
    fn block_mapping_2mb() {
        let (mut mem, mut tlb, model) = setup();
        let root = alloc_table(&mut mem);
        let base = mem.alloc_contiguous(512);
        // alloc_contiguous starts at whatever next_frame is; align VA only.
        let va = 0x4000_0000u64;
        // The PA must be 2 MiB aligned for a block; allocate fresh aligned
        // space by rounding.
        if base & 0x1f_ffff != 0 {
            // Fall back to page mappings if unaligned (environment detail).
            for i in 0..512 {
                s1_map_page(&mut mem, root, va + i * 4096, base + i * 4096, user_rw());
            }
        } else {
            s1_map_block(&mut mem, root, va, base, user_rw());
        }
        let cfg = WalkConfig { ttbr0: ttbr::pack(1, root), ttbr1: 0, s1_enabled: true, wxn: false, vttbr: None };
        let t = translate(&mem, &mut tlb, &model, &cfg, va + 0x12_3456, Access::Read, &user_ctx()).unwrap();
        assert_eq!(t.pa, base + 0x12_3456);
    }

    #[test]
    fn asid_switch_changes_translation_without_invalidate() {
        // Two roots map the same VA to different frames under different
        // ASIDs: switching TTBR0 must flip the translation with no TLBI.
        let (mut mem, mut tlb, model) = setup();
        let root_a = alloc_table(&mut mem);
        let root_b = alloc_table(&mut mem);
        let fa = mem.alloc_frame();
        let fb = mem.alloc_frame();
        s1_map_page(&mut mem, root_a, 0x40_0000, fa, user_rw());
        s1_map_page(&mut mem, root_b, 0x40_0000, fb, user_rw());
        let mut cfg = WalkConfig { ttbr0: ttbr::pack(10, root_a), ttbr1: 0, s1_enabled: true, wxn: false, vttbr: None };
        let ta = translate(&mem, &mut tlb, &model, &cfg, 0x40_0000, Access::Read, &user_ctx()).unwrap();
        assert_eq!(ta.pa, fa);
        cfg.ttbr0 = ttbr::pack(11, root_b);
        let tb = translate(&mem, &mut tlb, &model, &cfg, 0x40_0000, Access::Read, &user_ctx()).unwrap();
        assert_eq!(tb.pa, fb, "stale ASID-10 entry must not satisfy ASID 11");
        // Switching back hits the still-resident ASID-10 entry.
        cfg.ttbr0 = ttbr::pack(10, root_a);
        let ta2 = translate(&mem, &mut tlb, &model, &cfg, 0x40_0000, Access::Read, &user_ctx()).unwrap();
        assert!(ta2.tlb_hit);
        assert_eq!(ta2.pa, fa);
    }

    #[test]
    fn unmap_then_walk_faults() {
        let (mut mem, mut tlb, model) = setup();
        let root = alloc_table(&mut mem);
        let frame = mem.alloc_frame();
        s1_map_page(&mut mem, root, 0x40_0000, frame, user_rw());
        let removed = s1_unmap(&mut mem, root, 0x40_0000).unwrap();
        assert_eq!(pte::desc_oa(removed), frame);
        let cfg = WalkConfig { ttbr0: ttbr::pack(1, root), ttbr1: 0, s1_enabled: true, wxn: false, vttbr: None };
        let f = translate(&mem, &mut tlb, &model, &cfg, 0x40_0000, Access::Read, &user_ctx()).unwrap_err();
        assert_eq!(f.kind, FaultKind::Translation);
        assert_eq!(f.level, 3);
    }

    #[test]
    fn s1_lookup_sees_mapping() {
        let (mut mem, _, _) = setup();
        let root = alloc_table(&mut mem);
        let frame = mem.alloc_frame();
        s1_map_page(&mut mem, root, 0x40_0000, frame, user_rw());
        let (pa, perms, level) = s1_lookup(&mem, root, 0x40_0000).unwrap();
        assert_eq!((pa, level), (frame, 3));
        assert!(perms.el0 && perms.write);
        assert!(s1_lookup(&mem, root, 0x50_0000).is_none());
    }

    #[test]
    fn s2_lookup_and_unmap() {
        let (mut mem, _, _) = setup();
        let root = alloc_table(&mut mem);
        let frame = mem.alloc_frame();
        s2_map_page(&mut mem, root, 0x3000, frame, S2Perms::rwx());
        let (pa, perms, _) = s2_lookup(&mem, root, 0x3000).unwrap();
        assert_eq!(pa, frame);
        assert!(perms.write);
        s2_unmap(&mut mem, root, 0x3000).unwrap();
        assert!(s2_lookup(&mem, root, 0x3000).is_none());
    }
}
