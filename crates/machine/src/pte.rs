//! Translation table descriptor formats (VMSAv8-64, 4 KB granule).
//!
//! Stage-1 tables are 4-level (48-bit VA); stage-2 tables are 3-level
//! (40-bit IPA), matching the paper's evaluation setup ("four-level
//! stage-1 page tables and three-level stage-2 page tables", §8).

/// Descriptor valid bit.
pub const VALID: u64 = 1 << 0;
/// Bit 1: at levels 0–2, 1 = table descriptor; at level 3, must be 1 for a
/// page descriptor. A cleared bit 1 at levels 1–2 is a *block* descriptor.
pub const TABLE_OR_PAGE: u64 = 1 << 1;
/// Access flag: cleared descriptors raise an access-flag fault.
pub const AF: u64 = 1 << 10;
/// Not-global: translations are keyed by ASID. Cleared = global entry.
pub const NG: u64 = 1 << 11;
/// Output-address field (bits 47:12).
pub const OA_MASK: u64 = 0x0000_ffff_ffff_f000;

/// Stage-1 permission and attribute bits.
pub mod s1 {
    /// `AP[1]` (bit 6): 1 = accessible from EL0 — the "user page" bit that
    /// PAN keys on.
    pub const AP_EL0: u64 = 1 << 6;
    /// `AP[2]` (bit 7): 1 = read-only.
    pub const AP_RO: u64 = 1 << 7;
    /// Privileged execute-never.
    pub const PXN: u64 = 1 << 53;
    /// Unprivileged (EL0) execute-never.
    pub const UXN: u64 = 1 << 54;
}

/// Stage-2 permission and attribute bits.
pub mod s2 {
    /// `S2AP[0]` (bit 6): read permitted.
    pub const READ: u64 = 1 << 6;
    /// `S2AP[1]` (bit 7): write permitted.
    pub const WRITE: u64 = 1 << 7;
    /// Execute-never (`XN[1]` treated as a single bit here).
    pub const XN: u64 = 1 << 54;
}

/// Software-defined permission set used when *building* tables.
///
/// This is the substrate-facing abstraction: the kernel and LightZone
/// module think in these terms and the mapper lowers them to descriptor
/// bits; the walker only ever reads the architectural bits back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct S1Perms {
    /// Readable (descriptors cannot express "no read" at stage 1; a
    /// non-readable page is simply left unmapped — kept here so permission
    /// intersection logic is uniform).
    pub read: bool,
    /// Writable (`!AP_RO`).
    pub write: bool,
    /// Executable from EL0 (`!UXN`).
    pub user_exec: bool,
    /// Executable from EL1 (`!PXN`).
    pub priv_exec: bool,
    /// Accessible from EL0 (`AP_EL0`) — the *user page* marker that PAN
    /// keys on. LightZone's PAN mechanism marks protected pages with this
    /// bit (paper §6.1).
    pub el0: bool,
    /// Global (`!nG`): visible under every ASID. LightZone sets this on
    /// unprotected memory so TTBR0 switches do not thrash the TLB (§8.2).
    pub global: bool,
}

impl S1Perms {
    /// Kernel r/w data: privileged-only, non-executable, non-global.
    pub const fn kernel_data() -> Self {
        S1Perms { read: true, write: true, user_exec: false, priv_exec: false, el0: false, global: false }
    }

    /// Encode into descriptor attribute bits.
    pub fn to_bits(self) -> u64 {
        let mut d = AF;
        if self.el0 {
            d |= s1::AP_EL0;
        }
        if !self.write {
            d |= s1::AP_RO;
        }
        if !self.user_exec {
            d |= s1::UXN;
        }
        if !self.priv_exec {
            d |= s1::PXN;
        }
        if !self.global {
            d |= NG;
        }
        d
    }

    /// Decode from descriptor attribute bits.
    pub fn from_bits(d: u64) -> Self {
        S1Perms {
            read: true,
            write: d & s1::AP_RO == 0,
            user_exec: d & s1::UXN == 0,
            priv_exec: d & s1::PXN == 0,
            el0: d & s1::AP_EL0 != 0,
            global: d & NG == 0,
        }
    }

    /// Intersect with another permission set (least privilege, paper
    /// §6.1: "protected pages are assigned the least permissions by
    /// intersecting the access permissions from the corresponding domains
    /// with those defined in the kernel-managed virtual memory areas").
    pub fn intersect(self, other: S1Perms) -> S1Perms {
        S1Perms {
            read: self.read && other.read,
            write: self.write && other.write,
            user_exec: self.user_exec && other.user_exec,
            priv_exec: self.priv_exec && other.priv_exec,
            el0: self.el0 && other.el0,
            global: self.global && other.global,
        }
    }
}

/// Stage-2 software permissions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct S2Perms {
    pub read: bool,
    pub write: bool,
    pub exec: bool,
}

impl S2Perms {
    /// Full access.
    pub const fn rwx() -> Self {
        S2Perms { read: true, write: true, exec: true }
    }

    /// Read-only, no execute (stage-1 tables of LightZone processes are
    /// mapped read-only at stage 2, §5.1.2).
    pub const fn ro() -> Self {
        S2Perms { read: true, write: false, exec: false }
    }

    /// Encode into descriptor attribute bits.
    pub fn to_bits(self) -> u64 {
        let mut d = AF;
        if self.read {
            d |= s2::READ;
        }
        if self.write {
            d |= s2::WRITE;
        }
        if !self.exec {
            d |= s2::XN;
        }
        d
    }

    /// Decode from descriptor attribute bits.
    pub fn from_bits(d: u64) -> Self {
        S2Perms { read: d & s2::READ != 0, write: d & s2::WRITE != 0, exec: d & s2::XN == 0 }
    }
}

/// Build a table descriptor pointing at the next-level table.
pub fn table_desc(next_pa: u64) -> u64 {
    (next_pa & OA_MASK) | TABLE_OR_PAGE | VALID
}

/// Build a stage-1 page (level 3) descriptor.
pub fn s1_page_desc(pa: u64, perms: S1Perms) -> u64 {
    (pa & OA_MASK) | perms.to_bits() | TABLE_OR_PAGE | VALID
}

/// Build a stage-1 block (level 2, 2 MiB) descriptor.
pub fn s1_block_desc(pa: u64, perms: S1Perms) -> u64 {
    (pa & OA_MASK) | perms.to_bits() | VALID
}

/// Build a stage-2 page (level 3) descriptor.
pub fn s2_page_desc(pa: u64, perms: S2Perms) -> u64 {
    (pa & OA_MASK) | perms.to_bits() | TABLE_OR_PAGE | VALID
}

/// Build a stage-2 block (level 2, 2 MiB) descriptor.
pub fn s2_block_desc(pa: u64, perms: S2Perms) -> u64 {
    (pa & OA_MASK) | perms.to_bits() | VALID
}

/// Output address of a descriptor.
pub fn desc_oa(desc: u64) -> u64 {
    desc & OA_MASK
}

/// Is this descriptor valid?
pub fn is_valid(desc: u64) -> bool {
    desc & VALID != 0
}

/// At `level`, is this valid descriptor a table pointer?
pub fn is_table(desc: u64, level: u8) -> bool {
    level < 3 && desc & TABLE_OR_PAGE != 0
}

/// At levels 1–2, is this valid descriptor a block mapping?
pub fn is_block(desc: u64, level: u8) -> bool {
    (1..3).contains(&level) && desc & TABLE_OR_PAGE == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s1_perms_roundtrip() {
        for write in [false, true] {
            for user_exec in [false, true] {
                for priv_exec in [false, true] {
                    for el0 in [false, true] {
                        for global in [false, true] {
                            let p = S1Perms { read: true, write, user_exec, priv_exec, el0, global };
                            assert_eq!(S1Perms::from_bits(p.to_bits()), p);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn s2_perms_roundtrip() {
        for read in [false, true] {
            for write in [false, true] {
                for exec in [false, true] {
                    let p = S2Perms { read, write, exec };
                    assert_eq!(S2Perms::from_bits(p.to_bits()), p);
                }
            }
        }
    }

    #[test]
    fn intersect_takes_least_privilege() {
        let rw = S1Perms { read: true, write: true, user_exec: true, priv_exec: true, el0: true, global: true };
        let ro = S1Perms { read: true, write: false, user_exec: false, priv_exec: true, el0: true, global: false };
        let i = rw.intersect(ro);
        assert!(!i.write && !i.user_exec && i.priv_exec && i.el0 && !i.global);
    }

    #[test]
    fn descriptor_kinds() {
        let t = table_desc(0x4000_0000);
        assert!(is_valid(t) && is_table(t, 0) && is_table(t, 2) && !is_table(t, 3));
        let b = s1_block_desc(0x4020_0000, S1Perms::kernel_data());
        assert!(is_valid(b) && is_block(b, 2) && !is_block(b, 0) && !is_table(b, 2));
        let p = s1_page_desc(0x4000_1000, S1Perms::kernel_data());
        assert!(is_valid(p) && !is_block(p, 3));
        assert_eq!(desc_oa(p), 0x4000_1000);
    }

    #[test]
    fn oa_field_masks_low_and_high_bits() {
        let d = s1_page_desc(0xffff_ffff_ffff_ffff, S1Perms::kernel_data());
        assert_eq!(desc_oa(d), OA_MASK);
    }

    #[test]
    fn kernel_data_is_pan_safe() {
        // Kernel data must not carry the EL0 bit, or PAN would block the
        // normal domain.
        assert_eq!(S1Perms::kernel_data().to_bits() & s1::AP_EL0, 0);
    }
}
