//! Execution tracing: a bounded ring buffer of retired instructions.
//!
//! Disabled by default (zero overhead beyond a branch); when enabled the
//! machine records `(pc, word, EL)` per retired instruction and can
//! render the tail as a disassembly listing — the first tool to reach
//! for when a guest program or an attack payload misbehaves.

use lz_arch::insn::Insn;
use lz_arch::pstate::ExceptionLevel;
use std::collections::VecDeque;

/// One retired instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    pub pc: u64,
    pub word: u32,
    pub el: ExceptionLevel,
}

/// Bounded instruction trace.
#[derive(Debug)]
pub struct Trace {
    entries: VecDeque<TraceEntry>,
    capacity: usize,
    enabled: bool,
}

impl Trace {
    /// A disabled trace with the given capacity.
    pub fn new(capacity: usize) -> Self {
        Trace { entries: VecDeque::with_capacity(capacity.min(4096)), capacity, enabled: false }
    }

    /// An empty trace with this trace's capacity and enablement (the
    /// per-core shell trace for one epoch; see [`crate::smp`]).
    pub fn fork(&self) -> Trace {
        Trace {
            entries: VecDeque::with_capacity(self.capacity.min(4096)),
            capacity: self.capacity,
            enabled: self.enabled,
        }
    }

    /// Append an epoch shell's entries (oldest first) with normal ring
    /// semantics (barrier-side merge in deterministic core order).
    pub fn absorb(&mut self, other: Trace) {
        for e in other.entries {
            if self.entries.len() >= self.capacity {
                self.entries.pop_front();
            }
            self.entries.push_back(e);
        }
    }

    /// Turn recording on or off (buffer contents are kept).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether recording is on.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Record one retired instruction (no-op while disabled).
    #[inline]
    pub fn record(&mut self, pc: u64, word: u32, el: ExceptionLevel) {
        if !self.enabled {
            return;
        }
        if self.entries.len() >= self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(TraceEntry { pc, word, el });
    }

    /// The recorded tail, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter()
    }

    /// Number of recorded entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drop all recorded entries.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Render the last `n` entries as a disassembly listing.
    pub fn dump_tail(&self, n: usize) -> String {
        let mut out = String::new();
        let skip = self.entries.len().saturating_sub(n);
        for e in self.entries.iter().skip(skip) {
            out.push_str(&format!("[{}] {:#010x}: {:08x}  {}\n", e.el, e.pc, e.word, Insn::decode(e.word)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let mut t = Trace::new(8);
        t.record(0x1000, 0xD503_201F, ExceptionLevel::El0);
        assert!(t.is_empty());
    }

    #[test]
    fn ring_drops_oldest() {
        let mut t = Trace::new(3);
        t.set_enabled(true);
        for i in 0..5u64 {
            t.record(0x1000 + i * 4, 0xD503_201F, ExceptionLevel::El1);
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.entries().next().unwrap().pc, 0x1008);
    }

    #[test]
    fn dump_disassembles() {
        let mut t = Trace::new(8);
        t.set_enabled(true);
        t.record(0x1000, 0xD400_0001, ExceptionLevel::El0);
        let s = t.dump_tail(10);
        assert!(s.contains("svc"));
        assert!(s.contains("[EL0]"));
    }

    #[test]
    fn clear_empties() {
        let mut t = Trace::new(8);
        t.set_enabled(true);
        t.record(0, 0, ExceptionLevel::El0);
        t.clear();
        assert!(t.is_empty());
    }
}
