//! TLB tagged by `(VMID, ASID, page)` with global entries.
//!
//! LightZone's TTBR-based domain switching relies on two architectural
//! TLB behaviours modelled here (paper §4.1.2, §8.2):
//!
//! * **per-page-table ASIDs** let a `TTBR0_EL1` write switch translations
//!   without a TLB invalidation — entries for other ASIDs simply stop
//!   matching;
//! * the **global bit** on unprotected memory keeps those entries valid
//!   across every ASID, so only the protected domain's pages miss after a
//!   switch.

use crate::fxhash::FxHashMap;
use crate::icache::ICache;
use crate::metrics::{FastStats, InvalStats, WalkStats};
use crate::pte::{S1Perms, S2Perms};
use lz_arch::pstate::ExceptionLevel;
use std::collections::VecDeque;

/// One cached translation (a 4 KB page of the final mapping).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbEntry {
    /// `None` for global entries (`nG == 0`).
    pub asid: Option<u16>,
    /// Physical page base of the translation result.
    pub pa_page: u64,
    /// Stage-1 leaf permissions (PAN is applied at access time, not
    /// caching time — the architecture caches the AP bits, not the PAN
    /// outcome).
    pub s1: S1Perms,
    /// Stage-2 leaf permissions, when stage 2 is enabled.
    pub s2: Option<S2Perms>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct TlbKey {
    vmid: u16,
    vpn: u64,
}

/// Which level satisfied a TLB lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TlbHit {
    /// Micro-TLB hit: free.
    L1,
    /// Main-TLB hit: costs `CycleModel::l2_tlb_hit`.
    L2,
}

/// One level of the TLB: a capacity-bounded map with FIFO replacement.
#[derive(Debug)]
struct TlbLevel {
    entries: FxHashMap<TlbKey, Vec<TlbEntry>>,
    order: VecDeque<TlbKey>,
    capacity: usize,
}

impl TlbLevel {
    fn new(capacity: usize) -> Self {
        TlbLevel { entries: FxHashMap::default(), order: VecDeque::new(), capacity }
    }

    fn lookup(&self, vmid: u16, asid: u16, va: u64) -> Option<TlbEntry> {
        let key = TlbKey { vmid, vpn: va >> 12 };
        self.entries.get(&key).and_then(|v| v.iter().find(|e| e.asid.is_none() || e.asid == Some(asid)).copied())
    }

    fn insert(&mut self, vmid: u16, va: u64, entry: TlbEntry) {
        let key = TlbKey { vmid, vpn: va >> 12 };
        while self.order.len() >= self.capacity {
            if let Some(old) = self.order.pop_front() {
                self.entries.remove(&old);
            }
        }
        let slot = self.entries.entry(key).or_default();
        if slot.is_empty() {
            self.order.push_back(key);
        }
        slot.retain(|e| e.asid != entry.asid);
        slot.push(entry);
    }

    fn clear(&mut self) {
        self.entries.clear();
        self.order.clear();
    }
}

/// Number of micro-DTLB slots (direct-mapped by VPN).
const DTLB_SLOTS: usize = 64;

/// One armed micro-DTLB slot: a host-side memo that a data translation
/// for exactly these tags was proven (by the full slow path) to be a free
/// L1 hit at generation `gen`. `gen == 0` marks an empty slot (the real
/// generation counter starts at 1). The entry caches no permissions: the
/// `read`/`write` bits record which access kinds were *proven*, and
/// everything that could change the outcome of the permission checks —
/// EL, PSTATE.PAN, the unprivileged-access flag, whether stage 1 is on —
/// is part of the tag, so a hit replays a result the slow path is
/// guaranteed to reproduce.
#[derive(Debug, Clone, Copy)]
struct DtlbSlot {
    gen: u64,
    vpn: u64,
    pa_page: u64,
    vmid: u16,
    asid: u16,
    el: ExceptionLevel,
    pan: bool,
    unpriv: bool,
    s1_enabled: bool,
    read: bool,
    write: bool,
}

const EMPTY_DTLB_SLOT: DtlbSlot = DtlbSlot {
    gen: 0,
    vpn: 0,
    pa_page: 0,
    vmid: 0,
    asid: 0,
    el: ExceptionLevel::El0,
    pan: false,
    unpriv: false,
    s1_enabled: false,
    read: false,
    write: false,
};

/// Max table frames one cached walk may pin (a nested stage-1 walk reads
/// up to 4 stage-1 descriptors, each behind a 3-level stage-2 walk, plus
/// the final stage-2 walk: 4 * (3 + 1) + 3 = 19; 24 leaves headroom).
pub(crate) const WALK_FRAMES_MAX: usize = 24;

// The walk-cache's `nframes` field and the superblock length bound must
// both fit in a `u8` (`wcache_fill` converts with `u8::try_from`, and a
// compiled superblock's per-run instruction counts derive from
// `SUPERBLOCK_MAX`); widening either constant past 255 requires widening
// those fields first.
const _: () = assert!(WALK_FRAMES_MAX <= u8::MAX as usize);
const _: () = assert!(crate::cpu::SUPERBLOCK_MAX <= u8::MAX as u64);

/// Walk-cache capacity (FIFO replacement, like the TLB levels).
const WCACHE_CAP: usize = 128;

/// One memoised full walk: the leaf result plus the identity (base
/// address, version) of every physical table frame the walk read. The
/// entry is valid only while every pinned frame still holds the bytes it
/// held at fill time — `PhysMem::write_gen` gives an O(1) "nothing in RAM
/// changed" shortcut, and per-frame versions catch writes elsewhere.
#[derive(Debug, Clone, Copy)]
struct WalkCacheEntry {
    ipa_page: u64,
    pa_page: u64,
    s1: S1Perms,
    s2: Option<S2Perms>,
    frames: [(u64, u64); WALK_FRAMES_MAX],
    nframes: u8,
    checked_gen: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct WalkCacheKey {
    /// Stage-1 root table base (physical or IPA, as programmed).
    root: u64,
    /// Stage-2 root base `| 1`, or 0 when stage 2 is off — the low bit
    /// keeps a zero base address distinct from "no stage 2".
    vttbr_key: u64,
    vpn: u64,
}

/// A two-level TLB: a small micro-TLB in front of the main TLB, the
/// usual ARM arrangement. Hitting only the main TLB costs a few cycles —
/// which is what makes Table 5's switch cost creep upward with the
/// domain count.
#[derive(Debug)]
pub struct Tlb {
    l1: TlbLevel,
    l2: TlbLevel,
    hits: u64,
    misses: u64,
    l2_hits: u64,
    /// Bumped on every structural mutation (insert, promotion, any
    /// invalidate). While unchanged, a repeated lookup with the same tags
    /// is guaranteed to return the same result — the fact the decoded-block
    /// fast path's memo relies on.
    gen: u64,
    /// Decoded-block fetch cache. Embedded here so that every TLB
    /// maintenance operation (the architectural coherence points) reaches
    /// it without new call sites; see the `icache` module docs.
    icache: ICache,
    /// Invalidation counters by TLBI scope (observability only).
    inval: InvalStats,
    /// Walk/fault counters, owned here because every walk flows through
    /// `walk::translate`/`walk::fetch` with `&mut Tlb` in hand.
    pub(crate) walk: WalkStats,
    /// Data-side fast path master switch (micro-DTLB, walk cache, and —
    /// via `Machine::run` — superblock execution). Host-side only; every
    /// modelled quantity is identical with it on or off.
    fastpath: bool,
    /// Micro-DTLB: direct-mapped by VPN, guarded by `gen`.
    dtlb: [DtlbSlot; DTLB_SLOTS],
    /// Stage-1/stage-2 walk cache, FIFO-replaced at `WCACHE_CAP`.
    wcache: FxHashMap<WalkCacheKey, WalkCacheEntry>,
    wcache_order: VecDeque<WalkCacheKey>,
    /// Host-side fast-path savings counters.
    pub(crate) fast: FastStats,
}

impl Tlb {
    /// Create a TLB with the given main capacity and a default micro-TLB.
    pub fn new(capacity: usize) -> Self {
        Tlb::with_l1(capacity.min(48), capacity)
    }

    /// Create a TLB with explicit level capacities.
    pub fn with_l1(l1_capacity: usize, l2_capacity: usize) -> Self {
        Tlb {
            l1: TlbLevel::new(l1_capacity),
            l2: TlbLevel::new(l2_capacity),
            hits: 0,
            misses: 0,
            l2_hits: 0,
            gen: 1,
            icache: ICache::default(),
            inval: InvalStats::default(),
            walk: WalkStats::default(),
            fastpath: false,
            dtlb: [EMPTY_DTLB_SLOT; DTLB_SLOTS],
            wcache: FxHashMap::default(),
            wcache_order: VecDeque::new(),
            fast: FastStats::default(),
        }
    }

    /// Enable or disable the data-side fast path. Disabling drops every
    /// armed micro-DTLB slot and cached walk so a later re-enable cannot
    /// resurrect state from a different configuration epoch.
    pub fn set_fastpath(&mut self, on: bool) {
        self.fastpath = on;
        if !on {
            self.dtlb = [EMPTY_DTLB_SLOT; DTLB_SLOTS];
            self.wcache.clear();
            self.wcache_order.clear();
        }
    }

    /// Whether the data-side fast path is enabled.
    pub fn fastpath(&self) -> bool {
        self.fastpath
    }

    /// Host-side fast-path savings counters.
    pub fn fast_stats(&self) -> FastStats {
        self.fast
    }

    /// The decoded-block cache riding along with this TLB.
    pub fn icache(&self) -> &ICache {
        &self.icache
    }

    pub fn icache_mut(&mut self) -> &mut ICache {
        &mut self.icache
    }

    /// Look up `(vmid, asid, va)`; global entries match any ASID. Returns
    /// the entry and which level supplied it (L2 hits are promoted).
    pub fn lookup_leveled(&mut self, vmid: u16, asid: u16, va: u64) -> Option<(TlbEntry, TlbHit)> {
        if let Some(e) = self.l1.lookup(vmid, asid, va) {
            self.hits += 1;
            return Some((e, TlbHit::L1));
        }
        if let Some(e) = self.l2.lookup(vmid, asid, va) {
            self.hits += 1;
            self.l2_hits += 1;
            self.gen += 1; // promotion mutates L1
            self.l1.insert(vmid, va, e);
            return Some((e, TlbHit::L2));
        }
        self.misses += 1;
        None
    }

    /// Level-blind lookup (compatibility helper for tests).
    pub fn lookup(&mut self, vmid: u16, asid: u16, va: u64) -> Option<TlbEntry> {
        self.lookup_leveled(vmid, asid, va).map(|(e, _)| e)
    }

    /// Side-effect-free lookup: no stats, no L1 promotion. Used by the
    /// fetch-cache fill path to snapshot the entry the walk just inserted
    /// without perturbing the modelled TLB state.
    pub fn peek(&self, vmid: u16, asid: u16, va: u64) -> Option<TlbEntry> {
        self.l1.lookup(vmid, asid, va).or_else(|| self.l2.lookup(vmid, asid, va))
    }

    /// Side-effect-free snapshot of every main-TLB resident translation
    /// as `(vmid, va_page, entry)`, sorted for deterministic iteration.
    /// Host-side invariant checkers use this to compare every cached
    /// translation against a fresh table walk; it must never be called
    /// from modelled paths (it would not charge anything, but resident
    /// state is not architecturally enumerable).
    pub fn resident_entries(&self) -> Vec<(u16, u64, TlbEntry)> {
        let mut out: Vec<(u16, u64, TlbEntry)> =
            self.l2.entries.iter().flat_map(|(k, es)| es.iter().map(|e| (k.vmid, k.vpn << 12, *e))).collect();
        out.sort_by_key(|&(vmid, va, e)| (vmid, va, e.asid));
        out
    }

    /// Insert a translation for `(vmid, va)` into both levels.
    pub fn insert(&mut self, vmid: u16, va: u64, entry: TlbEntry) {
        self.gen += 1;
        self.l1.insert(vmid, va, entry);
        self.l2.insert(vmid, va, entry);
    }

    /// `TLBI ALLE1` equivalent — drop everything, decoded blocks included.
    pub fn invalidate_all(&mut self) {
        self.inval.all += 1;
        self.gen += 1;
        self.l1.clear();
        self.l2.clear();
        self.icache.clear();
    }

    /// Drop every entry belonging to one VMID (`TLBI VMALLS12E1`).
    pub fn invalidate_vmid(&mut self, vmid: u16) {
        self.inval.vmid += 1;
        self.gen += 1;
        for level in [&mut self.l1, &mut self.l2] {
            level.entries.retain(|k, _| k.vmid != vmid);
            level.order.retain(|k| k.vmid != vmid);
        }
        self.icache.invalidate_vmid(vmid);
    }

    /// Drop entries for one `(vmid, asid)` (`TLBI ASIDE1`); global entries
    /// survive — in the decoded-block cache too.
    pub fn invalidate_asid(&mut self, vmid: u16, asid: u16) {
        self.inval.asid += 1;
        self.gen += 1;
        for level in [&mut self.l1, &mut self.l2] {
            for (k, v) in level.entries.iter_mut() {
                if k.vmid == vmid {
                    v.retain(|e| e.asid != Some(asid));
                }
            }
            let entries = &mut level.entries;
            let order = &mut level.order;
            order.retain(|k| entries.get(k).is_some_and(|v| !v.is_empty()));
            entries.retain(|_, v| !v.is_empty());
        }
        self.icache.invalidate_asid(vmid, asid);
    }

    /// Drop all entries for one page in a VMID, any ASID (`TLBI VAAE1`).
    pub fn invalidate_va(&mut self, vmid: u16, va: u64) {
        self.inval.va += 1;
        self.gen += 1;
        let key = TlbKey { vmid, vpn: va >> 12 };
        for level in [&mut self.l1, &mut self.l2] {
            level.entries.remove(&key);
            level.order.retain(|k| *k != key);
        }
        self.icache.invalidate_va(vmid, va);
    }

    /// The structural-mutation generation (see the field docs).
    pub fn generation(&self) -> u64 {
        self.gen
    }

    /// Decoded-block memo fast path: serve `(pa, word, insn)` and replay
    /// the free L1 hit the uncached fetch would have scored, with no
    /// other TLB interaction. Sound only because the icache entry was
    /// armed at the current generation (see `ICache::fast_probe`).
    #[allow(clippy::too_many_arguments)]
    #[inline]
    pub fn fetch_fast(
        &mut self,
        mem: &crate::PhysMem,
        vmid: u16,
        asid: u16,
        el: lz_arch::pstate::ExceptionLevel,
        va: u64,
        s1_enabled: bool,
        wxn: bool,
    ) -> Option<(u64, u32, lz_arch::insn::Insn)> {
        let got = self.icache.fast_probe(mem, vmid, asid, el, va, s1_enabled, wxn, self.gen)?;
        self.hits += 1;
        Some(got)
    }

    /// Arm the decoded-block memo for `(vmid, asid, el, va)` at the
    /// current generation: the caller just proved that serving the block
    /// equals a free L1 hit.
    pub fn arm_fast(&mut self, vmid: u16, asid: u16, el: lz_arch::pstate::ExceptionLevel, va: u64) {
        let gen = self.gen;
        self.icache.arm_fast(vmid, asid, el, va, gen);
    }

    /// Micro-DTLB probe for a data access. A hit means the slow path
    /// (hash-map lookup + permission checks) was already proven to return
    /// exactly this physical address as a free L1 hit for these tags, and
    /// nothing that could change that outcome has happened since:
    ///
    /// * `gen` guards every structural TLB mutation (insert, promotion,
    ///   every `invalidate_*`, DVM shootdowns) — while it is unchanged,
    ///   L1 content is frozen;
    /// * the tag pins VMID, ASID, EL, PSTATE.PAN, the unprivileged flag
    ///   (LDTR/STTR) and whether stage 1 is on, so `set_sysreg`, ERET,
    ///   PAN flips and domain switches all fall back to the slow path;
    /// * `read`/`write` are armed separately, so an entry proven only
    ///   for loads never short-circuits the write-permission check.
    ///
    /// On a hit the replay is byte-identical to the slow path: one TLB
    /// hit, zero modelled cycles.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    pub(crate) fn dtlb_lookup(
        &mut self,
        vmid: u16,
        asid: u16,
        el: ExceptionLevel,
        pan: bool,
        unpriv: bool,
        s1_enabled: bool,
        va: u64,
        write: bool,
    ) -> Option<u64> {
        if !self.fastpath {
            return None;
        }
        let vpn = va >> 12;
        let slot = &self.dtlb[(vpn as usize) & (DTLB_SLOTS - 1)];
        let armed = if write { slot.write } else { slot.read };
        if slot.gen == self.gen
            && armed
            && slot.vpn == vpn
            && slot.vmid == vmid
            && slot.asid == asid
            && slot.el == el
            && slot.pan == pan
            && slot.unpriv == unpriv
            && slot.s1_enabled == s1_enabled
        {
            self.hits += 1; // replay the free L1 hit
            self.fast.dtlb_hits += 1;
            return Some(slot.pa_page | (va & 0xfff));
        }
        None
    }

    /// Arm the micro-DTLB after a successful slow-path data translation:
    /// the caller proved `(tags, access kind) -> pa_page` at the current
    /// generation. Re-arming the same mapping ORs in the new access kind;
    /// anything else overwrites the direct-mapped slot.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    pub(crate) fn dtlb_arm(
        &mut self,
        vmid: u16,
        asid: u16,
        el: ExceptionLevel,
        pan: bool,
        unpriv: bool,
        s1_enabled: bool,
        va: u64,
        write: bool,
        pa_page: u64,
    ) {
        if !self.fastpath {
            return;
        }
        let vpn = va >> 12;
        let gen = self.gen;
        let slot = &mut self.dtlb[(vpn as usize) & (DTLB_SLOTS - 1)];
        if slot.gen == gen
            && slot.vpn == vpn
            && slot.vmid == vmid
            && slot.asid == asid
            && slot.el == el
            && slot.pan == pan
            && slot.unpriv == unpriv
            && slot.s1_enabled == s1_enabled
            && slot.pa_page == pa_page
        {
            if write {
                slot.write = true;
            } else {
                slot.read = true;
            }
            return;
        }
        *slot = DtlbSlot { gen, vpn, pa_page, vmid, asid, el, pan, unpriv, s1_enabled, read: !write, write };
    }

    /// Walk-cache probe: return the memoised leaf result of a full
    /// stage-1(+stage-2) walk for `(root, vttbr, page)`, valid only if
    /// every table frame the original walk read is byte-identical to
    /// fill time (checked via `PhysMem::write_gen` / per-frame versions —
    /// map/unmap/break-before-make all write descriptors and therefore
    /// miss). Permission checks are *not* cached: the caller replays
    /// `check_s1`/`check_s2` against the live access context, so a hit is
    /// exactly "skip re-reading descriptors that cannot have changed".
    pub(crate) fn wcache_lookup(
        &mut self,
        mem: &crate::PhysMem,
        root: u64,
        vttbr_key: u64,
        va: u64,
    ) -> Option<(u64, u64, S1Perms, Option<S2Perms>)> {
        if !self.fastpath {
            return None;
        }
        let key = WalkCacheKey { root, vttbr_key, vpn: va >> 12 };
        let wg = mem.write_gen();
        let valid = {
            let e = self.wcache.get(&key)?;
            e.checked_gen == wg
                || e.frames[..e.nframes as usize].iter().all(|&(pa, ver)| mem.frame_version(pa) == Some(ver))
        };
        if !valid {
            self.wcache.remove(&key);
            self.wcache_order.retain(|k| *k != key);
            return None;
        }
        let e = self.wcache.get_mut(&key).expect("validated walk-cache entry present");
        e.checked_gen = wg;
        self.fast.walkcache_hits += 1;
        Some((e.ipa_page, e.pa_page, e.s1, e.s2))
    }

    /// Memoise a completed full walk together with the identity of every
    /// table frame it read. Overflowing `WALK_FRAMES_MAX` (impossible for
    /// well-formed 4-level + 3-level walks) simply skips the fill.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn wcache_fill(
        &mut self,
        mem: &crate::PhysMem,
        root: u64,
        vttbr_key: u64,
        va: u64,
        ipa_page: u64,
        pa_page: u64,
        s1: S1Perms,
        s2: Option<S2Perms>,
        frames: &[(u64, u64)],
    ) {
        if !self.fastpath || frames.len() > WALK_FRAMES_MAX {
            return;
        }
        // `nframes` is a u8: a checked conversion (rather than `as u8`)
        // keeps a future widening of WALK_FRAMES_MAX from silently
        // truncating the validation set — a truncated entry would skip
        // frame-version checks and serve stale walks.
        let Ok(nframes) = u8::try_from(frames.len()) else { return };
        debug_assert!((nframes as usize) <= WALK_FRAMES_MAX, "walk-frame set exceeds the cacheable bound");
        let key = WalkCacheKey { root, vttbr_key, vpn: va >> 12 };
        let mut arr = [(0u64, 0u64); WALK_FRAMES_MAX];
        arr[..frames.len()].copy_from_slice(frames);
        let entry = WalkCacheEntry { ipa_page, pa_page, s1, s2, frames: arr, nframes, checked_gen: mem.write_gen() };
        if self.wcache.insert(key, entry).is_none() {
            self.wcache_order.push_back(key);
            while self.wcache_order.len() > WCACHE_CAP {
                if let Some(old) = self.wcache_order.pop_front() {
                    self.wcache.remove(&old);
                }
            }
        }
    }

    /// Extract a straight-line decoded run starting at `va` into `out`
    /// (superblock execution). Returns the backing `(pa_page,
    /// frame_version)` the caller must revalidate between instructions.
    /// Validation is identical to `fast_probe` — armed at the current
    /// generation, same flags, fresh content — just without serving a
    /// single instruction, so the caller replays hits per instruction.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn superblock(
        &mut self,
        mem: &crate::PhysMem,
        vmid: u16,
        asid: u16,
        el: ExceptionLevel,
        va: u64,
        s1_enabled: bool,
        wxn: bool,
        max: usize,
        out: &mut Vec<(u32, lz_arch::insn::Insn)>,
    ) -> Option<(u64, u64)> {
        if !self.fastpath {
            return None;
        }
        let gen = self.gen;
        self.icache.superblock(mem, vmid, asid, el, va, s1_enabled, wxn, gen, max, out)
    }

    /// Serve a compiled superblock for the fetch at `va` (see
    /// [`crate::jit`]). Validation mirrors [`Self::superblock`]: gated on
    /// the fast path and armed at the *current* generation, so any TLBI,
    /// insert, or promotion since arming refuses service exactly as it
    /// would refuse the decoded run.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    pub(crate) fn jit_block(
        &mut self,
        mem: &crate::PhysMem,
        vmid: u16,
        asid: u16,
        el: ExceptionLevel,
        va: u64,
        s1_enabled: bool,
        wxn: bool,
    ) -> Option<(std::sync::Arc<crate::jit::CompiledBlock>, u64, u64)> {
        if !self.fastpath {
            return None;
        }
        let gen = self.gen;
        self.icache.jit_block(mem, vmid, asid, el, va, s1_enabled, wxn, gen)
    }

    /// Attach a freshly lowered block to its icache page entry.
    pub(crate) fn store_jit_block(
        &mut self,
        vmid: u16,
        asid: u16,
        el: ExceptionLevel,
        va: u64,
        block: crate::jit::CompiledBlock,
    ) {
        if !self.fastpath {
            return;
        }
        if self.icache.store_jit_block(vmid, asid, el, va, block) {
            self.fast.jit_compiled += 1;
        }
    }

    /// Count one compiled-block execution (host-side observability only).
    #[inline]
    pub(crate) fn count_jit_block(&mut self) {
        self.fast.jit_blocks += 1;
    }

    /// Replay the per-instruction bookkeeping a superblock instruction
    /// would have generated on the step path: one free L1 TLB hit and one
    /// decoded-block cache hit.
    #[inline]
    pub(crate) fn count_superblock_insn(&mut self) {
        self.hits += 1;
        self.icache.count_hit();
    }

    /// Replay `n` instructions' bookkeeping at once (a JIT ALU run; sums
    /// to exactly `n` calls of [`Self::count_superblock_insn`]).
    #[inline]
    pub(crate) fn count_superblock_insns(&mut self, n: u64) {
        self.hits += n;
        self.icache.count_hits(n);
    }

    /// Count one completed superblock (host-side observability only).
    #[inline]
    pub(crate) fn count_superblock_exit(&mut self) {
        self.fast.superblock_exits += 1;
    }

    /// `(hits, misses)` counters since creation or [`Self::reset_stats`].
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Main-TLB hits that missed the micro-TLB.
    pub fn l2_hit_count(&self) -> u64 {
        self.l2_hits
    }

    /// Invalidation counters by TLBI scope.
    pub fn inval_stats(&self) -> InvalStats {
        self.inval
    }

    /// Walk and walk-fault counters.
    pub fn walk_stats(&self) -> WalkStats {
        self.walk
    }

    /// Count the walks a decoded-block replay skipped host-side but
    /// modelled (see `walk::fetch`): the counters must be identical with
    /// the fetch cache on or off.
    pub(crate) fn count_replayed_walk(&mut self, s1: bool, s2: bool) {
        if s1 {
            self.walk.s1_walks += 1;
        }
        if s2 {
            self.walk.s2_walks += 1;
        }
    }

    /// Zero the hit/miss counters.
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
        self.l2_hits = 0;
    }

    /// Number of resident translations (main TLB).
    pub fn len(&self) -> usize {
        self.l2.entries.values().map(Vec::len).sum()
    }

    /// True when no translations are resident.
    pub fn is_empty(&self) -> bool {
        self.l2.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(asid: Option<u16>, pa: u64) -> TlbEntry {
        TlbEntry { asid, pa_page: pa, s1: S1Perms::kernel_data(), s2: None }
    }

    #[test]
    fn asid_mismatch_misses() {
        let mut t = Tlb::new(16);
        t.insert(1, 0x1000, entry(Some(7), 0xa000));
        assert!(t.lookup(1, 7, 0x1000).is_some());
        assert!(t.lookup(1, 8, 0x1000).is_none(), "different ASID must miss");
        assert!(t.lookup(2, 7, 0x1000).is_none(), "different VMID must miss");
    }

    #[test]
    fn global_entries_match_all_asids() {
        let mut t = Tlb::new(16);
        t.insert(1, 0x2000, entry(None, 0xb000));
        assert!(t.lookup(1, 1, 0x2000).is_some());
        assert!(t.lookup(1, 999, 0x2000).is_some());
    }

    #[test]
    fn capacity_evicts_fifo() {
        let mut t = Tlb::new(2);
        t.insert(1, 0x1000, entry(Some(1), 0xa000));
        t.insert(1, 0x2000, entry(Some(1), 0xb000));
        t.insert(1, 0x3000, entry(Some(1), 0xc000));
        assert!(t.lookup(1, 1, 0x1000).is_none(), "oldest entry evicted");
        assert!(t.lookup(1, 1, 0x3000).is_some());
    }

    #[test]
    fn invalidate_asid_spares_globals() {
        let mut t = Tlb::new(16);
        t.insert(1, 0x1000, entry(Some(5), 0xa000));
        t.insert(1, 0x2000, entry(None, 0xb000));
        t.invalidate_asid(1, 5);
        assert!(t.lookup(1, 5, 0x1000).is_none());
        assert!(t.lookup(1, 5, 0x2000).is_some());
    }

    #[test]
    fn invalidate_vmid_is_scoped() {
        let mut t = Tlb::new(16);
        t.insert(1, 0x1000, entry(Some(1), 0xa000));
        t.insert(2, 0x1000, entry(Some(1), 0xb000));
        t.invalidate_vmid(1);
        assert!(t.lookup(1, 1, 0x1000).is_none());
        assert!(t.lookup(2, 1, 0x1000).is_some());
    }

    #[test]
    fn invalidate_va_hits_all_asids() {
        let mut t = Tlb::new(16);
        t.insert(1, 0x1000, entry(Some(1), 0xa000));
        t.insert(1, 0x1000, entry(Some(2), 0xb000));
        t.invalidate_va(1, 0x1fff); // same page
        assert!(t.lookup(1, 1, 0x1000).is_none());
        assert!(t.lookup(1, 2, 0x1000).is_none());
    }

    #[test]
    fn same_asid_reinsert_replaces() {
        let mut t = Tlb::new(16);
        t.insert(1, 0x1000, entry(Some(1), 0xa000));
        t.insert(1, 0x1000, entry(Some(1), 0xc000));
        assert_eq!(t.lookup(1, 1, 0x1000).unwrap().pa_page, 0xc000);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let mut t = Tlb::new(16);
        t.insert(1, 0x1000, entry(Some(1), 0xa000));
        t.lookup(1, 1, 0x1000);
        t.lookup(1, 1, 0x9000);
        assert_eq!(t.stats(), (1, 1));
        t.reset_stats();
        assert_eq!(t.stats(), (0, 0));
    }
}
