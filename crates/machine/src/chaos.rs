//! Deterministic fault injection and typed fault propagation.
//!
//! Two related facilities live here:
//!
//! * [`LzFault`] — the typed error guest-reachable host paths return
//!   instead of panicking. A malformed guest state (corrupt descriptor,
//!   dangling fake address, exhausted ASID space) propagates outward as
//!   an `LzFault` until a layer that owns the offending virtual
//!   environment converts it into a precise guest-side consequence: a
//!   data abort, a gate rejection, or a VE kill. Host-logic invariants
//!   (states no guest input can reach) keep `panic!`.
//!
//! * [`FaultPlan`] / [`ChaosState`] — the seed-driven fault-injection
//!   engine. Injection points ("sites", [`FaultSite`]) are consulted at
//!   *modelled* events only — shootdown round trips, interpreted TLBIs,
//!   VE exits, scheduling slices — never on host-side cache paths, so a
//!   plan fires at identical points whether the interpreter fast paths
//!   are on or off. Every decision comes from per-site LCG streams
//!   derived from the plan seed: a run under a given plan is
//!   byte-reproducible, and a recorded schedule can be replayed (and
//!   shrunk) through [`FaultPlan::only`].
//!
//! Faults must *fail closed*: an injected fault may kill the victim VE
//! or waste cycles (retries, rescans, extra invalidations), but may
//! never grant access a non-faulted run would deny. Each site's
//! handling is written to that rule; `lz-chaos`'s invariant checker
//! verifies it after every injected fault rather than trusting it.

use std::collections::BTreeSet;

/// Typed fault for guest-reachable host paths.
///
/// Carries enough to build a precise guest exception or a violation
/// reason; [`LzFault::reason`] gives the static string journaled with
/// the resulting `Violation` event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LzFault {
    /// A walk or table-build step touched an unbacked physical frame.
    UnbackedFrame { pa: u64 },
    /// A descriptor had the wrong shape (e.g. a block where a table is
    /// required).
    BadDescriptor { pa: u64, desc: u64 },
    /// A fake physical address has no live real mapping.
    UnresolvedFake { fake: u64 },
    /// An address that must be block-aligned is not.
    Misaligned { addr: u64 },
    /// Per-process isolation state is missing for a process that should
    /// have it.
    MissingState { pid: u64 },
    /// A gate / page-table / thread identifier is out of range.
    BadHandle { id: u64 },
    /// The per-process ASID space is exhausted.
    AsidExhausted,
    /// A frame was freed twice (guest-driven teardown raced or a tree
    /// was corrupted).
    DoubleFree { pa: u64 },
    /// The host panicked inside a parallel epoch shell; the panic was
    /// caught at the shell boundary and converted into a kill of the VE
    /// that was running on that core.
    HostPanic,
}

impl LzFault {
    /// Static violation reason for the event journal.
    pub fn reason(&self) -> &'static str {
        match self {
            LzFault::UnbackedFrame { .. } => "fault: unbacked table frame",
            LzFault::BadDescriptor { .. } => "fault: malformed descriptor",
            LzFault::UnresolvedFake { .. } => "fault: dangling fake address",
            LzFault::Misaligned { .. } => "fault: misaligned block",
            LzFault::MissingState { .. } => "fault: missing LZ state",
            LzFault::BadHandle { .. } => "fault: bad identifier",
            LzFault::AsidExhausted => "fault: ASID space exhausted",
            LzFault::DoubleFree { .. } => "fault: double free",
            LzFault::HostPanic => "fault: host panic in epoch shell",
        }
    }
}

impl std::fmt::Display for LzFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LzFault::UnbackedFrame { pa } => write!(f, "unbacked table frame at {pa:#x}"),
            LzFault::BadDescriptor { pa, desc } => write!(f, "malformed descriptor {desc:#x} at {pa:#x}"),
            LzFault::UnresolvedFake { fake } => write!(f, "fake address {fake:#x} does not resolve"),
            LzFault::Misaligned { addr } => write!(f, "misaligned block address {addr:#x}"),
            LzFault::MissingState { pid } => write!(f, "no LightZone state for pid {pid}"),
            LzFault::BadHandle { id } => write!(f, "identifier {id} out of range"),
            LzFault::AsidExhausted => write!(f, "ASID space exhausted"),
            LzFault::DoubleFree { pa } => write!(f, "double free of frame {pa:#x}"),
            LzFault::HostPanic => write!(f, "host panic caught at the epoch-shell boundary"),
        }
    }
}

impl std::error::Error for LzFault {}

/// Named injection points. Each maps to one paper-layer guarantee (see
/// DESIGN.md §11 for the taxonomy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultSite {
    /// Corrupt (invalidate) one descriptor in the current VE's stage-1
    /// root frame. Contained by the stage-2 backstop: stage-1 tables
    /// hold only fake addresses, so no corruption can name a frame
    /// outside the VE's stage-2 view.
    PtwBitFlip,
    /// One IPI shootdown doorbell is lost; the ack-timeout protocol
    /// detects it and re-sends, so the invalidation still completes
    /// before the shootdown returns.
    ShootdownDrop,
    /// One shootdown is delivered twice; invalidation is idempotent.
    ShootdownDup,
    /// One shootdown ack is late; costs an extra round trip.
    ShootdownDelay,
    /// A spurious extra TLB invalidation. Dropping cached translations
    /// early can only cost walks, never widen access.
    TlbiSpurious,
    /// An interpreted TLBI is initially lost; the completing DSB
    /// detects the stall and the operation is re-issued.
    TlbiLost,
    /// The stage-2 fault handler aborts mid-walk: the faulting VE is
    /// killed rather than resumed with an unverified mapping.
    S2WalkAbort,
    /// Gate validation transiently fails: the switch is treated as an
    /// isolation violation (a false positive kills; it never admits).
    GateTransient,
    /// The sanitizer scan is interrupted mid-W^X-flip; the page stays
    /// unmapped and the scan restarts from scratch.
    SanitizerInterrupt,
    /// The scheduler preempts at an adversarially chosen instruction
    /// boundary (a shortened quantum).
    SchedPreempt,
    /// The running VE crashes mid-request (modelled guest wreckage).
    /// Contained by the kill path: the VE dies with a typed violation
    /// and the supervisor warm-restarts it; no other VE is touched.
    VeCrash,
    /// A snapshot image is corrupted in flight (one payload-chosen byte
    /// flipped). Contained by the digest check: restore rejects the
    /// image fail-closed and the supervisor falls back to a cold start.
    SnapshotCorrupt,
    /// A restart storm: backoff after a fault is compressed to its
    /// minimum. Contained by the strike ledger — the quarantine
    /// threshold still bounds total restarts per tenant.
    RestartStorm,
}

/// Every site, in a fixed order (stream derivation and reports index
/// into this). New sites are appended so existing seeds keep their
/// per-site streams.
pub const ALL_SITES: [FaultSite; 13] = [
    FaultSite::PtwBitFlip,
    FaultSite::ShootdownDrop,
    FaultSite::ShootdownDup,
    FaultSite::ShootdownDelay,
    FaultSite::TlbiSpurious,
    FaultSite::TlbiLost,
    FaultSite::S2WalkAbort,
    FaultSite::GateTransient,
    FaultSite::SanitizerInterrupt,
    FaultSite::SchedPreempt,
    FaultSite::VeCrash,
    FaultSite::SnapshotCorrupt,
    FaultSite::RestartStorm,
];

impl FaultSite {
    fn index(self) -> usize {
        ALL_SITES.iter().position(|&s| s == self).expect("site listed in ALL_SITES")
    }

    /// Stable name (journal events and reports).
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::PtwBitFlip => "ptw_bit_flip",
            FaultSite::ShootdownDrop => "shootdown_drop",
            FaultSite::ShootdownDup => "shootdown_dup",
            FaultSite::ShootdownDelay => "shootdown_delay",
            FaultSite::TlbiSpurious => "tlbi_spurious",
            FaultSite::TlbiLost => "tlbi_lost",
            FaultSite::S2WalkAbort => "s2_walk_abort",
            FaultSite::GateTransient => "gate_transient",
            FaultSite::SanitizerInterrupt => "sanitizer_interrupt",
            FaultSite::SchedPreempt => "sched_preempt",
            FaultSite::VeCrash => "ve_crash",
            FaultSite::SnapshotCorrupt => "snapshot_corrupt",
            FaultSite::RestartStorm => "restart_storm",
        }
    }
}

fn lcg(x: u64) -> u64 {
    x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407)
}

/// splitmix64 finalizer — stream separation for per-site seeds.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A deterministic fault schedule: seed, site filter, firing rate, and
/// an optional replay allowlist.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Root seed; per-site decision streams are derived from it.
    pub seed: u64,
    /// Sites allowed to fire (consultations at other sites are inert
    /// and do not advance any stream).
    pub sites: Vec<FaultSite>,
    /// Fire roughly one in `rate` consultations per enabled site.
    pub rate: u64,
    /// Stop firing after this many injections.
    pub max_faults: u64,
    /// Replay mode: fire exactly at these consultation sequence numbers
    /// (recorded in [`ChaosState::fired`] by a previous run with the
    /// same seed and site filter), ignoring `rate`/`max_faults`. This
    /// is what makes a failing schedule shrinkable: re-run with a
    /// subset and the surviving faults fire at identical points.
    pub only: Option<BTreeSet<u64>>,
}

impl FaultPlan {
    /// All sites, rate 16, unbounded.
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, sites: ALL_SITES.to_vec(), rate: 16, max_faults: u64::MAX, only: None }
    }

    pub fn with_sites(mut self, sites: &[FaultSite]) -> Self {
        self.sites = sites.to_vec();
        self
    }

    pub fn with_rate(mut self, rate: u64) -> Self {
        self.rate = rate.max(1);
        self
    }

    pub fn with_max_faults(mut self, n: u64) -> Self {
        self.max_faults = n;
        self
    }

    /// Restrict to a recorded schedule subset (see [`FaultPlan::only`]).
    pub fn replay(mut self, schedule: BTreeSet<u64>) -> Self {
        self.only = Some(schedule);
        self
    }
}

const NSITES: usize = ALL_SITES.len();

/// Per-machine chaos engine state: the installed plan, the derived
/// decision streams, and the outcome counters. Inert (one `Option`
/// check per consultation) when no plan is installed, so clean runs are
/// byte-identical to a build without the engine.
#[derive(Debug, Default)]
pub struct ChaosState {
    plan: Option<FaultPlan>,
    enabled: [bool; NSITES],
    streams: [u64; NSITES],
    /// Consultations of enabled sites so far (the sequence number
    /// recorded per fired fault).
    pub seq: u64,
    /// Faults injected by the engine.
    pub faults_injected: u64,
    /// Injected faults whose fail-closed handling completed (retry
    /// done, rescan done, kill delivered, corruption bounded).
    pub faults_contained: u64,
    /// Virtual environments killed on isolation violations (chaos and
    /// genuine alike — the count is zero in clean runs that stay
    /// clean).
    pub ve_kills: u64,
    /// Recorded schedule of fired faults: `(seq, site)` pairs.
    pub fired: Vec<(u64, FaultSite)>,
    /// Plan-installation generation; per-core forks compare against it
    /// to detect a stale plan (see [`ChaosState::fork_for_core`]).
    installs: u64,
    /// High-water marks of counters already drained to the global
    /// engine (per-core forks only; see [`ChaosState::drain_delta`]).
    drained_injected: u64,
    drained_contained: u64,
    drained_kills: u64,
    drained_fired: usize,
}

/// Counter deltas drained from a per-core chaos fork at an epoch
/// barrier, to be folded into the global engine in commit order.
#[derive(Debug, Default)]
pub struct ChaosDelta {
    pub faults_injected: u64,
    pub faults_contained: u64,
    pub ve_kills: u64,
    pub fired: Vec<(u64, FaultSite)>,
}

impl ChaosState {
    /// Install a plan, deriving the per-site streams and resetting the
    /// counters and the recorded schedule.
    pub fn install(&mut self, plan: FaultPlan) {
        self.enabled = [false; NSITES];
        for &s in &plan.sites {
            self.enabled[s.index()] = true;
        }
        for (i, s) in self.streams.iter_mut().enumerate() {
            *s = mix(plan.seed ^ mix(i as u64 + 1));
        }
        self.seq = 0;
        self.faults_injected = 0;
        self.faults_contained = 0;
        self.ve_kills = 0;
        self.fired.clear();
        self.drained_injected = 0;
        self.drained_contained = 0;
        self.drained_kills = 0;
        self.drained_fired = 0;
        self.installs += 1;
        self.plan = Some(plan);
    }

    /// Remove the plan (counters and schedule are kept for reporting).
    pub fn uninstall(&mut self) {
        self.installs += 1;
        self.plan = None;
    }

    /// Plan-installation generation: bumped on every install/uninstall
    /// so cached per-core forks know when to re-fork.
    pub fn install_gen(&self) -> u64 {
        self.installs
    }

    /// Derive a per-core fork of the engine for remote cores (core > 0;
    /// core 0's epoch shell takes the global engine itself so
    /// single-core fault schedules are unchanged by the epoch refactor).
    ///
    /// The fork draws from core-salted streams and numbers its
    /// consultations from `core << 56`, so fork sequence numbers are
    /// globally unique and stable — a recorded `(seq, site)` schedule
    /// replays through [`FaultPlan::only`] exactly, on either the
    /// parallel or the replay executor. Inert when no plan is installed.
    pub fn fork_for_core(&self, core: usize) -> ChaosState {
        let mut fork = ChaosState::default();
        if let Some(plan) = &self.plan {
            fork.enabled = self.enabled;
            for (i, s) in fork.streams.iter_mut().enumerate() {
                *s = mix(plan.seed ^ mix(((core as u64) << 32) | (i as u64 + 1)));
            }
            fork.seq = (core as u64) << 56;
            fork.plan = Some(plan.clone());
        }
        fork
    }

    /// Drain the counters and fired entries accumulated since the last
    /// drain (epoch barrier; the fork keeps its streams, sequence
    /// counter, and cumulative totals so `max_faults` caps the fork's
    /// whole lifetime, not one epoch).
    pub fn drain_delta(&mut self) -> ChaosDelta {
        let delta = ChaosDelta {
            faults_injected: self.faults_injected - self.drained_injected,
            faults_contained: self.faults_contained - self.drained_contained,
            ve_kills: self.ve_kills - self.drained_kills,
            fired: self.fired[self.drained_fired..].to_vec(),
        };
        self.drained_injected = self.faults_injected;
        self.drained_contained = self.faults_contained;
        self.drained_kills = self.ve_kills;
        self.drained_fired = self.fired.len();
        delta
    }

    /// Fold a fork's drained delta into this (global) engine.
    pub fn absorb_delta(&mut self, delta: ChaosDelta) {
        self.faults_injected += delta.faults_injected;
        self.faults_contained += delta.faults_contained;
        self.ve_kills += delta.ve_kills;
        self.fired.extend(delta.fired);
    }

    /// Whether a plan is installed.
    pub fn active(&self) -> bool {
        self.plan.is_some()
    }

    /// Consult the engine at `site`. Returns `Some(draw)` — a
    /// deterministic pseudo-random payload for parameterizing the fault
    /// — when the site fires, `None` otherwise. One branch when no plan
    /// is installed.
    #[inline]
    pub fn fire(&mut self, site: FaultSite) -> Option<u64> {
        let plan = self.plan.as_ref()?;
        let idx = site.index();
        if !self.enabled[idx] {
            return None;
        }
        self.seq += 1;
        let s = &mut self.streams[idx];
        *s = lcg(*s);
        let draw = *s >> 11;
        let fires = match &plan.only {
            Some(set) => set.contains(&self.seq),
            None => self.faults_injected < plan.max_faults && draw % plan.rate == 0,
        };
        if !fires {
            return None;
        }
        self.faults_injected += 1;
        self.fired.push((self.seq, site));
        *s = lcg(*s);
        Some(*s >> 11)
    }

    /// Record that an injected fault's fail-closed handling completed.
    #[inline]
    pub fn contained(&mut self) {
        self.faults_contained += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(state: &mut ChaosState, n: usize) -> Vec<(u64, Option<u64>)> {
        (0..n).map(|_| (state.seq, state.fire(FaultSite::TlbiSpurious))).collect()
    }

    #[test]
    fn inert_without_plan() {
        let mut c = ChaosState::default();
        assert!(!c.active());
        assert_eq!(c.fire(FaultSite::PtwBitFlip), None);
        assert_eq!(c.seq, 0, "no plan, no consultation counting");
    }

    #[test]
    fn same_plan_same_schedule() {
        let mut a = ChaosState::default();
        let mut b = ChaosState::default();
        a.install(FaultPlan::new(42).with_rate(4));
        b.install(FaultPlan::new(42).with_rate(4));
        assert_eq!(drain(&mut a, 200), drain(&mut b, 200));
        assert_eq!(a.fired, b.fired);
        assert!(a.faults_injected > 0, "rate 4 over 200 consultations fires");
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaosState::default();
        let mut b = ChaosState::default();
        a.install(FaultPlan::new(1).with_rate(4));
        b.install(FaultPlan::new(2).with_rate(4));
        drain(&mut a, 200);
        drain(&mut b, 200);
        assert_ne!(a.fired, b.fired);
    }

    #[test]
    fn disabled_site_never_fires_nor_counts() {
        let mut c = ChaosState::default();
        c.install(FaultPlan::new(7).with_sites(&[FaultSite::SchedPreempt]).with_rate(1));
        assert_eq!(c.fire(FaultSite::TlbiSpurious), None);
        assert_eq!(c.seq, 0);
        assert!(c.fire(FaultSite::SchedPreempt).is_some(), "rate 1 always fires");
        assert_eq!(c.seq, 1);
    }

    #[test]
    fn replay_fires_exact_subset() {
        let mut full = ChaosState::default();
        full.install(FaultPlan::new(9).with_rate(3));
        drain(&mut full, 300);
        let fired = full.fired.clone();
        assert!(fired.len() >= 4, "need a few faults to subset");
        // Replay only the even-indexed faults.
        let subset: BTreeSet<u64> = fired.iter().step_by(2).map(|&(seq, _)| seq).collect();
        let mut replay = ChaosState::default();
        replay.install(FaultPlan::new(9).with_rate(3).replay(subset.clone()));
        drain(&mut replay, 300);
        let replayed: BTreeSet<u64> = replay.fired.iter().map(|&(seq, _)| seq).collect();
        assert_eq!(replayed, subset);
    }

    #[test]
    fn max_faults_caps_injection() {
        let mut c = ChaosState::default();
        c.install(FaultPlan::new(3).with_rate(1).with_max_faults(5));
        drain(&mut c, 100);
        assert_eq!(c.faults_injected, 5);
    }

    #[test]
    fn lzfault_reasons_are_static_and_distinct() {
        let faults = [
            LzFault::UnbackedFrame { pa: 1 },
            LzFault::BadDescriptor { pa: 1, desc: 2 },
            LzFault::UnresolvedFake { fake: 3 },
            LzFault::Misaligned { addr: 4 },
            LzFault::MissingState { pid: 5 },
            LzFault::BadHandle { id: 6 },
            LzFault::AsidExhausted,
            LzFault::DoubleFree { pa: 7 },
            LzFault::HostPanic,
        ];
        let reasons: BTreeSet<&'static str> = faults.iter().map(|f| f.reason()).collect();
        assert_eq!(reasons.len(), faults.len());
        for f in &faults {
            assert!(!format!("{f}").is_empty());
        }
    }
}
