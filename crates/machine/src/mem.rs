//! Sparse physical memory with a frame allocator.

use crate::fxhash::FxHashMap;
use lz_arch::{page_align_down, PAGE_SHIFT, PAGE_SIZE};
use std::sync::Arc;

/// One physical frame plus the generation of its last mutation.
#[derive(Debug, Clone)]
struct Frame {
    data: Box<[u8; PAGE_SIZE as usize]>,
    /// `PhysMem::write_gen` at the time of the last write/alloc/zero.
    /// Consumers (the decoded-block cache) snapshot this to detect stale
    /// cached views of frame *contents* without scanning the frame.
    version: u64,
}

/// Dirty frames written by one core during an epoch, plus the shell-local
/// generation they reached. Produced by [`PhysMem::take_epoch_overlay`],
/// consumed by [`PhysMem::merge_epoch`] at the barrier.
#[derive(Debug)]
pub struct EpochWrites {
    dirty: FxHashMap<u64, Frame>,
    local_gen: u64,
}

impl EpochWrites {
    /// Number of frames this core dirtied during the epoch.
    pub fn dirty_frames(&self) -> usize {
        self.dirty.len()
    }
}

/// Simulated physical memory.
///
/// Frames are allocated lazily; reading an unpopulated-but-allocated frame
/// sees zeros. Accessing physical addresses outside any allocated frame is
/// a *bus error* — the walker turns it into a translation fault, and direct
/// kernel accesses return `None` so substrate bugs surface immediately.
///
/// Every mutation bumps a global monotonic `write_gen` and stamps the frame
/// it touched, so content caches can validate in O(1): if the global
/// generation hasn't moved since the cache entry was last checked, no frame
/// anywhere has changed; otherwise compare the single frame's version.
///
/// # Epoch sharding
///
/// For parallel SMP execution ([`crate::smp`]), [`Self::epoch_view`]
/// produces a copy-on-write view sharing the frame table via `Arc`: writes
/// land in a private overlay with shell-local generation stamps, and the
/// overlays merge back deterministically in core order at the epoch
/// barrier ([`Self::merge_epoch`]). Frame allocation and freeing never
/// happen inside an epoch — only the kernel allocates, and it runs
/// barrier-side — so the shared base is immutable while views exist.
#[derive(Debug, Default)]
pub struct PhysMem {
    frames: Arc<FxHashMap<u64, Frame>>,
    /// Epoch write overlay: `Some` only inside a per-core epoch view.
    /// Reads check it before the shared base; writes copy the frame up.
    overlay: Option<FxHashMap<u64, Frame>>,
    /// Next frame number to hand out.
    next_frame: u64,
    /// Recycled frames.
    free: Vec<u64>,
    /// Monotonic count of mutations (writes, allocs, frees, zeroing).
    write_gen: u64,
}

impl PhysMem {
    /// Create an empty physical memory. The first allocated frame starts
    /// at 1 MiB so that physical address 0 never aliases a real frame
    /// (null-PA bugs fault loudly).
    pub fn new() -> Self {
        PhysMem {
            frames: Arc::new(FxHashMap::default()),
            overlay: None,
            next_frame: (1 << 20) >> PAGE_SHIFT,
            free: Vec::new(),
            write_gen: 1,
        }
    }

    /// A per-core copy-on-write view for one epoch: shares the frame table,
    /// writes go to a private overlay stamped with shell-local generations.
    pub fn epoch_view(&self) -> PhysMem {
        PhysMem {
            frames: Arc::clone(&self.frames),
            overlay: Some(FxHashMap::default()),
            next_frame: self.next_frame,
            free: Vec::new(),
            write_gen: self.write_gen,
        }
    }

    /// Detach this epoch view's dirty frames for the barrier merge.
    /// Returns `None` if this is not an epoch view.
    pub fn take_epoch_overlay(&mut self) -> Option<EpochWrites> {
        let dirty = self.overlay.take()?;
        Some(EpochWrites { dirty, local_gen: self.write_gen })
    }

    /// Merge per-core epoch writes back into the shared base, in the core
    /// order the caller supplies. The merge is *byte-granular*: each dirty
    /// frame copy is diffed against the pre-epoch original and only the
    /// changed bytes are applied, so cores writing disjoint words of the
    /// same page (per-thread slots in a shared frame, futex flags next to
    /// each other) all land. Returns the number of write conflicts —
    /// copies whose changed bytes overlap an earlier core's changes; for
    /// those bytes the last core in commit order wins, matching the
    /// replay schedule's commit order.
    ///
    /// The global generation is first raised to the maximum shell-local
    /// generation, then bumped once per merged frame copy. Every
    /// shell-local bump implies at least one dirty frame, so after the
    /// merge the global `write_gen` strictly exceeds every generation any
    /// shell observed — a stale shell-side snapshot can therefore never
    /// validate against post-merge state.
    pub fn merge_epoch(&mut self, parts: Vec<EpochWrites>) -> u64 {
        debug_assert!(self.overlay.is_none(), "merge targets the shared base, not a view");
        let mut gen = self.write_gen;
        for part in &parts {
            gen = gen.max(part.local_gen);
        }
        // Group the dirty copies by frame, keeping commit order within
        // each group; iterate frames in ascending number order.
        let mut by_frame: FxHashMap<u64, Vec<Frame>> = FxHashMap::default();
        let mut keys: Vec<u64> = Vec::new();
        for part in parts {
            for (key, frame) in part.dirty {
                let copies = by_frame.entry(key).or_default();
                if copies.is_empty() {
                    keys.push(key);
                }
                copies.push(frame);
            }
        }
        keys.sort_unstable();
        let mut conflicts = 0u64;
        let frames = Arc::make_mut(&mut self.frames);
        for key in keys {
            let copies = by_frame.remove(&key).unwrap_or_default();
            // The shared base is immutable while views exist, so the
            // base frame (zeros if the frame vanished) is the pre-epoch
            // original every copy descended from.
            let orig: Box<[u8; PAGE_SIZE as usize]> = match frames.get(&key) {
                Some(f) => f.data.clone(),
                None => Box::new([0u8; PAGE_SIZE as usize]),
            };
            let mut merged = orig.clone();
            let mut touched = [0u64; (PAGE_SIZE as usize) / 64];
            for copy in copies {
                gen += 1;
                let mut overlapped = false;
                for (i, (&new, &old)) in copy.data.iter().zip(orig.iter()).enumerate() {
                    if new != old {
                        if touched[i / 64] >> (i % 64) & 1 == 1 {
                            overlapped = true;
                        }
                        touched[i / 64] |= 1 << (i % 64);
                        merged[i] = new;
                    }
                }
                if overlapped {
                    conflicts += 1;
                }
            }
            frames.insert(key, Frame { data: merged, version: gen });
        }
        self.write_gen = gen;
        conflicts
    }

    /// Whether this is an epoch view (writes shard into an overlay).
    pub fn is_epoch_view(&self) -> bool {
        self.overlay.is_some()
    }

    /// Mutable access to the shared frame table outside epochs. All
    /// views are merged and dropped before allocator paths run, so the
    /// `Arc` is unshared and this never copies.
    fn base_mut(&mut self) -> &mut FxHashMap<u64, Frame> {
        debug_assert!(self.overlay.is_none(), "allocator paths never run inside an epoch");
        Arc::make_mut(&mut self.frames)
    }

    fn fresh_frame(&mut self) -> Frame {
        self.write_gen += 1;
        Frame { data: Box::new([0u8; PAGE_SIZE as usize]), version: self.write_gen }
    }

    /// Allocate a zeroed frame; returns its physical base address.
    pub fn alloc_frame(&mut self) -> u64 {
        let frame = self.free.pop().unwrap_or_else(|| {
            let f = self.next_frame;
            self.next_frame += 1;
            f
        });
        let fresh = self.fresh_frame();
        self.base_mut().insert(frame, fresh);
        frame << PAGE_SHIFT
    }

    /// Allocate `n` *contiguous* zeroed frames (for 2 MiB blocks); returns
    /// the physical base address of the first, aligned to `n` frames so
    /// block descriptors can map it directly.
    pub fn alloc_contiguous(&mut self, n: u64) -> u64 {
        let start = self.next_frame.div_ceil(n) * n;
        self.next_frame = start + n;
        for f in start..start + n {
            let fresh = self.fresh_frame();
            self.base_mut().insert(f, fresh);
        }
        start << PAGE_SHIFT
    }

    /// Free a frame previously returned by [`Self::alloc_frame`].
    ///
    /// # Panics
    ///
    /// Panics if the frame is not currently allocated (double free).
    /// Guest-driven teardown paths use [`Self::try_free_frame`] instead.
    pub fn free_frame(&mut self, pa: u64) {
        let frame = pa >> PAGE_SHIFT;
        assert!(self.try_free_frame(pa), "double free of frame {frame:#x}");
    }

    /// Fallible [`Self::free_frame`]: `false` if the frame is not
    /// currently allocated. Teardown of guest-corruptible structures
    /// (page-table trees a VE may have damaged) uses this so a double
    /// free degrades to a leak instead of killing the host.
    pub fn try_free_frame(&mut self, pa: u64) -> bool {
        let frame = pa >> PAGE_SHIFT;
        if self.base_mut().remove(&frame).is_none() {
            return false;
        }
        self.write_gen += 1;
        self.free.push(frame);
        true
    }

    /// Global mutation counter. Strictly increases on every write, alloc,
    /// free, or zeroing anywhere in physical memory. Inside an epoch view
    /// this is the shell-local generation.
    pub fn write_gen(&self) -> u64 {
        self.write_gen
    }

    /// The mutation generation of the frame backing `pa`, or `None` on a
    /// bus error. Reallocation after a free changes the version, so a stale
    /// snapshot can never validate against a recycled frame.
    pub fn frame_version(&self, pa: u64) -> Option<u64> {
        let key = pa >> PAGE_SHIFT;
        if let Some(overlay) = &self.overlay {
            if let Some(frame) = overlay.get(&key) {
                return Some(frame.version);
            }
        }
        self.frames.get(&key).map(|f| f.version)
    }

    /// Is this physical address backed by an allocated frame? (Epoch
    /// overlays only ever hold frames copied up from the base, so the
    /// base alone answers this.)
    pub fn is_mapped(&self, pa: u64) -> bool {
        self.frames.contains_key(&(pa >> PAGE_SHIFT))
    }

    /// Number of allocated frames (for memory-overhead accounting).
    pub fn allocated_frames(&self) -> usize {
        self.frames.len()
    }

    fn frame(&self, pa: u64) -> Option<&[u8; PAGE_SIZE as usize]> {
        let key = pa >> PAGE_SHIFT;
        if let Some(overlay) = &self.overlay {
            if let Some(frame) = overlay.get(&key) {
                return Some(&*frame.data);
            }
        }
        self.frames.get(&key).map(|f| &*f.data)
    }

    /// Mutable frame access; bumps the generation stamps because every
    /// caller is about to write. Inside an epoch view the frame is copied
    /// up into the overlay and stamped with the shell-local generation.
    fn frame_mut(&mut self, pa: u64) -> Option<&mut [u8; PAGE_SIZE as usize]> {
        let key = pa >> PAGE_SHIFT;
        let gen = self.write_gen + 1;
        if let Some(overlay) = self.overlay.as_mut() {
            if !overlay.contains_key(&key) {
                let copied = self.frames.get(&key)?.clone();
                overlay.insert(key, copied);
            }
            let frame = overlay.get_mut(&key)?;
            self.write_gen = gen;
            frame.version = gen;
            return Some(&mut *frame.data);
        }
        let frame = Arc::make_mut(&mut self.frames).get_mut(&key)?;
        self.write_gen = gen;
        frame.version = gen;
        Some(&mut *frame.data)
    }

    /// Read `N`-byte little-endian value. `None` on a bus error.
    /// The access must not cross a page boundary (callers are aligned).
    pub fn read(&self, pa: u64, size: u64) -> Option<u64> {
        debug_assert!(size <= 8 && page_align_down(pa) == page_align_down(pa + size - 1));
        let frame = self.frame(pa)?;
        let off = (pa & (PAGE_SIZE - 1)) as usize;
        let mut buf = [0u8; 8];
        buf[..size as usize].copy_from_slice(&frame[off..off + size as usize]);
        Some(u64::from_le_bytes(buf))
    }

    /// Write `size`-byte little-endian value. `false` on a bus error.
    pub fn write(&mut self, pa: u64, value: u64, size: u64) -> bool {
        debug_assert!(size <= 8 && page_align_down(pa) == page_align_down(pa + size - 1));
        let Some(frame) = self.frame_mut(pa) else { return false };
        let off = (pa & (PAGE_SIZE - 1)) as usize;
        frame[off..off + size as usize].copy_from_slice(&value.to_le_bytes()[..size as usize]);
        true
    }

    /// Read a 64-bit word (page-table descriptors).
    pub fn read_u64(&self, pa: u64) -> Option<u64> {
        self.read(pa, 8)
    }

    /// Write a 64-bit word.
    pub fn write_u64(&mut self, pa: u64, value: u64) -> bool {
        self.write(pa, value, 8)
    }

    /// Read a 32-bit word (instruction fetch).
    pub fn read_u32(&self, pa: u64) -> Option<u32> {
        self.read(pa, 4).map(|v| v as u32)
    }

    /// Copy bytes out of physical memory; `None` if any page is unbacked.
    pub fn read_bytes(&self, pa: u64, len: usize) -> Option<Vec<u8>> {
        let mut out = Vec::with_capacity(len);
        let mut cur = pa;
        let end = pa + len as u64;
        while cur < end {
            let frame = self.frame(cur)?;
            let off = (cur & (PAGE_SIZE - 1)) as usize;
            let take = ((PAGE_SIZE - (cur & (PAGE_SIZE - 1))) as usize).min((end - cur) as usize);
            out.extend_from_slice(&frame[off..off + take]);
            cur += take as u64;
        }
        Some(out)
    }

    /// Copy bytes into physical memory; `false` if any page is unbacked.
    pub fn write_bytes(&mut self, pa: u64, data: &[u8]) -> bool {
        let mut cur = pa;
        let mut src = data;
        while !src.is_empty() {
            let Some(frame) = self.frame_mut(cur) else { return false };
            let off = (cur & (PAGE_SIZE - 1)) as usize;
            let take = ((PAGE_SIZE as usize) - off).min(src.len());
            frame[off..off + take].copy_from_slice(&src[..take]);
            cur += take as u64;
            src = &src[take..];
        }
        true
    }

    /// Zero an entire frame (used by break-before-make unmap).
    pub fn zero_frame(&mut self, pa: u64) {
        if let Some(frame) = self.frame_mut(pa) {
            frame.fill(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_returns_distinct_zeroed_frames() {
        let mut m = PhysMem::new();
        let a = m.alloc_frame();
        let b = m.alloc_frame();
        assert_ne!(a, b);
        assert_eq!(m.read_u64(a), Some(0));
        assert_eq!(m.read_u64(b + 4088), Some(0));
    }

    #[test]
    fn read_write_roundtrip_all_sizes() {
        let mut m = PhysMem::new();
        let pa = m.alloc_frame();
        for (size, value) in [(1, 0xab), (2, 0xabcd), (4, 0xdead_beef), (8, 0x0123_4567_89ab_cdef)] {
            assert!(m.write(pa, value, size));
            assert_eq!(m.read(pa, size), Some(value));
        }
    }

    #[test]
    fn unbacked_access_is_bus_error() {
        let mut m = PhysMem::new();
        assert_eq!(m.read_u64(0x10_0000_0000), None);
        assert!(!m.write_u64(0x10_0000_0000, 1));
        assert_eq!(m.read(0, 8), None, "PA 0 must never be backed");
    }

    #[test]
    fn free_recycles_frames() {
        let mut m = PhysMem::new();
        let a = m.alloc_frame();
        m.write_u64(a, 0x42);
        m.free_frame(a);
        assert!(!m.is_mapped(a));
        let b = m.alloc_frame();
        assert_eq!(b, a, "freed frame is recycled");
        assert_eq!(m.read_u64(b), Some(0), "recycled frame is zeroed");
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut m = PhysMem::new();
        let a = m.alloc_frame();
        m.free_frame(a);
        m.free_frame(a);
    }

    #[test]
    fn try_free_reports_instead_of_panicking() {
        let mut m = PhysMem::new();
        let a = m.alloc_frame();
        assert!(m.try_free_frame(a));
        assert!(!m.try_free_frame(a), "second free reports false");
        assert!(!m.try_free_frame(0x10_0000_0000), "never-allocated frame");
    }

    #[test]
    fn contiguous_alloc_is_contiguous() {
        let mut m = PhysMem::new();
        let base = m.alloc_contiguous(512); // 2 MiB
        for i in 0..512 {
            assert!(m.is_mapped(base + i * PAGE_SIZE));
        }
        assert!(m.write_u64(base + 511 * PAGE_SIZE, 7));
    }

    #[test]
    fn bytes_roundtrip_across_pages() {
        let mut m = PhysMem::new();
        let base = m.alloc_contiguous(2);
        let data: Vec<u8> = (0..6000u32).map(|i| (i % 251) as u8).collect();
        assert!(m.write_bytes(base + 100, &data));
        assert_eq!(m.read_bytes(base + 100, 6000).unwrap(), data);
    }

    #[test]
    fn write_gen_tracks_mutations() {
        let mut m = PhysMem::new();
        let g0 = m.write_gen();
        let pa = m.alloc_frame();
        assert!(m.write_gen() > g0, "alloc bumps the generation");
        let g1 = m.write_gen();
        let v1 = m.frame_version(pa).unwrap();
        assert!(m.write_u64(pa, 7));
        assert!(m.write_gen() > g1);
        assert!(m.frame_version(pa).unwrap() > v1, "write stamps the frame");
        let g2 = m.write_gen();
        assert_eq!(m.read_u64(pa), Some(7));
        assert_eq!(m.write_gen(), g2, "reads do not bump the generation");
        assert!(!m.write_u64(0x10_0000_0000, 1));
        assert_eq!(m.write_gen(), g2, "bus-error writes do not bump");
    }

    #[test]
    fn frame_version_changes_on_recycle() {
        let mut m = PhysMem::new();
        let a = m.alloc_frame();
        let v0 = m.frame_version(a).unwrap();
        m.free_frame(a);
        assert_eq!(m.frame_version(a), None);
        let b = m.alloc_frame();
        assert_eq!(b, a, "frame is recycled");
        assert!(m.frame_version(b).unwrap() > v0, "recycled frame gets a fresh version");
    }

    #[test]
    fn epoch_view_shards_writes_until_merge() {
        let mut m = PhysMem::new();
        let pa = m.alloc_frame();
        m.write_u64(pa, 1);
        let mut view = m.epoch_view();
        assert!(view.is_epoch_view());
        assert_eq!(view.read_u64(pa), Some(1), "view sees base contents");
        assert!(view.write_u64(pa, 2));
        assert_eq!(view.read_u64(pa), Some(2), "view sees its own write");
        assert_eq!(m.read_u64(pa), Some(1), "base unchanged until merge");
        let part = view.take_epoch_overlay().unwrap();
        assert_eq!(part.dirty_frames(), 1);
        let conflicts = m.merge_epoch(vec![part]);
        assert_eq!(conflicts, 0);
        assert_eq!(m.read_u64(pa), Some(2), "merge installs the write");
    }

    #[test]
    fn merge_counts_conflicts_and_last_core_wins() {
        let mut m = PhysMem::new();
        let a = m.alloc_frame();
        let b = m.alloc_frame();
        let mut v0 = m.epoch_view();
        let mut v1 = m.epoch_view();
        assert!(v0.write_u64(a, 10));
        assert!(v1.write_u64(a, 11));
        assert!(v1.write_u64(b, 21));
        let parts = vec![v0.take_epoch_overlay().unwrap(), v1.take_epoch_overlay().unwrap()];
        let conflicts = m.merge_epoch(parts);
        assert_eq!(conflicts, 1, "one frame written by both cores");
        assert_eq!(m.read_u64(a), Some(11), "last core in commit order wins");
        assert_eq!(m.read_u64(b), Some(21));
    }

    #[test]
    fn merged_write_gen_exceeds_every_shell_generation() {
        let mut m = PhysMem::new();
        let a = m.alloc_frame();
        let b = m.alloc_frame();
        let mut v0 = m.epoch_view();
        let mut v1 = m.epoch_view();
        for i in 0..17 {
            assert!(v0.write_u64(a, i));
        }
        assert!(v1.write_u64(b, 99));
        let g0 = v0.write_gen();
        let g1 = v1.write_gen();
        let base_before = m.write_gen();
        let parts = vec![v0.take_epoch_overlay().unwrap(), v1.take_epoch_overlay().unwrap()];
        m.merge_epoch(parts);
        assert!(m.write_gen() > g0 && m.write_gen() > g1 && m.write_gen() > base_before);
        assert!(m.frame_version(a).unwrap() <= m.write_gen());
        assert!(m.frame_version(b).unwrap() <= m.write_gen());
    }

    #[test]
    fn epoch_view_bus_errors_do_not_dirty() {
        let mut m = PhysMem::new();
        let pa = m.alloc_frame();
        let mut view = m.epoch_view();
        assert!(!view.write_u64(0x10_0000_0000, 1));
        assert_eq!(view.read_u64(0x10_0000_0000), None);
        assert_eq!(view.read_u64(pa), Some(0));
        let part = view.take_epoch_overlay().unwrap();
        assert_eq!(part.dirty_frames(), 0);
        assert_eq!(m.merge_epoch(vec![part]), 0);
    }

    #[test]
    fn allocated_frames_counts() {
        let mut m = PhysMem::new();
        assert_eq!(m.allocated_frames(), 0);
        let a = m.alloc_frame();
        m.alloc_frame();
        assert_eq!(m.allocated_frames(), 2);
        m.free_frame(a);
        assert_eq!(m.allocated_frames(), 1);
    }
}
