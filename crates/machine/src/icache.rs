//! Decoded-block fetch cache: skips the host-side translation walk and
//! instruction decode on the interpreter's hot path.
//!
//! Every `Cpu::step()` used to pay a full `walk::translate` plus a fresh
//! `Insn::decode`. This cache keys decoded words by
//! `(VMID, ASID-or-global, VA page)` — the same tagging discipline as the
//! TLB — and per page remembers the fill-time translation regime (stage-1
//! enable, WXN, stage-1 root, VTTBR root) plus the *content version* of the
//! physical frame the code came from (see `PhysMem::frame_version`).
//!
//! # Coherence contract
//!
//! A cached block is only served when it is provably equivalent to what the
//! slow path would produce:
//!
//! * **TLBI variants** — every `Tlb::invalidate_*` forwards here with the
//!   same scope semantics (global entries survive `invalidate_asid`, etc.).
//! * **Physical writes** — each probe validates the code frame's version
//!   against `PhysMem`; self-modifying stores, DMA-style `write_bytes`, and
//!   frame recycling all bump it, evicting the stale block on next fetch.
//! * **Root changes** — when the main TLB misses, the cache only skips the
//!   walk if the fill-time `TTBR{0,1}`/`VTTBR` base for the page's VA half
//!   still matches, covering root switches that ASID/VMID tags alone do not
//!   disambiguate. When the main TLB *hits*, the cache defers to it: the
//!   block is served only if the fill-time TLB snapshot is bit-identical to
//!   the entry the TLB just returned.
//!
//! Like the TLB itself (see `stale_tlb_entry_survives_table_edit`), the
//! cache may keep translating from a stale view after page-table edits that
//! violate break-before-make — that is the architectural hazard the TLBI
//! contract exists to prevent, not a new one introduced here.
//!
//! Cycle accounting is unaffected by design: the fast path replays exactly
//! the modelled costs (TLB-hit level cost or the deterministic walk cost for
//! the active regime) and performs the same TLB state transitions the slow
//! path would, so paper tables are bit-identical with the cache on or off.

use crate::fxhash::FxHashMap;
use crate::jit::CompiledBlock;
use crate::tlb::TlbEntry;
use crate::PhysMem;
use lz_arch::insn::Insn;
use lz_arch::pstate::ExceptionLevel;
use std::collections::VecDeque;
use std::sync::Arc;

const WORDS_PER_PAGE: usize = 1024;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct PageKey {
    vmid: u16,
    vpn: u64,
}

/// Fill-time facts that must still hold for a block to be served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FillInfo {
    /// `None` for global (`nG = 0`) pages and for the identity regime.
    pub asid: Option<u16>,
    /// Exception level of the fill-time fetch (permission checks depend
    /// on it, so EL0 and EL1 blocks for one page are cached separately).
    pub el: ExceptionLevel,
    pub s1_enabled: bool,
    pub wxn: bool,
    /// Stage-1 root (baddr) for this VA's half; 0 when stage 1 is off.
    pub root: u64,
    /// Stage-2 root (baddr) when stage 2 was on at fill time.
    pub vttbr: Option<u64>,
    /// The TLB entry the fill-time translation produced (`None` for the
    /// identity regime, which bypasses the TLB entirely).
    pub snapshot: Option<TlbEntry>,
    /// Physical page the code words were read from.
    pub pa_page: u64,
}

#[derive(Debug)]
struct PageEntry {
    info: FillInfo,
    /// `PhysMem::frame_version` of `pa_page` when last validated.
    frame_version: u64,
    /// `PhysMem::write_gen` at last validation — if the global generation
    /// hasn't moved, no frame anywhere changed and the version compare can
    /// be skipped.
    checked_gen: u64,
    /// `Tlb::generation` when this entry was last proven equivalent to a
    /// free L1 TLB hit (0 = never). While the TLB generation matches and
    /// the fetch ASID equals `fast_asid`, the L1 lookup result is
    /// guaranteed unchanged and the slow-path comparison can be skipped.
    fast_gen: u64,
    fast_asid: u16,
    slots: Vec<Option<(u32, Insn)>>,
    /// Compiled superblocks keyed by start slot (see [`crate::jit`]).
    /// Sharing the page entry means every path that drops or restarts the
    /// decoded page — TLBI scopes, content staleness, capacity eviction —
    /// drops its compiled blocks for the same reason at the same moment;
    /// serve-time validation then only has to mirror
    /// [`ICache::superblock`]'s checks.
    blocks: FxHashMap<u16, Arc<CompiledBlock>>,
}

/// What a probe found.
#[derive(Debug, Clone, Copy)]
pub struct ProbeHit {
    pub snapshot: Option<TlbEntry>,
    /// Fill-time stage-1/stage-2 roots still match the current regime.
    pub roots_match: bool,
    pub pa: u64,
    pub word: u32,
    pub insn: Insn,
}

/// The decoded-block cache. Lives inside [`crate::Tlb`] so every TLB
/// maintenance operation reaches it without new call sites.
#[derive(Debug)]
pub struct ICache {
    pages: FxHashMap<PageKey, Vec<PageEntry>>,
    order: VecDeque<PageKey>,
    capacity: usize,
    hits: u64,
    misses: u64,
    /// Entries dropped for capacity (FIFO) or staleness (content/regime).
    evictions: u64,
    /// Entries dropped by TLBI-scope maintenance (`clear`/`invalidate_*`).
    invalidations: u64,
}

impl Default for ICache {
    fn default() -> Self {
        ICache::new(64)
    }
}

impl ICache {
    /// `capacity` bounds the number of cached *pages* (FIFO replacement).
    pub fn new(capacity: usize) -> Self {
        ICache {
            pages: FxHashMap::default(),
            order: VecDeque::new(),
            capacity: capacity.max(1),
            hits: 0,
            misses: 0,
            evictions: 0,
            invalidations: 0,
        }
    }

    /// Look for a decoded block for the fetch at `va`. Validates regime
    /// flags, the ASID tag (global entries match any ASID), the fetch EL,
    /// and the code frame's content version; stale entries are evicted on
    /// the spot. Root mismatches are reported, not evicted — the caller
    /// decides whether the main TLB vouches for the translation.
    #[allow(clippy::too_many_arguments)]
    pub fn probe(
        &mut self,
        mem: &PhysMem,
        vmid: u16,
        asid: u16,
        el: ExceptionLevel,
        va: u64,
        s1_enabled: bool,
        wxn: bool,
        root: u64,
        vttbr: Option<u64>,
    ) -> Option<ProbeHit> {
        let key = PageKey { vmid, vpn: va >> 12 };
        let entries = match self.pages.get_mut(&key) {
            Some(v) => v,
            None => {
                self.misses += 1;
                return None;
            }
        };
        let idx = entries.iter().position(|e| (e.info.asid.is_none() || e.info.asid == Some(asid)) && e.info.el == el);
        let Some(idx) = idx else {
            self.misses += 1;
            return None;
        };

        // Regime flags must match exactly; a flipped SCTLR bit changes
        // permission-check outcomes, so the entry is dead.
        let stale_flags = {
            let e = &entries[idx];
            e.info.s1_enabled != s1_enabled || e.info.wxn != wxn
        };
        // Content staleness: O(1) via the global write generation, falling
        // back to the single frame-version compare.
        let stale_content = {
            let e = &mut entries[idx];
            if e.checked_gen == mem.write_gen() {
                false
            } else if mem.frame_version(e.info.pa_page) == Some(e.frame_version) {
                e.checked_gen = mem.write_gen();
                false
            } else {
                true
            }
        };
        if stale_flags || stale_content {
            self.evictions += 1;
            entries.remove(idx);
            if entries.is_empty() {
                self.pages.remove(&key);
                self.order.retain(|k| *k != key);
            }
            self.misses += 1;
            return None;
        }

        let e = &entries[idx];
        let slot = (va >> 2) as usize & (WORDS_PER_PAGE - 1);
        match e.slots[slot] {
            Some((word, insn)) => {
                self.hits += 1;
                Some(ProbeHit {
                    snapshot: e.info.snapshot,
                    roots_match: e.info.root == root && e.info.vttbr == vttbr,
                    pa: e.info.pa_page | (va & 0xfff),
                    word,
                    insn,
                })
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Record a decoded word after a successful slow-path fetch.
    pub fn fill(&mut self, mem: &PhysMem, vmid: u16, va: u64, info: FillInfo, word: u32, insn: Insn) {
        let Some(frame_version) = mem.frame_version(info.pa_page) else { return };
        let key = PageKey { vmid, vpn: va >> 12 };
        let slot = (va >> 2) as usize & (WORDS_PER_PAGE - 1);
        let checked_gen = mem.write_gen();

        if let Some(entries) = self.pages.get_mut(&key) {
            if let Some(e) = entries.iter_mut().find(|e| e.info.asid == info.asid && e.info.el == info.el) {
                if e.info == info && e.frame_version == frame_version {
                    e.checked_gen = checked_gen;
                    if e.slots[slot] != Some((word, insn)) {
                        // A newly decoded slot can lengthen a run that
                        // previously ended at an empty slot: drop compiled
                        // blocks so they re-lower against the full run.
                        e.blocks.clear();
                        e.slots[slot] = Some((word, insn));
                    }
                } else {
                    // Regime or content moved on: restart the entry.
                    self.evictions += 1;
                    e.info = info;
                    e.frame_version = frame_version;
                    e.checked_gen = checked_gen;
                    e.fast_gen = 0;
                    e.slots.iter_mut().for_each(|s| *s = None);
                    e.blocks.clear();
                    e.slots[slot] = Some((word, insn));
                }
                return;
            }
        }

        while self.order.len() >= self.capacity {
            if let Some(old) = self.order.pop_front() {
                if let Some(dropped) = self.pages.remove(&old) {
                    self.evictions += dropped.len() as u64;
                }
            }
        }
        let entries = self.pages.entry(key).or_default();
        if entries.is_empty() {
            self.order.push_back(key);
        }
        let mut slots = vec![None; WORDS_PER_PAGE];
        slots[slot] = Some((word, insn));
        entries.push(PageEntry {
            info,
            frame_version,
            checked_gen,
            fast_gen: 0,
            fast_asid: 0,
            slots,
            blocks: FxHashMap::default(),
        });
    }

    /// The memoised fast path: serve a block with *no* TLB interaction
    /// beyond replaying the free L1 hit, valid only while the TLB
    /// generation recorded by [`Self::arm_fast`] is current (so the L1
    /// lookup outcome is provably unchanged), the fetch ASID matches the
    /// arm-time ASID, the regime flags match, and the code frame is
    /// content-fresh. Returns `(pa, word, insn)`; any failed check falls
    /// back to the slow path (which handles eviction).
    #[allow(clippy::too_many_arguments)]
    #[inline]
    pub(crate) fn fast_probe(
        &mut self,
        mem: &PhysMem,
        vmid: u16,
        asid: u16,
        el: ExceptionLevel,
        va: u64,
        s1_enabled: bool,
        wxn: bool,
        tlb_gen: u64,
    ) -> Option<(u64, u32, Insn)> {
        let key = PageKey { vmid, vpn: va >> 12 };
        let entries = self.pages.get_mut(&key)?;
        let e = entries.iter_mut().find(|e| (e.info.asid.is_none() || e.info.asid == Some(asid)) && e.info.el == el)?;
        if e.fast_gen != tlb_gen || e.fast_asid != asid || e.info.s1_enabled != s1_enabled || e.info.wxn != wxn {
            return None;
        }
        if e.checked_gen != mem.write_gen() {
            if mem.frame_version(e.info.pa_page) != Some(e.frame_version) {
                return None;
            }
            e.checked_gen = mem.write_gen();
        }
        let slot = (va >> 2) as usize & (WORDS_PER_PAGE - 1);
        let (word, insn) = e.slots[slot]?;
        self.hits += 1;
        Some((e.info.pa_page | (va & 0xfff), word, insn))
    }

    /// Extract a straight-line decoded run for superblock execution.
    ///
    /// Validation is exactly [`Self::fast_probe`]'s (armed at `tlb_gen`
    /// for `asid`, regime flags unchanged, code frame content-fresh) but
    /// no hit/miss counters are touched here: the superblock executor
    /// replays one hit per instruction *as it executes*, so a partially
    /// executed block leaves the same statistics as stepping would.
    ///
    /// The run starts at `va`'s slot and extends while each instruction
    /// is decoded, [`chainable`], and within the page, up to `max`
    /// instructions; one trailing non-chainable instruction may be
    /// included because nothing executes after it inside the block.
    /// Returns the backing `(pa_page, frame_version)` for per-instruction
    /// content revalidation, or `None` to fall back to single-stepping.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn superblock(
        &mut self,
        mem: &PhysMem,
        vmid: u16,
        asid: u16,
        el: ExceptionLevel,
        va: u64,
        s1_enabled: bool,
        wxn: bool,
        tlb_gen: u64,
        max: usize,
        out: &mut Vec<(u32, Insn)>,
    ) -> Option<(u64, u64)> {
        out.clear();
        if max == 0 {
            return None;
        }
        let key = PageKey { vmid, vpn: va >> 12 };
        let entries = self.pages.get_mut(&key)?;
        let e = entries.iter_mut().find(|e| (e.info.asid.is_none() || e.info.asid == Some(asid)) && e.info.el == el)?;
        if e.fast_gen != tlb_gen || e.fast_asid != asid || e.info.s1_enabled != s1_enabled || e.info.wxn != wxn {
            return None;
        }
        if e.checked_gen != mem.write_gen() {
            if mem.frame_version(e.info.pa_page) != Some(e.frame_version) {
                return None;
            }
            e.checked_gen = mem.write_gen();
        }
        let first = (va >> 2) as usize & (WORDS_PER_PAGE - 1);
        for slot in first..WORDS_PER_PAGE {
            if out.len() >= max {
                break;
            }
            let Some((word, insn)) = e.slots[slot] else { break };
            out.push((word, insn));
            if !chainable(&insn) {
                break;
            }
        }
        if out.is_empty() {
            return None;
        }
        Some((e.info.pa_page, e.frame_version))
    }

    /// Serve a compiled superblock for the fetch at `va`. Validation is
    /// exactly [`Self::superblock`]'s — armed at `tlb_gen` for `asid`,
    /// regime flags unchanged, code frame content-fresh — so a compiled
    /// block is served only in states where the decoded run it was
    /// lowered from would have been. Returns the block plus the backing
    /// `(pa_page, frame_version)` for per-segment content revalidation.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    pub(crate) fn jit_block(
        &mut self,
        mem: &PhysMem,
        vmid: u16,
        asid: u16,
        el: ExceptionLevel,
        va: u64,
        s1_enabled: bool,
        wxn: bool,
        tlb_gen: u64,
    ) -> Option<(Arc<CompiledBlock>, u64, u64)> {
        let key = PageKey { vmid, vpn: va >> 12 };
        let entries = self.pages.get_mut(&key)?;
        let e = entries.iter_mut().find(|e| (e.info.asid.is_none() || e.info.asid == Some(asid)) && e.info.el == el)?;
        if e.fast_gen != tlb_gen || e.fast_asid != asid || e.info.s1_enabled != s1_enabled || e.info.wxn != wxn {
            return None;
        }
        if e.checked_gen != mem.write_gen() {
            if mem.frame_version(e.info.pa_page) != Some(e.frame_version) {
                return None;
            }
            e.checked_gen = mem.write_gen();
        }
        let slot = (va >> 2) as u16 & (WORDS_PER_PAGE as u16 - 1);
        let block = e.blocks.get(&slot)?;
        Some((Arc::clone(block), e.info.pa_page, e.frame_version))
    }

    /// Attach a compiled superblock to the page entry its decoded run was
    /// just extracted from. A missing entry (evicted between extraction
    /// and lowering — impossible today, but cheap to tolerate) simply
    /// drops the block.
    pub(crate) fn store_jit_block(
        &mut self,
        vmid: u16,
        asid: u16,
        el: ExceptionLevel,
        va: u64,
        block: CompiledBlock,
    ) -> bool {
        let key = PageKey { vmid, vpn: va >> 12 };
        let Some(entries) = self.pages.get_mut(&key) else { return false };
        let Some(e) =
            entries.iter_mut().find(|e| (e.info.asid.is_none() || e.info.asid == Some(asid)) && e.info.el == el)
        else {
            return false;
        };
        let slot = (va >> 2) as u16 & (WORDS_PER_PAGE as u16 - 1);
        e.blocks.insert(slot, Arc::new(block));
        true
    }

    /// Replay one decoded-block hit (superblock per-instruction
    /// bookkeeping).
    #[inline]
    pub(crate) fn count_hit(&mut self) {
        self.hits += 1;
    }

    /// Replay `n` decoded-block hits at once (JIT ALU-run bookkeeping).
    #[inline]
    pub(crate) fn count_hits(&mut self, n: u64) {
        self.hits += n;
    }

    /// Record that, at TLB generation `tlb_gen`, serving this page's block
    /// for `asid` is equivalent to a free L1 TLB hit.
    pub(crate) fn arm_fast(&mut self, vmid: u16, asid: u16, el: ExceptionLevel, va: u64, tlb_gen: u64) {
        let key = PageKey { vmid, vpn: va >> 12 };
        if let Some(entries) = self.pages.get_mut(&key) {
            if let Some(e) =
                entries.iter_mut().find(|e| (e.info.asid.is_none() || e.info.asid == Some(asid)) && e.info.el == el)
            {
                e.fast_gen = tlb_gen;
                e.fast_asid = asid;
            }
        }
    }

    /// `TLBI ALLE1` scope: drop everything.
    pub fn clear(&mut self) {
        self.invalidations += self.len() as u64;
        self.pages.clear();
        self.order.clear();
    }

    /// `TLBI VMALLS12E1` scope: drop one VMID.
    pub fn invalidate_vmid(&mut self, vmid: u16) {
        let before = self.len();
        self.pages.retain(|k, _| k.vmid != vmid);
        self.order.retain(|k| k.vmid != vmid);
        self.invalidations += (before - self.len()) as u64;
    }

    /// `TLBI ASIDE1` scope: drop one `(vmid, asid)`; global entries survive.
    pub fn invalidate_asid(&mut self, vmid: u16, asid: u16) {
        let before = self.len();
        for (k, v) in self.pages.iter_mut() {
            if k.vmid == vmid {
                v.retain(|e| e.info.asid != Some(asid));
            }
        }
        let pages = &mut self.pages;
        self.order.retain(|k| pages.get(k).is_some_and(|v| !v.is_empty()));
        pages.retain(|_, v| !v.is_empty());
        self.invalidations += (before - self.len()) as u64;
    }

    /// `TLBI VAAE1` scope: drop one page in a VMID, any ASID.
    pub fn invalidate_va(&mut self, vmid: u16, va: u64) {
        let key = PageKey { vmid, vpn: va >> 12 };
        if let Some(dropped) = self.pages.remove(&key) {
            self.invalidations += dropped.len() as u64;
        }
        self.order.retain(|k| *k != key);
    }

    /// Does the cache hold an entry with this exact ASID tag for the page?
    /// (`None` = a global entry.) For tests and diagnostics.
    pub fn contains(&self, vmid: u16, asid: Option<u16>, va: u64) -> bool {
        let key = PageKey { vmid, vpn: va >> 12 };
        self.pages.get(&key).is_some_and(|v| v.iter().any(|e| e.info.asid == asid))
    }

    /// Number of cached page entries (per-ASID entries counted separately).
    pub fn len(&self) -> usize {
        self.pages.values().map(Vec::len).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// `(hits, misses)` counters for probes since creation.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Entries dropped for capacity or staleness since creation.
    pub fn eviction_count(&self) -> u64 {
        self.evictions
    }

    /// Entries dropped by TLBI-scope maintenance since creation.
    pub fn invalidation_count(&self) -> u64 {
        self.invalidations
    }

    /// Insert a minimal entry directly (test/diagnostic helper): tags a
    /// decoded `NOP` for `(vmid, asid, va)` against `pa_page` in `mem`.
    pub fn seed_entry(&mut self, mem: &PhysMem, vmid: u16, asid: Option<u16>, va: u64, pa_page: u64) {
        let info = FillInfo {
            asid,
            el: ExceptionLevel::El0,
            s1_enabled: true,
            wxn: false,
            root: 0,
            vttbr: None,
            snapshot: None,
            pa_page,
        };
        const NOP: u32 = 0xD503_201F;
        self.fill(mem, vmid, va, info, NOP, Insn::decode(NOP));
    }
}

/// Can a superblock continue past this instruction?
///
/// Chainable instructions fall through to `pc + 4` when they do not fault
/// and cannot by themselves change the exception level, PSTATE, a system
/// register, or TLB *structure beyond ordinary inserts* — loads and
/// stores may still fault or self-modify code, which the superblock
/// executor catches by revalidating the TLB generation, the code frame
/// version, and the PC after every instruction. Branches, exception
/// generators, barriers, and system-register traffic all end the block
/// (they may be its final instruction, since nothing executes after
/// them inside the block).
fn chainable(insn: &Insn) -> bool {
    matches!(
        insn,
        Insn::Movz { .. }
            | Insn::Movk { .. }
            | Insn::Movn { .. }
            | Insn::AddImm { .. }
            | Insn::AddReg { .. }
            | Insn::LogicReg { .. }
            | Insn::LsrImm { .. }
            | Insn::LslImm { .. }
            | Insn::Adr { .. }
            | Insn::Adrp { .. }
            | Insn::Ldp { .. }
            | Insn::Stp { .. }
            | Insn::Madd { .. }
            | Insn::Udiv { .. }
            | Insn::Csel { .. }
            | Insn::Csinc { .. }
            | Insn::LdrImm { .. }
            | Insn::StrImm { .. }
            | Insn::Ldtr { .. }
            | Insn::Sttr { .. }
            | Insn::Nop
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded(mem: &PhysMem, pairs: &[(u16, Option<u16>, u64, u64)]) -> ICache {
        let mut ic = ICache::new(16);
        for &(vmid, asid, va, pa) in pairs {
            ic.seed_entry(mem, vmid, asid, va, pa);
        }
        ic
    }

    #[test]
    fn invalidate_va_drops_all_asids() {
        let mut mem = PhysMem::new();
        let pa = mem.alloc_frame();
        let mut ic = seeded(&mem, &[(1, Some(1), 0x1000, pa), (1, Some(2), 0x1000, pa)]);
        assert_eq!(ic.len(), 2);
        ic.invalidate_va(1, 0x1abc);
        assert!(ic.is_empty());
    }

    #[test]
    fn invalidate_asid_spares_globals() {
        let mut mem = PhysMem::new();
        let pa = mem.alloc_frame();
        let mut ic = seeded(&mem, &[(1, Some(5), 0x1000, pa), (1, None, 0x2000, pa)]);
        ic.invalidate_asid(1, 5);
        assert!(!ic.contains(1, Some(5), 0x1000));
        assert!(ic.contains(1, None, 0x2000));
    }

    #[test]
    fn invalidate_vmid_is_scoped() {
        let mut mem = PhysMem::new();
        let pa = mem.alloc_frame();
        let mut ic = seeded(&mem, &[(1, Some(1), 0x1000, pa), (2, Some(1), 0x1000, pa)]);
        ic.invalidate_vmid(1);
        assert!(!ic.contains(1, Some(1), 0x1000));
        assert!(ic.contains(2, Some(1), 0x1000));
    }

    #[test]
    fn frame_write_invalidates_on_probe() {
        let mut mem = PhysMem::new();
        let pa = mem.alloc_frame();
        let mut ic = seeded(&mem, &[(0, Some(1), 0x1000, pa)]);
        assert!(ic.probe(&mem, 0, 1, ExceptionLevel::El0, 0x1000, true, false, 0, None).is_some());
        mem.write(pa, 0xD503_201F, 4);
        assert!(
            ic.probe(&mem, 0, 1, ExceptionLevel::El0, 0x1000, true, false, 0, None).is_none(),
            "write to the code frame must evict the block"
        );
        assert!(ic.is_empty());
    }

    #[test]
    fn unrelated_write_keeps_entry() {
        let mut mem = PhysMem::new();
        let pa = mem.alloc_frame();
        let other = mem.alloc_frame();
        let mut ic = seeded(&mem, &[(0, Some(1), 0x1000, pa)]);
        mem.write(other, 0x1234_5678, 4);
        assert!(ic.probe(&mem, 0, 1, ExceptionLevel::El0, 0x1000, true, false, 0, None).is_some());
    }

    #[test]
    fn global_entry_matches_any_asid() {
        let mut mem = PhysMem::new();
        let pa = mem.alloc_frame();
        let mut ic = seeded(&mem, &[(0, None, 0x1000, pa)]);
        for asid in [1u16, 7, 999] {
            assert!(ic.probe(&mem, 0, asid, ExceptionLevel::El0, 0x1000, true, false, 0, None).is_some());
        }
    }

    #[test]
    fn capacity_evicts_fifo_pages() {
        let mut mem = PhysMem::new();
        let pa = mem.alloc_frame();
        let mut ic = ICache::new(2);
        ic.seed_entry(&mem, 0, Some(1), 0x1000, pa);
        ic.seed_entry(&mem, 0, Some(1), 0x2000, pa);
        ic.seed_entry(&mem, 0, Some(1), 0x3000, pa);
        assert!(!ic.contains(0, Some(1), 0x1000), "oldest page evicted");
        assert!(ic.contains(0, Some(1), 0x3000));
    }

    #[test]
    fn regime_flag_change_evicts() {
        let mut mem = PhysMem::new();
        let pa = mem.alloc_frame();
        let mut ic = seeded(&mem, &[(0, Some(1), 0x1000, pa)]);
        assert!(
            ic.probe(&mem, 0, 1, ExceptionLevel::El0, 0x1000, true, true, 0, None).is_none(),
            "WXN flip must not serve the old block"
        );
        assert!(ic.is_empty());
    }
}
