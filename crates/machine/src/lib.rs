//! Simulated ARM64 machine for the LightZone reproduction.
//!
//! The machine implements the *architectural* rules LightZone's security
//! argument depends on:
//!
//! * sparse physical memory with a frame allocator ([`mem`]),
//! * 4-level stage-1 and 3-level stage-2 translation with real descriptor
//!   bit layouts, hierarchical permission intersection, and `PSTATE.PAN`
//!   enforcement ([`pte`], [`walk`]),
//! * a TLB tagged by `(VMID, ASID, page)` with global entries and
//!   capacity-bounded eviction ([`tlb`]), carrying a decoded-block fetch
//!   cache that skips host-side walk + decode work on the interpreter hot
//!   path without changing modelled cycles ([`icache`]),
//! * a CPU interpreter over the `lz-arch` instruction subset with
//!   exception levels, vectored exception entry, `HCR_EL2` trap controls,
//!   hardware watchpoints, and cycle accounting ([`cpu`]),
//! * an observability layer — per-subsystem counters, a bounded
//!   cycle-stamped event journal, and a JSON/text report assembler — that
//!   never feeds back into the modelled domain ([`metrics`]).
//!
//! Code that an in-process attacker can influence (application code, the
//! secure call gate, attack payloads) executes here as real instructions;
//! trusted kernel and hypervisor paths are modelled by the `lz-kernel`
//! and `lightzone` crates, which mutate machine state directly and charge
//! the corresponding cycle costs.

pub mod chaos;
pub mod cpu;
pub mod fxhash;
pub mod icache;
pub mod jit;
pub mod mem;
pub mod metrics;
pub mod pte;
pub mod smp;
pub mod tlb;
pub mod trace;
pub mod walk;

pub use chaos::{ChaosState, FaultPlan, FaultSite, LzFault, ALL_SITES};
pub use cpu::{
    default_fastpath, default_fetch_cache, default_jit, default_parallel, set_default_fastpath,
    set_default_fetch_cache, set_default_jit, set_default_parallel, Exit, Machine,
};
pub use icache::ICache;
pub use mem::PhysMem;
pub use metrics::{Event, EventKind, Journal, Report, Section};
pub use smp::{CoreCtx, SmpState, MAX_CORES};
pub use tlb::Tlb;
pub use walk::{Access, Fault, FaultKind, Stage};
