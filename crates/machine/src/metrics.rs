//! Unified observability layer: per-subsystem counters, a bounded typed
//! event journal, and a JSON/text report assembler.
//!
//! The paper's security mechanisms (gate checks, sanitizer scans,
//! break-before-make, stage-2 faults) were previously observable only
//! through ad-hoc fields scattered across subsystems. This module gives
//! them one home:
//!
//! * **Counters** — plain `u64` fields embedded in the subsystem that owns
//!   them ([`WalkStats`] and [`InvalStats`] in the TLB, eviction and
//!   invalidation counts in the decoded-block cache, switch and trap maps
//!   in [`MachineMetrics`]). Counters are always on: they are host-side
//!   bookkeeping and never feed back into the modelled domain.
//! * **Journal** — a bounded ring of cycle-stamped [`Event`]s
//!   (generalizing `trace::Trace`). Recording is gated by the
//!   `LZ_METRICS` default (or [`Journal::set_enabled`]) because events
//!   carry more payload than counters.
//! * **Report** — a [`Section`]/[`Report`] pair that snapshots every
//!   counter into an ordered, JSON-serialisable registry (`repro stats`).
//!
//! # Zero modelled cost
//!
//! Nothing here charges cycles, touches the TLB, or perturbs any
//! modelled state. All paper tables and the differential/determinism
//! suites are byte-identical with metrics enabled or disabled; the
//! toggle only controls host-side journal recording.

use crate::walk::{Fault, FaultKind, Stage};
use lz_arch::esr::ExceptionClass;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// Process-wide default for journal recording, initialised from the
/// `LZ_METRICS` environment variable (`0`/`off` disables). Mirrors the
/// `LZ_FETCH_CACHE` pattern in `cpu.rs`.
fn default_flag() -> &'static AtomicBool {
    static FLAG: OnceLock<AtomicBool> = OnceLock::new();
    FLAG.get_or_init(|| {
        let on = !matches!(std::env::var("LZ_METRICS").as_deref(), Ok("0") | Ok("off") | Ok("false"));
        AtomicBool::new(on)
    })
}

/// The default journal-recording setting for new [`Journal`]s.
pub fn default_metrics() -> bool {
    default_flag().load(Ordering::Relaxed)
}

/// Override the default journal-recording setting for new [`Journal`]s
/// (tests and benchmarks; existing journals are unaffected).
pub fn set_default_metrics(on: bool) {
    default_flag().store(on, Ordering::Relaxed)
}

/// TLB invalidation counters, one per architectural TLBI scope.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct InvalStats {
    /// `TLBI ALLE1`-scope invalidations.
    pub all: u64,
    /// `TLBI VMALLS12E1`-scope invalidations.
    pub vmid: u64,
    /// `TLBI ASIDE1`-scope invalidations.
    pub asid: u64,
    /// `TLBI VAAE1`-scope invalidations.
    pub va: u64,
}

impl InvalStats {
    /// Total invalidation operations across all scopes.
    pub fn total(&self) -> u64 {
        self.all + self.vmid + self.asid + self.va
    }
}

/// Walk counters: how many stage-1/stage-2 table walks ran and which
/// fault kinds they produced.
///
/// Walk counts are *modelled* walks: the decoded-block fetch cache
/// replays the walk it skips, so the counts are identical with the cache
/// on or off. Stage-2 walks performed internally by a nested stage-1 walk
/// (`s1ptw`) are folded into the stage-1 walk that triggered them.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WalkStats {
    pub s1_walks: u64,
    pub s2_walks: u64,
    pub s1_translation_faults: u64,
    pub s1_permission_faults: u64,
    pub s1_access_flag_faults: u64,
    pub s2_translation_faults: u64,
    pub s2_permission_faults: u64,
    pub s2_access_flag_faults: u64,
}

impl WalkStats {
    /// Count one translation failure by stage and kind.
    pub fn count_fault(&mut self, f: &Fault) {
        let slot = match (f.stage, f.kind) {
            (Stage::S1, FaultKind::Translation) => &mut self.s1_translation_faults,
            (Stage::S1, FaultKind::Permission) => &mut self.s1_permission_faults,
            (Stage::S1, FaultKind::AccessFlag) => &mut self.s1_access_flag_faults,
            (Stage::S2, FaultKind::Translation) => &mut self.s2_translation_faults,
            (Stage::S2, FaultKind::Permission) => &mut self.s2_permission_faults,
            (Stage::S2, FaultKind::AccessFlag) => &mut self.s2_access_flag_faults,
        };
        *slot += 1;
    }

    /// Total faults across both stages.
    pub fn total_faults(&self) -> u64 {
        self.s1_translation_faults
            + self.s1_permission_faults
            + self.s1_access_flag_faults
            + self.s2_translation_faults
            + self.s2_permission_faults
            + self.s2_access_flag_faults
    }
}

/// Host-side fast-path counters: how often the data-side acceleration
/// layer (micro-DTLB, superblock execution, stage-1/stage-2 walk cache)
/// short-circuited host work.
///
/// Unlike [`WalkStats`], these counters describe *host-side* savings
/// only: they are zero with the fast path off and positive with it on,
/// while every modelled quantity (cycles, TLB hit/miss counts, walk
/// counts, fault ordering) stays byte-identical. They live in the `walk`
/// report section because that is the work they elide.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FastStats {
    /// Data accesses served by the micro-DTLB (replayed as free L1 hits).
    pub dtlb_hits: u64,
    /// Superblocks completed (each exit covers one straight-line run of
    /// decoded instructions executed without per-instruction probes).
    pub superblock_exits: u64,
    /// Stage-1(+stage-2) walks replayed from the walk cache instead of
    /// touching up to 7 table descriptors.
    pub walkcache_hits: u64,
    /// Compiled superblocks executed by the template-JIT (zero with the
    /// JIT — or anything it layers on — off).
    pub jit_blocks: u64,
    /// Superblocks lowered to compiled blocks (each counts once, at
    /// compile time).
    pub jit_compiled: u64,
}

/// Machine-level counters that belong to no single translation structure:
/// interpreted gate switches (EL1 `MSR TTBR0_EL1` writes) and trap kinds.
#[derive(Debug, Default)]
pub struct MachineMetrics {
    /// Total interpreted `TTBR0_EL1` writes at EL1 (gate switches).
    pub domain_switches: u64,
    /// Gate switches broken down by target ASID (one ASID per domain
    /// page table in the LightZone design).
    pub switches_by_asid: BTreeMap<u16, u64>,
    /// Exceptions taken by the interpreter, by exception class.
    pub traps: BTreeMap<String, u64>,
}

impl MachineMetrics {
    /// Count one gate switch to `asid`.
    pub fn domain_switch(&mut self, asid: u16) {
        self.domain_switches += 1;
        *self.switches_by_asid.entry(asid).or_insert(0) += 1;
    }

    /// Count one exception of the given class.
    pub fn trap(&mut self, class: ExceptionClass) {
        *self.traps.entry(format!("{class:?}")).or_insert(0) += 1;
    }

    /// Traps of one class counted so far.
    pub fn trap_count(&self, class: ExceptionClass) -> u64 {
        self.traps.get(&format!("{class:?}")).copied().unwrap_or(0)
    }

    /// Fold the counters accumulated by an epoch shell into this set
    /// (commit-order barrier merge; see [`crate::smp`]).
    pub fn absorb(&mut self, other: MachineMetrics) {
        self.domain_switches += other.domain_switches;
        for (asid, n) in other.switches_by_asid {
            *self.switches_by_asid.entry(asid).or_insert(0) += n;
        }
        for (class, n) in other.traps {
            *self.traps.entry(class).or_insert(0) += n;
        }
    }
}

/// A typed journal event. Variants mirror the security-relevant
/// transitions in the model; payloads are page-granular addresses so the
/// journal never leaks more than a fault report would.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Interpreted EL1 `MSR TTBR0_EL1` — a call-gate domain switch.
    DomainSwitch { asid: u16, root: u64 },
    /// Stage-2 fault forwarded to the Lowvisor.
    Stage2Fault { fake_page: u64 },
    /// Sanitizer scan rejected a page (sensitive instruction found).
    SanitizerReject { page: u64 },
    /// Break-before-make unmap of a page from every domain.
    BbmUnmap { page: u64 },
    /// Security violation — the process is about to be killed.
    Violation { reason: &'static str },
    /// Exception taken by the interpreter.
    Trap { class: ExceptionClass },
    /// Software IPI from one core to another (TLB-shootdown doorbell).
    Ipi { from: u8, to: u8 },
    /// Cross-core TLB shootdown completed: `targets` remote cores
    /// invalidated (`page` is 0 for VMID/ASID-scoped shootdowns).
    Shootdown { vmid: u16, page: u64, targets: u8 },
    /// Injected fault fired (`seq` is the chaos-engine consultation
    /// sequence number, for replaying a recorded schedule).
    Fault { site: &'static str, seq: u64 },
}

impl EventKind {
    /// Priority-lane events: security violations and injected faults are
    /// what the supervisor and the post-mortem tooling need, so the
    /// journal's drop-oldest eviction skips over them while any
    /// non-priority event remains to evict (see [`Journal::record`]).
    pub fn is_priority(&self) -> bool {
        matches!(self, EventKind::Violation { .. } | EventKind::Fault { .. })
    }

    /// Short type tag used by the text and JSON dumps.
    pub fn tag(&self) -> &'static str {
        match self {
            EventKind::DomainSwitch { .. } => "DomainSwitch",
            EventKind::Stage2Fault { .. } => "Stage2Fault",
            EventKind::SanitizerReject { .. } => "SanitizerReject",
            EventKind::BbmUnmap { .. } => "BbmUnmap",
            EventKind::Violation { .. } => "Violation",
            EventKind::Trap { .. } => "Trap",
            EventKind::Ipi { .. } => "Ipi",
            EventKind::Shootdown { .. } => "Shootdown",
            EventKind::Fault { .. } => "Fault",
        }
    }

    fn json_fields(&self, out: &mut String) {
        use std::fmt::Write;
        match self {
            EventKind::DomainSwitch { asid, root } => {
                let _ = write!(out, ",\"asid\":{asid},\"root\":{root}");
            }
            EventKind::Stage2Fault { fake_page } => {
                let _ = write!(out, ",\"fake_page\":{fake_page}");
            }
            EventKind::SanitizerReject { page } | EventKind::BbmUnmap { page } => {
                let _ = write!(out, ",\"page\":{page}");
            }
            EventKind::Violation { reason } => {
                let _ = write!(out, ",\"reason\":\"{}\"", escape_json(reason));
            }
            EventKind::Ipi { from, to } => {
                let _ = write!(out, ",\"from\":{from},\"to\":{to}");
            }
            EventKind::Shootdown { vmid, page, targets } => {
                let _ = write!(out, ",\"vmid\":{vmid},\"page\":{page},\"targets\":{targets}");
            }
            EventKind::Trap { class } => {
                let _ = write!(out, ",\"class\":\"{class:?}\"");
            }
            EventKind::Fault { site, seq } => {
                let _ = write!(out, ",\"site\":\"{}\",\"seq\":{seq}", escape_json(site));
            }
        }
    }
}

/// One journal entry: an event plus the cycle counter when it happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    pub cycles: u64,
    pub kind: EventKind,
}

/// A bounded ring of typed events (compare `trace::Trace`, which records
/// every retired instruction; the journal records only the rare
/// security-relevant transitions, so its default capacity is generous).
#[derive(Debug)]
pub struct Journal {
    events: VecDeque<Event>,
    capacity: usize,
    enabled: bool,
    dropped: u64,
}

impl Journal {
    /// Create a journal holding at most `capacity` events; recording
    /// starts out following the process-wide [`default_metrics`] flag.
    pub fn new(capacity: usize) -> Self {
        Journal {
            events: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            enabled: default_metrics(),
            dropped: 0,
        }
    }

    /// An empty journal with this journal's capacity and enablement —
    /// the per-core shell journal for one epoch (see [`crate::smp`]).
    pub fn fork(&self) -> Journal {
        Journal {
            events: VecDeque::with_capacity(self.capacity.min(4096)),
            capacity: self.capacity,
            enabled: self.enabled,
            dropped: 0,
        }
    }

    /// Append an epoch shell's events (oldest first) with normal ring
    /// semantics, folding its eviction count in. Barrier-side merge:
    /// commit order is the deterministic core order, so parallel and
    /// replay schedules absorb identical sequences.
    pub fn absorb(&mut self, other: Journal) {
        self.dropped += other.dropped;
        for e in other.events {
            if self.events.len() == self.capacity {
                self.evict_one();
            }
            self.events.push_back(e);
        }
    }

    /// Evict one event to make room: the oldest non-priority event, or —
    /// when the whole ring is priority events — the oldest outright (the
    /// capacity bound always holds).
    fn evict_one(&mut self) {
        match self.events.iter().position(|e| !e.kind.is_priority()) {
            Some(i) => {
                self.events.remove(i);
            }
            None => {
                self.events.pop_front();
            }
        }
        self.dropped += 1;
    }

    /// Turn recording on or off. Events already recorded are kept.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Whether [`Journal::record`] currently stores events.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record an event at the given cycle stamp. No-op while disabled;
    /// once the ring is full the oldest *non-priority* event is dropped
    /// (and counted), so violations and injected faults — the priority
    /// lane ([`EventKind::is_priority`]) — are never evicted by routine
    /// traffic. Only when the ring holds nothing but priority events does
    /// the oldest of those go; the loss is visible in
    /// [`Journal::dropped`] either way.
    pub fn record(&mut self, cycles: u64, kind: EventKind) {
        if !self.enabled {
            return;
        }
        if self.events.len() == self.capacity {
            self.evict_one();
        }
        self.events.push_back(Event { cycles, kind });
    }

    /// How many events were evicted from the ring to stay within the
    /// capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The capacity bound (the ring never holds more events than this).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The recorded events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Count recorded events matching a predicate on the kind.
    pub fn count(&self, pred: impl Fn(&EventKind) -> bool) -> u64 {
        self.events.iter().filter(|e| pred(&e.kind)).count() as u64
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Human-readable dump, one event per line, oldest first.
    pub fn dump_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for e in &self.events {
            let _ = writeln!(out, "[{:>12}] {:?}", e.cycles, e.kind);
        }
        out
    }

    /// JSON array of `{"cycles":…,"event":"…",…}` objects, oldest first.
    pub fn dump_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"cycles\":{},\"event\":\"{}\"", e.cycles, e.kind.tag());
            e.kind.json_fields(&mut out);
            out.push('}');
        }
        out.push(']');
        out
    }
}

impl Default for Journal {
    fn default() -> Self {
        Journal::new(1024)
    }
}

/// One named group of counters in a [`Report`] (a subsystem).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Section {
    pub name: &'static str,
    pub counters: Vec<(String, u64)>,
}

impl Section {
    pub fn new(name: &'static str) -> Self {
        Section { name, counters: Vec::new() }
    }

    /// Append a counter (insertion order is preserved in the dumps).
    pub fn push(&mut self, key: impl Into<String>, value: u64) {
        self.counters.push((key.into(), value));
    }

    /// Builder-style [`Section::push`].
    pub fn with(mut self, key: impl Into<String>, value: u64) -> Self {
        self.push(key, value);
        self
    }

    /// Look up a counter by key.
    pub fn get(&self, key: &str) -> Option<u64> {
        self.counters.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }
}

/// An ordered collection of [`Section`]s — the full metrics registry at
/// one point in time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    pub sections: Vec<Section>,
}

impl Report {
    pub fn push(&mut self, section: Section) {
        self.sections.push(section);
    }

    /// Look up a section by name.
    pub fn section(&self, name: &str) -> Option<&Section> {
        self.sections.iter().find(|s| s.name == name)
    }

    /// `{"tlb":{"hits":…},…}` — sections as objects keyed by name.
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("{");
        for (i, s) in self.sections.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{{", escape_json(s.name));
            for (j, (k, v)) in s.counters.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":{}", escape_json(k), v);
            }
            out.push('}');
        }
        out.push('}');
        out
    }

    /// Aligned human-readable dump.
    pub fn to_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for s in &self.sections {
            let _ = writeln!(out, "{}:", s.name);
            for (k, v) in &s.counters {
                let _ = writeln!(out, "  {k:<28} {v}");
            }
        }
        out
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn journal_is_bounded_and_ordered() {
        let mut j = Journal::new(3);
        j.set_enabled(true);
        for i in 0..5 {
            j.record(i, EventKind::BbmUnmap { page: i << 12 });
        }
        assert_eq!(j.len(), 3);
        let stamps: Vec<u64> = j.events().map(|e| e.cycles).collect();
        assert_eq!(stamps, vec![2, 3, 4], "oldest events dropped first");
        assert_eq!(j.dropped(), 2, "evictions are counted, not silent");
        assert!(j.len() <= j.capacity());
    }

    #[test]
    fn journal_priority_events_survive_drop_oldest() {
        let mut j = Journal::new(3);
        j.set_enabled(true);
        j.record(0, EventKind::Violation { reason: "first" });
        j.record(1, EventKind::Fault { site: "ve_crash", seq: 1 });
        // Flood with routine traffic: the ring must keep both priority
        // events and cycle the non-priority slot.
        for i in 2..20 {
            j.record(i, EventKind::BbmUnmap { page: i << 12 });
        }
        assert_eq!(j.len(), 3);
        let kinds: Vec<&'static str> = j.events().map(|e| e.kind.tag()).collect();
        assert_eq!(kinds, vec!["Violation", "Fault", "BbmUnmap"]);
        assert_eq!(j.events().last().map(|e| e.cycles), Some(19), "newest routine event kept");
        assert_eq!(j.dropped(), 17, "every eviction still counted");

        // All-priority ring: the bound holds by evicting the oldest
        // priority event.
        let mut p = Journal::new(2);
        p.set_enabled(true);
        p.record(0, EventKind::Violation { reason: "a" });
        p.record(1, EventKind::Violation { reason: "b" });
        p.record(2, EventKind::Violation { reason: "c" });
        assert_eq!(p.len(), 2);
        let stamps: Vec<u64> = p.events().map(|e| e.cycles).collect();
        assert_eq!(stamps, vec![1, 2]);
        assert_eq!(p.dropped(), 1);
    }

    #[test]
    fn journal_absorb_respects_priority_lane() {
        let mut j = Journal::new(2);
        j.set_enabled(true);
        j.record(0, EventKind::Violation { reason: "keep" });
        j.record(1, EventKind::BbmUnmap { page: 0x1000 });
        let mut shell = j.fork();
        shell.record(2, EventKind::BbmUnmap { page: 0x2000 });
        j.absorb(shell);
        let kinds: Vec<&'static str> = j.events().map(|e| e.kind.tag()).collect();
        assert_eq!(kinds, vec!["Violation", "BbmUnmap"]);
        assert_eq!(j.events().last().map(|e| e.cycles), Some(2));
        assert_eq!(j.dropped(), 1);
    }

    #[test]
    fn journal_disabled_records_nothing() {
        let mut j = Journal::new(8);
        j.set_enabled(false);
        j.record(1, EventKind::Violation { reason: "x" });
        assert!(j.is_empty());
        j.set_enabled(true);
        j.record(2, EventKind::Violation { reason: "y" });
        assert_eq!(j.len(), 1);
    }

    #[test]
    fn journal_json_is_parseable_shape() {
        let mut j = Journal::new(8);
        j.set_enabled(true);
        j.record(7, EventKind::DomainSwitch { asid: 3, root: 0x1000 });
        j.record(9, EventKind::Violation { reason: "PAN \"violation\"" });
        let json = j.dump_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"event\":\"DomainSwitch\""));
        assert!(json.contains("\"asid\":3"));
        assert!(json.contains("\\\"violation\\\""), "quotes escaped: {json}");
    }

    #[test]
    fn report_json_and_lookup() {
        let mut r = Report::default();
        r.push(Section::new("tlb").with("hits", 3).with("misses", 1));
        r.push(Section::new("gate").with("switches", 2));
        assert_eq!(r.section("tlb").unwrap().get("misses"), Some(1));
        assert_eq!(r.to_json(), "{\"tlb\":{\"hits\":3,\"misses\":1},\"gate\":{\"switches\":2}}");
        assert!(r.to_text().contains("gate:"));
    }

    #[test]
    fn walk_stats_fault_routing() {
        let mut w = WalkStats::default();
        let f = Fault {
            kind: FaultKind::Permission,
            stage: Stage::S2,
            level: 3,
            va: 0x1000,
            ipa: 0x2000,
            wnr: true,
            s1ptw: false,
        };
        w.count_fault(&f);
        assert_eq!(w.s2_permission_faults, 1);
        assert_eq!(w.total_faults(), 1);
    }
}
