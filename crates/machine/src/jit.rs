//! Template-JIT superblock engine: a lowered IR of pre-specialized host
//! closures for the chainable ALU subset.
//!
//! The interpreter's superblocks (see `Machine::step_block`) already
//! execute straight-line decoded runs, but still dispatch one decoded
//! [`Insn`] at a time through the full `execute` match, re-checking the
//! TLB generation and the code frame's content version between every
//! instruction. This module lowers a superblock once into a
//! [`CompiledBlock`]: runs of pure-ALU *templates* — function pointers
//! selected at lowering time with register slots resolved, immediates
//! constant-folded (including fully PC-folded `ADR`/`ADRP`, since a
//! block's virtual address is fixed by its icache key), and flag-setting
//! variants split into their own entry points — separated by `Slow`
//! segments for anything that needs full interpreter bookkeeping
//! (loads/stores and the block's trailing non-chainable instruction).
//!
//! # Why per-segment revalidation is exact
//!
//! The interpreter superblock revalidates `Tlb::generation` and
//! `PhysMem::write_gen`/`frame_version` before every instruction after
//! the first. An ALU template touches only `Cpu` registers, NZCV, and
//! the cycle/instruction counters: it cannot insert or promote a TLB
//! entry, write memory, fault, or move the PC off the fall-through path.
//! Both checks are therefore provably no-ops *inside* an ALU run, and
//! checking once per segment boundary observes exactly the states the
//! interpreter would. `Slow` segments run through `Machine::execute`
//! with the interpreter's own per-instruction bookkeeping, so a store
//! that bumps `write_gen` (self-modifying code) or a load that promotes
//! a TLB entry ends the compiled block at the same boundary it would
//! have ended the decoded one.
//!
//! # Why batched cycle charging is cycle-invariant
//!
//! Each ALU run's modelled cost (`n × insn_base` plus fixed
//! multiply/divide latencies) is summed at lowering time and charged in
//! one `cycles +=`. The only observers of intermediate cycle values are
//! journal events (`Machine::record_event` stamps `cpu.cycles`) and
//! traps — and ALU templates emit neither, so no observation point can
//! distinguish batched from per-instruction charging. Trace entries are
//! `(pc, word, EL)` tuples without a cycle stamp and are replayed
//! per-op when tracing is enabled.

use crate::cpu::Cpu;
use lz_arch::insn::{Cond, Insn, LogicOp};
use lz_arch::pstate::Nzcv;

/// Extra modelled latency of `MADD` beyond `insn_base` (shared with the
/// interpreter's `execute`).
pub(crate) const MADD_EXTRA_CYCLES: u64 = 2;
/// Extra modelled latency of `UDIV` beyond `insn_base`.
pub(crate) const UDIV_EXTRA_CYCLES: u64 = 8;

/// One lowered ALU instruction: a template function plus its resolved
/// operands. `run` is selected at lowering time (flag-setting and
/// add/sub variants get distinct entry points), register slots are plain
/// indices (`x31` semantics live in [`Cpu::reg`]/[`Cpu::set_reg`]), and
/// `a`/`b` carry folded immediates — a shift amount, a pre-shifted
/// imm12, a MOVK keep-mask, or a fully PC-folded `ADR`/`ADRP` result.
/// `word` is kept for trace replay.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Tmpl {
    run: fn(&mut Cpu, &Tmpl),
    a: u64,
    b: u64,
    rd: u8,
    rn: u8,
    rm: u8,
    ra: u8,
    cond: Cond,
    pub(crate) word: u32,
}

impl Tmpl {
    /// Execute this template against `cpu`.
    #[inline(always)]
    pub(crate) fn exec(&self, cpu: &mut Cpu) {
        (self.run)(cpu, self)
    }
}

/// A compiled superblock segment.
#[derive(Debug)]
pub(crate) enum Segment {
    /// A run of pure-ALU templates; `cycles` is the run's total modelled
    /// cost (`ops.len() × insn_base` plus fixed latencies), charged once.
    Alu { ops: Box<[Tmpl]>, cycles: u64 },
    /// An instruction that needs full interpreter bookkeeping: a
    /// load/store (may fault, self-modify, or perturb the TLB) or the
    /// block's trailing non-chainable instruction.
    Slow { word: u32, insn: Insn },
}

/// A superblock lowered to alternating ALU-template runs and `Slow`
/// interpreter segments. Stored in the icache page entry that produced
/// it and therefore dropped by exactly the invalidation scopes (TLBI,
/// ASID/VMID maintenance, content staleness, capacity) that drop the
/// decoded block; serve-time and per-segment revalidation mirror the
/// interpreter superblock's checks.
#[derive(Debug)]
pub struct CompiledBlock {
    pub(crate) segs: Box<[Segment]>,
    /// Total instruction count across all segments — equals the decoded
    /// run length, and bounds what one entry can retire (the dispatcher
    /// refuses entry when this exceeds the remaining quantum budget).
    pub(crate) total: u32,
}

// --- template library ---------------------------------------------------

fn t_mov_const(cpu: &mut Cpu, t: &Tmpl) {
    cpu.set_reg(t.rd, t.a);
}

fn t_movk(cpu: &mut Cpu, t: &Tmpl) {
    let old = cpu.reg(t.rd);
    cpu.set_reg(t.rd, (old & t.a) | t.b);
}

fn t_add_imm(cpu: &mut Cpu, t: &Tmpl) {
    cpu.arith(t.rd, cpu.reg(t.rn), t.a, false, false);
}

fn t_adds_imm(cpu: &mut Cpu, t: &Tmpl) {
    cpu.arith(t.rd, cpu.reg(t.rn), t.a, false, true);
}

fn t_sub_imm(cpu: &mut Cpu, t: &Tmpl) {
    cpu.arith(t.rd, cpu.reg(t.rn), t.a, true, false);
}

fn t_subs_imm(cpu: &mut Cpu, t: &Tmpl) {
    cpu.arith(t.rd, cpu.reg(t.rn), t.a, true, true);
}

fn t_add_reg(cpu: &mut Cpu, t: &Tmpl) {
    cpu.arith(t.rd, cpu.reg(t.rn), cpu.reg(t.rm) << t.a, false, false);
}

fn t_adds_reg(cpu: &mut Cpu, t: &Tmpl) {
    cpu.arith(t.rd, cpu.reg(t.rn), cpu.reg(t.rm) << t.a, false, true);
}

fn t_sub_reg(cpu: &mut Cpu, t: &Tmpl) {
    cpu.arith(t.rd, cpu.reg(t.rn), cpu.reg(t.rm) << t.a, true, false);
}

fn t_subs_reg(cpu: &mut Cpu, t: &Tmpl) {
    cpu.arith(t.rd, cpu.reg(t.rn), cpu.reg(t.rm) << t.a, true, true);
}

fn t_and(cpu: &mut Cpu, t: &Tmpl) {
    let r = cpu.reg(t.rn) & (cpu.reg(t.rm) << t.a);
    cpu.set_reg(t.rd, r);
}

fn t_orr(cpu: &mut Cpu, t: &Tmpl) {
    let r = cpu.reg(t.rn) | (cpu.reg(t.rm) << t.a);
    cpu.set_reg(t.rd, r);
}

fn t_eor(cpu: &mut Cpu, t: &Tmpl) {
    let r = cpu.reg(t.rn) ^ (cpu.reg(t.rm) << t.a);
    cpu.set_reg(t.rd, r);
}

fn t_ands(cpu: &mut Cpu, t: &Tmpl) {
    let r = cpu.reg(t.rn) & (cpu.reg(t.rm) << t.a);
    cpu.pstate.nzcv = Nzcv { n: r >> 63 == 1, z: r == 0, c: false, v: false };
    cpu.set_reg(t.rd, r);
}

fn t_lsr(cpu: &mut Cpu, t: &Tmpl) {
    cpu.set_reg(t.rd, cpu.reg(t.rn) >> t.a);
}

fn t_lsl(cpu: &mut Cpu, t: &Tmpl) {
    cpu.set_reg(t.rd, cpu.reg(t.rn) << t.a);
}

fn t_madd(cpu: &mut Cpu, t: &Tmpl) {
    let v = cpu.reg(t.ra).wrapping_add(cpu.reg(t.rn).wrapping_mul(cpu.reg(t.rm)));
    cpu.set_reg(t.rd, v);
}

fn t_udiv(cpu: &mut Cpu, t: &Tmpl) {
    let v = cpu.reg(t.rn).checked_div(cpu.reg(t.rm)).unwrap_or(0);
    cpu.set_reg(t.rd, v);
}

fn t_csel(cpu: &mut Cpu, t: &Tmpl) {
    let v = if t.cond.holds(cpu.pstate.nzcv) { cpu.reg(t.rn) } else { cpu.reg(t.rm) };
    cpu.set_reg(t.rd, v);
}

fn t_csinc(cpu: &mut Cpu, t: &Tmpl) {
    let v = if t.cond.holds(cpu.pstate.nzcv) { cpu.reg(t.rn) } else { cpu.reg(t.rm).wrapping_add(1) };
    cpu.set_reg(t.rd, v);
}

fn t_nop(_cpu: &mut Cpu, _t: &Tmpl) {}

// --- lowering -----------------------------------------------------------

const BLANK: Tmpl = Tmpl { run: t_nop, a: 0, b: 0, rd: 31, rn: 31, rm: 31, ra: 31, cond: Cond::Al, word: 0 };

/// Lower one instruction to an ALU template, or `None` when it needs a
/// `Slow` segment. Returns the template plus its extra modelled latency
/// beyond `insn_base`. `pc` is the instruction's virtual address (fixed
/// by the block's icache key), letting `ADR`/`ADRP` fold completely.
fn lower_alu(pc: u64, word: u32, insn: Insn) -> Option<(Tmpl, u64)> {
    let t = match insn {
        Insn::Movz { rd, imm16, hw } => Tmpl { run: t_mov_const, a: (imm16 as u64) << (16 * hw), rd, word, ..BLANK },
        Insn::Movn { rd, imm16, hw } => Tmpl { run: t_mov_const, a: !((imm16 as u64) << (16 * hw)), rd, word, ..BLANK },
        Insn::Movk { rd, imm16, hw } => {
            let mask = 0xffffu64 << (16 * hw);
            Tmpl { run: t_movk, a: !mask, b: (imm16 as u64) << (16 * hw), rd, word, ..BLANK }
        }
        Insn::AddImm { rd, rn, imm12, shift12, sub, set_flags } => {
            let run = match (sub, set_flags) {
                (false, false) => t_add_imm,
                (false, true) => t_adds_imm,
                (true, false) => t_sub_imm,
                (true, true) => t_subs_imm,
            };
            let b = (imm12 as u64) << if shift12 { 12 } else { 0 };
            Tmpl { run, a: b, rd, rn, word, ..BLANK }
        }
        Insn::AddReg { rd, rn, rm, shift, sub, set_flags } => {
            let run = match (sub, set_flags) {
                (false, false) => t_add_reg,
                (false, true) => t_adds_reg,
                (true, false) => t_sub_reg,
                (true, true) => t_subs_reg,
            };
            Tmpl { run, a: shift as u64, rd, rn, rm, word, ..BLANK }
        }
        Insn::LogicReg { rd, rn, rm, shift, op } => {
            let run = match op {
                LogicOp::And => t_and,
                LogicOp::Orr => t_orr,
                LogicOp::Eor => t_eor,
                LogicOp::Ands => t_ands,
            };
            Tmpl { run, a: shift as u64, rd, rn, rm, word, ..BLANK }
        }
        Insn::LsrImm { rd, rn, shift } => Tmpl { run: t_lsr, a: shift as u64, rd, rn, word, ..BLANK },
        Insn::LslImm { rd, rn, shift } => Tmpl { run: t_lsl, a: shift as u64, rd, rn, word, ..BLANK },
        Insn::Adr { rd, offset } => Tmpl { run: t_mov_const, a: pc.wrapping_add_signed(offset), rd, word, ..BLANK },
        Insn::Adrp { rd, offset } => {
            Tmpl { run: t_mov_const, a: (pc & !0xfff).wrapping_add_signed(offset), rd, word, ..BLANK }
        }
        Insn::Madd { rd, rn, rm, ra } => {
            return Some((Tmpl { run: t_madd, rd, rn, rm, ra, word, ..BLANK }, MADD_EXTRA_CYCLES));
        }
        Insn::Udiv { rd, rn, rm } => {
            return Some((Tmpl { run: t_udiv, rd, rn, rm, word, ..BLANK }, UDIV_EXTRA_CYCLES));
        }
        Insn::Csel { rd, rn, rm, cond } => Tmpl { run: t_csel, rd, rn, rm, cond, word, ..BLANK },
        Insn::Csinc { rd, rn, rm, cond } => Tmpl { run: t_csinc, rd, rn, rm, cond, word, ..BLANK },
        Insn::Nop => Tmpl { run: t_nop, word, ..BLANK },
        _ => return None,
    };
    Some((t, 0))
}

/// Lower a decoded superblock (as extracted by `ICache::superblock`,
/// starting at virtual address `va`) into a [`CompiledBlock`]. Returns
/// `None` when no instruction lowers to an ALU template — a pure
/// load/store or single-terminal block gains nothing over the
/// interpreter superblock.
pub(crate) fn lower(va: u64, buf: &[(u32, Insn)], insn_base: u64) -> Option<CompiledBlock> {
    let mut segs: Vec<Segment> = Vec::new();
    let mut run: Vec<Tmpl> = Vec::new();
    let mut run_cycles = 0u64;
    for (k, &(word, insn)) in buf.iter().enumerate() {
        let pc_k = va + 4 * k as u64;
        match lower_alu(pc_k, word, insn) {
            Some((t, extra)) => {
                run.push(t);
                run_cycles += insn_base + extra;
            }
            None => {
                if !run.is_empty() {
                    segs.push(Segment::Alu { ops: std::mem::take(&mut run).into_boxed_slice(), cycles: run_cycles });
                    run_cycles = 0;
                }
                segs.push(Segment::Slow { word, insn });
            }
        }
    }
    if !run.is_empty() {
        segs.push(Segment::Alu { ops: run.into_boxed_slice(), cycles: run_cycles });
    }
    if !segs.iter().any(|s| matches!(s, Segment::Alu { .. })) {
        return None;
    }
    Some(CompiledBlock { segs: segs.into_boxed_slice(), total: buf.len() as u32 })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(words: &[u32]) -> Vec<(u32, Insn)> {
        words.iter().map(|&w| (w, Insn::decode(w))).collect()
    }

    #[test]
    fn pure_alu_block_lowers_to_one_run() {
        // movz x0, #7 ; add x0, x0, #1 ; nop
        let buf = block(&[0xD280_00E0, 0x9100_0400, 0xD503_201F]);
        let b = lower(0x40_0000, &buf, 1).expect("lowers");
        assert_eq!(b.total, 3);
        assert_eq!(b.segs.len(), 1);
        match &b.segs[0] {
            Segment::Alu { ops, cycles } => {
                assert_eq!(ops.len(), 3);
                assert_eq!(*cycles, 3);
            }
            s => panic!("expected ALU run, got {s:?}"),
        }
    }

    #[test]
    fn memory_ops_split_runs() {
        // movz x0, #7 ; ldr x1, [x2] ; movz x3, #9
        let buf = block(&[0xD280_00E0, 0xF940_0041, 0xD280_0123]);
        let b = lower(0x40_0000, &buf, 1).expect("lowers");
        assert_eq!(b.segs.len(), 3);
        assert!(matches!(b.segs[0], Segment::Alu { .. }));
        assert!(matches!(b.segs[1], Segment::Slow { .. }));
        assert!(matches!(b.segs[2], Segment::Alu { .. }));
    }

    #[test]
    fn block_with_no_alu_does_not_lower() {
        // ldr x1, [x2] ; svc #0
        let buf = block(&[0xF940_0041, 0xD400_0001]);
        assert!(lower(0x40_0000, &buf, 1).is_none());
    }

    #[test]
    fn madd_and_udiv_latencies_are_batched() {
        // mul x0, x1, x2 ; udiv x3, x4, x5
        let buf = block(&[0x9B02_7C20, 0x9AC5_0883]);
        let b = lower(0x40_0000, &buf, 1).expect("lowers");
        match &b.segs[0] {
            Segment::Alu { cycles, .. } => {
                assert_eq!(*cycles, 2 + MADD_EXTRA_CYCLES + UDIV_EXTRA_CYCLES);
            }
            s => panic!("expected ALU run, got {s:?}"),
        }
    }

    #[test]
    fn adr_folds_to_block_va() {
        // adr x0, #+16 at va 0x40_0100
        let buf = block(&[0x1000_0080]);
        // Single ADR is still an ALU run.
        let b = lower(0x40_0100, &buf, 1).expect("lowers");
        let Segment::Alu { ops, .. } = &b.segs[0] else { panic!("expected ALU run") };
        let mut cpu = Cpu::new();
        ops[0].exec(&mut cpu);
        assert_eq!(cpu.reg(0), 0x40_0100 + 16);
    }
}
