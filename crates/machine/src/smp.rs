//! SMP: an N-core machine with TLBI broadcast and IPI shootdown.
//!
//! Each core owns its architectural CPU state ([`Cpu`]) and its private
//! translation caches ([`Tlb`], which embeds the decoded-block icache);
//! all cores share one [`PhysMem`](crate::PhysMem). Execution is
//! *interleaved*, never truly concurrent: exactly one core — the
//! **active** core, whose state lives directly in
//! [`Machine::cpu`]/[`Machine::tlb`] — executes at any moment, and
//! [`Machine::switch_core`] swaps which one that is. This keeps every
//! existing single-core call site working unchanged and makes N-core
//! runs byte-reproducible: for a fixed schedule the interleaving is a
//! pure function of the initial state.
//!
//! # Coherence model
//!
//! Three propagation mechanisms are modelled (see DESIGN.md §9):
//!
//! * **DVM broadcast** — an interpreted Inner Shareable TLBI
//!   (`TLBI VAE1IS`, …) invalidates the matching entries in *every*
//!   core's TLB, as the interconnect's distributed-virtual-memory
//!   messages would. Local forms (`TLBI VAE1`) touch only the issuing
//!   core. No extra cycles are charged: DVM completion is absorbed in
//!   the `DSB` the issuer already pays.
//! * **IPI shootdown** — modelled kernel software uses
//!   [`Machine::shootdown_va`] (and the vmid/asid variants) for
//!   break-before-make, `munmap`, and `mprotect`. Each remote core
//!   charges the issuer one `dsb`-equivalent round trip (doorbell +
//!   wait-for-ack) and bumps the `shootdowns_sent`/`shootdowns_acked`
//!   counters; journal events `Ipi` and `Shootdown` record the traffic.
//!   On a single-core machine there are no remote cores, so these calls
//!   degenerate to exactly the pre-SMP local invalidate — cycle counts
//!   of existing single-core workloads are unchanged.
//! * **Physical-write icache invalidation** — the decoded-block icache
//!   validates entries against the shared `PhysMem` write generation
//!   and per-frame versions on every probe, so a store on core A
//!   invalidates (by content check) stale decoded blocks on core B
//!   without any explicit message. This holds by construction; see
//!   `icache::PageEntry` and the `smp` integration tests.
//!
//! What is *not* modelled: weak-memory reordering. Interleaved
//! execution is sequentially consistent at instruction granularity.
//!
//! # Epochs: true parallel host execution
//!
//! [`Machine::run_epoch`] generalizes the interleaver: every core with
//! a nonzero budget runs its quantum in a private *shell* machine (its
//! own `Cpu`/`Tlb`/icache/JIT cache plus a copy-on-write
//! [`PhysMem`](crate::PhysMem) view), and all cross-core effects
//! commit at the quantum barrier in core order — shared-memory write
//! overlays merge with deterministically re-stamped write generations,
//! deferred Inner-Shareable TLBIs reach the other cores' TLBs, chaos
//! deltas and journal/trace/metric streams fold into the globals. With
//! [`Machine::set_parallel`] on (`LZ_PARALLEL`, the default) the
//! shells run on real host threads; off, the identical shells run
//! sequentially in core order — the deterministic-replay verification
//! mode. The schedule of epochs and the commit order are the same in
//! both modes, so cycles, journals, and counters are byte-identical
//! (CI runs both and compares; see DESIGN.md §15).

use crate::cpu::{Cpu, Exit, Machine};
use crate::metrics::{EventKind, MachineMetrics, Section};
use crate::tlb::Tlb;
use lz_arch::tlbi::{self, TlbiOp, TlbiScope};

/// Hard cap on the number of cores (per-core metric section names are
/// static strings).
pub const MAX_CORES: usize = 8;

/// Static names for the per-core metric sections.
pub(crate) const CORE_NAMES: [&str; MAX_CORES] =
    ["core0", "core1", "core2", "core3", "core4", "core5", "core6", "core7"];

/// A parked core: the architectural state and private translation
/// caches of a core that is not currently executing.
#[derive(Debug)]
pub struct CoreCtx {
    pub cpu: Cpu,
    pub tlb: Tlb,
}

/// Per-shell epoch context: the cross-core effects one shell deferred
/// to the barrier.
#[derive(Debug, Default)]
pub(crate) struct EpochCtx {
    /// Inner-Shareable TLBIs issued in-shell. The issuing core's local
    /// invalidate already happened inside the shell; the DVM half
    /// (remote cores) commits at the barrier.
    pub(crate) deferred_tlbi: Vec<(TlbiOp, u16, u64)>,
}

/// SMP bookkeeping embedded in [`Machine`]: the parked cores plus the
/// cross-core traffic counters.
#[derive(Debug)]
pub struct SmpState {
    /// One slot per core; the active core's slot is `None` (its state
    /// lives directly in `Machine::{cpu,tlb}`).
    pub(crate) cores: Vec<Option<CoreCtx>>,
    pub(crate) active: usize,
    /// Cached per-core chaos forks for epoch shells (cores > 0; core 0
    /// uses the global engine). Tagged with the plan-installation
    /// generation so a new plan re-forks lazily.
    pub(crate) chaos_forks: Vec<Option<(u64, crate::chaos::ChaosState)>>,
    /// IPI shootdown requests sent to remote cores.
    pub shootdowns_sent: u64,
    /// IPI shootdown acknowledgements received (the model acks
    /// synchronously, so this always equals `shootdowns_sent`).
    pub shootdowns_acked: u64,
    /// Total inter-processor interrupts sent.
    pub ipis_sent: u64,
    /// Remote-core invalidations performed by Inner Shareable TLBIs
    /// (hardware DVM, no IPI involved).
    pub tlbi_broadcasts: u64,
    /// Epochs executed (each [`Machine::run_epoch`] call, including
    /// single-active-core epochs that bypass the shell machinery).
    pub epochs: u64,
    /// Core-epochs spent idle: cores with a zero budget while at least
    /// one other core ran (scheduler had no work to hand them).
    pub epoch_waits: u64,
    /// Epochs a core ended early (non-`Limit` exit): the barrier
    /// committed before the quantum was exhausted, stalling the other
    /// shells at the commit point.
    pub barrier_stalls: u64,
    /// Frames written by more than one core in the same epoch (the
    /// last core in commit order wins; see `PhysMem::merge_epoch`).
    pub phys_merge_conflicts: u64,
    /// Host panics caught at the epoch-shell boundary and converted
    /// into [`Exit::HostPanic`] (each kills exactly the VE that was
    /// running on the panicking core; the other shells commit
    /// normally).
    pub shell_panics: u64,
}

impl Default for SmpState {
    fn default() -> Self {
        SmpState {
            cores: vec![None],
            active: 0,
            chaos_forks: vec![None],
            shootdowns_sent: 0,
            shootdowns_acked: 0,
            ipis_sent: 0,
            tlbi_broadcasts: 0,
            epochs: 0,
            epoch_waits: 0,
            barrier_stalls: 0,
            phys_merge_conflicts: 0,
            shell_panics: 0,
        }
    }
}

/// Run one core's epoch quantum behind a host-panic firewall: a panic
/// anywhere inside `shell.run` is caught at the shell boundary,
/// journaled as a priority `Violation` event, and surfaced as
/// [`Exit::HostPanic`] so the layer owning the running VE can convert
/// it into a typed [`crate::chaos::LzFault::HostPanic`] kill. The
/// shell's state up to the panic point commits at the barrier like any
/// other early exit; panics never cross the barrier, so the other
/// shells commit normally and the process stays up.
///
/// Both epoch backends (host threads and sequential replay) run shells
/// only through this helper, so a deterministic panic — e.g. the
/// [`Machine::set_panic_after`] hook — produces byte-identical results
/// on either.
fn run_shell_contained(shell: &mut Machine, budget: u64) -> (Exit, u64) {
    let before = shell.cpu.insns;
    let exit = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| shell.run(budget))) {
        Ok(exit) => exit,
        Err(_) => {
            shell.record_event(EventKind::Violation { reason: crate::chaos::LzFault::HostPanic.reason() });
            Exit::HostPanic
        }
    };
    (exit, shell.cpu.insns - before)
}

/// Apply one decoded TLBI operation to a single core's TLB.
pub(crate) fn apply_tlbi(tlb: &mut Tlb, op: TlbiOp, vmid: u16, xt: u64) {
    match op.scope {
        // Stage-2 and all-of-EL1 scopes collapse to a VMID flush: the
        // TLB is tagged (vmid, asid, va) without separate IPA entries.
        TlbiScope::AllE1 | TlbiScope::AllS12 | TlbiScope::Ipa => tlb.invalidate_vmid(vmid),
        TlbiScope::Va | TlbiScope::VaAllAsid => tlb.invalidate_va(vmid, tlbi::xt_va(xt)),
        TlbiScope::Asid => tlb.invalidate_asid(vmid, tlbi::xt_asid(xt)),
    }
}

impl Machine {
    /// Bring `n` cores online. The currently-active architectural state
    /// becomes core 0; secondary cores boot with a copy of core 0's
    /// system registers (the modelled firmware programs every core
    /// identically) and cold private caches. Resets the SMP counters.
    pub fn configure_smp(&mut self, n: usize) {
        assert!((1..=MAX_CORES).contains(&n), "1..={MAX_CORES} cores supported");
        let mut cores: Vec<Option<CoreCtx>> = Vec::with_capacity(n);
        cores.push(None); // this core is core 0 and stays active
        for _ in 1..n {
            let mut tlb = Tlb::with_l1(self.model.tlb_l1_entries, self.model.tlb_entries);
            tlb.set_fastpath(self.tlb.fastpath());
            cores.push(Some(CoreCtx { cpu: self.cpu.fork_boot_state(), tlb }));
        }
        let chaos_forks = (0..n).map(|_| None).collect();
        self.smp = SmpState { cores, chaos_forks, ..SmpState::default() };
    }

    /// Number of cores online (1 unless [`Machine::configure_smp`] ran).
    pub fn num_cores(&self) -> usize {
        self.smp.cores.len()
    }

    /// Index of the core whose state is live in `Machine::{cpu,tlb}`.
    pub fn active_core(&self) -> usize {
        self.smp.active
    }

    /// The SMP counters.
    pub fn smp(&self) -> &SmpState {
        &self.smp
    }

    /// Make core `i` the active core, parking the current one. The
    /// translation-regime memo is invalidated: each core has its own
    /// system registers.
    pub fn switch_core(&mut self, i: usize) {
        assert!(i < self.smp.cores.len(), "core {i} not configured");
        if i == self.smp.active {
            return;
        }
        let target = self.smp.cores[i].take().expect("inactive core is parked");
        let cpu = std::mem::replace(&mut self.cpu, target.cpu);
        let tlb = std::mem::replace(&mut self.tlb, target.tlb);
        let prev = self.smp.active;
        self.smp.cores[prev] = Some(CoreCtx { cpu, tlb });
        self.smp.active = i;
        self.regime_changed();
    }

    /// A core's architectural state (active or parked).
    pub fn core_cpu(&self, i: usize) -> &Cpu {
        if i == self.smp.active {
            &self.cpu
        } else {
            &self.smp.cores[i].as_ref().expect("inactive core is parked").cpu
        }
    }

    /// A core's TLB (active or parked).
    pub fn core_tlb(&self, i: usize) -> &Tlb {
        if i == self.smp.active {
            &self.tlb
        } else {
            &self.smp.cores[i].as_ref().expect("inactive core is parked").tlb
        }
    }

    /// DVM propagation of an interpreted Inner Shareable TLBI: apply
    /// the same invalidation to every remote core's TLB. Inside an
    /// epoch shell the remote TLBs belong to other shells, so the
    /// broadcast is deferred and commits at the barrier instead.
    pub(crate) fn dvm_broadcast(&mut self, op: TlbiOp, vmid: u16, xt: u64) {
        if let Some(epoch) = self.epoch.as_mut() {
            epoch.deferred_tlbi.push((op, vmid, xt));
            return;
        }
        let active = self.smp.active;
        let mut n = 0;
        for (i, slot) in self.smp.cores.iter_mut().enumerate() {
            if i == active {
                continue;
            }
            let core = slot.as_mut().expect("inactive core is parked");
            apply_tlbi(&mut core.tlb, op, vmid, xt);
            n += 1;
        }
        self.smp.tlbi_broadcasts += n;
    }

    /// Cross-core TLB shootdown of one page: local invalidate plus an
    /// IPI round trip to every remote core. See the module docs for the
    /// cost and counter model.
    pub fn shootdown_va(&mut self, vmid: u16, va: u64) {
        self.tlb.invalidate_va(vmid, va);
        self.shootdown_remote(vmid, va, |tlb| tlb.invalidate_va(vmid, va));
    }

    /// Cross-core shootdown of a whole VMID.
    pub fn shootdown_vmid(&mut self, vmid: u16) {
        self.tlb.invalidate_vmid(vmid);
        self.shootdown_remote(vmid, 0, |tlb| tlb.invalidate_vmid(vmid));
    }

    /// Cross-core shootdown of one ASID.
    pub fn shootdown_asid(&mut self, vmid: u16, asid: u16) {
        self.tlb.invalidate_asid(vmid, asid);
        self.shootdown_remote(vmid, 0, |tlb| tlb.invalidate_asid(vmid, asid));
    }

    fn shootdown_remote(&mut self, vmid: u16, page: u64, f: impl Fn(&mut Tlb)) {
        use crate::chaos::FaultSite;
        let active = self.smp.active;
        let remotes: Vec<usize> = (0..self.smp.cores.len()).filter(|&i| i != active).collect();
        if remotes.is_empty() {
            return; // single core: exactly the pre-SMP local invalidate
        }
        let mut extra_cycles = 0u64;
        let mut extra_ipis = 0u64;
        for &i in &remotes {
            // Injected doorbell faults. All three fail closed because
            // the shootdown protocol is synchronous: the issuing core
            // waits for every ack, so a *dropped* doorbell is detected
            // by the ack timeout and re-sent (the invalidation below
            // still runs before we return), a *duplicated* one re-runs
            // an idempotent invalidation, and a *delayed* ack only
            // stretches the wait. None of them can leave a remote TLB
            // holding a translation this shootdown was meant to kill.
            if self.chaos_fire(FaultSite::ShootdownDrop).is_some() {
                extra_cycles += self.model.dsb;
                extra_ipis += 1;
                self.record_event(EventKind::Ipi { from: active as u8, to: i as u8 });
                self.chaos.contained();
            }
            let dup = self.chaos_fire(FaultSite::ShootdownDup).is_some();
            if self.chaos_fire(FaultSite::ShootdownDelay).is_some() {
                extra_cycles += self.model.dsb;
                self.chaos.contained();
            }
            let core = self.smp.cores[i].as_mut().expect("inactive core is parked");
            f(&mut core.tlb);
            if dup {
                f(&mut core.tlb);
                self.chaos.contained();
            }
        }
        let n = remotes.len() as u64;
        self.smp.ipis_sent += n + extra_ipis;
        self.smp.shootdowns_sent += n;
        self.smp.shootdowns_acked += n;
        // One doorbell + wait-for-ack round trip per remote core,
        // charged to the issuing core (plus any injected retries and
        // delays).
        self.charge(n * self.model.dsb + extra_cycles);
        for &i in &remotes {
            self.record_event(EventKind::Ipi { from: active as u8, to: i as u8 });
        }
        self.record_event(EventKind::Shootdown { vmid, page, targets: n as u8 });
    }

    /// Execute one epoch: every core with a nonzero budget runs up to
    /// that many instructions in a private shell (its own `Cpu`/`Tlb`
    /// and a copy-on-write view of physical memory); all cross-core
    /// effects commit at the barrier in core order. Returns each
    /// core's `(exit, instructions_retired)`; zero-budget cores report
    /// `(Exit::Limit, 0)` without running.
    ///
    /// The epoch schedule *is* the SMP semantics for both execution
    /// backends: with [`Machine::set_parallel`] on, concurrent shells
    /// run on real host threads (the first on the calling thread);
    /// off, the identical shells run sequentially in core order —
    /// deterministic replay. Because the shells are isolated and the
    /// barrier commits in core order either way, every modelled
    /// quantity is byte-identical across backends.
    ///
    /// Epochs with at most one active core bypass the shell machinery
    /// and run in place — exactly the pre-epoch single-core path, so
    /// serial workloads see no allocation or bookkeeping overhead.
    pub fn run_epoch(&mut self, budgets: &[u64]) -> Vec<(Exit, u64)> {
        let n = self.num_cores();
        assert_eq!(budgets.len(), n, "one budget per core");
        let mut results = vec![(Exit::Limit, 0u64); n];
        let order: Vec<usize> = (0..n).filter(|&c| budgets[c] > 0).collect();
        self.smp.epochs += 1;
        if !order.is_empty() {
            self.smp.epoch_waits += (n - order.len()) as u64;
        }
        if order.len() <= 1 {
            if let Some(&c) = order.first() {
                self.switch_core(c);
                let (exit, used) = run_shell_contained(self, budgets[c]);
                results[c] = (exit, used);
                if exit != Exit::Limit {
                    self.smp.barrier_stalls += 1;
                }
                if exit == Exit::HostPanic {
                    self.smp.shell_panics += 1;
                }
            }
            return results;
        }

        // Refresh per-core chaos forks (cores > 0) while the global
        // engine is still in place; core 0's shell takes the global
        // engine itself, so single-core fault streams are exactly the
        // pre-epoch schedules.
        let chaos_gen = self.chaos.install_gen();
        for &c in &order {
            if c == 0 {
                continue;
            }
            let fresh = matches!(&self.smp.chaos_forks[c], Some((g, _)) if *g == chaos_gen);
            if !fresh {
                self.smp.chaos_forks[c] = Some((chaos_gen, self.chaos.fork_for_core(c)));
            }
        }

        // Park the active core so every core is uniformly in its slot.
        let active = self.smp.active;
        let parked_cpu = std::mem::replace(&mut self.cpu, Cpu::new());
        let parked_tlb = std::mem::replace(&mut self.tlb, Tlb::with_l1(1, 1));
        self.smp.cores[active] = Some(CoreCtx { cpu: parked_cpu, tlb: parked_tlb });

        // Assemble one shell machine per active core.
        let mut work: Vec<(usize, Machine)> = Vec::with_capacity(order.len());
        for &c in &order {
            let Some(ctx) = self.smp.cores[c].take() else { continue };
            let chaos = if c == 0 {
                std::mem::take(&mut self.chaos)
            } else {
                match self.smp.chaos_forks[c].take() {
                    Some((_, fork)) => fork,
                    None => crate::chaos::ChaosState::default(),
                }
            };
            work.push((
                c,
                Machine {
                    mem: self.mem.epoch_view(),
                    tlb: ctx.tlb,
                    cpu: ctx.cpu,
                    model: self.model.clone(),
                    trace: self.trace.fork(),
                    journal: self.journal.fork(),
                    metrics: MachineMetrics::default(),
                    el1_external: self.el1_external,
                    fetch_cache: self.fetch_cache,
                    jit: self.jit,
                    parallel: false,
                    epoch: Some(EpochCtx::default()),
                    cfg_gen: 0,
                    cfg_memo: std::cell::Cell::new(None),
                    sb_buf: Vec::with_capacity(crate::cpu::SUPERBLOCK_MAX as usize),
                    smp: SmpState::default(),
                    chaos,
                    panic_after: self.panic_after,
                },
            ));
        }

        // Run the shells: host threads when parallel (the first shell
        // on the calling thread), sequentially in core order when
        // replaying. Shells share nothing mutable, so the two backends
        // compute identical states.
        let mut done: Vec<(usize, Machine, Exit, u64)> = if self.parallel {
            let mut rest = work.split_off(1);
            std::thread::scope(|s| {
                let handles: Vec<_> = rest
                    .drain(..)
                    .map(|(c, mut shell)| {
                        let budget = budgets[c];
                        s.spawn(move || {
                            let (exit, used) = run_shell_contained(&mut shell, budget);
                            (c, shell, exit, used)
                        })
                    })
                    .collect();
                let mut finished: Vec<(usize, Machine, Exit, u64)> = work
                    .drain(..)
                    .map(|(c, mut shell)| {
                        let (exit, used) = run_shell_contained(&mut shell, budgets[c]);
                        (c, shell, exit, used)
                    })
                    .collect();
                for h in handles {
                    match h.join() {
                        Ok(r) => finished.push(r),
                        Err(panic) => std::panic::resume_unwind(panic),
                    }
                }
                finished
            })
        } else {
            work.drain(..)
                .map(|(c, mut shell)| {
                    let (exit, used) = run_shell_contained(&mut shell, budgets[c]);
                    (c, shell, exit, used)
                })
                .collect()
        };
        done.sort_unstable_by_key(|&(c, ..)| c);

        // Barrier: dismantle shells and commit cross-core effects in
        // core order — memory overlays first (exit handlers such as
        // futex re-read user memory through the merged view), then
        // deferred TLBI broadcasts, chaos deltas, and the
        // journal/trace/metric streams.
        let mut overlays = Vec::with_capacity(done.len());
        let mut deferred: Vec<(usize, Vec<(TlbiOp, u16, u64)>)> = Vec::new();
        for (c, mut shell, exit, used) in done {
            results[c] = (exit, used);
            if exit != Exit::Limit {
                self.smp.barrier_stalls += 1;
            }
            if exit == Exit::HostPanic {
                self.smp.shell_panics += 1;
            }
            if let Some(part) = shell.mem.take_epoch_overlay() {
                overlays.push(part);
            }
            if let Some(ctx) = shell.epoch.take() {
                if !ctx.deferred_tlbi.is_empty() {
                    deferred.push((c, ctx.deferred_tlbi));
                }
            }
            self.smp.cores[c] = Some(CoreCtx { cpu: shell.cpu, tlb: shell.tlb });
            if c == 0 {
                self.chaos = shell.chaos;
            } else {
                let delta = shell.chaos.drain_delta();
                self.chaos.absorb_delta(delta);
                self.smp.chaos_forks[c] = Some((chaos_gen, shell.chaos));
            }
            self.journal.absorb(shell.journal);
            self.trace.absorb(shell.trace);
            self.metrics.absorb(shell.metrics);
        }
        self.smp.phys_merge_conflicts += self.mem.merge_epoch(overlays);

        // Deferred Inner-Shareable TLBIs: the issuer already
        // invalidated its own TLB in-shell; the DVM half reaches every
        // other core's TLB now, in commit order.
        for (issuer, ops) in deferred {
            for (op, vmid, xt) in ops {
                for (i, slot) in self.smp.cores.iter_mut().enumerate() {
                    if i == issuer {
                        continue;
                    }
                    if let Some(core) = slot.as_mut() {
                        apply_tlbi(&mut core.tlb, op, vmid, xt);
                    }
                }
                self.smp.tlbi_broadcasts += (n - 1) as u64;
            }
        }

        // Reinstate the active core's architectural state.
        if let Some(ctx) = self.smp.cores[active].take() {
            self.cpu = ctx.cpu;
            self.tlb = ctx.tlb;
        }
        self.regime_changed();
        results
    }

    /// Step all cores with a deterministic round-robin interleaver
    /// built on [`Machine::run_epoch`]: each round hands every
    /// still-running core a budget of up to `quantum` instructions
    /// (assignment order rotated by a seedable LCG schedule) and runs
    /// them as one epoch. Returns each core's exit (in core order);
    /// `None` means the core was still running when the total `limit`
    /// of retired instructions (summed across cores) was reached.
    pub fn run_interleaved(&mut self, quantum: u64, seed: u64, limit: u64) -> Vec<Option<Exit>> {
        assert!(quantum > 0);
        let n = self.num_cores();
        let mut exits: Vec<Option<Exit>> = vec![None; n];
        let mut lcg = seed;
        let mut executed = 0u64;
        while exits.iter().any(|e| e.is_none()) && executed < limit {
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let start = ((lcg >> 33) as usize) % n;
            let mut budgets = vec![0u64; n];
            let mut remaining = limit - executed;
            for k in 0..n {
                let c = (start + k) % n;
                if exits[c].is_some() || remaining == 0 {
                    continue;
                }
                let b = quantum.min(remaining);
                budgets[c] = b;
                remaining -= b;
            }
            if budgets.iter().all(|&b| b == 0) {
                break;
            }
            let results = self.run_epoch(&budgets);
            for c in 0..n {
                if budgets[c] == 0 {
                    continue;
                }
                let (exit, used) = results[c];
                executed += used;
                if exit != Exit::Limit {
                    exits[c] = Some(exit);
                }
            }
        }
        exits
    }

    /// Per-core metric sections (only emitted with more than one core):
    /// steps, cycles, TLB and icache hit/miss counts.
    pub(crate) fn per_core_sections(&self) -> Vec<Section> {
        let n = self.num_cores();
        if n <= 1 {
            return Vec::new();
        }
        (0..n)
            .map(|i| {
                let cpu = self.core_cpu(i);
                let tlb = self.core_tlb(i);
                let (hits, misses) = tlb.stats();
                let (ihits, imisses) = tlb.icache().stats();
                let fast = tlb.fast_stats();
                Section::new(CORE_NAMES[i])
                    .with("steps", cpu.insns)
                    .with("cycles", cpu.cycles)
                    .with("tlb_hits", hits)
                    .with("tlb_misses", misses)
                    .with("icache_hits", ihits)
                    .with("icache_misses", imisses)
                    .with("dtlb_hits", fast.dtlb_hits)
                    .with("walkcache_hits", fast.walkcache_hits)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lz_arch::Platform;

    #[test]
    fn default_machine_is_single_core() {
        let m = Machine::new(Platform::CortexA55);
        assert_eq!(m.num_cores(), 1);
        assert_eq!(m.active_core(), 0);
    }

    #[test]
    fn switch_core_swaps_architectural_state() {
        let mut m = Machine::new(Platform::CortexA55);
        m.configure_smp(2);
        m.cpu.x[0] = 111;
        m.cpu.pc = 0x1000;
        m.switch_core(1);
        assert_eq!(m.active_core(), 1);
        assert_eq!(m.cpu.x[0], 0, "secondary core boots with fresh registers");
        m.cpu.x[0] = 222;
        m.switch_core(0);
        assert_eq!(m.cpu.x[0], 111);
        assert_eq!(m.cpu.pc, 0x1000);
        assert_eq!(m.core_cpu(1).x[0], 222);
    }

    #[test]
    fn secondary_cores_inherit_boot_sysregs() {
        use lz_arch::sysreg::SysReg;
        let mut m = Machine::new(Platform::CortexA55);
        m.set_sysreg(SysReg::HCR_EL2, 0xabcd);
        m.configure_smp(3);
        m.switch_core(2);
        assert_eq!(m.sysreg(SysReg::HCR_EL2), 0xabcd);
    }

    #[test]
    fn shootdown_va_reaches_remote_tlbs() {
        use crate::pte::S1Perms;
        use crate::tlb::TlbEntry;
        let mut m = Machine::new(Platform::CortexA55);
        m.configure_smp(2);
        let entry = TlbEntry {
            asid: Some(7),
            pa_page: 0x10_0000,
            s1: S1Perms { read: true, write: false, user_exec: true, priv_exec: true, el0: true, global: false },
            s2: None,
        };
        m.tlb.insert(0, 0x40_0000, entry);
        m.switch_core(1);
        m.tlb.insert(0, 0x40_0000, entry);
        // A local invalidate on core 1 must not touch core 0.
        m.tlb.invalidate_va(0, 0x40_0000);
        assert!(m.core_tlb(0).peek(0, 7, 0x40_0000).is_some());
        // Re-insert and shoot down from core 1: both cores flushed.
        m.tlb.insert(0, 0x40_0000, entry);
        m.shootdown_va(0, 0x40_0000);
        assert!(m.core_tlb(0).peek(0, 7, 0x40_0000).is_none());
        assert!(m.core_tlb(1).peek(0, 7, 0x40_0000).is_none());
        assert_eq!(m.smp().shootdowns_sent, 1);
        assert_eq!(m.smp().shootdowns_acked, 1);
        assert_eq!(m.smp().ipis_sent, 1);
    }

    #[test]
    fn single_core_shootdown_is_free() {
        let mut m = Machine::new(Platform::CortexA55);
        let before = m.cpu.cycles;
        m.shootdown_va(0, 0x40_0000);
        m.shootdown_vmid(0);
        m.shootdown_asid(0, 1);
        assert_eq!(m.cpu.cycles, before, "no remote cores, no IPI cost");
        assert_eq!(m.smp().shootdowns_sent, 0);
    }
}
