//! Property-based tests for translation, permissions, and TLB coherence.

use lz_arch::pstate::ExceptionLevel;
use lz_arch::sysreg::ttbr;
use lz_arch::Platform;
use lz_machine::pte::S1Perms;
use lz_machine::tlb::TlbEntry;
use lz_machine::walk::{
    alloc_table, s1_lookup, s1_map_page, s1_unmap, translate, Access, AccessCtx, FaultKind, WalkConfig,
};
use lz_machine::{PhysMem, Tlb};
use proptest::prelude::*;

fn any_perms() -> impl Strategy<Value = S1Perms> {
    (any::<bool>(), any::<bool>(), any::<bool>(), any::<bool>(), any::<bool>()).prop_map(
        |(write, user_exec, priv_exec, el0, global)| S1Perms { read: true, write, user_exec, priv_exec, el0, global },
    )
}

fn any_page_va() -> impl Strategy<Value = u64> {
    // Low-half, 48-bit, page-aligned.
    (0u64..(1 << 36)).prop_map(|p| p << 12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// translate() agrees with s1_lookup() on address and reachability for
    /// arbitrary map sequences.
    #[test]
    fn translate_matches_lookup(vas in proptest::collection::vec(any_page_va(), 1..20), probe in any_page_va()) {
        let mut mem = PhysMem::new();
        let mut tlb = Tlb::new(64);
        let model = Platform::CortexA55.model();
        let root = alloc_table(&mut mem);
        let perms = S1Perms { read: true, write: true, user_exec: false, priv_exec: false, el0: true, global: false };
        for &va in &vas {
            let pa = mem.alloc_frame();
            s1_map_page(&mut mem, root, va, pa, perms);
        }
        let cfg = WalkConfig { ttbr0: ttbr::pack(1, root), ttbr1: 0, s1_enabled: true, wxn: false, vttbr: None };
        let actx = AccessCtx { el: ExceptionLevel::El0, pan: false, unpriv: false };
        let walked = translate(&mem, &mut tlb, &model, &cfg, probe, Access::Read, &actx);
        let looked = s1_lookup(&mem, root, probe);
        match (walked, looked) {
            (Ok(t), Some((pa, _, _))) => prop_assert_eq!(t.pa, pa),
            (Err(f), None) => prop_assert_eq!(f.kind, FaultKind::Translation),
            (w, l) => prop_assert!(false, "mismatch: {:?} vs {:?}", w, l),
        }
    }

    /// Permission outcomes are exactly what the leaf bits say, for every
    /// combination of EL, PAN, and access kind.
    #[test]
    fn permissions_honored(perms in any_perms(), el0 in any::<bool>(), pan in any::<bool>(), wr in any::<bool>()) {
        let mut mem = PhysMem::new();
        let mut tlb = Tlb::new(64);
        let model = Platform::CortexA55.model();
        let root = alloc_table(&mut mem);
        let frame = mem.alloc_frame();
        let va = 0x40_0000u64;
        s1_map_page(&mut mem, root, va, frame, perms);
        let cfg = WalkConfig { ttbr0: ttbr::pack(1, root), ttbr1: 0, s1_enabled: true, wxn: false, vttbr: None };
        let el = if el0 { ExceptionLevel::El0 } else { ExceptionLevel::El1 };
        let actx = AccessCtx { el, pan, unpriv: false };
        let access = if wr { Access::Write } else { Access::Read };
        let res = translate(&mem, &mut tlb, &model, &cfg, va, access, &actx);
        let expect_ok = if el0 {
            perms.el0 && (!wr || perms.write)
        } else {
            (!pan || !perms.el0) && (!wr || perms.write)
        };
        prop_assert_eq!(res.is_ok(), expect_ok, "perms={:?} el0={} pan={} wr={}", perms, el0, pan, wr);
    }

    /// After unmapping, translation faults — provided the TLB entry for
    /// that page is invalidated (break-before-make contract).
    #[test]
    fn unmap_with_tlbi_faults(vas in proptest::collection::vec(any_page_va(), 1..10)) {
        let mut mem = PhysMem::new();
        let mut tlb = Tlb::new(64);
        let model = Platform::CortexA55.model();
        let root = alloc_table(&mut mem);
        let perms = S1Perms { read: true, write: true, user_exec: false, priv_exec: false, el0: true, global: false };
        for &va in &vas {
            let pa = mem.alloc_frame();
            s1_map_page(&mut mem, root, va, pa, perms);
        }
        let cfg = WalkConfig { ttbr0: ttbr::pack(1, root), ttbr1: 0, s1_enabled: true, wxn: false, vttbr: None };
        let actx = AccessCtx { el: ExceptionLevel::El0, pan: false, unpriv: false };
        let victim = vas[0];
        // Touch it (fills the TLB)…
        prop_assert!(translate(&mem, &mut tlb, &model, &cfg, victim, Access::Read, &actx).is_ok());
        // …unmap + invalidate…
        s1_unmap(&mut mem, root, victim);
        tlb.invalidate_va(cfg.vmid(), victim);
        // …and it faults.
        prop_assert!(translate(&mem, &mut tlb, &model, &cfg, victim, Access::Read, &actx).is_err());
    }

    /// A stale TLB entry keeps translating after the tables change — the
    /// architectural hazard that motivates break-before-make (§6.3).
    #[test]
    fn stale_tlb_entry_survives_table_edit(va in any_page_va()) {
        let mut mem = PhysMem::new();
        let mut tlb = Tlb::new(64);
        let model = Platform::CortexA55.model();
        let root = alloc_table(&mut mem);
        let frame = mem.alloc_frame();
        let perms = S1Perms { read: true, write: true, user_exec: false, priv_exec: false, el0: true, global: false };
        s1_map_page(&mut mem, root, va, frame, perms);
        let cfg = WalkConfig { ttbr0: ttbr::pack(1, root), ttbr1: 0, s1_enabled: true, wxn: false, vttbr: None };
        let actx = AccessCtx { el: ExceptionLevel::El0, pan: false, unpriv: false };
        prop_assert!(translate(&mem, &mut tlb, &model, &cfg, va, Access::Read, &actx).is_ok());
        s1_unmap(&mut mem, root, va);
        // No TLBI: the stale entry still hits.
        let t = translate(&mem, &mut tlb, &model, &cfg, va, Access::Read, &actx).unwrap();
        prop_assert!(t.tlb_hit);
        prop_assert_eq!(t.pa, frame);
    }

    /// Every TLB invalidation variant also evicts the matching
    /// decoded-block cache entries: the icache must never outlive the
    /// TLBI that software issued for the page.
    #[test]
    fn tlbi_variants_evict_decoded_blocks(
        vmid in 0u16..4,
        asid in 1u16..100,
        va in any_page_va(),
        variant in 0u8..4,
    ) {
        let mut mem = PhysMem::new();
        let mut tlb = Tlb::new(64);
        let pa = mem.alloc_frame();
        tlb.icache_mut().seed_entry(&mem, vmid, Some(asid), va, pa);
        prop_assert!(tlb.icache().contains(vmid, Some(asid), va));
        match variant {
            0 => tlb.invalidate_all(),
            1 => tlb.invalidate_vmid(vmid),
            2 => tlb.invalidate_asid(vmid, asid),
            _ => tlb.invalidate_va(vmid, va),
        }
        prop_assert!(
            !tlb.icache().contains(vmid, Some(asid), va),
            "variant {} left a decoded block behind", variant
        );
    }

    /// Invalidations scoped to *other* tags leave the entry alone, in the
    /// TLB and the decoded-block cache alike.
    #[test]
    fn scoped_tlbi_spares_unrelated_blocks(
        vmid in 0u16..4,
        asid in 1u16..100,
        va in any_page_va(),
        other_va in any_page_va(),
        variant in 0u8..3,
    ) {
        prop_assume!(va >> 12 != other_va >> 12);
        let mut mem = PhysMem::new();
        let mut tlb = Tlb::new(64);
        let pa = mem.alloc_frame();
        tlb.icache_mut().seed_entry(&mem, vmid, Some(asid), va, pa);
        match variant {
            0 => tlb.invalidate_vmid(vmid + 1),
            1 => tlb.invalidate_asid(vmid, asid + 1),
            _ => tlb.invalidate_va(vmid, other_va),
        }
        prop_assert!(
            tlb.icache().contains(vmid, Some(asid), va),
            "variant {} evicted an unrelated decoded block", variant
        );
    }

    /// Global (nG=0) entries survive `TLBI ASIDE1` in both structures —
    /// the behaviour LightZone's unprotected mappings rely on across
    /// domain switches.
    #[test]
    fn globals_survive_asid_invalidate_in_both(
        vmid in 0u16..4,
        asid in 1u16..100,
        va_g in any_page_va(),
        va_ng in any_page_va(),
    ) {
        prop_assume!(va_g >> 12 != va_ng >> 12);
        let mut mem = PhysMem::new();
        let mut tlb = Tlb::new(64);
        let pa_g = mem.alloc_frame();
        let pa_ng = mem.alloc_frame();
        let global = TlbEntry { asid: None, pa_page: pa_g, s1: S1Perms::kernel_data(), s2: None };
        let nonglobal = TlbEntry { asid: Some(asid), pa_page: pa_ng, s1: S1Perms::kernel_data(), s2: None };
        tlb.insert(vmid, va_g, global);
        tlb.insert(vmid, va_ng, nonglobal);
        tlb.icache_mut().seed_entry(&mem, vmid, None, va_g, pa_g);
        tlb.icache_mut().seed_entry(&mem, vmid, Some(asid), va_ng, pa_ng);
        tlb.invalidate_asid(vmid, asid);
        // TLB: global survives, non-global gone.
        prop_assert!(tlb.lookup(vmid, asid, va_g).is_some());
        prop_assert!(tlb.lookup(vmid, asid, va_ng).is_none());
        // Decoded blocks: same fate.
        prop_assert!(tlb.icache().contains(vmid, None, va_g));
        prop_assert!(!tlb.icache().contains(vmid, Some(asid), va_ng));
    }

    /// A write into a cached code frame makes the next probe miss, no
    /// matter which of the frame's bytes was touched.
    #[test]
    fn frame_write_invalidates_decoded_block(va in any_page_va(), off in 0u64..4096) {
        use lz_arch::pstate::ExceptionLevel;
        let mut mem = PhysMem::new();
        let mut tlb = Tlb::new(64);
        let pa = mem.alloc_frame();
        tlb.icache_mut().seed_entry(&mem, 0, Some(1), va, pa);
        prop_assert!(tlb
            .icache_mut()
            .probe(&mem, 0, 1, ExceptionLevel::El0, va, true, false, 0, None)
            .is_some());
        mem.write(pa + (off & !7), 0xffff_ffff_ffff_ffff, 8);
        prop_assert!(tlb
            .icache_mut()
            .probe(&mem, 0, 1, ExceptionLevel::El0, va, true, false, 0, None)
            .is_none());
    }

    /// Different ASIDs never observe each other's non-global mappings.
    #[test]
    fn asid_isolation(asid_a in 1u16..100, asid_b in 101u16..200, va in any_page_va()) {
        let mut mem = PhysMem::new();
        let mut tlb = Tlb::new(64);
        let model = Platform::CortexA55.model();
        let root_a = alloc_table(&mut mem);
        let root_b = alloc_table(&mut mem);
        let fa = mem.alloc_frame();
        let perms = S1Perms { read: true, write: true, user_exec: false, priv_exec: false, el0: true, global: false };
        s1_map_page(&mut mem, root_a, va, fa, perms);
        // root_b maps nothing.
        let actx = AccessCtx { el: ExceptionLevel::El0, pan: false, unpriv: false };
        let cfg_a = WalkConfig { ttbr0: ttbr::pack(asid_a, root_a), ttbr1: 0, s1_enabled: true, wxn: false, vttbr: None };
        let cfg_b = WalkConfig { ttbr0: ttbr::pack(asid_b, root_b), ttbr1: 0, s1_enabled: true, wxn: false, vttbr: None };
        prop_assert!(translate(&mem, &mut tlb, &model, &cfg_a, va, Access::Read, &actx).is_ok());
        // Domain B must fault even though A's entry is in the TLB.
        prop_assert!(translate(&mem, &mut tlb, &model, &cfg_b, va, Access::Read, &actx).is_err());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Metrics invariant: every `translate()` call resolves to exactly one
    /// TLB hit or one TLB miss — `hits + misses` equals the number of
    /// translated accesses, for arbitrary probe sequences over mapped and
    /// unmapped pages with invalidations interleaved.
    #[test]
    fn tlb_hits_plus_misses_equals_translated_accesses(
        vas in proptest::collection::vec(any_page_va(), 1..12),
        probes in proptest::collection::vec((0usize..24, any::<bool>()), 1..64),
    ) {
        let mut mem = PhysMem::new();
        let mut tlb = Tlb::new(64);
        let model = Platform::CortexA55.model();
        let root = alloc_table(&mut mem);
        let perms = S1Perms { read: true, write: true, user_exec: false, priv_exec: false, el0: true, global: false };
        for &va in &vas {
            let pa = mem.alloc_frame();
            s1_map_page(&mut mem, root, va, pa, perms);
        }
        let cfg = WalkConfig { ttbr0: ttbr::pack(1, root), ttbr1: 0, s1_enabled: true, wxn: false, vttbr: None };
        let actx = AccessCtx { el: ExceptionLevel::El0, pan: false, unpriv: false };
        let mut calls = 0u64;
        let mut invals = 0u64;
        for &(idx, flush) in &probes {
            // Mix of mapped VAs, unmapped VAs, and full invalidations.
            let va = vas[idx % vas.len()] ^ (((idx >= vas.len()) as u64) << 40);
            let _ = translate(&mem, &mut tlb, &model, &cfg, va, Access::Read, &actx);
            calls += 1;
            if flush {
                tlb.invalidate_asid(0, 1);
                invals += 1;
            }
        }
        let (hits, misses) = tlb.stats();
        prop_assert_eq!(hits + misses, calls);
        prop_assert_eq!(tlb.inval_stats().asid, invals);
        prop_assert_eq!(tlb.inval_stats().total(), invals);
    }

    /// Metrics invariant: TLBI scope counters record exactly one tick per
    /// maintenance operation, and every decoded block dropped from the
    /// icache by an invalidation shows up in `invalidation_count()`.
    #[test]
    fn icache_invalidations_track_tlbi(
        vas in proptest::collection::vec(any_page_va(), 1..16),
        by_vmid in any::<bool>(),
    ) {
        let mut mem = PhysMem::new();
        let mut tlb = Tlb::new(64);
        let mut seeded = std::collections::HashSet::new();
        for &va in &vas {
            let pa = mem.alloc_frame();
            tlb.icache_mut().seed_entry(&mem, 3, Some(1), va, pa);
            seeded.insert(va);
        }
        let live = tlb.icache_mut().len() as u64;
        prop_assert_eq!(live, seeded.len() as u64);
        prop_assert_eq!(tlb.icache_mut().invalidation_count(), 0);
        if by_vmid {
            tlb.icache_mut().invalidate_vmid(3);
        } else {
            tlb.icache_mut().invalidate_asid(3, 1);
        }
        prop_assert_eq!(tlb.icache_mut().len(), 0);
        prop_assert_eq!(tlb.icache_mut().invalidation_count(), live);
        // A second pass over an already-empty cache must not overcount.
        tlb.icache_mut().invalidate_vmid(3);
        prop_assert_eq!(tlb.icache_mut().invalidation_count(), live);
    }
}
