//! Ioctl-based hardware-watchpoint isolation (the Watchpoint baseline,
//! paper §8).
//!
//! Up to 16 protected domains live in a *contiguous arena* (the DAC'19
//! design's "strict memory layout constraints"): activating domain `d`
//! arms the 4 architectural watchpoint pairs to cover the arena minus
//! `d` — which is exactly 2 exclusion ranges for a contiguous layout.
//! Every switch is a syscall ("suffers trapping to the OS kernel during
//! domain switching") that rewrites up to 6 `DBGWVR`/`DBGWCR` registers
//! and runs the access-control algorithm.

use lz_kernel::{Kernel, Pid};
use lz_machine::cpu::Watchpoint;

/// Exit code delivered when a watchpoint catches an illegal access.
pub const WP_KILL: i64 = -17;

/// Hard architectural limit: 16 domains (Table 1).
pub const MAX_WP_DOMAINS: usize = 16;

/// Instruction count of the kernel-side access-control algorithm.
const WP_IOCTL_PATH_INSNS: u64 = 500;
/// Watchpoint register writes per reconfiguration (4 value + 2 control).
const WP_REG_WRITES: u64 = 6;

/// Per-process state of the watchpoint prototype.
#[derive(Debug, Default)]
pub struct WatchpointState {
    procs: std::collections::HashMap<Pid, WpProc>,
}

#[derive(Debug, Default)]
struct WpProc {
    /// Registered domains as `(start, len)`, in registration order.
    domains: Vec<(u64, u64)>,
    active: Option<usize>,
}

impl WatchpointState {
    pub fn new() -> Self {
        WatchpointState::default()
    }

    /// Number of domains a process registered.
    pub fn domain_count(&self, pid: Pid) -> usize {
        self.procs.get(&pid).map_or(0, |p| p.domains.len())
    }

    /// `WP_ENTER`: enable watchpoint-based protection for the caller.
    pub fn enter(&mut self, k: &mut Kernel) -> u64 {
        let Some(pid) = k.current() else { return u64::MAX };
        self.procs.entry(pid).or_default();
        k.machine.cpu.watchpoints_enabled = true;
        k.machine.charge(k.machine.model.path_cost(200));
        0
    }

    /// `WP_PROT(addr, len)`: register the next domain. Domains must be
    /// adjacent to the previous one (the contiguous-arena constraint);
    /// at most 16.
    pub fn prot(&mut self, k: &mut Kernel, addr: u64, len: u64) -> u64 {
        let Some(pid) = k.current() else { return u64::MAX };
        let p = self.procs.entry(pid).or_default();
        if p.domains.len() >= MAX_WP_DOMAINS {
            return u64::MAX;
        }
        if let Some(&(last_start, last_len)) = p.domains.last() {
            if addr != last_start + last_len {
                // Violates the layout constraint.
                return u64::MAX;
            }
        }
        p.domains.push((addr, len));
        // Re-arm with no active domain: everything protected.
        Self::arm(k, p);
        k.machine.charge(Self::reconfig_cost(k));
        0
    }

    /// `WP_SWITCH(domain)`: make `domain` accessible, everything else
    /// protected. `u64::MAX` deactivates all (exit-domain ioctl).
    pub fn switch_to(&mut self, k: &mut Kernel, domain: u64) -> u64 {
        let Some(pid) = k.current() else { return u64::MAX };
        let Some(p) = self.procs.get_mut(&pid) else { return u64::MAX };
        if domain == u64::MAX {
            p.active = None;
        } else {
            if domain as usize >= p.domains.len() {
                return u64::MAX;
            }
            p.active = Some(domain as usize);
        }
        Self::arm(k, p);
        k.machine.charge(Self::reconfig_cost(k));
        0
    }

    /// The kernel-side cost of one reconfiguration.
    fn reconfig_cost(k: &Kernel) -> u64 {
        let m = &k.machine.model;
        WP_REG_WRITES * m.sysreg_write + m.path_cost(WP_IOCTL_PATH_INSNS) + m.isb
    }

    /// Program the 4 machine watchpoint pairs: the arena minus the active
    /// domain, as at most 2 exclusion ranges (contiguous layout).
    fn arm(k: &mut Kernel, p: &WpProc) {
        k.machine.cpu.watchpoints = [None; 4];
        if p.domains.is_empty() {
            return;
        }
        let arena_start = p.domains[0].0;
        let last = p.domains[p.domains.len() - 1];
        let arena_end = last.0 + last.1;
        let mut idx = 0;
        let mut push = |start: u64, end: u64| {
            if start < end && idx < 4 {
                k.machine.cpu.watchpoints[idx] =
                    Some(Watchpoint { addr: start, len: end - start, on_read: true, on_write: true });
                idx += 1;
            }
        };
        match p.active {
            None => push(arena_start, arena_end),
            Some(d) => {
                let (ds, dl) = p.domains[d];
                push(arena_start, ds);
                push(ds + dl, arena_end);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lz_arch::Platform;
    use lz_kernel::Program;

    fn kernel_with_dummy() -> (Kernel, Pid) {
        let mut k = Kernel::new_host(Platform::CortexA55);
        let mut a = lz_arch::asm::Asm::new(0x40_0000);
        a.nop();
        let pid = k.spawn(&Program::from_code(0x40_0000, a.bytes()));
        k.enter_process(pid);
        (k, pid)
    }

    #[test]
    fn domains_limited_to_16() {
        let (mut k, _) = kernel_with_dummy();
        let mut wp = WatchpointState::new();
        assert_eq!(wp.enter(&mut k), 0);
        let base = 0x100_0000u64;
        for i in 0..16u64 {
            assert_eq!(wp.prot(&mut k, base + i * 4096, 4096), 0, "domain {i}");
        }
        assert_eq!(wp.prot(&mut k, base + 16 * 4096, 4096), u64::MAX, "17th domain rejected");
    }

    #[test]
    fn layout_constraint_enforced() {
        let (mut k, _) = kernel_with_dummy();
        let mut wp = WatchpointState::new();
        wp.enter(&mut k);
        assert_eq!(wp.prot(&mut k, 0x100_0000, 4096), 0);
        // Non-adjacent region violates the contiguous-arena constraint.
        assert_eq!(wp.prot(&mut k, 0x200_0000, 4096), u64::MAX);
    }

    #[test]
    fn switch_carves_out_active_domain() {
        let (mut k, _) = kernel_with_dummy();
        let mut wp = WatchpointState::new();
        wp.enter(&mut k);
        let base = 0x100_0000u64;
        for i in 0..4u64 {
            wp.prot(&mut k, base + i * 4096, 4096);
        }
        wp.switch_to(&mut k, 1);
        let wps: Vec<_> = k.machine.cpu.watchpoints.iter().flatten().collect();
        assert_eq!(wps.len(), 2, "two exclusion ranges");
        // Domain 1's page is not covered.
        let d1 = base + 4096;
        for w in &wps {
            assert!(d1 + 4096 <= w.addr || d1 >= w.addr + w.len);
        }
        // Domain 0's page is covered.
        assert!(wps.iter().any(|w| base >= w.addr && base < w.addr + w.len));
    }

    #[test]
    fn switch_charges_syscall_scale_cost() {
        let (mut k, _) = kernel_with_dummy();
        let mut wp = WatchpointState::new();
        wp.enter(&mut k);
        wp.prot(&mut k, 0x100_0000, 4096);
        let before = k.machine.cpu.cycles;
        wp.switch_to(&mut k, 0);
        let cost = k.machine.cpu.cycles - before;
        assert!(cost > 500, "reconfiguration is expensive: {cost}");
    }

    #[test]
    fn deactivate_covers_whole_arena() {
        let (mut k, _) = kernel_with_dummy();
        let mut wp = WatchpointState::new();
        wp.enter(&mut k);
        wp.prot(&mut k, 0x100_0000, 4096);
        wp.prot(&mut k, 0x100_1000, 4096);
        wp.switch_to(&mut k, u64::MAX);
        let wps: Vec<_> = k.machine.cpu.watchpoints.iter().flatten().collect();
        assert_eq!(wps.len(), 1);
        assert_eq!(wps[0].addr, 0x100_0000);
        assert_eq!(wps[0].len, 0x2000);
    }

    #[test]
    fn bad_switch_rejected() {
        let (mut k, _) = kernel_with_dummy();
        let mut wp = WatchpointState::new();
        wp.enter(&mut k);
        wp.prot(&mut k, 0x100_0000, 4096);
        assert_eq!(wp.switch_to(&mut k, 5), u64::MAX);
    }
}
