//! Simulated light-weight contexts (lwC, Litton et al., OSDI'16) — the
//! general-purpose baseline of §8.
//!
//! lwC gives a process multiple independent execution contexts (separate
//! address-space views, file tables, credentials) with `switch` as the
//! transition primitive. It scales to arbitrarily many domains (Table 1:
//! "infinite") but every switch is a kernel-mediated context switch:
//! syscall entry, address-space (TTBR + ASID) switch, context-state swap,
//! syscall exit. The paper simulates lwC on ARM64 the same way since the
//! original is FreeBSD/x86; we model the switch cost, not the full
//! snapshot semantics (only switch performance is compared).

use lz_kernel::{Kernel, Pid};
use std::collections::HashMap;

/// Kernel-path instruction count of an lwC switch (context bookkeeping,
/// file-table pointer swaps, credential checks).
const LWC_SWITCH_PATH_INSNS: u64 = 600;
/// System registers switched on an lwC context switch: lwC restores the
/// whole per-context EL1 state (a context is close to a process), unlike
/// LightZone's single TTBR0 write.
const LWC_SWITCH_SYSREGS: u64 = 16;

/// Per-process lwC state.
#[derive(Debug, Default)]
pub struct LwcState {
    procs: HashMap<Pid, LwcProc>,
}

#[derive(Debug, Default)]
struct LwcProc {
    contexts: u64,
    current: u64,
    switches: u64,
}

impl LwcState {
    pub fn new() -> Self {
        LwcState::default()
    }

    /// `LWC_CREATE`: allocate a new context; returns its id.
    pub fn create(&mut self, k: &mut Kernel) -> u64 {
        let Some(pid) = k.current() else { return u64::MAX };
        let p = self.procs.entry(pid).or_default();
        p.contexts += 1;
        // Context creation snapshots the address space: proportional to
        // resident size in a real lwC; a page-table copy here.
        let m = &k.machine.model;
        let c = m.path_cost(4000) + 64 * m.mem_access;
        k.machine.charge(c);
        p.contexts - 1
    }

    /// `LWC_SWITCH(ctx)`: switch the caller to context `ctx`.
    pub fn switch_to(&mut self, k: &mut Kernel, ctx: u64) -> u64 {
        let Some(pid) = k.current() else { return u64::MAX };
        let Some(p) = self.procs.get_mut(&pid) else { return u64::MAX };
        if ctx >= p.contexts {
            return u64::MAX;
        }
        p.current = ctx;
        p.switches += 1;
        let m = &k.machine.model;
        let cost = m.ttbr0_el1_write
            + m.isb
            + LWC_SWITCH_SYSREGS * m.sysreg_write
            + m.path_cost(LWC_SWITCH_PATH_INSNS)
            + m.trap_cache_pollution
            // The new context's working set re-faults into the TLB.
            + 4 * m.stage1_walk();
        k.machine.charge(cost);
        0
    }

    /// Number of contexts a process created.
    pub fn context_count(&self, pid: Pid) -> u64 {
        self.procs.get(&pid).map_or(0, |p| p.contexts)
    }

    /// Number of switches a process performed.
    pub fn switch_count(&self, pid: Pid) -> u64 {
        self.procs.get(&pid).map_or(0, |p| p.switches)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lz_arch::Platform;
    use lz_kernel::Program;

    fn kernel_with_dummy() -> Kernel {
        let mut k = Kernel::new_host(Platform::CortexA55);
        let mut a = lz_arch::asm::Asm::new(0x40_0000);
        a.nop();
        let pid = k.spawn(&Program::from_code(0x40_0000, a.bytes()));
        k.enter_process(pid);
        k
    }

    #[test]
    fn contexts_unbounded() {
        let mut k = kernel_with_dummy();
        let mut lwc = LwcState::new();
        for i in 0..100 {
            assert_eq!(lwc.create(&mut k), i);
        }
        assert_eq!(lwc.context_count(k.current().unwrap()), 100);
    }

    #[test]
    fn switch_to_unknown_context_fails() {
        let mut k = kernel_with_dummy();
        let mut lwc = LwcState::new();
        lwc.create(&mut k);
        assert_eq!(lwc.switch_to(&mut k, 0), 0);
        assert_eq!(lwc.switch_to(&mut k, 5), u64::MAX);
    }

    #[test]
    fn switch_cost_exceeds_plain_ttbr_write() {
        let mut k = kernel_with_dummy();
        let mut lwc = LwcState::new();
        lwc.create(&mut k);
        let before = k.machine.cpu.cycles;
        lwc.switch_to(&mut k, 0);
        let cost = k.machine.cpu.cycles - before;
        assert!(cost > k.machine.model.ttbr0_el1_write * 3, "lwC switch = {cost}");
    }

    #[test]
    fn switches_counted() {
        let mut k = kernel_with_dummy();
        let pid = k.current().unwrap();
        let mut lwc = LwcState::new();
        lwc.create(&mut k);
        lwc.switch_to(&mut k, 0);
        lwc.switch_to(&mut k, 0);
        assert_eq!(lwc.switch_count(pid), 2);
    }
}
