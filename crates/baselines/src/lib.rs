//! Baseline in-process isolation mechanisms the paper compares against
//! (§8 "Performance Comparison"):
//!
//! * [`watchpoint`] — an ioctl-based prototype of hardware-watchpoint
//!   isolation (Jang & Kang, DAC'19): up to 16 domains guarded by the 4
//!   architectural watchpoint register pairs, every domain switch
//!   trapping into the kernel;
//! * [`lwc`] — a simulated version of light-weight contexts (lwC,
//!   OSDI'16), a general-purpose kernel abstraction whose domain switch
//!   is a kernel-mediated context switch.
//!
//! Both run ordinary EL0 processes under the base kernel — no
//! virtualization involved — and are driven through custom syscalls,
//! mirroring how the paper's prototypes are driven through ioctls.

pub mod lwc;
pub mod watchpoint;

pub use lwc::LwcState;
pub use watchpoint::WatchpointState;

use lz_kernel::{Event, Kernel, Pid};
use lz_machine::Exit;

/// A kernel plus both baseline mechanisms, with the same facade shape as
/// `lightzone::LightZone`.
#[derive(Debug)]
pub struct Baselines {
    pub kernel: Kernel,
    pub wp: WatchpointState,
    pub lwc: LwcState,
}

impl Baselines {
    /// Host deployment.
    pub fn new_host(platform: lz_arch::Platform) -> Self {
        Baselines { kernel: Kernel::new_host(platform), wp: WatchpointState::new(), lwc: LwcState::new() }
    }

    /// Guest deployment.
    pub fn new_guest(platform: lz_arch::Platform) -> Self {
        Baselines { kernel: Kernel::new_guest(platform), wp: WatchpointState::new(), lwc: LwcState::new() }
    }

    /// Load a program as a new process.
    pub fn spawn(&mut self, prog: &lz_kernel::Program) -> Pid {
        self.kernel.spawn(prog)
    }

    /// Make `pid` current.
    pub fn enter_process(&mut self, pid: Pid) {
        self.kernel.enter_process(pid);
    }

    /// Run, servicing baseline syscalls and watchpoint hits.
    pub fn run(&mut self, insn_limit: u64) -> Event {
        loop {
            match self.kernel.run(insn_limit) {
                Event::Custom { nr, args } => {
                    let ret = match nr {
                        lz_kernel::syscall::custom::WP_ENTER => self.wp.enter(&mut self.kernel),
                        lz_kernel::syscall::custom::WP_PROT => self.wp.prot(&mut self.kernel, args[0], args[1]),
                        lz_kernel::syscall::custom::WP_SWITCH => self.wp.switch_to(&mut self.kernel, args[0]),
                        lz_kernel::syscall::custom::LWC_CREATE => self.lwc.create(&mut self.kernel),
                        lz_kernel::syscall::custom::LWC_SWITCH => self.lwc.switch_to(&mut self.kernel, args[0]),
                        _ => return Event::Custom { nr, args },
                    };
                    self.kernel.resume_syscall(ret);
                }
                Event::Raw(Exit::El2(lz_arch::esr::ExceptionClass::WatchpointLower))
                | Event::Raw(Exit::El1(lz_arch::esr::ExceptionClass::WatchpointLower)) => {
                    // Illegal domain access caught by a watchpoint.
                    return self.kernel.kill_current(crate::watchpoint::WP_KILL);
                }
                other => return other,
            }
        }
    }

    /// Run to exit (test convenience).
    ///
    /// # Panics
    ///
    /// Panics if the program does not exit.
    pub fn run_to_exit(&mut self) -> i64 {
        match self.run(50_000_000) {
            Event::Exited(code) => code,
            other => panic!("expected exit, got {other:?}"),
        }
    }
}
