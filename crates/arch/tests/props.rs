//! Property-based tests for the A64 encoder/decoder and the
//! sensitive-instruction classifier.

use lz_arch::insn::{Cond, Insn, LogicOp, MemSize};
use lz_arch::sensitive::{classify, InsnClass, SanitizeMode};
use lz_arch::sysreg::{SysReg, SysRegEnc};
use proptest::prelude::*;

fn any_memsize() -> impl Strategy<Value = MemSize> {
    prop_oneof![Just(MemSize::B), Just(MemSize::H), Just(MemSize::W), Just(MemSize::X)]
}

fn any_cond() -> impl Strategy<Value = Cond> {
    prop_oneof![
        Just(Cond::Eq),
        Just(Cond::Ne),
        Just(Cond::Cs),
        Just(Cond::Cc),
        Just(Cond::Mi),
        Just(Cond::Pl),
        Just(Cond::Hi),
        Just(Cond::Ls),
        Just(Cond::Ge),
        Just(Cond::Lt),
        Just(Cond::Gt),
        Just(Cond::Le),
    ]
}

fn any_logic() -> impl Strategy<Value = LogicOp> {
    prop_oneof![Just(LogicOp::And), Just(LogicOp::Orr), Just(LogicOp::Eor), Just(LogicOp::Ands)]
}

fn any_sysreg() -> impl Strategy<Value = SysReg> {
    proptest::sample::select(SysReg::ALL.to_vec())
}

prop_compose! {
    fn branch_offset(bits: u32)(words in -(1i64 << (bits - 1))..(1i64 << (bits - 1))) -> i64 {
        words * 4
    }
}

fn any_insn() -> impl Strategy<Value = Insn> {
    prop_oneof![
        (0u8..32, any::<u16>(), 0u8..4).prop_map(|(rd, imm16, hw)| Insn::Movz { rd, imm16, hw }),
        (0u8..32, any::<u16>(), 0u8..4).prop_map(|(rd, imm16, hw)| Insn::Movk { rd, imm16, hw }),
        (0u8..32, any::<u16>(), 0u8..4).prop_map(|(rd, imm16, hw)| Insn::Movn { rd, imm16, hw }),
        (0u8..32, 0u8..32, 0u16..4096, any::<bool>(), any::<bool>(), any::<bool>()).prop_map(
            |(rd, rn, imm12, shift12, sub, set_flags)| Insn::AddImm { rd, rn, imm12, shift12, sub, set_flags }
        ),
        (0u8..32, 0u8..32, 0u8..32, 0u8..64, any::<bool>(), any::<bool>())
            .prop_map(|(rd, rn, rm, shift, sub, set_flags)| Insn::AddReg { rd, rn, rm, shift, sub, set_flags }),
        (0u8..32, 0u8..32, 0u8..32, 0u8..64, any_logic()).prop_map(|(rd, rn, rm, shift, op)| Insn::LogicReg {
            rd,
            rn,
            rm,
            shift,
            op
        }),
        (0u8..32, 0u8..32, 0u8..64).prop_map(|(rd, rn, shift)| Insn::LsrImm { rd, rn, shift }),
        (0u8..32, 0u8..32, 1u8..64).prop_map(|(rd, rn, shift)| Insn::LslImm { rd, rn, shift }),
        (0u8..32, 0u8..32, 0u64..512, any_memsize()).prop_map(|(rt, rn, idx, size)| Insn::LdrImm {
            rt,
            rn,
            offset: idx * size.bytes(),
            size
        }),
        (0u8..32, 0u8..32, 0u64..512, any_memsize()).prop_map(|(rt, rn, idx, size)| Insn::StrImm {
            rt,
            rn,
            offset: idx * size.bytes(),
            size
        }),
        (0u8..32, 0u8..32, -256i64..256, any_memsize()).prop_map(|(rt, rn, offset, size)| Insn::Sttr {
            rt,
            rn,
            offset,
            size
        }),
        (0u8..32, 0u8..32, 0u8..32, -64i64..64).prop_map(|(rt, rt2, rn, scaled)| Insn::Ldp {
            rt,
            rt2,
            rn,
            offset: scaled * 8
        }),
        (0u8..32, 0u8..32, 0u8..32, -64i64..64).prop_map(|(rt, rt2, rn, scaled)| Insn::Stp {
            rt,
            rt2,
            rn,
            offset: scaled * 8
        }),
        (0u8..32, 0u8..32, 0u8..32, 0u8..32).prop_map(|(rd, rn, rm, ra)| Insn::Madd { rd, rn, rm, ra }),
        (0u8..32, 0u8..32, 0u8..32).prop_map(|(rd, rn, rm)| Insn::Udiv { rd, rn, rm }),
        (0u8..32, 0u8..32, 0u8..32, any_cond()).prop_map(|(rd, rn, rm, cond)| Insn::Csel { rd, rn, rm, cond }),
        (0u8..32, 0u8..32, 0u8..32, any_cond()).prop_map(|(rd, rn, rm, cond)| Insn::Csinc { rd, rn, rm, cond }),
        branch_offset(26).prop_map(|offset| Insn::B { offset }),
        branch_offset(26).prop_map(|offset| Insn::Bl { offset }),
        (any_cond(), branch_offset(19)).prop_map(|(cond, offset)| Insn::BCond { cond, offset }),
        (0u8..32, branch_offset(19), any::<bool>()).prop_map(|(rt, offset, nonzero)| Insn::Cbz { rt, offset, nonzero }),
        (0u8..32).prop_map(|rn| Insn::Br { rn }),
        (0u8..32).prop_map(|rn| Insn::Blr { rn }),
        (0u8..32).prop_map(|rn| Insn::Ret { rn }),
        any::<u16>().prop_map(|imm| Insn::Svc { imm }),
        any::<u16>().prop_map(|imm| Insn::Hvc { imm }),
        any::<u16>().prop_map(|imm| Insn::Brk { imm }),
        Just(Insn::Eret),
        Just(Insn::Nop),
        (any_sysreg(), 0u8..32).prop_map(|(r, rt)| Insn::MsrReg { enc: r.encoding(), rt }),
        (any_sysreg(), 0u8..32).prop_map(|(r, rt)| Insn::MrsReg { enc: r.encoding(), rt }),
        (0u8..2).prop_map(|imm| Insn::MsrImm {
            op1: lz_arch::insn::PSTATE_PAN_OP1,
            crm: imm,
            op2: lz_arch::insn::PSTATE_PAN_OP2
        }),
    ]
}

proptest! {
    /// Every constructible instruction survives an encode/decode roundtrip.
    #[test]
    fn encode_decode_roundtrip(insn in any_insn()) {
        let word = insn.encode();
        prop_assert_eq!(Insn::decode(word), insn);
    }

    /// Decoding never panics on arbitrary words.
    #[test]
    fn decode_total(word in any::<u32>()) {
        let _ = Insn::decode(word);
    }

    /// Classification never panics and is consistent: `Both` is at least as
    /// strict as each individual mode.
    #[test]
    fn classify_both_is_strictest(word in any::<u32>()) {
        let both = classify(word, SanitizeMode::Both);
        if both == InsnClass::Allowed {
            prop_assert_eq!(classify(word, SanitizeMode::Ttbr), InsnClass::Allowed);
            prop_assert_eq!(classify(word, SanitizeMode::Pan), InsnClass::Allowed);
        }
    }

    /// A forbidden word stays forbidden if it appears at any alignment in a
    /// scanned page (scan looks at every aligned word).
    #[test]
    fn scan_finds_planted_eret(prefix_words in 0usize..64) {
        let mut bytes = vec![];
        for _ in 0..prefix_words {
            bytes.extend_from_slice(&0xD503_201Fu32.to_le_bytes()); // nop
        }
        bytes.extend_from_slice(&0xD69F_03E0u32.to_le_bytes()); // eret
        let err = lz_arch::sensitive::scan_code(&bytes, SanitizeMode::Ttbr).unwrap_err();
        prop_assert_eq!(err.0, prefix_words * 4);
    }

    /// System-register field packing roundtrips for arbitrary encodings.
    #[test]
    fn sysreg_enc_roundtrip(op0 in 0u8..4, op1 in 0u8..8, crn in 0u8..16, crm in 0u8..16, op2 in 0u8..8) {
        let enc = SysRegEnc::new(op0, op1, crn, crm, op2);
        prop_assert_eq!(SysRegEnc::from_word(enc.to_fields()), enc);
    }

    /// MSR of any privileged register except TTBR0_EL1 must never be Allowed
    /// under TTBR sanitization (Table 3 row 6).
    #[test]
    fn privileged_msr_never_allowed(reg in any_sysreg(), rt in 0u8..32) {
        let enc = reg.encoding();
        prop_assume!(enc.op0 == 0b11 && enc.op1 != 0b011);
        prop_assume!(reg != SysReg::TTBR0_EL1);
        let word = Insn::MsrReg { enc, rt }.encode();
        prop_assert_ne!(classify(word, SanitizeMode::Ttbr), InsnClass::Allowed);
        prop_assert_ne!(classify(word, SanitizeMode::Pan), InsnClass::Allowed);
    }
}
