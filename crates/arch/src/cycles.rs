//! Per-platform cycle cost model.
//!
//! The paper evaluates on two SoCs with very different system-register
//! performance: the NVIDIA Carmel (Jetson AGX Xavier), where writing
//! `HCR_EL2`/`VTTBR_EL2` costs *thousands* of cycles, and the Amlogic
//! Cortex-A55 (Banana Pi BPI-M5), where the same writes cost tens. That
//! asymmetry drives the paper's headline result (retaining `HCR_EL2` and
//! `VTTBR_EL2` across traps makes a LightZone syscall *cheaper* than a
//! host syscall on Carmel) — so the model parameterizes exactly these
//! primitive costs and derives every reported number by summing the costs
//! of the operations the implementation actually performs.
//!
//! Two parameters (`hcr_el2_write`, `vttbr_el2_write`) are raw hardware
//! properties the paper itself measured (Table 4, last two rows) and are
//! taken as platform constants. Everything else is calibrated once so the
//! *derived* trap round-trips land near Table 4, then held fixed for all
//! other experiments.

/// The evaluation platforms of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Platform {
    /// NVIDIA Carmel (Jetson AGX Xavier, 2.2 GHz, ARMv8.2). Fast core,
    /// pathologically slow system-register writes and traps.
    Carmel,
    /// Amlogic S905X3 Cortex-A55 (Banana Pi BPI-M5, 2 GHz). In-order
    /// little core with cheap traps, matching prior KVM/ARM profiling.
    CortexA55,
}

impl Platform {
    /// The calibrated cycle model for this platform.
    pub fn model(self) -> CycleModel {
        match self {
            Platform::Carmel => CycleModel::carmel(),
            Platform::CortexA55 => CycleModel::cortex_a55(),
        }
    }

    /// Display name used in benchmark output.
    pub const fn name(self) -> &'static str {
        match self {
            Platform::Carmel => "Carmel",
            Platform::CortexA55 => "Cortex A55",
        }
    }

    /// Both platforms, in the order the paper's tables list them.
    pub const ALL: [Platform; 2] = [Platform::Carmel, Platform::CortexA55];
}

/// Primitive operation costs, in CPU cycles.
///
/// The simulator's CPU charges these as it executes; modelled (non-
/// interpreted) kernel paths charge them explicitly for each architectural
/// operation they perform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleModel {
    /// Which platform this model describes.
    pub platform: Platform,
    /// Base cost of any instruction.
    pub insn_base: u64,
    /// L1-hit memory access (load or store data path).
    pub mem_access: u64,
    /// Memory access performed by the page-table walker, per level.
    pub tlb_walk_level: u64,
    /// Hardware cost of exception entry targeting EL1 (vectoring,
    /// pipeline flush, PSTATE/ELR/ESR capture).
    pub exception_entry_el1: u64,
    /// Hardware cost of exception entry targeting EL2. On Carmel this is
    /// far more expensive than EL1 entry (Table 4: guest-kernel traps are
    /// ~2.7x cheaper than hypervisor traps).
    pub exception_entry_el2: u64,
    /// Hardware cost of `ERET` from EL1.
    pub exception_return_el1: u64,
    /// Hardware cost of `ERET` from EL2.
    pub exception_return_el2: u64,
    /// Read of a banked EL1/EL2 system register.
    pub sysreg_read: u64,
    /// Write of a banked EL1/EL2 system register (other than the special
    /// cases below).
    pub sysreg_write: u64,
    /// Write of `HCR_EL2` — measured directly by the paper (Table 4).
    pub hcr_el2_write: u64,
    /// Write of `VTTBR_EL2` — measured directly by the paper (Table 4).
    pub vttbr_el2_write: u64,
    /// Write of `TTBR0_EL1` ("updating PAN or TTBR takes only tens of
    /// cycles", §1 — but slower on Carmel like all system registers).
    pub ttbr0_el1_write: u64,
    /// `MSR PAN, #imm`.
    pub pan_write: u64,
    /// `ISB`.
    pub isb: u64,
    /// `DSB`.
    pub dsb: u64,
    /// Per-register cost of saving or restoring one general-purpose
    /// register to/from the context frame.
    pub gpreg_save_restore: u64,
    /// Cost of switching the vGIC + timer state on a full KVM world
    /// switch (not needed by LightZone VEs, which share these with the
    /// kernel — §5.2.2).
    pub vgic_timer_switch: u64,
    /// Number of main (L2) TLB entries modelled.
    pub tlb_entries: usize,
    /// Number of L1 micro-TLB entries (hit cost 0).
    pub tlb_l1_entries: usize,
    /// Extra cycles for a translation that misses the micro-TLB but hits
    /// the main TLB.
    pub l2_tlb_hit: u64,
    /// Extra cycles of cache pollution charged when a trap handler runs
    /// (the paper notes user↔kernel switches "indirectly incur cache
    /// pollution", §1).
    pub trap_cache_pollution: u64,
    /// Effective instructions-per-cycle divisor for straight-line kernel
    /// path code: the out-of-order Carmel retires ~3 of these per cycle,
    /// the in-order A55 ~1. Used by [`CycleModel::path_cost`].
    pub insn_throughput: u64,
}

impl CycleModel {
    /// Calibrated model for NVIDIA Carmel.
    pub fn carmel() -> Self {
        CycleModel {
            platform: Platform::Carmel,
            insn_base: 1,
            mem_access: 4,
            tlb_walk_level: 25,
            exception_entry_el1: 430,
            exception_entry_el2: 800,
            exception_return_el1: 430,
            exception_return_el2: 800,
            sysreg_read: 150,
            sysreg_write: 500,
            hcr_el2_write: 1600,
            vttbr_el2_write: 1115,
            ttbr0_el1_write: 180,
            pan_write: 7,
            isb: 60,
            dsb: 80,
            gpreg_save_restore: 2,
            vgic_timer_switch: 4000,
            tlb_entries: 1024,
            tlb_l1_entries: 48,
            l2_tlb_hit: 14,
            trap_cache_pollution: 120,
            insn_throughput: 3,
        }
    }

    /// Calibrated model for the Amlogic Cortex-A55.
    pub fn cortex_a55() -> Self {
        CycleModel {
            platform: Platform::CortexA55,
            insn_base: 1,
            mem_access: 3,
            tlb_walk_level: 8,
            exception_entry_el1: 70,
            exception_entry_el2: 60,
            exception_return_el1: 60,
            exception_return_el2: 55,
            sysreg_read: 4,
            sysreg_write: 12,
            hcr_el2_write: 88,
            vttbr_el2_write: 37,
            ttbr0_el1_write: 12,
            pan_write: 2,
            isb: 8,
            dsb: 12,
            gpreg_save_restore: 1,
            vgic_timer_switch: 120,
            tlb_entries: 512,
            tlb_l1_entries: 40,
            l2_tlb_hit: 9,
            trap_cache_pollution: 20,
            insn_throughput: 1,
        }
    }

    /// Cost of saving *and later restoring* `n` general-purpose registers.
    pub fn gpregs_roundtrip(&self, n: u64) -> u64 {
        2 * n * self.gpreg_save_restore
    }

    /// Cycles for `n` instructions of straight-line kernel path code.
    pub fn path_cost(&self, n: u64) -> u64 {
        n.div_ceil(self.insn_throughput)
    }

    /// Cost of a full stage-1 (4-level) table walk.
    pub fn stage1_walk(&self) -> u64 {
        4 * self.tlb_walk_level
    }

    /// Cost of a full stage-2 (3-level) table walk.
    pub fn stage2_walk(&self) -> u64 {
        3 * self.tlb_walk_level
    }

    /// Cost of a combined stage-1 + stage-2 walk, as taken by a guest
    /// access that misses the TLB entirely: each stage-1 level's
    /// descriptor fetch itself undergoes stage-2 translation.
    pub fn nested_walk(&self) -> u64 {
        // 4 stage-1 levels × (1 + 3 stage-2 lookups) + final 3 stage-2
        // lookups for the output address = 4*4 + 3 = 19 accesses.
        19 * self.tlb_walk_level
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_measured_constants_match_table4() {
        // Table 4, rows 6–7 are direct hardware measurements; the model
        // must carry them verbatim (Carmel HCR_EL2 is a range 1550–1655).
        let carmel = CycleModel::carmel();
        assert!((1550..=1655).contains(&carmel.hcr_el2_write));
        assert_eq!(carmel.vttbr_el2_write, 1115);
        let a55 = CycleModel::cortex_a55();
        assert_eq!(a55.hcr_el2_write, 88);
        assert_eq!(a55.vttbr_el2_write, 37);
    }

    #[test]
    fn carmel_sysregs_slower_than_a55() {
        let c = CycleModel::carmel();
        let a = CycleModel::cortex_a55();
        assert!(c.sysreg_write > a.sysreg_write);
        assert!(c.exception_entry_el2 > a.exception_entry_el2);
        assert!(c.hcr_el2_write > a.hcr_el2_write);
    }

    #[test]
    fn pan_cheaper_than_ttbr_switch() {
        // The paper's central efficiency claim: PAN toggling is cheaper
        // than a TTBR0 update on both platforms.
        for p in Platform::ALL {
            let m = p.model();
            assert!(m.pan_write * 2 < m.ttbr0_el1_write + m.isb, "{p:?}");
        }
    }

    #[test]
    fn platform_model_dispatch() {
        assert_eq!(Platform::Carmel.model().platform, Platform::Carmel);
        assert_eq!(Platform::CortexA55.model().platform, Platform::CortexA55);
    }

    #[test]
    fn nested_walk_costs_more_than_both_stages() {
        for p in Platform::ALL {
            let m = p.model();
            assert!(m.nested_walk() > m.stage1_walk() + m.stage2_walk());
        }
    }
}
