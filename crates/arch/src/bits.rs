//! Small bit-manipulation helpers shared by the encoder/decoder.

/// Extract bits `[hi:lo]` (inclusive) of `word` as a `u32` shifted to bit 0.
///
/// ```
/// assert_eq!(lz_arch::bits::extract(0b1011_0000, 7, 4), 0b1011);
/// ```
#[inline]
pub const fn extract(word: u32, hi: u32, lo: u32) -> u32 {
    debug_assert!(hi >= lo && hi < 32);
    let width = hi - lo + 1;
    let mask = if width == 32 { u32::MAX } else { (1u32 << width) - 1 };
    (word >> lo) & mask
}

/// Extract a single bit of `word` as `0` or `1`.
#[inline]
pub const fn bit(word: u32, idx: u32) -> u32 {
    (word >> idx) & 1
}

/// Sign-extend the low `bits` bits of `value` to a full `i64`.
///
/// ```
/// assert_eq!(lz_arch::bits::sign_extend(0b111, 3), -1);
/// assert_eq!(lz_arch::bits::sign_extend(0b011, 3), 3);
/// ```
#[inline]
pub const fn sign_extend(value: u64, bits: u32) -> i64 {
    debug_assert!(bits >= 1 && bits <= 64);
    let shift = 64 - bits;
    ((value << shift) as i64) >> shift
}

/// Place `value` into bits `[hi:lo]` of a word under construction.
///
/// # Panics
///
/// Panics (debug builds) if `value` does not fit into the field.
#[inline]
pub const fn field(value: u32, hi: u32, lo: u32) -> u32 {
    debug_assert!(hi >= lo && hi < 32);
    let width = hi - lo + 1;
    debug_assert!(width == 32 || value < (1u32 << width));
    value << lo
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extract_full_word() {
        assert_eq!(extract(0xdead_beef, 31, 0), 0xdead_beef);
    }

    #[test]
    fn extract_mid_field() {
        assert_eq!(extract(0xdead_beef, 15, 8), 0xbe);
    }

    #[test]
    fn bit_values() {
        assert_eq!(bit(0b100, 2), 1);
        assert_eq!(bit(0b100, 1), 0);
    }

    #[test]
    fn sign_extend_negative() {
        assert_eq!(sign_extend(0x1ff, 9), -1);
        assert_eq!(sign_extend(0x100, 9), -256);
    }

    #[test]
    fn sign_extend_positive() {
        assert_eq!(sign_extend(0x0ff, 9), 255);
    }

    #[test]
    fn field_roundtrip() {
        let w = field(0b1011, 7, 4);
        assert_eq!(extract(w, 7, 4), 0b1011);
    }
}
