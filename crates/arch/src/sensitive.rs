//! Sensitive-instruction classification — the paper's Table 3.
//!
//! Certain instructions behave differently in user and kernel mode and
//! cannot all be trapped by hypervisor configuration registers (e.g.
//! `TTBR0_EL1` updates must be *allowed inside the call gate* but nowhere
//! else). The instruction sanitizer therefore scans every executable page
//! and rejects pages containing forbidden encodings before mapping them
//! executable (see `lightzone::sanitizer` for the W^X / break-before-make
//! enforcement that makes the scan TOCTTOU-safe).
//!
//! Classification operates on **raw 32-bit words**, exactly as a binary
//! sanitizer must: it needs no compiler support and therefore works on
//! pre-compiled binaries (the PCB column of the paper's Table 1).

use crate::bits::extract;
use crate::insn::{PSTATE_PAN_OP1, PSTATE_PAN_OP2};
use crate::sysreg::{SysReg, SysRegEnc};

/// Which in-process isolation mechanism the scanned code will run under.
///
/// Table 3 has one "allowed?" column per mechanism: ① TTBR-based scalable
/// isolation, ② PAN-based two-domain isolation. `lz_enter`'s `insn_san`
/// argument selects the mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SanitizeMode {
    /// Column ① — the process switches stage-1 page tables via the call
    /// gate; unprivileged loads/stores are harmless (stage-2 still
    /// applies) and `MSR TTBR0_EL1` is allowed *only inside the gate*.
    Ttbr,
    /// Column ② — the process uses PAN for isolation; unprivileged
    /// loads/stores would bypass PAN (they always act as EL0 accesses)
    /// and must be rejected, as must TTBR0 writes.
    Pan,
    /// Both mechanisms are live in the same process (Listing 1 uses PAN
    /// *and* TTBR simultaneously): an instruction must be allowed by
    /// *both* columns.
    Both,
}

/// Classification verdict for one instruction word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InsnClass {
    /// Not sensitive; may appear anywhere.
    Allowed,
    /// Sensitive and never allowed in application pages.
    Forbidden(Sensitivity),
    /// Allowed only within the TTBR1-mapped secure call gate
    /// (`MSR TTBR0_EL1, xt` under [`SanitizeMode::Ttbr`]).
    GateOnly,
}

/// Why an instruction is sensitive (Table 3 "type" column plus the
/// specific row).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sensitivity {
    /// `ERET` — exception return would let the process forge a PSTATE.
    ExceptionReturn,
    /// `LDTR`/`STTR` family under PAN-based isolation — they access
    /// memory with EL0 privilege, ignoring PAN.
    UnprivilegedLoadStore,
    /// `MSR <pstate>, #imm` other than PAN (e.g. SPSel, DAIF).
    PstateImm,
    /// `SYS`/`SYSL` with CRn=7 — cache maintenance.
    CacheMaintenance,
    /// `MSR`/`MRS` of a CRn=4 register other than NZCV/FPCR/FPSR
    /// (SPSR_EL1, ELR_EL1, SP_EL0, …).
    ExceptionStateRegister,
    /// `MSR`/`MRS` of a privileged (op1 != 3) system register other than
    /// `TTBR0_EL1`.
    PrivilegedSysreg,
    /// `MSR`/`MRS` of `TTBR0_EL1` outside the call gate, or at all under
    /// PAN-only sanitization.
    TranslationTableBase,
}

/// Classify one instruction word under `mode` (Table 3).
///
/// Instructions that are architecturally *trapped* by hypervisor
/// configuration registers (TLB maintenance via `HCR_EL2.TTLB`, stage-1
/// control via `TVM`/`TRVM`) do not need sanitizing and are reported as
/// [`InsnClass::Allowed`]; the trap, not the sanitizer, confines them.
///
/// ```
/// use lz_arch::sensitive::{classify, InsnClass, SanitizeMode};
///
/// // `eret` is forbidden everywhere.
/// assert!(matches!(classify(0xD69F03E0, SanitizeMode::Ttbr), InsnClass::Forbidden(_)));
/// // `msr pan, #1` is fine under both mechanisms.
/// assert_eq!(classify(0xD500419F, SanitizeMode::Both), InsnClass::Allowed);
/// ```
pub fn classify(word: u32, mode: SanitizeMode) -> InsnClass {
    if let SanitizeMode::Both = mode {
        let a = classify(word, SanitizeMode::Ttbr);
        let b = classify(word, SanitizeMode::Pan);
        return match (a, b) {
            (InsnClass::Allowed, InsnClass::Allowed) => InsnClass::Allowed,
            // The gate itself is sanitized in TTBR mode; application pages
            // containing TTBR writes are rejected under Both because the
            // PAN column forbids them.
            (x, InsnClass::Allowed) => x,
            (_, y) => y,
        };
    }

    // ERET — exception generation-and-return class, opc=0100.
    if word == 0xD69F_03E0 {
        return InsnClass::Forbidden(Sensitivity::ExceptionReturn);
    }

    // Unprivileged load/store class: size 111 0 00 opc 0 imm9 10 Rn Rt.
    if extract(word, 29, 24) == 0b111000
        && crate::bits::bit(word, 26) == 0
        && crate::bits::bit(word, 21) == 0
        && extract(word, 11, 10) == 0b10
    {
        return match mode {
            SanitizeMode::Ttbr => InsnClass::Allowed,
            _ => InsnClass::Forbidden(Sensitivity::UnprivilegedLoadStore),
        };
    }

    // System instruction space: bits(31,22) = 0b1101010100.
    if extract(word, 31, 22) == 0b11_0101_0100 {
        let enc = SysRegEnc::from_word(word);
        match enc.op0 {
            0b00 => {
                // MSR immediate rows: op0=0b00 && CRn=0b0100.
                if enc.crn == 0b0100 {
                    let is_pan = enc.op1 == PSTATE_PAN_OP1 && enc.op2 == PSTATE_PAN_OP2;
                    return if is_pan { InsnClass::Allowed } else { InsnClass::Forbidden(Sensitivity::PstateImm) };
                }
                // Hints and barriers are harmless.
                InsnClass::Allowed
            }
            0b01 => {
                // SYS/SYSL. Cache maintenance (CRn=7) must be sanitized;
                // TLB maintenance (CRn=8) is trapped by HCR_EL2.TTLB so it
                // does not need to be (§5.1.1).
                if enc.crn == 7 {
                    InsnClass::Forbidden(Sensitivity::CacheMaintenance)
                } else {
                    InsnClass::Allowed
                }
            }
            0b10 => {
                // Debug-register space — not reachable by our encoder, but a
                // malicious binary could contain it; treat as privileged.
                InsnClass::Forbidden(Sensitivity::PrivilegedSysreg)
            }
            _ => {
                // op0 = 0b11: MSR/MRS register form.
                if enc.crn == 4 {
                    // Allowed only for NZCV, FPCR, FPSR.
                    let target = SysReg::from_encoding(enc);
                    return match target {
                        Some(SysReg::NZCV) | Some(SysReg::FPCR) | Some(SysReg::FPSR) => InsnClass::Allowed,
                        _ => InsnClass::Forbidden(Sensitivity::ExceptionStateRegister),
                    };
                }
                let is_ttbr0 = enc == SysReg::TTBR0_EL1.encoding();
                if is_ttbr0 {
                    return match mode {
                        SanitizeMode::Ttbr => InsnClass::GateOnly,
                        _ => InsnClass::Forbidden(Sensitivity::TranslationTableBase),
                    };
                }
                if enc.op1 == 0b011 {
                    // EL0-accessible registers (TPIDR_EL0, counters, …).
                    return InsnClass::Allowed;
                }
                InsnClass::Forbidden(Sensitivity::PrivilegedSysreg)
            }
        }
    } else {
        InsnClass::Allowed
    }
}

/// Scan a page-worth of code and return the first offending word, if any.
///
/// Returns `Err((byte_offset, class))` for the first word that is not
/// [`InsnClass::Allowed`]. Gate-only instructions are offending here: this
/// function is used on *application* pages; the gate pages are emitted and
/// mapped by the trusted kernel module, never scanned.
pub fn scan_code(bytes: &[u8], mode: SanitizeMode) -> Result<(), (usize, InsnClass)> {
    for (i, chunk) in bytes.chunks(4).enumerate() {
        let mut w = [0u8; 4];
        w[..chunk.len()].copy_from_slice(chunk);
        let word = u32::from_le_bytes(w);
        match classify(word, mode) {
            InsnClass::Allowed => {}
            class => return Err((i * 4, class)),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::insn::Insn;
    use crate::sysreg::SysReg;

    fn word(i: Insn) -> u32 {
        i.encode()
    }

    #[test]
    fn eret_forbidden_in_both_modes() {
        for mode in [SanitizeMode::Ttbr, SanitizeMode::Pan, SanitizeMode::Both] {
            assert_eq!(classify(0xD69F_03E0, mode), InsnClass::Forbidden(Sensitivity::ExceptionReturn));
        }
    }

    #[test]
    fn ldtr_allowed_in_ttbr_forbidden_in_pan() {
        let w = word(Insn::Ldtr { rt: 0, rn: 1, offset: 0, size: crate::insn::MemSize::X });
        assert_eq!(classify(w, SanitizeMode::Ttbr), InsnClass::Allowed);
        assert_eq!(classify(w, SanitizeMode::Pan), InsnClass::Forbidden(Sensitivity::UnprivilegedLoadStore));
        assert_eq!(classify(w, SanitizeMode::Both), InsnClass::Forbidden(Sensitivity::UnprivilegedLoadStore));
    }

    #[test]
    fn sttr_forbidden_in_pan() {
        let w = word(Insn::Sttr { rt: 2, rn: 3, offset: -8, size: crate::insn::MemSize::B });
        assert!(matches!(classify(w, SanitizeMode::Pan), InsnClass::Forbidden(_)));
    }

    #[test]
    fn msr_pan_imm_allowed_everywhere() {
        for mode in [SanitizeMode::Ttbr, SanitizeMode::Pan, SanitizeMode::Both] {
            assert_eq!(classify(0xD500_419F, mode), InsnClass::Allowed);
            assert_eq!(classify(0xD500_409F, mode), InsnClass::Allowed);
        }
    }

    #[test]
    fn msr_spsel_imm_forbidden() {
        let w = word(Insn::MsrImm { op1: crate::insn::PSTATE_SPSEL_OP1, crm: 1, op2: crate::insn::PSTATE_SPSEL_OP2 });
        assert_eq!(classify(w, SanitizeMode::Ttbr), InsnClass::Forbidden(Sensitivity::PstateImm));
    }

    #[test]
    fn msr_daif_imm_forbidden() {
        let w = word(Insn::MsrImm { op1: 0b011, crm: 0b0010, op2: crate::insn::PSTATE_DAIFSET_OP2 });
        assert!(matches!(classify(w, SanitizeMode::Pan), InsnClass::Forbidden(_)));
    }

    #[test]
    fn dc_cache_op_forbidden() {
        // dc civac, x0 — op0=01, CRn=7.
        assert_eq!(classify(0xD50B_7E20, SanitizeMode::Ttbr), InsnClass::Forbidden(Sensitivity::CacheMaintenance));
    }

    #[test]
    fn tlbi_not_sanitized_because_trapped() {
        // tlbi vmalle1 — CRn=8 — confined by HCR_EL2.TTLB instead.
        assert_eq!(classify(0xD508_871F, SanitizeMode::Ttbr), InsnClass::Allowed);
    }

    #[test]
    fn msr_ttbr0_gate_only_in_ttbr_mode() {
        assert_eq!(classify(0xD518_2000, SanitizeMode::Ttbr), InsnClass::GateOnly);
        assert_eq!(classify(0xD518_2000, SanitizeMode::Pan), InsnClass::Forbidden(Sensitivity::TranslationTableBase));
    }

    #[test]
    fn mrs_ttbr0_gate_only_in_ttbr_mode() {
        // Reads also reveal the table base and are gate-only.
        assert_eq!(classify(0xD538_2003, SanitizeMode::Ttbr), InsnClass::GateOnly);
    }

    #[test]
    fn msr_ttbr1_always_forbidden() {
        // The gate's own integrity rests on TTBR1 immutability (§6.2).
        let w = word(Insn::MsrReg { enc: SysReg::TTBR1_EL1.encoding(), rt: 0 });
        for mode in [SanitizeMode::Ttbr, SanitizeMode::Pan] {
            assert!(matches!(classify(w, mode), InsnClass::Forbidden(_)), "mode {mode:?}");
        }
    }

    #[test]
    fn msr_vbar_forbidden() {
        let w = word(Insn::MsrReg { enc: SysReg::VBAR_EL1.encoding(), rt: 5 });
        assert_eq!(classify(w, SanitizeMode::Ttbr), InsnClass::Forbidden(Sensitivity::PrivilegedSysreg));
    }

    #[test]
    fn msr_elr_spsr_forbidden_as_crn4() {
        for reg in [SysReg::ELR_EL1, SysReg::SPSR_EL1, SysReg::SP_EL0] {
            let w = word(Insn::MsrReg { enc: reg.encoding(), rt: 0 });
            assert_eq!(
                classify(w, SanitizeMode::Ttbr),
                InsnClass::Forbidden(Sensitivity::ExceptionStateRegister),
                "reg {reg}"
            );
        }
    }

    #[test]
    fn nzcv_fpcr_fpsr_allowed() {
        for reg in [SysReg::NZCV, SysReg::FPCR, SysReg::FPSR] {
            for l in [false, true] {
                let w = if l {
                    word(Insn::MrsReg { enc: reg.encoding(), rt: 0 })
                } else {
                    word(Insn::MsrReg { enc: reg.encoding(), rt: 0 })
                };
                assert_eq!(classify(w, SanitizeMode::Ttbr), InsnClass::Allowed, "reg {reg}");
            }
        }
    }

    #[test]
    fn el0_regs_allowed() {
        let w = word(Insn::MsrReg { enc: SysReg::TPIDR_EL0.encoding(), rt: 1 });
        assert_eq!(classify(w, SanitizeMode::Pan), InsnClass::Allowed);
    }

    #[test]
    fn ordinary_code_scans_clean() {
        let mut a = Asm::new(0);
        a.mov_imm64(0, 0x1234_5678);
        a.ldr(1, 0, 8);
        a.add_reg(2, 1, 0);
        a.str(2, 0, 16);
        a.svc(0);
        a.ret();
        assert_eq!(scan_code(&a.bytes(), SanitizeMode::Both), Ok(()));
    }

    #[test]
    fn scan_reports_offset_of_offender() {
        let mut a = Asm::new(0);
        a.nop().nop();
        a.eret(); // offset 8
        a.nop();
        let err = scan_code(&a.bytes(), SanitizeMode::Ttbr).unwrap_err();
        assert_eq!(err.0, 8);
    }

    #[test]
    fn scan_handles_trailing_partial_word() {
        // Partial trailing bytes are zero-padded; 0x00000000 decodes as
        // Unallocated and is not sensitive.
        let bytes = [0x1f, 0x20, 0x03, 0xd5, 0xaa];
        assert_eq!(scan_code(&bytes, SanitizeMode::Both), Ok(()));
    }
}
