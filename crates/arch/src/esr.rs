//! Exception syndrome (`ESR_ELx`) encoding.
//!
//! Only the exception classes the model generates are represented. The
//! ISS layouts follow the architecture closely enough that the kernel
//! substrate and LightZone module can dispatch on them the way real
//! handlers do.

/// Exception class — the `EC` field (bits 31..26) of `ESR_ELx`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExceptionClass {
    /// Unknown/unallocated instruction (EC 0b000000).
    Unknown,
    /// Trapped `MSR`/`MRS`/system instruction (EC 0b011000).
    TrappedSysreg,
    /// `SVC` from AArch64 (EC 0b010101).
    Svc,
    /// `HVC` from AArch64 (EC 0b010110).
    Hvc,
    /// `SMC` from AArch64 (EC 0b010111).
    Smc,
    /// Instruction abort from a lower EL (EC 0b100000).
    InsnAbortLower,
    /// Instruction abort from the current EL (EC 0b100001).
    InsnAbortSame,
    /// Data abort from a lower EL (EC 0b100100).
    DataAbortLower,
    /// Data abort from the current EL (EC 0b100101).
    DataAbortSame,
    /// `BRK` (EC 0b111100).
    Brk,
    /// Watchpoint from a lower EL (EC 0b110100).
    WatchpointLower,
    /// Illegal execution state (EC 0b001110).
    IllegalState,
}

impl ExceptionClass {
    /// The architectural EC value.
    pub const fn ec(self) -> u64 {
        match self {
            ExceptionClass::Unknown => 0b000000,
            ExceptionClass::TrappedSysreg => 0b011000,
            ExceptionClass::Svc => 0b010101,
            ExceptionClass::Hvc => 0b010110,
            ExceptionClass::Smc => 0b010111,
            ExceptionClass::InsnAbortLower => 0b100000,
            ExceptionClass::InsnAbortSame => 0b100001,
            ExceptionClass::DataAbortLower => 0b100100,
            ExceptionClass::DataAbortSame => 0b100101,
            ExceptionClass::Brk => 0b111100,
            ExceptionClass::WatchpointLower => 0b110100,
            ExceptionClass::IllegalState => 0b001110,
        }
    }

    /// Decode from an `ESR_ELx` value.
    pub fn from_esr(esr: u64) -> Option<ExceptionClass> {
        let ec = (esr >> 26) & 0x3f;
        Some(match ec {
            0b000000 => ExceptionClass::Unknown,
            0b011000 => ExceptionClass::TrappedSysreg,
            0b010101 => ExceptionClass::Svc,
            0b010110 => ExceptionClass::Hvc,
            0b010111 => ExceptionClass::Smc,
            0b100000 => ExceptionClass::InsnAbortLower,
            0b100001 => ExceptionClass::InsnAbortSame,
            0b100100 => ExceptionClass::DataAbortLower,
            0b100101 => ExceptionClass::DataAbortSame,
            0b111100 => ExceptionClass::Brk,
            0b110100 => ExceptionClass::WatchpointLower,
            0b001110 => ExceptionClass::IllegalState,
            _ => return None,
        })
    }
}

/// Fault status codes for abort ISS (the `DFSC`/`IFSC` field).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultStatus {
    /// Translation fault (no mapping) at the given level.
    Translation(u8),
    /// Permission fault at the given level.
    Permission(u8),
    /// Access-flag fault at the given level.
    AccessFlag(u8),
}

impl FaultStatus {
    /// Architectural 6-bit FSC encoding (level in low bits).
    pub const fn fsc(self) -> u64 {
        match self {
            FaultStatus::Translation(l) => 0b000100 | (l as u64 & 0b11),
            FaultStatus::AccessFlag(l) => 0b001000 | (l as u64 & 0b11),
            FaultStatus::Permission(l) => 0b001100 | (l as u64 & 0b11),
        }
    }

    /// Decode from an FSC value.
    pub fn from_fsc(fsc: u64) -> Option<FaultStatus> {
        let level = (fsc & 0b11) as u8;
        match fsc & !0b11 {
            0b000100 => Some(FaultStatus::Translation(level)),
            0b001000 => Some(FaultStatus::AccessFlag(level)),
            0b001100 => Some(FaultStatus::Permission(level)),
            _ => None,
        }
    }
}

/// Build an `ESR_ELx` value for an abort.
///
/// `wnr` is the write-not-read bit (ISS bit 6); `s1ptw` marks a stage-2
/// fault taken on a stage-1 walk (ISS bit 7).
pub fn esr_abort(class: ExceptionClass, fault: FaultStatus, wnr: bool, s1ptw: bool) -> u64 {
    (class.ec() << 26) | ((s1ptw as u64) << 7) | ((wnr as u64) << 6) | fault.fsc()
}

/// Build an `ESR_ELx` for an `SVC`/`HVC`/`SMC`/`BRK` with its immediate.
pub fn esr_exception_gen(class: ExceptionClass, imm: u16) -> u64 {
    (class.ec() << 26) | imm as u64
}

/// Build an `ESR_ELx` for a trapped system instruction, embedding the raw
/// instruction word in the ISS (the model's kernels re-decode it).
pub fn esr_trapped_sysreg(word: u32) -> u64 {
    (ExceptionClass::TrappedSysreg.ec() << 26) | word as u64 & 0x1ff_ffff
}

/// Extract the immediate from an exception-generation ESR.
pub fn esr_imm(esr: u64) -> u16 {
    (esr & 0xffff) as u16
}

/// Extract `(fault, wnr, s1ptw)` from an abort ESR.
pub fn esr_abort_info(esr: u64) -> Option<(FaultStatus, bool, bool)> {
    let fault = FaultStatus::from_fsc(esr & 0x3f)?;
    Some((fault, esr >> 6 & 1 == 1, esr >> 7 & 1 == 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ec_roundtrip() {
        for class in [
            ExceptionClass::Unknown,
            ExceptionClass::TrappedSysreg,
            ExceptionClass::Svc,
            ExceptionClass::Hvc,
            ExceptionClass::Smc,
            ExceptionClass::InsnAbortLower,
            ExceptionClass::InsnAbortSame,
            ExceptionClass::DataAbortLower,
            ExceptionClass::DataAbortSame,
            ExceptionClass::Brk,
            ExceptionClass::WatchpointLower,
            ExceptionClass::IllegalState,
        ] {
            let esr = class.ec() << 26;
            assert_eq!(ExceptionClass::from_esr(esr), Some(class));
        }
    }

    #[test]
    fn abort_esr_roundtrip() {
        let esr = esr_abort(ExceptionClass::DataAbortLower, FaultStatus::Permission(3), true, false);
        assert_eq!(ExceptionClass::from_esr(esr), Some(ExceptionClass::DataAbortLower));
        let (fault, wnr, s1ptw) = esr_abort_info(esr).unwrap();
        assert_eq!(fault, FaultStatus::Permission(3));
        assert!(wnr);
        assert!(!s1ptw);
    }

    #[test]
    fn svc_imm_roundtrip() {
        let esr = esr_exception_gen(ExceptionClass::Svc, 0x123);
        assert_eq!(esr_imm(esr), 0x123);
        assert_eq!(ExceptionClass::from_esr(esr), Some(ExceptionClass::Svc));
    }

    #[test]
    fn fsc_levels() {
        for l in 0..4u8 {
            assert_eq!(FaultStatus::from_fsc(FaultStatus::Translation(l).fsc()), Some(FaultStatus::Translation(l)));
            assert_eq!(FaultStatus::from_fsc(FaultStatus::Permission(l).fsc()), Some(FaultStatus::Permission(l)));
        }
    }
}
